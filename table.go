package noftl

import (
	"noftl/internal/btree"
	"noftl/internal/buffer"
	"noftl/internal/catalog"
	"noftl/internal/core"
	"noftl/internal/sim"
	"noftl/internal/storage"
	"noftl/internal/txn"
	"noftl/internal/wal"
)

// RID re-exports the storage record identifier.
type RID = storage.RID

// Time is a point in simulated time (nanoseconds since the start of the
// simulation).
type Time = sim.Time

// Duration is a span of simulated time; it converts one-to-one with
// time.Duration.
type Duration = sim.Duration

// LockMode re-exports the lock modes for Tx.Lock.
type LockMode = txn.LockMode

// Lock modes.
const (
	Shared    = txn.Shared
	Exclusive = txn.Exclusive
)

// btreeNew is an indirection so db.go does not import btree directly at the
// call site (keeps the facade's dependency wiring in one place).
func btreeNew(now sim.Time, name string, objectID uint32, ts *storage.Tablespace, pool *buffer.Pool) (*btree.Tree, sim.Time, error) {
	return btree.New(now, name, objectID, ts, pool)
}

// Tx is a transaction handle.  It is owned by a single goroutine.
type Tx struct {
	db       *DB
	inner    *txn.Txn
	iterErr  error // first error hit inside a Rows/Range iteration
	quiesced bool  // still holding the checkpoint quiesce lock shared
}

// release drops the checkpoint quiesce lock exactly once.
func (tx *Tx) release() {
	if tx.quiesced {
		tx.quiesced = false
		tx.db.ckptMu.RUnlock()
	}
}

// Err returns the first error encountered inside an iterator (Table.Rows,
// Index.Range) driven by this transaction, or nil.  Go's range-over-func
// iterators cannot yield an error, so scans record it here; db.Update
// refuses to commit while it is set.
func (tx *Tx) Err() error { return tx.iterErr }

// ID returns the transaction id.
func (tx *Tx) ID() uint64 { return tx.inner.ID() }

// Now returns the transaction's current virtual time.
func (tx *Tx) Now() sim.Time { return tx.inner.Now() }

// ResponseTime returns the virtual time elapsed since Begin.
func (tx *Tx) ResponseTime() sim.Duration { return tx.inner.ResponseTime() }

// Lock acquires a logical lock (e.g. "DISTRICT:1:3") in the given mode.  A
// lock-wait timeout (deadlock victim) is reported as ErrConflict.
func (tx *Tx) Lock(key string, mode LockMode) error { return publicErr(tx.inner.Lock(key, mode)) }

// Charge adds CPU time to the transaction.
func (tx *Tx) Charge(d sim.Duration) { tx.inner.Charge(d) }

// Commit commits the transaction, forcing the WAL, and returns its final
// virtual time.
func (tx *Tx) Commit() (sim.Time, error) {
	done, err := tx.inner.Commit()
	tx.release()
	if err == nil {
		tx.db.maybeCheckpoint(done)
	}
	return done, publicErr(err)
}

// Abort aborts the transaction.
func (tx *Tx) Abort() sim.Time {
	done := tx.inner.Abort()
	tx.release()
	return done
}

func (tx *Tx) chargeOp() { tx.inner.Charge(tx.db.cfg.CPUPerOp) }

// Table is a handle to a heap table.
type Table struct {
	db       *DB
	heap     *storage.HeapFile
	name     string
	objectID uint32
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// ObjectID returns the table's catalog object id.
func (t *Table) ObjectID() uint32 { return t.objectID }

// RowCount returns the number of live rows.
func (t *Table) RowCount() int64 { return t.heap.RecordCount() }

// PageCount returns the number of heap pages.
func (t *Table) PageCount() int64 { return t.heap.PageCount() }

// Insert adds a row and returns its RID.
func (t *Table) Insert(tx *Tx, row []byte) (RID, error) {
	tx.chargeOp()
	rid, done, err := t.heap.Insert(tx.Now(), row)
	if err != nil {
		return RID{}, err
	}
	tx.inner.AdvanceTo(done)
	tx.inner.Log(wal.RecInsert, t.objectID, wal.EncodeRowPayload(rid, row))
	t.db.objStats.RecordAppend(t.name, 1)
	return rid, nil
}

// Get returns the row stored under rid.  An unknown or deleted record is
// reported as ErrNotFound.
func (t *Table) Get(tx *Tx, rid RID) ([]byte, error) {
	tx.chargeOp()
	row, done, err := t.heap.Get(tx.Now(), rid)
	if err != nil {
		return nil, publicErr(err)
	}
	tx.inner.AdvanceTo(done)
	return row, nil
}

// Update replaces the row stored under rid.
func (t *Table) Update(tx *Tx, rid RID, row []byte) error {
	tx.chargeOp()
	done, err := t.heap.Update(tx.Now(), rid, row)
	if err != nil {
		return publicErr(err)
	}
	tx.inner.AdvanceTo(done)
	tx.inner.Log(wal.RecUpdate, t.objectID, wal.EncodeRowPayload(rid, row))
	return nil
}

// Delete removes the row stored under rid.
func (t *Table) Delete(tx *Tx, rid RID) error {
	tx.chargeOp()
	done, err := t.heap.Delete(tx.Now(), rid)
	if err != nil {
		return publicErr(err)
	}
	tx.inner.AdvanceTo(done)
	tx.inner.Log(wal.RecDelete, t.objectID, rid.Encode())
	return nil
}

// Scan iterates over all rows; fn returning false stops the scan.
//
// Deprecated: use Rows, which returns a standard iterator:
//
//	for rid, row := range tbl.Rows(tx) { ... }
func (t *Table) Scan(tx *Tx, fn func(rid RID, row []byte) bool) error {
	tx.chargeOp()
	done, err := t.heap.Scan(tx.Now(), fn)
	if err != nil {
		return err
	}
	tx.inner.AdvanceTo(done)
	return nil
}

// Index is a handle to a B+-tree index.
type Index struct {
	db   *DB
	tree *btree.Tree
	meta catalog.Index
}

// Name returns the index name.
func (i *Index) Name() string { return i.meta.Name }

// Table returns the indexed table's name.
func (i *Index) Table() string { return i.meta.Table }

// Unique reports whether the index was declared unique.
func (i *Index) Unique() bool { return i.meta.Unique }

// Entries returns the number of index entries.
func (i *Index) Entries() int64 { return i.tree.Entries() }

// Insert adds (or replaces) the entry key -> rid.
func (i *Index) Insert(tx *Tx, key []byte, rid RID) error {
	tx.chargeOp()
	done, err := i.tree.Insert(tx.Now(), key, rid.Encode())
	if err != nil {
		return err
	}
	tx.inner.AdvanceTo(done)
	tx.inner.Log(wal.RecIndexInsert, i.meta.ObjectID, wal.EncodeIndexInsert(key, rid))
	return nil
}

// Lookup returns the RID stored under key.
func (i *Index) Lookup(tx *Tx, key []byte) (RID, bool, error) {
	tx.chargeOp()
	val, done, found, err := i.tree.Get(tx.Now(), key)
	if err != nil {
		return RID{}, false, err
	}
	tx.inner.AdvanceTo(done)
	if !found {
		return RID{}, false, nil
	}
	rid, err := storage.DecodeRID(val)
	if err != nil {
		return RID{}, false, err
	}
	return rid, true, nil
}

// Delete removes the entry stored under key.
func (i *Index) Delete(tx *Tx, key []byte) error {
	tx.chargeOp()
	done, err := i.tree.Delete(tx.Now(), key)
	if err != nil {
		return err
	}
	tx.inner.AdvanceTo(done)
	tx.inner.Log(wal.RecIndexDelete, i.meta.ObjectID, key)
	return nil
}

// Scan iterates over entries with startKey <= key < endKey (nil endKey means
// to the end); fn returning false stops the scan.
//
// Deprecated: use Range, which returns a standard iterator:
//
//	for key, rid := range idx.Range(tx, lo, hi) { ... }
func (i *Index) Scan(tx *Tx, startKey, endKey []byte, fn func(key []byte, rid RID) bool) error {
	tx.chargeOp()
	done, err := i.tree.Scan(tx.Now(), startKey, endKey, func(k, v []byte) bool {
		rid, err := storage.DecodeRID(v)
		if err != nil {
			return false
		}
		return fn(k, rid)
	})
	if err != nil {
		return err
	}
	tx.inner.AdvanceTo(done)
	return nil
}

// ScanPrefix iterates over every entry whose key begins with prefix.
func (i *Index) ScanPrefix(tx *Tx, prefix []byte, fn func(key []byte, rid RID) bool) error {
	tx.chargeOp()
	done, err := i.tree.ScanPrefix(tx.Now(), prefix, func(k, v []byte) bool {
		rid, err := storage.DecodeRID(v)
		if err != nil {
			return false
		}
		return fn(k, rid)
	})
	if err != nil {
		return err
	}
	tx.inner.AdvanceTo(done)
	return nil
}

// Key builds an order-preserving composite key of uint32 components (a
// re-export of the btree helper for callers of the public API).
func Key(parts ...uint32) []byte { return btree.Key(parts...) }

// KeyBuilder re-exports the composite-key builder.
type KeyBuilder = btree.KeyBuilder

// NewKeyBuilder returns an empty composite-key builder.
func NewKeyBuilder() *KeyBuilder { return btree.NewKeyBuilder() }

// RegionSpec, AdvisorOptions, PlacementPlan and Hint re-export the core types
// used through the public API.
type (
	// LPN is a logical page number in the NoFTL space manager's address
	// space (exposed for callers that drive the space manager directly).
	LPN = core.LPN
	// Hint is the placement hint attached to a page write.
	Hint = core.Hint
	// RegionSpec describes a region to create programmatically.
	RegionSpec = core.RegionSpec
	// AdvisorOptions tunes the Region Advisor.
	AdvisorOptions = core.AdvisorOptions
	// PlacementPlan is the advisor's output.
	PlacementPlan = core.PlacementPlan
	// SpaceStats is the space manager statistics snapshot.
	SpaceStats = core.Stats
	// RegionStats is the per-region statistics snapshot.
	RegionStats = core.RegionStats
)
