package noftl

import (
	"io"
	"time"

	"noftl/internal/core"
	"noftl/internal/flash"
)

// Re-exported configuration types, so callers can tune every layer without
// importing internal packages.
type (
	// FlashConfig configures the simulated native flash device (geometry,
	// NAND timing, endurance).
	FlashConfig = flash.Config
	// DeviceGeometry describes the flash device's physical shape (channels,
	// dies, blocks, pages).
	DeviceGeometry = flash.Geometry
	// SpaceOptions configures the NoFTL space manager (placement mode,
	// over-provisioning, GC watermarks and default policy, wear leveling).
	SpaceOptions = core.Options
	// GCPolicy is a per-region garbage-collection policy (victim selection,
	// background step size, hot/cold separation).
	GCPolicy = core.GCPolicy
	// PlacementMode selects region-aware or traditional placement.
	PlacementMode = core.PlacementMode
	// FaultPlan configures deterministic fault injection on the flash device
	// (crash points, torn tail writes, program and erase failures).
	FaultPlan = flash.FaultPlan
)

// Option is a functional configuration option for Open.  Options are applied
// in order over DefaultConfig(), so later options override earlier ones and
// a preset (WithConfig, WithPaperScale) can be refined by the options that
// follow it.
type Option func(*Config)

// WithConfig replaces the whole configuration with cfg.  Use it to start
// from a fully built Config (e.g. an experiment preset) and refine it with
// further options.
func WithConfig(cfg Config) Option {
	return func(c *Config) { *c = cfg }
}

// WithFlash replaces the flash device configuration.
func WithFlash(fc FlashConfig) Option {
	return func(c *Config) { c.Flash = fc }
}

// WithGeometry replaces only the device geometry, keeping NAND timing and
// endurance as configured.
func WithGeometry(geo DeviceGeometry) Option {
	return func(c *Config) { c.Flash.Geometry = geo }
}

// WithSpace replaces the space-manager options.
func WithSpace(opts SpaceOptions) Option {
	return func(c *Config) { c.Space = opts }
}

// WithPlacement selects the placement mode (PlacementRegions or
// PlacementTraditional).
func WithPlacement(mode PlacementMode) Option {
	return func(c *Config) { c.Space.Mode = mode }
}

// WithGCPolicy sets the default per-region garbage-collection policy
// (overridable per region via CREATE/ALTER REGION).
func WithGCPolicy(gc GCPolicy) Option {
	return func(c *Config) { c.Space.GC = gc }
}

// WithBufferPoolPages sets the number of page frames in the buffer pool.
func WithBufferPoolPages(n int) Option {
	return func(c *Config) { c.BufferPoolPages = n }
}

// WithWAL enables or disables write-ahead logging.
func WithWAL(enabled bool) Option {
	return func(c *Config) { c.WAL = enabled }
}

// WithWALGroupCommit tunes the WAL's group commit: the log-force leader
// lingers up to delay (wall clock) for up to batch committers to queue, then
// forces the log once for all of them.  Concurrent committers always
// piggyback on an in-flight force even without this option; the linger just
// makes groups form under moderate concurrency.  batch <= 1 or delay <= 0
// disables the linger.
//
//	db, _ := noftl.Open(noftl.WithWALGroupCommit(8, 200*time.Microsecond))
func WithWALGroupCommit(batch int, delay time.Duration) Option {
	return func(c *Config) {
		c.WALCommitBatch = batch
		c.WALCommitDelay = delay
	}
}

// WithBufferPoolShards overrides the buffer pool's shard count (zero = size
// automatically from the frame count).  More shards reduce frame-table
// contention between concurrent workers; each shard runs its own CLOCK over
// its slice of the frames.
func WithBufferPoolShards(n int) Option {
	return func(c *Config) { c.BufferPoolShards = n }
}

// WithLockTimeout sets the lock-wait timeout (the deadlock safety net).
func WithLockTimeout(d time.Duration) Option {
	return func(c *Config) { c.LockTimeout = d }
}

// WithCPUPerOp sets the CPU time charged per row or index operation.
func WithCPUPerOp(d time.Duration) Option {
	return func(c *Config) { c.CPUPerOp = d }
}

// WithExtentPages sets the default tablespace extent size in pages.
func WithExtentPages(n int) Option {
	return func(c *Config) { c.ExtentPages = n }
}

// WithReadAhead sets the number of sequentially-next pages the buffer pool
// prefetches through the I/O scheduler on a demand miss.  Read-ahead is off
// by default (see Config.ReadAheadPages); scan-heavy workloads typically
// enable 4–8 pages:
//
//	db, _ := noftl.Open(noftl.WithReadAhead(8))
func WithReadAhead(pages int) Option {
	return func(c *Config) { c.ReadAheadPages = pages }
}

// WithGroupWriteBack enables or disables batched (die-striped) write-back of
// dirty pages.  It is on by default.
func WithGroupWriteBack(enabled bool) Option {
	return func(c *Config) { c.DisableGroupWriteBack = !enabled }
}

// WithTrace enables event tracing and dumps the recorded events to w as
// JSONL when the database is closed (the stream the noftl-trace CLI
// consumes).  Tracing is off by default; see Config.TraceWriter.
func WithTrace(w io.Writer) Option {
	return func(c *Config) { c.TraceWriter = w }
}

// WithTraceBuffer sets the trace ring-buffer capacity in events and enables
// tracing (even without a TraceWriter — the events are then reachable through
// Admin().TraceDump).  Zero keeps the 65536-event default capacity.
func WithTraceBuffer(n int) Option {
	return func(c *Config) {
		c.TraceBufferEvents = n
		if c.TraceBufferEvents <= 0 {
			c.TraceBufferEvents = -1 // explicit "enabled, default capacity"
		}
	}
}

// WithCheckpointEvery enables periodic checkpoints: one is taken whenever
// interval of simulated time has passed or bytes of WAL have been appended
// since the last checkpoint (zero disables the respective trigger; the checks
// run after each commit).  Checkpoints bound crash-recovery replay: recovery
// restores the last snapshot and replays only the log written after it.
//
//	db, _ := noftl.Open(noftl.WithCheckpointEvery(time.Second, 256<<10))
func WithCheckpointEvery(interval time.Duration, bytes int64) Option {
	return func(c *Config) {
		c.CheckpointEvery = interval
		c.CheckpointEveryBytes = bytes
	}
}

// WithLightCheckpoints switches checkpoints to the light form: flush dirty
// pages and truncate the whole WAL without appending a logical snapshot.
// This bounds the WAL at near-zero cost but gives up crash recovery (Reopen
// refuses such a log) — the classic reduced-durability benchmark regime.
func WithLightCheckpoints() Option {
	return func(c *Config) { c.DisableSnapshotCheckpoints = true }
}

// WithFaultPlan arms deterministic fault injection on the flash device the
// moment it is created.  With the same plan (and the same workload) every
// fault fires at the same point, so crash tests are reproducible.  See
// Admin().ArmFaults to arm a plan later (e.g. after schema setup).
func WithFaultPlan(plan FaultPlan) Option {
	return func(c *Config) { c.FaultPlan = plan }
}

// WithMetricsListener serves Prometheus text metrics (plus /healthz and
// pprof) on an HTTP listener at addr, e.g. "127.0.0.1:9090" or
// "127.0.0.1:0" for a free port (DB.MetricsAddr() reports the bound
// address).
func WithMetricsListener(addr string) Option {
	return func(c *Config) { c.MetricsAddr = addr }
}

// WithPaperScale configures the flash device like the paper's evaluation
// platform (64 dies behind 8 channels); blocksPerDie scales the device size.
// It is the option form of PaperConfig.
func WithPaperScale(blocksPerDie int) Option {
	return func(c *Config) { c.Flash = flash.PaperConfig(blocksPerDie) }
}

// Open creates a database over a fresh simulated flash device.  The
// configuration starts from DefaultConfig() and is refined by the options in
// order:
//
//	db, err := noftl.Open()                                  // all defaults
//	db, err := noftl.Open(noftl.WithBufferPoolPages(4096),
//	                      noftl.WithReadAhead(8))
//	db, err := noftl.Open(noftl.WithPaperScale(512))         // paper platform
func Open(opts ...Option) (*DB, error) {
	cfg := DefaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	return OpenConfig(cfg)
}

// OpenConfig creates a database from a fully built Config, then applies any
// further options.  Open is the idiomatic entry point; OpenConfig suits
// callers that assemble configurations programmatically (benchmark
// harnesses, tests).
func OpenConfig(cfg Config, opts ...Option) (*DB, error) {
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg = cfg.withDefaults()
	dev, err := flash.NewDevice(cfg.Flash)
	if err != nil {
		return nil, err
	}
	if cfg.FaultPlan != (FaultPlan{}) {
		dev.Arm(cfg.FaultPlan)
	}
	return openOn(cfg, dev)
}
