package noftl

import (
	"encoding/json"
	"errors"
	"fmt"

	"noftl/internal/btree"
	"noftl/internal/catalog"
	"noftl/internal/core"
	"noftl/internal/flash"
	"noftl/internal/sim"
	"noftl/internal/storage"
	"noftl/internal/wal"
)

// RecoveryStats summarises what crash recovery found and did.  Reopen stores
// one on the recovered database (DB.Recovery).
type RecoveryStats struct {
	// CheckpointFound reports whether a complete checkpoint snapshot
	// survived; CheckpointBytes is its decoded size.
	CheckpointFound bool
	CheckpointBytes int64
	// SnapshotRows and SnapshotIndexEntries count what the snapshot restored.
	SnapshotRows         int64
	SnapshotIndexEntries int64
	// LogRecords and LogBytes cover the whole surviving record stream;
	// ReplayedRecords and ReplayedBytes only the window after the checkpoint
	// (what recovery actually had to redo — checkpoints exist to bound it).
	LogRecords      int
	LogBytes        int64
	ReplayedRecords int
	ReplayedBytes   int64
	// CommittedTxns and LoserTxns count transactions in the replay window:
	// winners are redone through the normal heap/btree path, losers (no
	// durable commit record) are simply not replayed.
	CommittedTxns int
	LoserTxns     int
	// SkippedRecords counts replay records that could not be applied (e.g.
	// a record of an object dropped again before the crash).
	SkippedRecords int
	// TornRecords and TornTail describe the log tail: records lost from the
	// final, possibly interrupted log write.  Torn records were never
	// acknowledged, so losing them is correct.
	TornRecords int
	TornTail    bool
	// StaleRecords counts records from pre-truncation log segments the scan
	// discarded (their effects are covered by the checkpoint).
	StaleRecords int
}

// Recovery returns the statistics of the crash recovery that produced this
// database, or false when it was opened fresh.
func (db *DB) Recovery() (RecoveryStats, bool) {
	if db.recovery == nil {
		return RecoveryStats{}, false
	}
	return *db.recovery, true
}

// CrashImage is the device state surviving a crash: what a real machine
// would find on its flash after power loss.  Obtain one with DB.Crash, hand
// it to Reopen to run recovery.
type CrashImage struct {
	cfg Config
	dev *flash.Device
}

// Crash abandons the database without flushing anything: buffered pages,
// unforced log records and all in-memory state are lost, exactly as in a
// power failure.  Only the metrics listener is shut down (it holds an OS
// port).  The returned image can be reopened with Reopen.  Crash is also the
// way out after an injected crash (ErrCrashed): the device refuses all
// operations until Reopen revives it.
func (db *DB) Crash() *CrashImage {
	db.mu.Lock()
	db.closed = true
	db.mu.Unlock()
	if db.msrv != nil {
		db.msrv.shutdown()
	}
	return &CrashImage{cfg: db.cfg, dev: db.dev}
}

// Reopen runs crash recovery over a crashed database's device and returns a
// fresh, consistent database:
//
//  1. the flash is scanned block by block; every page's out-of-band metadata
//     (LPN, sequence number, flags) rebuilds the logical-to-physical mapping
//     and the wear state — the NoFTL model's self-describing pages make the
//     mapping recoverable from the device alone;
//  2. the surviving WAL pages are reassembled into the durable record
//     stream, detecting and truncating a torn final write;
//  3. the last complete checkpoint snapshot restores schema and data, then
//     committed post-checkpoint transactions are replayed in LSN order
//     through the normal heap/btree/buffer path; losers are discarded;
//  4. the space manager's invariants are verified and a fresh checkpoint is
//     written, so the new log is self-contained.
//
// The options are applied on top of the crashed instance's configuration;
// any armed fault plan is cleared (pass WithFaultPlan again to re-arm).
// Record identifiers are NOT stable across recovery: rows keep their
// contents and index entries keep addressing them, but RIDs are reassigned
// by the rebuild.
func Reopen(img *CrashImage, opts ...Option) (*DB, error) {
	cfg := img.cfg
	cfg.FaultPlan = FaultPlan{}
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg = cfg.withDefaults()
	img.dev.Revive()
	if cfg.FaultPlan != (FaultPlan{}) {
		img.dev.Arm(cfg.FaultPlan)
	}
	return reopenOn(cfg, img.dev)
}

// reopenOn is the recovery pipeline described on Reopen.
func reopenOn(cfg Config, dev *flash.Device) (*DB, error) {
	space, rep, err := core.RecoverManager(dev, cfg.Space)
	if err != nil {
		return nil, err
	}

	// Read back every surviving version of every WAL page.
	pageSize := dev.Geometry().PageSize
	images := make([]wal.PageImage, 0, len(rep.LogVersions))
	var now sim.Time
	for _, v := range rep.LogVersions {
		data, _, done, err := dev.ReadPage(now, v.Addr, make([]byte, pageSize))
		if err != nil {
			return nil, err
		}
		now = done
		images = append(images, wal.PageImage{LPN: v.LPN, Seq: v.Seq, Data: data})
	}
	scan, err := wal.ScanImages(images)
	if err != nil {
		return nil, tag(ErrCorruptLog, err)
	}
	snapData, endLSN, snapOK := wal.LastCheckpoint(scan.Records)
	if scan.StaleRecords > 0 && !snapOK {
		return nil, fmt.Errorf("%w: log prefix missing and no covering checkpoint", ErrCorruptLog)
	}

	// The rebuild is logical: drop every adopted logical page (heap, index
	// and old log alike) so the dies are empty again, then recreate regions,
	// schema and data from the snapshot plus redo.  The old physical pages
	// become garbage the collector reclaims like any other invalid page.
	for _, lpn := range rep.DataLPNs {
		_ = space.TrimPage(lpn)
	}
	seen := make(map[core.LPN]bool)
	for _, v := range rep.LogVersions {
		if !seen[v.LPN] {
			seen[v.LPN] = true
			_ = space.TrimPage(v.LPN)
		}
	}

	db, err := openWith(cfg, dev, space)
	if err != nil {
		return nil, err
	}
	db.recovering = true
	db.clock.Observe(now)

	rst := &RecoveryStats{
		LogRecords:   len(scan.Records),
		LogBytes:     scan.Bytes,
		TornRecords:  scan.TornRecords,
		TornTail:     scan.TornTail,
		StaleRecords: scan.StaleRecords,
	}

	ridMap := make(map[RID]RID)
	var snap ckptSnapshot
	if snapOK && len(snapData) > 0 {
		if err := json.Unmarshal(snapData, &snap); err != nil {
			return nil, tag(ErrCorruptLog, err)
		}
		rst.CheckpointFound = true
		rst.CheckpointBytes = int64(len(snapData))
		if err := db.restoreSnapshot(&snap, ridMap, rst); err != nil {
			return nil, err
		}
	} else if snapOK {
		// An empty checkpoint record is the light (reduced-durability) form:
		// the log below it was truncated without capturing a snapshot, so the
		// pre-checkpoint database cannot be rebuilt.  Refusing is the only
		// honest answer.
		return nil, fmt.Errorf("%w: last checkpoint carries no snapshot (light checkpoints give up crash recovery)", ErrCorruptLog)
	}

	if err := db.replayLog(scan.Records, endLSN, ridMap, rst); err != nil {
		return nil, err
	}

	if err := db.space.VerifyIntegrity(); err != nil {
		return nil, fmt.Errorf("noftl: recovery verification: %w", err)
	}

	// Seed id generators past everything the old instance handed out.
	maxTxn := snap.NextTxnID
	for _, r := range scan.Records {
		if r.Type != wal.RecCheckpoint && r.TxnID > maxTxn {
			maxTxn = r.TxnID
		}
	}
	db.txns.SeedNextID(maxTxn)
	var maxObj uint32
	db.mu.RLock()
	for id := range db.objectNames {
		if id > maxObj {
			maxObj = id
		}
	}
	db.mu.RUnlock()
	db.cat.EnsureNextObjectID(maxObj + 1)

	db.recovering = false
	db.recovery = rst
	// A fresh checkpoint makes the new log self-contained (the old log pages
	// were trimmed above, so nothing references them anymore).
	if _, err := db.Checkpoint(db.clock.Now()); err != nil {
		return nil, err
	}
	return db, nil
}

// restoreSnapshot recreates schema and data from a checkpoint snapshot,
// filling ridMap with the old-RID-to-new-RID translation replay needs.
func (db *DB) restoreSnapshot(snap *ckptSnapshot, ridMap map[RID]RID, rst *RecoveryStats) error {
	if err := db.space.SetGCPolicy(core.DefaultRegionName, snap.DefaultGC); err != nil {
		return err
	}
	for _, r := range snap.Regions {
		spec := RegionSpec{
			Name:         r.Name,
			MaxChips:     r.MaxChips,
			MaxChannels:  r.MaxChannels,
			MaxSizeBytes: r.MaxSizeBytes,
			Dies:         r.Dies,
		}
		gc := r.GC
		spec.GC = &gc
		if err := db.CreateRegion(spec); err != nil {
			return fmt.Errorf("noftl: recovery: region %q: %w", r.Name, err)
		}
	}
	for _, ts := range snap.Spaces {
		if err := db.CreateTablespace(ts.Name, ts.Region, ts.ExtentPages); err != nil {
			return fmt.Errorf("noftl: recovery: tablespace %q: %w", ts.Name, err)
		}
	}
	now := db.clock.Now()
	for _, ct := range snap.Tables {
		t, err := db.createTableWithID(ct.Meta)
		if err != nil {
			return fmt.Errorf("noftl: recovery: table %q: %w", ct.Meta.Name, err)
		}
		for _, row := range ct.Rows {
			oldRID, err := storage.DecodeRID(row.RID)
			if err != nil {
				return tag(ErrCorruptLog, err)
			}
			newRID, done, err := t.heap.Insert(now, row.Row)
			if err != nil {
				return err
			}
			now = done
			ridMap[oldRID] = newRID
			rst.SnapshotRows++
		}
	}
	for _, ci := range snap.Indexes {
		idx, err := db.createIndexWithID(ci.Meta)
		if err != nil {
			return fmt.Errorf("noftl: recovery: index %q: %w", ci.Meta.Name, err)
		}
		for _, e := range ci.Entries {
			val := e.RID
			if oldRID, err := storage.DecodeRID(e.RID); err == nil {
				if newRID, ok := ridMap[oldRID]; ok {
					val = newRID.Encode()
				}
			}
			done, err := idx.tree.Insert(now, e.Key, val)
			if err != nil {
				return err
			}
			now = done
			rst.SnapshotIndexEntries++
		}
	}
	db.clock.Observe(now)
	return nil
}

// replayLog redoes the committed transactions of the post-checkpoint window
// through the normal heap/btree path, in LSN order.  Losers are not
// replayed; their effects never reached the rebuilt state, so no undo is
// needed.
func (db *DB) replayLog(recs []wal.Record, afterLSN uint64, ridMap map[RID]RID, rst *RecoveryStats) error {
	committed := make(map[uint64]bool)
	started := make(map[uint64]bool)
	for _, r := range recs {
		if r.LSN <= afterLSN || r.Type == wal.RecCheckpoint {
			continue
		}
		if r.Type == wal.RecCommit {
			committed[r.TxnID] = true
		}
		if r.Type == wal.RecBegin {
			started[r.TxnID] = true
		}
	}
	rst.CommittedTxns = len(committed)
	for id := range started {
		if !committed[id] {
			rst.LoserTxns++
		}
	}

	db.mu.RLock()
	tablesByID := make(map[uint32]*Table, len(db.tables))
	for _, t := range db.tables {
		tablesByID[t.objectID] = t
	}
	indexesByID := make(map[uint32]*Index, len(db.indexes))
	for _, i := range db.indexes {
		indexesByID[i.meta.ObjectID] = i
	}
	db.mu.RUnlock()

	translate := func(old RID) (RID, bool) {
		if nrid, ok := ridMap[old]; ok {
			return nrid, true
		}
		return RID{}, false
	}

	now := db.clock.Now()
	for _, r := range recs {
		if r.LSN <= afterLSN {
			continue
		}
		rst.ReplayedRecords++
		rst.ReplayedBytes += int64(wal.RecordSize(r))
		if !committed[r.TxnID] && r.Type != wal.RecCheckpoint {
			continue
		}
		switch r.Type {
		case wal.RecInsert:
			rid, row, err := wal.DecodeRowPayload(r.Payload)
			if err != nil {
				return tag(ErrCorruptLog, err)
			}
			t := tablesByID[r.ObjectID]
			if t == nil {
				rst.SkippedRecords++
				continue
			}
			newRID, done, err := t.heap.Insert(now, row)
			if err != nil {
				return err
			}
			now = done
			ridMap[rid] = newRID
		case wal.RecUpdate:
			rid, row, err := wal.DecodeRowPayload(r.Payload)
			if err != nil {
				return tag(ErrCorruptLog, err)
			}
			t := tablesByID[r.ObjectID]
			nrid, ok := translate(rid)
			if t == nil || !ok {
				rst.SkippedRecords++
				continue
			}
			done, err := t.heap.Update(now, nrid, row)
			if err != nil {
				if errors.Is(err, storage.ErrNotFound) {
					rst.SkippedRecords++
					continue
				}
				return err
			}
			now = done
		case wal.RecDelete:
			rid, _, err := wal.DecodeRowPayload(r.Payload)
			if err != nil {
				return tag(ErrCorruptLog, err)
			}
			t := tablesByID[r.ObjectID]
			nrid, ok := translate(rid)
			if t == nil || !ok {
				rst.SkippedRecords++
				continue
			}
			done, err := t.heap.Delete(now, nrid)
			if err != nil {
				if errors.Is(err, storage.ErrNotFound) {
					rst.SkippedRecords++
					continue
				}
				return err
			}
			now = done
			delete(ridMap, rid)
		case wal.RecIndexInsert:
			key, rid, err := wal.DecodeIndexInsert(r.Payload)
			if err != nil {
				return tag(ErrCorruptLog, err)
			}
			idx := indexesByID[r.ObjectID]
			if idx == nil {
				rst.SkippedRecords++
				continue
			}
			val := rid.Encode()
			if nrid, ok := translate(rid); ok {
				val = nrid.Encode()
			}
			done, err := idx.tree.Insert(now, key, val)
			if err != nil {
				return err
			}
			now = done
		case wal.RecIndexDelete:
			idx := indexesByID[r.ObjectID]
			if idx == nil {
				rst.SkippedRecords++
				continue
			}
			done, err := idx.tree.Delete(now, r.Payload)
			if err != nil {
				if errors.Is(err, btree.ErrNotFound) {
					rst.SkippedRecords++
					continue
				}
				return err
			}
			now = done
		}
	}
	db.clock.Observe(now)
	return nil
}

// createTableWithID registers a table under its pre-crash object id (the
// recovery twin of CreateTable, which allocates a fresh id).
func (db *DB) createTableWithID(meta catalog.Table) (*Table, error) {
	ts, err := db.tablespace(meta.Tablespace)
	if err != nil {
		return nil, err
	}
	if err := db.cat.AddTable(meta); err != nil {
		return nil, publicErr(err)
	}
	heap := storage.NewHeapFile(meta.Name, meta.ObjectID, ts, db.pool)
	t := &Table{db: db, heap: heap, name: meta.Name, objectID: meta.ObjectID}
	db.mu.Lock()
	db.tables[meta.Name] = t
	db.objectNames[meta.ObjectID] = meta.Name
	db.mu.Unlock()
	db.objStats.Register(meta.Name, "table", ts.Name())
	return t, nil
}

// createIndexWithID registers an index under its pre-crash object id.
func (db *DB) createIndexWithID(meta catalog.Index) (*Index, error) {
	ts, err := db.tablespace(meta.Tablespace)
	if err != nil {
		return nil, err
	}
	if err := db.cat.AddIndex(meta); err != nil {
		return nil, publicErr(err)
	}
	tree, _, err := btreeNew(db.clock.Now(), meta.Name, meta.ObjectID, ts, db.pool)
	if err != nil {
		return nil, err
	}
	idx := &Index{db: db, tree: tree, meta: meta}
	db.mu.Lock()
	db.indexes[meta.Name] = idx
	db.objectNames[meta.ObjectID] = meta.Name
	db.mu.Unlock()
	db.objStats.Register(meta.Name, "index", ts.Name())
	return idx, nil
}
