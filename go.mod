module noftl

go 1.22
