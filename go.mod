module noftl

go 1.23
