package noftl

import (
	"encoding/json"
	"fmt"

	"noftl/internal/catalog"
	"noftl/internal/core"
	"noftl/internal/sim"
	"noftl/internal/wal"
)

// Checkpoints are full logical snapshots: the schema (regions with their die
// assignments, tablespaces, tables, indexes) plus every live row and index
// entry.  Recovery rebuilds the database from the last complete snapshot and
// replays only the log records written after it, so no undo pass and no
// physical-page redo are needed — the replay runs through the normal
// heap/btree/buffer path.  The snapshot is JSON (struct field order makes the
// bytes deterministic) chunked into RecCheckpoint records whose TxnID carries
// the checkpoint sequence number, so recovery can tell apart the chunks of
// two checkpoints that coexist in the log.
//
// The cost is proportional to the live data, which is the trade-off for
// replacing page-level ARIES machinery in a system whose durable state
// otherwise lives only in the WAL: checkpoints are opt-in (WithCheckpointEvery)
// except after DDL, which must snapshot because schema changes are not
// logged as records.

// ckptRow is one live heap row: its RID at snapshot time (recovery builds an
// old-to-new RID translation from it) and the row image.
type ckptRow struct {
	RID []byte
	Row []byte
}

// ckptEntry is one live index entry: key and the RID bytes it stored.
type ckptEntry struct {
	Key []byte
	RID []byte
}

type ckptRegion struct {
	Name         string
	MaxChips     int
	MaxChannels  int
	MaxSizeBytes int64
	Dies         []int // the dies actually assigned, re-pinned on recovery
	GC           core.GCPolicy
}

type ckptTablespace struct {
	Name        string
	Region      string
	ExtentPages int
}

type ckptTable struct {
	Meta catalog.Table
	Rows []ckptRow
}

type ckptIndex struct {
	Meta    catalog.Index
	Entries []ckptEntry
}

// ckptSnapshot is the full logical state of the database at a quiesced
// point: no transaction is in flight when it is taken, so it is
// transaction-consistent by construction.
type ckptSnapshot struct {
	Version   int
	NextTxnID uint64 // highest transaction id handed out so far
	DefaultGC core.GCPolicy
	Regions   []ckptRegion
	Spaces    []ckptTablespace
	Tables    []ckptTable
	Indexes   []ckptIndex
}

// buildSnapshot captures the full logical state.  The caller holds the
// checkpoint quiesce lock exclusively.
func (db *DB) buildSnapshot(now sim.Time) (*ckptSnapshot, sim.Time, error) {
	snap := &ckptSnapshot{Version: 1, NextTxnID: db.txns.NextID()}
	if gc, ok := db.space.GCPolicyOf(core.DefaultRegionName); ok {
		snap.DefaultGC = gc
	}

	// Regions: catalog entries plus the live die assignment, so recovery
	// recreates each region on exactly the dies it owned.
	dies := make(map[string][]int)
	for _, r := range db.space.Stats().Regions {
		dies[r.Name] = r.Dies
	}
	for _, r := range db.cat.Regions() {
		snap.Regions = append(snap.Regions, ckptRegion{
			Name:         r.Name,
			MaxChips:     r.MaxChips,
			MaxChannels:  r.MaxChannels,
			MaxSizeBytes: r.MaxSizeBytes,
			Dies:         dies[r.Name],
			GC:           r.GC,
		})
	}
	for _, ts := range db.cat.Tablespaces() {
		if ts.Name == "SYSTEM" {
			continue // implicit: openOn creates it
		}
		snap.Spaces = append(snap.Spaces, ckptTablespace{
			Name: ts.Name, Region: ts.Region, ExtentPages: ts.ExtentPages,
		})
	}

	db.mu.RLock()
	tables := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		tables = append(tables, t)
	}
	indexes := make([]*Index, 0, len(db.indexes))
	for _, i := range db.indexes {
		indexes = append(indexes, i)
	}
	db.mu.RUnlock()

	for _, meta := range db.cat.Tables() {
		var t *Table
		for _, cand := range tables {
			if cand.name == meta.Name {
				t = cand
				break
			}
		}
		if t == nil {
			return nil, now, fmt.Errorf("noftl: checkpoint: table %q has no runtime object", meta.Name)
		}
		ct := ckptTable{Meta: meta}
		done, err := t.heap.Scan(now, func(rid RID, rec []byte) bool {
			row := make([]byte, len(rec))
			copy(row, rec)
			ct.Rows = append(ct.Rows, ckptRow{RID: rid.Encode(), Row: row})
			return true
		})
		if err != nil {
			return nil, now, err
		}
		now = done
		snap.Tables = append(snap.Tables, ct)
	}

	for _, meta := range db.cat.Indexes() {
		var idx *Index
		for _, cand := range indexes {
			if cand.meta.Name == meta.Name {
				idx = cand
				break
			}
		}
		if idx == nil {
			return nil, now, fmt.Errorf("noftl: checkpoint: index %q has no runtime object", meta.Name)
		}
		ci := ckptIndex{Meta: meta}
		done, err := idx.tree.Scan(now, nil, nil, func(k, v []byte) bool {
			key := make([]byte, len(k))
			copy(key, k)
			val := make([]byte, len(v))
			copy(val, v)
			ci.Entries = append(ci.Entries, ckptEntry{Key: key, RID: val})
			return true
		})
		if err != nil {
			return nil, now, err
		}
		now = done
		snap.Indexes = append(snap.Indexes, ci)
	}
	return snap, now, nil
}

// checkpointLocked takes a checkpoint.  The caller holds ckptMu exclusively
// (no transaction is in flight) and has verified the database is open.
func (db *DB) checkpointLocked(now sim.Time) (sim.Time, error) {
	// Flush dirty pages first: not needed for recovery correctness (the
	// snapshot carries the data), but it keeps the buffer pool's write-back
	// debt bounded at the same cadence as the log.
	done, err := db.pool.FlushAll(now)
	if err != nil {
		return done, err
	}
	now = done
	if db.log == nil {
		return now, nil
	}
	if db.cfg.DisableSnapshotCheckpoints {
		return db.lightCheckpointLocked(now)
	}

	snap, now, err := db.buildSnapshot(now)
	if err != nil {
		return now, err
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return now, err
	}

	chunkSize := wal.MaxPayload(db.dev.Geometry().PageSize) - 8 // chunk header
	total := uint32((len(data) + chunkSize - 1) / chunkSize)
	if total == 0 {
		total = 1
	}
	db.ckptSeq++
	seq := db.ckptSeq
	var firstLSN, lastLSN uint64
	for i := uint32(0); i < total; i++ {
		lo := int(i) * chunkSize
		hi := lo + chunkSize
		if hi > len(data) {
			hi = len(data)
		}
		lsn, err := db.log.Append(wal.RecCheckpoint, seq, 0, wal.EncodeCheckpointChunk(i, total, data[lo:hi]))
		if err != nil {
			return now, err
		}
		if i == 0 {
			firstLSN = lsn
		}
		lastLSN = lsn
	}
	now, err = db.log.Flush(now)
	if err != nil {
		return now, err
	}
	// Everything below the snapshot is now redundant: recovery starts from
	// the snapshot and replays only what follows it.
	db.log.Truncate(firstLSN)

	// The counters are read by Stats() and maybeCheckpoint concurrently;
	// db.mu guards them (ckptMu would self-deadlock for a caller that holds
	// an open transaction while snapshotting stats).
	db.mu.Lock()
	db.ckptCount++
	db.ckptLastLSN = lastLSN
	db.ckptChunks += int64(total)
	db.ckptBytes = int64(len(data))
	db.ckptTime = now
	db.ckptWALMark = db.log.BytesAppended()
	db.mu.Unlock()
	return now, nil
}

// lightCheckpointLocked is the reduced-durability checkpoint
// (DisableSnapshotCheckpoints): an empty RecCheckpoint marks the cut, the log
// is truncated below it and no snapshot is taken.  Recovery refuses such a
// log; the mode exists for benchmark runs where checkpoint I/O must not
// distort the measured workload.
func (db *DB) lightCheckpointLocked(now sim.Time) (sim.Time, error) {
	lsn, err := db.log.Append(wal.RecCheckpoint, 0, 0, nil)
	if err != nil {
		return now, err
	}
	now, err = db.log.Flush(now)
	if err != nil {
		return now, err
	}
	db.log.Truncate(db.log.FlushedLSN())

	db.mu.Lock()
	db.ckptCount++
	db.ckptLastLSN = lsn
	db.ckptChunks++
	db.ckptBytes = 0
	db.ckptTime = now
	db.ckptWALMark = db.log.BytesAppended()
	db.mu.Unlock()
	return now, nil
}

// maybeCheckpoint runs after a commit released the quiesce lock: if a
// checkpoint trigger (virtual-time interval or appended WAL bytes, see
// WithCheckpointEvery) is due, one goroutine takes the checkpoint while
// concurrent committers skip past.
func (db *DB) maybeCheckpoint(now sim.Time) {
	if db.log == nil || db.recovering {
		return
	}
	if db.cfg.CheckpointEvery <= 0 && db.cfg.CheckpointEveryBytes <= 0 {
		return
	}
	db.mu.RLock()
	lastAt, walMark := db.ckptTime, db.ckptWALMark
	db.mu.RUnlock()
	due := false
	if db.cfg.CheckpointEvery > 0 && now.Sub(lastAt) >= sim.Duration(db.cfg.CheckpointEvery) {
		due = true
	}
	if db.cfg.CheckpointEveryBytes > 0 && db.log.BytesAppended()-walMark >= db.cfg.CheckpointEveryBytes {
		due = true
	}
	if !due || !db.ckptRunning.CompareAndSwap(false, true) {
		return
	}
	defer db.ckptRunning.Store(false)
	if db.checkOpen() != nil {
		return
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	_, _ = db.checkpointLocked(now)
}

// checkpointAfterDDL takes a synchronous checkpoint after a schema change.
// Schema changes are not logged as WAL records, so the snapshot is the only
// thing that makes them durable; any data written after a DDL therefore
// always has a covering checkpoint to recover from.  Suppressed while
// recovery itself replays DDL, and when WAL is off.
func (db *DB) checkpointAfterDDL() error {
	if db.log == nil || db.recovering || db.cfg.DisableSnapshotCheckpoints {
		// Light mode never snapshots: schema changes are not recoverable
		// there anyway, so the DDL checkpoint would only add I/O.
		return nil
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	_, err := db.checkpointLocked(db.clock.Now())
	return err
}

// CheckpointStats is a snapshot of the checkpoint subsystem's counters
// (nested in Stats().WAL).
type CheckpointStats struct {
	// Count is the number of checkpoints taken since open.
	Count int64
	// Chunks is the total number of RecCheckpoint records appended.
	Chunks int64
	// LastLSN is the LSN of the last checkpoint's final chunk; recovery
	// replays only records after it.
	LastLSN uint64
	// LastBytes is the snapshot size of the last checkpoint in bytes.
	LastBytes int64
	// LastAt is the virtual time of the last checkpoint.
	LastAt sim.Time
}

func (db *DB) checkpointStats() CheckpointStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return CheckpointStats{
		Count:     db.ckptCount,
		Chunks:    db.ckptChunks,
		LastLSN:   db.ckptLastLSN,
		LastBytes: db.ckptBytes,
		LastAt:    db.ckptTime,
	}
}
