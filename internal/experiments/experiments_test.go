package experiments

import (
	"strings"
	"testing"

	"noftl/internal/tpcc"
)

func TestTPCCSetupScales(t *testing.T) {
	for _, sc := range []Scale{ScaleTiny, ScaleSmall, ScalePaper} {
		s := TPCCSetup(sc)
		if err := s.DB.Flash.Geometry.Validate(); err != nil {
			t.Fatalf("%s: invalid geometry: %v", sc, err)
		}
		if s.TPCC.Transactions <= 0 || s.TPCC.Terminals <= 0 {
			t.Fatalf("%s: empty workload", sc)
		}
		if sc.String() == "" {
			t.Fatal("empty scale name")
		}
	}
	if TPCCSetup(ScalePaper).DB.Flash.Geometry.Dies() != 64 {
		t.Fatal("paper scale must have 64 dies")
	}
	if Scale(99).String() != "unknown" {
		t.Fatal("unknown scale name")
	}
}

func TestRunFigure2Tiny(t *testing.T) {
	f2, err := RunFigure2(ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Objects) < 10 {
		t.Fatalf("only %d objects have statistics", len(f2.Objects))
	}
	if len(f2.Plan.Groups) == 0 || len(f2.Plan.Groups) > 6 {
		t.Fatalf("plan has %d groups", len(f2.Plan.Groups))
	}
	total := 0
	for _, g := range f2.Plan.Groups {
		total += g.Dies
	}
	if total != TPCCSetup(ScaleTiny).DB.Flash.Geometry.Dies() {
		t.Fatalf("plan distributes %d dies", total)
	}
	tbl := f2.Table()
	for _, obj := range []string{tpcc.TableStock, tpcc.TableOrderLine, tpcc.TableCustomer} {
		if !strings.Contains(tbl, obj) {
			t.Fatalf("Figure 2 table missing %s:\n%s", obj, tbl)
		}
	}
	if !strings.Contains(PaperFigure2Table(64), "OL_IDX; STOCK") {
		t.Fatal("paper reference table wrong")
	}
}

func TestRunFigure3Tiny(t *testing.T) {
	f3, err := RunFigure3(ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if f3.Traditional.Committed == 0 || f3.Regions.Committed == 0 {
		t.Fatal("runs committed nothing")
	}
	if f3.Traditional.Failed != 0 || f3.Regions.Failed != 0 {
		t.Fatalf("failed transactions: %d / %d", f3.Traditional.Failed, f3.Regions.Failed)
	}
	tbl := f3.Table()
	for _, want := range []string{"TPS", "GC COPYBACKs", "GC ERASEs", "Host READ I/Os", "NewOrder TRX"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("Figure 3 table missing %q:\n%s", want, tbl)
		}
	}
	h := f3.Headline()
	if h.String() == "" {
		t.Fatal("empty headline")
	}
	// At tiny scale GC may barely trigger, so only sanity-check that the
	// metrics were measured at all.
	if f3.Traditional.HostWriteIOs == 0 || f3.Regions.HostWriteIOs == 0 {
		t.Fatal("no host writes measured")
	}
	if f3.Traditional.ReadLatency.Count == 0 {
		t.Fatal("no read latencies measured")
	}
}

func TestAblationParallelism(t *testing.T) {
	res, err := RunAblationParallelism(512, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup < 2 {
		t.Fatalf("striping across 8 dies should speed up batched reads well over 2x, got %.2fx (%v vs %v)",
			res.Speedup, res.SequentialOneDi, res.StripedAllDies)
	}
	if res.String() == "" {
		t.Fatal("empty result string")
	}
}

func TestAblationHotCold(t *testing.T) {
	res, err := RunAblationHotCold(1200, 128, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.MixedCopybacks == 0 {
		t.Fatal("mixed configuration produced no copybacks; workload too small")
	}
	if res.SeparatedWA >= res.MixedWA {
		t.Fatalf("separation did not reduce write amplification: %.2f vs %.2f", res.SeparatedWA, res.MixedWA)
	}
	if res.SepCopybacks >= res.MixedCopybacks {
		t.Fatalf("separation did not reduce copybacks: %d vs %d", res.SepCopybacks, res.MixedCopybacks)
	}
	if res.String() == "" {
		t.Fatal("empty result string")
	}
}

func TestAblationFTLvsNoFTL(t *testing.T) {
	res, err := RunAblationFTLvsNoFTL(800, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if res.FTLMapMisses == 0 {
		t.Fatal("FTL mapping cache never missed; cache sized wrong")
	}
	if res.NoFTLTime >= res.FTLTime {
		t.Fatalf("NoFTL should finish the same workload faster than the FTL stack: %v vs %v",
			res.NoFTLTime, res.FTLTime)
	}
	if res.String() == "" {
		t.Fatal("empty result string")
	}
}

// TestFigure3ShapeSmall verifies the paper's qualitative result at the small
// scale: multi-region placement achieves higher throughput and fewer GC
// copybacks than traditional placement.  It is the slowest test in the
// repository and is skipped with -short.
func TestFigure3ShapeSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping small-scale Figure 3 shape test in -short mode")
	}
	f3, err := RunFigure3(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s\n%s", f3.Table(), f3.Headline().String())
	if f3.Traditional.Failed != 0 || f3.Regions.Failed != 0 {
		t.Fatalf("failed transactions: %d / %d", f3.Traditional.Failed, f3.Regions.Failed)
	}
	if f3.Traditional.GCCopybacks == 0 {
		t.Fatal("traditional run triggered no GC copybacks; device sizing is off")
	}
	if f3.Regions.GCCopybacks >= f3.Traditional.GCCopybacks {
		t.Errorf("regions placement should reduce GC copybacks: %d vs %d",
			f3.Regions.GCCopybacks, f3.Traditional.GCCopybacks)
	}
	if f3.Regions.TPS <= f3.Traditional.TPS {
		t.Errorf("regions placement should increase throughput: %.2f vs %.2f TPS",
			f3.Regions.TPS, f3.Traditional.TPS)
	}
	if f3.Regions.WriteAmp >= f3.Traditional.WriteAmp {
		t.Errorf("regions placement should reduce write amplification: %.2f vs %.2f",
			f3.Regions.WriteAmp, f3.Traditional.WriteAmp)
	}
}

func TestAblationRegionSweepTiny(t *testing.T) {
	points, err := RunAblationRegionSweep(ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].Regions != 1 || points[1].Regions != 6 {
		t.Fatalf("sweep points: %+v", points)
	}
	if !strings.Contains(SweepTable(points), "Regions") {
		t.Fatal("sweep table wrong")
	}
}
