package experiments

import (
	"fmt"
	"time"

	"noftl/internal/core"
	"noftl/internal/flash"
	"noftl/internal/ftl"
	"noftl/internal/metrics"
	"noftl/internal/sim"
)

// The ablation experiments back the individual claims the paper makes in §1
// and §2 (see DESIGN.md, experiments A1–A4).

// ablationDevice returns a small device for the micro ablations.
func ablationDevice(dies, blocksPerDie int) (*flash.Device, error) {
	cfg := flash.DefaultConfig()
	channels := 4
	if dies < channels {
		channels = dies
	}
	cfg.Geometry = flash.Geometry{
		Channels: channels, DiesPerChannel: (dies + channels - 1) / channels, PlanesPerDie: 1,
		BlocksPerDie: blocksPerDie, PagesPerBlock: 64, PageSize: 4096,
	}
	return flash.NewDevice(cfg)
}

// ParallelismResult is the outcome of ablation A1: reading N pages laid out
// sequentially on one die versus striped across all dies.
type ParallelismResult struct {
	Pages           int
	Dies            int
	SequentialOneDi time.Duration // total virtual time, all pages on one die
	StripedAllDies  time.Duration // total virtual time, pages striped over dies
	Speedup         float64
}

func (r ParallelismResult) String() string {
	return fmt.Sprintf("A1 parallelism: %d pages, 1-die sequential %v vs %d-die striped %v (%.1fx)",
		r.Pages, r.SequentialOneDi, r.Dies, r.StripedAllDies, r.Speedup)
}

// RunAblationParallelism backs the §2 claim that distributing logically
// adjacent blocks over dies costs nothing on flash (random ≈ sequential) and
// buys I/O parallelism: the same page set is read back from a single die and
// from a striped layout using batches of outstanding requests.
func RunAblationParallelism(pages, dies, batch int) (ParallelismResult, error) {
	if batch <= 0 {
		batch = 8
	}
	run := func(striped bool) (time.Duration, error) {
		// Size every die so the single-die layout also fits comfortably.
		dev, err := ablationDevice(dies, pages/64+8)
		if err != nil {
			return 0, err
		}
		mgr := core.NewManager(dev, core.DefaultOptions())
		payload := make([]byte, dev.Geometry().PageSize)
		// Write the pages.  The write hint is irrelevant here; what matters
		// is the physical location, which the manager's round-robin striping
		// controls.  For the single-die layout we use a region pinned to one
		// die.
		hint := core.Hint{}
		if !striped {
			r, err := mgr.CreateRegion(core.RegionSpec{Name: "oneDie", Dies: []int{0}})
			if err != nil {
				return 0, err
			}
			hint.Region = r.ID()
		}
		start := mgr.AllocateLPNs(pages)
		now := sim.Time(0)
		for i := 0; i < pages; i++ {
			done, err := mgr.WritePage(now, start+core.LPN(i), payload, hint)
			if err != nil {
				return 0, err
			}
			now = done
		}
		// Read everything back with `batch` outstanding requests, the way a
		// multi-threaded DBMS scan would issue them.  Only the read phase is
		// timed (the write phase is identical setup work in both layouts).
		readStart := now
		cursors := make([]sim.Time, batch)
		for c := range cursors {
			cursors[c] = readStart
		}
		for i := 0; i < pages; i++ {
			c := i % batch
			_, done, err := mgr.ReadPage(cursors[c], start+core.LPN(i), payload)
			if err != nil {
				return 0, err
			}
			cursors[c] = done
		}
		var max sim.Time
		for _, c := range cursors {
			if c > max {
				max = c
			}
		}
		return max.Sub(readStart), nil
	}
	seq, err := run(false)
	if err != nil {
		return ParallelismResult{}, err
	}
	str, err := run(true)
	if err != nil {
		return ParallelismResult{}, err
	}
	res := ParallelismResult{Pages: pages, Dies: dies, SequentialOneDi: seq, StripedAllDies: str}
	if str > 0 {
		res.Speedup = float64(seq) / float64(str)
	}
	return res, nil
}

// HotColdResult is the outcome of ablation A2: write amplification with and
// without hot/cold separation into regions.
type HotColdResult struct {
	MixedWA         float64
	SeparatedWA     float64
	MixedCopybacks  int64
	SepCopybacks    int64
	MixedErases     int64
	SeparatedErases int64
}

func (r HotColdResult) String() string {
	return fmt.Sprintf("A2 hot/cold: WA %.2f (mixed) vs %.2f (separated); copybacks %d vs %d; erases %d vs %d",
		r.MixedWA, r.SeparatedWA, r.MixedCopybacks, r.SepCopybacks, r.MixedErases, r.SeparatedErases)
}

// RunAblationHotCold backs the claim (§2, refs [3,4]) that GC overhead
// depends on separating hot and cold data: a synthetic workload writes a
// static cold data set interleaved with a small, repeatedly overwritten hot
// set, once into a single shared region and once into separate regions.
func RunAblationHotCold(coldPages, hotPages, rounds int) (HotColdResult, error) {
	run := func(separate bool) (core.Stats, error) {
		// Size the device so the valid data occupies roughly two thirds of
		// the raw capacity: garbage collection has to work for its space,
		// which is where hot/cold separation pays off.
		blocksPerDie := int(float64(coldPages+hotPages)/0.62/float64(4*64)) + 2
		dev, err := ablationDevice(4, blocksPerDie)
		if err != nil {
			return core.Stats{}, err
		}
		opts := core.DefaultOptions()
		opts.OverprovisionPct = 0.15
		if !separate {
			opts.Mode = core.PlacementTraditional
		}
		mgr := core.NewManager(dev, opts)
		hot, err := mgr.CreateRegion(core.RegionSpec{Name: "rgHot", MaxChips: 1})
		if err != nil {
			return core.Stats{}, err
		}
		payload := make([]byte, dev.Geometry().PageSize)
		coldStart := mgr.AllocateLPNs(coldPages)
		hotStart := mgr.AllocateLPNs(hotPages)
		now := sim.Time(0)
		coldWritten := 0
		coldPerRound := coldPages / rounds
		if coldPerRound < 1 {
			coldPerRound = 1
		}
		for r := 0; r < rounds; r++ {
			for i := 0; i < coldPerRound && coldWritten < coldPages; i++ {
				done, err := mgr.WritePage(now, coldStart+core.LPN(coldWritten), payload, core.Hint{})
				if err != nil {
					return core.Stats{}, err
				}
				coldWritten++
				now = done
			}
			for o := 0; o < 3; o++ {
				for i := 0; i < hotPages; i++ {
					done, err := mgr.WritePage(now, hotStart+core.LPN(i), payload, core.Hint{Region: hot.ID()})
					if err != nil {
						return core.Stats{}, err
					}
					now = done
				}
			}
		}
		return mgr.Stats(), nil
	}
	mixed, err := run(false)
	if err != nil {
		return HotColdResult{}, err
	}
	sep, err := run(true)
	if err != nil {
		return HotColdResult{}, err
	}
	return HotColdResult{
		MixedWA:         mixed.WriteAmplification(),
		SeparatedWA:     sep.WriteAmplification(),
		MixedCopybacks:  mixed.GCCopybacks,
		SepCopybacks:    sep.GCCopybacks,
		MixedErases:     mixed.GCErases,
		SeparatedErases: sep.GCErases,
	}, nil
}

// FTLResult is the outcome of ablation A3: the same update workload through
// the black-box FTL SSD and through NoFTL.
type FTLResult struct {
	FTLTime      time.Duration
	NoFTLTime    time.Duration
	FTLWA        float64
	NoFTLWA      float64
	FTLMapMisses int64
}

func (r FTLResult) String() string {
	return fmt.Sprintf("A3 FTL vs NoFTL: elapsed %v vs %v, WA %.2f vs %.2f, FTL map misses %d",
		r.FTLTime, r.NoFTLTime, r.FTLWA, r.NoFTLWA, r.FTLMapMisses)
}

// RunAblationFTLvsNoFTL backs §1's motivation: the legacy FTL stack adds
// translation overhead (bounded mapping cache) and hides dead data (no
// TRIM), which NoFTL eliminates.  The same random-update workload runs on
// both stacks over identical devices.
func RunAblationFTLvsNoFTL(pages, updates int) (FTLResult, error) {
	blocks := pages*3/(4*64) + 6
	payload := make([]byte, 4096)
	r := sim.NewRand(7)

	devF, err := ablationDevice(4, blocks)
	if err != nil {
		return FTLResult{}, err
	}
	ssdOpts := ftl.DefaultOptions()
	ssdOpts.MapCacheEntries = pages / 8
	ssd := ftl.New(devF, ssdOpts)
	now := sim.Time(0)
	for i := 0; i < pages; i++ {
		done, err := ssd.Write(now, int64(i), payload)
		if err != nil {
			return FTLResult{}, err
		}
		now = done
	}
	for i := 0; i < updates; i++ {
		lba := int64(r.Intn(pages))
		done, err := ssd.Write(now, lba, payload)
		if err != nil {
			return FTLResult{}, err
		}
		now = done
	}
	ftlTime := time.Duration(now)
	ftlStats := ssd.Stats()

	devN, err := ablationDevice(4, blocks)
	if err != nil {
		return FTLResult{}, err
	}
	mgr := core.NewManager(devN, core.DefaultOptions())
	r = sim.NewRand(7)
	start := mgr.AllocateLPNs(pages)
	now = 0
	for i := 0; i < pages; i++ {
		done, err := mgr.WritePage(now, start+core.LPN(i), payload, core.Hint{})
		if err != nil {
			return FTLResult{}, err
		}
		now = done
	}
	for i := 0; i < updates; i++ {
		lpn := start + core.LPN(r.Intn(pages))
		done, err := mgr.WritePage(now, lpn, payload, core.Hint{})
		if err != nil {
			return FTLResult{}, err
		}
		now = done
	}
	noftlTime := time.Duration(now)
	noftlStats := mgr.Stats()

	return FTLResult{
		FTLTime:      ftlTime,
		NoFTLTime:    noftlTime,
		FTLWA:        ftlStats.WriteAmplification(),
		NoFTLWA:      noftlStats.WriteAmplification(),
		FTLMapMisses: ftlStats.MapMisses,
	}, nil
}

// RegionSweepPoint is one point of ablation A4: TPC-C throughput and GC
// overhead as a function of the number of regions.
type RegionSweepPoint struct {
	Regions   int
	TPS       float64
	WriteAmp  float64
	Copybacks int64
}

// RunAblationRegionSweep backs the §2 claim that region placement is a
// trade-off between I/O parallelism and GC overhead: it runs the TPC-C
// experiment with traditional placement (1 region) and with the multi-region
// configuration, returning one sweep point per configuration.  Larger sweeps
// (custom groupings) can be produced with the Region Advisor and the public
// API; the CLI exposes this via -experiment sweep.
func RunAblationRegionSweep(scale Scale) ([]RegionSweepPoint, error) {
	f3, err := RunFigure3(scale)
	if err != nil {
		return nil, err
	}
	return []RegionSweepPoint{
		{Regions: 1, TPS: f3.Traditional.TPS, WriteAmp: f3.Traditional.WriteAmp, Copybacks: f3.Traditional.GCCopybacks},
		{Regions: 6, TPS: f3.Regions.TPS, WriteAmp: f3.Regions.WriteAmp, Copybacks: f3.Regions.GCCopybacks},
	}, nil
}

// SweepTable renders the region sweep.
func SweepTable(points []RegionSweepPoint) string {
	t := metrics.NewTable("A4: regions vs throughput and GC overhead",
		"Regions", "TPS", "Write amplification", "GC copybacks")
	for _, p := range points {
		t.AddRow(p.Regions, p.TPS, p.WriteAmp, p.Copybacks)
	}
	return t.String()
}
