package experiments

import (
	"fmt"
	"time"

	"noftl/internal/core"
	"noftl/internal/metrics"
	"noftl/internal/sim"
)

// BackgroundGCResult is the outcome of ablation A6: the same skewed update
// workload run under foreground-only GC and under background (watermark-pair)
// GC, plus the same workload with and without hot/cold separation.
//
// The first comparison backs the claim that DBMS-scheduled background GC
// takes victim relocation off the host write path: the p99 write latency —
// dominated by writes that trip a blocking collection — drops, as does the
// number of watermark stalls.  The second backs the claim that routing
// relocated cold survivors away from fresh hot writes cuts write
// amplification.
type BackgroundGCResult struct {
	Pages   int // logical pages loaded before the update phase
	HotPct  int // percentage of updates aimed at the hot tenth of the pages
	Updates int

	// Foreground vs background GC (hot/cold separation on in both).
	ForegroundMeanWrite time.Duration
	BackgroundMeanWrite time.Duration
	ForegroundP99Write  time.Duration
	BackgroundP99Write  time.Duration
	ForegroundStalls    int64
	BackgroundStalls    int64
	BackgroundSteps     int64
	P99DeltaPct         float64 // negative: background GC shrinks the tail

	// Hot/cold separation on vs off (background GC on in both).
	SeparatedWA float64
	MixedWA     float64
	WADeltaPct  float64 // negative: separation reduces write amplification
}

func (r BackgroundGCResult) String() string {
	return fmt.Sprintf(
		"A6 background GC: %d pages, %d updates (%d%% to the hot 10%%)\n"+
			"  write p99:  foreground %v vs background %v (%+.1f%%), mean %v vs %v\n"+
			"  stalls:     foreground %d vs background %d (plus %d bounded steps)\n"+
			"  hot/cold:   WA %.2f (separated) vs %.2f (mixed) (%+.1f%%)",
		r.Pages, r.Updates, r.HotPct,
		r.ForegroundP99Write, r.BackgroundP99Write, r.P99DeltaPct,
		r.ForegroundMeanWrite, r.BackgroundMeanWrite,
		r.ForegroundStalls, r.BackgroundStalls, r.BackgroundSteps,
		r.SeparatedWA, r.MixedWA, r.WADeltaPct)
}

// bgGCRun executes the A6 workload once: a skewed single-stream update
// pattern shaped like TPC-C's I/O — a steadily growing cold data set
// (NEW_ORDER/ORDERLINE inserts) interleaved with repeated overwrites of a
// small hot set (STOCK/DISTRICT updates), of which hotPct percent of the
// update traffic hits the hot tenth of the pages.
func bgGCRun(pages, updates, hotPct int, disableBG, disableHotCold bool) (core.Stats, error) {
	hot := pages / 10
	if hot < 1 {
		hot = 1
	}
	dev, err := ablationDevice(4, (pages+hot)*100/70/(4*64)+2)
	if err != nil {
		return core.Stats{}, err
	}
	opts := core.DefaultOptions()
	opts.OverprovisionPct = 0.12
	opts.DisableBackgroundGC = disableBG
	opts.GC.DisableHotCold = disableHotCold
	mgr := core.NewManager(dev, opts)
	payload := make([]byte, dev.Geometry().PageSize)
	coldStart := mgr.AllocateLPNs(pages)
	hotStart := mgr.AllocateLPNs(hot)
	now := sim.Time(0)
	r := sim.NewRand(11)
	coldWritten := 0
	for i := 0; i < updates; i++ {
		var lpn core.LPN
		switch {
		case coldWritten < pages && (r.Intn(100) >= hotPct || coldWritten*updates < i*pages):
			// Cold insert: append the next page of the growing data set.
			lpn = coldStart + core.LPN(coldWritten)
			coldWritten++
		case r.Intn(100) < 90:
			lpn = hotStart + core.LPN(r.Intn(hot))
		default:
			// Occasional rewrite of an existing cold page (a record update
			// in an otherwise append-mostly object).
			if coldWritten == 0 {
				lpn = hotStart + core.LPN(r.Intn(hot))
			} else {
				lpn = coldStart + core.LPN(r.Intn(coldWritten))
			}
		}
		done, err := mgr.WritePage(now, lpn, payload, core.Hint{})
		if err != nil {
			return core.Stats{}, err
		}
		now = done
	}
	return mgr.Stats(), nil
}

// RunAblationBackgroundGC runs ablation A6 with the given sizing.  The
// default CLI invocation uses 6000 pages and 30000 updates.
func RunAblationBackgroundGC(pages, updates int) (BackgroundGCResult, error) {
	const hotPct = 90
	fg, err := bgGCRun(pages, updates, hotPct, true, false)
	if err != nil {
		return BackgroundGCResult{}, err
	}
	bg, err := bgGCRun(pages, updates, hotPct, false, false)
	if err != nil {
		return BackgroundGCResult{}, err
	}
	mixed, err := bgGCRun(pages, updates, hotPct, false, true)
	if err != nil {
		return BackgroundGCResult{}, err
	}

	fgW, bgW := writeLatency(fg), writeLatency(bg)
	res := BackgroundGCResult{
		Pages:   pages,
		HotPct:  hotPct,
		Updates: updates,

		ForegroundMeanWrite: fgW.Mean,
		BackgroundMeanWrite: bgW.Mean,
		ForegroundP99Write:  fgW.P99,
		BackgroundP99Write:  bgW.P99,
		ForegroundStalls:    fg.GCStalls,
		BackgroundStalls:    bg.GCStalls,
		BackgroundSteps:     bg.BGGCSteps,
		P99DeltaPct:         metrics.PercentDelta(float64(fgW.P99), float64(bgW.P99)),

		SeparatedWA: bg.WriteAmplification(),
		MixedWA:     mixed.WriteAmplification(),
		WADeltaPct:  metrics.PercentDelta(mixed.WriteAmplification(), bg.WriteAmplification()),
	}
	return res, nil
}

// writeLatency extracts the single-region write-latency snapshot of an A6
// run (the workload only ever touches the default region).
func writeLatency(st core.Stats) metrics.Snapshot {
	for _, r := range st.Regions {
		if r.WriteLatency.Count > 0 {
			return r.WriteLatency
		}
	}
	return metrics.Snapshot{}
}
