package experiments

import "testing"

// TestAblationBackgroundGC is the A6 acceptance check: background GC must
// reduce the p99 host-write latency (and watermark stalls) under a skewed
// update workload, and hot/cold separation must reduce measured write
// amplification.
func TestAblationBackgroundGC(t *testing.T) {
	res, err := RunAblationBackgroundGC(2000, 10000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.String())
	if res.ForegroundStalls == 0 {
		t.Fatal("foreground run never stalled; device sizing is off")
	}
	if res.BackgroundSteps == 0 {
		t.Fatal("background run performed no GC steps")
	}
	if res.BackgroundStalls >= res.ForegroundStalls {
		t.Fatalf("background GC did not reduce watermark stalls: %d vs %d",
			res.BackgroundStalls, res.ForegroundStalls)
	}
	if res.BackgroundP99Write >= res.ForegroundP99Write {
		t.Fatalf("background GC did not reduce p99 write latency: %v vs %v",
			res.BackgroundP99Write, res.ForegroundP99Write)
	}
	if res.SeparatedWA >= res.MixedWA {
		t.Fatalf("hot/cold separation did not reduce write amplification: %.3f vs %.3f",
			res.SeparatedWA, res.MixedWA)
	}
	if res.String() == "" {
		t.Fatal("empty result string")
	}
}
