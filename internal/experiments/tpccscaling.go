package experiments

import (
	"fmt"
	"runtime"
	"time"

	"noftl"
	"noftl/internal/metrics"
	"noftl/internal/tpcc"
)

// TPCCScalingRun is one measured TPC-C run of the scaling experiment at a
// fixed worker count.  The virtual-time metrics (TPS, simulated duration)
// are workload-driven and stay put as workers grow; WallTPS is the number
// that must scale.
type TPCCScalingRun struct {
	Workers         int
	Committed       int64
	WallTime        time.Duration
	WallTPS         float64
	TPS             float64 // committed per simulated second
	LockWaits       int64
	LockTimeouts    int64
	WALFlushes      int64
	WALGroupCommits int64
	WALGroupedTxns  int64
}

// TPCCScalingResult is the outcome of the concurrency-scaling experiment:
// the same TPC-C workload executed on fresh, identical databases with 1
// driver goroutine and with N driver goroutines.  Scaling is the wall-clock
// throughput ratio WallTPS(N) / WallTPS(1) — the metric the CI scaling job
// gates (on machines with enough cores to express it).
type TPCCScalingResult struct {
	Scale    Scale
	NumCPU   int
	Baseline TPCCScalingRun // Workers = 1
	Parallel TPCCScalingRun // Workers = N
	Scaling  float64
}

// Table renders the side-by-side comparison.
func (r TPCCScalingResult) Table() string {
	t := metrics.NewTable(
		fmt.Sprintf("TPC-C concurrency scaling (%s scale, %d CPUs)", r.Scale, r.NumCPU),
		"Metric", fmt.Sprintf("%d worker", r.Baseline.Workers), fmt.Sprintf("%d workers", r.Parallel.Workers))
	b, p := r.Baseline, r.Parallel
	t.AddRow("Wall-clock TPS", b.WallTPS, p.WallTPS)
	t.AddRow("Wall-clock time (s)", b.WallTime.Seconds(), p.WallTime.Seconds())
	t.AddRow("Virtual TPS", b.TPS, p.TPS)
	t.AddRow("Committed", b.Committed, p.Committed)
	t.AddRow("Lock waits", b.LockWaits, p.LockWaits)
	t.AddRow("Lock timeouts", b.LockTimeouts, p.LockTimeouts)
	t.AddRow("WAL flushes", b.WALFlushes, p.WALFlushes)
	t.AddRow("WAL group commits", b.WALGroupCommits, p.WALGroupCommits)
	t.AddRow("WAL grouped txns", b.WALGroupedTxns, p.WALGroupedTxns)
	t.AddRow("Wall-clock scaling", 1.0, r.Scaling)
	return t.String()
}

func (r TPCCScalingResult) String() string {
	return fmt.Sprintf("tpcc scaling: %.1f wall tx/s @1 worker -> %.1f wall tx/s @%d workers = %.2fx (on %d CPUs)",
		r.Baseline.WallTPS, r.Parallel.WallTPS, r.Parallel.Workers, r.Scaling, r.NumCPU)
}

// RunTPCCScaling executes the scaling experiment: one TPC-C run with a
// single driver goroutine and one with `workers` goroutines, on fresh
// databases with identical configuration.  Group commit is enabled so the
// parallel run can amortize log forces; the virtual-time multiprogramming
// level (Terminals) is the same in both runs, so the virtual metrics remain
// comparable and only wall-clock parallelism differs.
func RunTPCCScaling(scale Scale, workers int) (TPCCScalingResult, error) {
	if workers < 2 {
		workers = 2
	}
	res := TPCCScalingResult{Scale: scale, NumCPU: runtime.NumCPU()}

	one := func(w int) (TPCCScalingRun, error) {
		setup := TPCCSetup(scale)
		// The logical terminal count must cover the worker count, and must
		// be identical across runs so the virtual-time plane is comparable.
		if setup.TPCC.Terminals < workers {
			setup.TPCC.Terminals = workers
		}
		setup.TPCC.Workers = w
		// Group commit: let up to 8 committers share one log force, with a
		// short wall-clock linger for the group to fill.
		setup.DB.WALCommitBatch = 8
		setup.DB.WALCommitDelay = 200 * time.Microsecond
		db, err := noftl.OpenConfig(setup.DB)
		if err != nil {
			return TPCCScalingRun{}, err
		}
		defer db.Close()
		r, err := tpcc.LoadAndRun(db, setup.TPCC)
		if err != nil {
			return TPCCScalingRun{}, err
		}
		return TPCCScalingRun{
			Workers:         r.Workers,
			Committed:       r.Committed,
			WallTime:        r.WallTime,
			WallTPS:         r.WallTPS,
			TPS:             r.TPS,
			LockWaits:       r.LockWaits,
			LockTimeouts:    r.LockTimeouts,
			WALFlushes:      r.WALFlushes,
			WALGroupCommits: r.WALGroupCommits,
			WALGroupedTxns:  r.WALGroupedTxns,
		}, nil
	}

	var err error
	if res.Baseline, err = one(1); err != nil {
		return res, fmt.Errorf("tpcc scaling baseline (1 worker): %w", err)
	}
	if res.Parallel, err = one(workers); err != nil {
		return res, fmt.Errorf("tpcc scaling parallel (%d workers): %w", workers, err)
	}
	if res.Baseline.WallTPS > 0 {
		res.Scaling = res.Parallel.WallTPS / res.Baseline.WallTPS
	}
	return res, nil
}
