package experiments

import (
	"fmt"
	"strings"

	"noftl/internal/chaos"
)

// chaosBaseSeed anchors the CI campaign: with the seed count fixed, the whole
// campaign is deterministic (virtual time, seeded faults), so the replay
// volume below is exactly reproducible and can be gated against a baseline.
const chaosBaseSeed = 2026

// ChaosResult summarizes a seeded crash/recovery campaign for the bench
// document.  ReplayBytesPerSeed is the gated metric: it measures how much log
// recovery has to replay on average, which the periodic checkpoints are
// supposed to bound.
type ChaosResult struct {
	Seeds              int
	CrashesFired       int
	InDoubt            int
	TornTails          int
	RowsRecovered      int64
	ReplayedRecords    int64
	ReplayedBytes      int64
	ReplayBytesPerSeed float64
}

func (r ChaosResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos campaign: %d seeds, all recovered verify-clean\n", r.Seeds)
	fmt.Fprintf(&b, "  injected crashes: %d (%d cut a commit force)\n", r.CrashesFired, r.InDoubt)
	fmt.Fprintf(&b, "  torn tails truncated: %d\n", r.TornTails)
	fmt.Fprintf(&b, "  rows verified after recovery: %d\n", r.RowsRecovered)
	fmt.Fprintf(&b, "  log replayed: %d records / %d bytes (%.0f bytes/seed)\n",
		r.ReplayedRecords, r.ReplayedBytes, r.ReplayBytesPerSeed)
	return b.String()
}

// RunChaos runs the deterministic crash/recovery campaign: seeds runs of the
// chaos workload, each killed at a seeded point (with torn-tail, program-
// fault and worn-block flavours cycled in), reopened and verified against the
// committed-state oracle.  Any verification failure is returned as an error,
// so a passing run means every seed recovered cleanly.
func RunChaos(seeds int) (*ChaosResult, error) {
	if seeds <= 0 {
		return nil, fmt.Errorf("chaos: need at least one seed, got %d", seeds)
	}
	res, err := chaos.Campaign(chaosBaseSeed, seeds, chaos.Config{})
	if err != nil {
		return nil, err
	}
	return &ChaosResult{
		Seeds:              res.Runs,
		CrashesFired:       res.CrashesFired,
		InDoubt:            res.InDoubt,
		TornTails:          res.TornTailsSeen,
		RowsRecovered:      res.RowsRecovered,
		ReplayedRecords:    res.ReplayedRecords,
		ReplayedBytes:      res.ReplayedBytes,
		ReplayBytesPerSeed: float64(res.ReplayedBytes) / float64(res.Runs),
	}, nil
}
