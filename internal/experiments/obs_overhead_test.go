package experiments

import (
	"testing"
	"time"

	"noftl/internal/obs"
)

// TestTracingDisabledOverheadGate is the CI gate on the observability
// layer's cost contract: with tracing off (the default — a nil tracer), a
// hook site costs one nil-pointer compare, and the total guard cost over the
// batch_dml benchmark must stay below 2% of the benchmark's wall-clock time.
//
// The gate is analytic rather than a paired A/B timing run (which would be
// hostage to CI noise far above 2%): it measures the real per-call guard
// cost, multiplies by a gross overestimate of the hook invocations the
// workload can produce, and compares against the workload's real wall-clock
// time.  An instrumented run of the same shape records ~14 events per host
// page write across all hook sites, and a row costs at most ~2 page
// operations per phase — under 30 hook invocations per row across all four
// phases.  The bound below allows 100 per row, more than 3x that.
func TestTracingDisabledOverheadGate(t *testing.T) {
	const rows = 1000
	start := time.Now()
	if _, err := RunBatchDML(rows, 256); err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)

	// Per-call cost of the disabled-path guard on a nil tracer.
	var tr *obs.Tracer
	const iters = 1 << 22
	enabled := false
	guardStart := time.Now()
	for i := 0; i < iters; i++ {
		enabled = enabled || tr.Enabled(obs.Class(i%int(obs.NumClasses)))
	}
	guardTotal := time.Since(guardStart)
	if enabled {
		t.Fatal("nil tracer reported enabled")
	}
	perCall := float64(guardTotal) / float64(iters)

	const hooksPerRow = 100 // across all four phases; gross overestimate, see doc comment
	overhead := perCall * float64(rows*hooksPerRow)
	limit := 0.02 * float64(wall)
	t.Logf("wall=%v guard=%.2fns/call bound=%v limit=%v (%.4f%% of wall)",
		wall, perCall, time.Duration(overhead), time.Duration(limit),
		100*overhead/float64(wall))
	if overhead >= limit {
		t.Fatalf("tracing-disabled guard bound %v exceeds 2%% of wall clock %v",
			time.Duration(overhead), wall)
	}
}
