package experiments

import "testing"

func TestRunAblationBatchedIO(t *testing.T) {
	res, err := RunAblationBatchedIO(512, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadSpeedup <= 1.5 {
		t.Errorf("batched reads speedup %.2fx, want > 1.5x over serial", res.ReadSpeedup)
	}
	if res.WriteSpeedup <= 1.5 {
		t.Errorf("batched writes speedup %.2fx, want > 1.5x over serial", res.WriteSpeedup)
	}
	if res.SerialReadTime <= 0 || res.BatchedReadTime <= 0 {
		t.Errorf("degenerate timings: %+v", res)
	}
}
