package experiments

import (
	"bytes"
	"fmt"
	"time"

	"noftl"
)

// BatchDMLResult is the outcome of the batch-DML experiment: the same row
// set inserted and read back through the public API twice — once
// row-at-a-time (one transaction per row, the pre-v2 idiom) and once through
// InsertBatch/GetBatch.  Scheduler submissions and simulated time quantify
// what the batch-first surface buys; the submission ratio is the metric the
// CI baseline gates.
type BatchDMLResult struct {
	Rows    int
	RowSize int
	// Insert path: one committed transaction per row vs one InsertBatch.
	InsertSerialSubmissions int64
	InsertBatchSubmissions  int64
	InsertSubmissionRatio   float64 // serial / batch, higher is better
	InsertSerialTime        time.Duration
	InsertBatchTime         time.Duration
	InsertSpeedup           float64
	// Read path: row-at-a-time Get vs chunked GetBatch over a cold pool.
	GetSerialSubmissions int64
	GetBatchSubmissions  int64
	GetSerialTime        time.Duration
	GetBatchTime         time.Duration
	GetSpeedup           float64
	// Scheduler depth high-water marks per phase.  MaxBatch is the largest
	// single die-striped submission (the batched paths dispatch hundreds of
	// pages per submission vs ~1 on the serial path — exactly where the
	// speedup comes from); MaxQueueDepth is the async Enqueue/Wait queue's
	// high-water mark (zero here unless prefetch is enabled).
	InsertSerialMaxBatch      int64
	InsertBatchMaxBatch       int64
	GetSerialMaxBatch         int64
	GetBatchMaxBatch          int64
	InsertSerialMaxQueueDepth int64
	InsertBatchMaxQueueDepth  int64
	GetSerialMaxQueueDepth    int64
	GetBatchMaxQueueDepth     int64
}

func (r BatchDMLResult) String() string {
	return fmt.Sprintf(
		"batch DML: %d rows of %d bytes on the 8-die default device\n"+
			"  inserts: %d submissions / %v serial vs %d submissions / %v batched (%.0fx fewer submissions, %.1fx faster)\n"+
			"  reads:   %d submissions / %v serial vs %d submissions / %v batched (%.1fx faster)",
		r.Rows, r.RowSize,
		r.InsertSerialSubmissions, r.InsertSerialTime,
		r.InsertBatchSubmissions, r.InsertBatchTime,
		r.InsertSubmissionRatio, r.InsertSpeedup,
		r.GetSerialSubmissions, r.GetSerialTime,
		r.GetBatchSubmissions, r.GetBatchTime, r.GetSpeedup)
}

// RunBatchDML measures the batch-first DML API against the row-at-a-time
// path on the default 8-die device.  Everything is driven through the public
// noftl surface; only virtual (simulated) time and scheduler submission
// counts are compared, so the result is deterministic.
func RunBatchDML(rows, rowSize int) (BatchDMLResult, error) {
	res := BatchDMLResult{Rows: rows, RowSize: rowSize}
	row := bytes.Repeat([]byte{'b'}, rowSize)

	// A pool smaller than the row set's page footprint, so the read phase
	// hits the device rather than memory.
	open := func() (*noftl.DB, *noftl.Table, error) {
		db, err := noftl.Open(noftl.WithBufferPoolPages(64))
		if err != nil {
			return nil, nil, err
		}
		if err := db.Exec(fmt.Sprintf("CREATE TABLE B (v VARCHAR(%d))", rowSize)); err != nil {
			db.Close()
			return nil, nil, err
		}
		tbl, _ := db.Table("B")
		return db, tbl, nil
	}

	// Row-at-a-time: one committed transaction per row, then cold reads one
	// Get at a time.
	db, tbl, err := open()
	if err != nil {
		return res, err
	}
	defer db.Close()
	rids := make([]noftl.RID, 0, rows)
	for i := 0; i < rows; i++ {
		tx := db.Begin()
		rid, err := tbl.Insert(tx, row)
		if err != nil {
			return res, err
		}
		if _, err := tx.Commit(); err != nil {
			return res, err
		}
		rids = append(rids, rid)
	}
	st := db.Stats()
	res.InsertSerialSubmissions = st.Scheduler.Batches
	res.InsertSerialTime = st.Simulated
	res.InsertSerialMaxBatch = st.Scheduler.MaxBatch
	res.InsertSerialMaxQueueDepth = st.Scheduler.MaxQueueDepth

	if _, err := db.FlushAll(db.SimulatedTime()); err != nil {
		return res, err
	}
	db.ResetStatistics()
	err = db.View(func(tx *noftl.Tx) error {
		for _, rid := range rids {
			if _, err := tbl.Get(tx, rid); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	st = db.Stats()
	res.GetSerialSubmissions = st.Scheduler.Batches
	res.GetSerialTime = st.Simulated
	res.GetSerialMaxBatch = st.Scheduler.MaxBatch
	res.GetSerialMaxQueueDepth = st.Scheduler.MaxQueueDepth

	// Batched: one InsertBatch transaction, then cold chunked GetBatch.
	db2, tbl2, err := open()
	if err != nil {
		return res, err
	}
	defer db2.Close()
	all := make([][]byte, rows)
	for i := range all {
		all[i] = row
	}
	var rids2 []noftl.RID
	err = db2.Update(func(tx *noftl.Tx) error {
		var err error
		rids2, err = tbl2.InsertBatch(tx, all)
		return err
	})
	if err != nil {
		return res, err
	}
	st = db2.Stats()
	res.InsertBatchSubmissions = st.Scheduler.Batches
	res.InsertBatchTime = st.Simulated
	res.InsertBatchMaxBatch = st.Scheduler.MaxBatch
	res.InsertBatchMaxQueueDepth = st.Scheduler.MaxQueueDepth

	if _, err := db2.FlushAll(db2.SimulatedTime()); err != nil {
		return res, err
	}
	db2.ResetStatistics()
	// Chunked so one batch's pinned pages stay well below the pool size.
	const chunk = 256
	err = db2.View(func(tx *noftl.Tx) error {
		for lo := 0; lo < len(rids2); lo += chunk {
			hi := min(lo+chunk, len(rids2))
			if _, err := tbl2.GetBatch(tx, rids2[lo:hi]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	st = db2.Stats()
	res.GetBatchSubmissions = st.Scheduler.Batches
	res.GetBatchTime = st.Simulated
	res.GetBatchMaxBatch = st.Scheduler.MaxBatch
	res.GetBatchMaxQueueDepth = st.Scheduler.MaxQueueDepth

	if res.InsertBatchSubmissions > 0 {
		res.InsertSubmissionRatio = float64(res.InsertSerialSubmissions) / float64(res.InsertBatchSubmissions)
	}
	if res.InsertBatchTime > 0 {
		res.InsertSpeedup = float64(res.InsertSerialTime) / float64(res.InsertBatchTime)
	}
	if res.GetBatchTime > 0 {
		res.GetSpeedup = float64(res.GetSerialTime) / float64(res.GetBatchTime)
	}
	return res, nil
}
