package experiments

import (
	"fmt"
	"time"

	"noftl/internal/core"
	"noftl/internal/sim"
)

// BatchedIOResult is the outcome of ablation A5: the same page set read and
// overwritten through the asynchronous I/O scheduler in batches versus one
// page at a time.
type BatchedIOResult struct {
	Pages            int
	Dies             int
	Batch            int
	SerialReadTime   time.Duration
	BatchedReadTime  time.Duration
	ReadSpeedup      float64
	SerialWriteTime  time.Duration
	BatchedWriteTime time.Duration
	WriteSpeedup     float64
}

func (r BatchedIOResult) String() string {
	return fmt.Sprintf(
		"A5 batched I/O: %d pages over %d dies, batch %d\n"+
			"  reads:  serial %v vs batched %v (%.1fx)\n"+
			"  writes: serial %v vs batched %v (%.1fx)",
		r.Pages, r.Dies, r.Batch,
		r.SerialReadTime, r.BatchedReadTime, r.ReadSpeedup,
		r.SerialWriteTime, r.BatchedWriteTime, r.WriteSpeedup)
}

// RunAblationBatchedIO measures what the iosched subsystem buys: `pages`
// logical pages are striped over `dies` dies by the space manager, then read
// back and overwritten twice — once serially (each request waits for the
// previous, the pre-scheduler behaviour) and once in scheduler batches of
// `batch` requests.  Only virtual (simulated) time is compared; the workload
// and physical layout are identical in both runs.
func RunAblationBatchedIO(pages, dies, batch int) (BatchedIOResult, error) {
	if batch <= 0 {
		batch = 64
	}
	dev, err := ablationDevice(dies, pages*3/(dies*64)+8)
	if err != nil {
		return BatchedIOResult{}, err
	}
	mgr := core.NewManager(dev, core.DefaultOptions())
	payload := make([]byte, dev.Geometry().PageSize)
	start := mgr.AllocateLPNs(pages)

	// Load phase (not timed): stripe the pages over every die.
	writes := make([]core.PageWrite, 0, batch)
	now := sim.Time(0)
	for i := 0; i < pages; i += batch {
		writes = writes[:0]
		for j := i; j < i+batch && j < pages; j++ {
			writes = append(writes, core.PageWrite{LPN: start + core.LPN(j), Data: payload})
		}
		done, err := mgr.WritePages(now, writes)
		if err != nil {
			return BatchedIOResult{}, err
		}
		now = done
	}

	res := BatchedIOResult{Pages: pages, Dies: dies, Batch: batch}

	// Serial reads: each page waits for the previous one.
	t0 := now
	for i := 0; i < pages; i++ {
		_, done, err := mgr.ReadPage(now, start+core.LPN(i), payload)
		if err != nil {
			return BatchedIOResult{}, err
		}
		now = done
	}
	res.SerialReadTime = now.Sub(t0)

	// Batched reads through the scheduler.
	t0 = now
	lpns := make([]core.LPN, 0, batch)
	for i := 0; i < pages; i += batch {
		lpns = lpns[:0]
		for j := i; j < i+batch && j < pages; j++ {
			lpns = append(lpns, start+core.LPN(j))
		}
		reads, end := mgr.ReadPages(now, lpns, nil)
		for _, r := range reads {
			if r.Err != nil {
				return BatchedIOResult{}, r.Err
			}
		}
		now = end
	}
	res.BatchedReadTime = now.Sub(t0)

	// Serial overwrites.
	t0 = now
	for i := 0; i < pages; i++ {
		done, err := mgr.WritePage(now, start+core.LPN(i), payload, core.Hint{})
		if err != nil {
			return BatchedIOResult{}, err
		}
		now = done
	}
	res.SerialWriteTime = now.Sub(t0)

	// Batched overwrites.
	t0 = now
	for i := 0; i < pages; i += batch {
		writes = writes[:0]
		for j := i; j < i+batch && j < pages; j++ {
			writes = append(writes, core.PageWrite{LPN: start + core.LPN(j), Data: payload})
		}
		done, err := mgr.WritePages(now, writes)
		if err != nil {
			return BatchedIOResult{}, err
		}
		now = done
	}
	res.BatchedWriteTime = now.Sub(t0)

	if res.BatchedReadTime > 0 {
		res.ReadSpeedup = float64(res.SerialReadTime) / float64(res.BatchedReadTime)
	}
	if res.BatchedWriteTime > 0 {
		res.WriteSpeedup = float64(res.SerialWriteTime) / float64(res.BatchedWriteTime)
	}
	return res, nil
}
