// Package experiments contains the benchmark harness that regenerates every
// table and figure of the paper's evaluation (Figure 2, Figure 3 and the
// headline percentages of the abstract), plus the ablation experiments
// listed in DESIGN.md (A1–A4).  The functions here are shared by the
// top-level Go benchmarks (bench_test.go) and the cmd/noftl-bench tool.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"noftl"
	"noftl/internal/core"
	"noftl/internal/flash"
	"noftl/internal/metrics"
	"noftl/internal/tpcc"
)

// Scale selects how big an experiment run is.
type Scale int

// Experiment scales.
const (
	// ScaleTiny finishes in well under a second; used by go test.
	ScaleTiny Scale = iota
	// ScaleSmall is the default for `go test -bench` and the CLI: a 16-die
	// device with enough load to exercise garbage collection.
	ScaleSmall
	// ScalePaper approximates the paper's platform: 64 dies behind 8
	// channels and a larger TPC-C database (minutes of wall-clock time).
	ScalePaper
)

func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleSmall:
		return "small"
	case ScalePaper:
		return "paper"
	default:
		return "unknown"
	}
}

// Setup bundles the database and workload configuration of one experiment
// run.
type Setup struct {
	DB   noftl.Config
	TPCC tpcc.Config
}

// TPCCSetup returns the database and workload configuration for a TPC-C run
// at the given scale.  The device is sized so that the database plus its
// growth during the run reaches high utilization, which is where garbage
// collection — and therefore data placement — matters.
func TPCCSetup(scale Scale) Setup {
	var (
		geo      flash.Geometry
		workload tpcc.Config
		pool     int
	)
	switch scale {
	case ScalePaper:
		geo = flash.Geometry{
			Channels: 8, DiesPerChannel: 8, PlanesPerDie: 2,
			BlocksPerDie: 22, PagesPerBlock: 64, PageSize: 4096,
		}
		workload = tpcc.Config{
			Warehouses:               8,
			CustomersPerDistrict:     600,
			ItemCount:                5000,
			InitialOrdersPerDistrict: 600,
			Terminals:                32,
			Transactions:             60000,
			Duration:                 90 * time.Second,
			WarmupTransactions:       10000,
			Seed:                     42,
			CheckpointEvery:          500,
		}
		pool = 12288
	case ScaleSmall:
		geo = flash.Geometry{
			Channels: 4, DiesPerChannel: 4, PlanesPerDie: 1,
			BlocksPerDie: 20, PagesPerBlock: 32, PageSize: 4096,
		}
		workload = tpcc.Config{
			Warehouses:               2,
			CustomersPerDistrict:     300,
			ItemCount:                2000,
			InitialOrdersPerDistrict: 300,
			Terminals:                8,
			Transactions:             8000,
			Duration:                 20 * time.Second,
			WarmupTransactions:       1500,
			Seed:                     42,
			// Since the WAL carries full row images, the live log between
			// checkpoints must fit the small metadata region; checkpoint
			// often enough to bound it.
			CheckpointEvery: 400,
		}
		pool = 768
	default: // ScaleTiny
		geo = flash.Geometry{
			Channels: 4, DiesPerChannel: 2, PlanesPerDie: 1,
			BlocksPerDie: 16, PagesPerBlock: 32, PageSize: 4096,
		}
		workload = tpcc.Config{
			Warehouses:               1,
			CustomersPerDistrict:     60,
			ItemCount:                300,
			InitialOrdersPerDistrict: 60,
			Terminals:                4,
			Transactions:             600,
			WarmupTransactions:       100,
			Seed:                     42,
			// Row-image WAL records make the live log the dominant tenant of
			// the tiny default region; checkpoint often to keep it bounded.
			CheckpointEvery: 100,
		}
		pool = 192
	}
	dbCfg := noftl.DefaultConfig()
	dbCfg.Flash.Geometry = geo
	dbCfg.BufferPoolPages = pool
	// The paper's experiments measure placement effects on the device I/O
	// stream.  Snapshot checkpoints write the whole database into the WAL on
	// every cut, which both distorts those measurements and cannot fit the
	// deliberately high-utilization devices, so the benchmark regime runs
	// with light checkpoints (flush + truncate, no snapshot) — the standard
	// reduced-durability setting for performance runs.  Crash recovery is
	// exercised separately by the chaos experiment.
	dbCfg.DisableSnapshotCheckpoints = true
	// TPC-C terminals take locks in canonical order, so real deadlocks
	// cannot form; the lock-wait timeout is purely a safety net.  Timeouts
	// are virtual-time deterministic now, so host scheduling delays can no
	// longer fire them spuriously — the generous value just keeps the
	// simulated-time deadline far above any legitimate lock wait.
	dbCfg.LockTimeout = 60 * time.Second
	return Setup{DB: dbCfg, TPCC: workload}
}

// RunTPCC runs one TPC-C experiment (load + warm-up + measurement) under the
// given placement on a fresh database.
func RunTPCC(scale Scale, placement tpcc.PlacementKind) (tpcc.Results, error) {
	setup := TPCCSetup(scale)
	setup.TPCC.Placement = placement
	if placement == tpcc.PlacementTraditional {
		// The paper's baseline is NoFTL with traditional placement: hints
		// are ignored and every object is striped uniformly over all dies.
		setup.DB.Space.Mode = core.PlacementTraditional
	}
	// Figure 2/3 reproduce the paper's system, whose garbage collection runs
	// in the foreground: the comparison isolates what data placement alone
	// buys when GC interference hits the host.  Background GC (which hides
	// much of that interference for either placement) is evaluated
	// separately in ablation A6.
	setup.DB.Space.DisableBackgroundGC = true
	db, err := noftl.OpenConfig(setup.DB)
	if err != nil {
		return tpcc.Results{}, err
	}
	defer db.Close()
	return tpcc.LoadAndRun(db, setup.TPCC)
}

// Figure3 holds the two runs of the paper's Figure 3 comparison.
type Figure3 struct {
	Scale       Scale
	Traditional tpcc.Results
	Regions     tpcc.Results
}

// RunFigure3 executes the Figure 3 experiment: the same TPC-C workload under
// traditional and multi-region placement on identical fresh devices.
func RunFigure3(scale Scale) (Figure3, error) {
	trad, err := RunTPCC(scale, tpcc.PlacementTraditional)
	if err != nil {
		return Figure3{}, fmt.Errorf("traditional placement run: %w", err)
	}
	regions, err := RunTPCC(scale, tpcc.PlacementRegions)
	if err != nil {
		return Figure3{}, fmt.Errorf("region placement run: %w", err)
	}
	return Figure3{Scale: scale, Traditional: trad, Regions: regions}, nil
}

// Table renders the comparison in the layout of the paper's Figure 3.
func (f Figure3) Table() string {
	t := metrics.NewTable(
		fmt.Sprintf("Figure 3: Performance comparison of traditional and multi-region data placement (%s scale)", f.Scale),
		"Metric", "Traditional data placement", "Data placement using Regions")
	tr, rg := f.Traditional, f.Regions
	t.AddRow("TPS", tr.TPS, rg.TPS)
	t.AddRow("READ 4KB (us)", float64(tr.ReadLatency.Mean)/1e3, float64(rg.ReadLatency.Mean)/1e3)
	t.AddRow("WRITE 4KB (us)", float64(tr.WriteLatency.Mean)/1e3, float64(rg.WriteLatency.Mean)/1e3)
	t.AddRow("NewOrder TRX (ms)", ms(tr.ResponseTimes[tpcc.TxnNewOrder].Mean), ms(rg.ResponseTimes[tpcc.TxnNewOrder].Mean))
	t.AddRow("Payment TRX (ms)", ms(tr.ResponseTimes[tpcc.TxnPayment].Mean), ms(rg.ResponseTimes[tpcc.TxnPayment].Mean))
	t.AddRow("StockLevel TRX (ms)", ms(tr.ResponseTimes[tpcc.TxnStockLevel].Mean), ms(rg.ResponseTimes[tpcc.TxnStockLevel].Mean))
	t.AddRow("Transactions", tr.Committed, rg.Committed)
	t.AddRow("Host READ I/Os (4KB)", tr.HostReadIOs, rg.HostReadIOs)
	t.AddRow("Host WRITE I/Os (4KB)", tr.HostWriteIOs, rg.HostWriteIOs)
	t.AddRow("GC COPYBACKs", tr.GCCopybacks, rg.GCCopybacks)
	t.AddRow("GC ERASEs", tr.GCErases, rg.GCErases)
	t.AddRow("Write amplification", tr.WriteAmp, rg.WriteAmp)
	return t.String()
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// Headline holds the abstract's headline metrics (experiment E3): the
// relative change from traditional to region placement.
type Headline struct {
	TPSDeltaPct       float64 // paper: ≈ +20 %
	CopybacksDeltaPct float64 // paper: ≈ −20 %
	ErasesDeltaPct    float64 // paper: ≈ −4.3 %
	HostIOsDeltaPct   float64 // paper: ≈ +20 %
	ReadLatDeltaPct   float64
	WriteLatDeltaPct  float64
}

// Headline computes the relative deltas of the Figure 3 run.
func (f Figure3) Headline() Headline {
	tr, rg := f.Traditional, f.Regions
	return Headline{
		TPSDeltaPct:       metrics.PercentDelta(tr.TPS, rg.TPS),
		CopybacksDeltaPct: metrics.PercentDelta(float64(tr.GCCopybacks), float64(rg.GCCopybacks)),
		ErasesDeltaPct:    metrics.PercentDelta(float64(tr.GCErases), float64(rg.GCErases)),
		HostIOsDeltaPct:   metrics.PercentDelta(float64(tr.HostReadIOs+tr.HostWriteIOs), float64(rg.HostReadIOs+rg.HostWriteIOs)),
		ReadLatDeltaPct:   metrics.PercentDelta(float64(tr.ReadLatency.Mean), float64(rg.ReadLatency.Mean)),
		WriteLatDeltaPct:  metrics.PercentDelta(float64(tr.WriteLatency.Mean), float64(rg.WriteLatency.Mean)),
	}
}

// String renders the headline deltas next to the paper's reported values.
func (h Headline) String() string {
	var b strings.Builder
	b.WriteString("Headline metrics (regions vs traditional placement):\n")
	fmt.Fprintf(&b, "  transactional throughput: %+.1f%%   (paper: +21%%)\n", h.TPSDeltaPct)
	fmt.Fprintf(&b, "  GC copybacks:             %+.1f%%   (paper: -19%%)\n", h.CopybacksDeltaPct)
	fmt.Fprintf(&b, "  GC erases:                %+.1f%%   (paper: -4.3%%)\n", h.ErasesDeltaPct)
	fmt.Fprintf(&b, "  host I/Os served:         %+.1f%%   (paper: +20%%)\n", h.HostIOsDeltaPct)
	fmt.Fprintf(&b, "  4KB read latency:         %+.1f%%   (paper: -40%%)\n", h.ReadLatDeltaPct)
	fmt.Fprintf(&b, "  4KB write latency:        %+.1f%%   (paper: -38%%)\n", h.WriteLatDeltaPct)
	return b.String()
}

// Figure2 holds the Region-Advisor experiment: the statistics collection run
// and the derived placement plan.
type Figure2 struct {
	Scale   Scale
	Objects []metrics.ObjectCounters
	Plan    noftl.PlacementPlan
}

// RunFigure2 reproduces Figure 2: run TPC-C under traditional placement to
// collect per-object statistics, then let the Region Advisor divide the
// objects into regions and distribute the dies.
func RunFigure2(scale Scale) (Figure2, error) {
	setup := TPCCSetup(scale)
	setup.TPCC.Placement = tpcc.PlacementTraditional
	setup.DB.Space.DisableBackgroundGC = true // the paper's foreground-GC regime
	db, err := noftl.OpenConfig(setup.DB)
	if err != nil {
		return Figure2{}, err
	}
	defer db.Close()
	if _, err := tpcc.LoadAndRun(db, setup.TPCC); err != nil {
		return Figure2{}, err
	}
	objs := db.ObjectStats()
	plan := db.Advise(noftl.AdvisorOptions{MaxRegions: 6})
	return Figure2{Scale: scale, Objects: objs, Plan: plan}, nil
}

// Table renders the advisor's plan in the layout of the paper's Figure 2.
func (f Figure2) Table() string {
	return f.Plan.TableString()
}

// PaperFigure2Table renders the placement configuration the paper itself
// used (the fixed object grouping of Figure 2) for side-by-side comparison.
func PaperFigure2Table(totalDies int) string {
	t := metrics.NewTable(
		fmt.Sprintf("Paper Figure 2: multi-region data placement configuration for TPC-C (%d dies)", totalDies),
		"Tablespace/Region", "DB-Objects", "Num. of Flash dies")
	rows := []struct {
		objs string
		dies int
	}{
		{"DBMS-metadata; HISTORY", 2},
		{"ORDERLINE", 11},
		{"CUSTOMER", 10},
		{"OL_IDX; STOCK", 29},
		{"NEW_ORDER; ORDER; NO_IDX; O_IDX; O_CUST_IDX", 6},
		{"C_IDX; I_IDX; S_IDX; W_IDX; C_NAME_IDX; ITEM; D_IDX; WAREHOUSE; DISTRICT", 6},
	}
	for i, r := range rows {
		dies := r.dies * totalDies / 64
		if dies < 1 {
			dies = 1
		}
		t.AddRow(i, r.objs, dies)
	}
	return t.String()
}
