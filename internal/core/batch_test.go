package core

import (
	"errors"
	"testing"

	"noftl/internal/flash"
	"noftl/internal/sim"
)

func newBatchTestManager(t *testing.T) *Manager {
	t.Helper()
	dev, err := flash.NewDevice(flash.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return NewManager(dev, DefaultOptions())
}

func TestWritePagesStripesAcrossDies(t *testing.T) {
	m := newBatchTestManager(t)
	geo := m.Device().Geometry()
	const n = 16
	payload := make([]byte, geo.PageSize)

	start := m.AllocateLPNs(n)
	writes := make([]PageWrite, n)
	for i := range writes {
		writes[i] = PageWrite{LPN: start + LPN(i), Data: payload}
	}
	end, err := m.WritePages(0, writes)
	if err != nil {
		t.Fatal(err)
	}

	dies := make(map[int]bool)
	for i := 0; i < n; i++ {
		addr, ok := m.Locate(start + LPN(i))
		if !ok {
			t.Fatalf("lpn %d not mapped after batch write", start+LPN(i))
		}
		dies[addr.Die] = true
	}
	if len(dies) != geo.Dies() {
		t.Errorf("batch of %d writes touched %d dies, want all %d (die striping)", n, len(dies), geo.Dies())
	}

	// Serial lower bound: n sequential programs, each waiting for the
	// previous.  The striped batch must be well under it.
	tm := m.Device().Timing()
	serial := sim.Time(0)
	for i := 0; i < n; i++ {
		serial = serial.Add(tm.Transfer + tm.ProgramPage)
	}
	if end >= serial {
		t.Errorf("batched write makespan %v, serial bound %v: no overlap won", end, serial)
	}
}

func TestReadPagesOverlapAndPartialErrors(t *testing.T) {
	m := newBatchTestManager(t)
	geo := m.Device().Geometry()
	const n = 8
	payload := make([]byte, geo.PageSize)
	payload[0] = 0xAB

	start := m.AllocateLPNs(n)
	writes := make([]PageWrite, n)
	for i := range writes {
		writes[i] = PageWrite{LPN: start + LPN(i), Data: payload}
	}
	if _, err := m.WritePages(0, writes); err != nil {
		t.Fatal(err)
	}
	m.ResetCounters()

	unmapped := start + LPN(n) + 1000
	lpns := make([]LPN, 0, n+1)
	for i := 0; i < n; i++ {
		lpns = append(lpns, start+LPN(i))
	}
	lpns = append(lpns, unmapped)

	reads, end := m.ReadPages(0, lpns, nil)
	if len(reads) != n+1 {
		t.Fatalf("got %d results, want %d", len(reads), n+1)
	}
	for i := 0; i < n; i++ {
		if reads[i].Err != nil {
			t.Fatalf("read %d: %v", i, reads[i].Err)
		}
		if reads[i].Data[0] != 0xAB {
			t.Errorf("read %d returned wrong data", i)
		}
		if LPN(reads[i].Meta.LPN) != lpns[i] {
			t.Errorf("read %d meta LPN %d, want %d", i, reads[i].Meta.LPN, lpns[i])
		}
	}
	if !errors.Is(reads[n].Err, ErrUnmappedPage) {
		t.Errorf("unmapped read error = %v, want ErrUnmappedPage", reads[n].Err)
	}

	// The batch was striped over every die by the preceding WritePages, so
	// the reads overlap: the makespan must be far below the serial sum.
	tm := m.Device().Timing()
	serial := sim.Time(0)
	for i := 0; i < n; i++ {
		serial = serial.Add(tm.ReadPage + tm.Transfer)
	}
	if end >= serial {
		t.Errorf("batched read makespan %v, serial bound %v: no overlap won", end, serial)
	}
}

func TestWritePagesOverwriteKeepsAccounting(t *testing.T) {
	m := newBatchTestManager(t)
	geo := m.Device().Geometry()
	payload := make([]byte, geo.PageSize)
	const n = 8
	start := m.AllocateLPNs(n)
	writes := make([]PageWrite, n)
	for i := range writes {
		writes[i] = PageWrite{LPN: start + LPN(i), Data: payload}
	}
	if _, err := m.WritePages(0, writes); err != nil {
		t.Fatal(err)
	}
	// Overwriting the same logical pages must not grow validPages.
	if _, err := m.WritePages(0, writes); err != nil {
		t.Fatal(err)
	}
	stats, ok := m.Stats().RegionByName(DefaultRegionName)
	if !ok {
		t.Fatal("default region stats missing")
	}
	if stats.ValidPages != n {
		t.Errorf("validPages = %d after overwrite batch, want %d", stats.ValidPages, n)
	}
	if stats.HostWrites != 2*n {
		t.Errorf("hostWrites = %d, want %d", stats.HostWrites, 2*n)
	}
}

func TestWritePagesRegionFullWithoutSpill(t *testing.T) {
	dev, err := flash.NewDevice(flash.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.DisableSpill = true
	m := NewManager(dev, opts)
	r, err := m.CreateRegion(RegionSpec{Name: "tiny", MaxChips: 1, MaxSizeBytes: 2 * int64(dev.Geometry().PageSize)})
	if err != nil {
		t.Fatal(err)
	}

	payload := make([]byte, dev.Geometry().PageSize)
	const n = 4 // over the 2-page logical cap
	start := m.AllocateLPNs(n)
	writes := make([]PageWrite, n)
	for i := range writes {
		writes[i] = PageWrite{LPN: start + LPN(i), Data: payload, Hint: Hint{Region: r.ID()}}
	}
	if _, err := m.WritePages(0, writes); !errors.Is(err, ErrRegionFull) {
		t.Fatalf("over-capacity batch error = %v, want ErrRegionFull", err)
	}
	// Admission failed before any program was issued: nothing mapped.
	for i := 0; i < n; i++ {
		if m.Mapped(start + LPN(i)) {
			t.Errorf("lpn %d mapped after failed batch", start+LPN(i))
		}
	}
}
