package core

import (
	"noftl/internal/flash"
	"noftl/internal/iosched"
	"noftl/internal/sim"
)

// collectDie runs garbage collection on one die until the die's free-block
// count is above the low-water mark or no further space can be reclaimed.
// The work (copybacks and erases) is issued against the flash device in the
// caller's virtual time, so a foreground write that triggers GC pays for it —
// this is the GC interference that the paper's multi-region placement
// reduces.  Caller holds m.mu.
func (m *Manager) collectDie(now sim.Time, r *Region, da *dieAlloc) sim.Time {
	pagesPerBlock := m.geo.PagesPerBlock
	for da.freeCount() <= m.opts.GCLowWaterBlocks {
		victim := m.pickVictim(da)
		if victim < 0 {
			break
		}
		r.gcRuns++
		now = m.relocateAndErase(now, r, da, victim, pagesPerBlock)
	}
	if m.opts.WearLevelDelta > 0 {
		now = m.maybeWearLevel(now, r, da, pagesPerBlock)
	}
	return now
}

// pickVictim chooses the closed block with the fewest valid pages (greedy
// policy).  Blocks that are completely valid are never picked because
// collecting them reclaims nothing.  It returns -1 when no block qualifies.
// Caller holds m.mu.
func (m *Manager) pickVictim(da *dieAlloc) int {
	best := -1
	bestValid := m.geo.PagesPerBlock // must be strictly better than "all valid"
	for i := range da.blocks {
		blk := &da.blocks[i]
		if blk.state != blkClosed {
			continue
		}
		if i == da.hostOpen || i == da.gcOpen {
			continue
		}
		if blk.validCount < bestValid {
			bestValid = blk.validCount
			best = i
		}
	}
	return best
}

// relocateAndErase moves the victim's still-valid pages to the die's GC open
// block using the on-die copyback command, then erases the victim and returns
// it to the free list.  The copybacks are submitted to the I/O scheduler as
// one GC-priority batch; note that priorities order requests within a single
// dispatch only — a host request arriving after this batch has been
// dispatched still queues behind it on the die, exactly as on hardware that
// cannot abort an in-flight program.  Caller holds m.mu.
func (m *Manager) relocateAndErase(now sim.Time, r *Region, da *dieAlloc, victim int, pagesPerBlock int) sim.Time {
	vblk := &da.blocks[victim]

	// Reserve a destination slot for every valid page, then dispatch the
	// copybacks as one batch.
	type move struct {
		page int
		dst  slotRef
	}
	var moves []move
	var reqs []iosched.Request
	for page := 0; page < pagesPerBlock; page++ {
		if !vblk.valid[page] {
			continue
		}
		dst, ok := m.gcSlot(da)
		if !ok {
			// No space to relocate into: give up on the remaining pages (the
			// victim stays closed and keeps them).
			break
		}
		moves = append(moves, move{page: page, dst: dst})
		reqs = append(reqs, iosched.Request{
			Op:       iosched.OpCopyback,
			Addr:     ppa{Die: da.die, Block: victim, Page: page},
			Dst:      ppa{Die: da.die, Block: dst.block, Page: dst.page},
			Priority: iosched.PrioGC,
		})
	}
	cs, end := m.sched.Submit(now, reqs)
	for i, c := range cs {
		mv := moves[i]
		dblk := &da.blocks[mv.dst.block]
		if c.Err != nil {
			// The device refused (worn-out destination, …).  Release the
			// reserved slot; the page remains valid in the victim, which
			// therefore cannot be erased this round.
			dblk.nextPage--
			continue
		}
		lpn := LPN(c.Meta.LPN)
		dblk.lpns[mv.dst.page] = lpn
		dblk.valid[mv.dst.page] = true
		dblk.validCount++
		if dblk.nextPage >= pagesPerBlock {
			dblk.state = blkClosed
			if da.gcOpen == mv.dst.block {
				da.gcOpen = -1
			}
		}
		// Redirect the logical page to its new physical home.
		m.mapping[lpn] = mapEntry{addr: ppa{Die: da.die, Block: mv.dst.block, Page: mv.dst.page}, region: m.dieOwner[da.die]}
		vblk.valid[mv.page] = false
		vblk.validCount--
		r.gcCopybacks++
	}
	now = end
	if vblk.validCount > 0 {
		// Could not fully clean the victim; leave it closed.
		return now
	}
	done, err := m.sched.Erase(now, flash.BlockAddr{Die: da.die, Block: victim}, iosched.PrioGC)
	if err != nil {
		// A worn-out block stays out of circulation: mark it closed with no
		// valid pages so it is never picked again.
		vblk.state = blkClosed
		return now
	}
	now = done
	vblk.reset(pagesPerBlock)
	vblk.eraseCount++
	da.freeBlocks = append(da.freeBlocks, victim)
	r.gcErases++
	return now
}

// gcSlot returns the next page slot of the die's GC open block, opening a new
// one from the free list when necessary.  GC may dip into the reserve blocks
// that host writes are not allowed to touch.  Caller holds m.mu.
func (m *Manager) gcSlot(da *dieAlloc) (slotRef, bool) {
	if da.gcOpen < 0 || da.blocks[da.gcOpen].nextPage >= m.geo.PagesPerBlock {
		idx := m.popFreeBlock(da)
		if idx < 0 {
			return slotRef{}, false
		}
		da.blocks[idx].state = blkOpen
		da.gcOpen = idx
	}
	blk := &da.blocks[da.gcOpen]
	slot := slotRef{block: da.gcOpen, page: blk.nextPage}
	blk.nextPage++
	return slot, true
}

// maybeWearLevel performs static wear leveling: when the spread between the
// most- and least-worn block of the die exceeds the configured delta, the
// coldest block (least worn, typically holding static data) is relocated and
// erased so that its low-wear cells re-enter circulation.  Caller holds m.mu.
func (m *Manager) maybeWearLevel(now sim.Time, r *Region, da *dieAlloc, pagesPerBlock int) sim.Time {
	var minE, maxE int64
	minIdx := -1
	first := true
	for i := range da.blocks {
		ec := da.blocks[i].eraseCount
		if first {
			minE, maxE = ec, ec
			first = false
		}
		if ec < minE {
			minE = ec
		}
		if ec > maxE {
			maxE = ec
		}
		if da.blocks[i].state == blkClosed && i != da.hostOpen && i != da.gcOpen {
			if minIdx < 0 || da.blocks[i].eraseCount < da.blocks[minIdx].eraseCount {
				minIdx = i
			}
		}
	}
	if minIdx < 0 || maxE-minE <= m.opts.WearLevelDelta {
		return now
	}
	if da.blocks[minIdx].eraseCount > minE+m.opts.WearLevelDelta/2 {
		// The coldest closed block is not actually among the least worn.
		return now
	}
	before := r.gcErases
	now = m.relocateAndErase(now, r, da, minIdx, pagesPerBlock)
	if r.gcErases > before {
		r.wlMoves++
	}
	return now
}
