package core

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"noftl/internal/flash"
	"noftl/internal/iosched"
	"noftl/internal/obs"
	"noftl/internal/sim"
)

// ErrUnknownPolicy reports an unrecognized victim-policy spelling.
var ErrUnknownPolicy = errors.New("core: unknown GC victim policy")

// VictimPolicy selects how a garbage-collection victim block is chosen
// within a die.
type VictimPolicy uint8

const (
	// VictimGreedy picks the closed block with the fewest valid pages: the
	// cheapest block to clean right now.  Best for uniform workloads.
	VictimGreedy VictimPolicy = iota
	// VictimCostBenefit weighs reclaimable space against relocation cost and
	// block age (classic cost-benefit: age * (1-u) / 2u).  Old, mostly
	// invalid blocks win over recently written ones, which avoids relocating
	// hot pages that are about to be invalidated anyway — better for skewed
	// update workloads.
	VictimCostBenefit
)

// String returns the lower-case name used in stats and metrics.
func (v VictimPolicy) String() string {
	switch v {
	case VictimGreedy:
		return "greedy"
	case VictimCostBenefit:
		return "cost_benefit"
	default:
		return "unknown"
	}
}

// ParseVictimPolicy parses the DDL spelling of a victim policy
// (case-insensitive: GREEDY, COST_BENEFIT or COSTBENEFIT).
func ParseVictimPolicy(s string) (VictimPolicy, error) {
	switch strings.ToUpper(s) {
	case "GREEDY":
		return VictimGreedy, nil
	case "COST_BENEFIT", "COSTBENEFIT", "COST-BENEFIT":
		return VictimCostBenefit, nil
	default:
		return VictimGreedy, fmt.Errorf("%w: %q", ErrUnknownPolicy, s)
	}
}

// GCPolicy is the per-region garbage-collection configuration.  The paper's
// point is exactly that these knobs belong to the DBMS, per data region,
// instead of being hard-wired inside an FTL: a region holding an append-only
// log wants different victim selection than one holding a hot index.
type GCPolicy struct {
	// Victim selects the victim-block policy.
	Victim VictimPolicy
	// StepPages bounds how many valid pages one background GC step relocates
	// (the "≤k pages" increment).  Zero means the default of 8.  Foreground
	// (low-watermark backstop) collections are never bounded.
	StepPages int
	// DisableHotCold turns off hot/cold separation: relocated pages then
	// share the die's host-write active block instead of a dedicated GC
	// block.  Mixing cold survivors with fresh hot writes raises write
	// amplification under skewed workloads, so separation defaults to on.
	DisableHotCold bool
}

// DefaultGCPolicy returns the default policy: greedy victim selection,
// 8-page background steps, hot/cold separation on.
func DefaultGCPolicy() GCPolicy {
	return GCPolicy{Victim: VictimGreedy, StepPages: 8}
}

func (p GCPolicy) withDefaults() GCPolicy {
	if p.StepPages <= 0 {
		p.StepPages = 8
	}
	return p
}

// HotCold reports whether relocated pages go to a dedicated GC active block.
func (p GCPolicy) HotCold() bool { return !p.DisableHotCold }

// String renders the policy for stats output.
func (p GCPolicy) String() string {
	hc := "on"
	if p.DisableHotCold {
		hc = "off"
	}
	return fmt.Sprintf("%s step=%d hot/cold=%s", p.Victim, p.withDefaults().StepPages, hc)
}

// collectDie is the foreground correctness backstop: it runs garbage
// collection on one die until the die's free-block count is above the
// low-water mark or no further space can be reclaimed.  The work (copybacks
// and erases) is issued against the flash device in the caller's virtual
// time, so a host write that trips the low watermark pays the full
// victim-relocation latency inline — exactly the stall that background GC
// (bggc.go) exists to avoid.  Caller holds m.mu.
func (m *Manager) collectDie(now sim.Time, r *Region, da *dieAlloc) sim.Time {
	r.gcStalls++
	m.sched.ObserveGCStall()
	if r.promGCStalls != nil {
		r.promGCStalls.Inc()
	}
	fgStart := now
	for da.freeCount() <= m.opts.GCLowWaterBlocks {
		victim := m.pickVictim(da, r.gc)
		if victim < 0 {
			break
		}
		if m.tracer.Enabled(obs.ClassGCVictim) {
			m.tracer.Record(obs.Event{
				Class: obs.ClassGCVictim, Op: obs.GCStepForeground,
				Die: int32(da.die), Block: int32(victim), Page: -1,
				Region: int32(r.id), Start: now, End: now,
				A: int64(da.blocks[victim].validCount),
			})
		}
		r.gcRuns++
		copybacks, erases := r.gcCopybacks, r.gcErases
		now = m.relocateAndErase(now, r, da, victim, m.geo.PagesPerBlock, r.gc)
		if r.gcCopybacks == copybacks && r.gcErases == erases {
			// No destination slots and nothing erased: further iterations
			// would re-pick the same victim without making progress, so let
			// the allocation fail upward instead of spinning.
			break
		}
	}
	if m.opts.WearLevelDelta > 0 {
		now = m.maybeWearLevel(now, r, da)
	}
	if now > fgStart && m.tracer.Enabled(obs.ClassGCStep) {
		// One foreground-collection window covering every victim this call
		// relocated and erased: the inline stall the host write paid.
		m.tracer.Record(obs.Event{
			Class: obs.ClassGCStep, Op: obs.GCStepForeground,
			Die: int32(da.die), Block: -1, Page: -1,
			Region: int32(r.id), Start: fgStart, End: now,
		})
	}
	return now
}

// pickVictim chooses a victim block on the die under the region's policy, or
// -1 when no block qualifies.  Caller holds m.mu.
func (m *Manager) pickVictim(da *dieAlloc, pol GCPolicy) int {
	if pol.Victim == VictimCostBenefit {
		return m.pickVictimCostBenefit(da)
	}
	return m.pickVictimGreedy(da)
}

// pickVictimGreedy chooses the closed block with the fewest valid pages.
// Blocks that are completely valid are never picked because collecting them
// reclaims nothing.  Caller holds m.mu.
func (m *Manager) pickVictimGreedy(da *dieAlloc) int {
	best := -1
	bestValid := m.geo.PagesPerBlock // must be strictly better than "all valid"
	for i := range da.blocks {
		blk := &da.blocks[i]
		if blk.state != blkClosed {
			continue
		}
		if i == da.hostOpen || i == da.gcOpen {
			continue
		}
		if blk.validCount < bestValid {
			bestValid = blk.validCount
			best = i
		}
	}
	return best
}

// pickVictimCostBenefit chooses the closed block maximizing
// age * (1-u) / 2u, where u is the block's valid-page utilization and age is
// the write-sequence distance since the block last changed.  Caller holds
// m.mu.
func (m *Manager) pickVictimCostBenefit(da *dieAlloc) int {
	best := -1
	var bestScore float64
	ppb := m.geo.PagesPerBlock
	for i := range da.blocks {
		blk := &da.blocks[i]
		if blk.state != blkClosed {
			continue
		}
		if i == da.hostOpen || i == da.gcOpen {
			continue
		}
		if blk.validCount >= ppb {
			continue // fully valid: reclaims nothing
		}
		u := float64(clampValid(blk.validCount, ppb)) / float64(ppb)
		age := 1.0
		if m.seq > blk.lastWrite {
			age += float64(m.seq - blk.lastWrite)
		}
		score := age * (1 - u) / (2*u + 1e-9)
		if best < 0 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// clampValid bounds a valid-page count into [0, pagesPerBlock] so corrupted
// or wrapped counters cannot skew victim scoring.
func clampValid(v, pagesPerBlock int) int {
	if v < 0 {
		return 0
	}
	if v > pagesPerBlock {
		return pagesPerBlock
	}
	return v
}

// relocateAndErase moves up to maxMoves still-valid pages of the victim to an
// active block chosen by the region's policy using the on-die copyback
// command, then — once the victim holds no valid pages — erases it and
// returns it to the free list.  A bounded maxMoves turns this into one
// incremental GC step: the victim simply stays closed until later steps
// finish it.  The copybacks are submitted to the I/O scheduler as one
// GC-priority batch; note that priorities order requests within a single
// dispatch only — a host request arriving after this batch has been
// dispatched still queues behind it on the die, exactly as on hardware that
// cannot abort an in-flight program.  Caller holds m.mu.
func (m *Manager) relocateAndErase(now sim.Time, r *Region, da *dieAlloc, victim, maxMoves int, pol GCPolicy) sim.Time {
	pagesPerBlock := m.geo.PagesPerBlock
	vblk := &da.blocks[victim]

	// Reserve a destination slot for every valid page (up to the step
	// bound), then dispatch the copybacks as one batch.
	type move struct {
		page int
		dst  slotRef
	}
	var moves []move
	var reqs []iosched.Request
	for page := 0; page < pagesPerBlock && len(moves) < maxMoves; page++ {
		if !vblk.valid[page] {
			continue
		}
		dst, ok := m.relocSlot(da, pol)
		if !ok {
			// No space to relocate into: give up on the remaining pages (the
			// victim stays closed and keeps them).
			break
		}
		moves = append(moves, move{page: page, dst: dst})
		reqs = append(reqs, iosched.Request{
			Op:       iosched.OpCopyback,
			Addr:     ppa{Die: da.die, Block: victim, Page: page},
			Dst:      ppa{Die: da.die, Block: dst.block, Page: dst.page},
			Priority: iosched.PrioGC,
		})
	}
	cs, end := m.sched.Submit(now, reqs)
	for i, c := range cs {
		mv := moves[i]
		dblk := &da.blocks[mv.dst.block]
		if c.Err != nil {
			// The device refused (worn-out destination, …).  Release the
			// reserved slot; the page remains valid in the victim, which
			// therefore cannot be erased this round.
			dblk.nextPage--
			m.retireIfBad(da, mv.dst.block)
			continue
		}
		lpn := LPN(c.Meta.LPN)
		dblk.lpns[mv.dst.page] = lpn
		dblk.valid[mv.dst.page] = true
		dblk.validCount++
		dblk.lastWrite = m.seq
		if dblk.nextPage >= pagesPerBlock {
			dblk.state = blkClosed
			if da.gcOpen == mv.dst.block {
				da.gcOpen = -1
			}
			if da.hostOpen == mv.dst.block {
				da.hostOpen = -1
			}
		}
		// Redirect the logical page to its new physical home.
		m.mapping[lpn] = mapEntry{addr: ppa{Die: da.die, Block: mv.dst.block, Page: mv.dst.page}, region: m.dieOwner[da.die]}
		vblk.valid[mv.page] = false
		vblk.validCount--
		r.gcCopybacks++
		if r.promGCCopybacks != nil {
			r.promGCCopybacks.Inc()
		}
	}
	if len(reqs) > 0 {
		now = end
	}
	if vblk.validCount > 0 {
		// Not fully relocated (step bound, slot shortage or copyback error);
		// leave the victim closed for a later step.
		return now
	}
	done, err := m.sched.Erase(now, flash.BlockAddr{Die: da.die, Block: victim}, iosched.PrioGC)
	if err != nil {
		// A worn-out block leaves circulation for good: retired blocks are
		// skipped by every victim scan, so a failed erase cannot leave an
		// empty closed block that greedy would re-pick forever.
		vblk.state = blkRetired
		return now
	}
	vblk.reset(pagesPerBlock)
	if vblk.eraseCount < math.MaxInt64 {
		vblk.eraseCount++ // saturate instead of wrapping negative
	}
	da.freeBlocks = append(da.freeBlocks, victim)
	r.gcErases++
	if r.promGCErases != nil {
		r.promGCErases.Inc()
	}
	if m.tracer.Enabled(obs.ClassGCErase) {
		m.tracer.Record(obs.Event{
			Class: obs.ClassGCErase,
			Die:   int32(da.die), Block: int32(victim), Page: -1,
			Region: int32(r.id), Start: now, End: done,
			A: vblk.eraseCount,
		})
	}
	return done
}

// relocSlot returns the next destination slot for a relocated page.  With
// hot/cold separation (the default) relocated pages fill a dedicated GC
// active block; with separation off they share the die's host active block,
// re-mixing cold survivors with fresh hot writes.  Caller holds m.mu.
func (m *Manager) relocSlot(da *dieAlloc, pol GCPolicy) (slotRef, bool) {
	if pol.HotCold() {
		return m.gcSlot(da)
	}
	if da.hostOpen < 0 || da.blocks[da.hostOpen].nextPage >= m.geo.PagesPerBlock {
		idx := m.popFreeBlock(da)
		if idx < 0 {
			// Sharing the host block is a placement preference, not a
			// correctness constraint: when the free list is empty but a GC
			// block is still open (e.g. left over from a policy switch),
			// use it rather than wedging the collection.
			if da.gcOpen >= 0 && da.blocks[da.gcOpen].nextPage < m.geo.PagesPerBlock {
				return m.gcSlot(da)
			}
			return slotRef{}, false
		}
		da.blocks[idx].state = blkOpen
		da.hostOpen = idx
	}
	blk := &da.blocks[da.hostOpen]
	slot := slotRef{block: da.hostOpen, page: blk.nextPage}
	blk.nextPage++
	return slot, true
}

// gcSlot returns the next page slot of the die's GC open block, opening a new
// one from the free list when necessary.  GC may dip into the reserve blocks
// that host writes are not allowed to touch.  Caller holds m.mu.
func (m *Manager) gcSlot(da *dieAlloc) (slotRef, bool) {
	if da.gcOpen < 0 || da.blocks[da.gcOpen].nextPage >= m.geo.PagesPerBlock {
		idx := m.popFreeBlock(da)
		if idx < 0 {
			return slotRef{}, false
		}
		da.blocks[idx].state = blkOpen
		da.gcOpen = idx
	}
	blk := &da.blocks[da.gcOpen]
	slot := slotRef{block: da.gcOpen, page: blk.nextPage}
	blk.nextPage++
	return slot, true
}

// maybeWearLevel performs static wear leveling: when the spread between the
// most- and least-worn block of the die exceeds the configured delta, the
// coldest block (least worn, typically holding static data) is relocated and
// erased so that its low-wear cells re-enter circulation.
//
// All erase-count arithmetic is overflow-safe: counters are clamped to
// non-negative before comparison and the spread/threshold checks are written
// as subtractions of non-negative values, so a saturated counter near
// math.MaxInt64 can never wrap a comparison and trick the leveler into
// moving the wrong block (or moving blocks forever).  Caller holds m.mu.
func (m *Manager) maybeWearLevel(now sim.Time, r *Region, da *dieAlloc) sim.Time {
	var minE, maxE int64
	minIdx := -1
	first := true
	for i := range da.blocks {
		ec := clampErase(da.blocks[i].eraseCount)
		if first {
			minE, maxE = ec, ec
			first = false
		}
		if ec < minE {
			minE = ec
		}
		if ec > maxE {
			maxE = ec
		}
		if da.blocks[i].state == blkClosed && i != da.hostOpen && i != da.gcOpen {
			if minIdx < 0 || clampErase(da.blocks[i].eraseCount) < clampErase(da.blocks[minIdx].eraseCount) {
				minIdx = i
			}
		}
	}
	// maxE >= minE >= 0, so the uint64 difference cannot overflow even when
	// a counter has saturated at math.MaxInt64.
	if minIdx < 0 || uint64(maxE)-uint64(minE) <= uint64(m.opts.WearLevelDelta) {
		return now
	}
	if clampErase(da.blocks[minIdx].eraseCount)-minE > m.opts.WearLevelDelta/2 {
		// The coldest closed block is not actually among the least worn.
		// (Written as a subtraction: the old minE + delta/2 form overflows
		// int64 when counters approach the saturation cap.)
		return now
	}
	before := r.gcErases
	wlStart := now
	now = m.relocateAndErase(now, r, da, minIdx, m.geo.PagesPerBlock, r.gc)
	if r.gcErases > before {
		r.wlMoves++
		if r.promWearMoves != nil {
			r.promWearMoves.Inc()
		}
		if m.tracer.Enabled(obs.ClassWear) {
			m.tracer.Record(obs.Event{
				Class: obs.ClassWear,
				Die:   int32(da.die), Block: int32(minIdx), Page: -1,
				Region: int32(r.id), Start: wlStart, End: now,
				A: minE, B: maxE,
			})
		}
	}
	return now
}

// clampErase bounds an erase counter to be non-negative so that a wrapped or
// corrupted value cannot skew wear-leveling decisions.
func clampErase(ec int64) int64 {
	if ec < 0 {
		return 0
	}
	return ec
}

// retireIfBad checks whether a block that just refused a program has been
// marked bad by the device (which happens at the final erase of its
// endurance budget, while the block is empty) and, if so, retires it so
// allocation stops handing out its pages.  Without this, a bad block stays
// the die's open block and every subsequent write to it fails forever.
// Caller holds m.mu.
func (m *Manager) retireIfBad(da *dieAlloc, block int) {
	bad, err := m.dev.IsBad(flash.BlockAddr{Die: da.die, Block: block})
	if err != nil || !bad {
		return
	}
	blk := &da.blocks[block]
	if blk.validCount > 0 {
		// Defensive: never drop live data (cannot happen with erase-time
		// badness, since such blocks are empty).
		return
	}
	blk.state = blkRetired
	if da.hostOpen == block {
		da.hostOpen = -1
	}
	if da.gcOpen == block {
		da.gcOpen = -1
	}
}
