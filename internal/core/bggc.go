// Background, incremental garbage collection.
//
// The paper's argument (§2) is that once space management lives in the DBMS,
// garbage collection no longer has to fire blindly under the host's feet: it
// can be scheduled around the workload.  This file implements that as a
// watermark pair per die:
//
//   - at or below GCHighWaterBlocks free blocks, GC proceeds opportunistically
//     in bounded steps (pick victim → relocate ≤k pages → erase) that are
//     submitted through the I/O scheduler at GC priority in the die's idle
//     virtual-time slots, and whose cost is NOT charged to the host write
//     that triggered them;
//   - at or below GCLowWaterBlocks the foreground backstop (collectDie) still
//     blocks the allocation until the die is healthy again — correctness
//     never depends on background progress.
//
// The step size and victim policy come from the owning region's GCPolicy, so
// a DBA can tune them per data region via CREATE/ALTER REGION.
package core

import (
	"fmt"

	"noftl/internal/obs"
	"noftl/internal/sim"
)

// backgroundGCLocked runs at most one bounded background GC step on the die
// when its free-block count is at or below the high watermark.  Called at the
// end of host write paths; the step's virtual-time cost is absorbed by the
// die's idle slots rather than the caller's latency.  Caller holds m.mu.
func (m *Manager) backgroundGCLocked(now sim.Time, da *dieAlloc) {
	if m.opts.DisableBackgroundGC {
		return
	}
	if da.freeCount() > m.opts.GCHighWaterBlocks {
		return
	}
	if m.sched.DieIdleAt(da.die) > now {
		// The die still has work scheduled beyond this point in virtual
		// time: its next slot is not idle.  Stacking a step now would queue
		// GC in front of future host requests; skip and let a later write
		// (or the low-watermark backstop) drive progress instead.
		return
	}
	if da.bgVictim < 0 && da.freeCount() > m.opts.GCLowWaterBlocks {
		// No victim in progress and the die has not reached the level at
		// which a foreground collection would fire.  Starting one now would
		// collect blocks earlier — and therefore with more still-valid
		// pages — than the foreground policy, inflating write amplification.
		// The watermark band above the low mark is for draining in-progress
		// debt (and explicit PumpBackgroundGC calls), not for taking debt
		// on early.
		return
	}
	r, ok := m.regionsByID[m.dieOwner[da.die]]
	if !ok {
		return
	}
	m.backgroundStepLocked(now, r, da)
}

// backgroundStepLocked performs one bounded GC step on the die: resume (or
// pick) a victim, relocate at most the region's StepPages valid pages, and
// erase the victim once it is fully relocated.  The step starts no earlier
// than the die's idle time, so already-dispatched host work is never delayed
// by it.  It returns the step's virtual completion time and whether the step
// made actual progress (pages relocated or a block erased) — a step that
// could do nothing is not counted, so PumpBackgroundGC drain loops
// terminate.  Caller holds m.mu.
func (m *Manager) backgroundStepLocked(now sim.Time, r *Region, da *dieAlloc) (sim.Time, bool) {
	pol := r.gc
	if da.bgVictim >= 0 && da.blocks[da.bgVictim].state != blkClosed {
		// The victim was finished (or reopened) by a foreground collection
		// in the meantime; start over.
		da.bgVictim = -1
	}
	if da.bgVictim < 0 {
		v := m.pickVictim(da, pol)
		if v >= 0 && float64(da.blocks[v].validCount) > m.bgMaxValid(da.freeCount()) {
			// Even the best victim is too valid to be worth collecting in
			// the background: relocating it now would copy data that is yet
			// to be invalidated, inflating write amplification.  Leave it to
			// accumulate garbage; if the die really runs dry first, the
			// foreground backstop collects it with the same lateness the
			// pre-background design had.
			v = -1
		}
		if v < 0 {
			// Nothing (worth) reclaiming: use the idle slot for wear leveling.
			if m.opts.WearLevelDelta > 0 {
				m.maybeWearLevel(sim.MaxTime(now, m.sched.DieIdleAt(da.die)), r, da)
			}
			return now, false
		}
		da.bgVictim = v
		r.gcRuns++
		if m.tracer.Enabled(obs.ClassGCVictim) {
			m.tracer.Record(obs.Event{
				Class: obs.ClassGCVictim, Op: obs.GCStepBackground,
				Die: int32(da.die), Block: int32(v), Page: -1,
				Region: int32(r.id), Start: now, End: now,
				A: int64(da.blocks[v].validCount),
			})
		}
	}
	start := sim.MaxTime(now, m.sched.DieIdleAt(da.die))
	copybacks, erases := r.gcCopybacks, r.gcErases
	end := m.relocateAndErase(start, r, da, da.bgVictim, pol.withDefaults().StepPages, pol)
	switch {
	case da.blocks[da.bgVictim].state == blkFree:
		// Victim fully relocated and erased: the step cycle is complete.
		da.bgVictim = -1
		if m.opts.WearLevelDelta > 0 {
			end = m.maybeWearLevel(end, r, da)
		}
	case da.blocks[da.bgVictim].state == blkRetired:
		// The erase failed; the block left circulation for good.
		da.bgVictim = -1
	}
	if r.gcCopybacks == copybacks && r.gcErases == erases {
		// Nothing moved and nothing erased (no destination slots): not a
		// step.  Keep the victim for later, but report no progress so
		// callers draining in a loop do not spin.
		return now, false
	}
	r.bgSteps++
	m.sched.ObserveGCStep(end.Sub(start))
	if r.promBGSteps != nil {
		r.promBGSteps.Inc()
	}
	if m.tracer.Enabled(obs.ClassGCStep) {
		m.tracer.Record(obs.Event{
			Class: obs.ClassGCStep, Op: obs.GCStepBackground,
			Die: int32(da.die), Block: -1, Page: -1,
			Region: int32(r.id), Start: start, End: end,
		})
	}
	return end, true
}

// bgMaxValid returns the most valid pages a block may hold and still qualify
// as a background victim, given the die's current free-block count: well
// above the low watermark (explicit PumpBackgroundGC calls during idle
// periods) only nearly-empty blocks — ≤ ¼ valid — are collected, and the bar
// relaxes linearly to "whatever greedy picks" as free blocks run down to the
// low watermark, where the foreground backstop would collect the same block
// anyway.  Collecting lazily when there is slack is what keeps background
// write amplification close to the foreground backstop's, which by
// construction collects as late as possible.
func (m *Manager) bgMaxValid(free int) float64 {
	span := m.opts.GCHighWaterBlocks - m.opts.GCLowWaterBlocks
	urgency := 1.0
	if span > 0 {
		urgency = float64(m.opts.GCHighWaterBlocks-free) / float64(span)
	}
	if urgency < 0 {
		urgency = 0
	}
	if urgency > 1 {
		urgency = 1
	}
	return (0.25 + 0.75*urgency) * float64(m.geo.PagesPerBlock)
}

// PumpBackgroundGC runs at most one background GC step on every die whose
// free-block count is at or below the high watermark and returns the number
// of steps performed.  Callers with knowledge of idle periods (a checkpoint
// just finished, the workload paused) use it to drain GC debt ahead of the
// next burst; tests and experiments use it to drive background GC
// deterministically.
func (m *Manager) PumpBackgroundGC(now sim.Time) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.opts.DisableBackgroundGC {
		return 0
	}
	steps := 0
	for _, da := range m.dies {
		if da.freeCount() > m.opts.GCHighWaterBlocks {
			continue
		}
		r, ok := m.regionsByID[m.dieOwner[da.die]]
		if !ok {
			continue
		}
		if _, did := m.backgroundStepLocked(now, r, da); did {
			steps++
		}
	}
	return steps
}

// SetGCPolicy replaces the named region's garbage-collection policy.  It
// takes effect immediately: the next step of an in-flight background victim
// already uses the new step bound and hot/cold routing, and the next victim
// selection uses the new policy.
func (m *Manager) SetGCPolicy(name string, p GCPolicy) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.regions[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownRegion, name)
	}
	r.gc = p.withDefaults()
	return nil
}

// GCPolicyOf returns the named region's current garbage-collection policy.
func (m *Manager) GCPolicyOf(name string) (GCPolicy, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.regions[name]
	if !ok {
		return GCPolicy{}, false
	}
	return r.gc, true
}
