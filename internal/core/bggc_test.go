package core

import (
	"math"
	"sync"
	"testing"

	"noftl/internal/flash"
	"noftl/internal/sim"
)

// TestBackgroundGCAvoidsForegroundStalls is the tentpole behaviour: with the
// watermark pair, almost all collection work happens in bounded background
// steps and host writes almost never block on a foreground collection.
func TestBackgroundGCAvoidsForegroundStalls(t *testing.T) {
	run := func(disable bool) Stats {
		dev := smallDevice(t, 2, 16, 8)
		opts := DefaultOptions()
		opts.OverprovisionPct = 0.25
		opts.DisableBackgroundGC = disable
		m := NewManager(dev, opts)
		overwriteWorkload(t, m, dev, 100, 8, Hint{})
		if err := m.VerifyIntegrity(); err != nil {
			t.Fatalf("disable=%v: integrity violated: %v", disable, err)
		}
		return m.Stats()
	}
	fg := run(true)
	bg := run(false)
	if fg.GCStalls == 0 {
		t.Fatal("foreground-only run never stalled; workload too small to compare")
	}
	if bg.BGGCSteps == 0 {
		t.Fatal("background GC never ran a step")
	}
	if fg.BGGCSteps != 0 {
		t.Fatalf("foreground-only run performed %d background steps", fg.BGGCSteps)
	}
	if bg.GCStalls*4 > fg.GCStalls {
		t.Fatalf("background GC should eliminate most watermark stalls: %d vs %d foreground",
			bg.GCStalls, fg.GCStalls)
	}
	// Same logical work: same number of host writes and valid pages.
	if bg.HostWrites != fg.HostWrites || bg.ValidPages != fg.ValidPages {
		t.Fatalf("runs diverged: bg %d/%d, fg %d/%d writes/valid",
			bg.HostWrites, bg.ValidPages, fg.HostWrites, fg.ValidPages)
	}
}

// TestBackgroundGCStepsAreBounded checks the incremental contract: a single
// background step relocates at most the policy's StepPages pages.
func TestBackgroundGCStepsAreBounded(t *testing.T) {
	dev := smallDevice(t, 1, 16, 8)
	opts := DefaultOptions()
	opts.OverprovisionPct = 0.3
	opts.GC.StepPages = 2
	opts.WearLevelDelta = 0 // isolate GC copybacks from leveling moves
	m := NewManager(dev, opts)
	now := overwriteWorkload(t, m, dev, 20, 12, Hint{})
	// Drain the remaining debt one pump at a time: each pump performs at
	// most one step per die, and each step may relocate at most StepPages
	// pages.
	pumped := false
	for i := 0; i < 200; i++ {
		before := m.Stats().GCCopybacks
		n := m.PumpBackgroundGC(now)
		if n == 0 {
			break
		}
		pumped = true
		delta := m.Stats().GCCopybacks - before
		if delta > int64(n*2) {
			t.Fatalf("pump of %d steps relocated %d pages, want ≤ %d", n, delta, n*2)
		}
	}
	if !pumped {
		t.Fatal("no background steps ran")
	}
}

func TestPumpBackgroundGCDrainsDebt(t *testing.T) {
	dev := smallDevice(t, 2, 16, 8)
	opts := DefaultOptions()
	opts.OverprovisionPct = 0.25
	m := NewManager(dev, opts)
	now := overwriteWorkload(t, m, dev, 100, 6, Hint{})

	free := func() int {
		total := 0
		for _, r := range m.Stats().Regions {
			total += r.FreeBlocks
		}
		return total
	}
	before := free()
	steps := 0
	for i := 0; i < 1000; i++ {
		n := m.PumpBackgroundGC(now)
		if n == 0 {
			break
		}
		steps += n
	}
	if steps == 0 {
		t.Fatal("pump found no GC debt after a heavy overwrite workload")
	}
	if free() <= before {
		t.Fatalf("pumping reclaimed nothing: %d -> %d free blocks", before, free())
	}
	// Once the pump returns 0, every die is above the high watermark.
	for _, da := range m.dies {
		if da.freeCount() <= m.opts.GCHighWaterBlocks {
			t.Fatalf("die %d still at %d free blocks (high watermark %d)",
				da.die, da.freeCount(), m.opts.GCHighWaterBlocks)
		}
	}
	if err := m.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	if m.PumpBackgroundGC(now) != 0 {
		t.Fatal("idle pump still performed steps")
	}
}

func TestPumpDisabledBackgroundGC(t *testing.T) {
	dev := smallDevice(t, 1, 12, 4)
	opts := DefaultOptions()
	opts.DisableBackgroundGC = true
	m := NewManager(dev, opts)
	overwriteWorkload(t, m, dev, 16, 6, Hint{})
	if n := m.PumpBackgroundGC(0); n != 0 {
		t.Fatalf("disabled background GC still pumped %d steps", n)
	}
	if st := m.Stats(); st.BGGCSteps != 0 {
		t.Fatalf("disabled background GC ran %d steps", st.BGGCSteps)
	}
}

func TestSetGCPolicyPerRegion(t *testing.T) {
	dev := smallDevice(t, 4, 16, 8)
	m := NewManager(dev, DefaultOptions())
	cb := GCPolicy{Victim: VictimCostBenefit, StepPages: 4, DisableHotCold: true}
	hot, err := m.CreateRegion(RegionSpec{Name: "rgHot", MaxChips: 1, GC: &cb})
	if err != nil {
		t.Fatal(err)
	}
	_ = hot
	got, ok := m.GCPolicyOf("rgHot")
	if !ok || got.Victim != VictimCostBenefit || got.StepPages != 4 || !got.DisableHotCold {
		t.Fatalf("region policy not applied: %+v", got)
	}
	// The default region keeps the manager-wide default.
	def, _ := m.GCPolicyOf(DefaultRegionName)
	if def.Victim != VictimGreedy || def.DisableHotCold {
		t.Fatalf("default region policy wrong: %+v", def)
	}
	// ALTER-style update.
	if err := m.SetGCPolicy("rgHot", GCPolicy{Victim: VictimGreedy}); err != nil {
		t.Fatal(err)
	}
	got, _ = m.GCPolicyOf("rgHot")
	if got.Victim != VictimGreedy || got.StepPages != 8 {
		t.Fatalf("policy update not applied (or defaults not filled): %+v", got)
	}
	if err := m.SetGCPolicy("nope", GCPolicy{}); err == nil {
		t.Fatal("SetGCPolicy on unknown region should fail")
	}
	// Stats surface the policy.
	st := m.Stats()
	hs, _ := st.RegionByName("rgHot")
	if hs.GC.Victim != VictimGreedy {
		t.Fatalf("stats policy wrong: %+v", hs.GC)
	}
}

// TestCostBenefitPrefersOldInvalidBlocks unit-tests the victim scorer: among
// equally invalid blocks the older one wins, and a slightly-more-valid but
// much older block beats a fresh one.
func TestCostBenefitPrefersOldInvalidBlocks(t *testing.T) {
	dev := smallDevice(t, 1, 16, 8)
	m := NewManager(dev, DefaultOptions())
	da := m.dies[0]
	m.seq = 1000

	mk := func(idx, valid int, lastWrite uint64) {
		da.blocks[idx].state = blkClosed
		da.blocks[idx].validCount = valid
		da.blocks[idx].lastWrite = lastWrite
	}
	mk(3, 2, 990) // recent, 2 valid
	mk(5, 2, 100) // old, 2 valid  -> should win over 3
	if got := m.pickVictimCostBenefit(da); got != 5 {
		t.Fatalf("picked block %d, want the older block 5", got)
	}
	mk(5, 0, 100) // stale bookkeeping reset
	da.blocks[5].state = blkFree
	mk(6, 3, 10)  // very old, 3 valid
	mk(7, 1, 995) // brand new, 1 valid
	if got := m.pickVictimCostBenefit(da); got != 6 {
		t.Fatalf("picked block %d, want the much older block 6", got)
	}
	// Greedy disagrees: it takes the lowest-valid block regardless of age.
	if got := m.pickVictimGreedy(da); got != 7 {
		t.Fatalf("greedy picked block %d, want lowest-valid block 7", got)
	}
}

// TestHotColdSeparationPolicyReducesWA runs the same single-region workload
// — cold inserts interleaved with hot overwrites, the way a DBMS flush
// stream mixes objects — with and without hot/cold separation.  With
// separation, GC packs relocated cold survivors into dedicated blocks that
// are never collected again; with mixing they land back among fresh hot
// writes and are relocated over and over, costing write amplification.
func TestHotColdSeparationPolicyReducesWA(t *testing.T) {
	run := func(disableHotCold bool) Stats {
		dev := smallDevice(t, 2, 20, 16)
		opts := DefaultOptions()
		opts.OverprovisionPct = 0.15
		opts.GC.DisableHotCold = disableHotCold
		m := NewManager(dev, opts)
		const (
			rounds       = 40
			coldPerRound = 10
			hotPages     = 48
		)
		coldStart := m.AllocateLPNs(rounds * coldPerRound)
		hotStart := m.AllocateLPNs(hotPages)
		now := sim.Time(0)
		coldWritten := 0
		for r := 0; r < rounds; r++ {
			for i := 0; i < coldPerRound; i++ {
				done, err := m.WritePage(now, coldStart+LPN(coldWritten), fillPage(dev, 1), Hint{})
				if err != nil {
					t.Fatalf("cold write %d: %v", coldWritten, err)
				}
				coldWritten++
				now = done
			}
			for o := 0; o < 3; o++ {
				for i := 0; i < hotPages; i++ {
					done, err := m.WritePage(now, hotStart+LPN(i), fillPage(dev, byte(r)), Hint{})
					if err != nil {
						t.Fatalf("hot write: %v", err)
					}
					now = done
				}
			}
		}
		if err := m.VerifyIntegrity(); err != nil {
			t.Fatalf("disableHotCold=%v: %v", disableHotCold, err)
		}
		return m.Stats()
	}
	sep := run(false)
	mixed := run(true)
	if mixed.GCCopybacks == 0 {
		t.Fatal("mixed run produced no copybacks; workload too small")
	}
	if sep.WriteAmplification() >= mixed.WriteAmplification() {
		t.Fatalf("hot/cold separation should reduce WA: %.3f (separated) vs %.3f (mixed)",
			sep.WriteAmplification(), mixed.WriteAmplification())
	}
}

// TestWearLevelBoundsOverflow is the regression test for the erase-count
// comparison fix: with counters saturated near math.MaxInt64 the old
// minE + WearLevelDelta/2 arithmetic overflowed int64 and wear leveling
// silently skipped the coldest block.
func TestWearLevelBoundsOverflow(t *testing.T) {
	dev := smallDevice(t, 1, 16, 8)
	opts := DefaultOptions()
	opts.WearLevelDelta = 64
	m := NewManager(dev, opts)
	// Close one block naturally so it is a legitimate leveling candidate.
	start := m.AllocateLPNs(8)
	now := sim.Time(0)
	for i := 0; i < 8; i++ {
		done, err := m.WritePage(now, start+LPN(i), fillPage(dev, 9), Hint{})
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	m.mu.Lock()
	da := m.dies[0]
	cold := -1
	for i := range da.blocks {
		if da.blocks[i].state == blkClosed {
			cold = i
			da.blocks[i].eraseCount = math.MaxInt64 - 200 // least worn
		} else {
			da.blocks[i].eraseCount = math.MaxInt64 - 50 // spread 150 > delta 64
		}
	}
	if cold < 0 {
		m.mu.Unlock()
		t.Fatal("no closed block to level")
	}
	r := m.regionsByID[DefaultRegionID]
	moves := r.wlMoves
	m.maybeWearLevel(now, r, da)
	leveled := r.wlMoves > moves
	ec := da.blocks[cold].eraseCount
	m.mu.Unlock()

	if !leveled {
		t.Fatal("wear leveling skipped the coldest block (overflow-compare regression)")
	}
	// The erased block's counter saturates instead of wrapping negative.
	if ec < 0 {
		t.Fatalf("erase counter wrapped negative: %d", ec)
	}
	// Data survived the forced relocation.
	for i := 0; i < 8; i++ {
		got, _, err := m.ReadPage(now, start+LPN(i), nil)
		if err != nil || got[0] != 9 {
			t.Fatalf("page %d lost after wear leveling: %v", i, err)
		}
	}
	if err := m.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentBatchedWritesWithBackgroundGC drives batched writes from
// several goroutines while background GC steps run, then cross-checks every
// internal invariant.  Run with -race this also proves the locking is sound.
func TestConcurrentBatchedWritesWithBackgroundGC(t *testing.T) {
	dev := smallDevice(t, 4, 16, 8)
	opts := DefaultOptions()
	opts.OverprovisionPct = 0.25
	m := NewManager(dev, opts)
	const (
		workers  = 4
		perRange = 48
		rounds   = 6
		batch    = 8
	)
	starts := make([]LPN, workers)
	for w := range starts {
		starts[w] = m.AllocateLPNs(perRange)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			now := sim.Time(0)
			for r := 0; r < rounds; r++ {
				for i := 0; i < perRange; i += batch {
					writes := make([]PageWrite, 0, batch)
					for j := i; j < i+batch && j < perRange; j++ {
						writes = append(writes, PageWrite{
							LPN:  starts[w] + LPN(j),
							Data: fillPage(dev, byte(w*10+r)),
						})
					}
					done, err := m.WritePages(now, writes)
					if err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
					now = done
				}
				m.PumpBackgroundGC(now)
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := m.VerifyIntegrity(); err != nil {
		t.Fatalf("integrity violated after concurrent batched writes: %v", err)
	}
	st := m.Stats()
	if st.ValidPages != workers*perRange {
		t.Fatalf("valid pages = %d, want %d", st.ValidPages, workers*perRange)
	}
	// Every page reads back its worker's final round.
	for w := 0; w < workers; w++ {
		lpns := make([]LPN, perRange)
		for i := range lpns {
			lpns[i] = starts[w] + LPN(i)
		}
		reads, _ := m.ReadPages(0, lpns, nil)
		for i, rd := range reads {
			if rd.Err != nil {
				t.Fatalf("worker %d page %d: %v", w, i, rd.Err)
			}
			if rd.Data[0] != byte(w*10+rounds-1) {
				t.Fatalf("worker %d page %d holds stale data", w, i)
			}
		}
	}
}

// TestWornOutBlocksAreRetiredNotRepicked wears the device out on purpose:
// once a block's erase fails it must leave circulation (blkRetired) instead
// of staying closed with zero valid pages, where every victim policy would
// re-pick it forever and wedge the collection loop.  Before the fix this
// test hung.
func TestWornOutBlocksAreRetiredNotRepicked(t *testing.T) {
	cfg := flash.DefaultConfig()
	cfg.Geometry = flash.Geometry{
		Channels: 1, DiesPerChannel: 1, PlanesPerDie: 1,
		BlocksPerDie: 16, PagesPerBlock: 8, PageSize: 512,
	}
	cfg.EraseEndurance = 2
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.OverprovisionPct = 0.3
	opts.WearLevelDelta = 0
	m := NewManager(dev, opts)
	start := m.AllocateLPNs(16)
	now := sim.Time(0)
	var fails int
	for r := 0; r < 100; r++ {
		for i := 0; i < 16; i++ {
			done, err := m.WritePage(now, start+LPN(i), fillPage(dev, byte(r)), Hint{})
			if err != nil {
				fails++
				continue
			}
			now = done
		}
	}
	m.mu.Lock()
	retired := 0
	for i := range m.dies[0].blocks {
		if m.dies[0].blocks[i].state == blkRetired {
			retired++
		}
	}
	m.mu.Unlock()
	if retired == 0 {
		t.Fatal("endurance workload retired no blocks; sizing is off")
	}
	if err := m.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	t.Logf("retired %d blocks, %d failed writes", retired, fails)
}
