package core

import (
	"fmt"
	"strings"
	"time"

	"noftl/internal/metrics"
)

// Stats is a snapshot of the whole space manager: per-region statistics plus
// device-wide totals.  All counters are cumulative since the last
// ResetCounters call.
type Stats struct {
	Mode        PlacementMode
	Regions     []RegionStats
	HostReads   int64
	HostWrites  int64
	GCCopybacks int64
	GCErases    int64
	GCRuns      int64
	GCStalls    int64 // foreground (blocking) collections under the low watermark
	BGGCSteps   int64 // bounded background GC steps
	WearMoves   int64
	ValidPages  int64
	// Watermark configuration echo and current background-GC state (see the
	// per-region fields for the breakdown).
	GCLowWaterBlocks  int   // per-die foreground-backstop threshold
	GCHighWaterBlocks int   // per-die background-band threshold
	BGDebtBlocks      int64 // total free-block shortfall relative to the high watermark
	DiesInBGBand      int   // dies at or below the high watermark
	DiesAtLowWater    int   // dies at or below the low watermark (foreground territory)
	BGVictimsOpen     int   // dies with a partially collected background victim
	// Device-level counters (include everything the regions did).
	DeviceReads    int64
	DevicePrograms int64
	DeviceErases   int64
	MinErase       int64
	MaxErase       int64
	TotalErase     int64
}

// WriteAmplification returns the device-wide write amplification factor.
func (s Stats) WriteAmplification() float64 {
	if s.HostWrites == 0 {
		return 0
	}
	return float64(s.HostWrites+s.GCCopybacks) / float64(s.HostWrites)
}

// RegionByName returns the stats of the named region.
func (s Stats) RegionByName(name string) (RegionStats, bool) {
	for _, r := range s.Regions {
		if r.Name == name {
			return r, true
		}
	}
	return RegionStats{}, false
}

// String renders a multi-line report (used by the flashsim tool and tests).
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "placement mode: %s\n", s.Mode)
	fmt.Fprintf(&b, "host reads=%d writes=%d  gc copybacks=%d erases=%d runs=%d bg-steps=%d stalls=%d  WA=%.2f\n",
		s.HostReads, s.HostWrites, s.GCCopybacks, s.GCErases, s.GCRuns, s.BGGCSteps, s.GCStalls, s.WriteAmplification())
	for _, r := range s.Regions {
		fmt.Fprintf(&b, "  %s\n", r.String())
	}
	return b.String()
}

// Stats takes a snapshot of every region and of the device counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()

	dev := m.dev.Stats()
	out := Stats{
		Mode:              m.opts.Mode,
		DeviceReads:       dev.Reads,
		DevicePrograms:    dev.Programs,
		DeviceErases:      dev.Erases,
		GCLowWaterBlocks:  m.opts.GCLowWaterBlocks,
		GCHighWaterBlocks: m.opts.GCHighWaterBlocks,
	}

	first := true
	for _, name := range m.regionNamesLocked() {
		r := m.regions[name]
		rs := RegionStats{
			ID:            r.id,
			Name:          r.name,
			Dies:          sortedCopy(r.dies),
			CapacityPages: r.capacityPages,
			ValidPages:    r.validPages,
			GC:            r.gc,
			HostReads:     r.hostReads,
			HostWrites:    r.hostWrites,
			GCCopybacks:   r.gcCopybacks,
			GCErases:      r.gcErases,
			GCRuns:        r.gcRuns,
			GCStalls:      r.gcStalls,
			BGGCSteps:     r.bgSteps,
			WearMoves:     r.wlMoves,
			SpilledWrites: r.spills,
			ReadLatency:   r.readLat.Snapshot(),
			WriteLatency:  r.writeLat.Snapshot(),
		}
		channels := make(map[int]bool)
		regionMinE := int64(-1)
		for _, d := range r.dies {
			channels[m.geo.ChannelOfDie(d)] = true
			da := m.dies[d]
			rs.FreeBlocks += da.freeCount()
			if free := da.freeCount(); free <= m.opts.GCHighWaterBlocks {
				rs.DiesInBGBand++
				rs.BGDebtBlocks += int64(m.opts.GCHighWaterBlocks - free)
				if free <= m.opts.GCLowWaterBlocks {
					rs.DiesAtLowWater++
				}
			}
			if da.bgVictim >= 0 {
				rs.BGVictimsOpen++
			}
			for i := range da.blocks {
				ec := da.blocks[i].eraseCount
				rs.TotalErase += ec
				if ec > rs.MaxErase {
					rs.MaxErase = ec
				}
				if regionMinE < 0 || ec < regionMinE {
					regionMinE = ec
				}
			}
		}
		if regionMinE > 0 {
			rs.MinErase = regionMinE
		}
		rs.Channels = len(channels)
		out.Regions = append(out.Regions, rs)

		out.HostReads += rs.HostReads
		out.HostWrites += rs.HostWrites
		out.GCCopybacks += rs.GCCopybacks
		out.GCErases += rs.GCErases
		out.GCRuns += rs.GCRuns
		out.GCStalls += rs.GCStalls
		out.BGGCSteps += rs.BGGCSteps
		out.WearMoves += rs.WearMoves
		out.ValidPages += rs.ValidPages
		out.BGDebtBlocks += rs.BGDebtBlocks
		out.DiesInBGBand += rs.DiesInBGBand
		out.DiesAtLowWater += rs.DiesAtLowWater
		out.BGVictimsOpen += rs.BGVictimsOpen
		out.TotalErase += rs.TotalErase
		if rs.MaxErase > out.MaxErase {
			out.MaxErase = rs.MaxErase
		}
		if first || rs.MinErase < out.MinErase {
			out.MinErase = rs.MinErase
		}
		first = false
	}
	return out
}

// regionNamesLocked returns region names ordered by region id.  Caller holds
// m.mu.
func (m *Manager) regionNamesLocked() []string {
	ids := make([]RegionID, 0, len(m.regionsByID))
	for id := range m.regionsByID {
		ids = append(ids, id)
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	names := make([]string, 0, len(ids))
	for _, id := range ids {
		names = append(names, m.regionsByID[id].name)
	}
	return names
}

// ResetCounters clears all I/O and GC counters (per region and on the
// device) while keeping the mapping, allocation state and wear intact.
// Benchmarks call this after the warm-up phase.
func (m *Manager) ResetCounters() {
	m.mu.Lock()
	for _, r := range m.regions {
		r.hostReads, r.hostWrites = 0, 0
		r.gcCopybacks, r.gcErases, r.gcRuns, r.wlMoves, r.spills = 0, 0, 0, 0, 0
		r.gcStalls, r.bgSteps = 0, 0
		r.readLat.Reset()
		r.writeLat.Reset()
	}
	m.mu.Unlock()
	m.dev.ResetCounters()
	m.sched.Metrics().Reset()
}

// LatencySnapshot aggregates the read and write latency histograms across
// all regions weighted by their observation counts.
func (s Stats) LatencySnapshot() (read, write metrics.Snapshot) {
	var rCount, wCount int64
	var rMean, wMean float64
	for _, r := range s.Regions {
		rCount += r.ReadLatency.Count
		wCount += r.WriteLatency.Count
		rMean += float64(r.ReadLatency.Mean) * float64(r.ReadLatency.Count)
		wMean += float64(r.WriteLatency.Mean) * float64(r.WriteLatency.Count)
		if r.ReadLatency.Max > read.Max {
			read.Max = r.ReadLatency.Max
		}
		if r.WriteLatency.Max > write.Max {
			write.Max = r.WriteLatency.Max
		}
	}
	read.Count = rCount
	write.Count = wCount
	if rCount > 0 {
		read.Mean = time.Duration(rMean / float64(rCount))
	}
	if wCount > 0 {
		write.Mean = time.Duration(wMean / float64(wCount))
	}
	return read, write
}
