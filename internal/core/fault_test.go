package core

import (
	"bytes"
	"testing"

	"noftl/internal/flash"
	"noftl/internal/sim"
)

// faultCampaign overwrites a working set under an armed fault plan until GC
// has run and some erases have failed, then checks that no live page was
// lost: every logical page still reads back its latest contents and the
// space manager's invariants hold.
// Every failed erase retires a block for good, so the device needs enough
// spare blocks to survive the whole campaign's worth of retirements.
func faultCampaign(t *testing.T, plan flash.FaultPlan) {
	t.Helper()
	dev := smallDevice(t, 2, 32, 8)
	dev.Arm(plan)
	opts := DefaultOptions()
	opts.OverprovisionPct = 0.25
	m := NewManager(dev, opts)

	const pages = 80
	const rounds = 10
	start := m.AllocateLPNs(pages)
	now := sim.Time(0)
	latest := make([]byte, pages)
	for r := 0; r < rounds; r++ {
		for i := 0; i < pages; i++ {
			tag := byte(r*31 + i)
			done, err := m.WritePage(now, start+LPN(i), fillPage(dev, tag), Hint{})
			if err != nil {
				t.Fatalf("round %d page %d: %v", r, i, err)
			}
			latest[i] = tag
			now = done
		}
	}

	st := m.Stats()
	if st.GCErases == 0 {
		t.Fatal("workload never forced GC; the campaign exercised nothing")
	}
	if st.ValidPages != pages {
		t.Fatalf("valid pages = %d, want %d", st.ValidPages, pages)
	}
	for i := 0; i < pages; i++ {
		got, _, err := m.ReadPage(now, start+LPN(i), nil)
		if err != nil {
			t.Fatalf("read lpn %d after faults: %v", i, err)
		}
		if !bytes.Equal(got, fillPage(dev, latest[i])) {
			t.Fatalf("lpn %d lost its latest version under faults", i)
		}
	}
	if err := m.VerifyIntegrity(); err != nil {
		t.Fatalf("integrity after fault campaign: %v", err)
	}
}

// TestGCSurvivesEraseFailures makes every Nth erase fail — the victim block
// has already had its live pages relocated when the erase fires, so the
// failed (now bad) block must retire without losing data, and the victim
// scans must never re-pick it.
func TestGCSurvivesEraseFailures(t *testing.T) {
	faultCampaign(t, flash.FaultPlan{Seed: 1, FailEraseEvery: 5})
}

// TestGCSurvivesProgramFailures makes every Nth program fault transiently:
// host writes and GC copybacks must retry on a fresh page (retiring the
// block if the device marked it bad) without dropping the data being moved.
func TestGCSurvivesProgramFailures(t *testing.T) {
	faultCampaign(t, flash.FaultPlan{Seed: 2, FailProgramEvery: 17})
}

// TestGCSurvivesCombinedWear combines probabilistic program and erase faults
// — the worn-device regime where both happen interleaved with relocation.
func TestGCSurvivesCombinedWear(t *testing.T) {
	faultCampaign(t, flash.FaultPlan{Seed: 3, FailProgramProb: 0.02, FailEraseProb: 0.1})
}
