package core

import (
	"errors"
	"fmt"
	"sync"

	"noftl/internal/flash"
	"noftl/internal/iosched"
	"noftl/internal/metrics"
	"noftl/internal/obs"
	"noftl/internal/sim"
)

// Options configure the space manager.
type Options struct {
	// Mode selects between region-aware placement and the traditional
	// (uniform, hint-ignoring) placement baseline.
	Mode PlacementMode
	// OverprovisionPct is the fraction of each region's raw capacity that is
	// withheld from the logical capacity so that garbage collection always
	// finds reclaimable blocks.  Default 0.12.
	OverprovisionPct float64
	// GCLowWaterBlocks is the per-die number of free blocks at or below which
	// allocation triggers a blocking foreground collection (the correctness
	// backstop).  Default 3.
	GCLowWaterBlocks int
	// GCHighWaterBlocks is the per-die number of free blocks at or below
	// which background GC runs opportunistic bounded steps after host writes
	// (see bggc.go).  Must exceed GCLowWaterBlocks; default
	// GCLowWaterBlocks+3.
	GCHighWaterBlocks int
	// GCReserveBlocks is the per-die number of free blocks reserved for
	// garbage collection itself; host writes never consume them.  Default 1.
	GCReserveBlocks int
	// DisableBackgroundGC reverts to purely foreground (synchronous)
	// collection: all GC work is charged inline to the host write that
	// trips the low watermark, as in the pre-background-GC behaviour.
	DisableBackgroundGC bool
	// GC is the default garbage-collection policy new regions start with;
	// CREATE REGION / ALTER REGION clauses override it per region.
	GC GCPolicy
	// WearLevelDelta is the difference between the most- and least-worn
	// block of a die above which static wear leveling kicks in during GC.
	// Zero disables static wear leveling.  Default 64.
	WearLevelDelta int64
	// DisableSpill turns off the spill-over behaviour: normally, when the
	// region named by a write hint has exhausted its logical capacity, the
	// write is placed in the default region instead (and counted as a
	// spill), mirroring how a DBMS falls back to a different tablespace
	// rather than failing the transaction.  With DisableSpill the write
	// fails with ErrRegionFull.
	DisableSpill bool
}

// DefaultOptions returns the defaults described on each field.
func DefaultOptions() Options {
	return Options{
		Mode:              PlacementRegions,
		OverprovisionPct:  0.12,
		GCLowWaterBlocks:  3,
		GCHighWaterBlocks: 6,
		GCReserveBlocks:   1,
		WearLevelDelta:    64,
		GC:                DefaultGCPolicy(),
	}
}

func (o Options) withDefaults() Options {
	if o.OverprovisionPct <= 0 || o.OverprovisionPct >= 0.9 {
		o.OverprovisionPct = 0.12
	}
	if o.GCLowWaterBlocks <= 0 {
		o.GCLowWaterBlocks = 3
	}
	if o.GCReserveBlocks <= 0 {
		o.GCReserveBlocks = 1
	}
	if o.GCReserveBlocks >= o.GCLowWaterBlocks {
		o.GCLowWaterBlocks = o.GCReserveBlocks + 2
	}
	if o.GCHighWaterBlocks <= o.GCLowWaterBlocks {
		o.GCHighWaterBlocks = o.GCLowWaterBlocks + 3
	}
	if o.WearLevelDelta < 0 {
		o.WearLevelDelta = 0
	}
	o.GC = o.GC.withDefaults()
	return o
}

// block lifecycle states tracked by the manager (the device itself only knows
// erased/programmed pages).
type blockState uint8

const (
	blkFree    blockState = iota // fully erased, on the free list
	blkOpen                      // currently receiving writes (host or GC)
	blkClosed                    // fully programmed, eligible as a GC victim
	blkRetired                   // worn out (erase failed); never used again
)

// blockInfo is the manager-side bookkeeping for one erase block.
type blockInfo struct {
	state      blockState
	validCount int
	nextPage   int
	eraseCount int64
	lastWrite  uint64 // manager write sequence when the block last changed
	lpns       []LPN
	valid      []bool
}

func (b *blockInfo) reset(pagesPerBlock int) {
	b.state = blkFree
	b.validCount = 0
	b.nextPage = 0
	b.lastWrite = 0
	if b.lpns == nil {
		b.lpns = make([]LPN, pagesPerBlock)
		b.valid = make([]bool, pagesPerBlock)
		return
	}
	for i := range b.valid {
		b.valid[i] = false
		b.lpns[i] = 0
	}
}

// dieAlloc is the per-die allocation state: free blocks, the open block
// receiving host writes and the open block receiving GC copybacks.
type dieAlloc struct {
	die        int
	regionID   RegionID
	blocks     []blockInfo
	freeBlocks []int // indexes of blocks in state blkFree
	hostOpen   int   // block index, -1 if none
	gcOpen     int   // block index, -1 if none
	bgVictim   int   // victim being incrementally collected in background, -1 if none
}

func (da *dieAlloc) freeCount() int { return len(da.freeBlocks) }

// totalFreePages counts pages still programmable on the die (free blocks plus
// the remainder of the open blocks).
func (da *dieAlloc) totalFreePages(pagesPerBlock int) int64 {
	n := int64(len(da.freeBlocks)) * int64(pagesPerBlock)
	if da.hostOpen >= 0 {
		n += int64(pagesPerBlock - da.blocks[da.hostOpen].nextPage)
	}
	if da.gcOpen >= 0 {
		n += int64(pagesPerBlock - da.blocks[da.gcOpen].nextPage)
	}
	return n
}

// mapEntry records where a logical page currently lives.
type mapEntry struct {
	addr   ppa
	region RegionID
}

// Manager is the NoFTL space manager: it owns the native flash device,
// manages regions, performs logical-to-physical address translation with
// out-of-place updates, and runs garbage collection and wear leveling per
// region using DBMS-side knowledge.
type Manager struct {
	mu    sync.Mutex
	dev   *flash.Device
	geo   flash.Geometry
	opts  Options
	sched *iosched.Scheduler

	regions     map[string]*Region
	regionsByID map[RegionID]*Region
	nextRegion  RegionID

	dieOwner []RegionID // region owning each die
	dies     []*dieAlloc

	mapping map[LPN]mapEntry
	nextLPN LPN
	seq     uint64 // monotonically increasing write sequence for OOB metadata

	// Observability plane (AttachObs): tracer is nil when tracing is off; reg
	// is nil when labeled export is off.  Per-region labeled children are
	// cached on the Region itself (bindRegionObsLocked).
	tracer *obs.Tracer
	reg    *metrics.Registry
}

// NewManager creates a space manager over dev.  Initially a single region
// named DEFAULT owns every die, which is exactly the traditional placement
// configuration; CreateRegion carves further regions out of the default one.
func NewManager(dev *flash.Device, opts Options) *Manager {
	opts = opts.withDefaults()
	m := &Manager{
		dev:         dev,
		geo:         dev.Geometry(),
		opts:        opts,
		sched:       iosched.New(dev),
		regions:     make(map[string]*Region),
		regionsByID: make(map[RegionID]*Region),
		mapping:     make(map[LPN]mapEntry),
		nextLPN:     1,
		nextRegion:  DefaultRegionID + 1,
	}
	nDies := m.geo.Dies()
	m.dieOwner = make([]RegionID, nDies)
	m.dies = make([]*dieAlloc, nDies)
	for i := 0; i < nDies; i++ {
		da := &dieAlloc{die: i, regionID: DefaultRegionID, hostOpen: -1, gcOpen: -1, bgVictim: -1}
		da.blocks = make([]blockInfo, m.geo.BlocksPerDie)
		da.freeBlocks = make([]int, 0, m.geo.BlocksPerDie)
		for b := 0; b < m.geo.BlocksPerDie; b++ {
			da.blocks[b].reset(m.geo.PagesPerBlock)
			da.freeBlocks = append(da.freeBlocks, b)
		}
		m.dies[i] = da
	}

	def := newRegion(DefaultRegionID, DefaultRegionName)
	def.gc = opts.GC
	allDies := make([]int, nDies)
	for i := range allDies {
		allDies[i] = i
	}
	def.dies = allDies
	m.regions[def.name] = def
	m.regionsByID[def.id] = def
	m.recomputeCapacity(def)
	return m
}

// Device returns the underlying flash device.
func (m *Manager) Device() *flash.Device { return m.dev }

// Scheduler returns the asynchronous I/O scheduler every flash command of
// this manager is routed through.
func (m *Manager) Scheduler() *iosched.Scheduler { return m.sched }

// Mode returns the placement mode the manager was created with.
func (m *Manager) Mode() PlacementMode { return m.opts.Mode }

// AttachObs wires the space manager (and its I/O scheduler) to the
// observability plane: host read/write, GC, and wear-leveling events go to tr
// (nil = tracing off), per-region labeled metric families are registered on
// reg (nil = no labeled export).  Call before serving traffic; regions
// created later are bound automatically.
func (m *Manager) AttachObs(tr *obs.Tracer, reg *metrics.Registry) {
	m.mu.Lock()
	m.tracer = tr
	m.reg = reg
	for _, r := range m.regions {
		m.bindRegionObsLocked(r)
	}
	m.mu.Unlock()
	m.sched.AttachObs(tr, reg)
}

// bindRegionObsLocked caches the region's labeled metric children so hot
// paths never touch the registry maps.  Caller holds m.mu.
func (m *Manager) bindRegionObsLocked(r *Region) {
	if m.reg == nil {
		return
	}
	reg := m.reg
	r.promHostReads = reg.Counter("noftl_region_host_reads_total",
		"Logical host page reads served per region.", "region").With(r.name)
	r.promHostWrites = reg.Counter("noftl_region_host_writes_total",
		"Logical host page writes placed per region.", "region").With(r.name)
	r.promGCCopybacks = reg.Counter("noftl_region_gc_copybacks_total",
		"Valid pages relocated by garbage collection per region.", "region").With(r.name)
	r.promGCErases = reg.Counter("noftl_region_gc_erases_total",
		"Victim blocks erased by garbage collection per region.", "region").With(r.name)
	r.promGCStalls = reg.Counter("noftl_region_gc_stalls_total",
		"Foreground (blocking) collections at the low watermark per region.", "region").With(r.name)
	r.promBGSteps = reg.Counter("noftl_region_bggc_steps_total",
		"Bounded background GC steps per region.", "region").With(r.name)
	r.promWearMoves = reg.Counter("noftl_region_wear_moves_total",
		"Static wear-leveling block relocations per region.", "region").With(r.name)
	r.promReadLat = reg.Histogram("noftl_host_read_latency_seconds",
		"End-to-end virtual-time host read latency per region.", "region").With(r.name)
	r.promWriteLat = reg.Histogram("noftl_host_write_latency_seconds",
		"End-to-end virtual-time host write latency (including foreground GC) per region.", "region").With(r.name)
}

// Options returns the effective options.
func (m *Manager) Options() Options { return m.opts }

// DieFreeBlocks returns the current free-block count of every die, indexed
// by die number.  The metrics plane exports it as a per-die gauge at scrape
// time.
func (m *Manager) DieFreeBlocks() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, len(m.dies))
	for i, da := range m.dies {
		out[i] = da.freeCount()
	}
	return out
}

// recomputeCapacity updates the exported logical capacity of a region from
// its die set, over-provisioning and MAX_SIZE limit.  Caller holds m.mu (or
// is the constructor).
func (m *Manager) recomputeCapacity(r *Region) {
	raw := int64(len(r.dies)) * int64(m.geo.PagesPerDie())
	capPages := int64(float64(raw) * (1 - m.opts.OverprovisionPct))
	if r.maxSizePages > 0 && r.maxSizePages < capPages {
		capPages = r.maxSizePages
	}
	r.capacityPages = capPages
}

// DefaultRegion returns the default region.
func (m *Manager) DefaultRegion() *Region {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.regionsByID[DefaultRegionID]
}

// Region returns the region with the given name.
func (m *Manager) Region(name string) (*Region, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.regions[name]
	return r, ok
}

// RegionByID returns the region with the given id.
func (m *Manager) RegionByID(id RegionID) (*Region, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.regionsByID[id]
	return r, ok
}

// Regions returns the names of all regions, default region first, then in
// creation order.
func (m *Manager) Regions() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.regions))
	ids := make([]RegionID, 0, len(m.regions))
	for id := range m.regionsByID {
		ids = append(ids, id)
	}
	// selection sort by id to keep creation order; region count is tiny.
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	for _, id := range ids {
		names = append(names, m.regionsByID[id].name)
	}
	return names
}

// CreateRegion carves a new region out of the default region according to
// spec.  Only dies that currently hold no valid data can move to the new
// region, so regions are normally created right after the device is opened,
// before objects are loaded (online region re-organisation with data
// migration is future work, see DESIGN.md).
func (m *Manager) CreateRegion(spec RegionSpec) (*Region, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.regions[spec.Name]; exists {
		return nil, fmt.Errorf("%w: %q", ErrRegionExists, spec.Name)
	}
	def := m.regionsByID[DefaultRegionID]

	var chosen []int
	if len(spec.Dies) > 0 {
		for _, d := range spec.Dies {
			if d < 0 || d >= m.geo.Dies() {
				return nil, fmt.Errorf("%w: die %d out of range", ErrInvalidSpec, d)
			}
			if m.dieOwner[d] != DefaultRegionID {
				return nil, fmt.Errorf("%w: die %d already belongs to region %d", ErrNoDiesAvailable, d, m.dieOwner[d])
			}
			if !m.dieEmpty(d) {
				return nil, fmt.Errorf("%w: die %d holds valid data", ErrNoDiesAvailable, d)
			}
			chosen = append(chosen, d)
		}
	} else {
		chosen = m.selectDies(spec.MaxChips, spec.MaxChannels)
		if len(chosen) < spec.MaxChips {
			return nil, fmt.Errorf("%w: requested %d dies, only %d empty dies in the default region",
				ErrNoDiesAvailable, spec.MaxChips, len(chosen))
		}
	}

	r := newRegion(m.nextRegion, spec.Name)
	r.gc = m.opts.GC
	if spec.GC != nil {
		r.gc = spec.GC.withDefaults()
	}
	m.nextRegion++
	r.dies = sortedCopy(chosen)
	if spec.MaxSizeBytes > 0 {
		r.maxSizePages = spec.MaxSizeBytes / int64(m.geo.PageSize)
	}
	for _, d := range chosen {
		m.dieOwner[d] = r.id
		m.dies[d].regionID = r.id
	}
	// Remove the chosen dies from the default region.
	def.dies = removeDies(def.dies, chosen)
	m.recomputeCapacity(def)
	m.recomputeCapacity(r)

	m.regions[r.name] = r
	m.regionsByID[r.id] = r
	m.bindRegionObsLocked(r)
	return r, nil
}

// dieEmpty reports whether a die holds no valid pages.  Caller holds m.mu.
func (m *Manager) dieEmpty(die int) bool {
	da := m.dies[die]
	for b := range da.blocks {
		if da.blocks[b].validCount > 0 {
			return false
		}
	}
	return true
}

// selectDies picks up to n empty dies from the default region, spreading them
// over at most maxChannels channels (0 = unlimited).  Caller holds m.mu.
func (m *Manager) selectDies(n, maxChannels int) []int {
	def := m.regionsByID[DefaultRegionID]
	usedChannels := make(map[int]bool)
	var chosen []int
	// First pass: favour spreading across channels round-robin so a region
	// gets the full channel parallelism its MAX_CHANNELS allows.
	for len(chosen) < n {
		progress := false
		for _, d := range def.dies {
			if len(chosen) >= n {
				break
			}
			if containsInt(chosen, d) || !m.dieEmpty(d) {
				continue
			}
			ch := m.geo.ChannelOfDie(d)
			if maxChannels > 0 && !usedChannels[ch] && len(usedChannels) >= maxChannels {
				continue
			}
			if usedChannels[ch] && !allChannelsCovered(usedChannels, maxChannels, m.geo.Channels) {
				// Prefer a die on a not-yet-used channel if one is still
				// available in this pass.
				if m.emptyDieOnFreshChannel(def.dies, chosen, usedChannels, maxChannels) {
					continue
				}
			}
			chosen = append(chosen, d)
			usedChannels[ch] = true
			progress = true
		}
		if !progress {
			break
		}
	}
	return chosen
}

// emptyDieOnFreshChannel reports whether an empty, unchosen die exists on a
// channel that has not been used yet and would still be admissible.
func (m *Manager) emptyDieOnFreshChannel(candidates, chosen []int, used map[int]bool, maxChannels int) bool {
	if maxChannels > 0 && len(used) >= maxChannels {
		return false
	}
	for _, d := range candidates {
		if containsInt(chosen, d) || !m.dieEmpty(d) {
			continue
		}
		if !used[m.geo.ChannelOfDie(d)] {
			return true
		}
	}
	return false
}

func allChannelsCovered(used map[int]bool, maxChannels, totalChannels int) bool {
	limit := totalChannels
	if maxChannels > 0 && maxChannels < limit {
		limit = maxChannels
	}
	return len(used) >= limit
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func removeDies(from []int, remove []int) []int {
	out := from[:0]
	for _, d := range from {
		if !containsInt(remove, d) {
			out = append(out, d)
		}
	}
	return out
}

// DropRegion removes an empty region and returns its dies to the default
// region.
func (m *Manager) DropRegion(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.regions[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownRegion, name)
	}
	if r.id == DefaultRegionID {
		return ErrDefaultRegion
	}
	if r.validPages > 0 {
		return fmt.Errorf("%w: %q has %d valid pages", ErrRegionNotEmpty, name, r.validPages)
	}
	def := m.regionsByID[DefaultRegionID]
	for _, d := range r.dies {
		m.dieOwner[d] = DefaultRegionID
		m.dies[d].regionID = DefaultRegionID
	}
	def.dies = sortedCopy(append(def.dies, r.dies...))
	m.recomputeCapacity(def)
	delete(m.regions, name)
	delete(m.regionsByID, r.id)
	return nil
}

// GrowRegion moves n additional empty dies from the default region into the
// named region (the paper notes that the die set of a region is dynamic).
func (m *Manager) GrowRegion(name string, n int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.regions[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownRegion, name)
	}
	if r.id == DefaultRegionID {
		return fmt.Errorf("%w: cannot grow the default region explicitly", ErrInvalidSpec)
	}
	chosen := m.selectDies(n, 0)
	if len(chosen) < n {
		return fmt.Errorf("%w: requested %d dies, found %d", ErrNoDiesAvailable, n, len(chosen))
	}
	def := m.regionsByID[DefaultRegionID]
	for _, d := range chosen {
		m.dieOwner[d] = r.id
		m.dies[d].regionID = r.id
	}
	def.dies = removeDies(def.dies, chosen)
	r.dies = sortedCopy(append(r.dies, chosen...))
	m.recomputeCapacity(def)
	m.recomputeCapacity(r)
	return nil
}

// AllocateLPNs reserves n consecutive logical page numbers and returns the
// first.  The storage layer uses this to number extents.
func (m *Manager) AllocateLPNs(n int) LPN {
	m.mu.Lock()
	defer m.mu.Unlock()
	start := m.nextLPN
	m.nextLPN += LPN(n)
	return start
}

// resolveRegion maps a write hint to the target region under the current
// placement mode.  Caller holds m.mu.
func (m *Manager) resolveRegion(h Hint) *Region {
	if m.opts.Mode == PlacementTraditional {
		return m.regionsByID[DefaultRegionID]
	}
	if r, ok := m.regionsByID[h.Region]; ok {
		return r
	}
	return m.regionsByID[DefaultRegionID]
}

// Mapped reports whether the logical page has a physical location.
func (m *Manager) Mapped(lpn LPN) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.mapping[lpn]
	return ok
}

// Locate returns the physical address a logical page currently maps to
// (diagnostic/test helper).
func (m *Manager) Locate(lpn LPN) (flash.Addr, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.mapping[lpn]
	return e.addr, ok
}

// ReadPage reads the current version of the logical page into buf (which may
// be nil to let the device allocate).  It returns the data, the virtual
// completion time and an error if the page was never written.
func (m *Manager) ReadPage(now sim.Time, lpn LPN, buf []byte) ([]byte, sim.Time, error) {
	m.mu.Lock()
	e, ok := m.mapping[lpn]
	if !ok {
		m.mu.Unlock()
		return nil, now, fmt.Errorf("%w: lpn %d", ErrUnmappedPage, lpn)
	}
	r := m.regionsByID[m.dieOwner[e.addr.Die]]
	r.hostReads++
	tr := m.tracer
	m.mu.Unlock()

	data, _, done, err := m.sched.Read(now, e.addr, buf, iosched.PrioHostRead)
	if err != nil {
		return nil, done, err
	}
	r.readLat.Observe(done.Sub(now))
	if r.promReadLat != nil {
		r.promReadLat.Observe(done.Sub(now))
		r.promHostReads.Inc()
	}
	if tr.Enabled(obs.ClassHostRead) {
		tr.Record(obs.Event{
			Class: obs.ClassHostRead,
			Die:   int32(e.addr.Die), Block: int32(e.addr.Block), Page: int32(e.addr.Page),
			Region: int32(r.id), Start: now, End: done, A: int64(lpn),
		})
	}
	return data, done, nil
}

// WritePage writes (or overwrites) the logical page out of place in the
// region selected by the hint.  The previous physical version, if any, is
// invalidated.  When the target die falls to the low watermark, a blocking
// foreground collection runs as part of the call and its cost is charged to
// the caller's virtual time, exactly like foreground GC on a real device;
// between the high and low watermarks, background GC instead runs a bounded
// step after the write whose cost is absorbed by the die's idle slots
// (see bggc.go).
func (m *Manager) WritePage(now sim.Time, lpn LPN, data []byte, h Hint) (sim.Time, error) {
	start := now
	m.mu.Lock()
	r := m.resolveRegion(h)

	prev, remap := m.mapping[lpn]
	// The write consumes a unit of the target region's logical capacity when
	// the page is new to that region (first write, or a page whose previous
	// version lives in a different region, e.g. after an earlier spill).
	consumesCapacity := !remap || prev.region != r.id
	if consumesCapacity && r.validPages >= r.capacityPages {
		if m.opts.DisableSpill || r.id == DefaultRegionID {
			m.mu.Unlock()
			return now, fmt.Errorf("%w: %q (%d pages)", ErrRegionFull, r.name, r.capacityPages)
		}
		r.spills++
		r = m.regionsByID[DefaultRegionID]
		consumesCapacity = !remap || prev.region != r.id
		if consumesCapacity && r.validPages >= r.capacityPages {
			m.mu.Unlock()
			return now, fmt.Errorf("%w: %q (%d pages)", ErrRegionFull, r.name, r.capacityPages)
		}
	}

	var (
		da   *dieAlloc
		slot slotRef
		addr ppa
		done sim.Time
	)
	for attempt := 0; ; attempt++ {
		var gcDone sim.Time
		var err error
		da, slot, gcDone, err = m.allocateSlot(now, r)
		if err != nil {
			if !m.opts.DisableSpill && r.id != DefaultRegionID {
				// The hinted region has raw space exhausted (e.g. GC cannot
				// keep up); fall back to the default region.
				r.spills++
				r = m.regionsByID[DefaultRegionID]
				da, slot, gcDone, err = m.allocateSlot(now, r)
			}
			if err != nil {
				m.mu.Unlock()
				return now, err
			}
		}
		now = gcDone

		addr = ppa{Die: da.die, Block: slot.block, Page: slot.page}
		m.seq++
		meta := flash.PageMeta{
			LPN:      uint64(lpn),
			ObjectID: h.ObjectID,
			RegionID: uint32(r.id),
			Seq:      m.seq,
			Flags:    h.Flags,
		}
		done, err = m.sched.Program(now, addr, data, meta, iosched.PrioHostWrite)
		if err == nil {
			break
		}
		// Roll back the slot reservation bookkeeping; the block page is
		// still erased because the program failed.  A block the device has
		// marked bad is retired so the next write opens a fresh one.  A
		// transient program fault is retried a bounded number of times; the
		// round-robin die cursor has advanced, so the retry usually lands on
		// a different die.
		blk := &da.blocks[slot.block]
		blk.nextPage--
		m.retireIfBad(da, slot.block)
		if attempt >= maxProgramRetries || !errors.Is(err, flash.ErrProgramFault) {
			m.mu.Unlock()
			return now, err
		}
	}

	blk := &da.blocks[slot.block]
	blk.lpns[slot.page] = lpn
	blk.valid[slot.page] = true
	blk.validCount++
	blk.lastWrite = m.seq
	if blk.nextPage >= m.geo.PagesPerBlock {
		blk.state = blkClosed
		if da.hostOpen == slot.block {
			da.hostOpen = -1
		}
	}

	old, had := m.mapping[lpn]
	m.mapping[lpn] = mapEntry{addr: addr, region: r.id}
	if had {
		m.invalidate(old)
		if old.region != r.id {
			// The page migrated between regions (e.g. a spill, or a later
			// write that returned home): transfer the valid-page accounting.
			if or, ok := m.regionsByID[old.region]; ok && or.validPages > 0 {
				or.validPages--
			}
			r.validPages++
		}
	} else {
		r.validPages++
	}
	r.hostWrites++
	// The observed write latency includes any synchronous GC work the write
	// had to wait for, exactly what a host sees on a device doing foreground
	// garbage collection.
	r.writeLat.Observe(done.Sub(start))
	if r.promWriteLat != nil {
		r.promWriteLat.Observe(done.Sub(start))
		r.promHostWrites.Inc()
	}
	if m.tracer.Enabled(obs.ClassHostWrite) {
		m.tracer.Record(obs.Event{
			Class: obs.ClassHostWrite,
			Die:   int32(da.die), Block: int32(slot.block), Page: int32(slot.page),
			Region: int32(r.id), Start: start, End: done, A: int64(lpn),
		})
	}
	// Opportunistic background GC: a bounded step on the die just written,
	// after the host latency has been recorded — its cost lands in the die's
	// idle time, not in this write's response time.
	m.backgroundGCLocked(done, da)
	m.mu.Unlock()
	return done, nil
}

// invalidate marks the physical page at e as no longer holding current data.
// Caller holds m.mu.
func (m *Manager) invalidate(e mapEntry) {
	da := m.dies[e.addr.Die]
	blk := &da.blocks[e.addr.Block]
	if blk.valid[e.addr.Page] {
		blk.valid[e.addr.Page] = false
		if blk.validCount > 0 {
			blk.validCount--
		}
		// Invalidations refresh the block's age: cost-benefit victim
		// selection treats a block whose contents are still churning as hot.
		blk.lastWrite = m.seq
	}
}

// TrimPage drops the logical page entirely: its physical copy is invalidated
// and the logical page becomes unmapped (used when objects are dropped or
// truncated).
func (m *Manager) TrimPage(lpn LPN) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.mapping[lpn]
	if !ok {
		return fmt.Errorf("%w: lpn %d", ErrUnmappedPage, lpn)
	}
	m.invalidate(e)
	delete(m.mapping, lpn)
	if r, ok := m.regionsByID[e.region]; ok && r.validPages > 0 {
		r.validPages--
	}
	return nil
}

// maxProgramRetries bounds how often WritePage retries after a transient
// injected program fault before surfacing the error.
const maxProgramRetries = 3

// slotRef identifies the page slot handed out by allocateSlot.
type slotRef struct {
	block int
	page  int
}

// allocateSlot picks the die (round-robin within the region) and the next
// programmable page of that die's open block, opening a new block — and
// garbage-collecting first if necessary — when needed.  It returns the die
// allocation state, the slot, and the virtual time after any synchronous GC
// work.  Caller holds m.mu.
func (m *Manager) allocateSlot(now sim.Time, r *Region) (*dieAlloc, slotRef, sim.Time, error) {
	if len(r.dies) == 0 {
		return nil, slotRef{}, now, fmt.Errorf("%w: region %q has no dies", ErrRegionFull, r.name)
	}
	// Round-robin over the region's dies, skipping dies that cannot yield a
	// slot even after GC.
	for attempt := 0; attempt < len(r.dies); attempt++ {
		die := r.dies[r.rr%len(r.dies)]
		r.rr++
		da := m.dies[die]

		// Make sure the die has an open host block.
		if da.hostOpen < 0 || da.blocks[da.hostOpen].nextPage >= m.geo.PagesPerBlock {
			var gcTime sim.Time
			var ok bool
			gcTime, ok = m.openHostBlock(now, r, da)
			if !ok {
				continue
			}
			now = gcTime
		}
		blk := &da.blocks[da.hostOpen]
		slot := slotRef{block: da.hostOpen, page: blk.nextPage}
		blk.nextPage++
		return da, slot, now, nil
	}
	return nil, slotRef{}, now, fmt.Errorf("%w: %q", ErrRegionFull, r.name)
}

// openHostBlock ensures da has an open block for host writes, running GC when
// the free-block count is at or below the low-water mark.  It returns the
// virtual time after any GC work and whether a block could be opened.
// Caller holds m.mu.
func (m *Manager) openHostBlock(now sim.Time, r *Region, da *dieAlloc) (sim.Time, bool) {
	if da.freeCount() <= m.opts.GCLowWaterBlocks {
		now = m.collectDie(now, r, da)
	}
	// Under a policy without hot/cold separation the collection itself may
	// have (re)opened the host block to hold relocated pages; opening
	// another one here would orphan it (an open block no victim scan sees)
	// and leak its space.
	if da.hostOpen >= 0 && da.blocks[da.hostOpen].nextPage < m.geo.PagesPerBlock {
		return now, true
	}
	// Host writes must leave the GC reserve untouched.
	if da.freeCount() <= m.opts.GCReserveBlocks {
		return now, false
	}
	idx := m.popFreeBlock(da)
	if idx < 0 {
		return now, false
	}
	da.blocks[idx].state = blkOpen
	da.hostOpen = idx
	return now, true
}

// popFreeBlock removes and returns the least-worn free block of the die, or
// -1 when none is free.  Preferring the least-worn block is the dynamic part
// of wear leveling.  Caller holds m.mu.
func (m *Manager) popFreeBlock(da *dieAlloc) int {
	if len(da.freeBlocks) == 0 {
		return -1
	}
	best := 0
	for i, b := range da.freeBlocks {
		if da.blocks[b].eraseCount < da.blocks[da.freeBlocks[best]].eraseCount {
			best = i
		}
	}
	idx := da.freeBlocks[best]
	da.freeBlocks = append(da.freeBlocks[:best], da.freeBlocks[best+1:]...)
	return idx
}
