package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"noftl/internal/flash"
	"noftl/internal/sim"
)

// overwriteWorkload repeatedly overwrites a working set of logical pages so
// that garbage accumulates and GC has to run.
func overwriteWorkload(t *testing.T, m *Manager, dev *flash.Device, pages, rounds int, hint Hint) sim.Time {
	t.Helper()
	start := m.AllocateLPNs(pages)
	now := sim.Time(0)
	for r := 0; r < rounds; r++ {
		for i := 0; i < pages; i++ {
			lpn := start + LPN(i)
			done, err := m.WritePage(now, lpn, fillPage(dev, byte(r+i)), hint)
			if err != nil {
				t.Fatalf("round %d page %d: %v", r, i, err)
			}
			now = done
		}
	}
	return now
}

func TestGCReclaimsSpaceAndPreservesData(t *testing.T) {
	dev := smallDevice(t, 2, 16, 8) // 256 raw pages
	opts := DefaultOptions()
	opts.OverprovisionPct = 0.25
	m := NewManager(dev, opts)

	const pages = 100 // < logical capacity of 192
	const rounds = 8
	start := m.AllocateLPNs(pages)
	now := sim.Time(0)
	for r := 0; r < rounds; r++ {
		for i := 0; i < pages; i++ {
			done, err := m.WritePage(now, start+LPN(i), fillPage(dev, byte(r*31+i)), Hint{})
			if err != nil {
				t.Fatalf("round %d page %d: %v", r, i, err)
			}
			now = done
		}
	}
	st := m.Stats()
	if st.GCErases == 0 {
		t.Fatal("expected garbage collection to have erased blocks")
	}
	if st.HostWrites != pages*rounds {
		t.Fatalf("host writes = %d, want %d", st.HostWrites, pages*rounds)
	}
	if st.ValidPages != pages {
		t.Fatalf("valid pages = %d, want %d", st.ValidPages, pages)
	}
	// All logical pages still hold their latest contents.
	for i := 0; i < pages; i++ {
		want := fillPage(dev, byte((rounds-1)*31+i))
		got, _, err := m.ReadPage(now, start+LPN(i), nil)
		if err != nil {
			t.Fatalf("read lpn %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("lpn %d lost its latest version after GC", i)
		}
	}
	// Device-level invariant: programs = host writes + copybacks.
	if st.DevicePrograms != st.HostWrites+st.GCCopybacks {
		t.Fatalf("programs=%d, host=%d copybacks=%d", st.DevicePrograms, st.HostWrites, st.GCCopybacks)
	}
	if st.DeviceErases != st.GCErases {
		t.Fatalf("device erases=%d, gc erases=%d", st.DeviceErases, st.GCErases)
	}
}

func TestGCRespectsReserveBlocks(t *testing.T) {
	dev := smallDevice(t, 1, 12, 4)
	opts := DefaultOptions()
	opts.OverprovisionPct = 0.4
	opts.GCReserveBlocks = 2
	opts.GCLowWaterBlocks = 4
	m := NewManager(dev, opts)
	overwriteWorkload(t, m, dev, 20, 10, Hint{})
	// After heavy overwriting the die must still have at least the reserve
	// available or in use by GC; the system must not wedge.
	st := m.Stats()
	if st.GCErases == 0 {
		t.Fatal("GC never ran")
	}
	def, _ := st.RegionByName(DefaultRegionName)
	if def.FreeBlocks < 1 {
		t.Fatalf("die wedged: %d free blocks", def.FreeBlocks)
	}
}

// TestHotColdSeparationReducesCopybacks is the mechanism behind the paper's
// headline result: separating frequently-updated (hot) pages from static
// (cold) pages into different regions reduces the valid data that GC must
// relocate, hence fewer copybacks for the same host writes.
func TestHotColdSeparationReducesCopybacks(t *testing.T) {
	run := func(separate bool) Stats {
		cfg := flash.DefaultConfig()
		cfg.Geometry = flash.Geometry{
			Channels: 2, DiesPerChannel: 2, PlanesPerDie: 1,
			BlocksPerDie: 32, PagesPerBlock: 16, PageSize: 512,
		}
		dev, err := flash.NewDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		opts.OverprovisionPct = 0.2
		if !separate {
			opts.Mode = PlacementTraditional
		}
		m := NewManager(dev, opts)
		hot, err := m.CreateRegion(RegionSpec{Name: "rgHot", MaxChips: 2})
		if err != nil {
			t.Fatal(err)
		}
		coldHint := Hint{Region: DefaultRegionID}
		hotHint := Hint{Region: hot.ID()}

		// Cold data is written once (30 new pages per round) interleaved with
		// repeated overwrites of a small hot working set, the way a DBMS
		// flush stream interleaves objects.  Without regions, cold and hot
		// pages end up in the same erase blocks.
		const (
			rounds        = 20
			coldPerRound  = 30
			hotPages      = 64
			coldTotal     = rounds * coldPerRound
			hotOverwrites = 2
		)
		coldStart := m.AllocateLPNs(coldTotal)
		hotStart := m.AllocateLPNs(hotPages)
		now := sim.Time(0)
		coldWritten := 0
		for r := 0; r < rounds; r++ {
			for i := 0; i < coldPerRound; i++ {
				done, err := m.WritePage(now, coldStart+LPN(coldWritten), fillPage(dev, 1), coldHint)
				if err != nil {
					t.Fatalf("cold write %d: %v", coldWritten, err)
				}
				coldWritten++
				now = done
			}
			for o := 0; o < hotOverwrites; o++ {
				for i := 0; i < hotPages; i++ {
					done, err := m.WritePage(now, hotStart+LPN(i), fillPage(dev, byte(r)), hotHint)
					if err != nil {
						t.Fatalf("hot write: %v", err)
					}
					now = done
				}
			}
		}
		return m.Stats()
	}

	mixed := run(false)
	separated := run(true)
	if mixed.GCCopybacks == 0 {
		t.Fatal("mixed run produced no copybacks; workload too small to compare")
	}
	if separated.GCCopybacks >= mixed.GCCopybacks {
		t.Fatalf("hot/cold separation did not reduce copybacks: separated=%d mixed=%d",
			separated.GCCopybacks, mixed.GCCopybacks)
	}
	if separated.WriteAmplification() >= mixed.WriteAmplification() {
		t.Fatalf("write amplification not reduced: %.2f vs %.2f",
			separated.WriteAmplification(), mixed.WriteAmplification())
	}
}

func TestWearLevelingEvensOutErases(t *testing.T) {
	dev := smallDevice(t, 1, 16, 8)
	opts := DefaultOptions()
	opts.OverprovisionPct = 0.3
	opts.WearLevelDelta = 4 // aggressive so the test triggers it quickly
	m := NewManager(dev, opts)

	// A small static set plus a heavily overwritten set on the same die.
	staticPages := 40
	staticStart := m.AllocateLPNs(staticPages)
	now := sim.Time(0)
	for i := 0; i < staticPages; i++ {
		done, err := m.WritePage(now, staticStart+LPN(i), fillPage(dev, 0xCC), Hint{})
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	hotStart := m.AllocateLPNs(8)
	for r := 0; r < 300; r++ {
		for i := 0; i < 8; i++ {
			done, err := m.WritePage(now, hotStart+LPN(i), fillPage(dev, byte(r)), Hint{})
			if err != nil {
				t.Fatal(err)
			}
			now = done
		}
	}
	st := m.Stats()
	if st.WearMoves == 0 {
		t.Fatal("static wear leveling never moved a cold block")
	}
	// Static data must survive wear-leveling relocations.
	for i := 0; i < staticPages; i++ {
		got, _, err := m.ReadPage(now, staticStart+LPN(i), nil)
		if err != nil {
			t.Fatalf("static page %d unreadable: %v", i, err)
		}
		if got[0] != 0xCC {
			t.Fatalf("static page %d corrupted", i)
		}
	}
	// With leveling the wear spread should stay well below the total erase
	// count on the die.
	def, _ := st.RegionByName(DefaultRegionName)
	if def.MaxErase-def.MinErase > opts.WearLevelDelta*4 {
		t.Fatalf("wear spread too large: max=%d min=%d", def.MaxErase, def.MinErase)
	}
}

func TestWearLevelingDisabled(t *testing.T) {
	dev := smallDevice(t, 1, 16, 8)
	opts := DefaultOptions()
	opts.OverprovisionPct = 0.3
	opts.WearLevelDelta = 0 // disabled
	m := NewManager(dev, opts)
	overwriteWorkload(t, m, dev, 16, 40, Hint{})
	if st := m.Stats(); st.WearMoves != 0 {
		t.Fatalf("wear leveling ran although disabled: %d moves", st.WearMoves)
	}
}

// Property: after an arbitrary sequence of writes and overwrites the number
// of valid pages tracked by the manager equals the number of distinct mapped
// LPNs, and every mapped page reads back the last value written.
func TestMappingConsistencyProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		dev := smallDevice(t, 2, 16, 8)
		opts := DefaultOptions()
		opts.OverprovisionPct = 0.25
		m := NewManager(dev, opts)
		const universe = 48
		start := m.AllocateLPNs(universe)
		last := map[LPN]byte{}
		now := sim.Time(0)
		for i, op := range ops {
			lpn := start + LPN(int(op)%universe)
			val := byte(i)
			done, err := m.WritePage(now, lpn, fillPage(dev, val), Hint{})
			if err != nil {
				return false
			}
			now = done
			last[lpn] = val
		}
		st := m.Stats()
		if st.ValidPages != int64(len(last)) {
			return false
		}
		for lpn, val := range last {
			got, _, err := m.ReadPage(now, lpn, nil)
			if err != nil || got[0] != val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestResetCountersKeepsMapping(t *testing.T) {
	dev := smallDevice(t, 2, 16, 8)
	m := NewManager(dev, DefaultOptions())
	lpn := m.AllocateLPNs(1)
	if _, err := m.WritePage(0, lpn, fillPage(dev, 5), Hint{}); err != nil {
		t.Fatal(err)
	}
	m.ResetCounters()
	st := m.Stats()
	if st.HostWrites != 0 || st.DevicePrograms != 0 {
		t.Fatalf("counters survived reset: %+v", st)
	}
	if st.ValidPages != 1 {
		t.Fatalf("mapping lost on reset: %d valid pages", st.ValidPages)
	}
	got, _, err := m.ReadPage(0, lpn, nil)
	if err != nil || got[0] != 5 {
		t.Fatalf("data lost on reset: %v", err)
	}
}

func TestStatsStringAndLatencySnapshot(t *testing.T) {
	dev := smallDevice(t, 2, 16, 8)
	m := NewManager(dev, DefaultOptions())
	lpn := m.AllocateLPNs(1)
	done, err := m.WritePage(0, lpn, fillPage(dev, 5), Hint{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.ReadPage(done, lpn, nil); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.String() == "" {
		t.Fatal("empty stats string")
	}
	r, w := st.LatencySnapshot()
	if r.Count != 1 || w.Count != 1 {
		t.Fatalf("latency counts: %+v %+v", r, w)
	}
	if r.Mean <= 0 || w.Mean <= 0 {
		t.Fatalf("latency means: %v %v", r.Mean, w.Mean)
	}
	if w.Mean <= r.Mean {
		t.Fatalf("write latency (%v) should exceed read latency (%v) on NAND", w.Mean, r.Mean)
	}
}

// TestVerifyIntegrityAfterStress cross-checks every internal invariant of the
// space manager after a GC- and wear-leveling-heavy workload, including a
// multi-region configuration with spills.
func TestVerifyIntegrityAfterStress(t *testing.T) {
	dev := smallDevice(t, 4, 24, 8)
	opts := DefaultOptions()
	opts.OverprovisionPct = 0.2
	opts.WearLevelDelta = 8
	m := NewManager(dev, opts)
	if err := m.VerifyIntegrity(); err != nil {
		t.Fatalf("fresh manager inconsistent: %v", err)
	}
	hot, err := m.CreateRegion(RegionSpec{Name: "rgHot", MaxChips: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Mixed workload: cold fill in the default region, heavy overwrites in a
	// deliberately undersized hot region so spills occur, plus trims.
	coldStart := m.AllocateLPNs(300)
	hotStart := m.AllocateLPNs(200)
	now := sim.Time(0)
	for i := 0; i < 300; i++ {
		done, err := m.WritePage(now, coldStart+LPN(i), fillPage(dev, 1), Hint{})
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	for r := 0; r < 6; r++ {
		for i := 0; i < 200; i++ {
			done, err := m.WritePage(now, hotStart+LPN(i), fillPage(dev, byte(r)), Hint{Region: hot.ID()})
			if err != nil {
				t.Fatal(err)
			}
			now = done
		}
	}
	for i := 0; i < 100; i += 2 {
		if err := m.TrimPage(coldStart + LPN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.VerifyIntegrity(); err != nil {
		t.Fatalf("integrity violated after stress: %v", err)
	}
	st := m.Stats()
	if st.GCErases == 0 {
		t.Fatal("stress workload never triggered GC")
	}
	hs, _ := st.RegionByName("rgHot")
	if hs.SpilledWrites == 0 {
		t.Fatal("undersized hot region never spilled (sizing assumption broken)")
	}
}

// Property: interleaving batched writes (WritePages) with background GC
// steps preserves every invariant the manager maintains — invalid-page
// accounting, per-block valid counters, per-region valid-page totals — and
// every logical page reads back the last value written.  The config byte
// varies the GC policy (victim selection, hot/cold routing, step size) so
// the property holds across the whole policy space.
func TestGCConsistencyUnderBatchedWritesProperty(t *testing.T) {
	f := func(ops []uint8, cfg uint8) bool {
		dev := smallDevice(t, 2, 16, 8)
		opts := DefaultOptions()
		opts.OverprovisionPct = 0.25
		if cfg&1 != 0 {
			opts.GC.Victim = VictimCostBenefit
		}
		if cfg&2 != 0 {
			opts.GC.DisableHotCold = true
		}
		opts.GC.StepPages = int(cfg>>2)%4 + 1
		m := NewManager(dev, opts)
		const universe = 48
		start := m.AllocateLPNs(universe)
		last := map[LPN]byte{}
		now := sim.Time(0)
		for i := 0; i < len(ops); {
			n := int(ops[i])%7 + 1
			writes := make([]PageWrite, 0, n)
			for j := 0; j < n && i < len(ops); j++ {
				lpn := start + LPN(int(ops[i])%universe)
				val := byte(i)
				writes = append(writes, PageWrite{LPN: lpn, Data: fillPage(dev, val)})
				last[lpn] = val
				i++
			}
			done, err := m.WritePages(now, writes)
			if err != nil {
				return false
			}
			now = done
			if i%3 == 0 {
				m.PumpBackgroundGC(now)
			}
			if err := m.VerifyIntegrity(); err != nil {
				t.Logf("integrity after batch ending at op %d: %v", i, err)
				return false
			}
			if st := m.Stats(); st.ValidPages != int64(len(last)) {
				t.Logf("valid pages %d, want %d distinct LPNs", st.ValidPages, len(last))
				return false
			}
		}
		lpns := make([]LPN, 0, len(last))
		for lpn := range last {
			lpns = append(lpns, lpn)
		}
		reads, _ := m.ReadPages(now, lpns, nil)
		for k, rd := range reads {
			if rd.Err != nil || rd.Data[0] != last[lpns[k]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
