package core

import (
	"fmt"
)

// VerifyIntegrity cross-checks the space manager's internal bookkeeping and
// returns the first inconsistency found, or nil.  It is used by tests and by
// the flashsim tool after stress runs; the checks are:
//
//  1. every logical page maps to a physical slot whose block marks that slot
//     valid and records the same LPN;
//  2. every block's valid counter equals the number of valid slots it holds;
//  3. the number of valid slots across a region's dies equals the region's
//     valid-page counter and the global mapping size equals the sum over all
//     regions;
//  4. dies are owned by exactly one region and every region's die list agrees
//     with the ownership table.
func (m *Manager) VerifyIntegrity() error {
	m.mu.Lock()
	defer m.mu.Unlock()

	// (1) mapping -> block bookkeeping.
	for lpn, e := range m.mapping {
		if !m.geo.ValidAddr(e.addr) {
			return fmt.Errorf("core: lpn %d maps to invalid address %v", lpn, e.addr)
		}
		blk := &m.dies[e.addr.Die].blocks[e.addr.Block]
		if !blk.valid[e.addr.Page] {
			return fmt.Errorf("core: lpn %d maps to %v which is not marked valid", lpn, e.addr)
		}
		if blk.lpns[e.addr.Page] != lpn {
			return fmt.Errorf("core: lpn %d maps to %v which records lpn %d", lpn, e.addr, blk.lpns[e.addr.Page])
		}
	}

	// (2) per-block valid counters and (3) per-region totals.
	validPerRegion := make(map[RegionID]int64)
	for die, da := range m.dies {
		owner := m.dieOwner[die]
		if _, ok := m.regionsByID[owner]; !ok {
			return fmt.Errorf("core: die %d owned by unknown region %d", die, owner)
		}
		for b := range da.blocks {
			blk := &da.blocks[b]
			count := 0
			for p, v := range blk.valid {
				if v {
					count++
					lpn := blk.lpns[p]
					if e, ok := m.mapping[lpn]; !ok || e.addr != (ppa{Die: die, Block: b, Page: p}) {
						return fmt.Errorf("core: die %d block %d page %d claims lpn %d but the mapping disagrees", die, b, p, lpn)
					}
				}
			}
			if count != blk.validCount {
				return fmt.Errorf("core: die %d block %d valid count %d, found %d valid slots", die, b, blk.validCount, count)
			}
			validPerRegion[owner] += int64(count)
		}
	}
	var total int64
	for id, r := range m.regionsByID {
		// Spilled writes physically live on default-region dies but remain
		// accounted to the default region, so the comparison is per owner.
		if validPerRegion[id] != r.validPages {
			return fmt.Errorf("core: region %q valid pages %d, found %d valid slots on its dies",
				r.name, r.validPages, validPerRegion[id])
		}
		total += r.validPages
	}
	if total != int64(len(m.mapping)) {
		return fmt.Errorf("core: %d mapped pages but regions account for %d", len(m.mapping), total)
	}

	// (4) region die lists agree with the ownership table.
	for id, r := range m.regionsByID {
		for _, d := range r.dies {
			if d < 0 || d >= m.geo.Dies() {
				return fmt.Errorf("core: region %q lists die %d which does not exist", r.name, d)
			}
			if m.dieOwner[d] != id {
				return fmt.Errorf("core: region %q lists die %d but it is owned by region %d", r.name, d, m.dieOwner[d])
			}
		}
	}
	return nil
}
