package core

import (
	"fmt"
	"sort"
	"strings"

	"noftl/internal/metrics"
)

// The Region Advisor derives a multi-region data placement configuration
// from observed per-object I/O statistics — the procedure behind the paper's
// Figure 2, where the TPC-C objects are divided into 6 regions and the 64
// dies are distributed "based on sizes of objects and their I/O rate".
//
// The advisor
//  1. classifies every object by its access profile (append-only,
//     write-hot, mixed, read-mostly, cold),
//  2. groups objects with similar profiles, giving very I/O-intensive
//     objects a region of their own,
//  3. allocates dies to groups proportionally to a blend of each group's
//     share of the total I/O rate and of the total size, with at least one
//     die per group.

// AdvisorOptions tune the grouping and die-allocation heuristics.
type AdvisorOptions struct {
	// MaxRegions is the maximum number of regions to produce (including the
	// metadata/append region).  Default 6, as in the paper's Figure 2.
	MaxRegions int
	// TotalDies is the number of dies to distribute.  Default: all dies.
	TotalDies int
	// DedicatedShare is the fraction of total I/O above which an object gets
	// a region of its own.  Default 0.15.
	DedicatedShare float64
	// IOWeight is the weight of the I/O-rate share when sizing regions (the
	// remainder is the size share).  Default 0.6.
	IOWeight float64
}

func (o AdvisorOptions) withDefaults(totalDies int) AdvisorOptions {
	if o.MaxRegions <= 1 {
		o.MaxRegions = 6
	}
	if o.TotalDies <= 0 {
		o.TotalDies = totalDies
	}
	if o.DedicatedShare <= 0 || o.DedicatedShare >= 1 {
		o.DedicatedShare = 0.15
	}
	if o.IOWeight <= 0 || o.IOWeight > 1 {
		o.IOWeight = 0.6
	}
	return o
}

// AccessProfile classifies an object's I/O behaviour.
type AccessProfile string

// Access profiles assigned by the advisor.
const (
	ProfileMetadata   AccessProfile = "metadata"    // catalog, logs, tiny system objects
	ProfileAppendOnly AccessProfile = "append-only" // insert-only growth (e.g. HISTORY)
	ProfileWriteHot   AccessProfile = "write-hot"   // high write share of a high I/O rate
	ProfileMixed      AccessProfile = "mixed"       // reads and writes both significant
	ProfileReadMostly AccessProfile = "read-mostly" // almost exclusively read
	ProfileCold       AccessProfile = "cold"        // negligible I/O
)

// PlacementGroup is one region proposed by the advisor.
type PlacementGroup struct {
	// Name is a generated region name (rg0, rg1, …) unless overridden.
	Name string
	// Objects are the database objects placed in this region.
	Objects []string
	// Profile is the dominant access profile of the group.
	Profile AccessProfile
	// Dies is the number of dies allocated to the region.
	Dies int
	// IOShare and SizeShare are the group's fraction of the workload's total
	// I/O rate and of the total size (diagnostics for the Figure 2 table).
	IOShare   float64
	SizeShare float64
}

// PlacementPlan is the advisor's output: one group per region plus the die
// total it was computed for.
type PlacementPlan struct {
	Groups    []PlacementGroup
	TotalDies int
}

// TableString renders the plan in the layout of the paper's Figure 2:
// region number, objects, number of flash dies.
func (p PlacementPlan) TableString() string {
	tbl := metrics.NewTable("Multi-region data placement configuration",
		"Tablespace/Region", "DB-Objects", "Profile", "Num. of Flash dies")
	for i, g := range p.Groups {
		tbl.AddRow(i, strings.Join(g.Objects, "; "), string(g.Profile), g.Dies)
	}
	return tbl.String()
}

// RegionSpecs converts the plan into CreateRegion specifications.
func (p PlacementPlan) RegionSpecs() []RegionSpec {
	specs := make([]RegionSpec, 0, len(p.Groups))
	for _, g := range p.Groups {
		specs = append(specs, RegionSpec{Name: g.Name, MaxChips: g.Dies})
	}
	return specs
}

// GroupOf returns the group index an object was placed in, or -1.
func (p PlacementPlan) GroupOf(object string) int {
	for i, g := range p.Groups {
		for _, o := range g.Objects {
			if o == object {
				return i
			}
		}
	}
	return -1
}

// Advise computes a placement plan for the given per-object statistics.
func Advise(objects []metrics.ObjectCounters, totalDies int, opts AdvisorOptions) PlacementPlan {
	opts = opts.withDefaults(totalDies)
	if len(objects) == 0 || opts.TotalDies <= 0 {
		return PlacementPlan{TotalDies: opts.TotalDies}
	}

	var totalIO, totalSize float64
	for _, o := range objects {
		totalIO += float64(o.Reads + o.Writes + o.Appends)
		totalSize += float64(o.SizePages)
	}
	if totalIO == 0 {
		totalIO = 1
	}
	if totalSize == 0 {
		totalSize = 1
	}

	type classified struct {
		metrics.ObjectCounters
		profile   AccessProfile
		ioShare   float64
		sizeShare float64
	}
	cls := make([]classified, 0, len(objects))
	for _, o := range objects {
		c := classified{ObjectCounters: o}
		c.ioShare = float64(o.Reads+o.Writes+o.Appends) / totalIO
		c.sizeShare = float64(o.SizePages) / totalSize
		c.profile = classify(o, c.ioShare)
		cls = append(cls, c)
	}

	// Group: metadata + append-only objects share one region; every object
	// whose I/O share exceeds the dedicated threshold gets its own region;
	// the rest are grouped by profile.
	groups := map[string]*PlacementGroup{}
	order := []string{}
	add := func(key string, profile AccessProfile, c classified) {
		g, ok := groups[key]
		if !ok {
			g = &PlacementGroup{Profile: profile}
			groups[key] = g
			order = append(order, key)
		}
		g.Objects = append(g.Objects, c.Name)
		g.IOShare += c.ioShare
		g.SizeShare += c.sizeShare
	}
	for _, c := range cls {
		switch {
		case c.profile == ProfileMetadata,
			c.profile == ProfileAppendOnly && c.ioShare < opts.DedicatedShare:
			// Metadata and small append-only objects (HISTORY, the WAL)
			// share the metadata region; a large, I/O-intensive append-only
			// object (e.g. ORDERLINE) deserves its own region instead.
			add("meta", ProfileAppendOnly, c)
		case c.ioShare >= opts.DedicatedShare:
			add("solo:"+c.Name, c.profile, c)
		default:
			add("profile:"+string(c.profile), c.profile, c)
		}
	}

	// Order groups: metadata first (to mirror Figure 2's region 0), then by
	// descending I/O share.
	sort.SliceStable(order, func(i, j int) bool {
		if (order[i] == "meta") != (order[j] == "meta") {
			return order[i] == "meta"
		}
		return groups[order[i]].IOShare > groups[order[j]].IOShare
	})

	// Enforce the region budget by merging the smallest non-metadata groups.
	for len(order) > opts.MaxRegions {
		smallest, second := -1, -1
		for i := len(order) - 1; i >= 0; i-- {
			if order[i] == "meta" {
				continue
			}
			if smallest < 0 {
				smallest = i
			} else if second < 0 {
				second = i
				break
			}
		}
		if smallest < 0 || second < 0 {
			break
		}
		dst, src := groups[order[second]], groups[order[smallest]]
		dst.Objects = append(dst.Objects, src.Objects...)
		dst.IOShare += src.IOShare
		dst.SizeShare += src.SizeShare
		order = append(order[:smallest], order[smallest+1:]...)
	}

	// Allocate dies proportionally to the blended weight, at least one each.
	plan := PlacementPlan{TotalDies: opts.TotalDies}
	weights := make([]float64, len(order))
	var totalWeight float64
	for i, key := range order {
		g := groups[key]
		weights[i] = opts.IOWeight*g.IOShare + (1-opts.IOWeight)*g.SizeShare
		if weights[i] <= 0 {
			weights[i] = 1e-6
		}
		totalWeight += weights[i]
	}
	remaining := opts.TotalDies - len(order) // one die is granted to each group up front
	if remaining < 0 {
		remaining = 0
	}
	dies := make([]int, len(order))
	assigned := 0
	for i := range order {
		dies[i] = 1 + int(float64(remaining)*weights[i]/totalWeight)
		assigned += dies[i]
	}
	// Fix rounding drift by adjusting the largest groups.
	for assigned < opts.TotalDies {
		i := maxWeightIndex(weights)
		dies[i]++
		assigned++
	}
	for assigned > opts.TotalDies {
		i := maxDieIndex(dies)
		if dies[i] <= 1 {
			break
		}
		dies[i]--
		assigned--
	}

	for i, key := range order {
		g := groups[key]
		g.Name = fmt.Sprintf("rg%d", i)
		g.Dies = dies[i]
		sort.Strings(g.Objects)
		plan.Groups = append(plan.Groups, *g)
	}
	return plan
}

// classify assigns an access profile from the raw counters.
func classify(o metrics.ObjectCounters, ioShare float64) AccessProfile {
	total := o.Reads + o.Writes + o.Appends
	if o.Kind == "meta" || o.Kind == "log" || o.Kind == "catalog" {
		return ProfileMetadata
	}
	if total == 0 {
		return ProfileCold
	}
	appendShare := float64(o.Appends) / float64(total)
	writeShare := float64(o.Writes) / float64(total)
	readShare := float64(o.Reads) / float64(total)
	switch {
	case appendShare > 0.6:
		return ProfileAppendOnly
	case ioShare < 0.01:
		return ProfileCold
	case writeShare > 0.4:
		return ProfileWriteHot
	case readShare > 0.9:
		return ProfileReadMostly
	default:
		return ProfileMixed
	}
}

func maxWeightIndex(w []float64) int {
	best := 0
	for i := range w {
		if w[i] > w[best] {
			best = i
		}
	}
	return best
}

func maxDieIndex(d []int) int {
	best := 0
	for i := range d {
		if d[i] > d[best] {
			best = i
		}
	}
	return best
}
