package core

import (
	"bytes"
	"errors"
	"testing"

	"noftl/internal/flash"
)

// smallDevice returns a device small enough that tests exercise GC quickly.
func smallDevice(t *testing.T, dies, blocksPerDie, pagesPerBlock int) *flash.Device {
	t.Helper()
	cfg := flash.DefaultConfig()
	cfg.Geometry = flash.Geometry{
		Channels:       2,
		DiesPerChannel: (dies + 1) / 2,
		PlanesPerDie:   1,
		BlocksPerDie:   blocksPerDie,
		PagesPerBlock:  pagesPerBlock,
		PageSize:       512,
	}
	if dies == 1 {
		cfg.Geometry.Channels = 1
		cfg.Geometry.DiesPerChannel = 1
	}
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	return dev
}

func fillPage(dev *flash.Device, b byte) []byte {
	buf := make([]byte, dev.Geometry().PageSize)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

func TestManagerStartsWithDefaultRegion(t *testing.T) {
	dev := smallDevice(t, 4, 16, 8)
	m := NewManager(dev, DefaultOptions())
	def := m.DefaultRegion()
	if def == nil || def.Name() != DefaultRegionName || def.ID() != DefaultRegionID {
		t.Fatalf("default region wrong: %+v", def)
	}
	st := m.Stats()
	if len(st.Regions) != 1 {
		t.Fatalf("expected 1 region, got %d", len(st.Regions))
	}
	if got := len(st.Regions[0].Dies); got != 4 {
		t.Fatalf("default region owns %d dies, want 4", got)
	}
	if st.Regions[0].CapacityPages <= 0 || st.Regions[0].CapacityPages >= int64(4*16*8) {
		t.Fatalf("capacity %d should reflect over-provisioning", st.Regions[0].CapacityPages)
	}
}

func TestCreateRegionTakesDiesFromDefault(t *testing.T) {
	dev := smallDevice(t, 8, 16, 8)
	m := NewManager(dev, DefaultOptions())
	r, err := m.CreateRegion(RegionSpec{Name: "rgHot", MaxChips: 3})
	if err != nil {
		t.Fatalf("CreateRegion: %v", err)
	}
	if r.Name() != "rgHot" || r.ID() == DefaultRegionID {
		t.Fatalf("region identity wrong: %v %v", r.Name(), r.ID())
	}
	st := m.Stats()
	hot, ok := st.RegionByName("rgHot")
	if !ok || len(hot.Dies) != 3 {
		t.Fatalf("rgHot dies = %v", hot.Dies)
	}
	def, _ := st.RegionByName(DefaultRegionName)
	if len(def.Dies) != 5 {
		t.Fatalf("default region dies = %v", def.Dies)
	}
	// Dies must not overlap.
	for _, d := range hot.Dies {
		for _, e := range def.Dies {
			if d == e {
				t.Fatalf("die %d owned by two regions", d)
			}
		}
	}
	// Duplicate name rejected.
	if _, err := m.CreateRegion(RegionSpec{Name: "rgHot", MaxChips: 1}); !errors.Is(err, ErrRegionExists) {
		t.Fatalf("want ErrRegionExists, got %v", err)
	}
	// Asking for more dies than exist is rejected.
	if _, err := m.CreateRegion(RegionSpec{Name: "rgBig", MaxChips: 100}); !errors.Is(err, ErrNoDiesAvailable) {
		t.Fatalf("want ErrNoDiesAvailable, got %v", err)
	}
	// Invalid specs rejected.
	if _, err := m.CreateRegion(RegionSpec{Name: "", MaxChips: 1}); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("want ErrInvalidSpec, got %v", err)
	}
	if _, err := m.CreateRegion(RegionSpec{Name: "x"}); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("want ErrInvalidSpec for missing chips, got %v", err)
	}
}

func TestCreateRegionWithExplicitDiesAndMaxChannels(t *testing.T) {
	dev := smallDevice(t, 8, 16, 8)
	m := NewManager(dev, DefaultOptions())
	r, err := m.CreateRegion(RegionSpec{Name: "rgPinned", Dies: []int{1, 3}})
	if err != nil {
		t.Fatalf("CreateRegion pinned: %v", err)
	}
	st := m.Stats()
	rs, _ := st.RegionByName("rgPinned")
	if len(rs.Dies) != 2 || rs.Dies[0] != 1 || rs.Dies[1] != 3 {
		t.Fatalf("pinned dies = %v", rs.Dies)
	}
	_ = r
	// Pinning an already-owned die fails.
	if _, err := m.CreateRegion(RegionSpec{Name: "rgClash", Dies: []int{1}}); !errors.Is(err, ErrNoDiesAvailable) {
		t.Fatalf("want ErrNoDiesAvailable, got %v", err)
	}
	// Pinning an out-of-range die fails.
	if _, err := m.CreateRegion(RegionSpec{Name: "rgOOR", Dies: []int{99}}); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("want ErrInvalidSpec, got %v", err)
	}
	// MAX_CHANNELS=1 keeps the region on a single channel.
	r2, err := m.CreateRegion(RegionSpec{Name: "rgOneChan", MaxChips: 2, MaxChannels: 1})
	if err != nil {
		t.Fatalf("CreateRegion one-channel: %v", err)
	}
	_ = r2
	st = m.Stats()
	oc, _ := st.RegionByName("rgOneChan")
	if oc.Channels != 1 {
		t.Fatalf("rgOneChan spans %d channels, want 1", oc.Channels)
	}
}

func TestCreateRegionHonoursMaxSize(t *testing.T) {
	dev := smallDevice(t, 4, 16, 8)
	m := NewManager(dev, DefaultOptions())
	pageSize := int64(dev.Geometry().PageSize)
	r, err := m.CreateRegion(RegionSpec{Name: "rgSmall", MaxChips: 2, MaxSizeBytes: 10 * pageSize})
	if err != nil {
		t.Fatal(err)
	}
	_ = r
	st := m.Stats()
	rs, _ := st.RegionByName("rgSmall")
	if rs.CapacityPages != 10 {
		t.Fatalf("capacity = %d pages, want 10 (MAX_SIZE)", rs.CapacityPages)
	}
}

func TestDropAndGrowRegion(t *testing.T) {
	dev := smallDevice(t, 6, 16, 8)
	m := NewManager(dev, DefaultOptions())
	if _, err := m.CreateRegion(RegionSpec{Name: "rgA", MaxChips: 2}); err != nil {
		t.Fatal(err)
	}
	if err := m.GrowRegion("rgA", 1); err != nil {
		t.Fatalf("GrowRegion: %v", err)
	}
	st := m.Stats()
	rs, _ := st.RegionByName("rgA")
	if len(rs.Dies) != 3 {
		t.Fatalf("rgA dies after grow = %v", rs.Dies)
	}
	if err := m.GrowRegion("rgMissing", 1); !errors.Is(err, ErrUnknownRegion) {
		t.Fatalf("want ErrUnknownRegion, got %v", err)
	}
	if err := m.DropRegion("rgMissing"); !errors.Is(err, ErrUnknownRegion) {
		t.Fatalf("want ErrUnknownRegion, got %v", err)
	}
	if err := m.DropRegion(DefaultRegionName); !errors.Is(err, ErrDefaultRegion) {
		t.Fatalf("want ErrDefaultRegion, got %v", err)
	}
	// Write a page into rgA, then dropping it must fail.
	r, _ := m.Region("rgA")
	lpn := m.AllocateLPNs(1)
	if _, err := m.WritePage(0, lpn, fillPage(dev, 1), Hint{Region: r.ID()}); err != nil {
		t.Fatal(err)
	}
	if err := m.DropRegion("rgA"); !errors.Is(err, ErrRegionNotEmpty) {
		t.Fatalf("want ErrRegionNotEmpty, got %v", err)
	}
	if err := m.TrimPage(lpn); err != nil {
		t.Fatal(err)
	}
	if err := m.DropRegion("rgA"); err != nil {
		t.Fatalf("DropRegion after trim: %v", err)
	}
	st = m.Stats()
	def, _ := st.RegionByName(DefaultRegionName)
	if len(def.Dies) != 6 {
		t.Fatalf("default region did not recover dies: %v", def.Dies)
	}
}

func TestWriteReadTrimRoundTrip(t *testing.T) {
	dev := smallDevice(t, 2, 16, 8)
	m := NewManager(dev, DefaultOptions())
	lpn := m.AllocateLPNs(1)
	payload := fillPage(dev, 0x42)

	if _, _, err := m.ReadPage(0, lpn, nil); !errors.Is(err, ErrUnmappedPage) {
		t.Fatalf("want ErrUnmappedPage, got %v", err)
	}
	done, err := m.WritePage(0, lpn, payload, Hint{ObjectID: 7})
	if err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	if done <= 0 {
		t.Fatal("write consumed no virtual time")
	}
	got, rdone, err := m.ReadPage(done, lpn, nil)
	if err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read back different data")
	}
	if rdone <= done {
		t.Fatal("read consumed no virtual time")
	}
	if !m.Mapped(lpn) {
		t.Fatal("page not mapped after write")
	}
	// Overwrite goes out of place: the physical address must change.
	first, _ := m.Locate(lpn)
	payload2 := fillPage(dev, 0x43)
	if _, err := m.WritePage(rdone, lpn, payload2, Hint{}); err != nil {
		t.Fatal(err)
	}
	second, _ := m.Locate(lpn)
	if first == second {
		t.Fatalf("overwrite was in place: %v", first)
	}
	got, _, err = m.ReadPage(rdone, lpn, nil)
	if err != nil || !bytes.Equal(got, payload2) {
		t.Fatalf("read after overwrite wrong: %v", err)
	}
	// Trim unmaps.
	if err := m.TrimPage(lpn); err != nil {
		t.Fatal(err)
	}
	if m.Mapped(lpn) {
		t.Fatal("page still mapped after trim")
	}
	if err := m.TrimPage(lpn); !errors.Is(err, ErrUnmappedPage) {
		t.Fatalf("want ErrUnmappedPage on double trim, got %v", err)
	}
	st := m.Stats()
	if st.HostWrites != 2 || st.HostReads != 2 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if st.ValidPages != 0 {
		t.Fatalf("valid pages after trim = %d", st.ValidPages)
	}
}

func TestWriteHintPlacement(t *testing.T) {
	dev := smallDevice(t, 4, 16, 8)
	m := NewManager(dev, DefaultOptions())
	hot, err := m.CreateRegion(RegionSpec{Name: "rgHot", MaxChips: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Writes hinted at rgHot land on rgHot's dies.
	for i := 0; i < 8; i++ {
		lpn := m.AllocateLPNs(1)
		if _, err := m.WritePage(0, lpn, fillPage(dev, byte(i)), Hint{Region: hot.ID()}); err != nil {
			t.Fatal(err)
		}
		addr, _ := m.Locate(lpn)
		st := m.Stats()
		hs, _ := st.RegionByName("rgHot")
		if !containsInt(hs.Dies, addr.Die) {
			t.Fatalf("hinted write landed on die %d outside region %v", addr.Die, hs.Dies)
		}
	}
	// A hint for an unknown region falls back to the default region.
	lpn := m.AllocateLPNs(1)
	if _, err := m.WritePage(0, lpn, fillPage(dev, 9), Hint{Region: 99}); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	def, _ := st.RegionByName(DefaultRegionName)
	if def.HostWrites != 1 {
		t.Fatalf("fallback write not counted in default region: %+v", def)
	}
}

func TestTraditionalModeIgnoresHints(t *testing.T) {
	dev := smallDevice(t, 4, 16, 8)
	opts := DefaultOptions()
	opts.Mode = PlacementTraditional
	m := NewManager(dev, opts)
	hot, err := m.CreateRegion(RegionSpec{Name: "rgHot", MaxChips: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		lpn := m.AllocateLPNs(1)
		if _, err := m.WritePage(0, lpn, fillPage(dev, byte(i)), Hint{Region: hot.ID()}); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	hs, _ := st.RegionByName("rgHot")
	ds, _ := st.RegionByName(DefaultRegionName)
	if hs.HostWrites != 0 {
		t.Fatalf("traditional mode wrote into the hinted region: %+v", hs)
	}
	if ds.HostWrites != 6 {
		t.Fatalf("traditional mode writes = %d, want 6", ds.HostWrites)
	}
	if m.Mode() != PlacementTraditional {
		t.Fatalf("mode = %v", m.Mode())
	}
}

func TestWritesStripeAcrossRegionDies(t *testing.T) {
	dev := smallDevice(t, 4, 16, 8)
	m := NewManager(dev, DefaultOptions())
	seen := map[int]int{}
	for i := 0; i < 16; i++ {
		lpn := m.AllocateLPNs(1)
		if _, err := m.WritePage(0, lpn, fillPage(dev, byte(i)), Hint{}); err != nil {
			t.Fatal(err)
		}
		addr, _ := m.Locate(lpn)
		seen[addr.Die]++
	}
	if len(seen) != 4 {
		t.Fatalf("writes used %d dies, want 4 (even distribution): %v", len(seen), seen)
	}
	for die, n := range seen {
		if n != 4 {
			t.Fatalf("die %d received %d writes, want 4: %v", die, n, seen)
		}
	}
}

func TestRegionFullReported(t *testing.T) {
	dev := smallDevice(t, 1, 8, 4) // 32 raw pages on a single die
	opts := DefaultOptions()
	opts.OverprovisionPct = 0.5 // 16 logical pages
	m := NewManager(dev, opts)
	var lastErr error
	writes := 0
	for i := 0; i < 64; i++ {
		lpn := m.AllocateLPNs(1)
		_, err := m.WritePage(0, lpn, fillPage(dev, byte(i)), Hint{})
		if err != nil {
			lastErr = err
			break
		}
		writes++
	}
	if !errors.Is(lastErr, ErrRegionFull) {
		t.Fatalf("expected ErrRegionFull, got %v after %d writes", lastErr, writes)
	}
	if writes == 0 || writes > 16 {
		t.Fatalf("accepted %d new pages, logical capacity is 16", writes)
	}
}

func TestAllocateLPNsMonotonic(t *testing.T) {
	dev := smallDevice(t, 2, 8, 4)
	m := NewManager(dev, DefaultOptions())
	a := m.AllocateLPNs(10)
	b := m.AllocateLPNs(5)
	if b != a+10 {
		t.Fatalf("lpn ranges overlap: %d %d", a, b)
	}
	c := m.AllocateLPNs(1)
	if c != b+5 {
		t.Fatalf("lpn ranges overlap: %d %d", b, c)
	}
}

func TestRegionsListingOrder(t *testing.T) {
	dev := smallDevice(t, 6, 8, 4)
	m := NewManager(dev, DefaultOptions())
	if _, err := m.CreateRegion(RegionSpec{Name: "rgB", MaxChips: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateRegion(RegionSpec{Name: "rgA", MaxChips: 1}); err != nil {
		t.Fatal(err)
	}
	names := m.Regions()
	if len(names) != 3 || names[0] != DefaultRegionName || names[1] != "rgB" || names[2] != "rgA" {
		t.Fatalf("region listing = %v", names)
	}
	if _, ok := m.RegionByID(DefaultRegionID); !ok {
		t.Fatal("RegionByID(default) failed")
	}
	if _, ok := m.Region("rgB"); !ok {
		t.Fatal("Region(rgB) failed")
	}
	if _, ok := m.Region("nope"); ok {
		t.Fatal("Region(nope) succeeded")
	}
}

func TestWriteAmplificationHelper(t *testing.T) {
	s := Stats{HostWrites: 100, GCCopybacks: 50}
	if wa := s.WriteAmplification(); wa != 1.5 {
		t.Fatalf("WA = %v", wa)
	}
	if (Stats{}).WriteAmplification() != 0 {
		t.Fatal("WA of empty stats should be 0")
	}
	rs := RegionStats{HostWrites: 10, GCCopybacks: 10}
	if rs.WriteAmplification() != 2 {
		t.Fatal("region WA wrong")
	}
}
