// Package core implements the paper's primary contribution: NoFTL space
// management with Regions.
//
// The Manager owns a native flash device (internal/flash) and gives the DBMS
// direct control over the physical address space:
//
//   - Regions group flash dies; database objects with similar access
//     properties are placed together and objects with different properties
//     are physically separated (CREATE REGION / tablespace coupling, §2 of
//     the paper).
//   - Logical pages are written out-of-place; the logical-to-physical
//     address translation lives in host memory.
//   - Garbage collection and wear leveling run per region inside the DBMS,
//     where object statistics are available, instead of inside a black-box
//     FTL.
//   - The Region Advisor derives a multi-region placement configuration
//     from observed per-object I/O statistics (the paper's Figure 2).
package core

import (
	"errors"

	"noftl/internal/flash"
)

// LPN is a logical page number: the address the DBMS storage layer uses.
// The logical address space is flat and sparse; the storage layer assigns
// LPNs to extents and objects as it sees fit.
type LPN uint64

// RegionID identifies a region.  The default region always has ID
// DefaultRegionID.
type RegionID uint32

// DefaultRegionID is the ID of the region that initially owns every die.
const DefaultRegionID RegionID = 0

// DefaultRegionName is the name of the default region.
const DefaultRegionName = "DEFAULT"

// PlacementMode selects how write hints are interpreted.
type PlacementMode int

const (
	// PlacementRegions honours the region carried in each write hint:
	// the multi-region, intelligent-data-placement configuration.
	PlacementRegions PlacementMode = iota
	// PlacementTraditional ignores write hints and places every page in the
	// default region, i.e. uniform striping over all dies with no
	// object separation — the paper's "traditional data placement" baseline.
	PlacementTraditional
)

func (m PlacementMode) String() string {
	switch m {
	case PlacementRegions:
		return "regions"
	case PlacementTraditional:
		return "traditional"
	default:
		return "unknown"
	}
}

// Hint carries the DBMS knowledge attached to a page write: which object the
// page belongs to and which region the object's tablespace is bound to.
// Under PlacementTraditional the region is ignored.
type Hint struct {
	// Region is the target region.
	Region RegionID
	// ObjectID identifies the database object for statistics and OOB
	// metadata; zero means unknown.
	ObjectID uint32
	// Flags is carried into the page's OOB metadata (flash.Flag*).
	Flags uint16
}

// Errors returned by the space manager.
var (
	// ErrUnmappedPage reports a read or trim of a logical page that has never
	// been written.
	ErrUnmappedPage = errors.New("core: logical page is not mapped")
	// ErrRegionExists reports creation of a region whose name is taken.
	ErrRegionExists = errors.New("core: region already exists")
	// ErrUnknownRegion reports an operation on a region that does not exist.
	ErrUnknownRegion = errors.New("core: unknown region")
	// ErrRegionNotEmpty reports dropping or shrinking a region that still
	// holds valid data.
	ErrRegionNotEmpty = errors.New("core: region still holds valid pages")
	// ErrRegionFull reports that a region has no space left for new logical
	// pages (its logical capacity is exhausted).
	ErrRegionFull = errors.New("core: region is full")
	// ErrNoDiesAvailable reports that a region cannot be created or grown
	// because not enough empty dies are available.
	ErrNoDiesAvailable = errors.New("core: not enough empty dies available")
	// ErrInvalidSpec reports an invalid region specification.
	ErrInvalidSpec = errors.New("core: invalid region specification")
	// ErrDefaultRegion reports an attempt to drop the default region.
	ErrDefaultRegion = errors.New("core: the default region cannot be dropped")
)

// ppa is the physical page address used internally; it is the flash device
// address type.
type ppa = flash.Addr
