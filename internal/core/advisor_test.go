package core

import (
	"strings"
	"testing"

	"noftl/internal/metrics"
)

// tpccLikeStats fabricates per-object statistics with the qualitative shape
// of a TPC-C run: ORDERLINE and STOCK write-hot and large, CUSTOMER mixed,
// ITEM/WAREHOUSE/DISTRICT read-mostly and small, HISTORY append-only,
// DBMS metadata tiny.
func tpccLikeStats() []metrics.ObjectCounters {
	return []metrics.ObjectCounters{
		{Name: "ORDERLINE", Kind: "table", Reads: 900_000, Writes: 800_000, SizePages: 90_000},
		{Name: "STOCK", Kind: "table", Reads: 1_200_000, Writes: 700_000, SizePages: 120_000},
		{Name: "OL_IDX", Kind: "index", Reads: 800_000, Writes: 500_000, SizePages: 40_000},
		{Name: "CUSTOMER", Kind: "table", Reads: 700_000, Writes: 250_000, SizePages: 80_000},
		{Name: "ORDER", Kind: "table", Reads: 150_000, Writes: 120_000, SizePages: 15_000},
		{Name: "NEW_ORDER", Kind: "table", Reads: 100_000, Writes: 110_000, SizePages: 3_000},
		{Name: "O_IDX", Kind: "index", Reads: 90_000, Writes: 60_000, SizePages: 5_000},
		{Name: "NO_IDX", Kind: "index", Reads: 70_000, Writes: 60_000, SizePages: 2_000},
		{Name: "O_CUST_IDX", Kind: "index", Reads: 60_000, Writes: 50_000, SizePages: 3_000},
		{Name: "C_IDX", Kind: "index", Reads: 200_000, Writes: 15_000, SizePages: 8_000},
		{Name: "S_IDX", Kind: "index", Reads: 250_000, Writes: 10_000, SizePages: 9_000},
		{Name: "I_IDX", Kind: "index", Reads: 180_000, Writes: 0, SizePages: 6_000},
		{Name: "W_IDX", Kind: "index", Reads: 50_000, Writes: 100, SizePages: 100},
		{Name: "D_IDX", Kind: "index", Reads: 50_000, Writes: 100, SizePages: 100},
		{Name: "C_NAME_IDX", Kind: "index", Reads: 90_000, Writes: 15_000, SizePages: 7_000},
		{Name: "ITEM", Kind: "table", Reads: 400_000, Writes: 0, SizePages: 10_000},
		{Name: "WAREHOUSE", Kind: "table", Reads: 120_000, Writes: 40_000, SizePages: 50},
		{Name: "DISTRICT", Kind: "table", Reads: 130_000, Writes: 45_000, SizePages: 60},
		{Name: "HISTORY", Kind: "table", Reads: 1_000, Writes: 0, Appends: 120_000, SizePages: 12_000},
		{Name: "DBMS-metadata", Kind: "meta", Reads: 5_000, Writes: 2_000, SizePages: 200},
		{Name: "WAL", Kind: "log", Reads: 100, Writes: 90_000, Appends: 90_000, SizePages: 4_000},
	}
}

func TestAdviseProducesPaperShapedPlan(t *testing.T) {
	objs := tpccLikeStats()
	plan := Advise(objs, 64, AdvisorOptions{MaxRegions: 6})

	if len(plan.Groups) == 0 || len(plan.Groups) > 6 {
		t.Fatalf("plan has %d groups, want 1..6", len(plan.Groups))
	}
	if plan.TotalDies != 64 {
		t.Fatalf("plan dies = %d", plan.TotalDies)
	}
	// Die counts: every group gets at least one die and the total is exactly
	// the device's die count.
	sum := 0
	for _, g := range plan.Groups {
		if g.Dies < 1 {
			t.Fatalf("group %q got %d dies", g.Name, g.Dies)
		}
		sum += g.Dies
	}
	if sum != 64 {
		t.Fatalf("die total = %d, want 64", sum)
	}
	// Every object appears in exactly one group.
	seen := map[string]int{}
	for _, g := range plan.Groups {
		for _, o := range g.Objects {
			seen[o]++
		}
	}
	for _, o := range objs {
		if seen[o.Name] != 1 {
			t.Fatalf("object %s placed %d times", o.Name, seen[o.Name])
		}
	}
	// The metadata/append-only group exists, is placed first and is small,
	// mirroring Figure 2's region 0 (DBMS-metadata; HISTORY on 2 dies).
	first := plan.Groups[0]
	if first.Profile != ProfileAppendOnly && first.Profile != ProfileMetadata {
		t.Fatalf("first group profile = %s", first.Profile)
	}
	if plan.GroupOf("DBMS-metadata") != 0 || plan.GroupOf("HISTORY") != 0 {
		t.Fatalf("metadata/HISTORY not grouped together: %d %d",
			plan.GroupOf("DBMS-metadata"), plan.GroupOf("HISTORY"))
	}
	if first.Dies > 8 {
		t.Fatalf("metadata region got %d dies; should be small", first.Dies)
	}
	// The hottest large objects (STOCK, ORDERLINE) must sit in large regions:
	// larger than the metadata region.
	for _, name := range []string{"STOCK", "ORDERLINE"} {
		gi := plan.GroupOf(name)
		if gi < 0 {
			t.Fatalf("%s not placed", name)
		}
		if plan.Groups[gi].Dies <= first.Dies {
			t.Fatalf("%s region has %d dies, not larger than metadata region (%d)",
				name, plan.Groups[gi].Dies, first.Dies)
		}
	}
	// Hot objects and cold objects must not share a region.
	if plan.GroupOf("ORDERLINE") == plan.GroupOf("ITEM") {
		t.Fatal("hot ORDERLINE and cold ITEM ended up in the same region")
	}
	// The rendered table mentions every region and the die counts.
	table := plan.TableString()
	for _, g := range plan.Groups {
		if !strings.Contains(table, g.Objects[0]) {
			t.Fatalf("table missing object %s:\n%s", g.Objects[0], table)
		}
	}
	// RegionSpecs mirror the groups.
	specs := plan.RegionSpecs()
	if len(specs) != len(plan.Groups) {
		t.Fatalf("specs = %d, groups = %d", len(specs), len(plan.Groups))
	}
	for i, s := range specs {
		if s.MaxChips != plan.Groups[i].Dies || s.Name == "" {
			t.Fatalf("spec %d does not match group: %+v", i, s)
		}
	}
}

func TestAdviseRespectsMaxRegions(t *testing.T) {
	objs := tpccLikeStats()
	for _, maxR := range []int{2, 3, 4, 6, 8} {
		plan := Advise(objs, 32, AdvisorOptions{MaxRegions: maxR})
		if len(plan.Groups) > maxR {
			t.Fatalf("maxRegions=%d produced %d groups", maxR, len(plan.Groups))
		}
		sum := 0
		for _, g := range plan.Groups {
			sum += g.Dies
		}
		if sum != 32 {
			t.Fatalf("maxRegions=%d allocated %d dies, want 32", maxR, sum)
		}
	}
}

func TestAdviseEdgeCases(t *testing.T) {
	// No objects.
	plan := Advise(nil, 8, AdvisorOptions{})
	if len(plan.Groups) != 0 {
		t.Fatalf("empty input produced groups: %+v", plan.Groups)
	}
	// One object takes every die.
	plan = Advise([]metrics.ObjectCounters{{Name: "T", Kind: "table", Reads: 10, Writes: 10, SizePages: 10}}, 8, AdvisorOptions{})
	if len(plan.Groups) != 1 || plan.Groups[0].Dies != 8 {
		t.Fatalf("single object plan wrong: %+v", plan.Groups)
	}
	// Objects with zero I/O still get placed (cold profile).
	plan = Advise([]metrics.ObjectCounters{
		{Name: "A", Kind: "table"},
		{Name: "B", Kind: "table"},
	}, 4, AdvisorOptions{})
	if plan.GroupOf("A") < 0 || plan.GroupOf("B") < 0 {
		t.Fatalf("cold objects not placed: %+v", plan.Groups)
	}
	// More groups than dies: die counts stay >= 1 and the budget is not
	// exceeded by more than the forced minimum.
	many := []metrics.ObjectCounters{}
	for _, n := range []string{"A", "B", "C", "D"} {
		many = append(many, metrics.ObjectCounters{Name: n, Kind: "table", Reads: 1000, Writes: 1000, SizePages: 100})
	}
	plan = Advise(many, 2, AdvisorOptions{MaxRegions: 4})
	total := 0
	for _, g := range plan.Groups {
		if g.Dies < 1 {
			t.Fatalf("group with zero dies: %+v", g)
		}
		total += g.Dies
	}
	if total < 2 {
		t.Fatalf("allocated %d dies for a 2-die budget", total)
	}
	// GroupOf for an unknown object.
	if plan.GroupOf("nope") != -1 {
		t.Fatal("GroupOf unknown object should be -1")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		in   metrics.ObjectCounters
		io   float64
		want AccessProfile
	}{
		{metrics.ObjectCounters{Kind: "meta", Reads: 1}, 0.5, ProfileMetadata},
		{metrics.ObjectCounters{Kind: "log", Writes: 100}, 0.5, ProfileMetadata},
		{metrics.ObjectCounters{Kind: "table"}, 0, ProfileCold},
		{metrics.ObjectCounters{Kind: "table", Appends: 100, Reads: 10}, 0.2, ProfileAppendOnly},
		{metrics.ObjectCounters{Kind: "table", Reads: 50, Writes: 50}, 0.2, ProfileWriteHot},
		{metrics.ObjectCounters{Kind: "table", Reads: 100, Writes: 1}, 0.2, ProfileReadMostly},
		{metrics.ObjectCounters{Kind: "table", Reads: 70, Writes: 30}, 0.2, ProfileMixed},
		{metrics.ObjectCounters{Kind: "table", Reads: 70, Writes: 30}, 0.001, ProfileCold},
	}
	for i, c := range cases {
		if got := classify(c.in, c.io); got != c.want {
			t.Errorf("case %d: classify = %s, want %s", i, got, c.want)
		}
	}
}
