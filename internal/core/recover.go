package core

import (
	"noftl/internal/flash"
)

// LogPageVersion is one programmed version of a WAL page found by the
// post-crash scan (several versions of the same LPN can coexist because the
// log rewrites its current page out of place on every force).
type LogPageVersion struct {
	LPN  LPN
	Seq  uint64
	Addr flash.Addr
}

// AdoptionReport summarises what RecoverManager found on the device.
type AdoptionReport struct {
	// LogVersions lists every surviving version of every WAL page, so the
	// recovery layer can reconstruct the record stream (including torn-tail
	// fallback to an older version).
	LogVersions []LogPageVersion
	// DataLPNs are the winning logical pages that are not WAL pages (heap,
	// index, catalog).  Logical recovery rebuilds their contents from the
	// checkpoint snapshot plus redo, then trims them.
	DataLPNs []LPN
	// Winners is the number of mapped logical pages after adoption.
	Winners int
	// MaxSeq is the highest OOB write sequence seen.
	MaxSeq uint64
}

// RecoverManager builds a space manager over a device that already holds
// data — the post-crash OOB scan of the NoFTL model: because every physical
// page carries self-describing metadata (LPN, object, region, sequence
// number), the logical-to-physical mapping, per-block valid counts and wear
// state are all reconstructible from the device alone.  For each LPN the
// version with the highest Seq wins; everything else is invalid.  All dies
// start out owned by the default region (region specs are restored by the
// logical recovery layer after the checkpoint snapshot is decoded).
func RecoverManager(dev *flash.Device, opts Options) (*Manager, *AdoptionReport, error) {
	m := NewManager(dev, opts)
	rep := &AdoptionReport{}

	type winner struct {
		addr flash.Addr
		seq  uint64
	}
	winners := make(map[LPN]winner)
	survey := dev.Survey()
	for _, bs := range survey {
		if bs.Bad {
			continue // bad blocks hold no current data (marked bad at erase)
		}
		for _, ps := range bs.Pages {
			lpn := LPN(ps.Meta.LPN)
			if ps.Meta.Seq > rep.MaxSeq {
				rep.MaxSeq = ps.Meta.Seq
			}
			if ps.Meta.Flags&flash.FlagLog != 0 {
				rep.LogVersions = append(rep.LogVersions, LogPageVersion{
					LPN: lpn, Seq: ps.Meta.Seq, Addr: ps.Addr,
				})
			}
			if w, ok := winners[lpn]; !ok || ps.Meta.Seq > w.seq {
				winners[lpn] = winner{addr: ps.Addr, seq: ps.Meta.Seq}
			}
		}
	}

	logSet := make(map[LPN]bool, len(rep.LogVersions))
	for _, v := range rep.LogVersions {
		logSet[v.LPN] = true
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	var maxLPN LPN
	// Adopt block states and wear.
	for _, bs := range survey {
		da := m.dies[bs.Addr.Die]
		blk := &da.blocks[bs.Addr.Block]
		blk.eraseCount = bs.EraseCount
		switch {
		case bs.Bad:
			blk.state = blkRetired
		case bs.NextPage == 0:
			blk.state = blkFree
		default:
			// Partially filled blocks are treated as closed: the manager
			// never resumes programming a block it did not open itself, and
			// GC reclaims the unused tail pages with the rest.
			blk.state = blkClosed
			blk.nextPage = bs.NextPage
		}
	}
	// Rebuild each die's free list from the adopted states.
	for _, da := range m.dies {
		da.freeBlocks = da.freeBlocks[:0]
		for b := range da.blocks {
			if da.blocks[b].state == blkFree {
				da.freeBlocks = append(da.freeBlocks, b)
			}
		}
	}
	// Install the winning mapping; everything else on flash is invalid.
	def := m.regionsByID[DefaultRegionID]
	for lpn, w := range winners {
		da := m.dies[w.addr.Die]
		blk := &da.blocks[w.addr.Block]
		blk.lpns[w.addr.Page] = lpn
		blk.valid[w.addr.Page] = true
		blk.validCount++
		if w.seq > blk.lastWrite {
			blk.lastWrite = w.seq
		}
		m.mapping[lpn] = mapEntry{
			addr:   ppa{Die: w.addr.Die, Block: w.addr.Block, Page: w.addr.Page},
			region: DefaultRegionID,
		}
		def.validPages++
		if lpn > maxLPN {
			maxLPN = lpn
		}
		if !logSet[lpn] {
			rep.DataLPNs = append(rep.DataLPNs, lpn)
		}
	}
	rep.Winners = len(winners)
	m.seq = rep.MaxSeq
	if maxLPN >= m.nextLPN {
		m.nextLPN = maxLPN + 1
	}
	return m, rep, nil
}
