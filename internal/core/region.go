package core

import (
	"fmt"
	"sort"

	"noftl/internal/metrics"
)

// RegionSpec describes a region to create, mirroring the paper's
//
//	CREATE REGION rgHotTbl (MAX_CHIPS=8, MAX_CHANNELS=4, MAX_SIZE=1280M);
//
// statement: the number of dies ("chips"), the maximum number of channels
// those dies may span, and an optional cap on the logical size of the region.
type RegionSpec struct {
	// Name is the region name (unique, case-sensitive).
	Name string
	// MaxChips is the number of dies to assign to the region.
	MaxChips int
	// MaxChannels limits how many distinct channels the region's dies may
	// span; zero means no limit.
	MaxChannels int
	// MaxSizeBytes caps the logical size of the region; zero means the
	// region may use the full exported capacity of its dies.
	MaxSizeBytes int64
	// Dies optionally pins the region to these specific die indexes.  When
	// non-empty it overrides MaxChips/MaxChannels-based selection.
	Dies []int
	// GC optionally overrides the manager's default garbage-collection
	// policy for this region (the paper's per-region GC configuration).
	GC *GCPolicy
}

// Validate reports whether the spec is well formed.
func (s RegionSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("%w: empty region name", ErrInvalidSpec)
	}
	if len(s.Dies) == 0 && s.MaxChips <= 0 {
		return fmt.Errorf("%w: region %q needs MAX_CHIPS > 0 or an explicit die list", ErrInvalidSpec, s.Name)
	}
	if s.MaxChannels < 0 || s.MaxSizeBytes < 0 {
		return fmt.Errorf("%w: region %q has negative limits", ErrInvalidSpec, s.Name)
	}
	return nil
}

// Region is a physical storage structure comprising a set of flash dies over
// which the data placed in the region is evenly distributed.
//
// All mutable state is guarded by the owning Manager's mutex; Region values
// handed out to callers must only be inspected through Manager.Stats or the
// read-only accessors, which take snapshots.
type Region struct {
	id   RegionID
	name string
	dies []int // die indexes owned by this region, sorted

	maxSizePages  int64 // 0 = unlimited (within die capacity)
	capacityPages int64 // exported logical capacity (after over-provisioning)
	validPages    int64 // logical pages currently mapped into this region

	gc GCPolicy // per-region garbage-collection policy

	// statistics
	hostReads   int64
	hostWrites  int64
	gcCopybacks int64
	gcErases    int64
	gcRuns      int64
	gcStalls    int64 // foreground collections: an allocation hit the low watermark
	bgSteps     int64 // bounded background GC steps performed
	wlMoves     int64
	spills      int64 // writes redirected to the default region because this region was full
	readLat     *metrics.Histogram
	writeLat    *metrics.Histogram

	// Labeled observability children, cached here by bindRegionObsLocked so
	// the write/GC hot paths never touch the registry maps.  All nil when no
	// registry is attached.
	promHostReads   *metrics.Counter
	promHostWrites  *metrics.Counter
	promGCCopybacks *metrics.Counter
	promGCErases    *metrics.Counter
	promGCStalls    *metrics.Counter
	promBGSteps     *metrics.Counter
	promWearMoves   *metrics.Counter
	promReadLat     *metrics.Histogram
	promWriteLat    *metrics.Histogram

	rr int // round-robin cursor over dies for write placement
}

func newRegion(id RegionID, name string) *Region {
	return &Region{
		id:       id,
		name:     name,
		readLat:  metrics.NewHistogram(),
		writeLat: metrics.NewHistogram(),
	}
}

// ID returns the region's identifier.
func (r *Region) ID() RegionID { return r.id }

// Name returns the region's name.
func (r *Region) Name() string { return r.name }

// RegionStats is a read-only snapshot of a region's configuration and
// counters.
type RegionStats struct {
	ID            RegionID
	Name          string
	Dies          []int
	Channels      int
	CapacityPages int64
	ValidPages    int64
	FreeBlocks    int
	GC            GCPolicy
	HostReads     int64
	HostWrites    int64
	GCCopybacks   int64
	GCErases      int64
	GCRuns        int64
	GCStalls      int64 // foreground (blocking) collections under the low watermark
	BGGCSteps     int64 // bounded background GC steps
	WearMoves     int64
	SpilledWrites int64
	ReadLatency   metrics.Snapshot
	WriteLatency  metrics.Snapshot
	MinErase      int64
	MaxErase      int64
	TotalErase    int64
	// Background-GC watermark state of the region's dies at snapshot time.
	BGDebtBlocks   int64 // total free-block shortfall relative to the high watermark
	DiesInBGBand   int   // dies at or below the high watermark (background band)
	DiesAtLowWater int   // dies at or below the low watermark
	BGVictimsOpen  int   // dies with an in-progress (partially relocated) background victim
}

// WriteAmplification returns (host writes + GC copybacks) / host writes, the
// standard flash write-amplification factor, or zero when no host writes
// happened.
func (s RegionStats) WriteAmplification() float64 {
	if s.HostWrites == 0 {
		return 0
	}
	return float64(s.HostWrites+s.GCCopybacks) / float64(s.HostWrites)
}

// String renders a one-line summary.
func (s RegionStats) String() string {
	return fmt.Sprintf("region %q (id %d): %d dies, %d/%d pages valid, reads=%d writes=%d copybacks=%d erases=%d",
		s.Name, s.ID, len(s.Dies), s.ValidPages, s.CapacityPages,
		s.HostReads, s.HostWrites, s.GCCopybacks, s.GCErases)
}

// sortedCopy returns a sorted copy of dies.
func sortedCopy(dies []int) []int {
	out := make([]int, len(dies))
	copy(out, dies)
	sort.Ints(out)
	return out
}
