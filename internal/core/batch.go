package core

import (
	"fmt"

	"noftl/internal/flash"
	"noftl/internal/iosched"
	"noftl/internal/sim"
)

// PageRead is the per-page result of a batched ReadPages call.
type PageRead struct {
	// LPN is the logical page that was requested.
	LPN LPN
	// Data is the page contents (nil on error, or when the device does not
	// store data).
	Data []byte
	// Meta is the page's OOB metadata.
	Meta flash.PageMeta
	// Done is the virtual completion time of this page's read.
	Done sim.Time
	// Err reports a per-page failure (e.g. an unmapped LPN); other pages of
	// the batch are unaffected.
	Err error
}

// ReadPages reads a batch of logical pages through the I/O scheduler.  Pages
// whose current physical copies live on different dies are read concurrently
// in virtual time; same-die pages serialize on the die.  bufs may be nil, or
// provide one destination buffer per LPN (individual entries may be nil).
//
// The returned slice has one entry per requested LPN, in request order;
// unmapped pages carry ErrUnmappedPage in their entry and cost no device
// time.  The second return value is the batch makespan: the virtual time at
// which the last read completed (now when nothing was readable).
func (m *Manager) ReadPages(now sim.Time, lpns []LPN, bufs [][]byte) ([]PageRead, sim.Time) {
	out := make([]PageRead, len(lpns))
	reqs := make([]iosched.Request, 0, len(lpns))
	reqIdx := make([]int, 0, len(lpns))
	reqRegion := make([]*Region, 0, len(lpns))

	m.mu.Lock()
	for i, lpn := range lpns {
		out[i].LPN = lpn
		out[i].Done = now
		e, ok := m.mapping[lpn]
		if !ok {
			out[i].Err = fmt.Errorf("%w: lpn %d", ErrUnmappedPage, lpn)
			continue
		}
		r := m.regionsByID[m.dieOwner[e.addr.Die]]
		r.hostReads++
		var buf []byte
		if bufs != nil && i < len(bufs) {
			buf = bufs[i]
		}
		reqs = append(reqs, iosched.Request{
			Op:       iosched.OpReadPage,
			Addr:     e.addr,
			Buf:      buf,
			Priority: iosched.PrioHostRead,
			Tag:      uint64(lpn),
		})
		reqIdx = append(reqIdx, i)
		reqRegion = append(reqRegion, r)
	}
	m.mu.Unlock()

	cs, end := m.sched.Submit(now, reqs)
	for j, c := range cs {
		i := reqIdx[j]
		out[i].Data = c.Data
		out[i].Meta = c.Meta
		out[i].Done = c.Done
		out[i].Err = c.Err
		if c.Err == nil {
			// Histograms are internally synchronized; the region pointer is
			// stable for the life of the manager.
			reqRegion[j].readLat.Observe(c.Done.Sub(now))
		}
	}
	return out, end
}

// PageWrite is one element of a batched WritePages call.
type PageWrite struct {
	// LPN is the logical page to write.
	LPN LPN
	// Data is the page payload (PageSize bytes, or nil when the device does
	// not store data).
	Data []byte
	// Hint carries the placement hint, exactly as in WritePage.
	Hint Hint
}

// pendingProgram tracks one allocated slot of a write batch until its
// program completion arrives.
type pendingProgram struct {
	idx  int // index into the writes slice
	r    *Region
	da   *dieAlloc
	slot slotRef
	addr ppa
}

// WritePages writes a batch of logical pages out of place through the I/O
// scheduler.  Slots are allocated round-robin over each target region's dies
// (exactly as WritePage does per page), so a batch naturally stripes across
// dies and its programs overlap in virtual time; any synchronous GC the
// allocations trigger is charged to the batch start, mirroring WritePage.
//
// On success the returned time is the completion of the slowest page.  A
// per-page device failure rolls back that page's slot and is returned as the
// call's error after the remaining pages have been accounted; an allocation
// failure (region full) aborts the batch before any program is issued.
func (m *Manager) WritePages(now sim.Time, writes []PageWrite) (sim.Time, error) {
	if len(writes) == 0 {
		return now, nil
	}
	start := now
	m.mu.Lock()
	defer m.mu.Unlock()

	// Phase 1: admission and slot allocation.  pendingNew counts pages of
	// this batch admitted to each region but not yet reflected in
	// validPages, so a batch cannot overshoot a region's logical capacity.
	pendingNew := make(map[RegionID]int64)
	pends := make([]pendingProgram, 0, len(writes))
	reqs := make([]iosched.Request, 0, len(writes))
	batchStart := now
	for i, w := range writes {
		r := m.resolveRegion(w.Hint)
		prev, remap := m.mapping[w.LPN]
		consumes := !remap || prev.region != r.id
		if consumes && r.validPages+pendingNew[r.id] >= r.capacityPages {
			if m.opts.DisableSpill || r.id == DefaultRegionID {
				return now, fmt.Errorf("%w: %q (%d pages)", ErrRegionFull, r.name, r.capacityPages)
			}
			r.spills++
			r = m.regionsByID[DefaultRegionID]
			consumes = !remap || prev.region != r.id
			if consumes && r.validPages+pendingNew[r.id] >= r.capacityPages {
				return now, fmt.Errorf("%w: %q (%d pages)", ErrRegionFull, r.name, r.capacityPages)
			}
		}
		da, slot, gcDone, err := m.allocateSlot(now, r)
		if err != nil {
			if !m.opts.DisableSpill && r.id != DefaultRegionID {
				r.spills++
				r = m.regionsByID[DefaultRegionID]
				da, slot, gcDone, err = m.allocateSlot(now, r)
			}
			if err != nil {
				// Roll back the slots already reserved for this batch; no
				// program has been issued yet.
				m.rollbackSlots(pends, len(pends))
				return now, err
			}
		}
		if gcDone > batchStart {
			batchStart = gcDone
		}
		if consumes {
			pendingNew[r.id]++
		}
		addr := ppa{Die: da.die, Block: slot.block, Page: slot.page}
		m.seq++
		reqs = append(reqs, iosched.Request{
			Op:   iosched.OpProgram,
			Addr: addr,
			Data: w.Data,
			Meta: flash.PageMeta{
				LPN:      uint64(w.LPN),
				ObjectID: w.Hint.ObjectID,
				RegionID: uint32(r.id),
				Seq:      m.seq,
				Flags:    w.Hint.Flags,
			},
			Priority: iosched.PrioHostWrite,
			Tag:      uint64(w.LPN),
		})
		pends = append(pends, pendingProgram{idx: i, r: r, da: da, slot: slot, addr: addr})
	}

	// Phase 2: dispatch all programs as one batch.  Different dies overlap;
	// programs to one die pipeline on its resource.
	cs, end := m.sched.Submit(batchStart, reqs)

	// Phase 3: bookkeeping.  Device program failures on a block form a
	// suffix (the sequential-programming constraint rejects everything after
	// the first failed page), so decrementing nextPage once per failure
	// re-synchronizes the manager's cursor with the device.
	var firstErr error
	for j, c := range cs {
		p := pends[j]
		w := writes[p.idx]
		blk := &p.da.blocks[p.slot.block]
		if c.Err != nil {
			blk.nextPage--
			m.retireIfBad(p.da, p.slot.block)
			if firstErr == nil {
				firstErr = c.Err
			}
			continue
		}
		blk.lpns[p.slot.page] = w.LPN
		blk.valid[p.slot.page] = true
		blk.validCount++
		blk.lastWrite = m.seq
		if blk.nextPage >= m.geo.PagesPerBlock {
			blk.state = blkClosed
			if p.da.hostOpen == p.slot.block {
				p.da.hostOpen = -1
			}
		}
		old, had := m.mapping[w.LPN]
		m.mapping[w.LPN] = mapEntry{addr: p.addr, region: p.r.id}
		if had {
			m.invalidate(old)
			if old.region != p.r.id {
				if or, ok := m.regionsByID[old.region]; ok && or.validPages > 0 {
					or.validPages--
				}
				p.r.validPages++
			}
		} else {
			p.r.validPages++
		}
		p.r.hostWrites++
		p.r.writeLat.Observe(c.Done.Sub(start))
	}
	if end < now {
		end = now
	}
	// Opportunistic background GC on each die the batch touched, after the
	// batch makespan has been determined so step costs stay out of it.
	pumped := make(map[int]bool, len(pends))
	for _, p := range pends {
		if pumped[p.da.die] {
			continue
		}
		pumped[p.da.die] = true
		m.backgroundGCLocked(end, p.da)
	}
	return end, firstErr
}

// rollbackSlots releases the first n reserved-but-unprogrammed slots of a
// batch (used when admission fails partway through allocation).  Caller
// holds m.mu.
func (m *Manager) rollbackSlots(pends []pendingProgram, n int) {
	for i := n - 1; i >= 0; i-- {
		p := pends[i]
		p.da.blocks[p.slot.block].nextPage--
	}
}
