package storage

import (
	"strings"
	"testing"

	"noftl/internal/core"
	"noftl/internal/flash"
)

func newTestManager(t *testing.T) *core.Manager {
	t.Helper()
	dev, err := flash.NewDevice(flash.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return core.NewManager(dev, core.DefaultOptions())
}

func TestTablespaceExtentAllocation(t *testing.T) {
	mgr := newTestManager(t)
	const extent = 8
	ts := NewTablespace("tsTest", core.DefaultRegionID, extent, mgr)

	if ts.Name() != "tsTest" {
		t.Errorf("name = %q", ts.Name())
	}
	if ts.Region() != core.DefaultRegionID {
		t.Errorf("region = %d", ts.Region())
	}
	if ts.ExtentPages() != extent {
		t.Errorf("extent pages = %d, want %d", ts.ExtentPages(), extent)
	}

	// The first extent's pages are consecutive LPNs.
	first := ts.AllocatePage()
	for i := 1; i < extent; i++ {
		lpn := ts.AllocatePage()
		if lpn != first+core.LPN(i) {
			t.Fatalf("page %d of extent = lpn %d, want %d (consecutive)", i, lpn, first+core.LPN(i))
		}
	}
	if ts.Extents() != 1 {
		t.Errorf("extents = %d, want 1", ts.Extents())
	}
	if ts.AllocatedPages() != extent {
		t.Errorf("allocated pages = %d, want %d", ts.AllocatedPages(), extent)
	}

	// Page extent+1 opens a second extent.
	next := ts.AllocatePage()
	if next < first+core.LPN(extent) {
		t.Errorf("new extent page lpn %d overlaps first extent", next)
	}
	if ts.Extents() != 2 {
		t.Errorf("extents = %d, want 2", ts.Extents())
	}
	if ts.AllocatedPages() != extent+1 {
		t.Errorf("allocated pages = %d, want %d", ts.AllocatedPages(), extent+1)
	}
}

func TestTablespaceDefaultExtentSize(t *testing.T) {
	mgr := newTestManager(t)
	ts := NewTablespace("tsDefault", core.DefaultRegionID, 0, mgr)
	if ts.ExtentPages() != DefaultExtentPages {
		t.Errorf("extent pages = %d, want default %d", ts.ExtentPages(), DefaultExtentPages)
	}
}

func TestTablespaceHintCarriesPlacement(t *testing.T) {
	mgr := newTestManager(t)
	ts := NewTablespace("tsHint", core.RegionID(3), 16, mgr)
	h := ts.Hint(42, flash.FlagIndex)
	if h.Region != core.RegionID(3) {
		t.Errorf("hint region = %d, want 3", h.Region)
	}
	if h.ObjectID != 42 {
		t.Errorf("hint object = %d, want 42", h.ObjectID)
	}
	if h.Flags != flash.FlagIndex {
		t.Errorf("hint flags = %#x, want FlagIndex", h.Flags)
	}
}

func TestTablespaceDistinctTablespacesDoNotOverlap(t *testing.T) {
	mgr := newTestManager(t)
	a := NewTablespace("A", core.DefaultRegionID, 4, mgr)
	b := NewTablespace("B", core.DefaultRegionID, 4, mgr)
	seen := make(map[core.LPN]string)
	for i := 0; i < 12; i++ {
		la := a.AllocatePage()
		if owner, dup := seen[la]; dup {
			t.Fatalf("lpn %d handed to both %s and A", la, owner)
		}
		seen[la] = "A"
		lb := b.AllocatePage()
		if owner, dup := seen[lb]; dup {
			t.Fatalf("lpn %d handed to both %s and B", lb, owner)
		}
		seen[lb] = "B"
	}
}

func TestTablespaceString(t *testing.T) {
	mgr := newTestManager(t)
	ts := NewTablespace("tsStr", core.RegionID(2), 16, mgr)
	s := ts.String()
	if !strings.Contains(s, "tsStr") || !strings.Contains(s, "16") {
		t.Errorf("String() = %q: missing name or extent size", s)
	}
}
