package storage

import (
	"fmt"
	"sync"

	"noftl/internal/core"
)

// Tablespace is the logical storage structure the DBA works with.  It is
// bound to a NoFTL region (the paper's coupling of tablespaces to regions)
// and hands out pages to the objects created in it, extent by extent.
type Tablespace struct {
	mu             sync.Mutex
	name           string
	region         core.RegionID
	extentPages    int
	mgr            *core.Manager
	currentStart   core.LPN
	currentUsed    int
	allocatedPages int64
	extents        int64
}

// DefaultExtentPages is the extent size used when none is specified
// (32 pages = 128 KiB with 4 KiB pages, the value in the paper's example
// DDL).
const DefaultExtentPages = 32

// NewTablespace creates a tablespace bound to the given region.  extentPages
// is the number of pages allocated at a time; zero selects
// DefaultExtentPages.
func NewTablespace(name string, region core.RegionID, extentPages int, mgr *core.Manager) *Tablespace {
	if extentPages <= 0 {
		extentPages = DefaultExtentPages
	}
	return &Tablespace{
		name:        name,
		region:      region,
		extentPages: extentPages,
		mgr:         mgr,
	}
}

// Name returns the tablespace name.
func (t *Tablespace) Name() string { return t.name }

// Region returns the region the tablespace is bound to.
func (t *Tablespace) Region() core.RegionID { return t.region }

// ExtentPages returns the extent size in pages.
func (t *Tablespace) ExtentPages() int { return t.extentPages }

// AllocatedPages returns the number of pages handed out so far.
func (t *Tablespace) AllocatedPages() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.allocatedPages
}

// Extents returns the number of extents allocated so far.
func (t *Tablespace) Extents() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.extents
}

// Hint returns the placement hint pages of the given object should carry
// when they are written.
func (t *Tablespace) Hint(objectID uint32, flags uint16) core.Hint {
	return core.Hint{Region: t.region, ObjectID: objectID, Flags: flags}
}

// AllocatePage returns the next free logical page number of the tablespace,
// allocating a new extent from the space manager when the current one is
// exhausted.
func (t *Tablespace) AllocatePage() core.LPN {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.currentUsed == 0 || t.currentUsed >= t.extentPages {
		t.currentStart = t.mgr.AllocateLPNs(t.extentPages)
		t.currentUsed = 0
		t.extents++
	}
	lpn := t.currentStart + core.LPN(t.currentUsed)
	t.currentUsed++
	t.allocatedPages++
	return lpn
}

// String describes the tablespace.
func (t *Tablespace) String() string {
	return fmt.Sprintf("tablespace %q (region %d, extent %d pages)", t.name, t.region, t.extentPages)
}
