package storage

import (
	"errors"
	"fmt"
	"sync"

	"noftl/internal/buffer"
	"noftl/internal/core"
	"noftl/internal/sim"
)

// Errors returned by heap files.
var (
	// ErrNotFound reports a record id that does not resolve to a live
	// record.
	ErrNotFound = errors.New("storage: record not found")
)

// HeapFile stores variable-length records of one table in slotted pages
// allocated from the table's tablespace.  Inserts fill the most recently
// allocated page and open a new page when it is full; updates are in place
// (records keep their RID); deletes tombstone the slot.
type HeapFile struct {
	mu       sync.Mutex
	name     string
	objectID uint32
	ts       *Tablespace
	pool     *buffer.Pool
	pages    []core.LPN
	lastPage core.LPN
	records  int64
}

// NewHeapFile creates an empty heap file for the object in the tablespace.
func NewHeapFile(name string, objectID uint32, ts *Tablespace, pool *buffer.Pool) *HeapFile {
	return &HeapFile{name: name, objectID: objectID, ts: ts, pool: pool}
}

// Name returns the table name the heap belongs to.
func (h *HeapFile) Name() string { return h.name }

// ObjectID returns the owning object's id.
func (h *HeapFile) ObjectID() uint32 { return h.objectID }

// PageCount returns the number of pages allocated to the heap.
func (h *HeapFile) PageCount() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int64(len(h.pages))
}

// RecordCount returns the number of live records.
func (h *HeapFile) RecordCount() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.records
}

// Pages returns a copy of the heap's page list (for scans and tests).
func (h *HeapFile) Pages() []core.LPN {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]core.LPN, len(h.pages))
	copy(out, h.pages)
	return out
}

func (h *HeapFile) hint() core.Hint {
	return h.ts.Hint(h.objectID, 0)
}

// Insert appends a record and returns its RID.
func (h *HeapFile) Insert(now sim.Time, rec []byte) (RID, sim.Time, error) {
	h.mu.Lock()
	lpn := h.lastPage
	h.mu.Unlock()

	if lpn != 0 {
		rid, done, ok, err := h.tryInsertInto(now, lpn, rec)
		if err != nil {
			return RID{}, done, err
		}
		if ok {
			return rid, done, nil
		}
		now = done
	}
	// Open a fresh page.
	h.mu.Lock()
	newLPN := h.ts.AllocatePage()
	h.pages = append(h.pages, newLPN)
	h.lastPage = newLPN
	h.mu.Unlock()

	handle, done, err := h.pool.NewPage(now, newLPN, h.hint())
	if err != nil {
		return RID{}, done, err
	}
	defer handle.Release()
	handle.Lock()
	defer handle.Unlock()
	InitPage(handle.Data(), PageTypeHeap, h.objectID, uint64(newLPN))
	slot, err := InsertRecord(handle.Data(), rec)
	if err != nil {
		return RID{}, done, fmt.Errorf("heap %s: insert into fresh page: %w", h.name, err)
	}
	handle.MarkDirty()
	h.mu.Lock()
	h.records++
	h.mu.Unlock()
	return RID{LPN: uint64(newLPN), Slot: slot}, done, nil
}

// tryInsertInto attempts an insert into a specific page; ok is false when the
// page has no room.
func (h *HeapFile) tryInsertInto(now sim.Time, lpn core.LPN, rec []byte) (RID, sim.Time, bool, error) {
	handle, done, err := h.pool.Fetch(now, lpn, h.hint())
	if err != nil {
		return RID{}, done, false, err
	}
	defer handle.Release()
	handle.Lock()
	defer handle.Unlock()
	if FreeSpace(handle.Data()) < len(rec) {
		return RID{}, done, false, nil
	}
	slot, err := InsertRecord(handle.Data(), rec)
	if err != nil {
		if errors.Is(err, ErrPageFull) {
			return RID{}, done, false, nil
		}
		return RID{}, done, false, err
	}
	handle.MarkDirty()
	h.mu.Lock()
	h.records++
	h.mu.Unlock()
	return RID{LPN: uint64(lpn), Slot: slot}, done, true, nil
}

// Get returns a copy of the record identified by rid.
func (h *HeapFile) Get(now sim.Time, rid RID) ([]byte, sim.Time, error) {
	handle, done, err := h.pool.Fetch(now, core.LPN(rid.LPN), h.hint())
	if err != nil {
		return nil, done, err
	}
	defer handle.Release()
	handle.RLock()
	defer handle.RUnlock()
	rec, err := ReadRecord(handle.Data(), rid.Slot)
	if err != nil {
		return nil, done, fmt.Errorf("heap %s: %w (%v)", h.name, ErrNotFound, err)
	}
	return rec, done, nil
}

// Update replaces the record identified by rid in place.
func (h *HeapFile) Update(now sim.Time, rid RID, rec []byte) (sim.Time, error) {
	handle, done, err := h.pool.Fetch(now, core.LPN(rid.LPN), h.hint())
	if err != nil {
		return done, err
	}
	defer handle.Release()
	handle.Lock()
	defer handle.Unlock()
	if err := UpdateRecord(handle.Data(), rid.Slot, rec); err != nil {
		return done, fmt.Errorf("heap %s: update %v: %w", h.name, rid, err)
	}
	handle.MarkDirty()
	return done, nil
}

// Delete removes the record identified by rid.
func (h *HeapFile) Delete(now sim.Time, rid RID) (sim.Time, error) {
	handle, done, err := h.pool.Fetch(now, core.LPN(rid.LPN), h.hint())
	if err != nil {
		return done, err
	}
	defer handle.Release()
	handle.Lock()
	defer handle.Unlock()
	if err := DeleteRecord(handle.Data(), rid.Slot); err != nil {
		return done, fmt.Errorf("heap %s: delete %v: %w", h.name, rid, err)
	}
	handle.MarkDirty()
	h.mu.Lock()
	if h.records > 0 {
		h.records--
	}
	h.mu.Unlock()
	return done, nil
}

// Scan calls fn for every live record in the heap, in page order.  Returning
// false stops the scan.  It returns the caller's advanced virtual time.
func (h *HeapFile) Scan(now sim.Time, fn func(rid RID, rec []byte) bool) (sim.Time, error) {
	for _, lpn := range h.Pages() {
		handle, done, err := h.pool.Fetch(now, lpn, h.hint())
		if err != nil {
			return done, err
		}
		now = done
		stop := false
		handle.RLock()
		err = IterateRecords(handle.Data(), func(slot uint16, rec []byte) bool {
			cp := make([]byte, len(rec))
			copy(cp, rec)
			if !fn(RID{LPN: uint64(lpn), Slot: slot}, cp) {
				stop = true
				return false
			}
			return true
		})
		handle.RUnlock()
		handle.Release()
		if err != nil {
			return now, err
		}
		if stop {
			break
		}
	}
	return now, nil
}
