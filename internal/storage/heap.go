package storage

import (
	"errors"
	"fmt"
	"sync"

	"noftl/internal/buffer"
	"noftl/internal/core"
	"noftl/internal/sim"
)

// Errors returned by heap files.
var (
	// ErrNotFound reports a record id that does not resolve to a live
	// record.
	ErrNotFound = errors.New("storage: record not found")
)

// HeapFile stores variable-length records of one table in slotted pages
// allocated from the table's tablespace.  Inserts fill the most recently
// allocated page and open a new page when it is full; updates are in place
// (records keep their RID); deletes tombstone the slot.
type HeapFile struct {
	mu       sync.Mutex
	name     string
	objectID uint32
	ts       *Tablespace
	pool     *buffer.Pool
	pages    []core.LPN
	lastPage core.LPN
	records  int64
}

// NewHeapFile creates an empty heap file for the object in the tablespace.
func NewHeapFile(name string, objectID uint32, ts *Tablespace, pool *buffer.Pool) *HeapFile {
	return &HeapFile{name: name, objectID: objectID, ts: ts, pool: pool}
}

// Name returns the table name the heap belongs to.
func (h *HeapFile) Name() string { return h.name }

// ObjectID returns the owning object's id.
func (h *HeapFile) ObjectID() uint32 { return h.objectID }

// PageCount returns the number of pages allocated to the heap.
func (h *HeapFile) PageCount() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int64(len(h.pages))
}

// RecordCount returns the number of live records.
func (h *HeapFile) RecordCount() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.records
}

// Pages returns a copy of the heap's page list (for scans and tests).
func (h *HeapFile) Pages() []core.LPN {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]core.LPN, len(h.pages))
	copy(out, h.pages)
	return out
}

func (h *HeapFile) hint() core.Hint {
	return h.ts.Hint(h.objectID, 0)
}

// Insert appends a record and returns its RID.
func (h *HeapFile) Insert(now sim.Time, rec []byte) (RID, sim.Time, error) {
	h.mu.Lock()
	lpn := h.lastPage
	h.mu.Unlock()

	if lpn != 0 {
		rid, done, ok, err := h.tryInsertInto(now, lpn, rec)
		if err != nil {
			return RID{}, done, err
		}
		if ok {
			return rid, done, nil
		}
		now = done
	}
	// Open a fresh page.  The LPN is published in h.pages/h.lastPage only
	// after its frame exists in the pool: concurrent inserters and scanners
	// that pick the new tail up must find the frame, not fall through to the
	// device where the page has never been written.
	newLPN := h.ts.AllocatePage()
	handle, done, err := h.pool.NewPage(now, newLPN, h.hint())
	if err != nil {
		return RID{}, done, err
	}
	defer handle.Release()
	handle.Lock()
	defer handle.Unlock()
	InitPage(handle.Data(), PageTypeHeap, h.objectID, uint64(newLPN))
	slot, err := InsertRecord(handle.Data(), rec)
	if err != nil {
		return RID{}, done, fmt.Errorf("heap %s: insert into fresh page: %w", h.name, err)
	}
	handle.MarkDirty()
	h.mu.Lock()
	h.pages = append(h.pages, newLPN)
	h.lastPage = newLPN
	h.records++
	h.mu.Unlock()
	return RID{LPN: uint64(newLPN), Slot: slot}, done, nil
}

// InsertBatch appends a batch of records, returning one RID per record in
// order.  The tail page is filled first through the buffer pool; the
// remaining records are packed into fresh page images which are written to
// flash as one die-striped batch (a single scheduler submission however many
// pages the batch spans).  The final, partially filled page stays resident in
// the pool so subsequent inserts keep filling it.
//
// On error the records already applied are returned alongside it (the heap
// stays consistent; the caller decides whether to abort).  A record too
// large for an empty page fails the whole batch up front, before anything is
// applied.
func (h *HeapFile) InsertBatch(now sim.Time, recs [][]byte) ([]RID, sim.Time, error) {
	rids := make([]RID, 0, len(recs))
	if len(recs) == 0 {
		return rids, now, nil
	}
	// Validate before mutating anything: every record must fit an empty page.
	pageSize := h.pool.PageSize()
	maxRec := pageSize - PageHeaderSize - slotSize
	for _, rec := range recs {
		if len(rec) > maxRec {
			return nil, now, fmt.Errorf("heap %s: batch insert: %w (%d bytes, max %d)",
				h.name, ErrRecordTooLarge, len(rec), maxRec)
		}
	}

	// Phase 1: fill whatever room the current tail page has, fetching it once
	// for the whole batch instead of once per record.
	h.mu.Lock()
	tail := h.lastPage
	h.mu.Unlock()
	next := 0
	if tail != 0 {
		handle, done, err := h.pool.Fetch(now, tail, h.hint())
		if err != nil {
			return nil, done, err
		}
		now = done
		handle.Lock()
		inserted := 0
		for next < len(recs) {
			slot, err := InsertRecord(handle.Data(), recs[next])
			if err != nil {
				if errors.Is(err, ErrPageFull) || errors.Is(err, ErrRecordTooLarge) {
					break
				}
				handle.Unlock()
				handle.Release()
				return rids, now, err
			}
			rids = append(rids, RID{LPN: uint64(tail), Slot: slot})
			next++
			inserted++
		}
		if inserted > 0 {
			handle.MarkDirty()
		}
		handle.Unlock()
		handle.Release()
		h.mu.Lock()
		h.records += int64(inserted)
		h.mu.Unlock()
	}
	if next >= len(recs) {
		return rids, now, nil
	}

	// Phase 2: pack the remaining records into fresh page images.  Full pages
	// are collected for one write-through batch; the last (partial) page is
	// kept in the pool as the new tail.  The heap's page list and tail are
	// only updated once the pages are materialized, so a failure here cannot
	// leave the heap pointing at pages that were never written.
	var full []core.PageWrite
	var fullRIDs [][]RID // parallel to full: the RIDs packed into each page
	var newPages []core.LPN
	cur := []byte(nil)
	var curLPN core.LPN
	var curRIDs []RID
	openPage := func() {
		curLPN = h.ts.AllocatePage()
		newPages = append(newPages, curLPN)
		cur = make([]byte, pageSize)
		InitPage(cur, PageTypeHeap, h.objectID, uint64(curLPN))
		curRIDs = curRIDs[:0]
	}
	openPage()
	for next < len(recs) {
		rec := recs[next]
		slot, err := InsertRecord(cur, rec)
		if err != nil {
			if !errors.Is(err, ErrPageFull) {
				return rids, now, fmt.Errorf("heap %s: batch insert: %w", h.name, err)
			}
			// Page full: seal it into the write batch and open the next one.
			// The up-front size check guarantees progress on a fresh page.
			full = append(full, core.PageWrite{LPN: curLPN, Data: cur, Hint: h.hint()})
			fullRIDs = append(fullRIDs, append([]RID(nil), curRIDs...))
			openPage()
			continue
		}
		curRIDs = append(curRIDs, RID{LPN: uint64(curLPN), Slot: slot})
		next++
	}

	// Write the sealed pages as one batch; they stripe over the region's dies.
	if len(full) > 0 {
		done, err := h.pool.WriteThrough(now, full)
		if err != nil {
			return rids, now, err
		}
		now = done
	}

	// Park the partial tail page in the pool so future inserts fill it.
	if len(curRIDs) > 0 {
		handle, done, err := h.pool.NewPage(now, curLPN, h.hint())
		if err != nil {
			// The sealed pages are durable: adopt them (without the dead
			// tail LPN) before reporting the failure.
			sealed := 0
			for _, pr := range fullRIDs {
				rids = append(rids, pr...)
				sealed += len(pr)
			}
			h.adoptPages(newPages[:len(newPages)-1], int64(sealed))
			return rids, done, err
		}
		now = done
		handle.Lock()
		copy(handle.Data(), cur)
		handle.MarkDirty()
		handle.Unlock()
		handle.Release()
	} else {
		newPages = newPages[:len(newPages)-1] // the empty tail was never used
	}

	packed := 0
	for _, pr := range fullRIDs {
		rids = append(rids, pr...)
		packed += len(pr)
	}
	rids = append(rids, curRIDs...)
	packed += len(curRIDs)
	h.adoptPages(newPages, int64(packed))
	return rids, now, nil
}

// adoptPages appends materialized pages to the heap's page list, points the
// tail at the last one and accounts the packed records.
func (h *HeapFile) adoptPages(lpns []core.LPN, records int64) {
	if len(lpns) == 0 && records == 0 {
		return
	}
	h.mu.Lock()
	h.pages = append(h.pages, lpns...)
	if len(lpns) > 0 {
		h.lastPage = lpns[len(lpns)-1]
	}
	h.records += records
	h.mu.Unlock()
}

// GetBatch returns copies of the records identified by rids, in order.  The
// pages involved are fetched through the buffer pool's batched path, so cold
// pages on different dies are read concurrently in virtual time.
func (h *HeapFile) GetBatch(now sim.Time, rids []RID) ([][]byte, sim.Time, error) {
	out := make([][]byte, len(rids))
	if len(rids) == 0 {
		return out, now, nil
	}
	// One fetch per distinct page, preserving first-use order.
	lpns := make([]core.LPN, 0, len(rids))
	pageOf := make(map[core.LPN]int, len(rids))
	for _, rid := range rids {
		lpn := core.LPN(rid.LPN)
		if _, ok := pageOf[lpn]; !ok {
			pageOf[lpn] = len(lpns)
			lpns = append(lpns, lpn)
		}
	}
	handles, done, err := h.pool.FetchMany(now, lpns, h.hint())
	if err != nil {
		return nil, done, err
	}
	now = done
	defer func() {
		for _, hd := range handles {
			hd.Release()
		}
	}()
	for i, rid := range rids {
		hd := handles[pageOf[core.LPN(rid.LPN)]]
		hd.RLock()
		rec, rerr := ReadRecord(hd.Data(), rid.Slot)
		hd.RUnlock()
		if rerr != nil {
			return nil, now, fmt.Errorf("heap %s: %w (%v)", h.name, ErrNotFound, rerr)
		}
		out[i] = rec
	}
	return out, now, nil
}

// tryInsertInto attempts an insert into a specific page; ok is false when the
// page has no room.
func (h *HeapFile) tryInsertInto(now sim.Time, lpn core.LPN, rec []byte) (RID, sim.Time, bool, error) {
	handle, done, err := h.pool.Fetch(now, lpn, h.hint())
	if err != nil {
		return RID{}, done, false, err
	}
	defer handle.Release()
	handle.Lock()
	defer handle.Unlock()
	if FreeSpace(handle.Data()) < len(rec) {
		return RID{}, done, false, nil
	}
	slot, err := InsertRecord(handle.Data(), rec)
	if err != nil {
		if errors.Is(err, ErrPageFull) {
			return RID{}, done, false, nil
		}
		return RID{}, done, false, err
	}
	handle.MarkDirty()
	h.mu.Lock()
	h.records++
	h.mu.Unlock()
	return RID{LPN: uint64(lpn), Slot: slot}, done, true, nil
}

// Get returns a copy of the record identified by rid.
func (h *HeapFile) Get(now sim.Time, rid RID) ([]byte, sim.Time, error) {
	handle, done, err := h.pool.Fetch(now, core.LPN(rid.LPN), h.hint())
	if err != nil {
		return nil, done, err
	}
	defer handle.Release()
	handle.RLock()
	defer handle.RUnlock()
	rec, err := ReadRecord(handle.Data(), rid.Slot)
	if err != nil {
		return nil, done, fmt.Errorf("heap %s: %w (%v)", h.name, ErrNotFound, err)
	}
	return rec, done, nil
}

// Update replaces the record identified by rid in place.
func (h *HeapFile) Update(now sim.Time, rid RID, rec []byte) (sim.Time, error) {
	handle, done, err := h.pool.Fetch(now, core.LPN(rid.LPN), h.hint())
	if err != nil {
		return done, err
	}
	defer handle.Release()
	handle.Lock()
	defer handle.Unlock()
	if err := UpdateRecord(handle.Data(), rid.Slot, rec); err != nil {
		return done, fmt.Errorf("heap %s: update %v: %w", h.name, rid, err)
	}
	handle.MarkDirty()
	return done, nil
}

// Delete removes the record identified by rid.
func (h *HeapFile) Delete(now sim.Time, rid RID) (sim.Time, error) {
	handle, done, err := h.pool.Fetch(now, core.LPN(rid.LPN), h.hint())
	if err != nil {
		return done, err
	}
	defer handle.Release()
	handle.Lock()
	defer handle.Unlock()
	if err := DeleteRecord(handle.Data(), rid.Slot); err != nil {
		return done, fmt.Errorf("heap %s: delete %v: %w", h.name, rid, err)
	}
	handle.MarkDirty()
	h.mu.Lock()
	if h.records > 0 {
		h.records--
	}
	h.mu.Unlock()
	return done, nil
}

// Scan calls fn for every live record in the heap, in page order.  Returning
// false stops the scan.  It returns the caller's advanced virtual time.
func (h *HeapFile) Scan(now sim.Time, fn func(rid RID, rec []byte) bool) (sim.Time, error) {
	for _, lpn := range h.Pages() {
		handle, done, err := h.pool.Fetch(now, lpn, h.hint())
		if err != nil {
			return done, err
		}
		now = done
		stop := false
		handle.RLock()
		err = IterateRecords(handle.Data(), func(slot uint16, rec []byte) bool {
			cp := make([]byte, len(rec))
			copy(cp, rec)
			if !fn(RID{LPN: uint64(lpn), Slot: slot}, cp) {
				stop = true
				return false
			}
			return true
		})
		handle.RUnlock()
		handle.Release()
		if err != nil {
			return now, err
		}
		if stop {
			break
		}
	}
	return now, nil
}
