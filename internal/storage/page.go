// Package storage implements the DBMS physical layout used by the
// reproduction: slotted pages, record identifiers, heap files, extents and
// tablespaces.  A tablespace is bound to a NoFTL region (the paper's §2
// coupling of logical storage structures to regions); every page allocated
// from the tablespace carries the region as its placement hint.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Page type tags stored in the page header.
const (
	PageTypeFree      uint8 = 0
	PageTypeHeap      uint8 = 1
	PageTypeBTreeLeaf uint8 = 2
	PageTypeBTreeNode uint8 = 3
	PageTypeMeta      uint8 = 4
	PageTypeLog       uint8 = 5
)

// Slotted page layout constants.
const (
	pageMagic      uint16 = 0x4E50 // "NP"
	PageHeaderSize        = 32
	slotSize              = 4
	// deletedSlotOffset marks a slot whose record has been deleted.
	deletedSlotOffset uint16 = 0xFFFF
)

// Errors returned by the slotted-page codec.
var (
	// ErrPageFull reports that a record does not fit into the page.
	ErrPageFull = errors.New("storage: page full")
	// ErrBadSlot reports an access to a slot that does not exist or whose
	// record has been deleted.
	ErrBadSlot = errors.New("storage: invalid slot")
	// ErrRecordTooLarge reports a record that can never fit into a page.
	ErrRecordTooLarge = errors.New("storage: record larger than page payload")
	// ErrBadPage reports a buffer that is not a valid slotted page.
	ErrBadPage = errors.New("storage: not a valid slotted page")
	// ErrSizeChange reports an in-place update whose new record no longer
	// fits into the page.
	ErrSizeChange = errors.New("storage: updated record does not fit")
)

// Header field offsets.
const (
	offMagic     = 0
	offPageType  = 2
	offFlags     = 3
	offObjectID  = 4
	offLPN       = 8
	offLSN       = 16
	offSlotCount = 24
	offFreeStart = 26
	offFreeEnd   = 28
)

// InitPage formats buf as an empty slotted page of the given type belonging
// to the given object.
func InitPage(buf []byte, pageType uint8, objectID uint32, lpn uint64) {
	for i := range buf {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint16(buf[offMagic:], pageMagic)
	buf[offPageType] = pageType
	binary.LittleEndian.PutUint32(buf[offObjectID:], objectID)
	binary.LittleEndian.PutUint64(buf[offLPN:], lpn)
	binary.LittleEndian.PutUint16(buf[offSlotCount:], 0)
	binary.LittleEndian.PutUint16(buf[offFreeStart:], PageHeaderSize)
	binary.LittleEndian.PutUint16(buf[offFreeEnd:], uint16(len(buf)))
}

// IsFormatted reports whether buf carries the slotted-page magic.
func IsFormatted(buf []byte) bool {
	return len(buf) >= PageHeaderSize && binary.LittleEndian.Uint16(buf[offMagic:]) == pageMagic
}

// PageType returns the page type tag.
func PageType(buf []byte) uint8 { return buf[offPageType] }

// PageObjectID returns the owning object's id.
func PageObjectID(buf []byte) uint32 { return binary.LittleEndian.Uint32(buf[offObjectID:]) }

// PageLPN returns the page's own logical page number.
func PageLPN(buf []byte) uint64 { return binary.LittleEndian.Uint64(buf[offLPN:]) }

// PageLSN returns the log sequence number of the last change to the page.
func PageLSN(buf []byte) uint64 { return binary.LittleEndian.Uint64(buf[offLSN:]) }

// SetPageLSN stores the log sequence number of the last change to the page.
func SetPageLSN(buf []byte, lsn uint64) { binary.LittleEndian.PutUint64(buf[offLSN:], lsn) }

// SlotCount returns the number of slots (including deleted ones).
func SlotCount(buf []byte) int {
	return int(binary.LittleEndian.Uint16(buf[offSlotCount:]))
}

func freeStart(buf []byte) int { return int(binary.LittleEndian.Uint16(buf[offFreeStart:])) }
func freeEnd(buf []byte) int   { return int(binary.LittleEndian.Uint16(buf[offFreeEnd:])) }

func setSlotCount(buf []byte, n int) { binary.LittleEndian.PutUint16(buf[offSlotCount:], uint16(n)) }
func setFreeStart(buf []byte, n int) { binary.LittleEndian.PutUint16(buf[offFreeStart:], uint16(n)) }
func setFreeEnd(buf []byte, n int)   { binary.LittleEndian.PutUint16(buf[offFreeEnd:], uint16(n)) }

func slotOffsetPos(slot int) int { return PageHeaderSize + slot*slotSize }

func readSlot(buf []byte, slot int) (off, length uint16) {
	p := slotOffsetPos(slot)
	return binary.LittleEndian.Uint16(buf[p:]), binary.LittleEndian.Uint16(buf[p+2:])
}

func writeSlot(buf []byte, slot int, off, length uint16) {
	p := slotOffsetPos(slot)
	binary.LittleEndian.PutUint16(buf[p:], off)
	binary.LittleEndian.PutUint16(buf[p+2:], length)
}

// FreeSpace returns the number of payload bytes that can still be inserted
// as a single new record (accounting for its slot entry).
func FreeSpace(buf []byte) int {
	if !IsFormatted(buf) {
		return 0
	}
	contiguous := freeEnd(buf) - freeStart(buf) - slotSize*SlotCount(buf)
	free := contiguous + deletedBytes(buf)
	free -= slotSize // the new record needs its own slot
	if free < 0 {
		return 0
	}
	return free
}

// deletedBytes sums the payload bytes of deleted records (reclaimable by
// compaction).
func deletedBytes(buf []byte) int {
	total := 0
	for s := 0; s < SlotCount(buf); s++ {
		off, length := readSlot(buf, s)
		if off == deletedSlotOffset {
			total += int(length)
		}
	}
	return total
}

// NumRecords returns the number of live (non-deleted) records.
func NumRecords(buf []byte) int {
	n := 0
	for s := 0; s < SlotCount(buf); s++ {
		if off, _ := readSlot(buf, s); off != deletedSlotOffset {
			n++
		}
	}
	return n
}

// InsertRecord stores rec in the page and returns its slot number.  Deleted
// slots are reused and the page is compacted when the free space is
// fragmented.
func InsertRecord(buf []byte, rec []byte) (uint16, error) {
	if !IsFormatted(buf) {
		return 0, ErrBadPage
	}
	if len(rec) > len(buf)-PageHeaderSize-slotSize {
		return 0, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(rec))
	}
	// Find a reusable slot (deleted) or plan to append a new one.
	slot := -1
	for s := 0; s < SlotCount(buf); s++ {
		if off, _ := readSlot(buf, s); off == deletedSlotOffset {
			slot = s
			break
		}
	}
	newSlot := slot < 0
	needed := len(rec)
	if newSlot {
		needed += slotSize
	}
	contiguous := freeEnd(buf) - freeStart(buf) - slotSize*SlotCount(buf)
	if contiguous < needed {
		if contiguous+deletedBytes(buf) < needed {
			return 0, ErrPageFull
		}
		compact(buf)
		contiguous = freeEnd(buf) - freeStart(buf) - slotSize*SlotCount(buf)
		if contiguous < needed {
			return 0, ErrPageFull
		}
	}
	if newSlot {
		slot = SlotCount(buf)
		setSlotCount(buf, slot+1)
	}
	newEnd := freeEnd(buf) - len(rec)
	copy(buf[newEnd:], rec)
	setFreeEnd(buf, newEnd)
	writeSlot(buf, slot, uint16(newEnd), uint16(len(rec)))
	return uint16(slot), nil
}

// ReadRecord returns a copy of the record in the given slot.
func ReadRecord(buf []byte, slot uint16) ([]byte, error) {
	if !IsFormatted(buf) {
		return nil, ErrBadPage
	}
	if int(slot) >= SlotCount(buf) {
		return nil, fmt.Errorf("%w: slot %d of %d", ErrBadSlot, slot, SlotCount(buf))
	}
	off, length := readSlot(buf, int(slot))
	if off == deletedSlotOffset {
		return nil, fmt.Errorf("%w: slot %d deleted", ErrBadSlot, slot)
	}
	out := make([]byte, length)
	copy(out, buf[off:int(off)+int(length)])
	return out, nil
}

// UpdateRecord replaces the record in the given slot.  The new record may be
// smaller or equal in size; growing beyond the page's free space fails with
// ErrSizeChange.
func UpdateRecord(buf []byte, slot uint16, rec []byte) error {
	if !IsFormatted(buf) {
		return ErrBadPage
	}
	if int(slot) >= SlotCount(buf) {
		return fmt.Errorf("%w: slot %d", ErrBadSlot, slot)
	}
	off, length := readSlot(buf, int(slot))
	if off == deletedSlotOffset {
		return fmt.Errorf("%w: slot %d deleted", ErrBadSlot, slot)
	}
	if len(rec) <= int(length) {
		copy(buf[off:], rec)
		writeSlot(buf, int(slot), off, uint16(len(rec)))
		return nil
	}
	// Relocate within the page: mark old space deleted, insert anew, keep
	// the same slot number.
	writeSlot(buf, int(slot), deletedSlotOffset, length)
	contiguous := freeEnd(buf) - freeStart(buf) - slotSize*SlotCount(buf)
	if contiguous < len(rec) {
		if contiguous+deletedBytes(buf) < len(rec) {
			writeSlot(buf, int(slot), off, length) // restore
			return fmt.Errorf("%w: need %d bytes", ErrSizeChange, len(rec))
		}
		compact(buf)
	}
	newEnd := freeEnd(buf) - len(rec)
	copy(buf[newEnd:], rec)
	setFreeEnd(buf, newEnd)
	writeSlot(buf, int(slot), uint16(newEnd), uint16(len(rec)))
	return nil
}

// DeleteRecord removes the record in the given slot; the slot number may be
// reused by later inserts.
func DeleteRecord(buf []byte, slot uint16) error {
	if !IsFormatted(buf) {
		return ErrBadPage
	}
	if int(slot) >= SlotCount(buf) {
		return fmt.Errorf("%w: slot %d", ErrBadSlot, slot)
	}
	off, length := readSlot(buf, int(slot))
	if off == deletedSlotOffset {
		return fmt.Errorf("%w: slot %d already deleted", ErrBadSlot, slot)
	}
	writeSlot(buf, int(slot), deletedSlotOffset, length)
	return nil
}

// IterateRecords calls fn for every live record in slot order.  Returning
// false stops the iteration.
func IterateRecords(buf []byte, fn func(slot uint16, rec []byte) bool) error {
	if !IsFormatted(buf) {
		return ErrBadPage
	}
	for s := 0; s < SlotCount(buf); s++ {
		off, length := readSlot(buf, s)
		if off == deletedSlotOffset {
			continue
		}
		if !fn(uint16(s), buf[off:int(off)+int(length)]) {
			return nil
		}
	}
	return nil
}

// CheckedRecords returns the live records of buf in slot order, validating
// the slotted structure as it goes: every slot and record byte range must lie
// inside the page.  It stops at the first structural violation and reports
// whether the whole page was consistent.  Recovery uses it to read pages that
// may have been torn or corrupted by a crash, where IterateRecords could walk
// out of bounds.
func CheckedRecords(buf []byte) (recs [][]byte, ok bool) {
	if !IsFormatted(buf) {
		return nil, false
	}
	n := SlotCount(buf)
	if slotOffsetPos(n) > len(buf) {
		return nil, false
	}
	for s := 0; s < n; s++ {
		off, length := readSlot(buf, s)
		if off == deletedSlotOffset {
			continue
		}
		start, end := int(off), int(off)+int(length)
		if start < slotOffsetPos(n) || end > len(buf) {
			return recs, false
		}
		recs = append(recs, buf[start:end])
	}
	return recs, true
}

// compact rewrites the record area so that all live records are contiguous
// at the end of the page and deleted space is reclaimed.
func compact(buf []byte) {
	type live struct {
		slot int
		data []byte
	}
	var records []live
	for s := 0; s < SlotCount(buf); s++ {
		off, length := readSlot(buf, s)
		if off == deletedSlotOffset {
			writeSlot(buf, s, deletedSlotOffset, 0)
			continue
		}
		cp := make([]byte, length)
		copy(cp, buf[off:int(off)+int(length)])
		records = append(records, live{slot: s, data: cp})
	}
	end := len(buf)
	for _, r := range records {
		end -= len(r.data)
		copy(buf[end:], r.data)
		writeSlot(buf, r.slot, uint16(end), uint16(len(r.data)))
	}
	setFreeEnd(buf, end)
}

// RID identifies a record: the logical page it lives on and its slot.
type RID struct {
	LPN  uint64
	Slot uint16
}

// Encode packs the RID into 10 bytes.
func (r RID) Encode() []byte {
	out := make([]byte, 10)
	binary.LittleEndian.PutUint64(out, r.LPN)
	binary.LittleEndian.PutUint16(out[8:], r.Slot)
	return out
}

// DecodeRID unpacks a RID encoded by Encode.
func DecodeRID(b []byte) (RID, error) {
	if len(b) < 10 {
		return RID{}, fmt.Errorf("%w: short RID", ErrBadSlot)
	}
	return RID{
		LPN:  binary.LittleEndian.Uint64(b),
		Slot: binary.LittleEndian.Uint16(b[8:]),
	}, nil
}

func (r RID) String() string { return fmt.Sprintf("rid(%d:%d)", r.LPN, r.Slot) }
