package storage

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"noftl/internal/buffer"
	"noftl/internal/core"
	"noftl/internal/flash"
	"noftl/internal/sim"
)

// testEnv builds the real stack (flash device -> NoFTL manager -> buffer
// pool) so heap and tablespace tests exercise the production write path.
func testEnv(t *testing.T, frames int) (*core.Manager, *buffer.Pool) {
	t.Helper()
	cfg := flash.DefaultConfig()
	cfg.Geometry = flash.Geometry{
		Channels: 2, DiesPerChannel: 2, PlanesPerDie: 1,
		BlocksPerDie: 64, PagesPerBlock: 16, PageSize: 512,
	}
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mgr := core.NewManager(dev, core.DefaultOptions())
	pool := buffer.New(mgr, frames, cfg.Geometry.PageSize, nil)
	return mgr, pool
}

func TestTablespaceAllocation(t *testing.T) {
	mgr, _ := testEnv(t, 8)
	ts := NewTablespace("tsA", core.DefaultRegionID, 4, mgr)
	if ts.Name() != "tsA" || ts.Region() != core.DefaultRegionID || ts.ExtentPages() != 4 {
		t.Fatalf("tablespace fields wrong: %v", ts)
	}
	seen := map[core.LPN]bool{}
	for i := 0; i < 10; i++ {
		lpn := ts.AllocatePage()
		if seen[lpn] {
			t.Fatalf("duplicate LPN %d", lpn)
		}
		seen[lpn] = true
	}
	if ts.AllocatedPages() != 10 {
		t.Fatalf("allocated = %d", ts.AllocatedPages())
	}
	if ts.Extents() != 3 { // 10 pages over 4-page extents
		t.Fatalf("extents = %d", ts.Extents())
	}
	h := ts.Hint(7, flash.FlagHeap)
	if h.ObjectID != 7 || h.Region != core.DefaultRegionID || h.Flags != flash.FlagHeap {
		t.Fatalf("hint = %+v", h)
	}
	if ts.String() == "" {
		t.Fatal("empty string")
	}
	// Default extent size applies when zero is given.
	ts2 := NewTablespace("tsB", 0, 0, mgr)
	if ts2.ExtentPages() != DefaultExtentPages {
		t.Fatalf("default extent = %d", ts2.ExtentPages())
	}
}

func TestHeapInsertGetUpdateDelete(t *testing.T) {
	mgr, pool := testEnv(t, 16)
	ts := NewTablespace("ts", core.DefaultRegionID, 8, mgr)
	h := NewHeapFile("T", 3, ts, pool)
	if h.Name() != "T" || h.ObjectID() != 3 {
		t.Fatal("heap identity wrong")
	}

	now := sim.Time(0)
	var rids []RID
	for i := 0; i < 50; i++ {
		rec := []byte(fmt.Sprintf("record-%03d-%s", i, bytes.Repeat([]byte{'x'}, 20)))
		rid, done, err := h.Insert(now, rec)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		now = done
		rids = append(rids, rid)
	}
	if h.RecordCount() != 50 {
		t.Fatalf("record count = %d", h.RecordCount())
	}
	if h.PageCount() < 2 {
		t.Fatalf("expected multiple pages, got %d", h.PageCount())
	}
	// Point reads.
	for i, rid := range rids {
		rec, done, err := h.Get(now, rid)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		now = done
		if !bytes.HasPrefix(rec, []byte(fmt.Sprintf("record-%03d", i))) {
			t.Fatalf("wrong record %d: %q", i, rec)
		}
	}
	// Update in place.
	upd := []byte(fmt.Sprintf("record-%03d-%s", 7, bytes.Repeat([]byte{'y'}, 20)))
	if _, err := h.Update(now, rids[7], upd); err != nil {
		t.Fatal(err)
	}
	rec, _, err := h.Get(now, rids[7])
	if err != nil || !bytes.Equal(rec, upd) {
		t.Fatalf("update lost: %v", err)
	}
	// Delete.
	if _, err := h.Delete(now, rids[9]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.Get(now, rids[9]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if h.RecordCount() != 49 {
		t.Fatalf("record count after delete = %d", h.RecordCount())
	}
	// Scan sees all live records exactly once.
	seen := map[string]bool{}
	if _, err := h.Scan(now, func(rid RID, rec []byte) bool {
		seen[string(rec[:10])] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 49 {
		t.Fatalf("scan saw %d records", len(seen))
	}
	// Early-stop scan.
	count := 0
	if _, err := h.Scan(now, func(RID, []byte) bool {
		count++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestHeapSurvivesEvictionAndFlush(t *testing.T) {
	// A tiny pool forces evictions so records must round-trip through flash.
	mgr, pool := testEnv(t, 4)
	ts := NewTablespace("ts", core.DefaultRegionID, 8, mgr)
	h := NewHeapFile("T", 3, ts, pool)
	now := sim.Time(0)
	var rids []RID
	for i := 0; i < 200; i++ {
		rec := []byte(fmt.Sprintf("v-%04d-%s", i, bytes.Repeat([]byte{'z'}, 30)))
		rid, done, err := h.Insert(now, rec)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		now = done
		rids = append(rids, rid)
	}
	if _, err := pool.FlushAll(now); err != nil {
		t.Fatal(err)
	}
	st := mgr.Stats()
	if st.HostWrites == 0 {
		t.Fatal("no pages reached flash")
	}
	for i, rid := range rids {
		rec, done, err := h.Get(now, rid)
		if err != nil {
			t.Fatalf("get %d after eviction: %v", i, err)
		}
		now = done
		if !bytes.HasPrefix(rec, []byte(fmt.Sprintf("v-%04d", i))) {
			t.Fatalf("record %d corrupted: %q", i, rec)
		}
	}
	if now <= 0 {
		t.Fatal("virtual time did not advance")
	}
}

func TestHeapPagesPlacedInHintedRegion(t *testing.T) {
	mgr, pool := testEnv(t, 4)
	hot, err := mgr.CreateRegion(core.RegionSpec{Name: "rgHot", MaxChips: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTablespace("tsHot", hot.ID(), 8, mgr)
	h := NewHeapFile("HOTTBL", 9, ts, pool)
	now := sim.Time(0)
	for i := 0; i < 100; i++ {
		_, done, err := h.Insert(now, bytes.Repeat([]byte{byte(i)}, 40))
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	if _, err := pool.FlushAll(now); err != nil {
		t.Fatal(err)
	}
	st := mgr.Stats()
	hotStats, _ := st.RegionByName("rgHot")
	defStats, _ := st.RegionByName(core.DefaultRegionName)
	if hotStats.HostWrites == 0 {
		t.Fatal("no writes reached the hinted region")
	}
	if defStats.HostWrites != 0 {
		t.Fatalf("writes leaked into the default region: %d", defStats.HostWrites)
	}
}
