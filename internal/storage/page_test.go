package storage

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func newPage(size int) []byte {
	buf := make([]byte, size)
	InitPage(buf, PageTypeHeap, 42, 7)
	return buf
}

func TestInitPageHeader(t *testing.T) {
	buf := newPage(512)
	if !IsFormatted(buf) {
		t.Fatal("page not recognized as formatted")
	}
	if PageType(buf) != PageTypeHeap || PageObjectID(buf) != 42 || PageLPN(buf) != 7 {
		t.Fatalf("header wrong: type=%d obj=%d lpn=%d", PageType(buf), PageObjectID(buf), PageLPN(buf))
	}
	if SlotCount(buf) != 0 || NumRecords(buf) != 0 {
		t.Fatal("fresh page not empty")
	}
	SetPageLSN(buf, 99)
	if PageLSN(buf) != 99 {
		t.Fatal("LSN roundtrip failed")
	}
	if IsFormatted(make([]byte, 512)) {
		t.Fatal("zero page recognized as formatted")
	}
	if IsFormatted(nil) {
		t.Fatal("nil page recognized as formatted")
	}
}

func TestInsertReadUpdateDelete(t *testing.T) {
	buf := newPage(512)
	s1, err := InsertRecord(buf, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := InsertRecord(buf, []byte("world!!"))
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("duplicate slot")
	}
	if NumRecords(buf) != 2 {
		t.Fatalf("NumRecords = %d", NumRecords(buf))
	}
	got, err := ReadRecord(buf, s1)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read s1: %q %v", got, err)
	}
	// In-place update with same/shorter size.
	if err := UpdateRecord(buf, s1, []byte("HELLO")); err != nil {
		t.Fatal(err)
	}
	got, _ = ReadRecord(buf, s1)
	if string(got) != "HELLO" {
		t.Fatalf("after update: %q", got)
	}
	if err := UpdateRecord(buf, s1, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	got, _ = ReadRecord(buf, s1)
	if string(got) != "hi" {
		t.Fatalf("after shrink: %q", got)
	}
	// Growing update relocates within the page.
	if err := UpdateRecord(buf, s1, []byte("a much longer record than before")); err != nil {
		t.Fatal(err)
	}
	got, _ = ReadRecord(buf, s1)
	if string(got) != "a much longer record than before" {
		t.Fatalf("after grow: %q", got)
	}
	// Other record untouched.
	got, _ = ReadRecord(buf, s2)
	if string(got) != "world!!" {
		t.Fatalf("s2 damaged: %q", got)
	}
	// Delete.
	if err := DeleteRecord(buf, s2); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRecord(buf, s2); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("read of deleted slot: %v", err)
	}
	if err := DeleteRecord(buf, s2); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("double delete: %v", err)
	}
	if NumRecords(buf) != 1 {
		t.Fatalf("NumRecords after delete = %d", NumRecords(buf))
	}
	// Deleted slots are reused.
	s3, err := InsertRecord(buf, []byte("reuse"))
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s2 {
		t.Fatalf("slot not reused: got %d want %d", s3, s2)
	}
}

func TestInsertErrors(t *testing.T) {
	buf := newPage(128)
	if _, err := InsertRecord(buf, make([]byte, 500)); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("want ErrRecordTooLarge, got %v", err)
	}
	// Fill the page with 16-byte records until full.
	rec := bytes.Repeat([]byte{1}, 16)
	inserted := 0
	for {
		_, err := InsertRecord(buf, rec)
		if err != nil {
			if !errors.Is(err, ErrPageFull) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		inserted++
		if inserted > 100 {
			t.Fatal("page never filled")
		}
	}
	if inserted == 0 {
		t.Fatal("no record fit in the page")
	}
	// Bad slot and bad page errors.
	if _, err := ReadRecord(buf, 200); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("want ErrBadSlot, got %v", err)
	}
	if err := UpdateRecord(buf, 200, rec); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("want ErrBadSlot, got %v", err)
	}
	if err := DeleteRecord(buf, 200); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("want ErrBadSlot, got %v", err)
	}
	raw := make([]byte, 128)
	if _, err := InsertRecord(raw, rec); !errors.Is(err, ErrBadPage) {
		t.Fatalf("want ErrBadPage, got %v", err)
	}
	if _, err := ReadRecord(raw, 0); !errors.Is(err, ErrBadPage) {
		t.Fatalf("want ErrBadPage, got %v", err)
	}
	if err := IterateRecords(raw, func(uint16, []byte) bool { return true }); !errors.Is(err, ErrBadPage) {
		t.Fatalf("want ErrBadPage, got %v", err)
	}
	if FreeSpace(raw) != 0 {
		t.Fatal("free space of unformatted page")
	}
}

func TestCompactionReclaimsDeletedSpace(t *testing.T) {
	buf := newPage(256)
	rec := bytes.Repeat([]byte{7}, 40)
	var slots []uint16
	for {
		s, err := InsertRecord(buf, rec)
		if err != nil {
			break
		}
		slots = append(slots, s)
	}
	if len(slots) < 3 {
		t.Fatalf("too few records fit: %d", len(slots))
	}
	// Delete every other record, then a record of the same size must fit
	// again (requires compaction because the free space is fragmented).
	for i := 0; i < len(slots); i += 2 {
		if err := DeleteRecord(buf, slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := InsertRecord(buf, rec); err != nil {
		t.Fatalf("insert after deletes failed: %v", err)
	}
	// Remaining odd records are intact.
	for i := 1; i < len(slots); i += 2 {
		got, err := ReadRecord(buf, slots[i])
		if err != nil || !bytes.Equal(got, rec) {
			t.Fatalf("record %d damaged by compaction: %v", i, err)
		}
	}
}

func TestIterateRecords(t *testing.T) {
	buf := newPage(512)
	want := []string{"a", "bb", "ccc"}
	for _, w := range want {
		if _, err := InsertRecord(buf, []byte(w)); err != nil {
			t.Fatal(err)
		}
	}
	s, _ := InsertRecord(buf, []byte("zap"))
	if err := DeleteRecord(buf, s); err != nil {
		t.Fatal(err)
	}
	var got []string
	if err := IterateRecords(buf, func(slot uint16, rec []byte) bool {
		got = append(got, string(rec))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "a" || got[1] != "bb" || got[2] != "ccc" {
		t.Fatalf("iterate = %v", got)
	}
	// Early stop.
	count := 0
	_ = IterateRecords(buf, func(uint16, []byte) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestRIDEncoding(t *testing.T) {
	f := func(lpn uint64, slot uint16) bool {
		r := RID{LPN: lpn, Slot: slot}
		dec, err := DecodeRID(r.Encode())
		return err == nil && dec == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRID([]byte{1, 2}); err == nil {
		t.Fatal("short RID accepted")
	}
	if (RID{LPN: 1, Slot: 2}).String() == "" {
		t.Fatal("empty RID string")
	}
}

// Property: a random sequence of inserts of random sizes either succeeds and
// is readable, or fails with ErrPageFull/ErrRecordTooLarge; successful
// inserts never exceed page capacity and all live records stay intact.
func TestSlottedPageProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		buf := newPage(1024)
		type rec struct {
			slot uint16
			data []byte
		}
		var live []rec
		for i, sz := range sizes {
			n := int(sz)%120 + 1
			data := bytes.Repeat([]byte{byte(i)}, n)
			slot, err := InsertRecord(buf, data)
			if err != nil {
				if errors.Is(err, ErrPageFull) || errors.Is(err, ErrRecordTooLarge) {
					continue
				}
				return false
			}
			live = append(live, rec{slot, data})
		}
		for _, r := range live {
			got, err := ReadRecord(buf, r.slot)
			if err != nil || !bytes.Equal(got, r.data) {
				return false
			}
		}
		return NumRecords(buf) == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
