// Package iosched implements the asynchronous I/O scheduler that sits
// between the NoFTL space manager (or the FTL baseline) and the native flash
// device.
//
// The device model (internal/flash) exposes synchronous commands whose
// virtual-time cost is charged against per-die and per-channel resources.
// Issuing commands one at a time from a single actor therefore serializes
// everything on the actor's own virtual cursor, even when the commands target
// different dies that could proceed in parallel.  The scheduler restores the
// device's parallelism: a batch of requests is dispatched so that requests to
// different dies all start at the caller's current virtual time and overlap,
// while requests to the same die serialize on the die's resource exactly as
// the hardware would (FCFS per die, matching the device's dieRes contention
// model).
//
// Two forms are offered:
//
//   - Submit(now, reqs): dispatch a batch synchronously and return one
//     Completion per request (same order), plus the batch makespan.  This is
//     the form the space manager and buffer pool use (via ReadPages,
//     WritePages and the GC copyback batches).
//   - Enqueue(req) / Wait(now, ticket): build up a batch asynchronously and
//     collect completions later (e.g. a background agent posting work it
//     will harvest at its next wake-up).  Pending requests are dispatched
//     when Flush or Wait is called.  Every ticket must eventually be waited
//     on: uncollected completions are retained indefinitely.
//
// Requests carry a priority class (host reads > host writes > GC/copyback).
// Within one dispatch the per-die queues are drained in priority order, so a
// host read enqueued alongside background GC traffic acquires the die first.
// Priorities do not reach across dispatches: once a batch is dispatched its
// device time is reserved, exactly as hardware cannot abort an in-flight
// program.
package iosched

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"noftl/internal/flash"
	"noftl/internal/metrics"
	"noftl/internal/obs"
	"noftl/internal/sim"
)

// Priority is the scheduling class of a request.  Lower values are served
// first when requests compete for the same die within one dispatch.
type Priority uint8

const (
	// PrioHostRead is the highest class: a transaction is blocked on it.
	PrioHostRead Priority = iota
	// PrioHostWrite covers foreground writes and write-back groups.
	PrioHostWrite
	// PrioGC covers garbage-collection copyback, relocation and erase work.
	PrioGC
	numPriorities
)

// String returns the metric suffix of the priority class.
func (p Priority) String() string {
	switch p {
	case PrioHostRead:
		return "host_read"
	case PrioHostWrite:
		return "host_write"
	case PrioGC:
		return "gc"
	default:
		return "unknown"
	}
}

// Op identifies the flash command a request performs.
type Op uint8

const (
	// OpReadPage reads a full page (data + metadata).
	OpReadPage Op = iota
	// OpReadMeta reads only the OOB metadata of a page.
	OpReadMeta
	// OpProgram programs a page.
	OpProgram
	// OpErase erases a block.
	OpErase
	// OpCopyback copies a page to an erased page on the same die.
	OpCopyback
)

// Request describes one flash command to schedule.
type Request struct {
	// Op selects the command.
	Op Op
	// Addr is the target page of OpReadPage/OpReadMeta/OpProgram and the
	// source page of OpCopyback.
	Addr flash.Addr
	// Dst is the destination page of OpCopyback.
	Dst flash.Addr
	// Block is the target of OpErase.
	Block flash.BlockAddr
	// Buf optionally receives the data of OpReadPage (allocated when nil).
	Buf []byte
	// Data is the payload of OpProgram.
	Data []byte
	// Meta is the OOB metadata of OpProgram.
	Meta flash.PageMeta
	// Priority is the scheduling class.
	Priority Priority
	// Tag is an opaque caller value (e.g. the LPN) carried into the
	// Completion.
	Tag uint64
}

// die returns the die the request occupies.
func (r Request) die() int {
	if r.Op == OpErase {
		return r.Block.Die
	}
	return r.Addr.Die
}

// Completion is the result of one request.
type Completion struct {
	// Op, Priority and Tag are copied from the request.
	Op       Op
	Priority Priority
	Tag      uint64
	// Data is the page read by OpReadPage (nil otherwise or on error).
	Data []byte
	// Meta is the metadata read by OpReadPage/OpReadMeta, or the metadata
	// inherited by the destination of OpCopyback.
	Meta flash.PageMeta
	// Done is the virtual completion time of the request (equal to the
	// submission time when Err is non-nil and the device refused the
	// command without consuming time).
	Done sim.Time
	// Err is the device error, if any.
	Err error
}

// Device is the narrow flash interface the scheduler drives.  *flash.Device
// satisfies it; tests may substitute fakes.
type Device interface {
	Geometry() flash.Geometry
	ReadPage(now sim.Time, addr flash.Addr, buf []byte) ([]byte, flash.PageMeta, sim.Time, error)
	ReadMeta(now sim.Time, addr flash.Addr) (flash.PageMeta, sim.Time, error)
	ProgramPage(now sim.Time, addr flash.Addr, data []byte, meta flash.PageMeta) (sim.Time, error)
	EraseBlock(now sim.Time, b flash.BlockAddr) (sim.Time, error)
	Copyback(now sim.Time, src, dst flash.Addr) (flash.PageMeta, sim.Time, error)
}

// Ticket identifies an asynchronously enqueued request.
type Ticket uint64

// queued is a pending async request.
type queued struct {
	req    Request
	ticket Ticket
	seq    uint64 // enqueue order, to keep per-die FIFO within a priority
}

// Scheduler is the asynchronous I/O scheduler.  It is safe for concurrent
// use.  Submit dispatches lock-free: the device model's virtual-time
// resources (per-die, per-channel) do all contention accounting with their
// own locks, and the scheduler's own counters are atomics, so concurrent
// submitters from independent workers never serialize on the scheduler —
// only on the dies they actually share.  The mutex protects just the
// asynchronous ticket path (Enqueue/Flush/Wait).
type Scheduler struct {
	mu         sync.Mutex // guards pending/results/ticket state only
	dev        Device
	geo        flash.Geometry
	pending    []queued
	nextTicket Ticket
	nextSeq    uint64
	results    map[Ticket]Completion
	busyUntil  []atomic.Int64 // per-die completion horizon (sim.Time ns), CAS-max

	set        *metrics.Set
	batches    *metrics.Counter
	requests   *metrics.Counter
	reqsByPrio [numPriorities]*metrics.Counter
	latByPrio  [numPriorities]*metrics.Histogram
	batchSpan  *metrics.Histogram
	queueDepth *metrics.Gauge
	maxQueue   *metrics.Gauge
	maxBatch   *metrics.Gauge
	gcSteps    *metrics.Counter
	gcStepSpan *metrics.Histogram
	gcStalls   *metrics.Counter

	// Observability hooks (AttachObs).  tracer is nil when tracing is off —
	// the disabled path is one nil compare.  The labeled children are cached
	// per (priority, die) so the dispatch loop never touches the registry's
	// maps.
	tracer       *obs.Tracer
	promReqs     [numPriorities][]*metrics.Counter // [prio][die]
	promLat      [numPriorities]*metrics.Histogram
	promBatches  *metrics.Counter
	promGCSteps  *metrics.Counter
	promGCStalls *metrics.Counter
}

// New creates a scheduler over the device.
func New(dev Device) *Scheduler {
	s := &Scheduler{
		dev:       dev,
		geo:       dev.Geometry(),
		results:   make(map[Ticket]Completion),
		busyUntil: make([]atomic.Int64, dev.Geometry().Dies()),
		set:       metrics.NewSet(),
	}
	s.batches = s.set.Counter("iosched.batches")
	s.requests = s.set.Counter("iosched.requests")
	for p := Priority(0); p < numPriorities; p++ {
		s.reqsByPrio[p] = s.set.Counter("iosched.requests." + p.String())
		s.latByPrio[p] = s.set.Histogram("iosched.latency." + p.String())
	}
	s.batchSpan = s.set.Histogram("iosched.batch_span")
	s.queueDepth = s.set.Gauge("iosched.queue_depth")
	s.maxQueue = s.set.Gauge("iosched.max_queue_depth")
	s.maxBatch = s.set.Gauge("iosched.max_batch_size")
	s.gcSteps = s.set.Counter("iosched.gc_steps")
	s.gcStepSpan = s.set.Histogram("iosched.gc_step_span")
	s.gcStalls = s.set.Counter("iosched.gc_watermark_stalls")
	return s
}

// Metrics returns the scheduler's metric set (queue depth, batch sizes,
// per-priority request counts and latencies).
func (s *Scheduler) Metrics() *metrics.Set { return s.set }

// AttachObs wires the scheduler to the observability plane: flash-command
// trace events go to tr (nil = tracing off, one pointer compare per command)
// and per-die/per-priority labeled families are registered on reg (nil = no
// labeled export).  Call before serving traffic.
func (s *Scheduler) AttachObs(tr *obs.Tracer, reg *metrics.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = tr
	if reg == nil {
		return
	}
	reqs := reg.Counter("noftl_iosched_requests_total",
		"Flash commands dispatched by the I/O scheduler.", "die", "priority")
	lat := reg.Histogram("noftl_iosched_request_latency_seconds",
		"Virtual-time flash command latency by scheduler priority.", "priority")
	dies := s.geo.Dies()
	for p := Priority(0); p < numPriorities; p++ {
		s.promReqs[p] = make([]*metrics.Counter, dies)
		for d := 0; d < dies; d++ {
			s.promReqs[p][d] = reqs.With(strconv.Itoa(d), p.String())
		}
		s.promLat[p] = lat.With(p.String())
	}
	s.promBatches = reg.Counter("noftl_iosched_batches_total",
		"Request batches dispatched by the I/O scheduler.").With()
	s.promGCSteps = reg.Counter("noftl_iosched_gc_steps_total",
		"Background GC steps observed by the scheduler.").With()
	s.promGCStalls = reg.Counter("noftl_iosched_gc_stalls_total",
		"Foreground GC stalls (allocation blocked at the low watermark).").With()
}

// Submit dispatches a batch of requests starting at the caller's virtual time
// and returns one completion per request, in request order, together with the
// batch makespan (the latest completion time; now when the batch is empty).
//
// Requests to different dies overlap in virtual time; requests to the same
// die are served in priority order (FIFO within a class) on the die's
// single-server queue.
//
// Submit never takes the scheduler mutex: concurrent submitters contend only
// on the per-die/per-channel resources of the device model (and then only
// when they target the same die), which is what lets N workers drive the
// device in parallel.  Ordering guarantees hold within one batch; across
// concurrent batches the dies' FCFS queues arbitrate, exactly as the
// hardware would.
func (s *Scheduler) Submit(now sim.Time, reqs []Request) ([]Completion, sim.Time) {
	if len(reqs) == 0 {
		return nil, now
	}
	return s.dispatch(now, reqs)
}

// dispatch issues the batch against the device.  It takes no scheduler-wide
// lock (see Submit); every structure it touches is an atomic or has its own
// finer-grained lock.
func (s *Scheduler) dispatch(now sim.Time, reqs []Request) ([]Completion, sim.Time) {
	// Dispatch order: priority class first, then per-die FIFO.  The index
	// sort is stable so that same-priority requests to one die keep their
	// submission order (required by the NAND sequential-programming
	// constraint for programs to the same block).
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		a, b := order[x], order[y]
		if reqs[a].Priority != reqs[b].Priority {
			return reqs[a].Priority < reqs[b].Priority
		}
		// Stability keeps submission order within (priority, die), which the
		// NAND sequential-programming constraint requires for programs to
		// the same block.
		return reqs[a].die() < reqs[b].die()
	})

	completions := make([]Completion, len(reqs))
	end := now
	for _, i := range order {
		req := reqs[i]
		c := Completion{Op: req.Op, Priority: req.Priority, Tag: req.Tag}
		switch req.Op {
		case OpReadPage:
			c.Data, c.Meta, c.Done, c.Err = s.dev.ReadPage(now, req.Addr, req.Buf)
		case OpReadMeta:
			c.Meta, c.Done, c.Err = s.dev.ReadMeta(now, req.Addr)
		case OpProgram:
			c.Done, c.Err = s.dev.ProgramPage(now, req.Addr, req.Data, req.Meta)
		case OpErase:
			c.Done, c.Err = s.dev.EraseBlock(now, req.Block)
		case OpCopyback:
			c.Meta, c.Done, c.Err = s.dev.Copyback(now, req.Addr, req.Dst)
		default:
			c.Done = now
		}
		if c.Done > end {
			end = c.Done
		}
		if d := req.die(); d >= 0 && d < len(s.busyUntil) {
			for {
				cur := s.busyUntil[d].Load()
				if int64(c.Done) <= cur || s.busyUntil[d].CompareAndSwap(cur, int64(c.Done)) {
					break
				}
			}
		}
		if c.Err == nil {
			s.latByPrio[req.Priority].Observe(c.Done.Sub(now))
			if s.promLat[req.Priority] != nil {
				s.promLat[req.Priority].Observe(c.Done.Sub(now))
			}
		}
		s.reqsByPrio[req.Priority].Inc()
		if d := req.die(); s.promReqs[req.Priority] != nil && d >= 0 && d < len(s.promReqs[req.Priority]) {
			s.promReqs[req.Priority][d].Inc()
		}
		if s.tracer.Enabled(obs.ClassFlash) && c.Err == nil {
			ev := obs.Event{
				Class: obs.ClassFlash,
				Op:    uint8(req.Op),
				Prio:  uint8(req.Priority),
				Die:   int32(req.die()),
				Start: now,
				End:   c.Done,
				A:     int64(req.Tag),
			}
			if req.Op == OpErase {
				ev.Block, ev.Page = int32(req.Block.Block), -1
			} else {
				ev.Block, ev.Page = int32(req.Addr.Block), int32(req.Addr.Page)
			}
			ev.Region = -1
			s.tracer.Record(ev)
		}
		completions[i] = c
	}
	s.batches.Inc()
	if s.promBatches != nil {
		s.promBatches.Inc()
	}
	s.requests.Add(int64(len(reqs)))
	s.maxBatch.SetMax(int64(len(reqs)))
	s.batchSpan.Observe(end.Sub(now))
	return completions, end
}

// Enqueue adds a request to the pending queue without dispatching it and
// returns a ticket to collect its completion with Wait.  Pending requests are
// dispatched by the next Flush or Wait call; dies not targeted by pending
// requests are unaffected.
func (s *Scheduler) Enqueue(req Request) Ticket {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.nextTicket
	s.nextTicket++
	s.pending = append(s.pending, queued{req: req, ticket: t, seq: s.nextSeq})
	s.nextSeq++
	depth := int64(len(s.pending))
	s.queueDepth.Set(depth)
	s.maxQueue.SetMax(depth)
	return t
}

// QueueDepth returns the number of pending (enqueued, not yet dispatched)
// requests.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Flush dispatches every pending request at the given virtual time and
// returns the batch makespan (now when nothing was pending).  Completions are
// retained until collected by Wait.
func (s *Scheduler) Flush(now sim.Time) sim.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked(now)
}

// flushLocked dispatches the pending queue.  Caller holds s.mu.
func (s *Scheduler) flushLocked(now sim.Time) sim.Time {
	if len(s.pending) == 0 {
		return now
	}
	reqs := make([]Request, len(s.pending))
	tickets := make([]Ticket, len(s.pending))
	for i, q := range s.pending {
		reqs[i] = q.req
		tickets[i] = q.ticket
	}
	s.pending = s.pending[:0]
	s.queueDepth.Set(0)
	completions, end := s.dispatch(now, reqs)
	for i, c := range completions {
		s.results[tickets[i]] = c
	}
	return end
}

// Wait returns the completion of the given ticket, dispatching the pending
// queue first if the ticket has not been served yet.  Each ticket may be
// waited on exactly once.  ok is false for an unknown (or already collected)
// ticket.
func (s *Scheduler) Wait(now sim.Time, t Ticket) (Completion, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.results[t]
	if !ok {
		s.flushLocked(now)
		c, ok = s.results[t]
		if !ok {
			return Completion{}, false
		}
	}
	delete(s.results, t)
	return c, true
}

// DieIdleAt returns the virtual time at which the die becomes idle: the
// completion horizon of all work dispatched to it so far.  Background garbage
// collection submits its steps at max(now, DieIdleAt(die)) so that relocation
// work fills the die's idle slots instead of pushing in front of traffic that
// is already accounted on the die.
func (s *Scheduler) DieIdleAt(die int) sim.Time {
	if die < 0 || die >= len(s.busyUntil) {
		return 0
	}
	return sim.Time(s.busyUntil[die].Load())
}

// ObserveGCStep records one bounded background GC step (victim relocation
// and/or erase) of the given virtual-time span in the scheduler's metrics.
func (s *Scheduler) ObserveGCStep(span sim.Duration) {
	s.gcSteps.Inc()
	s.gcStepSpan.Observe(span)
	if s.promGCSteps != nil {
		s.promGCSteps.Inc()
	}
}

// ObserveGCStall records one foreground (blocking) collection: an allocation
// hit the low watermark and had to wait for GC inline.
func (s *Scheduler) ObserveGCStall() {
	s.gcStalls.Inc()
	if s.promGCStalls != nil {
		s.promGCStalls.Inc()
	}
}

// ---- single-request conveniences ----
//
// These keep the space manager's one-page paths on the scheduler (so every
// flash command is accounted in the scheduler's metrics) without forcing
// callers to build batches.

// Read performs one page read at the given priority.
func (s *Scheduler) Read(now sim.Time, addr flash.Addr, buf []byte, prio Priority) ([]byte, flash.PageMeta, sim.Time, error) {
	cs, _ := s.Submit(now, []Request{{Op: OpReadPage, Addr: addr, Buf: buf, Priority: prio}})
	c := cs[0]
	return c.Data, c.Meta, c.Done, c.Err
}

// Program performs one page program at the given priority.
func (s *Scheduler) Program(now sim.Time, addr flash.Addr, data []byte, meta flash.PageMeta, prio Priority) (sim.Time, error) {
	cs, _ := s.Submit(now, []Request{{Op: OpProgram, Addr: addr, Data: data, Meta: meta, Priority: prio}})
	return cs[0].Done, cs[0].Err
}

// Erase performs one block erase at the given priority.
func (s *Scheduler) Erase(now sim.Time, b flash.BlockAddr, prio Priority) (sim.Time, error) {
	cs, _ := s.Submit(now, []Request{{Op: OpErase, Block: b, Priority: prio}})
	return cs[0].Done, cs[0].Err
}

// Copyback performs one on-die page copy at GC priority.
func (s *Scheduler) Copyback(now sim.Time, src, dst flash.Addr) (flash.PageMeta, sim.Time, error) {
	cs, _ := s.Submit(now, []Request{{Op: OpCopyback, Addr: src, Dst: dst, Priority: PrioGC}})
	return cs[0].Meta, cs[0].Done, cs[0].Err
}
