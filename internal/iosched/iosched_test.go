package iosched

import (
	"fmt"
	"sync"
	"testing"

	"noftl/internal/flash"
	"noftl/internal/sim"
)

// testDevice returns a small device with a deterministic geometry: 4
// channels x 2 dies, default SLC timing (read 40µs, program 350µs, erase
// 1.5ms, transfer 10µs).
func testDevice(t testing.TB) *flash.Device {
	t.Helper()
	dev, err := flash.NewDevice(flash.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// program fills pages [0,n) of block 0 on the given die and resets the
// device's virtual-time resources so tests start from an idle device at t=0.
func program(t testing.TB, dev *flash.Device, die, n int) {
	t.Helper()
	payload := make([]byte, dev.Geometry().PageSize)
	now := sim.Time(0)
	for p := 0; p < n; p++ {
		done, err := dev.ProgramPage(now, flash.Addr{Die: die, Block: 0, Page: p}, payload, flash.PageMeta{LPN: uint64(p)})
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
}

func resetTime(dev *flash.Device) { dev.ResetCounters() }

func TestSameDieSerialization(t *testing.T) {
	dev := testDevice(t)
	program(t, dev, 0, 2)
	resetTime(dev)
	s := New(dev)

	cs, end := s.Submit(0, []Request{
		{Op: OpReadPage, Addr: flash.Addr{Die: 0, Block: 0, Page: 0}, Priority: PrioHostRead},
		{Op: OpReadPage, Addr: flash.Addr{Die: 0, Block: 0, Page: 1}, Priority: PrioHostRead},
	})
	for i, c := range cs {
		if c.Err != nil {
			t.Fatalf("read %d: %v", i, c.Err)
		}
	}
	tm := dev.Timing()
	first := sim.Time(0).Add(tm.ReadPage + tm.Transfer)
	if cs[0].Done != first {
		t.Errorf("first read done at %v, want %v", cs[0].Done, first)
	}
	// The second read's sense must wait for the die: it starts when the
	// first sense finishes, so its completion is one full ReadPage later.
	second := first.Add(tm.ReadPage)
	if cs[1].Done != second {
		t.Errorf("second read done at %v, want %v (die serialized)", cs[1].Done, second)
	}
	if end != second {
		t.Errorf("batch makespan %v, want %v", end, second)
	}
}

func TestCrossDieOverlap(t *testing.T) {
	dev := testDevice(t)
	geo := dev.Geometry()
	// One page per die on four dies attached to four distinct channels.
	dies := []int{0, 1, 2, 3}
	for _, d := range dies {
		if geo.ChannelOfDie(d) == geo.ChannelOfDie((d+1)%4) {
			t.Fatalf("test expects dies 0..3 on distinct channels")
		}
	}
	for _, d := range dies {
		program(t, dev, d, 1)
	}
	resetTime(dev)
	s := New(dev)

	var reqs []Request
	for _, d := range dies {
		reqs = append(reqs, Request{Op: OpReadPage, Addr: flash.Addr{Die: d, Block: 0, Page: 0}, Priority: PrioHostRead})
	}
	cs, end := s.Submit(0, reqs)
	tm := dev.Timing()
	single := sim.Time(0).Add(tm.ReadPage + tm.Transfer)
	for i, c := range cs {
		if c.Err != nil {
			t.Fatalf("read %d: %v", i, c.Err)
		}
		if c.Done != single {
			t.Errorf("read on die %d done at %v, want %v (full overlap)", dies[i], c.Done, single)
		}
	}
	if end != single {
		t.Errorf("batch makespan %v, want %v", end, single)
	}
	// The same four reads issued serially (each waiting for the previous)
	// cost four times as much: the batch must beat that.
	serial := sim.Time(0)
	for range dies {
		serial = serial.Add(tm.ReadPage + tm.Transfer)
	}
	if end >= serial {
		t.Errorf("batched makespan %v not better than serial %v", end, serial)
	}
}

func TestPriorityOrdering(t *testing.T) {
	dev := testDevice(t)
	program(t, dev, 0, 2)
	resetTime(dev)
	s := New(dev)

	// A GC copyback is submitted ahead of a host read in the same batch.
	// The host read must acquire the die first.
	cs, _ := s.Submit(0, []Request{
		{Op: OpCopyback, Addr: flash.Addr{Die: 0, Block: 0, Page: 0}, Dst: flash.Addr{Die: 0, Block: 1, Page: 0}, Priority: PrioGC},
		{Op: OpReadPage, Addr: flash.Addr{Die: 0, Block: 0, Page: 1}, Priority: PrioHostRead},
	})
	if cs[0].Err != nil || cs[1].Err != nil {
		t.Fatalf("unexpected errors: %v / %v", cs[0].Err, cs[1].Err)
	}
	tm := dev.Timing()
	wantRead := sim.Time(0).Add(tm.ReadPage + tm.Transfer)
	if cs[1].Done != wantRead {
		t.Errorf("host read done at %v, want %v (must not queue behind GC)", cs[1].Done, wantRead)
	}
	wantCopy := sim.Time(0).Add(tm.ReadPage).Add(tm.ReadPage + tm.ProgramPage)
	if cs[0].Done != wantCopy {
		t.Errorf("copyback done at %v, want %v (after the host read's sense)", cs[0].Done, wantCopy)
	}
}

func TestProgramOrderPreservedWithinBatch(t *testing.T) {
	dev := testDevice(t)
	s := New(dev)
	payload := make([]byte, dev.Geometry().PageSize)
	var reqs []Request
	for p := 0; p < 4; p++ {
		reqs = append(reqs, Request{
			Op:   OpProgram,
			Addr: flash.Addr{Die: 0, Block: 0, Page: p},
			Data: payload, Meta: flash.PageMeta{LPN: uint64(p)},
			Priority: PrioHostWrite,
		})
	}
	cs, _ := s.Submit(0, reqs)
	for i, c := range cs {
		if c.Err != nil {
			t.Fatalf("program page %d: %v (sequential-programming order must be kept)", i, c.Err)
		}
	}
	for i := 1; i < len(cs); i++ {
		if cs[i].Done <= cs[i-1].Done {
			t.Errorf("program %d done %v not after program %d done %v", i, cs[i].Done, i-1, cs[i-1].Done)
		}
	}
}

func TestEnqueueWait(t *testing.T) {
	dev := testDevice(t)
	program(t, dev, 0, 1)
	program(t, dev, 1, 1)
	resetTime(dev)
	s := New(dev)

	t1 := s.Enqueue(Request{Op: OpReadPage, Addr: flash.Addr{Die: 0, Block: 0, Page: 0}, Priority: PrioHostRead, Tag: 100})
	t2 := s.Enqueue(Request{Op: OpReadPage, Addr: flash.Addr{Die: 1, Block: 0, Page: 0}, Priority: PrioHostRead, Tag: 200})
	if got := s.QueueDepth(); got != 2 {
		t.Fatalf("queue depth %d, want 2", got)
	}

	c1, ok := s.Wait(0, t1)
	if !ok || c1.Err != nil {
		t.Fatalf("wait t1: ok=%v err=%v", ok, c1.Err)
	}
	if c1.Tag != 100 {
		t.Errorf("t1 tag %d, want 100", c1.Tag)
	}
	if got := s.QueueDepth(); got != 0 {
		t.Fatalf("queue depth %d after flush, want 0", got)
	}
	// t2 was dispatched by the same flush; both reads overlapped.
	c2, ok := s.Wait(0, t2)
	if !ok || c2.Err != nil {
		t.Fatalf("wait t2: ok=%v err=%v", ok, c2.Err)
	}
	if c2.Done != c1.Done {
		t.Errorf("cross-die async reads done at %v and %v, want equal (overlap)", c1.Done, c2.Done)
	}
	// A ticket can be collected only once.
	if _, ok := s.Wait(0, t2); ok {
		t.Error("second Wait on the same ticket succeeded")
	}
}

func TestSchedulerMetrics(t *testing.T) {
	dev := testDevice(t)
	program(t, dev, 0, 1)
	resetTime(dev)
	s := New(dev)
	s.Submit(0, []Request{{Op: OpReadPage, Addr: flash.Addr{Die: 0, Block: 0, Page: 0}, Priority: PrioHostRead}})
	vals := s.Metrics().CounterValues()
	if vals["iosched.batches"] != 1 {
		t.Errorf("batches = %d, want 1", vals["iosched.batches"])
	}
	if vals["iosched.requests"] != 1 {
		t.Errorf("requests = %d, want 1", vals["iosched.requests"])
	}
	if vals["iosched.requests.host_read"] != 1 {
		t.Errorf("host_read requests = %d, want 1", vals["iosched.requests.host_read"])
	}
	if got := s.Metrics().Histogram("iosched.latency.host_read").Count(); got != 1 {
		t.Errorf("host_read latency observations = %d, want 1", got)
	}
}

// BenchmarkBatchedVsSerialReads demonstrates the scheduler's virtual-time
// win: the same N reads, striped over every die, complete in far less
// simulated time when submitted as one batch than when issued serially.  The
// simulated times are reported as metrics (ns of virtual time per read).
func BenchmarkBatchedVsSerialReads(b *testing.B) {
	dev := testDevice(b)
	geo := dev.Geometry()
	nDies := geo.Dies()
	perDie := 8
	for d := 0; d < nDies; d++ {
		program(b, dev, d, perDie)
	}
	resetTime(dev)
	s := New(dev)

	var reqs []Request
	for p := 0; p < perDie; p++ {
		for d := 0; d < nDies; d++ {
			reqs = append(reqs, Request{Op: OpReadPage, Addr: flash.Addr{Die: d, Block: 0, Page: p}, Priority: PrioHostRead})
		}
	}

	var batched, serial sim.Time
	for i := 0; i < b.N; i++ {
		resetTime(dev)
		_, batched = s.Submit(0, reqs)

		resetTime(dev)
		now := sim.Time(0)
		for _, r := range reqs {
			_, _, done, err := dev.ReadPage(now, r.Addr, nil)
			if err != nil {
				b.Fatal(err)
			}
			now = done
		}
		serial = now
	}
	b.ReportMetric(float64(batched)/float64(len(reqs)), "virt-ns/read-batched")
	b.ReportMetric(float64(serial)/float64(len(reqs)), "virt-ns/read-serial")
	b.ReportMetric(float64(serial)/float64(batched), "speedup-x")
	if batched >= serial {
		b.Fatalf("batched makespan %v not better than serial %v", batched, serial)
	}
}

func TestDieIdleAtTracksDispatchedWork(t *testing.T) {
	dev := testDevice(t)
	program(t, dev, 0, 2)
	resetTime(dev)
	s := New(dev)
	if s.DieIdleAt(0) != 0 || s.DieIdleAt(1) != 0 {
		t.Fatal("fresh scheduler should report every die idle at t=0")
	}
	cs, end := s.Submit(0, []Request{
		{Op: OpReadPage, Addr: flash.Addr{Die: 0, Block: 0, Page: 0}, Priority: PrioHostRead},
		{Op: OpReadPage, Addr: flash.Addr{Die: 0, Block: 0, Page: 1}, Priority: PrioHostRead},
	})
	for _, c := range cs {
		if c.Err != nil {
			t.Fatal(c.Err)
		}
	}
	if got := s.DieIdleAt(0); got != end {
		t.Fatalf("die 0 idle at %v, want batch end %v", got, end)
	}
	if got := s.DieIdleAt(1); got != 0 {
		t.Fatalf("die 1 was never used, idle at %v, want 0", got)
	}
	// Out-of-range dies are reported idle instead of panicking.
	if s.DieIdleAt(-1) != 0 || s.DieIdleAt(10_000) != 0 {
		t.Fatal("out-of-range dies should report idle at 0")
	}
}

func TestGCStepMetrics(t *testing.T) {
	dev := testDevice(t)
	s := New(dev)
	s.ObserveGCStep(100)
	s.ObserveGCStep(300)
	s.ObserveGCStall()
	vals := s.Metrics().CounterValues()
	if vals["iosched.gc_steps"] != 2 {
		t.Fatalf("gc_steps = %d, want 2", vals["iosched.gc_steps"])
	}
	if vals["iosched.gc_watermark_stalls"] != 1 {
		t.Fatalf("gc_watermark_stalls = %d, want 1", vals["iosched.gc_watermark_stalls"])
	}
	if h := s.Metrics().Histogram("iosched.gc_step_span"); h.Count() != 2 {
		t.Fatalf("gc_step_span observations = %d, want 2", h.Count())
	}
}

// TestConcurrentSubmitters drives Submit from many goroutines at once (mixed
// with the async Enqueue/Wait ticket path) and checks the accounting:
// request/batch counters are exact, per-die busy horizons cover all work, and
// every ticket is served.  Run with -race this exercises the lock-free
// dispatch path against the mutex-guarded ticket path.
func TestConcurrentSubmitters(t *testing.T) {
	dev := testDevice(t)
	geo := dev.Geometry()
	for d := 0; d < geo.Dies(); d++ {
		program(t, dev, d, 8)
	}
	resetTime(dev)
	s := New(dev)

	const workers = 8
	const batchesPerWorker = 40
	const reqsPerBatch = 4
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			now := sim.Time(0)
			for b := 0; b < batchesPerWorker; b++ {
				reqs := make([]Request, reqsPerBatch)
				for i := range reqs {
					die := (id + i) % geo.Dies()
					reqs[i] = Request{
						Op:       OpReadPage,
						Addr:     flash.Addr{Die: die, Block: 0, Page: (b + i) % 8},
						Priority: PrioHostRead,
						Tag:      uint64(id*1000 + b),
					}
				}
				cs, end := s.Submit(now, reqs)
				for _, c := range cs {
					if c.Err != nil {
						errCh <- c.Err
						return
					}
					if c.Done > end {
						errCh <- fmt.Errorf("completion %v after makespan %v", c.Done, end)
						return
					}
				}
				now = end
				// Interleave the async ticket path.
				if b%8 == 0 {
					tk := s.Enqueue(Request{
						Op:       OpReadMeta,
						Addr:     flash.Addr{Die: id % geo.Dies(), Block: 0, Page: 0},
						Priority: PrioGC,
					})
					if c, ok := s.Wait(now, tk); !ok {
						errCh <- fmt.Errorf("ticket %d lost", tk)
						return
					} else if c.Err != nil {
						errCh <- c.Err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	const asyncBatches = workers * (batchesPerWorker/8 + (batchesPerWorker%8+7)/8) // ceil not needed; computed below
	_ = asyncBatches
	wantReqs := int64(workers*batchesPerWorker*reqsPerBatch) + int64(workers*5) // 5 async per worker (b=0,8,16,24,32)
	if got := s.requests.Value(); got != wantReqs {
		t.Fatalf("requests = %d, want %d", got, wantReqs)
	}
	if got := s.batches.Value(); got != int64(workers*batchesPerWorker+workers*5) {
		t.Fatalf("batches = %d, want %d", got, workers*batchesPerWorker+workers*5)
	}
	if s.QueueDepth() != 0 {
		t.Fatalf("pending requests leaked: %d", s.QueueDepth())
	}
	// Every die saw work, so every busy horizon must have advanced.
	for d := 0; d < geo.Dies(); d++ {
		if s.DieIdleAt(d) == 0 {
			t.Fatalf("die %d horizon never advanced", d)
		}
	}
}
