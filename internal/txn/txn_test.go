package txn

import (
	"errors"
	"sync"
	"testing"
	"time"

	"noftl/internal/core"
	"noftl/internal/flash"
	"noftl/internal/sim"
	"noftl/internal/wal"
)

func testWAL(t *testing.T) *wal.Log {
	t.Helper()
	cfg := flash.DefaultConfig()
	cfg.Geometry = flash.Geometry{
		Channels: 1, DiesPerChannel: 2, PlanesPerDie: 1,
		BlocksPerDie: 64, PagesPerBlock: 16, PageSize: 512,
	}
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mgr := core.NewManager(dev, core.DefaultOptions())
	return wal.New(mgr, core.Hint{ObjectID: 1}, 512)
}

func TestLockManagerSharedAndExclusive(t *testing.T) {
	lm := NewLockManager(time.Second)
	// Two readers coexist.
	if err := lm.Lock(1, "k", Shared); err != nil {
		t.Fatal(err)
	}
	if err := lm.Lock(2, "k", Shared); err != nil {
		t.Fatal(err)
	}
	// A writer must wait; with a short timeout it gives up.
	short := NewLockManager(50 * time.Millisecond)
	if err := short.Lock(1, "x", Exclusive); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := short.Lock(2, "x", Exclusive)
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("want ErrLockTimeout, got %v", err)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("timeout returned too early")
	}
	if short.Waits() == 0 {
		t.Fatal("wait not counted")
	}
	// Releasing lets the writer in.
	short.ReleaseAll(1, []string{"x"})
	if err := short.Lock(2, "x", Exclusive); err != nil {
		t.Fatalf("lock after release: %v", err)
	}
	// Re-acquiring an already-held lock succeeds, as does upgrading when the
	// transaction is the only reader.
	if err := lm.Lock(1, "k", Shared); err != nil {
		t.Fatal(err)
	}
	lm.ReleaseAll(2, []string{"k"})
	if err := lm.Lock(1, "k", Exclusive); err != nil {
		t.Fatalf("upgrade failed: %v", err)
	}
	if err := lm.Lock(1, "k", Exclusive); err != nil {
		t.Fatalf("re-acquire failed: %v", err)
	}
}

func TestLockManagerBlocksThenGrants(t *testing.T) {
	lm := NewLockManager(2 * time.Second)
	if err := lm.Lock(1, "row", Exclusive); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() {
		acquired <- lm.Lock(2, "row", Exclusive)
	}()
	select {
	case err := <-acquired:
		t.Fatalf("lock granted while held: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	lm.ReleaseAll(1, []string{"row"})
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatalf("lock not granted after release: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never woke up")
	}
}

func TestLockManagerConcurrentCounter(t *testing.T) {
	lm := NewLockManager(5 * time.Second)
	counter := 0
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := lm.Lock(id, "counter", Exclusive); err != nil {
					t.Error(err)
					return
				}
				counter++
				lm.ReleaseAll(id, []string{"counter"})
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	if counter != 1600 {
		t.Fatalf("counter = %d, want 1600 (lost updates)", counter)
	}
}

func TestTxnLifecycle(t *testing.T) {
	log := testWAL(t)
	m := NewManager(NewLockManager(time.Second), log, sim.NewClock())
	tx := m.Begin(0)
	if tx.ID() == 0 || tx.State() != Active {
		t.Fatal("begin state wrong")
	}
	if err := tx.Lock("W:1", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := tx.Lock("W:1", Exclusive); err != nil { // idempotent
		t.Fatal(err)
	}
	tx.Log(wal.RecUpdate, 5, []byte("update W 1"))
	tx.Charge(100 * time.Microsecond)
	tx.AdvanceTo(tx.Now().Add(50 * time.Microsecond))
	done, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 || tx.State() != Committed {
		t.Fatalf("commit: %v state=%v", done, tx.State())
	}
	if tx.ResponseTime() <= 0 {
		t.Fatal("response time not accounted")
	}
	// Commit forces the log.
	if log.FlushedLSN() == 0 {
		t.Fatal("commit did not flush the WAL")
	}
	// Double commit / post-commit operations fail gracefully.
	if _, err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double commit: %v", err)
	}
	if err := tx.Lock("x", Shared); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("lock after commit: %v", err)
	}
	// Another transaction can take the released lock immediately.
	tx2 := m.Begin(done)
	if err := tx2.Lock("W:1", Exclusive); err != nil {
		t.Fatal(err)
	}
	_ = tx2.Abort()
	if tx2.State() != Aborted {
		t.Fatal("abort state wrong")
	}
	_ = tx2.Abort() // idempotent
	if m.Started() != 2 || m.Committed() != 1 || m.Aborted() != 1 {
		t.Fatalf("counters: started=%d committed=%d aborted=%d", m.Started(), m.Committed(), m.Aborted())
	}
	if m.LockManager() == nil {
		t.Fatal("lock manager accessor nil")
	}
}

func TestTxnWithoutWAL(t *testing.T) {
	m := NewManager(nil, nil, nil)
	tx := m.Begin(100)
	tx.Log(wal.RecUpdate, 1, nil) // no-op without a log
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentTransactionsSerializeOnLock(t *testing.T) {
	log := testWAL(t)
	m := NewManager(NewLockManager(5*time.Second), log, sim.NewClock())
	balance := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				tx := m.Begin(0)
				if err := tx.Lock("account:1", Exclusive); err != nil {
					t.Error(err)
					return
				}
				balance++
				tx.Log(wal.RecUpdate, 1, []byte{1})
				if _, err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if balance != 400 {
		t.Fatalf("balance = %d, want 400", balance)
	}
	if m.Committed() != 400 {
		t.Fatalf("commits = %d", m.Committed())
	}
}
