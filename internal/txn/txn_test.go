package txn

import (
	"errors"
	"sync"
	"testing"
	"time"

	"noftl/internal/core"
	"noftl/internal/flash"
	"noftl/internal/sim"
	"noftl/internal/wal"
)

func testWAL(t *testing.T) *wal.Log {
	t.Helper()
	cfg := flash.DefaultConfig()
	cfg.Geometry = flash.Geometry{
		Channels: 1, DiesPerChannel: 2, PlanesPerDie: 1,
		BlocksPerDie: 64, PagesPerBlock: 16, PageSize: 512,
	}
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mgr := core.NewManager(dev, core.DefaultOptions())
	return wal.New(mgr, core.Hint{ObjectID: 1}, 512)
}

func TestLockManagerSharedAndExclusive(t *testing.T) {
	lm := NewLockManager(time.Second)
	// Two readers coexist.
	if err := lm.Lock(1, "k", Shared); err != nil {
		t.Fatal(err)
	}
	if err := lm.Lock(2, "k", Shared); err != nil {
		t.Fatal(err)
	}
	// A writer must wait; with a short timeout it gives up.
	short := NewLockManager(50 * time.Millisecond)
	if err := short.Lock(1, "x", Exclusive); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := short.Lock(2, "x", Exclusive)
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("want ErrLockTimeout, got %v", err)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("timeout returned too early")
	}
	if short.Waits() == 0 {
		t.Fatal("wait not counted")
	}
	// Releasing lets the writer in.
	short.ReleaseAll(1, []string{"x"})
	if err := short.Lock(2, "x", Exclusive); err != nil {
		t.Fatalf("lock after release: %v", err)
	}
	// Re-acquiring an already-held lock succeeds, as does upgrading when the
	// transaction is the only reader.
	if err := lm.Lock(1, "k", Shared); err != nil {
		t.Fatal(err)
	}
	lm.ReleaseAll(2, []string{"k"})
	if err := lm.Lock(1, "k", Exclusive); err != nil {
		t.Fatalf("upgrade failed: %v", err)
	}
	if err := lm.Lock(1, "k", Exclusive); err != nil {
		t.Fatalf("re-acquire failed: %v", err)
	}
}

func TestLockManagerBlocksThenGrants(t *testing.T) {
	lm := NewLockManager(2 * time.Second)
	if err := lm.Lock(1, "row", Exclusive); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() {
		acquired <- lm.Lock(2, "row", Exclusive)
	}()
	select {
	case err := <-acquired:
		t.Fatalf("lock granted while held: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	lm.ReleaseAll(1, []string{"row"})
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatalf("lock not granted after release: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never woke up")
	}
}

func TestLockManagerConcurrentCounter(t *testing.T) {
	lm := NewLockManager(5 * time.Second)
	counter := 0
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := lm.Lock(id, "counter", Exclusive); err != nil {
					t.Error(err)
					return
				}
				counter++
				lm.ReleaseAll(id, []string{"counter"})
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	if counter != 1600 {
		t.Fatalf("counter = %d, want 1600 (lost updates)", counter)
	}
}

func TestTxnLifecycle(t *testing.T) {
	log := testWAL(t)
	m := NewManager(NewLockManager(time.Second), log, sim.NewClock())
	tx := m.Begin(0)
	if tx.ID() == 0 || tx.State() != Active {
		t.Fatal("begin state wrong")
	}
	if err := tx.Lock("W:1", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := tx.Lock("W:1", Exclusive); err != nil { // idempotent
		t.Fatal(err)
	}
	tx.Log(wal.RecUpdate, 5, []byte("update W 1"))
	tx.Charge(100 * time.Microsecond)
	tx.AdvanceTo(tx.Now().Add(50 * time.Microsecond))
	done, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 || tx.State() != Committed {
		t.Fatalf("commit: %v state=%v", done, tx.State())
	}
	if tx.ResponseTime() <= 0 {
		t.Fatal("response time not accounted")
	}
	// Commit forces the log.
	if log.FlushedLSN() == 0 {
		t.Fatal("commit did not flush the WAL")
	}
	// Double commit / post-commit operations fail gracefully.
	if _, err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double commit: %v", err)
	}
	if err := tx.Lock("x", Shared); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("lock after commit: %v", err)
	}
	// Another transaction can take the released lock immediately.
	tx2 := m.Begin(done)
	if err := tx2.Lock("W:1", Exclusive); err != nil {
		t.Fatal(err)
	}
	_ = tx2.Abort()
	if tx2.State() != Aborted {
		t.Fatal("abort state wrong")
	}
	_ = tx2.Abort() // idempotent
	if m.Started() != 2 || m.Committed() != 1 || m.Aborted() != 1 {
		t.Fatalf("counters: started=%d committed=%d aborted=%d", m.Started(), m.Committed(), m.Aborted())
	}
	if m.LockManager() == nil {
		t.Fatal("lock manager accessor nil")
	}
}

func TestTxnWithoutWAL(t *testing.T) {
	m := NewManager(nil, nil, nil)
	tx := m.Begin(100)
	tx.Log(wal.RecUpdate, 1, nil) // no-op without a log
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentTransactionsSerializeOnLock(t *testing.T) {
	log := testWAL(t)
	m := NewManager(NewLockManager(5*time.Second), log, sim.NewClock())
	balance := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				tx := m.Begin(0)
				if err := tx.Lock("account:1", Exclusive); err != nil {
					t.Error(err)
					return
				}
				balance++
				tx.Log(wal.RecUpdate, 1, []byte{1})
				if _, err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if balance != 400 {
		t.Fatalf("balance = %d, want 400", balance)
	}
	if m.Committed() != 400 {
		t.Fatalf("commits = %d", m.Committed())
	}
}

// TestLockVirtualTimeoutDeterministic checks that LockAt's timeout is driven
// by virtual time on the key, not by host speed: a waiter with a 1 ms virtual
// budget times out exactly when releases push the key's virtual frontier past
// its deadline, and survives any amount of wall-clock waiting short of that.
func TestLockVirtualTimeoutDeterministic(t *testing.T) {
	lm := NewLockManager(time.Millisecond) // 1 ms of virtual time
	lm.SetWallFallback(30 * time.Second)   // fallback far away: virtual path must fire

	if err := lm.LockAt(0, 1, "k", Exclusive); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		// Waiter at virtual time 0: virtual deadline is 1 ms.
		errCh <- lm.LockAt(0, 2, "k", Exclusive)
	}()
	for lm.Stats().Waiting == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	// Holder releases at virtual time 0.5 ms and a third txn cycles the lock,
	// releasing at 0.9 ms: frontier < deadline, waiter 2 must simply win the
	// lock (it is granted on the release wake-up, not timed out).
	lm.ReleaseAllAt(sim.Time(500_000), 1, []string{"k"})
	if err := <-errCh; err != nil {
		t.Fatalf("waiter timed out before its virtual deadline: %v", err)
	}
	lm.ReleaseAllAt(sim.Time(900_000), 2, []string{"k"})

	// Now the deterministic timeout: holder takes the lock and only releases
	// at virtual time 2.1 ms, past the waiter's 0.9+1.0=1.9 ms deadline.
	if err := lm.LockAt(sim.Time(900_000), 3, "k", Exclusive); err != nil {
		t.Fatal(err)
	}
	go func() {
		errCh <- lm.LockAt(sim.Time(900_000), 4, "k", Shared)
	}()
	for lm.Stats().Waiting == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	// Another key's release must not wake-or-time-out the waiter on "k".
	lm.ReleaseAllAt(sim.Time(5_000_000), 9, []string{"other"})
	select {
	case err := <-errCh:
		t.Fatalf("waiter finished on unrelated release: %v", err)
	case <-time.After(2 * time.Millisecond):
	}
	// Holder 3 keeps the lock but a second waiter cycles a *shared* grant?
	// No: release by 3 at 2.1 ms grants the lock to waiter 4 (grant wins over
	// timeout when the lock became available on the same wake-up).
	lm.ReleaseAllAt(sim.Time(2_100_000), 3, []string{"k"})
	if err := <-errCh; err != nil {
		t.Fatalf("waiter should be granted on release even past deadline: %v", err)
	}
	lm.ReleaseAllAt(sim.Time(2_100_000), 4, []string{"k"})

	// True timeout: holder 5 keeps the lock while releases of the SAME key by
	// a shared cohort push the frontier past the waiter's deadline.
	if err := lm.LockAt(sim.Time(0), 5, "k2", Shared); err != nil {
		t.Fatal(err)
	}
	if err := lm.LockAt(sim.Time(0), 6, "k2", Shared); err != nil {
		t.Fatal(err)
	}
	go func() {
		errCh <- lm.LockAt(sim.Time(0), 7, "k2", Exclusive)
	}()
	for lm.Stats().Waiting == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	// Reader 6 releases at 2 ms; reader 5 still holds, so the writer cannot
	// be granted — and the frontier (2 ms) is past its 1 ms deadline.
	lm.ReleaseAllAt(sim.Time(2_000_000), 6, []string{"k2"})
	if err := <-errCh; !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("want ErrLockTimeout, got %v", err)
	}
	st := lm.Stats()
	if st.Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", st.Timeouts)
	}
	if st.Waits < 3 {
		t.Fatalf("waits = %d, want >= 3", st.Waits)
	}
}

// TestLockManagerShardedStress hammers the sharded lock table from many
// goroutines over many keys, mixing shared and exclusive modes, upgrades and
// releases.  Run with -race this exercises the per-shard mutexes.
func TestLockManagerShardedStress(t *testing.T) {
	lm := NewLockManager(200 * time.Millisecond)
	const workers = 8
	const rounds = 300
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			r := sim.NewRand(id + 1)
			now := sim.Time(0)
			for i := 0; i < rounds; i++ {
				held := make([]string, 0, 4)
				// Take up to 3 locks in ascending key order (no deadlocks).
				lo := r.Intn(len(keys) - 3)
				for j := lo; j < lo+1+r.Intn(3); j++ {
					mode := Shared
					if r.Intn(2) == 0 {
						mode = Exclusive
					}
					if err := lm.LockAt(now, id+1, keys[j], mode); err != nil {
						errCh <- err
						return
					}
					held = append(held, keys[j])
				}
				now = now.Add(sim.Duration(r.Intn(1000)) + 1)
				lm.ReleaseAllAt(now, id+1, held)
			}
		}(uint64(w))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := lm.Stats()
	if st.Held != 0 || st.Waiting != 0 {
		t.Fatalf("locks leaked: %+v", st)
	}
	if len(st.ShardWaits) != lockShards {
		t.Fatalf("shard wait vector has %d entries, want %d", len(st.ShardWaits), lockShards)
	}
	var shardSum int64
	for _, n := range st.ShardWaits {
		shardSum += n
	}
	if shardSum != st.Waits {
		t.Fatalf("shard waits sum %d != total waits %d", shardSum, st.Waits)
	}
}

// TestLockWallFallbackCatchesDeadlock checks the wall-clock safety net: when
// no release ever advances the key's virtual frontier (a deadlock), the
// waiter still gets ErrLockTimeout after the fallback.
func TestLockWallFallbackCatchesDeadlock(t *testing.T) {
	lm := NewLockManager(time.Millisecond)
	lm.SetWallFallback(20 * time.Millisecond)
	if err := lm.LockAt(0, 1, "dead", Exclusive); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := lm.LockAt(0, 2, "dead", Exclusive)
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("want ErrLockTimeout, got %v", err)
	}
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Fatalf("fallback fired too early: %v", el)
	}
}
