// Package txn provides the transaction manager of the reproduction's storage
// engine: transaction identities, strict two-phase locking on logical keys,
// commit/abort bookkeeping and per-transaction virtual-time accounting.
//
// Lock waits are real (goroutine blocking); the virtual-time model charges
// only I/O and CPU costs to transaction response times, which is sufficient
// for the paper's experiments (they compare storage configurations, not
// concurrency-control schemes).  TPC-C transactions acquire their locks in a
// canonical order, so deadlocks cannot form; a lock-wait timeout is provided
// as a safety net and surfaces as ErrLockTimeout.
package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"noftl/internal/sim"
	"noftl/internal/wal"
)

// LockMode is the requested access mode for a key.
type LockMode int

// Lock modes.
const (
	Shared LockMode = iota
	Exclusive
)

// Errors returned by the transaction manager.
var (
	// ErrLockTimeout reports a lock wait that exceeded the configured
	// timeout (treated as a deadlock victim).
	ErrLockTimeout = errors.New("txn: lock wait timeout")
	// ErrTxnDone reports an operation on a committed or aborted transaction.
	ErrTxnDone = errors.New("txn: transaction already finished")
)

// lockState is the state of one lockable key.
type lockState struct {
	cond    *sync.Cond
	readers map[uint64]int // txn id -> hold count
	writer  uint64         // txn id holding exclusively, 0 if none
	wcount  int
	waiting int // transactions currently blocked on this key
}

// LockManager implements strict two-phase locking over string keys.
type LockManager struct {
	mu      sync.Mutex
	locks   map[string]*lockState
	timeout time.Duration
	waits   int64
}

// NewLockManager creates a lock manager with the given wait timeout (zero
// selects one second).
func NewLockManager(timeout time.Duration) *LockManager {
	if timeout <= 0 {
		timeout = time.Second
	}
	return &LockManager{locks: make(map[string]*lockState), timeout: timeout}
}

// Waits returns the number of lock acquisitions that had to wait.
func (lm *LockManager) Waits() int64 { return atomic.LoadInt64(&lm.waits) }

func (lm *LockManager) state(key string) *lockState {
	ls, ok := lm.locks[key]
	if !ok {
		ls = &lockState{readers: make(map[uint64]int)}
		ls.cond = sync.NewCond(&lm.mu)
		lm.locks[key] = ls
	}
	return ls
}

// Lock acquires key in the given mode on behalf of txnID, blocking until the
// lock is granted or the timeout expires.  Re-acquiring a lock already held
// (including upgrading shared to exclusive when the transaction is the sole
// reader) succeeds.
func (lm *LockManager) Lock(txnID uint64, key string, mode LockMode) error {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	ls := lm.state(key)
	deadline := time.Now().Add(lm.timeout)
	waited := false
	for {
		holder := ls.writer == txnID || ls.readers[txnID] > 0
		// A newly arriving request yields to transactions that are already
		// waiting (simple fairness, so a hot lock cannot starve a waiter),
		// unless the transaction already holds the lock.
		barge := !holder && !waited && ls.waiting > 0
		if !barge && lm.grantable(ls, txnID, mode) {
			if mode == Exclusive {
				ls.writer = txnID
				ls.wcount++
				delete(ls.readers, txnID) // upgrade consumes the shared hold
			} else {
				ls.readers[txnID]++
			}
			if waited {
				ls.waiting--
			}
			return nil
		}
		if time.Now().After(deadline) {
			if waited {
				ls.waiting--
			}
			return fmt.Errorf("%w: txn %d key %q", ErrLockTimeout, txnID, key)
		}
		if !waited {
			atomic.AddInt64(&lm.waits, 1)
			ls.waiting++
			waited = true
		}
		// Wake ourselves up at the deadline so the timeout is honoured even
		// if nobody releases the lock.
		timer := time.AfterFunc(time.Until(deadline), ls.cond.Broadcast)
		ls.cond.Wait()
		timer.Stop()
	}
}

// grantable reports whether txnID may take key in mode.  Caller holds lm.mu.
func (lm *LockManager) grantable(ls *lockState, txnID uint64, mode LockMode) bool {
	if mode == Shared {
		return ls.writer == 0 || ls.writer == txnID
	}
	// Exclusive: no other writer and no other readers.
	if ls.writer != 0 && ls.writer != txnID {
		return false
	}
	for r := range ls.readers {
		if r != txnID {
			return false
		}
	}
	return true
}

// ReleaseAll releases every lock held by txnID.
func (lm *LockManager) ReleaseAll(txnID uint64, keys []string) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for _, key := range keys {
		ls, ok := lm.locks[key]
		if !ok {
			continue
		}
		// ReleaseAll is only called at commit/abort (strict two-phase
		// locking), so every hold the transaction has on the key is dropped
		// at once, however many times it re-acquired the lock.
		if ls.writer == txnID {
			ls.writer = 0
			ls.wcount = 0
		}
		delete(ls.readers, txnID)
		ls.cond.Broadcast()
	}
}

// State tracks a transaction's lifecycle.
type State int

// Transaction states.
const (
	Active State = iota
	Committed
	Aborted
)

// Manager creates transactions, hands out ids and coordinates the WAL.
type Manager struct {
	nextID  atomic.Uint64
	lm      *LockManager
	log     *wal.Log
	clock   *sim.Clock
	started atomic.Int64
	commits atomic.Int64
	aborts  atomic.Int64
}

// NewManager creates a transaction manager.  log may be nil (no logging) and
// clock may be nil (no global time publication).
func NewManager(lm *LockManager, log *wal.Log, clock *sim.Clock) *Manager {
	if lm == nil {
		lm = NewLockManager(0)
	}
	return &Manager{lm: lm, log: log, clock: clock}
}

// LockManager returns the shared lock manager.
func (m *Manager) LockManager() *LockManager { return m.lm }

// Started, Committed and Aborted return lifetime counters.
func (m *Manager) Started() int64   { return m.started.Load() }
func (m *Manager) Committed() int64 { return m.commits.Load() }
func (m *Manager) Aborted() int64   { return m.aborts.Load() }

// Txn is one transaction.  It is owned by a single goroutine (a TPC-C
// terminal); it is not safe for concurrent use.
type Txn struct {
	id      uint64
	mgr     *Manager
	cursor  *sim.Cursor
	state   State
	locks   []string
	lockSet map[string]bool
	start   sim.Time
}

// Begin starts a transaction whose virtual clock begins at now.
func (m *Manager) Begin(now sim.Time) *Txn {
	id := m.nextID.Add(1)
	m.started.Add(1)
	cur := sim.NewCursor(m.clock)
	cur.SetTo(now)
	t := &Txn{id: id, mgr: m, cursor: cur, state: Active, lockSet: make(map[string]bool), start: now}
	if m.log != nil {
		_, _ = m.log.Append(wal.RecBegin, id, 0, nil)
	}
	return t
}

// ID returns the transaction id.
func (t *Txn) ID() uint64 { return t.id }

// Now returns the transaction's current virtual time.
func (t *Txn) Now() sim.Time { return t.cursor.Now() }

// AdvanceTo moves the transaction's virtual clock forward (after an I/O
// completed at that time).
func (t *Txn) AdvanceTo(when sim.Time) { t.cursor.AdvanceTo(when) }

// Charge adds CPU time to the transaction's virtual clock.
func (t *Txn) Charge(d time.Duration) { t.cursor.Advance(d) }

// ResponseTime returns the virtual time elapsed since Begin.
func (t *Txn) ResponseTime() time.Duration { return t.cursor.Now().Sub(t.start) }

// State returns the transaction state.
func (t *Txn) State() State { return t.state }

// Lock acquires key in the given mode and remembers it for release at
// commit/abort.
func (t *Txn) Lock(key string, mode LockMode) error {
	if t.state != Active {
		return ErrTxnDone
	}
	if err := t.mgr.lm.Lock(t.id, key, mode); err != nil {
		return err
	}
	if !t.lockSet[key] {
		t.lockSet[key] = true
		t.locks = append(t.locks, key)
	}
	return nil
}

// Log appends a record to the WAL on behalf of the transaction.
func (t *Txn) Log(typ wal.RecordType, objectID uint32, payload []byte) {
	if t.mgr.log == nil || t.state != Active {
		return
	}
	_, _ = t.mgr.log.Append(typ, t.id, objectID, payload)
}

// Commit writes the commit record, forces the log and releases all locks.
// It returns the transaction's final virtual time.
func (t *Txn) Commit() (sim.Time, error) {
	if t.state != Active {
		return t.cursor.Now(), ErrTxnDone
	}
	if t.mgr.log != nil {
		if _, err := t.mgr.log.Append(wal.RecCommit, t.id, 0, nil); err != nil {
			return t.cursor.Now(), err
		}
		done, err := t.mgr.log.Flush(t.cursor.Now())
		if err != nil {
			return t.cursor.Now(), err
		}
		t.cursor.AdvanceTo(done)
	}
	t.state = Committed
	t.mgr.commits.Add(1)
	t.mgr.lm.ReleaseAll(t.id, t.locks)
	return t.cursor.Now(), nil
}

// Abort writes an abort record and releases all locks.  The engine's
// transactions are written to take locks before any modification, so abort
// is only used for logical aborts that happen before updates (e.g. the 1 %
// of TPC-C NewOrder transactions with an invalid item).
func (t *Txn) Abort() sim.Time {
	if t.state != Active {
		return t.cursor.Now()
	}
	if t.mgr.log != nil {
		_, _ = t.mgr.log.Append(wal.RecAbort, t.id, 0, nil)
	}
	t.state = Aborted
	t.mgr.aborts.Add(1)
	t.mgr.lm.ReleaseAll(t.id, t.locks)
	return t.cursor.Now()
}
