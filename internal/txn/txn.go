// Package txn provides the transaction manager of the reproduction's storage
// engine: transaction identities, strict two-phase locking on logical keys,
// commit/abort bookkeeping and per-transaction virtual-time accounting.
//
// The lock table is sharded by key hash, so concurrent transactions that
// touch different keys almost never share a mutex.  Lock waits are real
// (goroutine blocking), but the wait *timeout* is virtual-time-deterministic:
// a waiter gives up when the contended key has seen more than the configured
// budget of simulated time pass (measured from release to release) while the
// lock stayed unavailable.  That makes ErrLockTimeout independent of host
// speed and parallel test load; a generous wall-clock fallback remains as
// the safety net for true deadlocks, where no release (and hence no virtual
// progress on the key) ever happens.  TPC-C transactions acquire their locks
// in a canonical order, so deadlocks cannot form in the benchmark itself.
package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"noftl/internal/sim"
	"noftl/internal/wal"
)

// LockMode is the requested access mode for a key.
type LockMode int

// Lock modes.
const (
	Shared LockMode = iota
	Exclusive
)

// Errors returned by the transaction manager.
var (
	// ErrLockTimeout reports a lock wait that exceeded the configured
	// timeout (treated as a deadlock victim).
	ErrLockTimeout = errors.New("txn: lock wait timeout")
	// ErrTxnDone reports an operation on a committed or aborted transaction.
	ErrTxnDone = errors.New("txn: transaction already finished")
)

// lockShards is the number of hash shards of the lock table.  Each shard has
// its own mutex and its own slice of the key space, so the shard count bounds
// the number of CPUs that can contend on lock-table metadata (the locks
// themselves still conflict only when transactions touch the same key).
const lockShards = 32

// lockState is the state of one lockable key.
type lockState struct {
	cond    *sync.Cond
	readers map[uint64]int // txn id -> hold count
	writer  uint64         // txn id holding exclusively, 0 if none
	wcount  int
	waiting int // transactions currently blocked on this key
	// maxRelease is the highest virtual time at which a holder released this
	// key.  Waiters use it as the key's virtual-time frontier: when it moves
	// past a waiter's deadline while the lock stays unavailable, the wait
	// has deterministically timed out.
	maxRelease sim.Time
}

// lockShard is one slice of the lock table.
type lockShard struct {
	mu       sync.Mutex
	locks    map[string]*lockState
	waits    atomic.Int64
	timeouts atomic.Int64
}

func (sh *lockShard) state(key string) *lockState {
	ls, ok := sh.locks[key]
	if !ok {
		ls = &lockState{readers: make(map[uint64]int)}
		ls.cond = sync.NewCond(&sh.mu)
		sh.locks[key] = ls
	}
	return ls
}

// LockManager implements strict two-phase locking over string keys.  All
// methods are safe for concurrent use.
type LockManager struct {
	shards       [lockShards]lockShard
	timeout      time.Duration // virtual-time wait budget (ns, 1:1 with sim time)
	wallFallback time.Duration // wall-clock deadlock safety net
}

// NewLockManager creates a lock manager with the given wait timeout (zero
// selects one second).  The timeout is interpreted in virtual time when the
// caller provides a virtual-time context (LockAt); the wall-clock fallback
// defaults to ten times the timeout, clamped to [1s, 60s].
func NewLockManager(timeout time.Duration) *LockManager {
	if timeout <= 0 {
		timeout = time.Second
	}
	fallback := 10 * timeout
	if fallback < time.Second {
		fallback = time.Second
	}
	if fallback > time.Minute {
		fallback = time.Minute
	}
	lm := &LockManager{timeout: timeout, wallFallback: fallback}
	for i := range lm.shards {
		lm.shards[i].locks = make(map[string]*lockState)
	}
	return lm
}

// SetWallFallback overrides the wall-clock deadlock safety net (tests use a
// short fallback to exercise it quickly).
func (lm *LockManager) SetWallFallback(d time.Duration) {
	if d > 0 {
		lm.wallFallback = d
	}
}

// shard maps a key to its lock-table shard (FNV-1a).
func (lm *LockManager) shard(key string) *lockShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &lm.shards[h%lockShards]
}

// Waits returns the number of lock acquisitions that had to wait.
func (lm *LockManager) Waits() int64 {
	var n int64
	for i := range lm.shards {
		n += lm.shards[i].waits.Load()
	}
	return n
}

// Timeouts returns the number of lock waits that ended in ErrLockTimeout.
func (lm *LockManager) Timeouts() int64 {
	var n int64
	for i := range lm.shards {
		n += lm.shards[i].timeouts.Load()
	}
	return n
}

// LockStats is a snapshot of lock-manager contention counters.
type LockStats struct {
	// Waits counts lock acquisitions that had to block; Timeouts counts
	// waits that ended in ErrLockTimeout.
	Waits    int64
	Timeouts int64
	// Held is the number of keys currently locked (shared or exclusive);
	// Waiting is the number of transactions currently blocked on a key.
	Held    int64
	Waiting int64
	// ShardWaits is the per-shard breakdown of Waits, exposing skew across
	// the lock-table shards.
	ShardWaits []int64
}

// Stats returns a snapshot of the lock manager's contention counters.
func (lm *LockManager) Stats() LockStats {
	st := LockStats{ShardWaits: make([]int64, lockShards)}
	for i := range lm.shards {
		sh := &lm.shards[i]
		st.ShardWaits[i] = sh.waits.Load()
		st.Waits += st.ShardWaits[i]
		st.Timeouts += sh.timeouts.Load()
		sh.mu.Lock()
		for _, ls := range sh.locks {
			if ls.writer != 0 || len(ls.readers) > 0 {
				st.Held++
			}
			st.Waiting += int64(ls.waiting)
		}
		sh.mu.Unlock()
	}
	return st
}

// Lock acquires key in the given mode on behalf of txnID with no virtual-time
// context: the timeout is then a plain wall-clock deadline.  Engine code
// should prefer LockAt, which makes the timeout virtual-time-deterministic.
func (lm *LockManager) Lock(txnID uint64, key string, mode LockMode) error {
	return lm.lock(-1, txnID, key, mode)
}

// LockAt acquires key in the given mode on behalf of txnID, whose current
// virtual time is now, blocking until the lock is granted or the wait times
// out.  Re-acquiring a lock already held (including upgrading shared to
// exclusive when the transaction is the sole reader) succeeds.
//
// The wait deadline is virtual: it expires when the key's release frontier
// (the highest virtual time of any release of this key) moves more than the
// configured timeout past the frontier observed when the wait began, while
// the lock remains unavailable.  A wall-clock fallback (SetWallFallback)
// catches deadlocks, where the frontier never moves.
func (lm *LockManager) LockAt(now sim.Time, txnID uint64, key string, mode LockMode) error {
	if now < 0 {
		now = 0
	}
	return lm.lock(now, txnID, key, mode)
}

// lock is the shared wait loop.  now < 0 means "no virtual context" (wall
// deadline = timeout, the legacy behaviour).
func (lm *LockManager) lock(now sim.Time, txnID uint64, key string, mode LockMode) error {
	sh := lm.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ls := sh.state(key)
	waited := false
	vdeadline := sim.Time(-1)
	var wallDeadline time.Time
	for {
		holder := ls.writer == txnID || ls.readers[txnID] > 0
		// A newly arriving request yields to transactions that are already
		// waiting (simple fairness, so a hot lock cannot starve a waiter),
		// unless the transaction already holds the lock.
		barge := !holder && !waited && ls.waiting > 0
		if !barge && grantable(ls, txnID, mode) {
			if mode == Exclusive {
				ls.writer = txnID
				ls.wcount++
				delete(ls.readers, txnID) // upgrade consumes the shared hold
			} else {
				ls.readers[txnID]++
			}
			if waited {
				ls.waiting--
			}
			return nil
		}
		if !waited {
			waited = true
			sh.waits.Add(1)
			ls.waiting++
			if now >= 0 {
				// Anchor the virtual deadline to the key's release frontier,
				// not just the waiter's own cursor: cursors of independent
				// workers drift apart, and a waiter behind the frontier must
				// still be given a full timeout of *future* virtual activity.
				anchor := now
				if ls.maxRelease > anchor {
					anchor = ls.maxRelease
				}
				vdeadline = anchor.Add(lm.timeout)
				wallDeadline = time.Now().Add(lm.wallFallback)
			} else {
				wallDeadline = time.Now().Add(lm.timeout)
			}
		} else {
			timedOut := vdeadline >= 0 && ls.maxRelease > vdeadline
			if !timedOut && time.Now().After(wallDeadline) {
				timedOut = true
			}
			if timedOut {
				ls.waiting--
				sh.timeouts.Add(1)
				return fmt.Errorf("%w: txn %d key %q", ErrLockTimeout, txnID, key)
			}
		}
		// Wake ourselves up at the wall deadline so the fallback is honoured
		// even if nobody ever releases the lock.
		timer := time.AfterFunc(time.Until(wallDeadline), ls.cond.Broadcast)
		ls.cond.Wait()
		timer.Stop()
	}
}

// grantable reports whether txnID may take key in mode.  Caller holds the
// shard mutex.
func grantable(ls *lockState, txnID uint64, mode LockMode) bool {
	if mode == Shared {
		return ls.writer == 0 || ls.writer == txnID
	}
	// Exclusive: no other writer and no other readers.
	if ls.writer != 0 && ls.writer != txnID {
		return false
	}
	for r := range ls.readers {
		if r != txnID {
			return false
		}
	}
	return true
}

// ReleaseAll releases every lock held by txnID without publishing a virtual
// release time (the keys' virtual frontiers stay put).
func (lm *LockManager) ReleaseAll(txnID uint64, keys []string) {
	lm.releaseAll(-1, txnID, keys)
}

// ReleaseAllAt releases every lock held by txnID and advances each key's
// virtual release frontier to now, which is what drives waiters' virtual
// timeouts forward.
func (lm *LockManager) ReleaseAllAt(now sim.Time, txnID uint64, keys []string) {
	lm.releaseAll(now, txnID, keys)
}

func (lm *LockManager) releaseAll(now sim.Time, txnID uint64, keys []string) {
	for _, key := range keys {
		sh := lm.shard(key)
		sh.mu.Lock()
		ls, ok := sh.locks[key]
		if !ok {
			sh.mu.Unlock()
			continue
		}
		// ReleaseAll is only called at commit/abort (strict two-phase
		// locking), so every hold the transaction has on the key is dropped
		// at once, however many times it re-acquired the lock.
		if ls.writer == txnID {
			ls.writer = 0
			ls.wcount = 0
		}
		delete(ls.readers, txnID)
		if now > ls.maxRelease {
			ls.maxRelease = now
		}
		ls.cond.Broadcast()
		sh.mu.Unlock()
	}
}

// State tracks a transaction's lifecycle.
type State int

// Transaction states.
const (
	Active State = iota
	Committed
	Aborted
)

// Manager creates transactions, hands out ids and coordinates the WAL.
type Manager struct {
	nextID  atomic.Uint64
	lm      *LockManager
	log     *wal.Log
	clock   *sim.Clock
	started atomic.Int64
	commits atomic.Int64
	aborts  atomic.Int64
}

// NewManager creates a transaction manager.  log may be nil (no logging) and
// clock may be nil (no global time publication).
func NewManager(lm *LockManager, log *wal.Log, clock *sim.Clock) *Manager {
	if lm == nil {
		lm = NewLockManager(0)
	}
	return &Manager{lm: lm, log: log, clock: clock}
}

// LockManager returns the shared lock manager.
func (m *Manager) LockManager() *LockManager { return m.lm }

// NextID returns the highest transaction id handed out so far (checkpoints
// persist it so recovery can seed a fresh manager past it).
func (m *Manager) NextID() uint64 { return m.nextID.Load() }

// SeedNextID raises the id counter so that future transactions receive ids
// strictly greater than next.  Recovery uses it to keep replayed transaction
// ids from being reissued.
func (m *Manager) SeedNextID(next uint64) {
	for {
		cur := m.nextID.Load()
		if cur >= next {
			return
		}
		if m.nextID.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Started, Committed and Aborted return lifetime counters.
func (m *Manager) Started() int64   { return m.started.Load() }
func (m *Manager) Committed() int64 { return m.commits.Load() }
func (m *Manager) Aborted() int64   { return m.aborts.Load() }

// Txn is one transaction.  It is owned by a single goroutine (a TPC-C
// terminal); it is not safe for concurrent use.
type Txn struct {
	id      uint64
	mgr     *Manager
	cursor  *sim.Cursor
	state   State
	locks   []string
	lockSet map[string]bool
	start   sim.Time
}

// Begin starts a transaction whose virtual clock begins at now.
func (m *Manager) Begin(now sim.Time) *Txn {
	id := m.nextID.Add(1)
	m.started.Add(1)
	cur := sim.NewCursor(m.clock)
	cur.SetTo(now)
	t := &Txn{id: id, mgr: m, cursor: cur, state: Active, lockSet: make(map[string]bool), start: now}
	if m.log != nil {
		_, _ = m.log.Append(wal.RecBegin, id, 0, nil)
	}
	return t
}

// ID returns the transaction id.
func (t *Txn) ID() uint64 { return t.id }

// Now returns the transaction's current virtual time.
func (t *Txn) Now() sim.Time { return t.cursor.Now() }

// AdvanceTo moves the transaction's virtual clock forward (after an I/O
// completed at that time).
func (t *Txn) AdvanceTo(when sim.Time) { t.cursor.AdvanceTo(when) }

// Charge adds CPU time to the transaction's virtual clock.
func (t *Txn) Charge(d time.Duration) { t.cursor.Advance(d) }

// ResponseTime returns the virtual time elapsed since Begin.
func (t *Txn) ResponseTime() time.Duration { return t.cursor.Now().Sub(t.start) }

// State returns the transaction state.
func (t *Txn) State() State { return t.state }

// Lock acquires key in the given mode and remembers it for release at
// commit/abort.  The wait timeout is virtual-time-deterministic (see
// LockManager.LockAt).
func (t *Txn) Lock(key string, mode LockMode) error {
	if t.state != Active {
		return ErrTxnDone
	}
	if err := t.mgr.lm.LockAt(t.cursor.Now(), t.id, key, mode); err != nil {
		return err
	}
	if !t.lockSet[key] {
		t.lockSet[key] = true
		t.locks = append(t.locks, key)
	}
	return nil
}

// Log appends a record to the WAL on behalf of the transaction.
func (t *Txn) Log(typ wal.RecordType, objectID uint32, payload []byte) {
	if t.mgr.log == nil || t.state != Active {
		return
	}
	_, _ = t.mgr.log.Append(typ, t.id, objectID, payload)
}

// Commit writes the commit record, forces the log (joining the group commit
// of any concurrent committers) and releases all locks.  It returns the
// transaction's final virtual time.
func (t *Txn) Commit() (sim.Time, error) {
	if t.state != Active {
		return t.cursor.Now(), ErrTxnDone
	}
	if t.mgr.log != nil {
		lsn, err := t.mgr.log.Append(wal.RecCommit, t.id, 0, nil)
		if err != nil {
			return t.cursor.Now(), err
		}
		done, err := t.mgr.log.Commit(t.cursor.Now(), lsn)
		if err != nil {
			return t.cursor.Now(), err
		}
		t.cursor.AdvanceTo(done)
	}
	t.state = Committed
	t.mgr.commits.Add(1)
	t.mgr.lm.ReleaseAllAt(t.cursor.Now(), t.id, t.locks)
	return t.cursor.Now(), nil
}

// Abort writes an abort record and releases all locks.  The engine's
// transactions are written to take locks before any modification, so abort
// is only used for logical aborts that happen before updates (e.g. the 1 %
// of TPC-C NewOrder transactions with an invalid item).
func (t *Txn) Abort() sim.Time {
	if t.state != Active {
		return t.cursor.Now()
	}
	if t.mgr.log != nil {
		_, _ = t.mgr.log.Append(wal.RecAbort, t.id, 0, nil)
	}
	t.state = Aborted
	t.mgr.aborts.Add(1)
	t.mgr.lm.ReleaseAllAt(t.cursor.Now(), t.id, t.locks)
	return t.cursor.Now()
}
