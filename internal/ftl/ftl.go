// Package ftl implements the baseline the paper argues against: a black-box
// Flash Translation Layer that exposes a legacy block-device interface
// (read/write of 4 KiB logical block addresses) on top of the same native
// flash device used by the NoFTL space manager.
//
// The FTL mirrors what a commodity SSD controller does with its limited
// on-device resources:
//
//   - page-level logical-to-physical mapping, but with a bounded mapping
//     cache (an SRAM-sized window à la DFTL): a miss costs an extra flash
//     page read to fetch the mapping entry;
//   - device-global greedy garbage collection that cannot distinguish hot
//     from cold data, because the device has no knowledge of database
//     objects;
//   - wear-aware allocation of free blocks;
//   - no TRIM by default (the DBMS cannot tell the device which pages are
//     dead), configurable for the ablation.
//
// It is used by the A3 ablation (FTL vs NoFTL) and by the flashsim tool.
package ftl

import (
	"errors"
	"fmt"
	"sync"

	"noftl/internal/flash"
	"noftl/internal/sim"
)

// Errors returned by the FTL.
var (
	// ErrOutOfRange reports an LBA outside the exported capacity.
	ErrOutOfRange = errors.New("ftl: LBA out of range")
	// ErrUnwritten reports a read of an LBA that has never been written.
	ErrUnwritten = errors.New("ftl: LBA has never been written")
	// ErrDeviceFull reports that the device ran out of space (it should not
	// happen while writes stay within the exported capacity).
	ErrDeviceFull = errors.New("ftl: no free blocks available")
)

// Options configure the FTL.
type Options struct {
	// OverprovisionPct is the share of raw capacity hidden from the host.
	// Default 0.07 (consumer-SSD-like, less than NoFTL setups typically
	// reserve for the DBMS).
	OverprovisionPct float64
	// MapCacheEntries bounds the number of logical-to-physical mapping
	// entries the controller can keep in SRAM.  A lookup outside the cache
	// costs one extra flash page read.  Zero means unlimited (no translation
	// penalty).  Default 8192.
	MapCacheEntries int
	// GCLowWaterBlocks is the per-die free-block threshold that triggers
	// garbage collection.  Default 3.
	GCLowWaterBlocks int
	// SupportsTrim enables the Trim command.  Default false: the block
	// device interface hides deallocation from the device, one of the
	// disadvantages the paper lists for the legacy stack.
	SupportsTrim bool
}

// DefaultOptions returns the defaults documented on each field.
func DefaultOptions() Options {
	return Options{
		OverprovisionPct: 0.07,
		MapCacheEntries:  8192,
		GCLowWaterBlocks: 3,
	}
}

func (o Options) withDefaults() Options {
	if o.OverprovisionPct <= 0 || o.OverprovisionPct >= 0.9 {
		o.OverprovisionPct = 0.07
	}
	if o.GCLowWaterBlocks <= 0 {
		o.GCLowWaterBlocks = 3
	}
	return o
}

type blockInfo struct {
	validCount int
	nextPage   int
	eraseCount int64
	closed     bool
	lbas       []int64
	valid      []bool
}

type dieState struct {
	free     []int
	hostOpen int
	gcOpen   int
	blocks   []blockInfo
}

// SSD is the FTL-based flash SSD emulation.
type SSD struct {
	mu   sync.Mutex
	dev  *flash.Device
	geo  flash.Geometry
	opts Options

	capacityLBAs int64
	mapping      map[int64]flash.Addr
	cache        map[int64]struct{} // LBAs whose mapping entry is cached in SRAM
	cacheOrder   []int64            // FIFO eviction order
	dies         []*dieState
	rr           int
	seq          uint64

	// statistics
	hostReads   int64
	hostWrites  int64
	trims       int64
	gcCopybacks int64
	gcErases    int64
	mapMisses   int64
	mapHits     int64
}

// New creates an SSD over the device.
func New(dev *flash.Device, opts Options) *SSD {
	opts = opts.withDefaults()
	geo := dev.Geometry()
	s := &SSD{
		dev:     dev,
		geo:     geo,
		opts:    opts,
		mapping: make(map[int64]flash.Addr),
		cache:   make(map[int64]struct{}),
	}
	s.capacityLBAs = int64(float64(geo.TotalPages()) * (1 - opts.OverprovisionPct))
	s.dies = make([]*dieState, geo.Dies())
	for i := range s.dies {
		ds := &dieState{hostOpen: -1, gcOpen: -1}
		ds.blocks = make([]blockInfo, geo.BlocksPerDie)
		for b := range ds.blocks {
			ds.blocks[b].lbas = make([]int64, geo.PagesPerBlock)
			ds.blocks[b].valid = make([]bool, geo.PagesPerBlock)
			ds.free = append(ds.free, b)
		}
		s.dies[i] = ds
	}
	return s
}

// CapacityLBAs returns the number of 1-page logical blocks the device
// exports.
func (s *SSD) CapacityLBAs() int64 { return s.capacityLBAs }

// Device returns the underlying flash device.
func (s *SSD) Device() *flash.Device { return s.dev }

// translate charges the cost of a mapping-table lookup: a hit is free, a
// miss costs one flash page read (fetching the mapping page from flash).
// Caller holds s.mu.
func (s *SSD) translate(now sim.Time, lba int64) sim.Time {
	if s.opts.MapCacheEntries <= 0 {
		return now
	}
	if _, ok := s.cache[lba]; ok {
		s.mapHits++
		return now
	}
	s.mapMisses++
	// The translation page could live on any die; charge a read on the die
	// that currently stores the data page (or round-robin for new LBAs).
	die := s.rr % s.geo.Dies()
	if addr, ok := s.mapping[lba]; ok {
		die = addr.Die
	}
	// Model the extra read as pure latency on that die's resource by reading
	// an arbitrary programmed page is not guaranteed to exist, so charge the
	// read latency directly through a metadata read on the device when
	// possible; otherwise fall back to adding the nominal read latency.
	now = now.Add(s.dev.Timing().ReadPage + s.dev.Timing().MetaTransfer)
	_ = die
	// Install into the SRAM cache with FIFO eviction.
	s.cache[lba] = struct{}{}
	s.cacheOrder = append(s.cacheOrder, lba)
	if len(s.cacheOrder) > s.opts.MapCacheEntries {
		evict := s.cacheOrder[0]
		s.cacheOrder = s.cacheOrder[1:]
		delete(s.cache, evict)
	}
	return now
}

// Read reads the logical block lba into buf (may be nil).
func (s *SSD) Read(now sim.Time, lba int64, buf []byte) ([]byte, sim.Time, error) {
	if lba < 0 || lba >= s.capacityLBAs {
		return nil, now, fmt.Errorf("%w: %d", ErrOutOfRange, lba)
	}
	s.mu.Lock()
	now = s.translate(now, lba)
	addr, ok := s.mapping[lba]
	if !ok {
		s.mu.Unlock()
		return nil, now, fmt.Errorf("%w: %d", ErrUnwritten, lba)
	}
	s.hostReads++
	s.mu.Unlock()
	data, _, done, err := s.dev.ReadPage(now, addr, buf)
	return data, done, err
}

// Write writes the logical block lba.
func (s *SSD) Write(now sim.Time, lba int64, data []byte) (sim.Time, error) {
	if lba < 0 || lba >= s.capacityLBAs {
		return now, fmt.Errorf("%w: %d", ErrOutOfRange, lba)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now = s.translate(now, lba)

	die, slotBlock, slotPage, now, err := s.allocate(now)
	if err != nil {
		return now, err
	}
	addr := flash.Addr{Die: die, Block: slotBlock, Page: slotPage}
	s.seq++
	done, err := s.dev.ProgramPage(now, addr, data, flash.PageMeta{LPN: uint64(lba), Seq: s.seq})
	if err != nil {
		s.dies[die].blocks[slotBlock].nextPage--
		return now, err
	}
	ds := s.dies[die]
	blk := &ds.blocks[slotBlock]
	blk.lbas[slotPage] = lba
	blk.valid[slotPage] = true
	blk.validCount++
	if blk.nextPage >= s.geo.PagesPerBlock {
		blk.closed = true
		if ds.hostOpen == slotBlock {
			ds.hostOpen = -1
		}
	}
	if old, ok := s.mapping[lba]; ok {
		oblk := &s.dies[old.Die].blocks[old.Block]
		if oblk.valid[old.Page] {
			oblk.valid[old.Page] = false
			oblk.validCount--
		}
	}
	s.mapping[lba] = addr
	s.hostWrites++
	return done, nil
}

// Trim invalidates an LBA if the device supports it; otherwise it is a no-op
// (the data stays "valid" from the device's point of view and will be copied
// around by GC forever — the legacy-interface problem the paper points out).
func (s *SSD) Trim(lba int64) error {
	if lba < 0 || lba >= s.capacityLBAs {
		return fmt.Errorf("%w: %d", ErrOutOfRange, lba)
	}
	if !s.opts.SupportsTrim {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.mapping[lba]; ok {
		oblk := &s.dies[old.Die].blocks[old.Block]
		if oblk.valid[old.Page] {
			oblk.valid[old.Page] = false
			oblk.validCount--
		}
		delete(s.mapping, lba)
		s.trims++
	}
	return nil
}

// allocate returns a free page slot, garbage collecting when needed.
// Caller holds s.mu.
func (s *SSD) allocate(now sim.Time) (die, block, page int, after sim.Time, err error) {
	for attempt := 0; attempt < s.geo.Dies(); attempt++ {
		d := s.rr % s.geo.Dies()
		s.rr++
		ds := s.dies[d]
		if ds.hostOpen < 0 || ds.blocks[ds.hostOpen].nextPage >= s.geo.PagesPerBlock {
			if len(ds.free) <= s.opts.GCLowWaterBlocks {
				now = s.collect(now, d)
			}
			if len(ds.free) <= 1 { // keep one block for GC
				continue
			}
			idx := popLeastWorn(ds)
			ds.hostOpen = idx
		}
		blk := &ds.blocks[ds.hostOpen]
		slot := blk.nextPage
		blk.nextPage++
		return d, ds.hostOpen, slot, now, nil
	}
	return 0, 0, 0, now, ErrDeviceFull
}

func popLeastWorn(ds *dieState) int {
	best := 0
	for i, b := range ds.free {
		if ds.blocks[b].eraseCount < ds.blocks[ds.free[best]].eraseCount {
			best = i
		}
	}
	idx := ds.free[best]
	ds.free = append(ds.free[:best], ds.free[best+1:]...)
	ds.blocks[idx].closed = false
	return idx
}

// collect performs greedy garbage collection on one die.  Caller holds s.mu.
func (s *SSD) collect(now sim.Time, die int) sim.Time {
	ds := s.dies[die]
	for len(ds.free) <= s.opts.GCLowWaterBlocks {
		victim := -1
		bestValid := s.geo.PagesPerBlock
		for i := range ds.blocks {
			blk := &ds.blocks[i]
			if !blk.closed || i == ds.hostOpen || i == ds.gcOpen {
				continue
			}
			if blk.validCount < bestValid {
				bestValid = blk.validCount
				victim = i
			}
		}
		if victim < 0 {
			break
		}
		now = s.cleanBlock(now, die, victim)
	}
	return now
}

func (s *SSD) cleanBlock(now sim.Time, die, victim int) sim.Time {
	ds := s.dies[die]
	vblk := &ds.blocks[victim]
	for p := 0; p < s.geo.PagesPerBlock && vblk.validCount > 0; p++ {
		if !vblk.valid[p] {
			continue
		}
		if ds.gcOpen < 0 || ds.blocks[ds.gcOpen].nextPage >= s.geo.PagesPerBlock {
			if len(ds.free) == 0 {
				return now
			}
			ds.gcOpen = popLeastWorn(ds)
		}
		dblk := &ds.blocks[ds.gcOpen]
		dstPage := dblk.nextPage
		dblk.nextPage++
		src := flash.Addr{Die: die, Block: victim, Page: p}
		dst := flash.Addr{Die: die, Block: ds.gcOpen, Page: dstPage}
		meta, done, err := s.dev.Copyback(now, src, dst)
		if err != nil {
			dblk.nextPage--
			continue
		}
		now = done
		lba := int64(meta.LPN)
		dblk.lbas[dstPage] = lba
		dblk.valid[dstPage] = true
		dblk.validCount++
		if dblk.nextPage >= s.geo.PagesPerBlock {
			dblk.closed = true
			ds.gcOpen = -1
		}
		s.mapping[lba] = dst
		vblk.valid[p] = false
		vblk.validCount--
		s.gcCopybacks++
	}
	if vblk.validCount > 0 {
		return now
	}
	done, err := s.dev.EraseBlock(now, flash.BlockAddr{Die: die, Block: victim})
	if err != nil {
		return now
	}
	now = done
	vblk.closed = false
	vblk.nextPage = 0
	vblk.validCount = 0
	vblk.eraseCount++
	for i := range vblk.valid {
		vblk.valid[i] = false
	}
	ds.free = append(ds.free, victim)
	s.gcErases++
	return now
}

// Stats is a snapshot of the SSD's counters.
type Stats struct {
	HostReads   int64
	HostWrites  int64
	Trims       int64
	GCCopybacks int64
	GCErases    int64
	MapHits     int64
	MapMisses   int64
}

// WriteAmplification returns the device write-amplification factor.
func (st Stats) WriteAmplification() float64 {
	if st.HostWrites == 0 {
		return 0
	}
	return float64(st.HostWrites+st.GCCopybacks) / float64(st.HostWrites)
}

// Stats returns a snapshot of the SSD counters.
func (s *SSD) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		HostReads:   s.hostReads,
		HostWrites:  s.hostWrites,
		Trims:       s.trims,
		GCCopybacks: s.gcCopybacks,
		GCErases:    s.gcErases,
		MapHits:     s.mapHits,
		MapMisses:   s.mapMisses,
	}
}
