package ftl

import (
	"bytes"
	"errors"
	"testing"

	"noftl/internal/flash"
	"noftl/internal/sim"
)

func testDevice(t *testing.T) *flash.Device {
	t.Helper()
	cfg := flash.DefaultConfig()
	cfg.Geometry = flash.Geometry{
		Channels: 2, DiesPerChannel: 2, PlanesPerDie: 1,
		BlocksPerDie: 32, PagesPerBlock: 16, PageSize: 512,
	}
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func page(dev *flash.Device, b byte) []byte {
	buf := make([]byte, dev.Geometry().PageSize)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

func TestSSDReadWriteRoundTrip(t *testing.T) {
	dev := testDevice(t)
	s := New(dev, DefaultOptions())
	if s.CapacityLBAs() <= 0 || s.CapacityLBAs() >= dev.Geometry().TotalPages() {
		t.Fatalf("capacity %d should reflect over-provisioning", s.CapacityLBAs())
	}
	if s.Device() != dev {
		t.Fatal("Device accessor wrong")
	}
	// Unwritten LBA.
	if _, _, err := s.Read(0, 5, nil); !errors.Is(err, ErrUnwritten) {
		t.Fatalf("want ErrUnwritten, got %v", err)
	}
	// Out of range.
	if _, _, err := s.Read(0, s.CapacityLBAs(), nil); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
	if _, err := s.Write(0, -1, page(dev, 1)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
	done, err := s.Write(0, 5, page(dev, 0x77))
	if err != nil {
		t.Fatal(err)
	}
	got, rdone, err := s.Read(done, 5, nil)
	if err != nil || !bytes.Equal(got, page(dev, 0x77)) {
		t.Fatalf("read back wrong: %v", err)
	}
	if rdone <= done {
		t.Fatal("read consumed no time")
	}
	// Overwrite.
	if _, err := s.Write(rdone, 5, page(dev, 0x78)); err != nil {
		t.Fatal(err)
	}
	got, _, _ = s.Read(rdone, 5, nil)
	if !bytes.Equal(got, page(dev, 0x78)) {
		t.Fatal("overwrite lost")
	}
	st := s.Stats()
	if st.HostWrites != 2 || st.HostReads != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSSDGarbageCollection(t *testing.T) {
	dev := testDevice(t)
	opts := DefaultOptions()
	opts.OverprovisionPct = 0.25
	s := New(dev, opts)
	now := sim.Time(0)
	const lbas = 256
	for round := 0; round < 10; round++ {
		for l := int64(0); l < lbas; l++ {
			done, err := s.Write(now, l, page(dev, byte(round)))
			if err != nil {
				t.Fatalf("round %d lba %d: %v", round, l, err)
			}
			now = done
		}
	}
	st := s.Stats()
	if st.GCErases == 0 {
		t.Fatal("GC never erased")
	}
	if st.WriteAmplification() < 1 {
		t.Fatalf("WA = %v", st.WriteAmplification())
	}
	// Data still correct after GC moved things around.
	for l := int64(0); l < lbas; l++ {
		got, _, err := s.Read(now, l, nil)
		if err != nil || got[0] != 9 {
			t.Fatalf("lba %d corrupted after GC: %v", l, err)
		}
	}
}

func TestSSDTrim(t *testing.T) {
	dev := testDevice(t)
	// Without trim support the command is a no-op.
	s := New(dev, DefaultOptions())
	if _, err := s.Write(0, 1, page(dev, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Trim(1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Read(0, 1, nil); err != nil {
		t.Fatalf("trim without support must not drop data: %v", err)
	}
	if s.Stats().Trims != 0 {
		t.Fatal("trim counted although unsupported")
	}
	// With trim support the LBA becomes unwritten.
	opts := DefaultOptions()
	opts.SupportsTrim = true
	s2 := New(testDevice(t), opts)
	if _, err := s2.Write(0, 1, page(dev, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Trim(1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s2.Read(0, 1, nil); !errors.Is(err, ErrUnwritten) {
		t.Fatalf("want ErrUnwritten after trim, got %v", err)
	}
	if err := s2.Trim(1 << 40); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
	if s2.Stats().Trims != 1 {
		t.Fatal("trim not counted")
	}
}

func TestSSDMapCacheMisses(t *testing.T) {
	dev := testDevice(t)
	opts := DefaultOptions()
	opts.MapCacheEntries = 4
	s := New(dev, opts)
	now := sim.Time(0)
	// Touch more LBAs than the cache holds, twice; the second pass must still
	// miss because of FIFO eviction.
	for pass := 0; pass < 2; pass++ {
		for l := int64(0); l < 16; l++ {
			done, err := s.Write(now, l, page(dev, byte(l)))
			if err != nil {
				t.Fatal(err)
			}
			now = done
		}
	}
	st := s.Stats()
	if st.MapMisses == 0 {
		t.Fatal("no map misses with a tiny cache")
	}
	// Unlimited cache: no penalty.
	opts.MapCacheEntries = 0
	s2 := New(testDevice(t), opts)
	for l := int64(0); l < 16; l++ {
		if _, err := s2.Write(0, l, page(dev, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s2.Stats(); st.MapMisses != 0 || st.MapHits != 0 {
		t.Fatalf("unlimited cache counted lookups: %+v", st)
	}
}

func TestSSDMapMissCostsTime(t *testing.T) {
	dev := testDevice(t)
	optsMiss := DefaultOptions()
	optsMiss.MapCacheEntries = 1
	sMiss := New(dev, optsMiss)

	devFast := testDevice(t)
	optsHit := DefaultOptions()
	optsHit.MapCacheEntries = 0
	sHit := New(devFast, optsHit)

	// Alternate between two LBAs so the 1-entry cache always misses.
	var missTime, hitTime sim.Time
	for i := 0; i < 10; i++ {
		lba := int64(i % 2)
		d1, err := sMiss.Write(missTime, lba, page(dev, 1))
		if err != nil {
			t.Fatal(err)
		}
		missTime = d1
		d2, err := sHit.Write(hitTime, lba, page(dev, 1))
		if err != nil {
			t.Fatal(err)
		}
		hitTime = d2
	}
	if missTime <= hitTime {
		t.Fatalf("mapping misses should cost time: miss=%v hit=%v", missTime, hitTime)
	}
}

func TestWriteAmplificationHelper(t *testing.T) {
	if (Stats{}).WriteAmplification() != 0 {
		t.Fatal("WA of zero stats")
	}
	if (Stats{HostWrites: 10, GCCopybacks: 5}).WriteAmplification() != 1.5 {
		t.Fatal("WA wrong")
	}
}
