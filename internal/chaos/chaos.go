// Package chaos is a deterministic crash-and-recovery campaign harness.
//
// One Run drives a seeded key-value workload against a fresh database with a
// fault plan armed after schema setup, so the injected crash lands somewhere
// inside the measured workload: mid-transaction, inside a commit force,
// during a checkpoint, or in the middle of a GC relocation.  The run keeps an
// oracle of the committed state on the side; after the crash it reopens the
// device through crash recovery and verifies that
//
//   - the space manager's invariants hold,
//   - every committed row is present with its exact contents,
//   - no aborted or uncommitted row is visible,
//   - the indexes address exactly the surviving rows.
//
// The one transaction a crash can leave in doubt — the commit force was in
// flight when the device died — is allowed either outcome, but it must be all
// or nothing; the verifier accepts exactly the two states.
//
// Everything derives from Config.Seed: the workload, the crash point and the
// fault mix.  A failing seed therefore reproduces exactly, which is what
// makes the campaign a regression test rather than a flake generator.
package chaos

import (
	"bytes"
	"errors"
	"fmt"

	"noftl"
	"noftl/internal/sim"
)

// Config parameterises one chaos run.  The zero value (plus a seed) is a
// sensible campaign member.
type Config struct {
	// Seed drives the workload, the crash point and every fault decision.
	Seed uint64
	// Txns is the number of transactions the workload attempts before a
	// clean crash is forced (default 250).  The injected crash usually fires
	// earlier.
	Txns int
	// CheckpointEveryBytes is the byte-triggered checkpoint cadence
	// (default 32 KiB; < 0 disables periodic checkpoints so recovery has to
	// replay the whole post-schema log — the unbounded baseline).
	CheckpointEveryBytes int64
	// CrashAfterOps pins the crash point to the Nth device command after
	// arming; 0 derives one from Seed.  < 0 disables the injected crash:
	// the run ends in a clean crash (power loss with no mid-operation cut).
	CrashAfterOps int64
	// TornTail also tears the crash-point page program, leaving a partially
	// written final WAL page for recovery to detect and truncate.
	TornTail bool
	// FailProgramEvery and FailEraseEvery inject transient program failures
	// and worn-block erase failures during the workload (0 = none); the
	// engine must absorb both without losing data.
	FailProgramEvery int64
	FailEraseEvery   int64
}

func (c Config) withDefaults() Config {
	if c.Txns <= 0 {
		c.Txns = 250
	}
	if c.CheckpointEveryBytes == 0 {
		c.CheckpointEveryBytes = 32 << 10
	}
	return c
}

// Report is the outcome of one chaos run.
type Report struct {
	Seed         uint64
	Committed    int // transactions the oracle counts as durably committed
	Aborted      int // transactions rolled back on purpose
	CrashFired   bool
	InDoubt      bool // the crash landed inside a commit force
	InDoubtAlive bool // ... and the in-doubt transaction survived recovery
	Rows         int  // rows visible after recovery
	Recovery     noftl.RecoveryStats
}

// delta is one transaction's pending effect: key -> new value, nil = delete.
type delta map[string][]byte

const keyWidth = 8 // "k" + 7 digits; rows are key || value

func encodeRow(key string, val []byte) []byte {
	row := make([]byte, 0, keyWidth+len(val))
	row = append(row, key...)
	return append(row, val...)
}

func decodeRow(row []byte) (string, []byte, error) {
	if len(row) < keyWidth {
		return "", nil, fmt.Errorf("chaos: short row (%d bytes)", len(row))
	}
	return string(row[:keyWidth]), row[keyWidth:], nil
}

// Run executes one seeded crash-recovery round and verifies the recovered
// database against the oracle.  Any verification failure is returned as an
// error naming the seed.
func Run(cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{Seed: cfg.Seed}
	r := sim.NewRand(cfg.Seed ^ 0x9e3779b97f4a7c15)

	opts := []noftl.Option{}
	if cfg.CheckpointEveryBytes > 0 {
		opts = append(opts, noftl.WithCheckpointEvery(0, cfg.CheckpointEveryBytes))
	}
	db, err := noftl.Open(opts...)
	if err != nil {
		return rep, err
	}
	tbl, err := db.CreateTable("KV", "", []noftl.Column{{Name: "k", Type: "CHAR(8)"}, {Name: "v", Type: "VARBINARY"}})
	if err != nil {
		return rep, err
	}
	idx, err := db.CreateIndex("KV_PK", "KV", []string{"k"}, true, "")
	if err != nil {
		return rep, err
	}

	// Arm after schema setup so the crash point lands in the workload, not
	// in the DDL checkpoints.
	plan := noftl.FaultPlan{
		Seed:             cfg.Seed,
		CrashAfterOps:    cfg.CrashAfterOps,
		FailProgramEvery: cfg.FailProgramEvery,
		FailEraseEvery:   cfg.FailEraseEvery,
	}
	if plan.CrashAfterOps == 0 {
		// The workload issues a few hundred device commands after arming
		// (one WAL force per commit plus demand reads and checkpoint
		// writes); this range makes most seeds crash mid-run while leaving
		// a tail of clean-crash seeds.
		plan.CrashAfterOps = int64(r.IntRange(40, 600))
	} else if plan.CrashAfterOps < 0 {
		plan.CrashAfterOps = 0 // clean crash only
	}
	if cfg.TornTail {
		plan.TornTailBytes = r.IntRange(16, 1024)
	}
	db.Admin().ArmFaults(plan)

	// The oracle: committed state, the set of live keys (for deterministic
	// update/delete targets), and the delta of the transaction in flight.
	committed := make(map[string][]byte)
	var liveKeys []string
	nextKey := 0
	var inDoubt delta

	fill := func(n int) []byte {
		val := make([]byte, n)
		for i := range val {
			val[i] = byte(r.Uint64())
		}
		return val
	}
	newValue := func() []byte { return fill(r.IntRange(16, 160)) }
	// Heap updates are in-place, so an update must keep the row size: reuse
	// the length of the key's current value (pending delta wins).
	sameSizeValue := func(d delta, key string) []byte {
		if v, ok := d[key]; ok && v != nil {
			return fill(len(v))
		}
		return fill(len(committed[key]))
	}

workload:
	for t := 0; t < cfg.Txns; t++ {
		tx := db.Begin()
		d := make(delta)
		// Shadow copies of the live-key bookkeeping: only promoted to the
		// real slices when the transaction commits.
		addKeys := []string{}
		delKeys := map[string]bool{}
		// The engine's transactions have no undo: Abort is only legal before
		// any modification (the TPC-C "logical rollback" pattern).  Aborting
		// transactions therefore only read; the mutating transactions a crash
		// cuts mid-flight are the ones recovery must discard.
		abort := r.Float64() < 0.1
		opCount := r.IntRange(1, 4)
		if abort {
			opCount = 0
			if len(liveKeys) > 0 {
				key := liveKeys[r.Intn(len(liveKeys))]
				if _, _, err := idx.Lookup(tx, []byte(key)); err != nil && errors.Is(err, noftl.ErrCrashed) {
					tx.Abort()
					rep.CrashFired = true
					break workload
				}
			}
		}
		var opErr error
	ops:
		for o := 0; o < opCount; o++ {
			switch pick := r.Float64(); {
			case pick < 0.55 || len(liveKeys) == 0:
				key := fmt.Sprintf("k%07d", nextKey)
				nextKey++
				val := newValue()
				rid, err := tbl.Insert(tx, encodeRow(key, val))
				if err != nil {
					opErr = err
					break ops
				}
				if err := idx.Insert(tx, []byte(key), rid); err != nil {
					opErr = err
					break ops
				}
				d[key] = val
				addKeys = append(addKeys, key)
			case pick < 0.85:
				key := liveKeys[r.Intn(len(liveKeys))]
				if delKeys[key] {
					continue
				}
				rid, ok, err := idx.Lookup(tx, []byte(key))
				if err != nil || !ok {
					opErr = err
					break ops
				}
				val := sameSizeValue(d, key)
				if err := tbl.Update(tx, rid, encodeRow(key, val)); err != nil {
					opErr = err
					break ops
				}
				d[key] = val
			default:
				key := liveKeys[r.Intn(len(liveKeys))]
				if delKeys[key] {
					continue
				}
				rid, ok, err := idx.Lookup(tx, []byte(key))
				if err != nil || !ok {
					opErr = err
					break ops
				}
				if err := tbl.Delete(tx, rid); err != nil {
					opErr = err
					break ops
				}
				if err := idx.Delete(tx, []byte(key)); err != nil {
					opErr = err
					break ops
				}
				d[key] = nil
				delKeys[key] = true
			}
		}
		switch {
		case opErr != nil:
			tx.Abort()
			if errors.Is(opErr, noftl.ErrCrashed) {
				// Crash mid-transaction: no commit record can be durable,
				// the delta must vanish.
				rep.CrashFired = true
				break workload
			}
			return rep, fmt.Errorf("chaos seed %d txn %d: %w", cfg.Seed, t, opErr)
		case abort:
			tx.Abort()
			rep.Aborted++
		default:
			if _, err := tx.Commit(); err != nil {
				if errors.Is(err, noftl.ErrCrashed) {
					// The commit force was cut: either the commit record
					// became durable or it did not — both are acceptable,
					// but only atomically.
					rep.CrashFired = true
					rep.InDoubt = true
					inDoubt = d
					break workload
				}
				return rep, fmt.Errorf("chaos seed %d commit %d: %w", cfg.Seed, t, err)
			}
			rep.Committed++
			for k, v := range d {
				if v == nil {
					delete(committed, k)
				} else {
					committed[k] = v
				}
			}
			liveKeys = append(liveKeys, addKeys...)
			if len(delKeys) > 0 {
				kept := liveKeys[:0]
				for _, k := range liveKeys {
					if !delKeys[k] {
						kept = append(kept, k)
					}
				}
				liveKeys = kept
			}
		}
	}

	img := db.Crash()
	rec, err := noftl.Reopen(img)
	if err != nil {
		return rep, fmt.Errorf("chaos seed %d reopen: %w", cfg.Seed, err)
	}
	defer rec.Close()
	if st, ok := rec.Recovery(); ok {
		rep.Recovery = st
	}
	if err := verify(rec, committed, inDoubt, &rep); err != nil {
		return rep, fmt.Errorf("chaos seed %d: %w", cfg.Seed, err)
	}
	return rep, nil
}

// verify checks the recovered database against the oracle: integrity
// invariants, exact committed contents (modulo the one in-doubt transaction,
// all or nothing) and index/heap agreement.
func verify(db *noftl.DB, committed map[string][]byte, inDoubt delta, rep *Report) error {
	if err := db.Admin().VerifyIntegrity(); err != nil {
		return fmt.Errorf("integrity: %w", err)
	}
	tbl, ok := db.Table("KV")
	if !ok {
		return errors.New("table KV lost in recovery")
	}
	idx, ok := db.Index("KV_PK")
	if !ok {
		return errors.New("index KV_PK lost in recovery")
	}

	got := make(map[string][]byte)
	tx := db.Begin()
	defer tx.Abort()
	var decodeErr error
	err := tbl.Scan(tx, func(_ noftl.RID, row []byte) bool {
		key, val, derr := decodeRow(row)
		if derr != nil {
			decodeErr = derr
			return false
		}
		got[key] = append([]byte(nil), val...)
		return true
	})
	if err == nil {
		err = decodeErr
	}
	if err != nil {
		return fmt.Errorf("scan: %w", err)
	}
	rep.Rows = len(got)

	if equalState(got, committed) {
		rep.InDoubtAlive = false
	} else if inDoubt != nil && equalState(got, applyDelta(committed, inDoubt)) {
		rep.InDoubtAlive = true
	} else {
		return stateDiff(got, committed, inDoubt)
	}

	// Index agreement: every surviving key resolves through the index to its
	// exact row, and the index holds nothing else.
	if n := int(idx.Entries()); n != len(got) {
		return fmt.Errorf("index has %d entries, heap has %d rows", n, len(got))
	}
	for key, val := range got {
		rid, ok, err := idx.Lookup(tx, []byte(key))
		if err != nil {
			return fmt.Errorf("lookup %q: %w", key, err)
		}
		if !ok {
			return fmt.Errorf("key %q present in heap but missing from index", key)
		}
		row, err := tbl.Get(tx, rid)
		if err != nil {
			return fmt.Errorf("get %q: %w", key, err)
		}
		if !bytes.Equal(row, encodeRow(key, val)) {
			return fmt.Errorf("index for %q addresses a different row", key)
		}
	}
	return nil
}

func applyDelta(base map[string][]byte, d delta) map[string][]byte {
	out := make(map[string][]byte, len(base)+len(d))
	for k, v := range base {
		out[k] = v
	}
	for k, v := range d {
		if v == nil {
			delete(out, k)
		} else {
			out[k] = v
		}
	}
	return out
}

func equalState(got, want map[string][]byte) bool {
	if len(got) != len(want) {
		return false
	}
	for k, v := range want {
		g, ok := got[k]
		if !ok || !bytes.Equal(g, v) {
			return false
		}
	}
	return true
}

// stateDiff renders a compact mismatch description for a failed run.
func stateDiff(got, committed map[string][]byte, inDoubt delta) error {
	missing, extra, changed := 0, 0, 0
	for k, v := range committed {
		g, ok := got[k]
		switch {
		case !ok:
			missing++
		case !bytes.Equal(g, v):
			changed++
		}
	}
	for k := range got {
		if _, ok := committed[k]; !ok {
			extra++
		}
	}
	return fmt.Errorf("recovered state matches neither oracle candidate: %d committed rows missing, %d unexpected rows, %d changed rows (in-doubt txn: %d keys)",
		missing, extra, changed, len(inDoubt))
}
