package chaos

import (
	"sync"
	"testing"

	"noftl"
)

// TestCrashRecoverySeeds is the campaign property test: 64 seeded crash
// points — plain, torn-tail, transient program faults, worn-block erase
// faults — must all reopen verify-clean with every committed row present and
// no uncommitted row visible.  Run() fails the run on any violation, so the
// assertion here is simply "no seed errors"; the aggregate counters guard
// against the campaign silently degenerating (e.g. crashes never firing).
func TestCrashRecoverySeeds(t *testing.T) {
	const seeds = 64
	res, err := Campaign(2026, seeds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if res.Runs != seeds {
		t.Fatalf("campaign ran %d of %d seeds", res.Runs, seeds)
	}
	if res.CrashesFired < seeds/4 {
		t.Errorf("only %d/%d seeds crashed mid-run; the crash-point range no longer covers the workload", res.CrashesFired, seeds)
	}
	if res.InDoubt == 0 {
		t.Error("no seed cut a commit force; in-doubt handling went unexercised")
	}
	if res.TornTailsSeen == 0 {
		t.Error("no recovery saw a torn tail; torn-program injection went unexercised")
	}
	if res.RowsRecovered == 0 {
		t.Error("no rows recovered across the whole campaign")
	}
}

// TestCheckpointsBoundReplay is the tentpole's bounding property: on the same
// workload, recovery after periodic checkpoints must replay less than 25 % of
// the bytes replayed with checkpoints disabled.
func TestCheckpointsBoundReplay(t *testing.T) {
	base := Config{Seed: 7, Txns: 300, CrashAfterOps: -1} // clean crash: identical workloads
	unbounded := base
	unbounded.CheckpointEveryBytes = -1
	noCkpt, err := Run(unbounded)
	if err != nil {
		t.Fatal(err)
	}
	bounded := base // default 32 KiB cadence
	withCkpt, err := Run(bounded)
	if err != nil {
		t.Fatal(err)
	}
	if noCkpt.Committed != withCkpt.Committed {
		t.Fatalf("workloads diverged: %d vs %d committed", noCkpt.Committed, withCkpt.Committed)
	}
	if noCkpt.Recovery.ReplayedBytes == 0 {
		t.Fatal("unbounded run replayed nothing; the baseline is meaningless")
	}
	ratio := float64(withCkpt.Recovery.ReplayedBytes) / float64(noCkpt.Recovery.ReplayedBytes)
	t.Logf("replayed %d bytes with checkpoints vs %d without (ratio %.3f)",
		withCkpt.Recovery.ReplayedBytes, noCkpt.Recovery.ReplayedBytes, ratio)
	if ratio >= 0.25 {
		t.Fatalf("checkpoints do not bound replay: ratio %.3f >= 0.25", ratio)
	}
}

// TestWornBlockCampaign leans on the wear faults: every 12th erase fails
// (marking the block bad mid-GC-relocation) and every 29th program faults
// transiently.  GC and wear leveling must absorb both without losing a live
// page, and the post-crash recovery must still verify clean.
func TestWornBlockCampaign(t *testing.T) {
	for _, seed := range []uint64{11, 12, 13, 14} {
		rep, err := Run(Config{
			Seed:             seed,
			Txns:             400,
			CrashAfterOps:    -1, // no injected crash: the faults are the story
			FailEraseEvery:   12,
			FailProgramEvery: 29,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Committed == 0 || rep.Rows == 0 {
			t.Fatalf("seed %d: degenerate run (%d committed, %d rows)", seed, rep.Committed, rep.Rows)
		}
	}
}

// TestGroupCommitCrashAtomicity crashes a database while several goroutines
// commit through the WAL's group-commit path.  The durable log is an LSN
// prefix, so after recovery every transaction whose Commit returned success
// must be fully present, and every transaction must be all-or-nothing — a
// crashed leader's followers either all replay or all vanish, never a row of
// one and not the other.
func TestGroupCommitCrashAtomicity(t *testing.T) {
	db, err := noftl.Open(
		noftl.WithWALGroupCommit(8, 0),
		noftl.WithCheckpointEvery(0, 64<<10),
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("G", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := db.CreateIndex("G_PK", "G", []string{"k"}, true, "")
	if err != nil {
		t.Fatal(err)
	}
	db.Admin().ArmFaults(noftl.FaultPlan{Seed: 99, CrashAfterOps: 300})

	const workers, txnsPer, rowsPer = 4, 40, 3
	// acked[w][t] = the worker's t-th transaction got a successful Commit.
	acked := make([][]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		acked[w] = make([]bool, txnsPer)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txnsPer; i++ {
				tx := db.Begin()
				ok := true
				for r := 0; r < rowsPer; r++ {
					key := []byte{byte('a' + w), byte(i), byte(r)}
					rid, err := tbl.Insert(tx, append([]byte{byte(w), byte(i), byte(r)}, key...))
					if err == nil {
						err = idx.Insert(tx, key, rid)
					}
					if err != nil {
						ok = false
						break
					}
				}
				if !ok {
					tx.Abort()
					return
				}
				if _, err := tx.Commit(); err != nil {
					return
				}
				acked[w][i] = true
			}
		}(w)
	}
	wg.Wait()

	rec, err := noftl.Reopen(db.Crash())
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if err := rec.Admin().VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	rtbl, ok := rec.Table("G")
	if !ok {
		t.Fatal("table G lost in recovery")
	}
	// Count surviving rows per (worker, txn).
	survived := make(map[[2]int]int)
	tx := rec.Begin()
	defer tx.Abort()
	if err := rtbl.Scan(tx, func(_ noftl.RID, row []byte) bool {
		survived[[2]int{int(row[0]), int(row[1])}]++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < txnsPer; i++ {
			n := survived[[2]int{w, i}]
			if n != 0 && n != rowsPer {
				t.Fatalf("worker %d txn %d survived partially: %d of %d rows", w, i, n, rowsPer)
			}
			if acked[w][i] && n != rowsPer {
				t.Fatalf("worker %d txn %d was acknowledged but lost in recovery", w, i)
			}
		}
	}
}
