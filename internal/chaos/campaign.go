package chaos

import "fmt"

// CampaignResult aggregates a multi-seed chaos campaign.
type CampaignResult struct {
	Runs            int
	CrashesFired    int   // runs whose injected crash hit before the workload ended
	CleanCrashes    int   // runs that ended in a plain power loss
	InDoubt         int   // runs that cut a commit force
	InDoubtAlive    int   // ... where the in-doubt transaction survived
	TornTailsSeen   int   // recoveries that detected and truncated a torn tail
	RowsRecovered   int64 // total rows verified across all recoveries
	ReplayedRecords int64 // total log records recovery replayed
	ReplayedBytes   int64 // total log bytes recovery replayed
}

func (r CampaignResult) String() string {
	return fmt.Sprintf("chaos: %d runs, %d injected crashes (%d in-doubt, %d survived), %d clean, %d torn tails, %d rows verified, %d records / %d bytes replayed",
		r.Runs, r.CrashesFired, r.InDoubt, r.InDoubtAlive, r.CleanCrashes,
		r.TornTailsSeen, r.RowsRecovered, r.ReplayedRecords, r.ReplayedBytes)
}

// Campaign runs n seeded chaos rounds derived from baseSeed, cycling fault
// flavours so the seeds cover plain crashes, torn tails, transient program
// failures and worn-block erase failures.  The first verification failure
// aborts the campaign with the offending seed in the error.
func Campaign(baseSeed uint64, n int, base Config) (CampaignResult, error) {
	var res CampaignResult
	for i := 0; i < n; i++ {
		cfg := base
		cfg.Seed = baseSeed + uint64(i)*0x9e3779b97f4a7c15
		// Deterministic fault flavour rotation.
		if i%3 == 1 {
			cfg.TornTail = true
		}
		if i%4 == 2 && cfg.FailProgramEvery == 0 {
			cfg.FailProgramEvery = 113
		}
		if i%5 == 3 && cfg.FailEraseEvery == 0 {
			cfg.FailEraseEvery = 97
		}
		rep, err := Run(cfg)
		if err != nil {
			return res, err
		}
		res.Runs++
		if rep.CrashFired {
			res.CrashesFired++
		} else {
			res.CleanCrashes++
		}
		if rep.InDoubt {
			res.InDoubt++
		}
		if rep.InDoubtAlive {
			res.InDoubtAlive++
		}
		if rep.Recovery.TornTail {
			res.TornTailsSeen++
		}
		res.RowsRecovered += int64(rep.Rows)
		res.ReplayedRecords += int64(rep.Recovery.ReplayedRecords)
		res.ReplayedBytes += rep.Recovery.ReplayedBytes
	}
	return res, nil
}
