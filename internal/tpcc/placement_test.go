package tpcc

import "testing"

func TestEstimateGroupPages(t *testing.T) {
	cfg := DefaultConfig().withDefaults()
	groups := estimateGroupPages(cfg, 4096)
	if len(groups) != 6 {
		t.Fatalf("got %d groups", len(groups))
	}
	for i, p := range groups {
		if p <= 0 {
			t.Fatalf("group %d has non-positive footprint %d", i, p)
		}
	}
	// ORDERLINE (group 1) must be the largest heap group — it dominates the
	// TPC-C footprint at every scale.
	for i, p := range groups {
		if i != 1 && p > groups[1] {
			t.Fatalf("group %d (%d pages) larger than ORDERLINE group (%d)", i, p, groups[1])
		}
	}
	// More transactions mean more growth for ORDERLINE and HISTORY.
	bigger := cfg
	bigger.Transactions *= 10
	groups2 := estimateGroupPages(bigger, 4096)
	if groups2[1] <= groups[1] || groups2[0] <= groups[0] {
		t.Fatalf("growth not reflected: %v vs %v", groups2, groups)
	}
}

func TestPlanRegionDies(t *testing.T) {
	cfg := DefaultConfig().withDefaults()
	for _, tc := range []struct {
		dies        int
		pagesPerDie int
	}{
		{8, 512}, {16, 640}, {64, 1408}, {6, 2048},
	} {
		dies := planRegionDies(cfg, tc.dies, tc.pagesPerDie)
		if dies == nil {
			t.Fatalf("planRegionDies(%d) returned nil", tc.dies)
		}
		if len(dies) != 6 {
			t.Fatalf("plan has %d groups", len(dies))
		}
		sum := 0
		for i, d := range dies {
			if d < 1 {
				t.Fatalf("%d dies: group %d got %d dies", tc.dies, i, d)
			}
			sum += d
		}
		if sum != tc.dies {
			t.Fatalf("%d dies: plan distributes %d", tc.dies, sum)
		}
	}
	// Too few dies for six groups.
	if planRegionDies(cfg, 4, 512) != nil {
		t.Fatal("plan produced for a 4-die device")
	}
	// With plenty of dies and capacity, the hottest group (OL_IDX + STOCK)
	// gets the largest share, mirroring the paper's Figure 2 where it holds
	// 29 of 64 dies.
	dies := planRegionDies(cfg, 64, 4096)
	largest := 0
	for i, d := range dies {
		if d > dies[largest] {
			largest = i
		}
	}
	if largest != 3 && largest != 1 {
		t.Fatalf("largest region is group %d (%v), expected the STOCK/OL_IDX or ORDERLINE group", largest, dies)
	}
}

func TestFigure2GroupsCoverEveryObject(t *testing.T) {
	groups := figure2Groups()
	if len(groups) != 6 {
		t.Fatalf("expected 6 groups, got %d", len(groups))
	}
	seen := map[string]int{}
	for _, g := range groups {
		for _, o := range g.Objects {
			seen[o]++
		}
	}
	all := []string{
		TableWarehouse, TableDistrict, TableCustomer, TableHistory, TableNewOrder,
		TableOrder, TableOrderLine, TableItem, TableStock,
		IndexWarehouse, IndexDistrict, IndexCustomer, IndexCustName, IndexItem,
		IndexStock, IndexNewOrder, IndexOrder, IndexOrderCust, IndexOrderLine,
	}
	for _, name := range all {
		if seen[name] != 1 {
			t.Errorf("object %s appears %d times in the Figure 2 grouping", name, seen[name])
		}
	}
	// Shares sum to 1 (the paper's 64 dies).
	var total float64
	for _, g := range groups {
		total += g.Share
	}
	if total < 0.99 || total > 1.01 {
		t.Fatalf("shares sum to %v", total)
	}
}
