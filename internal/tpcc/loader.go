package tpcc

import (
	"fmt"

	"noftl"
)

// Load populates the TPC-C database according to the configuration.  The
// loader follows clause 4.3 of the specification with the cardinalities
// scaled by the configuration.  It commits in batches so the WAL and buffer
// pool behave as they would for a bulk load.
func Load(db *noftl.DB, sch *Schema, cfg Config) error {
	cfg = cfg.withDefaults()
	r := newRNG(cfg.Seed)

	if err := loadItems(db, sch, cfg, r); err != nil {
		return fmt.Errorf("tpcc load items: %w", err)
	}
	// Checkpoints between loading steps keep the WAL footprint bounded so
	// the (small) metadata region never fills up during the bulk load.
	if _, err := db.Checkpoint(db.SimulatedTime()); err != nil {
		return fmt.Errorf("tpcc load checkpoint: %w", err)
	}
	for w := 1; w <= cfg.Warehouses; w++ {
		if err := loadWarehouse(db, sch, cfg, r, w); err != nil {
			return fmt.Errorf("tpcc load warehouse %d: %w", w, err)
		}
	}
	// Push the load onto flash so the measured run starts from a clean
	// buffer-pool state.
	if _, err := db.Checkpoint(db.SimulatedTime()); err != nil {
		return fmt.Errorf("tpcc load checkpoint: %w", err)
	}
	return nil
}

const loadBatch = 200

func loadItems(db *noftl.DB, sch *Schema, cfg Config, r *rng) error {
	tx := db.Begin()
	for i := 1; i <= cfg.ItemCount; i++ {
		item := Item{
			IID:   uint32(i),
			ImID:  uint32(r.uniform(1, 10000)),
			Name:  r.aString(14, 24),
			Price: int64(r.uniform(100, 10000)),
			Data:  r.dataString(),
		}
		rid, err := sch.Item.Insert(tx, item.Encode())
		if err != nil {
			return err
		}
		if err := sch.IIdx.Insert(tx, itemKey(i), rid); err != nil {
			return err
		}
		if i%loadBatch == 0 {
			if _, err := tx.Commit(); err != nil {
				return err
			}
			tx = db.Begin()
		}
	}
	_, err := tx.Commit()
	return err
}

func loadWarehouse(db *noftl.DB, sch *Schema, cfg Config, r *rng, w int) error {
	tx := db.Begin()
	wh := Warehouse{
		WID: uint32(w), Name: r.aString(6, 10), Street: r.aString(10, 20),
		City: r.aString(10, 20), State: r.aString(2, 2), Zip: r.zip(),
		Tax: int64(r.uniform(0, 2000)), YTD: 30000000,
	}
	rid, err := sch.Warehouse.Insert(tx, wh.Encode())
	if err != nil {
		return err
	}
	if err := sch.WIdx.Insert(tx, warehouseKey(w), rid); err != nil {
		return err
	}
	// Stock.
	for i := 1; i <= cfg.ItemCount; i++ {
		st := Stock{
			IID: uint32(i), WID: uint32(w),
			Quantity: uint32(r.uniform(10, 100)),
			YTD:      0, OrderCnt: 0, RemoteCnt: 0,
			Data: r.dataString(),
		}
		for d := range st.Dists {
			st.Dists[d] = r.aString(24, 24)
		}
		srid, err := sch.Stock.Insert(tx, st.Encode())
		if err != nil {
			return err
		}
		if err := sch.SIdx.Insert(tx, stockKey(w, i), srid); err != nil {
			return err
		}
		if i%loadBatch == 0 {
			if _, err := tx.Commit(); err != nil {
				return err
			}
			tx = db.Begin()
		}
	}
	if _, err := tx.Commit(); err != nil {
		return err
	}
	if _, err := db.Checkpoint(db.SimulatedTime()); err != nil {
		return err
	}
	// Districts, customers, history and initial orders.
	for d := 1; d <= cfg.DistrictsPerWarehouse; d++ {
		if err := loadDistrict(db, sch, cfg, r, w, d); err != nil {
			return err
		}
		if _, err := db.Checkpoint(db.SimulatedTime()); err != nil {
			return err
		}
	}
	return nil
}

func loadDistrict(db *noftl.DB, sch *Schema, cfg Config, r *rng, w, d int) error {
	tx := db.Begin()
	dist := District{
		DID: uint32(d), WID: uint32(w), Name: r.aString(6, 10),
		Street: r.aString(10, 20), City: r.aString(10, 20), State: r.aString(2, 2),
		Zip: r.zip(), Tax: int64(r.uniform(0, 2000)), YTD: 3000000,
		NextOID: uint32(cfg.InitialOrdersPerDistrict + 1),
	}
	rid, err := sch.District.Insert(tx, dist.Encode())
	if err != nil {
		return err
	}
	if err := sch.DIdx.Insert(tx, districtKey(w, d), rid); err != nil {
		return err
	}

	// Customers and their history rows.
	for c := 1; c <= cfg.CustomersPerDistrict; c++ {
		credit := "GC"
		if r.Intn(10) == 0 {
			credit = "BC"
		}
		last := lastName((c - 1) % 1000)
		if cfg.CustomersPerDistrict < 1000 {
			last = lastName((c - 1) % cfg.CustomersPerDistrict)
		}
		cust := Customer{
			CID: uint32(c), DID: uint32(d), WID: uint32(w),
			First: r.aString(8, 16), Middle: "OE", Last: last,
			Street: r.aString(10, 20), City: r.aString(10, 20), State: r.aString(2, 2),
			Zip: r.zip(), Phone: r.nString(16), Since: 1,
			Credit: credit, CreditLimit: 5000000, Discount: int64(r.uniform(0, 5000)),
			Balance: -1000, YTDPayment: 1000, PaymentCnt: 1, DeliveryCnt: 0,
			Data: r.aString(100, 250),
		}
		crid, err := sch.Customer.Insert(tx, cust.Encode())
		if err != nil {
			return err
		}
		if err := sch.CIdx.Insert(tx, customerKey(w, d, c), crid); err != nil {
			return err
		}
		if err := sch.CNameIdx.Insert(tx, customerNameKey(w, d, cust.Last, c), crid); err != nil {
			return err
		}
		hist := History{
			CID: uint32(c), CDID: uint32(d), CWID: uint32(w),
			DID: uint32(d), WID: uint32(w), Date: 1, Amount: 1000, Data: r.aString(12, 24),
		}
		if _, err := sch.History.Insert(tx, hist.Encode()); err != nil {
			return err
		}
		if c%loadBatch == 0 {
			if _, err := tx.Commit(); err != nil {
				return err
			}
			tx = db.Begin()
		}
	}
	if _, err := tx.Commit(); err != nil {
		return err
	}

	// Initial orders: each of the first InitialOrdersPerDistrict customers
	// (in a shuffled permutation) has one existing order; the most recent
	// third is still undelivered (NEW_ORDER rows), per clause 4.3.3.1.
	tx = db.Begin()
	perm := r.Perm(cfg.CustomersPerDistrict)
	for o := 1; o <= cfg.InitialOrdersPerDistrict; o++ {
		cid := perm[(o-1)%len(perm)] + 1
		olCnt := r.uniform(5, 15)
		delivered := o <= cfg.InitialOrdersPerDistrict*2/3
		carrier := uint32(0)
		if delivered {
			carrier = uint32(r.uniform(1, 10))
		}
		ord := Order{
			OID: uint32(o), DID: uint32(d), WID: uint32(w), CID: uint32(cid),
			EntryDate: 1, CarrierID: carrier, OLCount: uint32(olCnt), AllLocal: 1,
		}
		orid, err := sch.Order.Insert(tx, ord.Encode())
		if err != nil {
			return err
		}
		if err := sch.OIdx.Insert(tx, orderKey(w, d, o), orid); err != nil {
			return err
		}
		if err := sch.OCustIdx.Insert(tx, orderCustKey(w, d, cid, o), orid); err != nil {
			return err
		}
		if !delivered {
			no := NewOrder{OID: uint32(o), DID: uint32(d), WID: uint32(w)}
			nrid, err := sch.NewOrder.Insert(tx, no.Encode())
			if err != nil {
				return err
			}
			if err := sch.NOIdx.Insert(tx, newOrderKey(w, d, o), nrid); err != nil {
				return err
			}
		}
		for n := 1; n <= olCnt; n++ {
			ol := OrderLine{
				OID: uint32(o), DID: uint32(d), WID: uint32(w), Number: uint32(n),
				ItemID: uint32(r.uniform(1, cfg.ItemCount)), SupplyWID: uint32(w),
				Quantity: 5, Amount: int64(r.uniform(1, 999999)), DistInfo: r.aString(24, 24),
			}
			if delivered {
				ol.DeliveryDate = 1
				ol.Amount = 0
			}
			olrid, err := sch.OrderLine.Insert(tx, ol.Encode())
			if err != nil {
				return err
			}
			if err := sch.OLIdx.Insert(tx, orderLineKey(w, d, o, n), olrid); err != nil {
				return err
			}
		}
		if o%50 == 0 {
			if _, err := tx.Commit(); err != nil {
				return err
			}
			tx = db.Begin()
		}
	}
	_, err = tx.Commit()
	return err
}
