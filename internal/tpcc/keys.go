package tpcc

import "noftl"

// Index key constructors.  All keys are order-preserving composite keys so
// range and prefix scans work (see btree.KeyBuilder).

func warehouseKey(w int) []byte { return noftl.Key(uint32(w)) }

func districtKey(w, d int) []byte { return noftl.Key(uint32(w), uint32(d)) }

func customerKey(w, d, c int) []byte { return noftl.Key(uint32(w), uint32(d), uint32(c)) }

// customerNameKey indexes customers by (w, d, last name, id); the id suffix
// makes the key unique within the non-unique name index.
func customerNameKey(w, d int, last string, c int) []byte {
	return noftl.NewKeyBuilder().
		AddUint32(uint32(w)).AddUint32(uint32(d)).AddString(last).AddUint32(uint32(c)).Bytes()
}

// customerNamePrefix is the scan prefix for all customers with a last name.
func customerNamePrefix(w, d int, last string) []byte {
	return noftl.NewKeyBuilder().
		AddUint32(uint32(w)).AddUint32(uint32(d)).AddString(last).Bytes()
}

func itemKey(i int) []byte { return noftl.Key(uint32(i)) }

func stockKey(w, i int) []byte { return noftl.Key(uint32(w), uint32(i)) }

func newOrderKey(w, d, o int) []byte { return noftl.Key(uint32(w), uint32(d), uint32(o)) }

// newOrderPrefix is the scan prefix for all undelivered orders of a district.
func newOrderPrefix(w, d int) []byte { return noftl.Key(uint32(w), uint32(d)) }

func orderKey(w, d, o int) []byte { return noftl.Key(uint32(w), uint32(d), uint32(o)) }

// orderCustKey indexes orders by customer so OrderStatus can find the most
// recent order of a customer with a prefix scan.
func orderCustKey(w, d, c, o int) []byte {
	return noftl.Key(uint32(w), uint32(d), uint32(c), uint32(o))
}

func orderCustPrefix(w, d, c int) []byte { return noftl.Key(uint32(w), uint32(d), uint32(c)) }

func orderLineKey(w, d, o, number int) []byte {
	return noftl.Key(uint32(w), uint32(d), uint32(o), uint32(number))
}

// orderLinePrefix is the scan prefix for all lines of one order.
func orderLinePrefix(w, d, o int) []byte { return noftl.Key(uint32(w), uint32(d), uint32(o)) }
