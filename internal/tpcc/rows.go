package tpcc

import (
	"encoding/binary"
	"fmt"
)

// Row encodings.  Rows are fixed-size binary records (strings are stored in
// fixed-width fields) so that in-place heap updates never change the record
// size, mirroring the fixed-width row layout TPC-C kits typically use.

// fieldWriter/fieldReader are tiny helpers for the fixed layouts.
type fieldWriter struct {
	buf []byte
	off int
}

func newFieldWriter(size int) *fieldWriter { return &fieldWriter{buf: make([]byte, size)} }

func (w *fieldWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[w.off:], v)
	w.off += 4
}

func (w *fieldWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[w.off:], v)
	w.off += 8
}

func (w *fieldWriter) i64(v int64) { w.u64(uint64(v)) }

func (w *fieldWriter) money(v int64) { w.u64(uint64(v)) } // cents

func (w *fieldWriter) str(s string, width int) {
	copy(w.buf[w.off:w.off+width], s)
	w.off += width
}

func (w *fieldWriter) bytes() []byte { return w.buf }

type fieldReader struct {
	buf []byte
	off int
}

func (r *fieldReader) u32() uint32 {
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *fieldReader) u64() uint64 {
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *fieldReader) i64() int64 { return int64(r.u64()) }

func (r *fieldReader) str(width int) string {
	b := r.buf[r.off : r.off+width]
	r.off += width
	end := len(b)
	for end > 0 && b[end-1] == 0 {
		end--
	}
	return string(b[:end])
}

// Warehouse row (~112 bytes).
type Warehouse struct {
	WID    uint32
	Name   string
	Street string
	City   string
	State  string
	Zip    string
	Tax    int64 // basis points
	YTD    int64 // cents
}

const warehouseSize = 4 + 10 + 20 + 20 + 2 + 9 + 8 + 8

// Encode serializes the row.
func (w Warehouse) Encode() []byte {
	fw := newFieldWriter(warehouseSize)
	fw.u32(w.WID)
	fw.str(w.Name, 10)
	fw.str(w.Street, 20)
	fw.str(w.City, 20)
	fw.str(w.State, 2)
	fw.str(w.Zip, 9)
	fw.i64(w.Tax)
	fw.money(w.YTD)
	return fw.bytes()
}

// DecodeWarehouse deserializes a warehouse row.
func DecodeWarehouse(b []byte) (Warehouse, error) {
	if len(b) < warehouseSize {
		return Warehouse{}, fmt.Errorf("tpcc: short WAREHOUSE row (%d bytes)", len(b))
	}
	r := &fieldReader{buf: b}
	return Warehouse{
		WID: r.u32(), Name: r.str(10), Street: r.str(20), City: r.str(20),
		State: r.str(2), Zip: r.str(9), Tax: r.i64(), YTD: r.i64(),
	}, nil
}

// District row.
type District struct {
	DID     uint32
	WID     uint32
	Name    string
	Street  string
	City    string
	State   string
	Zip     string
	Tax     int64
	YTD     int64
	NextOID uint32
}

const districtSize = 4 + 4 + 10 + 20 + 20 + 2 + 9 + 8 + 8 + 4

// Encode serializes the row.
func (d District) Encode() []byte {
	fw := newFieldWriter(districtSize)
	fw.u32(d.DID)
	fw.u32(d.WID)
	fw.str(d.Name, 10)
	fw.str(d.Street, 20)
	fw.str(d.City, 20)
	fw.str(d.State, 2)
	fw.str(d.Zip, 9)
	fw.i64(d.Tax)
	fw.money(d.YTD)
	fw.u32(d.NextOID)
	return fw.bytes()
}

// DecodeDistrict deserializes a district row.
func DecodeDistrict(b []byte) (District, error) {
	if len(b) < districtSize {
		return District{}, fmt.Errorf("tpcc: short DISTRICT row (%d bytes)", len(b))
	}
	r := &fieldReader{buf: b}
	return District{
		DID: r.u32(), WID: r.u32(), Name: r.str(10), Street: r.str(20), City: r.str(20),
		State: r.str(2), Zip: r.str(9), Tax: r.i64(), YTD: r.i64(), NextOID: r.u32(),
	}, nil
}

// Customer row (~430 bytes).
type Customer struct {
	CID         uint32
	DID         uint32
	WID         uint32
	First       string
	Middle      string
	Last        string
	Street      string
	City        string
	State       string
	Zip         string
	Phone       string
	Since       int64
	Credit      string
	CreditLimit int64
	Discount    int64
	Balance     int64
	YTDPayment  int64
	PaymentCnt  uint32
	DeliveryCnt uint32
	Data        string
}

const customerSize = 4*3 + 16 + 2 + 16 + 20 + 20 + 2 + 9 + 16 + 8 + 2 + 8 + 8 + 8 + 8 + 4 + 4 + 250

// Encode serializes the row.
func (c Customer) Encode() []byte {
	fw := newFieldWriter(customerSize)
	fw.u32(c.CID)
	fw.u32(c.DID)
	fw.u32(c.WID)
	fw.str(c.First, 16)
	fw.str(c.Middle, 2)
	fw.str(c.Last, 16)
	fw.str(c.Street, 20)
	fw.str(c.City, 20)
	fw.str(c.State, 2)
	fw.str(c.Zip, 9)
	fw.str(c.Phone, 16)
	fw.i64(c.Since)
	fw.str(c.Credit, 2)
	fw.money(c.CreditLimit)
	fw.i64(c.Discount)
	fw.money(c.Balance)
	fw.money(c.YTDPayment)
	fw.u32(c.PaymentCnt)
	fw.u32(c.DeliveryCnt)
	fw.str(c.Data, 250)
	return fw.bytes()
}

// DecodeCustomer deserializes a customer row.
func DecodeCustomer(b []byte) (Customer, error) {
	if len(b) < customerSize {
		return Customer{}, fmt.Errorf("tpcc: short CUSTOMER row (%d bytes)", len(b))
	}
	r := &fieldReader{buf: b}
	return Customer{
		CID: r.u32(), DID: r.u32(), WID: r.u32(),
		First: r.str(16), Middle: r.str(2), Last: r.str(16),
		Street: r.str(20), City: r.str(20), State: r.str(2), Zip: r.str(9), Phone: r.str(16),
		Since: r.i64(), Credit: r.str(2), CreditLimit: r.i64(), Discount: r.i64(),
		Balance: r.i64(), YTDPayment: r.i64(), PaymentCnt: r.u32(), DeliveryCnt: r.u32(),
		Data: r.str(250),
	}, nil
}

// History row (insert-only).
type History struct {
	CID    uint32
	CDID   uint32
	CWID   uint32
	DID    uint32
	WID    uint32
	Date   int64
	Amount int64
	Data   string
}

const historySize = 4*5 + 8 + 8 + 24

// Encode serializes the row.
func (h History) Encode() []byte {
	fw := newFieldWriter(historySize)
	fw.u32(h.CID)
	fw.u32(h.CDID)
	fw.u32(h.CWID)
	fw.u32(h.DID)
	fw.u32(h.WID)
	fw.i64(h.Date)
	fw.money(h.Amount)
	fw.str(h.Data, 24)
	return fw.bytes()
}

// DecodeHistory deserializes a history row.
func DecodeHistory(b []byte) (History, error) {
	if len(b) < historySize {
		return History{}, fmt.Errorf("tpcc: short HISTORY row (%d bytes)", len(b))
	}
	r := &fieldReader{buf: b}
	return History{
		CID: r.u32(), CDID: r.u32(), CWID: r.u32(), DID: r.u32(), WID: r.u32(),
		Date: r.i64(), Amount: r.i64(), Data: r.str(24),
	}, nil
}

// NewOrder row.
type NewOrder struct {
	OID uint32
	DID uint32
	WID uint32
}

const newOrderSize = 12

// Encode serializes the row.
func (n NewOrder) Encode() []byte {
	fw := newFieldWriter(newOrderSize)
	fw.u32(n.OID)
	fw.u32(n.DID)
	fw.u32(n.WID)
	return fw.bytes()
}

// DecodeNewOrder deserializes a new-order row.
func DecodeNewOrder(b []byte) (NewOrder, error) {
	if len(b) < newOrderSize {
		return NewOrder{}, fmt.Errorf("tpcc: short NEW_ORDER row (%d bytes)", len(b))
	}
	r := &fieldReader{buf: b}
	return NewOrder{OID: r.u32(), DID: r.u32(), WID: r.u32()}, nil
}

// Order row.
type Order struct {
	OID       uint32
	DID       uint32
	WID       uint32
	CID       uint32
	EntryDate int64
	CarrierID uint32
	OLCount   uint32
	AllLocal  uint32
}

const orderSize = 4*4 + 8 + 4 + 4 + 4

// Encode serializes the row.
func (o Order) Encode() []byte {
	fw := newFieldWriter(orderSize)
	fw.u32(o.OID)
	fw.u32(o.DID)
	fw.u32(o.WID)
	fw.u32(o.CID)
	fw.i64(o.EntryDate)
	fw.u32(o.CarrierID)
	fw.u32(o.OLCount)
	fw.u32(o.AllLocal)
	return fw.bytes()
}

// DecodeOrder deserializes an order row.
func DecodeOrder(b []byte) (Order, error) {
	if len(b) < orderSize {
		return Order{}, fmt.Errorf("tpcc: short ORDER row (%d bytes)", len(b))
	}
	r := &fieldReader{buf: b}
	return Order{
		OID: r.u32(), DID: r.u32(), WID: r.u32(), CID: r.u32(),
		EntryDate: r.i64(), CarrierID: r.u32(), OLCount: r.u32(), AllLocal: r.u32(),
	}, nil
}

// OrderLine row.
type OrderLine struct {
	OID          uint32
	DID          uint32
	WID          uint32
	Number       uint32
	ItemID       uint32
	SupplyWID    uint32
	DeliveryDate int64
	Quantity     uint32
	Amount       int64
	DistInfo     string
}

const orderLineSize = 4*6 + 8 + 4 + 8 + 24

// Encode serializes the row.
func (ol OrderLine) Encode() []byte {
	fw := newFieldWriter(orderLineSize)
	fw.u32(ol.OID)
	fw.u32(ol.DID)
	fw.u32(ol.WID)
	fw.u32(ol.Number)
	fw.u32(ol.ItemID)
	fw.u32(ol.SupplyWID)
	fw.i64(ol.DeliveryDate)
	fw.u32(ol.Quantity)
	fw.money(ol.Amount)
	fw.str(ol.DistInfo, 24)
	return fw.bytes()
}

// DecodeOrderLine deserializes an order-line row.
func DecodeOrderLine(b []byte) (OrderLine, error) {
	if len(b) < orderLineSize {
		return OrderLine{}, fmt.Errorf("tpcc: short ORDERLINE row (%d bytes)", len(b))
	}
	r := &fieldReader{buf: b}
	return OrderLine{
		OID: r.u32(), DID: r.u32(), WID: r.u32(), Number: r.u32(), ItemID: r.u32(),
		SupplyWID: r.u32(), DeliveryDate: r.i64(), Quantity: r.u32(), Amount: r.i64(),
		DistInfo: r.str(24),
	}, nil
}

// Item row.
type Item struct {
	IID   uint32
	ImID  uint32
	Name  string
	Price int64
	Data  string
}

const itemSize = 4 + 4 + 24 + 8 + 50

// Encode serializes the row.
func (i Item) Encode() []byte {
	fw := newFieldWriter(itemSize)
	fw.u32(i.IID)
	fw.u32(i.ImID)
	fw.str(i.Name, 24)
	fw.money(i.Price)
	fw.str(i.Data, 50)
	return fw.bytes()
}

// DecodeItem deserializes an item row.
func DecodeItem(b []byte) (Item, error) {
	if len(b) < itemSize {
		return Item{}, fmt.Errorf("tpcc: short ITEM row (%d bytes)", len(b))
	}
	r := &fieldReader{buf: b}
	return Item{IID: r.u32(), ImID: r.u32(), Name: r.str(24), Price: r.i64(), Data: r.str(50)}, nil
}

// Stock row (~318 bytes).
type Stock struct {
	IID       uint32
	WID       uint32
	Quantity  uint32
	Dists     [10]string // 24 chars each
	YTD       int64
	OrderCnt  uint32
	RemoteCnt uint32
	Data      string
}

const stockSize = 4 + 4 + 4 + 10*24 + 8 + 4 + 4 + 50

// Encode serializes the row.
func (s Stock) Encode() []byte {
	fw := newFieldWriter(stockSize)
	fw.u32(s.IID)
	fw.u32(s.WID)
	fw.u32(s.Quantity)
	for _, d := range s.Dists {
		fw.str(d, 24)
	}
	fw.i64(s.YTD)
	fw.u32(s.OrderCnt)
	fw.u32(s.RemoteCnt)
	fw.str(s.Data, 50)
	return fw.bytes()
}

// DecodeStock deserializes a stock row.
func DecodeStock(b []byte) (Stock, error) {
	if len(b) < stockSize {
		return Stock{}, fmt.Errorf("tpcc: short STOCK row (%d bytes)", len(b))
	}
	r := &fieldReader{buf: b}
	s := Stock{IID: r.u32(), WID: r.u32(), Quantity: r.u32()}
	for i := range s.Dists {
		s.Dists[i] = r.str(24)
	}
	s.YTD = r.i64()
	s.OrderCnt = r.u32()
	s.RemoteCnt = r.u32()
	s.Data = r.str(50)
	return s, nil
}
