package tpcc

// Die allocation for the multi-region placement configuration.
//
// The paper distributes the 64 dies over the six regions of Figure 2 "based
// on sizes of objects and their I/O rate".  Because the reproduction scales
// the TPC-C cardinalities, the die shares are recomputed for the configured
// scale from the expected footprint of each object group (initial size plus
// the growth caused by the measured transactions), instead of hard-coding
// the paper's 2/11/10/29/6/6 split, which reflects their 100+ warehouse
// database.

const (
	heapFillFactor  = 0.90
	indexFillFactor = 0.65
	indexEntryExtra = 10 + 6 // RID value + per-entry slot overhead
	walReservePages = 200    // bounded by the periodic checkpoints
	pageHeaderBytes = 48
)

// groupIOWeights are the relative logical I/O rates of the six Figure-2
// groups per executed transaction, derived from the TPC-C transaction
// profile (e.g. every NewOrder touches ~10 STOCK rows and ~10 OL_IDX
// entries, every StockLevel scans ~200 order lines and their stock rows).
// They play the role of the "I/O rate" input the paper's DBA used when
// distributing dies over regions.
var groupIOWeights = []float64{
	0.5,  // group 0: DBMS metadata, WAL, HISTORY appends
	10.0, // group 1: ORDERLINE
	3.0,  // group 2: CUSTOMER
	22.0, // group 3: OL_IDX + STOCK
	5.0,  // group 4: NEW_ORDER/ORDER and their indexes
	7.0,  // group 5: lookup tables and read-mostly indexes
}

// ioWeightShare is the blend factor between the I/O-rate share and the size
// share when distributing dies (the paper weighs both).
const ioWeightShare = 0.5

func heapPages(rows int64, rowSize int, pageSize int) int64 {
	perPage := int64(float64(pageSize-pageHeaderBytes) * heapFillFactor / float64(rowSize+4))
	if perPage < 1 {
		perPage = 1
	}
	return (rows + perPage - 1) / perPage
}

func indexPages(entries int64, keySize int, pageSize int) int64 {
	perPage := int64(float64(pageSize-pageHeaderBytes) * indexFillFactor / float64(keySize+indexEntryExtra))
	if perPage < 1 {
		perPage = 1
	}
	return (entries + perPage - 1) / perPage
}

// estimateGroupPages returns the expected page footprint of each Figure-2
// group for the given configuration, including the growth produced by the
// warm-up and measured transactions.
func estimateGroupPages(cfg Config, pageSize int) []int64 {
	cfg = cfg.withDefaults()
	var (
		w          = int64(cfg.Warehouses)
		districts  = w * int64(cfg.DistrictsPerWarehouse)
		customers  = districts * int64(cfg.CustomersPerDistrict)
		items      = int64(cfg.ItemCount)
		stock      = w * items
		initOrders = districts * int64(cfg.InitialOrdersPerDistrict)
		totalTxns  = int64(cfg.Transactions + cfg.WarmupTransactions)
		newOrders  = totalTxns * 45 / 100
		payments   = totalTxns * 43 / 100
		orders     = initOrders + newOrders
		orderLines = orders * 10
		history    = customers + payments
		newOrderQ  = initOrders/3 + newOrders/10 // undelivered backlog
	)

	group0 := heapPages(history, historySize, pageSize) + walReservePages
	group1 := heapPages(orderLines, orderLineSize, pageSize)
	group2 := heapPages(customers, customerSize, pageSize)
	group3 := indexPages(orderLines, 16, pageSize) + heapPages(stock, stockSize, pageSize)
	group4 := heapPages(newOrderQ, newOrderSize, pageSize) +
		heapPages(orders, orderSize, pageSize) +
		indexPages(newOrderQ, 12, pageSize) +
		indexPages(orders, 12, pageSize) +
		indexPages(orders, 16, pageSize)
	group5 := indexPages(customers, 12, pageSize) +
		indexPages(items, 4, pageSize) +
		indexPages(stock, 8, pageSize) +
		indexPages(w, 4, pageSize) +
		indexPages(customers, 28, pageSize) +
		heapPages(items, itemSize, pageSize) +
		indexPages(districts, 8, pageSize) +
		heapPages(w, warehouseSize, pageSize) +
		heapPages(districts, districtSize, pageSize)
	return []int64{group0, group1, group2, group3, group4, group5}
}

// planRegionDies allocates the device's dies to the six groups
// proportionally to a blend of their estimated footprint and their I/O rate
// (largest-remainder method, at least one die per group).  It returns nil
// when the device has fewer dies than groups.
func planRegionDies(cfg Config, totalDies, pagesPerDie int) []int {
	groups := estimateGroupPages(cfg, 4096)
	if totalDies < len(groups) {
		return nil
	}
	var totalPages int64
	for _, p := range groups {
		totalPages += p
	}
	if totalPages == 0 {
		totalPages = 1
	}
	var totalIO float64
	for _, w := range groupIOWeights {
		totalIO += w
	}
	share := func(i int) float64 {
		sizeShare := float64(groups[i]) / float64(totalPages)
		ioShare := groupIOWeights[i] / totalIO
		return ioWeightShare*ioShare + (1-ioWeightShare)*sizeShare
	}
	dies := make([]int, len(groups))
	remainders := make([]float64, len(groups))
	assigned := 0
	for i := range groups {
		exact := share(i) * float64(totalDies)
		dies[i] = int(exact)
		if dies[i] < 1 {
			dies[i] = 1
		}
		remainders[i] = exact - float64(int(exact))
		assigned += dies[i]
	}
	// Hand out remaining dies by largest remainder; reclaim excess from the
	// smallest-remainder groups that still have more than one die.
	for assigned < totalDies {
		best := -1
		for i := range groups {
			if best < 0 || remainders[i] > remainders[best] {
				best = i
			}
		}
		dies[best]++
		remainders[best] = -1
		assigned++
	}
	for assigned > totalDies {
		worst := -1
		for i := range groups {
			if dies[i] <= 1 {
				continue
			}
			if worst < 0 || remainders[i] < remainders[worst] {
				worst = i
			}
		}
		if worst < 0 {
			return nil
		}
		dies[worst]--
		remainders[worst] = 2 // do not shrink the same group twice in a row
		assigned--
	}

	// Fit pass: the I/O-rate blend may leave a group with less capacity than
	// its estimated footprint.  Move dies from the groups with the most
	// slack until every group fits (or no donor remains); leftover overflow
	// is absorbed by the spill-to-default mechanism of the space manager.
	usablePerDie := int64(float64(pagesPerDie) * 0.85)
	if usablePerDie < 1 {
		usablePerDie = 1
	}
	for pass := 0; pass < totalDies; pass++ {
		needy := -1
		var worstDeficit int64
		for i := range groups {
			deficit := groups[i] - int64(dies[i])*usablePerDie
			if deficit > worstDeficit {
				worstDeficit = deficit
				needy = i
			}
		}
		if needy < 0 {
			break
		}
		donor := -1
		var bestSlack int64
		for i := range groups {
			if i == needy || dies[i] <= 1 {
				continue
			}
			slack := int64(dies[i])*usablePerDie - groups[i]
			// The donor must still fit its own footprint after giving up a
			// die; among those, pick the one with the most slack.
			if slack >= usablePerDie && slack > bestSlack {
				bestSlack = slack
				donor = i
			}
		}
		if donor < 0 {
			break
		}
		dies[donor]--
		dies[needy]++
	}
	return dies
}
