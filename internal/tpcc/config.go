// Package tpcc implements the TPC-C workload used by the paper's evaluation:
// the nine-table schema, a deterministic data loader, the five transaction
// types with the standard mix, and a closed-loop multi-terminal driver.
//
// Two data-placement configurations are provided, mirroring the paper's
// Figure 2 and Figure 3 experiment:
//
//   - Traditional: every object lives in one tablespace on the default
//     region (uniform striping over all dies, no object separation).
//   - Regions: objects are divided into six regions according to their I/O
//     properties, with the flash dies distributed over the regions based on
//     object size and I/O rate.
package tpcc

import (
	"time"
)

// PlacementKind selects the data placement configuration for a run.
type PlacementKind int

const (
	// PlacementTraditional puts every object into a single tablespace in the
	// default region — the paper's "traditional data placement".
	PlacementTraditional PlacementKind = iota
	// PlacementRegions applies the paper's multi-region configuration
	// (Figure 2): six regions with dies distributed by object size and I/O
	// rate.
	PlacementRegions
)

func (p PlacementKind) String() string {
	if p == PlacementRegions {
		return "regions"
	}
	return "traditional"
}

// Config controls scale, placement and driver behaviour.
type Config struct {
	// Warehouses is the TPC-C scale factor W.
	Warehouses int
	// DistrictsPerWarehouse is 10 in the specification.
	DistrictsPerWarehouse int
	// CustomersPerDistrict is 3000 in the specification; the reproduction
	// scales it down so the database fits the simulated device.
	CustomersPerDistrict int
	// ItemCount is 100000 in the specification; scaled down here.
	ItemCount int
	// InitialOrdersPerDistrict seeds the ORDER/ORDER_LINE/NEW_ORDER tables.
	InitialOrdersPerDistrict int
	// Placement selects traditional vs multi-region placement.
	Placement PlacementKind
	// Terminals is the number of concurrent closed-loop terminals.
	Terminals int
	// Workers overrides the number of goroutines driving the terminals.
	// Zero (the default) runs one goroutine per terminal.  The workers are
	// real OS-level parallelism: wall-clock throughput (Results.WallTPS)
	// scales with them, while the virtual-time metrics stay workload-driven.
	Workers int
	// Transactions is the total number of transactions to execute in the
	// measured phase (ignored when Duration is set).
	Transactions int
	// Duration, when non-zero, runs the measured phase for a fixed simulated
	// duration instead of a fixed transaction count.  The paper's runs are
	// fixed-duration, which is why the faster configuration also completes
	// more transactions and serves more host I/Os.
	Duration time.Duration
	// WarmupTransactions are executed (and not measured) before counters are
	// reset, so the buffer pool and flash device reach steady state.
	WarmupTransactions int
	// Seed makes runs reproducible.
	Seed uint64
	// ThinkTime is an optional per-transaction think time added to the
	// terminal's virtual clock (zero for maximum throughput, as in the
	// paper's measurements).
	ThinkTime time.Duration
	// CheckpointEvery triggers a checkpoint (flush dirty pages + truncate
	// the WAL) every N committed transactions, bounding the log's footprint
	// in the metadata region.  Zero selects 1000.
	CheckpointEvery int
}

// DefaultConfig returns a laptop-scale configuration: 2 warehouses at
// roughly 1/10 of the spec cardinalities, 8 terminals.
func DefaultConfig() Config {
	return Config{
		Warehouses:               2,
		DistrictsPerWarehouse:    10,
		CustomersPerDistrict:     300,
		ItemCount:                1000,
		InitialOrdersPerDistrict: 300,
		Placement:                PlacementRegions,
		Terminals:                8,
		Transactions:             2000,
		WarmupTransactions:       500,
		Seed:                     42,
	}
}

// TinyConfig returns the smallest useful configuration, for unit tests.
func TinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Warehouses = 1
	cfg.CustomersPerDistrict = 30
	cfg.ItemCount = 100
	cfg.InitialOrdersPerDistrict = 30
	cfg.Terminals = 4
	cfg.Transactions = 200
	cfg.WarmupTransactions = 0
	return cfg
}

func (c Config) withDefaults() Config {
	if c.Warehouses <= 0 {
		c.Warehouses = 1
	}
	if c.DistrictsPerWarehouse <= 0 {
		c.DistrictsPerWarehouse = 10
	}
	if c.CustomersPerDistrict <= 0 {
		c.CustomersPerDistrict = 300
	}
	if c.ItemCount <= 0 {
		c.ItemCount = 1000
	}
	if c.InitialOrdersPerDistrict <= 0 {
		c.InitialOrdersPerDistrict = c.CustomersPerDistrict
	}
	if c.InitialOrdersPerDistrict > c.CustomersPerDistrict {
		c.InitialOrdersPerDistrict = c.CustomersPerDistrict
	}
	if c.Terminals <= 0 {
		c.Terminals = 4
	}
	if c.Workers <= 0 {
		c.Workers = c.Terminals
	}
	if c.Workers > c.Terminals {
		c.Workers = c.Terminals
	}
	if c.Transactions <= 0 {
		c.Transactions = 1000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1000
	}
	return c
}

// Table names of the TPC-C schema plus the index names used by the paper's
// Figure 2.
const (
	TableWarehouse = "WAREHOUSE"
	TableDistrict  = "DISTRICT"
	TableCustomer  = "CUSTOMER"
	TableHistory   = "HISTORY"
	TableNewOrder  = "NEW_ORDER"
	TableOrder     = "ORDER"
	TableOrderLine = "ORDERLINE"
	TableItem      = "ITEM"
	TableStock     = "STOCK"

	IndexWarehouse = "W_IDX"
	IndexDistrict  = "D_IDX"
	IndexCustomer  = "C_IDX"
	IndexCustName  = "C_NAME_IDX"
	IndexItem      = "I_IDX"
	IndexStock     = "S_IDX"
	IndexNewOrder  = "NO_IDX"
	IndexOrder     = "O_IDX"
	IndexOrderCust = "O_CUST_IDX"
	IndexOrderLine = "OL_IDX"
)
