package tpcc

import (
	"testing"
	"testing/quick"

	"noftl"
	"noftl/internal/flash"
)

// testDB builds a database sized for the tiny TPC-C configuration.
func testDB(t *testing.T, placement PlacementKind) *noftl.DB {
	t.Helper()
	cfg := noftl.DefaultConfig()
	cfg.Flash.Geometry = flash.Geometry{
		Channels: 4, DiesPerChannel: 2, PlanesPerDie: 1,
		BlocksPerDie: 128, PagesPerBlock: 32, PageSize: 2048,
	}
	cfg.BufferPoolPages = 256
	db, err := noftl.OpenConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = placement
	return db
}

func TestRowCodecsRoundTrip(t *testing.T) {
	w := Warehouse{WID: 3, Name: "Acme", Street: "Main St 1", City: "Springfield", State: "AA", Zip: "123451111", Tax: 1500, YTD: 42}
	if got, err := DecodeWarehouse(w.Encode()); err != nil || got != w {
		t.Fatalf("warehouse: %+v vs %+v (%v)", got, w, err)
	}
	d := District{DID: 7, WID: 3, Name: "D7", Street: "s", City: "c", State: "ST", Zip: "000001111", Tax: 10, YTD: 20, NextOID: 3001}
	if got, err := DecodeDistrict(d.Encode()); err != nil || got != d {
		t.Fatalf("district: %+v (%v)", got, err)
	}
	c := Customer{CID: 1, DID: 2, WID: 3, First: "Jane", Middle: "OE", Last: "BARBARBAR", Street: "x", City: "y",
		State: "ZZ", Zip: "999991111", Phone: "0123456789012345", Since: 5, Credit: "GC", CreditLimit: 50000,
		Discount: 100, Balance: -10, YTDPayment: 10, PaymentCnt: 1, DeliveryCnt: 0, Data: "some data"}
	if got, err := DecodeCustomer(c.Encode()); err != nil || got != c {
		t.Fatalf("customer: %+v (%v)", got, err)
	}
	h := History{CID: 1, CDID: 2, CWID: 3, DID: 4, WID: 5, Date: 6, Amount: 7, Data: "hist"}
	if got, err := DecodeHistory(h.Encode()); err != nil || got != h {
		t.Fatalf("history: %+v (%v)", got, err)
	}
	n := NewOrder{OID: 9, DID: 8, WID: 7}
	if got, err := DecodeNewOrder(n.Encode()); err != nil || got != n {
		t.Fatalf("neworder: %+v (%v)", got, err)
	}
	o := Order{OID: 1, DID: 2, WID: 3, CID: 4, EntryDate: 5, CarrierID: 6, OLCount: 7, AllLocal: 1}
	if got, err := DecodeOrder(o.Encode()); err != nil || got != o {
		t.Fatalf("order: %+v (%v)", got, err)
	}
	ol := OrderLine{OID: 1, DID: 2, WID: 3, Number: 4, ItemID: 5, SupplyWID: 6, DeliveryDate: 7, Quantity: 8, Amount: 9, DistInfo: "dist"}
	if got, err := DecodeOrderLine(ol.Encode()); err != nil || got != ol {
		t.Fatalf("orderline: %+v (%v)", got, err)
	}
	it := Item{IID: 1, ImID: 2, Name: "widget", Price: 399, Data: "ORIGINAL stuff"}
	if got, err := DecodeItem(it.Encode()); err != nil || got != it {
		t.Fatalf("item: %+v (%v)", got, err)
	}
	s := Stock{IID: 1, WID: 2, Quantity: 50, YTD: 5, OrderCnt: 3, RemoteCnt: 1, Data: "stock data"}
	for i := range s.Dists {
		s.Dists[i] = "distinfo"
	}
	if got, err := DecodeStock(s.Encode()); err != nil || got != s {
		t.Fatalf("stock: %+v (%v)", got, err)
	}
	// Short buffers are rejected.
	if _, err := DecodeWarehouse(nil); err == nil {
		t.Fatal("short warehouse accepted")
	}
	if _, err := DecodeStock(make([]byte, 10)); err == nil {
		t.Fatal("short stock accepted")
	}
}

func TestStockCodecProperty(t *testing.T) {
	f := func(iid, wid, qty uint32, ytd int64, oc, rc uint32) bool {
		s := Stock{IID: iid, WID: wid, Quantity: qty, YTD: ytd, OrderCnt: oc, RemoteCnt: rc, Data: "d"}
		got, err := DecodeStock(s.Encode())
		return err == nil && got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomHelpers(t *testing.T) {
	r := newRNG(1)
	for i := 0; i < 1000; i++ {
		if v := r.customerID(300); v < 1 || v > 300 {
			t.Fatalf("customerID out of range: %d", v)
		}
		if v := r.itemID(100); v < 1 || v > 100 {
			t.Fatalf("itemID out of range: %d", v)
		}
		if v := r.nuRand(255, 0, 0, 999); v < 0 || v > 999 {
			t.Fatalf("nuRand out of range: %d", v)
		}
	}
	if lastName(371) != "PRICALLYOUGHT" {
		t.Fatalf("lastName(371) = %q", lastName(371))
	}
	if len(r.zip()) != 9 {
		t.Fatalf("zip length %d", len(r.zip()))
	}
	if s := r.aString(5, 10); len(s) < 5 || len(s) > 10 {
		t.Fatalf("aString length %d", len(s))
	}
	if s := r.nString(8); len(s) != 8 {
		t.Fatalf("nString length %d", len(s))
	}
	if n := r.lastNameRun(300); n == "" {
		t.Fatal("empty run last name")
	}
	if n := r.lastNameLoad(300); n == "" {
		t.Fatal("empty load last name")
	}
	found := false
	for i := 0; i < 200; i++ {
		if len(r.dataString()) >= 26 && len(r.dataString()) <= 50 {
			found = true
		}
	}
	if !found {
		t.Fatal("dataString lengths out of range")
	}
	// The transaction mix respects the standard shares, approximately.
	term := &terminal{r: newRNG(7), cfg: DefaultConfig()}
	counts := map[TxnType]int{}
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[term.pickType()]++
	}
	if float64(counts[TxnNewOrder])/draws < 0.40 || float64(counts[TxnPayment])/draws < 0.38 {
		t.Fatalf("mix off: %+v", counts)
	}
	for _, ty := range []TxnType{TxnOrderStatus, TxnDelivery, TxnStockLevel} {
		share := float64(counts[ty]) / draws
		if share < 0.02 || share > 0.07 {
			t.Fatalf("mix share of %s = %.3f", ty, share)
		}
	}
	for ty := TxnType(0); ty <= txnTypeCount; ty++ {
		if ty.String() == "" {
			t.Fatal("empty type name")
		}
	}
}

func TestSetupCreatesSchemaTraditional(t *testing.T) {
	db := testDB(t, PlacementTraditional)
	defer db.Close()
	cfg := TinyConfig()
	cfg.Placement = PlacementTraditional
	sch, err := Setup(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sch.Placement != PlacementTraditional {
		t.Fatal("placement not recorded")
	}
	// All nine tables and ten indexes exist.
	for _, name := range []string{TableWarehouse, TableDistrict, TableCustomer, TableHistory,
		TableNewOrder, TableOrder, TableOrderLine, TableItem, TableStock} {
		if _, ok := db.Table(name); !ok {
			t.Fatalf("table %s missing", name)
		}
	}
	for _, name := range []string{IndexWarehouse, IndexDistrict, IndexCustomer, IndexCustName,
		IndexItem, IndexStock, IndexNewOrder, IndexOrder, IndexOrderCust, IndexOrderLine} {
		if _, ok := db.Index(name); !ok {
			t.Fatalf("index %s missing", name)
		}
	}
	// Traditional placement creates no extra regions.
	if got := len(db.Stats().Space.Regions); got != 1 {
		t.Fatalf("traditional placement created %d regions", got)
	}
}

func TestSetupCreatesSchemaRegions(t *testing.T) {
	db := testDB(t, PlacementRegions)
	defer db.Close()
	cfg := TinyConfig()
	cfg.Placement = PlacementRegions
	if _, err := Setup(db, cfg); err != nil {
		t.Fatal(err)
	}
	st := db.Stats().Space
	// Default region plus the five named regions of Figure 2 (group 0 stays
	// in the default region).
	if len(st.Regions) != 6 {
		t.Fatalf("expected 6 regions, got %d", len(st.Regions))
	}
	totalDies := 0
	for _, r := range st.Regions {
		if len(r.Dies) == 0 {
			t.Fatalf("region %s has no dies", r.Name)
		}
		totalDies += len(r.Dies)
	}
	if totalDies != db.Geometry().Dies() {
		t.Fatalf("dies distributed = %d, want %d", totalDies, db.Geometry().Dies())
	}
	// The biggest region must be the STOCK/OL_IDX one, as in Figure 2.
	stock, ok := st.RegionByName("rgStock")
	if !ok {
		t.Fatal("rgStock missing")
	}
	for _, r := range st.Regions {
		if r.Name != "rgStock" && len(r.Dies) > len(stock.Dies) {
			t.Fatalf("region %s (%d dies) larger than rgStock (%d)", r.Name, len(r.Dies), len(stock.Dies))
		}
	}
}

func TestLoadPopulatesDatabase(t *testing.T) {
	db := testDB(t, PlacementTraditional)
	defer db.Close()
	cfg := TinyConfig()
	cfg.Placement = PlacementTraditional
	sch, err := Setup(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(db, sch, cfg); err != nil {
		t.Fatal(err)
	}
	if got := sch.Item.RowCount(); got != int64(cfg.ItemCount) {
		t.Fatalf("items = %d", got)
	}
	if got := sch.Warehouse.RowCount(); got != int64(cfg.Warehouses) {
		t.Fatalf("warehouses = %d", got)
	}
	wantDistricts := int64(cfg.Warehouses * cfg.DistrictsPerWarehouse)
	if got := sch.District.RowCount(); got != wantDistricts {
		t.Fatalf("districts = %d, want %d", got, wantDistricts)
	}
	wantCustomers := wantDistricts * int64(cfg.CustomersPerDistrict)
	if got := sch.Customer.RowCount(); got != wantCustomers {
		t.Fatalf("customers = %d, want %d", got, wantCustomers)
	}
	if got := sch.Stock.RowCount(); got != int64(cfg.Warehouses*cfg.ItemCount) {
		t.Fatalf("stock = %d", got)
	}
	wantOrders := wantDistricts * int64(cfg.InitialOrdersPerDistrict)
	if got := sch.Order.RowCount(); got != wantOrders {
		t.Fatalf("orders = %d, want %d", got, wantOrders)
	}
	if got := sch.OrderLine.RowCount(); got < wantOrders*5 {
		t.Fatalf("order lines = %d, want >= %d", got, wantOrders*5)
	}
	// A third of the initial orders are undelivered.
	if got := sch.NewOrder.RowCount(); got == 0 || got >= wantOrders {
		t.Fatalf("new orders = %d", got)
	}
	if got := sch.History.RowCount(); got != wantCustomers {
		t.Fatalf("history = %d", got)
	}
	// Index cardinalities match their tables.
	if sch.CIdx.Entries() != wantCustomers || sch.CNameIdx.Entries() != wantCustomers {
		t.Fatalf("customer index entries: %d / %d", sch.CIdx.Entries(), sch.CNameIdx.Entries())
	}
	if sch.OIdx.Entries() != wantOrders || sch.OCustIdx.Entries() != wantOrders {
		t.Fatalf("order index entries: %d / %d", sch.OIdx.Entries(), sch.OCustIdx.Entries())
	}
	if sch.SIdx.Entries() != int64(cfg.Warehouses*cfg.ItemCount) {
		t.Fatalf("stock index entries: %d", sch.SIdx.Entries())
	}
	// The load reached flash (checkpoint at the end of Load).
	if db.Stats().Space.ValidPages == 0 {
		t.Fatal("load never reached flash")
	}
}

func TestTransactionsModifyState(t *testing.T) {
	db := testDB(t, PlacementTraditional)
	defer db.Close()
	cfg := TinyConfig()
	cfg.Placement = PlacementTraditional
	sch, err := Setup(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(db, sch, cfg); err != nil {
		t.Fatal(err)
	}
	term := &terminal{db: db, sch: sch, cfg: cfg, r: newRNG(3), wID: 1, dID: 1}

	// NewOrder: district next_o_id advances and order lines appear.
	ordersBefore := sch.Order.RowCount()
	linesBefore := sch.OrderLine.RowCount()
	ran := 0
	for ran < 5 {
		tx := db.Begin()
		err := term.newOrder(tx)
		if err != nil && !errorsIsRollback(err) {
			t.Fatalf("newOrder: %v", err)
		}
		if err != nil {
			tx.Abort()
			continue
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		ran++
	}
	if sch.Order.RowCount() != ordersBefore+5 {
		t.Fatalf("orders after NewOrder = %d, want %d", sch.Order.RowCount(), ordersBefore+5)
	}
	if sch.OrderLine.RowCount() < linesBefore+5*5 {
		t.Fatalf("order lines did not grow: %d", sch.OrderLine.RowCount())
	}

	// Payment: warehouse YTD grows and a history row is appended.
	histBefore := sch.History.RowCount()
	tx := db.Begin()
	if err := term.payment(tx); err != nil {
		t.Fatalf("payment: %v", err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if sch.History.RowCount() != histBefore+1 {
		t.Fatalf("history rows = %d", sch.History.RowCount())
	}
	tx = db.Begin()
	wh, _, err := term.getWarehouse(tx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if wh.YTD <= 30000000 {
		t.Fatalf("warehouse YTD not updated: %d", wh.YTD)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// OrderStatus and StockLevel are read-only and must not fail.
	tx = db.Begin()
	if err := term.orderStatus(tx); err != nil {
		t.Fatalf("orderStatus: %v", err)
	}
	if err := term.stockLevel(tx); err != nil {
		t.Fatalf("stockLevel: %v", err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Delivery: the NEW_ORDER backlog shrinks.
	noBefore := sch.NewOrder.RowCount()
	if noBefore == 0 {
		t.Fatal("no undelivered orders to deliver")
	}
	tx = db.Begin()
	if err := term.delivery(tx); err != nil {
		t.Fatalf("delivery: %v", err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if sch.NewOrder.RowCount() >= noBefore {
		t.Fatalf("delivery did not consume new orders: %d -> %d", noBefore, sch.NewOrder.RowCount())
	}
}

func errorsIsRollback(err error) bool { return err != nil && errorsIs(err, errRollback) }

// errorsIs avoids importing errors twice in this test file's helpers.
func errorsIs(err, target error) bool {
	for e := err; e != nil; {
		if e == target {
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := e.(unwrapper)
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

func TestRunTinyWorkloadBothPlacements(t *testing.T) {
	for _, placement := range []PlacementKind{PlacementTraditional, PlacementRegions} {
		placement := placement
		t.Run(placement.String(), func(t *testing.T) {
			db := testDB(t, placement)
			defer db.Close()
			cfg := TinyConfig()
			cfg.Placement = placement
			cfg.Transactions = 300
			res, err := LoadAndRun(db, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed != 0 {
				t.Fatalf("failed transactions: %d", res.Failed)
			}
			if res.Committed+res.Aborted != int64(cfg.Transactions) {
				t.Fatalf("committed+aborted = %d, want %d", res.Committed+res.Aborted, cfg.Transactions)
			}
			if res.TPS <= 0 || res.SimulatedTime <= 0 {
				t.Fatalf("TPS/time: %v %v", res.TPS, res.SimulatedTime)
			}
			if res.ResponseTimes[TxnNewOrder].Count == 0 || res.ResponseTimes[TxnPayment].Count == 0 {
				t.Fatalf("missing response times: %+v", res.ResponseTimes)
			}
			if res.ResponseTimes[TxnNewOrder].Mean <= 0 {
				t.Fatal("zero NewOrder response time")
			}
			if res.HostWriteIOs == 0 {
				t.Fatal("no host writes measured (WAL flushes should write)")
			}
			if res.String() == "" {
				t.Fatal("empty results string")
			}
			if placement == PlacementRegions && len(res.Regions) != 6 {
				t.Fatalf("expected 6 regions in results, got %d", len(res.Regions))
			}
		})
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c = c.withDefaults()
	if c.Warehouses != 1 || c.Terminals <= 0 || c.Transactions <= 0 || c.Seed == 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if DefaultConfig().Placement != PlacementRegions {
		t.Fatal("default placement should be regions")
	}
	if TinyConfig().Warehouses != 1 {
		t.Fatal("tiny config wrong")
	}
	if PlacementTraditional.String() == PlacementRegions.String() {
		t.Fatal("placement names collide")
	}
	// InitialOrders is clamped to the customer count.
	c = Config{CustomersPerDistrict: 10, InitialOrdersPerDistrict: 100}
	if c.withDefaults().InitialOrdersPerDistrict != 10 {
		t.Fatal("initial orders not clamped")
	}
}
