package tpcc

import (
	"fmt"

	"noftl/internal/sim"
)

// TPC-C random-input helpers (clause 2.1.6 of the specification): the
// non-uniform NURand distribution for customer and item selection, the
// syllable-based last-name generator and assorted string helpers.

const (
	cForCLast = 157 // the spec's run-time constant C for C_LAST
	cForCID   = 987
	cForOLIID = 5987
)

// rng wraps the deterministic generator with TPC-C helpers.
type rng struct {
	*sim.Rand
}

func newRNG(seed uint64) *rng { return &rng{sim.NewRand(seed)} }

// uniform returns a uniformly distributed value in [lo, hi].
func (r *rng) uniform(lo, hi int) int { return r.IntRange(lo, hi) }

// nuRand is the TPC-C non-uniform random function NURand(A, x, y).
func (r *rng) nuRand(a, c, x, y int) int {
	return (((r.uniform(0, a) | r.uniform(x, y)) + c) % (y - x + 1)) + x
}

// customerID draws a customer id in [1, customers].
func (r *rng) customerID(customers int) int {
	if customers <= 1 {
		return 1
	}
	a := 1023
	if customers <= 1024 {
		a = customers/2*2 - 1
		if a < 1 {
			a = 1
		}
	}
	return r.nuRand(a, cForCID, 1, customers)
}

// itemID draws an item id in [1, items] with the spec's skew.
func (r *rng) itemID(items int) int {
	if items <= 1 {
		return 1
	}
	a := 8191
	if items <= 8192 {
		a = items/2*2 - 1
		if a < 1 {
			a = 1
		}
	}
	return r.nuRand(a, cForOLIID, 1, items)
}

// lastNameSyllables are the ten syllables of clause 4.3.2.3.
var lastNameSyllables = []string{
	"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
}

// lastName builds the customer last name for a number in [0, 999].
func lastName(num int) string {
	return lastNameSyllables[(num/100)%10] + lastNameSyllables[(num/10)%10] + lastNameSyllables[num%10]
}

// lastNameLoad draws the last-name number used while loading (uniform over
// the scaled name space so every name exists).
func (r *rng) lastNameLoad(customers int) string {
	limit := 999
	if customers < 1000 {
		limit = customers - 1
		if limit < 0 {
			limit = 0
		}
	}
	return lastName(r.uniform(0, limit))
}

// lastNameRun draws the last-name number used at run time (NURand 255).
func (r *rng) lastNameRun(customers int) string {
	limit := 999
	if customers < 1000 {
		limit = customers - 1
		if limit < 0 {
			limit = 0
		}
	}
	n := r.nuRand(255, cForCLast, 0, limit)
	return lastName(n)
}

// aString returns a pseudo-random alphanumeric string with a length in
// [lo, hi].
func (r *rng) aString(lo, hi int) string {
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
	n := r.uniform(lo, hi)
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[r.Intn(len(alphabet))]
	}
	return string(b)
}

// nString returns a pseudo-random numeric string of exactly n digits.
func (r *rng) nString(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('0' + r.Intn(10))
	}
	return string(b)
}

// zip returns a TPC-C zip code.
func (r *rng) zip() string { return r.nString(4) + "11111" }

// dataString returns the S_DATA/I_DATA field; 10 % of them contain the
// string "ORIGINAL".
func (r *rng) dataString() string {
	s := r.aString(26, 50)
	if r.Intn(10) == 0 {
		pos := r.Intn(len(s) - 8)
		s = s[:pos] + "ORIGINAL" + s[pos+8:]
	}
	return s
}

func warehouseLockKey(w int) string      { return fmt.Sprintf("W:%d", w) }
func districtLockKey(w, d int) string    { return fmt.Sprintf("D:%d:%d", w, d) }
func customerLockKey(w, d, c int) string { return fmt.Sprintf("C:%d:%d:%d", w, d, c) }
func stockLockKey(w, i int) string       { return fmt.Sprintf("S:%d:%d", w, i) }
func deliveryLockKey(w, d int) string    { return fmt.Sprintf("DLV:%d:%d", w, d) }
