package tpcc

import (
	"fmt"

	"noftl"
	"noftl/internal/core"
)

// objectGroup names one of the six regions of the paper's Figure 2 and
// lists the objects placed in it.  Group 0 is the metadata/HISTORY group and
// stays in the default region (which also holds the catalog and the WAL).
type objectGroup struct {
	Region  string
	Share   float64 // share of the device's dies (Figure 2: 2/11/10/29/6/6 of 64)
	Objects []string
}

// figure2Groups is the multi-region data placement configuration of the
// paper's Figure 2.
func figure2Groups() []objectGroup {
	return []objectGroup{
		{Region: "", Share: 2.0 / 64, Objects: []string{TableHistory}}, // + DBMS metadata/WAL (default region)
		{Region: "rgOrderline", Share: 11.0 / 64, Objects: []string{TableOrderLine}},
		{Region: "rgCustomer", Share: 10.0 / 64, Objects: []string{TableCustomer}},
		{Region: "rgStock", Share: 29.0 / 64, Objects: []string{IndexOrderLine, TableStock}},
		{Region: "rgOrders", Share: 6.0 / 64, Objects: []string{
			TableNewOrder, TableOrder, IndexNewOrder, IndexOrder, IndexOrderCust}},
		{Region: "rgLookup", Share: 6.0 / 64, Objects: []string{
			IndexCustomer, IndexItem, IndexStock, IndexWarehouse,
			IndexCustName, TableItem, IndexDistrict, TableWarehouse, TableDistrict}},
	}
}

// Schema holds handles to every TPC-C table and index after setup.
type Schema struct {
	Warehouse *noftl.Table
	District  *noftl.Table
	Customer  *noftl.Table
	History   *noftl.Table
	NewOrder  *noftl.Table
	Order     *noftl.Table
	OrderLine *noftl.Table
	Item      *noftl.Table
	Stock     *noftl.Table

	WIdx      *noftl.Index
	DIdx      *noftl.Index
	CIdx      *noftl.Index
	CNameIdx  *noftl.Index
	IIdx      *noftl.Index
	SIdx      *noftl.Index
	NOIdx     *noftl.Index
	OIdx      *noftl.Index
	OCustIdx  *noftl.Index
	OLIdx     *noftl.Index
	Placement PlacementKind
}

// tableColumns returns an abbreviated column list for the catalog (the row
// codecs in rows.go define the physical layout).
func tableColumns(names ...string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n + " INTEGER"
	}
	return out
}

// Setup creates regions (for the multi-region configuration), tablespaces,
// tables and indexes.  It returns handles to all objects.
func Setup(db *noftl.DB, cfg Config) (*Schema, error) {
	cfg = cfg.withDefaults()
	placement := map[string]string{} // object -> tablespace
	totalDies := db.Geometry().Dies()

	switch cfg.Placement {
	case PlacementTraditional:
		// One tablespace for everything, in the default region.
		if err := db.CreateTablespace("tsAll", "", 0); err != nil {
			return nil, err
		}
		for _, g := range figure2Groups() {
			for _, obj := range g.Objects {
				placement[obj] = "tsAll"
			}
		}
	case PlacementRegions:
		groups := figure2Groups()
		// Distribute the dies over the six groups "based on sizes of objects
		// and their I/O rate" (paper §3): proportionally to the estimated
		// footprint of each group for this configuration's scale, at least
		// one die per group.  Group 0 keeps its dies as the (shrunken)
		// default region, which also holds the catalog and the WAL.
		dies := planRegionDies(cfg, totalDies, db.Geometry().PagesPerDie())
		if dies == nil {
			return nil, fmt.Errorf("tpcc: device has too few dies (%d) for the multi-region configuration", totalDies)
		}
		for gi := 1; gi < len(groups); gi++ {
			g := groups[gi]
			if err := db.CreateRegion(core.RegionSpec{Name: g.Region, MaxChips: dies[gi]}); err != nil {
				return nil, fmt.Errorf("tpcc: create region %s (%d dies): %w", g.Region, dies[gi], err)
			}
			tsName := "ts" + g.Region[2:]
			if err := db.CreateTablespace(tsName, g.Region, 0); err != nil {
				return nil, err
			}
			for _, obj := range g.Objects {
				placement[obj] = tsName
			}
		}
		// Group 0 (metadata + HISTORY) stays in the default region via a
		// dedicated tablespace bound to DEFAULT.
		if err := db.CreateTablespace("tsMeta", "", 0); err != nil {
			return nil, err
		}
		for _, obj := range groups[0].Objects {
			placement[obj] = "tsMeta"
		}
	}

	sch := &Schema{Placement: cfg.Placement}

	createTable := func(name, cols string) (*noftl.Table, error) {
		ts := placement[name]
		ddl := fmt.Sprintf("CREATE TABLE %s (%s)", name, cols)
		if ts != "" {
			ddl += " TABLESPACE " + ts
		}
		if err := db.Exec(ddl); err != nil {
			return nil, fmt.Errorf("tpcc: %s: %w", ddl, err)
		}
		t, _ := db.Table(name)
		return t, nil
	}
	createIndex := func(name, table, cols string, unique bool) (*noftl.Index, error) {
		ts := placement[name]
		u := ""
		if unique {
			u = "UNIQUE "
		}
		ddl := fmt.Sprintf("CREATE %sINDEX %s ON %s (%s)", u, name, table, cols)
		if ts != "" {
			ddl += " TABLESPACE " + ts
		}
		if err := db.Exec(ddl); err != nil {
			return nil, fmt.Errorf("tpcc: %s: %w", ddl, err)
		}
		i, _ := db.Index(name)
		return i, nil
	}

	var err error
	if sch.Warehouse, err = createTable(TableWarehouse, tableColumns("w_id", "w_ytd")); err != nil {
		return nil, err
	}
	if sch.District, err = createTable(TableDistrict, tableColumns("d_id", "d_w_id", "d_next_o_id")); err != nil {
		return nil, err
	}
	if sch.Customer, err = createTable(TableCustomer, tableColumns("c_id", "c_d_id", "c_w_id", "c_balance")); err != nil {
		return nil, err
	}
	if sch.History, err = createTable(TableHistory, tableColumns("h_c_id", "h_amount")); err != nil {
		return nil, err
	}
	if sch.NewOrder, err = createTable(TableNewOrder, tableColumns("no_o_id", "no_d_id", "no_w_id")); err != nil {
		return nil, err
	}
	if sch.Order, err = createTable(TableOrder, tableColumns("o_id", "o_d_id", "o_w_id", "o_c_id")); err != nil {
		return nil, err
	}
	if sch.OrderLine, err = createTable(TableOrderLine, tableColumns("ol_o_id", "ol_d_id", "ol_w_id", "ol_number")); err != nil {
		return nil, err
	}
	if sch.Item, err = createTable(TableItem, tableColumns("i_id", "i_price")); err != nil {
		return nil, err
	}
	if sch.Stock, err = createTable(TableStock, tableColumns("s_i_id", "s_w_id", "s_quantity")); err != nil {
		return nil, err
	}

	if sch.WIdx, err = createIndex(IndexWarehouse, TableWarehouse, "w_id", true); err != nil {
		return nil, err
	}
	if sch.DIdx, err = createIndex(IndexDistrict, TableDistrict, "d_w_id, d_id", true); err != nil {
		return nil, err
	}
	if sch.CIdx, err = createIndex(IndexCustomer, TableCustomer, "c_w_id, c_d_id, c_id", true); err != nil {
		return nil, err
	}
	if sch.CNameIdx, err = createIndex(IndexCustName, TableCustomer, "c_w_id, c_d_id, c_last, c_id", false); err != nil {
		return nil, err
	}
	if sch.IIdx, err = createIndex(IndexItem, TableItem, "i_id", true); err != nil {
		return nil, err
	}
	if sch.SIdx, err = createIndex(IndexStock, TableStock, "s_w_id, s_i_id", true); err != nil {
		return nil, err
	}
	if sch.NOIdx, err = createIndex(IndexNewOrder, TableNewOrder, "no_w_id, no_d_id, no_o_id", true); err != nil {
		return nil, err
	}
	if sch.OIdx, err = createIndex(IndexOrder, TableOrder, "o_w_id, o_d_id, o_id", true); err != nil {
		return nil, err
	}
	if sch.OCustIdx, err = createIndex(IndexOrderCust, TableOrder, "o_w_id, o_d_id, o_c_id, o_id", false); err != nil {
		return nil, err
	}
	if sch.OLIdx, err = createIndex(IndexOrderLine, TableOrderLine, "ol_w_id, ol_d_id, ol_o_id, ol_number", true); err != nil {
		return nil, err
	}
	return sch, nil
}
