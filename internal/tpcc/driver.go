package tpcc

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"noftl"
	"noftl/internal/metrics"
	"noftl/internal/sim"
	"noftl/internal/txn"
)

// Results summarizes a measured TPC-C run, carrying everything the paper's
// Figure 3 table reports: throughput, per-transaction-type response times,
// 4 KiB read/write latencies, host I/O counts and the GC counters.
type Results struct {
	Placement      PlacementKind
	Warehouses     int
	Terminals      int
	SimulatedTime  time.Duration
	Committed      int64
	Aborted        int64
	Retried        int64 // lock-timeout victims that were retried
	Failed         int64
	TPS            float64
	ResponseTimes  map[TxnType]metrics.Snapshot
	ReadLatency    metrics.Snapshot
	WriteLatency   metrics.Snapshot
	HostReadIOs    int64
	HostWriteIOs   int64
	GCCopybacks    int64
	GCErases       int64
	WriteAmp       float64
	BufferHitRatio float64
	Regions        []noftl.RegionStats
}

// String renders a one-line summary.
func (r Results) String() string {
	return fmt.Sprintf("%s placement: %d txns in %.2fs simulated = %.2f TPS (WA %.2f, copybacks %d, erases %d)",
		r.Placement, r.Committed, r.SimulatedTime.Seconds(), r.TPS, r.WriteAmp, r.GCCopybacks, r.GCErases)
}

// Run executes the configured workload against an already loaded database
// and returns the measured results.  Warm-up transactions run first; all
// statistics are reset before the measured phase.
func Run(db *noftl.DB, sch *Schema, cfg Config) (Results, error) {
	cfg = cfg.withDefaults()

	if cfg.WarmupTransactions > 0 {
		warmCfg := cfg
		warmCfg.Transactions = cfg.WarmupTransactions
		warmCfg.WarmupTransactions = 0
		warmCfg.Duration = 0 // the warm-up is always transaction-count based
		warmCfg.Seed = cfg.Seed + 1
		if _, err := runPhase(db, sch, warmCfg); err != nil {
			return Results{}, fmt.Errorf("tpcc warmup: %w", err)
		}
		db.ResetStatistics()
	}
	return runPhase(db, sch, cfg)
}

// runPhase executes one closed-loop phase of cfg.Transactions transactions.
func runPhase(db *noftl.DB, sch *Schema, cfg Config) (Results, error) {
	var (
		mu        sync.Mutex
		committed int64
		aborted   int64
		retried   int64
		failed    int64
		issued    int64
		perType   = make(map[TxnType]*metrics.Histogram)
	)
	for ty := TxnType(0); ty < txnTypeCount; ty++ {
		perType[ty] = metrics.NewHistogram()
	}
	// claim reserves the next transaction slot.  In transaction-count mode
	// the closed loop stops once every slot is claimed; in fixed-duration
	// mode it stops when the terminal's simulated clock passes the duration
	// (with a generous hard cap as a safety net).
	const durationModeCap = 10_000_000
	claim := func(terminalNow sim.Time) bool {
		mu.Lock()
		defer mu.Unlock()
		if cfg.Duration > 0 {
			if terminalNow >= sim.Time(cfg.Duration) || issued >= durationModeCap {
				return false
			}
		} else if issued >= int64(cfg.Transactions) {
			return false
		}
		issued++
		return true
	}

	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Terminals)
	for term := 0; term < cfg.Terminals; term++ {
		wg.Add(1)
		go func(termID int) {
			defer wg.Done()
			t := &terminal{
				db:  db,
				sch: sch,
				cfg: cfg,
				r:   newRNG(cfg.Seed + uint64(termID)*7919),
				wID: termID%cfg.Warehouses + 1,
				dID: termID%cfg.DistrictsPerWarehouse + 1,
			}
			cursor := db.TimeCursor()
			for claim(cursor.Now()) {
				typ := t.pickType()
				tx := db.BeginAt(cursor.Now())
				err := t.run(typ, tx)
				switch {
				case err == nil:
					end, cerr := tx.Commit()
					if cerr != nil {
						mu.Lock()
						failed++
						mu.Unlock()
						errCh <- cerr
						return
					}
					cursor.AdvanceTo(end)
					mu.Lock()
					committed++
					doCheckpoint := committed%int64(cfg.CheckpointEvery) == 0
					mu.Unlock()
					perTypeObserve(perType, &mu, typ, tx.ResponseTime())
					if doCheckpoint {
						// Periodic checkpoint: flush dirty pages and truncate
						// the WAL so the log's footprint in the metadata
						// region stays bounded.  The checkpoint cost is
						// charged to this terminal's virtual clock.
						ckEnd, ckErr := db.Checkpoint(cursor.Now())
						if ckErr != nil {
							errCh <- fmt.Errorf("tpcc checkpoint: %w", ckErr)
							return
						}
						cursor.AdvanceTo(ckEnd)
					}
				case errors.Is(err, errRollback):
					end := tx.Abort()
					cursor.AdvanceTo(end)
					mu.Lock()
					aborted++
					mu.Unlock()
				case errors.Is(err, txn.ErrLockTimeout):
					// Deadlock-victim handling: abort and carry on, like a
					// real TPC-C driver would retry the transaction.
					end := tx.Abort()
					cursor.AdvanceTo(end)
					mu.Lock()
					retried++
					mu.Unlock()
				default:
					end := tx.Abort()
					cursor.AdvanceTo(end)
					mu.Lock()
					failed++
					mu.Unlock()
					errCh <- fmt.Errorf("tpcc %s: %w", typ, err)
					return
				}
				if cfg.ThinkTime > 0 {
					cursor.Advance(cfg.ThinkTime)
				}
			}
		}(term)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return Results{}, err
		}
	}

	stats := db.Stats()
	res := Results{
		Placement:      cfg.Placement,
		Warehouses:     cfg.Warehouses,
		Terminals:      cfg.Terminals,
		SimulatedTime:  stats.Simulated,
		Committed:      committed,
		Aborted:        aborted,
		Retried:        retried,
		Failed:         failed,
		ResponseTimes:  make(map[TxnType]metrics.Snapshot),
		ReadLatency:    stats.ReadLatency,
		WriteLatency:   stats.WriteLatency,
		HostReadIOs:    stats.Space.HostReads,
		HostWriteIOs:   stats.Space.HostWrites,
		GCCopybacks:    stats.Space.GCCopybacks,
		GCErases:       stats.Space.GCErases,
		WriteAmp:       stats.Space.WriteAmplification(),
		BufferHitRatio: stats.Buffer.HitRatio(),
		Regions:        stats.Space.Regions,
	}
	if secs := stats.Simulated.Seconds(); secs > 0 {
		res.TPS = float64(committed) / secs
	}
	for ty, h := range perType {
		res.ResponseTimes[ty] = h.Snapshot()
	}
	return res, nil
}

func perTypeObserve(perType map[TxnType]*metrics.Histogram, mu *sync.Mutex, typ TxnType, d time.Duration) {
	mu.Lock()
	perType[typ].Observe(d)
	mu.Unlock()
}

// LoadAndRun is the one-call harness used by benchmarks and the command-line
// tool: set up the schema with the configured placement, load the data, run
// the workload and return the results.
func LoadAndRun(db *noftl.DB, cfg Config) (Results, error) {
	sch, err := Setup(db, cfg)
	if err != nil {
		return Results{}, err
	}
	if err := Load(db, sch, cfg); err != nil {
		return Results{}, err
	}
	// The load is not part of the measurement.
	db.ResetStatistics()
	return Run(db, sch, cfg)
}
