package tpcc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"noftl"
	"noftl/internal/metrics"
	"noftl/internal/sim"
	"noftl/internal/txn"
)

// Results summarizes a measured TPC-C run, carrying everything the paper's
// Figure 3 table reports: throughput, per-transaction-type response times,
// 4 KiB read/write latencies, host I/O counts and the GC counters.
type Results struct {
	Placement     PlacementKind
	Warehouses    int
	Terminals     int
	Workers       int
	SimulatedTime time.Duration
	// WallTime is the real (wall-clock) duration of the measured phase and
	// WallTPS the committed transactions per wall-clock second: the numbers
	// that scale with Workers, while TPS (virtual) stays workload-driven.
	WallTime  time.Duration
	WallTPS   float64
	Committed int64
	Aborted   int64
	Retried   int64 // lock-timeout victims that were retried
	Failed    int64
	TPS       float64
	// Concurrency-plane counters of the measured phase: lock contention and
	// WAL group-commit effectiveness.
	LockWaits       int64
	LockTimeouts    int64
	WALFlushes      int64
	WALGroupCommits int64
	WALGroupedTxns  int64
	ResponseTimes   map[TxnType]metrics.Snapshot
	ReadLatency     metrics.Snapshot
	WriteLatency    metrics.Snapshot
	HostReadIOs     int64
	HostWriteIOs    int64
	GCCopybacks     int64
	GCErases        int64
	WriteAmp        float64
	BufferHitRatio  float64
	Regions         []noftl.RegionStats
}

// String renders a one-line summary.
func (r Results) String() string {
	return fmt.Sprintf("%s placement: %d txns in %.2fs simulated = %.2f TPS (WA %.2f, copybacks %d, erases %d)",
		r.Placement, r.Committed, r.SimulatedTime.Seconds(), r.TPS, r.WriteAmp, r.GCCopybacks, r.GCErases)
}

// Run executes the configured workload against an already loaded database
// and returns the measured results.  Warm-up transactions run first; all
// statistics are reset before the measured phase.
func Run(db *noftl.DB, sch *Schema, cfg Config) (Results, error) {
	cfg = cfg.withDefaults()

	if cfg.WarmupTransactions > 0 {
		warmCfg := cfg
		warmCfg.Transactions = cfg.WarmupTransactions
		warmCfg.WarmupTransactions = 0
		warmCfg.Duration = 0 // the warm-up is always transaction-count based
		warmCfg.Seed = cfg.Seed + 1
		if _, err := runPhase(db, sch, warmCfg); err != nil {
			return Results{}, fmt.Errorf("tpcc warmup: %w", err)
		}
		db.ResetStatistics()
	}
	return runPhase(db, sch, cfg)
}

// termState is one logical closed-loop terminal: its workload generator plus
// its private virtual-time cursor.  A worker goroutine drives one or more
// terminals round-robin, so the virtual-time multiprogramming level is always
// cfg.Terminals regardless of how many OS-level workers execute them.
type termState struct {
	t      *terminal
	cursor *noftl.TimeCursor
}

// runPhase executes one closed-loop phase of cfg.Transactions transactions.
// cfg.Workers goroutines drive cfg.Terminals logical terminals; the driver's
// own bookkeeping is all atomics, so worker scaling is limited by the engine
// (sharded buffer pool and lock table, lock-free scheduler dispatch, WAL
// group commit), not by the harness.
func runPhase(db *noftl.DB, sch *Schema, cfg Config) (Results, error) {
	var (
		committed atomic.Int64
		aborted   atomic.Int64
		retried   atomic.Int64
		failed    atomic.Int64
		issued    atomic.Int64
		perType   = make(map[TxnType]*metrics.Histogram)
	)
	for ty := TxnType(0); ty < txnTypeCount; ty++ {
		perType[ty] = metrics.NewHistogram()
	}
	// claim reserves the next transaction slot.  In transaction-count mode
	// the closed loop stops once every slot is claimed; in fixed-duration
	// mode it stops when the terminal's simulated clock passes the duration
	// (with a generous hard cap as a safety net).
	const durationModeCap = 10_000_000
	claim := func(terminalNow sim.Time) bool {
		if cfg.Duration > 0 {
			if terminalNow >= sim.Time(cfg.Duration) {
				return false
			}
			if issued.Add(1) > durationModeCap {
				issued.Add(-1)
				return false
			}
			return true
		}
		if issued.Add(1) > int64(cfg.Transactions) {
			issued.Add(-1)
			return false
		}
		return true
	}

	terminals := make([]*termState, cfg.Terminals)
	for termID := range terminals {
		terminals[termID] = &termState{
			t: &terminal{
				db:  db,
				sch: sch,
				cfg: cfg,
				r:   newRNG(cfg.Seed + uint64(termID)*7919),
				wID: termID%cfg.Warehouses + 1,
				dID: termID%cfg.DistrictsPerWarehouse + 1,
			},
			cursor: db.TimeCursor(),
		}
	}

	baseStats := db.Stats()
	wallStart := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(workerID int) {
			defer wg.Done()
			// Worker w owns terminals w, w+Workers, w+2*Workers, ...
			var owned []*termState
			for termID := workerID; termID < cfg.Terminals; termID += cfg.Workers {
				owned = append(owned, terminals[termID])
			}
			if len(owned) == 0 {
				return
			}
			for i := 0; ; i++ {
				ts := owned[i%len(owned)]
				t, cursor := ts.t, ts.cursor
				if !claim(cursor.Now()) {
					return
				}
				typ := t.pickType()
				tx := db.BeginAt(cursor.Now())
				err := t.run(typ, tx)
				switch {
				case err == nil:
					end, cerr := tx.Commit()
					if cerr != nil {
						// Release the transaction's locks before bailing out:
						// a failed commit leaves the txn active, and exiting
						// with locks held would stall every other terminal
						// until their wall-clock fallbacks fire.
						tx.Abort()
						failed.Add(1)
						errCh <- cerr
						return
					}
					cursor.AdvanceTo(end)
					perType[typ].Observe(tx.ResponseTime())
					if committed.Add(1)%int64(cfg.CheckpointEvery) == 0 {
						// Periodic checkpoint: flush dirty pages and truncate
						// the WAL so the log's footprint in the metadata
						// region stays bounded.  The checkpoint cost is
						// charged to this terminal's virtual clock.
						ckEnd, ckErr := db.Checkpoint(cursor.Now())
						if ckErr != nil {
							errCh <- fmt.Errorf("tpcc checkpoint: %w", ckErr)
							return
						}
						cursor.AdvanceTo(ckEnd)
					}
				case errors.Is(err, errRollback):
					end := tx.Abort()
					cursor.AdvanceTo(end)
					aborted.Add(1)
				case errors.Is(err, txn.ErrLockTimeout):
					// Deadlock-victim handling: abort and carry on, like a
					// real TPC-C driver would retry the transaction.
					end := tx.Abort()
					cursor.AdvanceTo(end)
					retried.Add(1)
				default:
					end := tx.Abort()
					cursor.AdvanceTo(end)
					failed.Add(1)
					errCh <- fmt.Errorf("tpcc %s: %w", typ, err)
					return
				}
				if cfg.ThinkTime > 0 {
					cursor.Advance(cfg.ThinkTime)
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(wallStart)
	close(errCh)
	for err := range errCh {
		if err != nil {
			return Results{}, err
		}
	}

	stats := db.Stats()
	res := Results{
		Placement:       cfg.Placement,
		Warehouses:      cfg.Warehouses,
		Terminals:       cfg.Terminals,
		Workers:         cfg.Workers,
		SimulatedTime:   stats.Simulated,
		WallTime:        wall,
		Committed:       committed.Load(),
		Aborted:         aborted.Load(),
		Retried:         retried.Load(),
		Failed:          failed.Load(),
		LockWaits:       stats.Txn.LockWaits - baseStats.Txn.LockWaits,
		LockTimeouts:    stats.Txn.LockTimeouts - baseStats.Txn.LockTimeouts,
		WALFlushes:      stats.WAL.Flushes - baseStats.WAL.Flushes,
		WALGroupCommits: stats.WAL.GroupCommits - baseStats.WAL.GroupCommits,
		WALGroupedTxns:  stats.WAL.GroupedTxns - baseStats.WAL.GroupedTxns,
		ResponseTimes:   make(map[TxnType]metrics.Snapshot),
		ReadLatency:     stats.ReadLatency,
		WriteLatency:    stats.WriteLatency,
		HostReadIOs:     stats.Space.HostReads,
		HostWriteIOs:    stats.Space.HostWrites,
		GCCopybacks:     stats.Space.GCCopybacks,
		GCErases:        stats.Space.GCErases,
		WriteAmp:        stats.Space.WriteAmplification(),
		BufferHitRatio:  stats.Buffer.HitRatio(),
		Regions:         stats.Space.Regions,
	}
	if secs := stats.Simulated.Seconds(); secs > 0 {
		res.TPS = float64(res.Committed) / secs
	}
	if secs := wall.Seconds(); secs > 0 {
		res.WallTPS = float64(res.Committed) / secs
	}
	for ty, h := range perType {
		res.ResponseTimes[ty] = h.Snapshot()
	}
	return res, nil
}

// LoadAndRun is the one-call harness used by benchmarks and the command-line
// tool: set up the schema with the configured placement, load the data, run
// the workload and return the results.
func LoadAndRun(db *noftl.DB, cfg Config) (Results, error) {
	sch, err := Setup(db, cfg)
	if err != nil {
		return Results{}, err
	}
	if err := Load(db, sch, cfg); err != nil {
		return Results{}, err
	}
	// The load is not part of the measurement.
	db.ResetStatistics()
	return Run(db, sch, cfg)
}
