package tpcc

import (
	"errors"
	"fmt"
	"sort"

	"noftl"
)

// TxnType identifies one of the five TPC-C transaction types.
type TxnType int

// The five TPC-C transactions.
const (
	TxnNewOrder TxnType = iota
	TxnPayment
	TxnOrderStatus
	TxnDelivery
	TxnStockLevel
	txnTypeCount
)

func (t TxnType) String() string {
	switch t {
	case TxnNewOrder:
		return "NewOrder"
	case TxnPayment:
		return "Payment"
	case TxnOrderStatus:
		return "OrderStatus"
	case TxnDelivery:
		return "Delivery"
	case TxnStockLevel:
		return "StockLevel"
	default:
		return "Unknown"
	}
}

// errRollback marks the intentional 1 % NewOrder rollback (invalid item).
var errRollback = errors.New("tpcc: intentional rollback")

// terminal is one closed-loop TPC-C terminal bound to a home warehouse and
// district.
type terminal struct {
	db  *noftl.DB
	sch *Schema
	cfg Config
	r   *rng
	wID int
	dID int
}

// pickType draws a transaction type following the standard mix
// (45/43/4/4/4).
func (t *terminal) pickType() TxnType {
	v := t.r.uniform(1, 100)
	switch {
	case v <= 45:
		return TxnNewOrder
	case v <= 88:
		return TxnPayment
	case v <= 92:
		return TxnOrderStatus
	case v <= 96:
		return TxnDelivery
	default:
		return TxnStockLevel
	}
}

// run executes one transaction of the given type and returns whether it
// committed.
func (t *terminal) run(typ TxnType, tx *noftl.Tx) error {
	switch typ {
	case TxnNewOrder:
		return t.newOrder(tx)
	case TxnPayment:
		return t.payment(tx)
	case TxnOrderStatus:
		return t.orderStatus(tx)
	case TxnDelivery:
		return t.delivery(tx)
	case TxnStockLevel:
		return t.stockLevel(tx)
	default:
		return fmt.Errorf("tpcc: unknown transaction type %d", typ)
	}
}

// ---- row access helpers ----

func (t *terminal) getWarehouse(tx *noftl.Tx, w int) (Warehouse, noftl.RID, error) {
	rid, found, err := t.sch.WIdx.Lookup(tx, warehouseKey(w))
	if err != nil || !found {
		return Warehouse{}, noftl.RID{}, fmt.Errorf("warehouse %d: found=%v %w", w, found, err)
	}
	row, err := t.sch.Warehouse.Get(tx, rid)
	if err != nil {
		return Warehouse{}, noftl.RID{}, err
	}
	wh, err := DecodeWarehouse(row)
	return wh, rid, err
}

func (t *terminal) getDistrict(tx *noftl.Tx, w, d int) (District, noftl.RID, error) {
	rid, found, err := t.sch.DIdx.Lookup(tx, districtKey(w, d))
	if err != nil || !found {
		return District{}, noftl.RID{}, fmt.Errorf("district %d/%d: found=%v %w", w, d, found, err)
	}
	row, err := t.sch.District.Get(tx, rid)
	if err != nil {
		return District{}, noftl.RID{}, err
	}
	dist, err := DecodeDistrict(row)
	return dist, rid, err
}

func (t *terminal) getCustomerByID(tx *noftl.Tx, w, d, c int) (Customer, noftl.RID, error) {
	rid, found, err := t.sch.CIdx.Lookup(tx, customerKey(w, d, c))
	if err != nil || !found {
		return Customer{}, noftl.RID{}, fmt.Errorf("customer %d/%d/%d: found=%v %w", w, d, c, found, err)
	}
	row, err := t.sch.Customer.Get(tx, rid)
	if err != nil {
		return Customer{}, noftl.RID{}, err
	}
	cust, err := DecodeCustomer(row)
	return cust, rid, err
}

// getCustomerByName selects the middle customer (per clause 2.5.2.2) among
// those sharing the last name.
func (t *terminal) getCustomerByName(tx *noftl.Tx, w, d int, last string) (Customer, noftl.RID, error) {
	var rids []noftl.RID
	err := t.sch.CNameIdx.ScanPrefix(tx, customerNamePrefix(w, d, last), func(_ []byte, rid noftl.RID) bool {
		rids = append(rids, rid)
		return true
	})
	if err != nil {
		return Customer{}, noftl.RID{}, err
	}
	if len(rids) == 0 {
		// The scaled name space may not contain this name; fall back to a
		// uniformly chosen customer id so the transaction still does work.
		return t.getCustomerByID(tx, w, d, t.r.uniform(1, t.cfg.CustomersPerDistrict))
	}
	rid := rids[len(rids)/2]
	row, err := t.sch.Customer.Get(tx, rid)
	if err != nil {
		return Customer{}, noftl.RID{}, err
	}
	cust, err := DecodeCustomer(row)
	return cust, rid, err
}

// ---- the five transactions ----

// newOrder implements the New-Order transaction (clause 2.4).
func (t *terminal) newOrder(tx *noftl.Tx) error {
	w := t.wID
	d := t.r.uniform(1, t.cfg.DistrictsPerWarehouse)
	c := t.r.customerID(t.cfg.CustomersPerDistrict)
	olCnt := t.r.uniform(5, 15)
	rollback := t.r.uniform(1, 100) == 1

	// Choose the items up front and lock them in canonical order (sorted by
	// item id) so concurrent NewOrders cannot deadlock.
	items := make([]int, olCnt)
	for i := range items {
		items[i] = t.r.itemID(t.cfg.ItemCount)
	}
	lockOrder := append([]int(nil), items...)
	sort.Ints(lockOrder)

	// The district row is the serialization point (O_ID assignment).
	if err := tx.Lock(districtLockKey(w, d), noftl.Exclusive); err != nil {
		return err
	}
	for _, it := range lockOrder {
		if err := tx.Lock(stockLockKey(w, it), noftl.Exclusive); err != nil {
			return err
		}
	}

	wh, _, err := t.getWarehouse(tx, w)
	if err != nil {
		return err
	}
	dist, drid, err := t.getDistrict(tx, w, d)
	if err != nil {
		return err
	}
	cust, _, err := t.getCustomerByID(tx, w, d, c)
	if err != nil {
		return err
	}
	_ = wh
	_ = cust

	oID := int(dist.NextOID)
	dist.NextOID++
	if err := t.sch.District.Update(tx, drid, dist.Encode()); err != nil {
		return err
	}

	if rollback {
		// Clause 2.4.1.4: roughly 1 % of NewOrder transactions are rolled
		// back because of an unused (invalid) item number.
		return errRollback
	}

	ord := Order{
		OID: uint32(oID), DID: uint32(d), WID: uint32(w), CID: uint32(c),
		EntryDate: int64(tx.Now()), OLCount: uint32(olCnt), AllLocal: 1,
	}
	orid, err := t.sch.Order.Insert(tx, ord.Encode())
	if err != nil {
		return err
	}
	if err := t.sch.OIdx.Insert(tx, orderKey(w, d, oID), orid); err != nil {
		return err
	}
	if err := t.sch.OCustIdx.Insert(tx, orderCustKey(w, d, c, oID), orid); err != nil {
		return err
	}
	no := NewOrder{OID: uint32(oID), DID: uint32(d), WID: uint32(w)}
	nrid, err := t.sch.NewOrder.Insert(tx, no.Encode())
	if err != nil {
		return err
	}
	if err := t.sch.NOIdx.Insert(tx, newOrderKey(w, d, oID), nrid); err != nil {
		return err
	}

	for n, itemID := range items {
		// Item lookup (read only).
		irid, found, err := t.sch.IIdx.Lookup(tx, itemKey(itemID))
		if err != nil || !found {
			return fmt.Errorf("item %d: found=%v %w", itemID, found, err)
		}
		irow, err := t.sch.Item.Get(tx, irid)
		if err != nil {
			return err
		}
		item, err := DecodeItem(irow)
		if err != nil {
			return err
		}
		// Stock update.
		srid, found, err := t.sch.SIdx.Lookup(tx, stockKey(w, itemID))
		if err != nil || !found {
			return fmt.Errorf("stock %d/%d: found=%v %w", w, itemID, found, err)
		}
		srow, err := t.sch.Stock.Get(tx, srid)
		if err != nil {
			return err
		}
		st, err := DecodeStock(srow)
		if err != nil {
			return err
		}
		qty := uint32(t.r.uniform(1, 10))
		if st.Quantity >= qty+10 {
			st.Quantity -= qty
		} else {
			st.Quantity = st.Quantity - qty + 91
		}
		st.YTD += int64(qty)
		st.OrderCnt++
		if err := t.sch.Stock.Update(tx, srid, st.Encode()); err != nil {
			return err
		}
		// Order line insert.
		ol := OrderLine{
			OID: uint32(oID), DID: uint32(d), WID: uint32(w), Number: uint32(n + 1),
			ItemID: uint32(itemID), SupplyWID: uint32(w), Quantity: qty,
			Amount:   int64(qty) * item.Price,
			DistInfo: st.Dists[(d-1)%10],
		}
		olrid, err := t.sch.OrderLine.Insert(tx, ol.Encode())
		if err != nil {
			return err
		}
		if err := t.sch.OLIdx.Insert(tx, orderLineKey(w, d, oID, n+1), olrid); err != nil {
			return err
		}
	}
	return nil
}

// payment implements the Payment transaction (clause 2.5).
func (t *terminal) payment(tx *noftl.Tx) error {
	w := t.wID
	d := t.r.uniform(1, t.cfg.DistrictsPerWarehouse)
	amount := int64(t.r.uniform(100, 500000))

	if err := tx.Lock(warehouseLockKey(w), noftl.Exclusive); err != nil {
		return err
	}
	if err := tx.Lock(districtLockKey(w, d), noftl.Exclusive); err != nil {
		return err
	}

	wh, wrid, err := t.getWarehouse(tx, w)
	if err != nil {
		return err
	}
	wh.YTD += amount
	if err := t.sch.Warehouse.Update(tx, wrid, wh.Encode()); err != nil {
		return err
	}

	dist, drid, err := t.getDistrict(tx, w, d)
	if err != nil {
		return err
	}
	dist.YTD += amount
	if err := t.sch.District.Update(tx, drid, dist.Encode()); err != nil {
		return err
	}

	// 60 % of payments select the customer by last name.
	var cust Customer
	var crid noftl.RID
	if t.r.uniform(1, 100) <= 60 {
		cust, crid, err = t.getCustomerByName(tx, w, d, t.r.lastNameRun(t.cfg.CustomersPerDistrict))
	} else {
		cust, crid, err = t.getCustomerByID(tx, w, d, t.r.customerID(t.cfg.CustomersPerDistrict))
	}
	if err != nil {
		return err
	}
	if err := tx.Lock(customerLockKey(w, d, int(cust.CID)), noftl.Exclusive); err != nil {
		return err
	}
	cust.Balance -= amount
	cust.YTDPayment += amount
	cust.PaymentCnt++
	if cust.Credit == "BC" {
		cust.Data = fmt.Sprintf("%d %d %d %d %d %d|%s", cust.CID, cust.DID, cust.WID, d, w, amount, cust.Data)
		if len(cust.Data) > 250 {
			cust.Data = cust.Data[:250]
		}
	}
	if err := t.sch.Customer.Update(tx, crid, cust.Encode()); err != nil {
		return err
	}

	hist := History{
		CID: cust.CID, CDID: cust.DID, CWID: cust.WID,
		DID: uint32(d), WID: uint32(w), Date: int64(tx.Now()), Amount: amount,
		Data: wh.Name + "    " + dist.Name,
	}
	_, err = t.sch.History.Insert(tx, hist.Encode())
	return err
}

// orderStatus implements the Order-Status transaction (clause 2.6).
func (t *terminal) orderStatus(tx *noftl.Tx) error {
	w := t.wID
	d := t.r.uniform(1, t.cfg.DistrictsPerWarehouse)

	var cust Customer
	var err error
	if t.r.uniform(1, 100) <= 60 {
		cust, _, err = t.getCustomerByName(tx, w, d, t.r.lastNameRun(t.cfg.CustomersPerDistrict))
	} else {
		cust, _, err = t.getCustomerByID(tx, w, d, t.r.customerID(t.cfg.CustomersPerDistrict))
	}
	if err != nil {
		return err
	}

	// Most recent order of the customer.
	var lastOrderRID noftl.RID
	found := false
	err = t.sch.OCustIdx.ScanPrefix(tx, orderCustPrefix(w, d, int(cust.CID)), func(_ []byte, rid noftl.RID) bool {
		lastOrderRID = rid
		found = true
		return true
	})
	if err != nil {
		return err
	}
	if !found {
		return nil // customer has no orders yet
	}
	orow, err := t.sch.Order.Get(tx, lastOrderRID)
	if err != nil {
		return err
	}
	ord, err := DecodeOrder(orow)
	if err != nil {
		return err
	}
	// Read its order lines.
	return t.sch.OLIdx.ScanPrefix(tx, orderLinePrefix(w, d, int(ord.OID)), func(_ []byte, rid noftl.RID) bool {
		if _, err := t.sch.OrderLine.Get(tx, rid); err != nil {
			return false
		}
		return true
	})
}

// delivery implements the Delivery transaction (clause 2.7), processing all
// districts of the warehouse in one database transaction (the deferred
// queue of the specification is folded into the transaction, as most
// research prototypes do).
func (t *terminal) delivery(tx *noftl.Tx) error {
	w := t.wID
	carrier := uint32(t.r.uniform(1, 10))
	for d := 1; d <= t.cfg.DistrictsPerWarehouse; d++ {
		if err := tx.Lock(deliveryLockKey(w, d), noftl.Exclusive); err != nil {
			return err
		}
		// Oldest undelivered order.
		var noKey []byte
		var noRID noftl.RID
		found := false
		err := t.sch.NOIdx.ScanPrefix(tx, newOrderPrefix(w, d), func(k []byte, rid noftl.RID) bool {
			noKey = append([]byte(nil), k...)
			noRID = rid
			found = true
			return false // only the first (oldest)
		})
		if err != nil {
			return err
		}
		if !found {
			continue // nothing to deliver in this district
		}
		norow, err := t.sch.NewOrder.Get(tx, noRID)
		if err != nil {
			return err
		}
		no, err := DecodeNewOrder(norow)
		if err != nil {
			return err
		}
		oID := int(no.OID)
		if err := t.sch.NewOrder.Delete(tx, noRID); err != nil {
			return err
		}
		if err := t.sch.NOIdx.Delete(tx, noKey); err != nil {
			return err
		}
		// Update the order with the carrier.
		orid, foundO, err := t.sch.OIdx.Lookup(tx, orderKey(w, d, oID))
		if err != nil || !foundO {
			return fmt.Errorf("delivery: order %d/%d/%d missing: %w", w, d, oID, err)
		}
		orow, err := t.sch.Order.Get(tx, orid)
		if err != nil {
			return err
		}
		ord, err := DecodeOrder(orow)
		if err != nil {
			return err
		}
		ord.CarrierID = carrier
		if err := t.sch.Order.Update(tx, orid, ord.Encode()); err != nil {
			return err
		}
		// Update every order line's delivery date and sum the amounts.
		var total int64
		var olRIDs []noftl.RID
		err = t.sch.OLIdx.ScanPrefix(tx, orderLinePrefix(w, d, oID), func(_ []byte, rid noftl.RID) bool {
			olRIDs = append(olRIDs, rid)
			return true
		})
		if err != nil {
			return err
		}
		for _, rid := range olRIDs {
			row, err := t.sch.OrderLine.Get(tx, rid)
			if err != nil {
				return err
			}
			ol, err := DecodeOrderLine(row)
			if err != nil {
				return err
			}
			total += ol.Amount
			ol.DeliveryDate = int64(tx.Now())
			if err := t.sch.OrderLine.Update(tx, rid, ol.Encode()); err != nil {
				return err
			}
		}
		// Credit the customer.
		if err := tx.Lock(customerLockKey(w, d, int(ord.CID)), noftl.Exclusive); err != nil {
			return err
		}
		cust, crid, err := t.getCustomerByID(tx, w, d, int(ord.CID))
		if err != nil {
			return err
		}
		cust.Balance += total
		cust.DeliveryCnt++
		if err := t.sch.Customer.Update(tx, crid, cust.Encode()); err != nil {
			return err
		}
	}
	return nil
}

// stockLevel implements the Stock-Level transaction (clause 2.8).
func (t *terminal) stockLevel(tx *noftl.Tx) error {
	w := t.wID
	d := t.dID
	threshold := uint32(t.r.uniform(10, 20))

	dist, _, err := t.getDistrict(tx, w, d)
	if err != nil {
		return err
	}
	nextO := int(dist.NextOID)
	lowO := nextO - 20
	if lowO < 1 {
		lowO = 1
	}
	// Collect the distinct items of the last 20 orders.
	items := map[uint32]bool{}
	err = t.sch.OLIdx.Scan(tx, orderLineKey(w, d, lowO, 0), orderLineKey(w, d, nextO, 0),
		func(_ []byte, rid noftl.RID) bool {
			row, err := t.sch.OrderLine.Get(tx, rid)
			if err != nil {
				return false
			}
			ol, err := DecodeOrderLine(row)
			if err != nil {
				return false
			}
			items[ol.ItemID] = true
			return true
		})
	if err != nil {
		return err
	}
	// Count items whose stock is below the threshold.
	low := 0
	for itemID := range items {
		srid, found, err := t.sch.SIdx.Lookup(tx, stockKey(w, int(itemID)))
		if err != nil || !found {
			continue
		}
		row, err := t.sch.Stock.Get(tx, srid)
		if err != nil {
			return err
		}
		st, err := DecodeStock(row)
		if err != nil {
			return err
		}
		if st.Quantity < threshold {
			low++
		}
	}
	_ = low
	return nil
}
