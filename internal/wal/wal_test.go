package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"noftl/internal/core"
	"noftl/internal/flash"
)

func testLog(t *testing.T) (*Log, *core.Manager) {
	t.Helper()
	cfg := flash.DefaultConfig()
	cfg.Geometry = flash.Geometry{
		Channels: 2, DiesPerChannel: 1, PlanesPerDie: 1,
		BlocksPerDie: 64, PagesPerBlock: 16, PageSize: 512,
	}
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mgr := core.NewManager(dev, core.DefaultOptions())
	return New(mgr, core.Hint{ObjectID: 99}, 512), mgr
}

func TestRecordEncodeDecodeProperty(t *testing.T) {
	f := func(lsn, txn uint64, obj uint32, typ uint8, payload []byte) bool {
		r := Record{LSN: lsn, Type: RecordType(typ%7 + 1), TxnID: txn, ObjectID: obj, Payload: payload}
		dec, err := decodeRecord(encodeRecord(r))
		if err != nil {
			return false
		}
		return dec.LSN == r.LSN && dec.Type == r.Type && dec.TxnID == r.TxnID &&
			dec.ObjectID == r.ObjectID && bytes.Equal(dec.Payload, r.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordCorruptionDetected(t *testing.T) {
	enc := encodeRecord(Record{LSN: 1, Type: RecCommit, TxnID: 2, Payload: []byte("abc")})
	enc[len(enc)-1] ^= 0xFF
	if _, err := decodeRecord(enc); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if _, err := decodeRecord(enc[:5]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short record: %v", err)
	}
	// Length mismatch.
	enc2 := encodeRecord(Record{LSN: 1, Type: RecCommit, Payload: []byte("abc")})
	if _, err := decodeRecord(enc2[:len(enc2)-1]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated record: %v", err)
	}
}

func TestAppendFlushReadAll(t *testing.T) {
	l, mgr := testLog(t)
	if l.NextLSN() != 1 || l.FlushedLSN() != 0 {
		t.Fatalf("fresh log LSNs wrong: %d %d", l.NextLSN(), l.FlushedLSN())
	}
	var lsns []uint64
	for i := 0; i < 100; i++ {
		lsn, err := l.Append(RecUpdate, uint64(i%7), uint32(i%3), []byte(fmt.Sprintf("payload-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if l.Appended() != 100 {
		t.Fatalf("appended = %d", l.Appended())
	}
	for i := 1; i < len(lsns); i++ {
		if lsns[i] != lsns[i-1]+1 {
			t.Fatal("LSNs not consecutive")
		}
	}
	// Nothing durable yet.
	recs, _, err := l.ReadAll(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("unflushed records visible: %d", len(recs))
	}
	done, err := l.Flush(0)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Fatal("flush consumed no virtual time")
	}
	if l.FlushedLSN() != 100 {
		t.Fatalf("flushedLSN = %d", l.FlushedLSN())
	}
	if mgr.Stats().HostWrites == 0 {
		t.Fatal("flush wrote nothing to flash")
	}
	// Idempotent flush.
	if _, err := l.Flush(done); err != nil {
		t.Fatal(err)
	}
	if l.Flushes() != 1 {
		t.Fatalf("flushes = %d", l.Flushes())
	}
	recs, _, err = l.ReadAll(done)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 100 {
		t.Fatalf("recovered %d records", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has lsn %d", i, r.LSN)
		}
		if string(r.Payload) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("record %d payload %q", i, r.Payload)
		}
	}
	if l.PageCount() < 2 {
		t.Fatalf("expected multiple log pages, got %d", l.PageCount())
	}
}

func TestCommittedTxns(t *testing.T) {
	l, _ := testLog(t)
	mustAppend := func(typ RecordType, txn uint64) {
		if _, err := l.Append(typ, txn, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	mustAppend(RecBegin, 1)
	mustAppend(RecUpdate, 1)
	mustAppend(RecCommit, 1)
	mustAppend(RecBegin, 2)
	mustAppend(RecUpdate, 2)
	mustAppend(RecBegin, 3)
	mustAppend(RecAbort, 3)
	if _, err := l.Flush(0); err != nil {
		t.Fatal(err)
	}
	committed, _, err := l.CommittedTxns(0)
	if err != nil {
		t.Fatal(err)
	}
	if !committed[1] || committed[2] || committed[3] {
		t.Fatalf("committed set wrong: %v", committed)
	}
}

func TestAppendTooLarge(t *testing.T) {
	l, _ := testLog(t)
	if _, err := l.Append(RecUpdate, 1, 0, make([]byte, 600)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestTypeString(t *testing.T) {
	for _, typ := range []RecordType{RecBegin, RecCommit, RecAbort, RecInsert, RecUpdate, RecDelete, RecCheckpoint, RecordType(99)} {
		if typ.String() == "" {
			t.Fatal("empty type string")
		}
	}
}

func TestTruncateDropsOldPages(t *testing.T) {
	l, mgr := testLog(t)
	for i := 0; i < 300; i++ {
		if _, err := l.Append(RecUpdate, 1, 0, []byte(fmt.Sprintf("rec-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	now, err := l.Flush(0)
	if err != nil {
		t.Fatal(err)
	}
	pagesBefore := l.PageCount()
	if pagesBefore < 3 {
		t.Fatalf("not enough log pages for the test: %d", pagesBefore)
	}
	validBefore := mgr.Stats().ValidPages
	dropped := l.Truncate(250)
	if dropped == 0 {
		t.Fatal("truncate dropped nothing")
	}
	if l.PageCount() != pagesBefore-dropped {
		t.Fatalf("page count %d after dropping %d of %d", l.PageCount(), dropped, pagesBefore)
	}
	if mgr.Stats().ValidPages >= validBefore {
		t.Fatal("truncate did not trim pages on the device")
	}
	// The surviving records still decode and include the newest LSNs.
	recs, _, err := l.ReadAll(now)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || recs[len(recs)-1].LSN != 300 {
		t.Fatalf("latest records lost after truncate: %d records", len(recs))
	}
}
