package wal

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"noftl/internal/core"
	"noftl/internal/flash"
	"noftl/internal/sim"
)

func testLog(t *testing.T) (*Log, *core.Manager) {
	t.Helper()
	cfg := flash.DefaultConfig()
	cfg.Geometry = flash.Geometry{
		Channels: 2, DiesPerChannel: 1, PlanesPerDie: 1,
		BlocksPerDie: 64, PagesPerBlock: 16, PageSize: 512,
	}
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mgr := core.NewManager(dev, core.DefaultOptions())
	return New(mgr, core.Hint{ObjectID: 99}, 512), mgr
}

func TestRecordEncodeDecodeProperty(t *testing.T) {
	f := func(lsn, txn uint64, obj uint32, typ uint8, payload []byte) bool {
		r := Record{LSN: lsn, Type: RecordType(typ%7 + 1), TxnID: txn, ObjectID: obj, Payload: payload}
		dec, err := decodeRecord(encodeRecord(r))
		if err != nil {
			return false
		}
		return dec.LSN == r.LSN && dec.Type == r.Type && dec.TxnID == r.TxnID &&
			dec.ObjectID == r.ObjectID && bytes.Equal(dec.Payload, r.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordCorruptionDetected(t *testing.T) {
	enc := encodeRecord(Record{LSN: 1, Type: RecCommit, TxnID: 2, Payload: []byte("abc")})
	enc[len(enc)-1] ^= 0xFF
	if _, err := decodeRecord(enc); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if _, err := decodeRecord(enc[:5]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short record: %v", err)
	}
	// Length mismatch.
	enc2 := encodeRecord(Record{LSN: 1, Type: RecCommit, Payload: []byte("abc")})
	if _, err := decodeRecord(enc2[:len(enc2)-1]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated record: %v", err)
	}
}

func TestAppendFlushReadAll(t *testing.T) {
	l, mgr := testLog(t)
	if l.NextLSN() != 1 || l.FlushedLSN() != 0 {
		t.Fatalf("fresh log LSNs wrong: %d %d", l.NextLSN(), l.FlushedLSN())
	}
	var lsns []uint64
	for i := 0; i < 100; i++ {
		lsn, err := l.Append(RecUpdate, uint64(i%7), uint32(i%3), []byte(fmt.Sprintf("payload-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if l.Appended() != 100 {
		t.Fatalf("appended = %d", l.Appended())
	}
	for i := 1; i < len(lsns); i++ {
		if lsns[i] != lsns[i-1]+1 {
			t.Fatal("LSNs not consecutive")
		}
	}
	// Nothing durable yet.
	recs, _, err := l.ReadAll(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("unflushed records visible: %d", len(recs))
	}
	done, err := l.Flush(0)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Fatal("flush consumed no virtual time")
	}
	if l.FlushedLSN() != 100 {
		t.Fatalf("flushedLSN = %d", l.FlushedLSN())
	}
	if mgr.Stats().HostWrites == 0 {
		t.Fatal("flush wrote nothing to flash")
	}
	// Idempotent flush.
	if _, err := l.Flush(done); err != nil {
		t.Fatal(err)
	}
	if l.Flushes() != 1 {
		t.Fatalf("flushes = %d", l.Flushes())
	}
	recs, _, err = l.ReadAll(done)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 100 {
		t.Fatalf("recovered %d records", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has lsn %d", i, r.LSN)
		}
		if string(r.Payload) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("record %d payload %q", i, r.Payload)
		}
	}
	if l.PageCount() < 2 {
		t.Fatalf("expected multiple log pages, got %d", l.PageCount())
	}
}

func TestCommittedTxns(t *testing.T) {
	l, _ := testLog(t)
	mustAppend := func(typ RecordType, txn uint64) {
		if _, err := l.Append(typ, txn, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	mustAppend(RecBegin, 1)
	mustAppend(RecUpdate, 1)
	mustAppend(RecCommit, 1)
	mustAppend(RecBegin, 2)
	mustAppend(RecUpdate, 2)
	mustAppend(RecBegin, 3)
	mustAppend(RecAbort, 3)
	if _, err := l.Flush(0); err != nil {
		t.Fatal(err)
	}
	committed, _, err := l.CommittedTxns(0)
	if err != nil {
		t.Fatal(err)
	}
	if !committed[1] || committed[2] || committed[3] {
		t.Fatalf("committed set wrong: %v", committed)
	}
}

func TestAppendTooLarge(t *testing.T) {
	l, _ := testLog(t)
	if _, err := l.Append(RecUpdate, 1, 0, make([]byte, 600)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestTypeString(t *testing.T) {
	for _, typ := range []RecordType{RecBegin, RecCommit, RecAbort, RecInsert, RecUpdate, RecDelete, RecCheckpoint, RecordType(99)} {
		if typ.String() == "" {
			t.Fatal("empty type string")
		}
	}
}

func TestTruncateDropsOldPages(t *testing.T) {
	l, mgr := testLog(t)
	for i := 0; i < 300; i++ {
		if _, err := l.Append(RecUpdate, 1, 0, []byte(fmt.Sprintf("rec-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	now, err := l.Flush(0)
	if err != nil {
		t.Fatal(err)
	}
	pagesBefore := l.PageCount()
	if pagesBefore < 3 {
		t.Fatalf("not enough log pages for the test: %d", pagesBefore)
	}
	validBefore := mgr.Stats().ValidPages
	dropped := l.Truncate(250)
	if dropped == 0 {
		t.Fatal("truncate dropped nothing")
	}
	if l.PageCount() != pagesBefore-dropped {
		t.Fatalf("page count %d after dropping %d of %d", l.PageCount(), dropped, pagesBefore)
	}
	if mgr.Stats().ValidPages >= validBefore {
		t.Fatal("truncate did not trim pages on the device")
	}
	// The surviving records still decode and include the newest LSNs.
	recs, _, err := l.ReadAll(now)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || recs[len(recs)-1].LSN != 300 {
		t.Fatalf("latest records lost after truncate: %d records", len(recs))
	}
}

// TestGroupCommitConcurrent drives many goroutines through Append+Commit on
// one log and checks that (a) every committer observes its own record as
// durable, (b) the recovered log preserves append (LSN) order exactly, and
// (c) the committers shared flushes: far fewer log forces than commits.
func TestGroupCommitConcurrent(t *testing.T) {
	l, _ := testLog(t)
	l.SetGroupCommit(8, 2*time.Millisecond)
	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			now := sim.Time(0)
			for i := 0; i < perWorker; i++ {
				txn := uint64(id*perWorker + i + 1)
				if _, err := l.Append(RecUpdate, txn, 7, []byte{byte(id)}); err != nil {
					errCh <- err
					return
				}
				lsn, err := l.Append(RecCommit, txn, 0, nil)
				if err != nil {
					errCh <- err
					return
				}
				done, err := l.Commit(now, lsn)
				if err != nil {
					errCh <- err
					return
				}
				now = done
				if got := l.FlushedLSN(); got < lsn {
					errCh <- fmt.Errorf("commit returned but lsn %d > flushed %d", lsn, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	const commits = workers * perWorker
	if got := l.GroupedTxns(); got != commits {
		t.Fatalf("grouped txns = %d, want %d", got, commits)
	}
	if got := l.Flushes(); got >= commits {
		t.Fatalf("no grouping: %d flushes for %d commits", got, commits)
	}
	if l.GroupCommits() == 0 {
		t.Fatalf("no flush ever served more than one committer")
	}
	// Crash consistency: the durable image decodes cleanly and LSNs are
	// strictly sequential in recovery order (append order preserved).
	recs, _, err := l.ReadAll(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2*commits {
		t.Fatalf("recovered %d records, want %d", len(recs), 2*commits)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has lsn %d: append order not preserved", i, r.LSN)
		}
	}
	committed, _, err := l.CommittedTxns(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(committed) != commits {
		t.Fatalf("recovered %d committed txns, want %d", len(committed), commits)
	}
}

// TestCommitAlreadyDurable checks the piggyback path: a commit whose LSN was
// already forced by an earlier group returns without a new flush.
func TestCommitAlreadyDurable(t *testing.T) {
	l, _ := testLog(t)
	lsn1, _ := l.Append(RecCommit, 1, 0, nil)
	lsn2, _ := l.Append(RecCommit, 2, 0, nil)
	if _, err := l.Commit(10, lsn2); err != nil {
		t.Fatal(err)
	}
	flushes := l.Flushes()
	done, err := l.Commit(5, lsn1)
	if err != nil {
		t.Fatal(err)
	}
	if l.Flushes() != flushes {
		t.Fatalf("already-durable commit forced the log again")
	}
	if done < 10 {
		t.Fatalf("commit time %v went backwards past the covering flush", done)
	}
	// Flush with nothing buffered is a no-op too.
	if now, err := l.Flush(123); err != nil || now != 123 {
		t.Fatalf("empty flush: now=%v err=%v", now, err)
	}
}
