package wal

import (
	"fmt"
	"sort"

	"noftl/internal/core"
	"noftl/internal/storage"
)

// PageImage is one surviving version of a log page, read back by the
// post-crash OOB scan.  Because the log rewrites its current page out of
// place on every force, several versions of the same LPN can coexist on
// flash; Seq is the device's program sequence number, so higher Seq means a
// newer (superset) version.
type PageImage struct {
	LPN  core.LPN
	Seq  uint64
	Data []byte
}

// ScanResult is the reconstructed durable record stream.
type ScanResult struct {
	// Records is the surviving log in LSN order (a contiguous range).
	Records []Record
	// TornRecords counts records dropped from the torn tail (a program
	// interrupted by the crash, or byte-level corruption of the final page).
	TornRecords int
	// TornTail reports whether the newest log write had to be discarded or
	// truncated and an older version (or a valid prefix) was used instead.
	TornTail bool
	// Bytes is the total encoded size of the surviving records.
	Bytes int64
	// StaleRecords counts records from stale pre-truncation log segments:
	// pages dropped by an old checkpoint's Truncate stay physically present
	// until the garbage collector erases their blocks, so the scan can find
	// old record runs separated from the live log by an LSN gap.  Only the
	// final contiguous run is returned; if any records were dropped this way
	// the recovery layer must find a checkpoint in the surviving run.
	StaleRecords int
}

// parsePage decodes the records of one log page version in slot (= append)
// order.  It returns the records up to the first invalid one, how many
// structurally present records failed validation, and whether the whole page
// decoded cleanly.
func parsePage(data []byte) (recs []Record, dropped int, complete bool) {
	raw, structOK := storage.CheckedRecords(data)
	for i, rb := range raw {
		r, err := decodeRecord(rb)
		if err != nil {
			return recs, len(raw) - i, false
		}
		recs = append(recs, r)
	}
	return recs, 0, structOK
}

// ScanImages reconstructs the durable record stream from the log page images
// that survived a crash.  For every LPN the newest fully valid version wins;
// the page holding the globally newest write (the only one a single crash can
// tear) may instead contribute the valid prefix of its newest version when
// that reaches further.  Any other page without a fully valid version is hard
// corruption.
func ScanImages(images []PageImage) (ScanResult, error) {
	var res ScanResult
	if len(images) == 0 {
		return res, nil
	}
	byLPN := make(map[core.LPN][]PageImage)
	var tailLPN core.LPN
	var maxSeq uint64
	for _, img := range images {
		byLPN[img.LPN] = append(byLPN[img.LPN], img)
		if img.Seq >= maxSeq {
			maxSeq, tailLPN = img.Seq, img.LPN
		}
	}

	type pageRecs struct {
		firstLSN uint64
		recs     []Record
	}
	var pages []pageRecs
	for lpn, versions := range byLPN {
		sort.Slice(versions, func(i, j int) bool { return versions[i].Seq > versions[j].Seq })
		var chosen []Record
		found := false
		for _, v := range versions {
			recs, _, complete := parsePage(v.Data)
			if complete {
				chosen, found = recs, true
				break
			}
		}
		if lpn == tailLPN {
			// The newest write may be torn: accept the valid prefix of the
			// newest version if it reaches further than the best complete
			// version (all versions of one LPN share their first LSN).
			prefix, dropped, complete := parsePage(versions[0].Data)
			if !complete && len(prefix) > len(chosen) {
				chosen, found = prefix, true
				res.TornRecords += dropped
				res.TornTail = true
			} else if !complete {
				res.TornTail = true
				res.TornRecords += dropped
			}
		}
		if !found {
			if lpn == tailLPN {
				continue // newest write fully lost: nothing durable from it
			}
			return res, fmt.Errorf("%w: log page %d has no valid version", ErrCorrupt, lpn)
		}
		if len(chosen) == 0 {
			continue
		}
		pages = append(pages, pageRecs{firstLSN: chosen[0].LSN, recs: chosen})
	}

	sort.Slice(pages, func(i, j int) bool { return pages[i].firstLSN < pages[j].firstLSN })
	for _, p := range pages {
		if n := len(res.Records); n > 0 && p.firstLSN != res.Records[n-1].LSN+1 {
			// An LSN gap separates a stale pre-truncation segment from the
			// rest of the log: restart with the newer run.  Truncate only ever
			// drops pages below a durable checkpoint, so everything discarded
			// here is covered by a checkpoint in the final run.
			res.StaleRecords += len(res.Records)
			res.Records = res.Records[:0]
			res.Bytes = 0
		}
		for _, r := range p.recs {
			if n := len(res.Records); n > 0 && r.LSN != res.Records[n-1].LSN+1 {
				return res, fmt.Errorf("%w: non-contiguous lsn %d after %d",
					ErrCorrupt, r.LSN, res.Records[n-1].LSN)
			}
			res.Records = append(res.Records, r)
			res.Bytes += int64(recHeaderSize + len(r.Payload))
		}
	}
	return res, nil
}

// LastCheckpoint assembles the snapshot of the last complete checkpoint in
// recs.  A checkpoint is complete when all of its chunks (RecCheckpoint
// records sharing one TxnID, which carries the checkpoint sequence number)
// survived the crash.  It returns the snapshot bytes and the LSN of the final
// chunk — replay starts strictly after that LSN.
func LastCheckpoint(recs []Record) (data []byte, endLSN uint64, ok bool) {
	type ckpt struct {
		total  uint32
		chunks map[uint32][]byte
		maxLSN uint64
	}
	open := make(map[uint64]*ckpt)
	for _, r := range recs {
		if r.Type != RecCheckpoint {
			continue
		}
		idx, total, chunk, err := DecodeCheckpointChunk(r.Payload)
		if err != nil {
			continue
		}
		c := open[r.TxnID]
		if c == nil {
			c = &ckpt{chunks: make(map[uint32][]byte)}
			open[r.TxnID] = c
		}
		c.total = total
		c.chunks[idx] = chunk
		if r.LSN > c.maxLSN {
			c.maxLSN = r.LSN
		}
	}
	var best *ckpt
	for _, c := range open {
		if uint32(len(c.chunks)) != c.total {
			continue
		}
		if best == nil || c.maxLSN > best.maxLSN {
			best = c
		}
	}
	if best == nil {
		return nil, 0, false
	}
	for i := uint32(0); i < best.total; i++ {
		data = append(data, best.chunks[i]...)
	}
	return data, best.maxLSN, true
}
