package wal

import (
	"encoding/binary"
	"fmt"

	"noftl/internal/storage"
)

// Record payload codecs.  Since PR 10 the DML record types carry enough state
// for a logical redo through the normal heap/btree path:
//
//	RecInsert      rid(10) + row image
//	RecUpdate      rid(10) + after image
//	RecDelete      rid(10)
//	RecIndexInsert u16 key length + key + rid(10)
//	RecIndexDelete key
//	RecCheckpoint  u32 chunk index + u32 chunk total + snapshot bytes
//	               (TxnID carries the checkpoint sequence number)
//
// Earlier logs carried bare RIDs for insert/update; decoders below treat a
// missing row image as an empty row rather than rejecting the record.

const ridLen = 10

// MaxPayload returns the largest record payload that fits into one log page
// of the given size (records never span pages).
func MaxPayload(pageSize int) int {
	return pageSize - storage.PageHeaderSize - 8 - recHeaderSize
}

// RecordSize returns the encoded size of a record on a log page.
func RecordSize(r Record) int {
	return recHeaderSize + len(r.Payload)
}

// EncodeRowPayload packs a RID plus a row image (RecInsert, RecUpdate).
func EncodeRowPayload(rid storage.RID, row []byte) []byte {
	out := make([]byte, 0, ridLen+len(row))
	out = append(out, rid.Encode()...)
	return append(out, row...)
}

// DecodeRowPayload unpacks a RecInsert/RecUpdate payload.
func DecodeRowPayload(p []byte) (storage.RID, []byte, error) {
	rid, err := storage.DecodeRID(p)
	if err != nil {
		return storage.RID{}, nil, fmt.Errorf("%w: row payload: %v", ErrCorrupt, err)
	}
	return rid, p[ridLen:], nil
}

// EncodeIndexInsert packs an index entry (RecIndexInsert).
func EncodeIndexInsert(key []byte, rid storage.RID) []byte {
	out := make([]byte, 0, 2+len(key)+ridLen)
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(key)))
	out = append(out, l[:]...)
	out = append(out, key...)
	return append(out, rid.Encode()...)
}

// DecodeIndexInsert unpacks a RecIndexInsert payload.
func DecodeIndexInsert(p []byte) ([]byte, storage.RID, error) {
	if len(p) < 2 {
		return nil, storage.RID{}, fmt.Errorf("%w: short index payload", ErrCorrupt)
	}
	kl := int(binary.LittleEndian.Uint16(p))
	if len(p) < 2+kl+ridLen {
		return nil, storage.RID{}, fmt.Errorf("%w: truncated index payload", ErrCorrupt)
	}
	key := p[2 : 2+kl]
	rid, err := storage.DecodeRID(p[2+kl:])
	if err != nil {
		return nil, storage.RID{}, fmt.Errorf("%w: index payload: %v", ErrCorrupt, err)
	}
	return key, rid, nil
}

// EncodeCheckpointChunk packs one chunk of a checkpoint snapshot.
func EncodeCheckpointChunk(index, total uint32, data []byte) []byte {
	out := make([]byte, 8+len(data))
	binary.LittleEndian.PutUint32(out, index)
	binary.LittleEndian.PutUint32(out[4:], total)
	copy(out[8:], data)
	return out
}

// DecodeCheckpointChunk unpacks a RecCheckpoint payload.  A legacy empty
// checkpoint record (no payload) decodes as a complete zero-byte snapshot.
func DecodeCheckpointChunk(p []byte) (index, total uint32, data []byte, err error) {
	if len(p) == 0 {
		return 0, 1, nil, nil
	}
	if len(p) < 8 {
		return 0, 0, nil, fmt.Errorf("%w: short checkpoint chunk", ErrCorrupt)
	}
	index = binary.LittleEndian.Uint32(p)
	total = binary.LittleEndian.Uint32(p[4:])
	if total == 0 || index >= total {
		return 0, 0, nil, fmt.Errorf("%w: checkpoint chunk %d/%d", ErrCorrupt, index, total)
	}
	return index, total, p[8:], nil
}
