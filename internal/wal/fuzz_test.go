package wal

import (
	"bytes"
	"testing"

	"noftl/internal/storage"
)

// FuzzWALRecordDecode throws arbitrary bytes at every payload decoder the
// recovery path runs on post-crash data, plus the page-level record parser.
// Two properties must hold for any input:
//
//  1. no decoder panics — recovery must survive any byte soup a torn or
//     corrupted page can produce;
//  2. accepted payloads round-trip — re-encoding the decoded values yields
//     a payload that decodes to the same values again.
func FuzzWALRecordDecode(f *testing.F) {
	rid := storage.RID{LPN: 7, Slot: 3}
	f.Add(EncodeRowPayload(rid, []byte("hello row")))
	f.Add(EncodeRowPayload(rid, nil))
	f.Add(EncodeIndexInsert([]byte("key-0001"), rid))
	f.Add(EncodeIndexInsert(nil, rid))
	f.Add(EncodeCheckpointChunk(0, 1, []byte(`{"tables":[]}`)))
	f.Add(EncodeCheckpointChunk(2, 5, bytes.Repeat([]byte{0xAB}, 100)))
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Add(bytes.Repeat([]byte{0x00}, 64))

	f.Fuzz(func(t *testing.T, p []byte) {
		if rid, row, err := DecodeRowPayload(p); err == nil {
			rid2, row2, err2 := DecodeRowPayload(EncodeRowPayload(rid, row))
			if err2 != nil || rid2 != rid || !bytes.Equal(row2, row) {
				t.Fatalf("row payload round trip: (%v,%q,%v) != (%v,%q)", rid2, row2, err2, rid, row)
			}
		}
		if key, rid, err := DecodeIndexInsert(p); err == nil {
			key2, rid2, err2 := DecodeIndexInsert(EncodeIndexInsert(key, rid))
			if err2 != nil || rid2 != rid || !bytes.Equal(key2, key) {
				t.Fatalf("index payload round trip: (%q,%v,%v) != (%q,%v)", key2, rid2, err2, key, rid)
			}
		}
		if idx, total, data, err := DecodeCheckpointChunk(p); err == nil && len(p) > 0 {
			idx2, total2, data2, err2 := DecodeCheckpointChunk(EncodeCheckpointChunk(idx, total, data))
			if err2 != nil || idx2 != idx || total2 != total || !bytes.Equal(data2, data) {
				t.Fatalf("checkpoint chunk round trip: (%d,%d,%q,%v) != (%d,%d,%q)",
					idx2, total2, data2, err2, idx, total, data)
			}
		}
		// The page parser must tolerate any buffer without panicking; its
		// results are validated by ScanImages, so here only safety matters.
		parsePage(p)
	})
}
