// Package wal implements the write-ahead log of the reproduction's storage
// engine.  Log records are buffered in memory, packed into 4 KiB log pages
// and forced to the flash device on commit (group commit of everything
// buffered so far).  The log is an append-mostly object; under the paper's
// placement model it belongs in the metadata/append region, which is exactly
// where the Region Advisor puts it.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"noftl/internal/core"
	"noftl/internal/obs"
	"noftl/internal/sim"
	"noftl/internal/storage"
)

// RecordType tags a log record.
type RecordType uint8

// Log record types.
const (
	RecBegin RecordType = iota + 1
	RecCommit
	RecAbort
	RecInsert
	RecUpdate
	RecDelete
	RecCheckpoint
	RecIndexInsert
	RecIndexDelete
)

func (t RecordType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecInsert:
		return "INSERT"
	case RecUpdate:
		return "UPDATE"
	case RecDelete:
		return "DELETE"
	case RecCheckpoint:
		return "CHECKPOINT"
	case RecIndexInsert:
		return "IDX-INSERT"
	case RecIndexDelete:
		return "IDX-DELETE"
	default:
		return "UNKNOWN"
	}
}

// Record is one write-ahead-log record.
type Record struct {
	LSN      uint64
	Type     RecordType
	TxnID    uint64
	ObjectID uint32
	Payload  []byte
}

// Errors returned by the log.
var (
	// ErrCorrupt reports a log record whose checksum does not match.
	ErrCorrupt = errors.New("wal: corrupt log record")
	// ErrTooLarge reports a record that does not fit into a log page.
	ErrTooLarge = errors.New("wal: record larger than a log page")
)

const recHeaderSize = 8 + 1 + 8 + 4 + 4 + 4 // lsn, type, txn, obj, payloadLen, crc

func encodeRecord(r Record) []byte {
	out := make([]byte, recHeaderSize+len(r.Payload))
	binary.LittleEndian.PutUint64(out[0:], r.LSN)
	out[8] = byte(r.Type)
	binary.LittleEndian.PutUint64(out[9:], r.TxnID)
	binary.LittleEndian.PutUint32(out[17:], r.ObjectID)
	binary.LittleEndian.PutUint32(out[21:], uint32(len(r.Payload)))
	copy(out[29:], r.Payload)
	crc := crc32.ChecksumIEEE(out[:25])
	crc = crc32.Update(crc, crc32.IEEETable, r.Payload)
	binary.LittleEndian.PutUint32(out[25:], crc)
	return out
}

func decodeRecord(b []byte) (Record, error) {
	if len(b) < recHeaderSize {
		return Record{}, fmt.Errorf("%w: short record", ErrCorrupt)
	}
	r := Record{
		LSN:      binary.LittleEndian.Uint64(b[0:]),
		Type:     RecordType(b[8]),
		TxnID:    binary.LittleEndian.Uint64(b[9:]),
		ObjectID: binary.LittleEndian.Uint32(b[17:]),
	}
	plen := binary.LittleEndian.Uint32(b[21:])
	if int(plen) != len(b)-recHeaderSize {
		return Record{}, fmt.Errorf("%w: payload length mismatch", ErrCorrupt)
	}
	r.Payload = append([]byte(nil), b[29:]...)
	want := binary.LittleEndian.Uint32(b[25:])
	crc := crc32.ChecksumIEEE(b[:25])
	crc = crc32.Update(crc, crc32.IEEETable, r.Payload)
	if crc != want {
		return Record{}, fmt.Errorf("%w: checksum mismatch for lsn %d", ErrCorrupt, r.LSN)
	}
	return r, nil
}

// Log is the write-ahead log manager.
type Log struct {
	mu       sync.Mutex
	mgr      *core.Manager
	hint     core.Hint
	pageSize int

	nextLSN    uint64
	flushedLSN uint64

	cur        []byte   // current (partial) log page image
	curLPN     core.LPN // logical page the current page will be written to
	sealedWr   []sealedPage
	pages      []core.LPN          // every log page ever allocated, in order
	pageMaxLSN map[core.LPN]uint64 // highest LSN stored in each sealed page

	appended int64
	flushes  int64
	bytes    int64

	// Byte accounting across checkpoints: pageBytes tracks the encoded
	// record bytes held by each live log page, so Truncate can move a
	// dropped page's bytes from the live total to the trimmed total instead
	// of leaking them (Stats().WAL reconciles: live = appended - trimmed).
	pageBytes    map[core.LPN]int64
	bytesTrimmed int64
	pagesTrimmed int64

	// Group commit.  Committers queue behind a single flush leader; the
	// leader forces everything appended so far with one device write chain,
	// making all queued commit records durable at once.  commitBatch and
	// commitDelay let the leader linger (wall clock) for more committers to
	// join before flushing.
	commitCond    *sync.Cond
	flushLeader   bool
	commitPending int
	commitBatch   int
	commitDelay   time.Duration
	groupMaxNow   sim.Time // max virtual time across the forming group
	flushDoneAt   sim.Time // virtual end of the latest flush
	groupCommits  int64    // flushes that made more than one committer durable
	groupedTxns   int64    // committers served by Commit, across all groups

	tracer *obs.Tracer // nil = tracing off
}

type sealedPage struct {
	lpn  core.LPN
	data []byte
}

// New creates a log writing pages through mgr with the given placement hint
// (normally the hint of the log object's tablespace).
func New(mgr *core.Manager, hint core.Hint, pageSize int) *Log {
	l := &Log{
		mgr:         mgr,
		hint:        hint,
		pageSize:    pageSize,
		nextLSN:     1,
		pageMaxLSN:  make(map[core.LPN]uint64),
		pageBytes:   make(map[core.LPN]int64),
		commitBatch: 1,
	}
	l.commitCond = sync.NewCond(&l.mu)
	l.hint.Flags |= flashFlagLog
	l.openPage()
	return l
}

// SetGroupCommit configures the group-commit window: a flush leader lingers
// up to delay (wall clock) for up to batch committers to queue before forcing
// the log.  batch <= 1 or delay <= 0 disables the linger; committers then
// still piggyback on an in-flight flush, they just never wait for one to
// form.  Configure before the log sees concurrent commits.
func (l *Log) SetGroupCommit(batch int, delay time.Duration) {
	l.mu.Lock()
	if batch < 1 {
		batch = 1
	}
	l.commitBatch = batch
	if delay < 0 {
		delay = 0
	}
	l.commitDelay = delay
	l.mu.Unlock()
}

// flashFlagLog mirrors flash.FlagLog without importing the flash package
// here (the hint flag bits are defined by the flash OOB metadata).
const flashFlagLog uint16 = 1

func (l *Log) openPage() {
	l.curLPN = l.mgr.AllocateLPNs(1)
	l.cur = make([]byte, l.pageSize)
	storage.InitPage(l.cur, storage.PageTypeLog, l.hint.ObjectID, uint64(l.curLPN))
	l.pages = append(l.pages, l.curLPN)
}

// AttachObs wires the log to the trace recorder.  A nil tracer (the default)
// keeps tracing off.  Attach before the log sees traffic.
func (l *Log) AttachObs(tr *obs.Tracer) {
	l.mu.Lock()
	l.tracer = tr
	l.mu.Unlock()
}

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// FlushedLSN returns the highest LSN known to be durable.
func (l *Log) FlushedLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushedLSN
}

// Appended returns the number of records appended so far.
func (l *Log) Appended() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// Flushes returns the number of Flush calls that wrote pages.
func (l *Log) Flushes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushes
}

// GroupCommits returns the number of log forces that made more than one
// committer durable at once.
func (l *Log) GroupCommits() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.groupCommits
}

// GroupedTxns returns the number of committers served by Commit across all
// groups (GroupedTxns / Flushes is the mean group size when every force goes
// through Commit).
func (l *Log) GroupedTxns() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.groupedTxns
}

// PageCount returns the number of log pages allocated.
func (l *Log) PageCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pages)
}

// Append adds a record to the log buffer and returns its LSN.  The record is
// not durable until Flush returns.
func (l *Log) Append(typ RecordType, txnID uint64, objectID uint32, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec := Record{LSN: l.nextLSN, Type: typ, TxnID: txnID, ObjectID: objectID, Payload: payload}
	enc := encodeRecord(rec)
	if len(enc) > l.pageSize-storage.PageHeaderSize-8 {
		return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(enc))
	}
	if _, err := storage.InsertRecord(l.cur, enc); err != nil {
		// Current page is full: seal it and start a new one.
		l.sealedWr = append(l.sealedWr, sealedPage{lpn: l.curLPN, data: l.cur})
		l.pageMaxLSN[l.curLPN] = l.nextLSN - 1
		l.openPage()
		if _, err := storage.InsertRecord(l.cur, enc); err != nil {
			return 0, err
		}
	}
	l.nextLSN++
	l.appended++
	l.bytes += int64(len(enc))
	l.pageBytes[l.curLPN] += int64(len(enc))
	if l.tracer.Enabled(obs.ClassWALAppend) {
		// Append is a pure memory operation: it carries no virtual-time span
		// of its own (durability cost lands on the Flush event).
		l.tracer.Record(obs.Event{
			Class: obs.ClassWALAppend, Op: uint8(typ),
			Die: -1, Block: -1, Page: -1, Region: int32(l.hint.Region),
			A: int64(rec.LSN), B: int64(len(enc)),
		})
	}
	return rec.LSN, nil
}

// Flush forces every appended record to the device (sealed full pages plus
// the current partial page) and returns the caller's advanced virtual time.
// If a group-commit flush is in flight, Flush waits for it and then forces
// whatever is still buffered.
//
// The log is deliberately written page-at-a-time rather than as one
// die-striped batch: the WAL is an append stream confined to its (often
// small) metadata region, and its flush cadence is part of the measured
// foreground-GC interference the paper's experiments compare.
func (l *Log) Flush(now sim.Time) (sim.Time, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.flushLeader {
		l.commitCond.Wait()
	}
	if l.flushedLSN == l.nextLSN-1 {
		return now, nil // nothing new
	}
	l.flushLeader = true
	if now > l.groupMaxNow {
		l.groupMaxNow = now
	}
	done, err := l.flushGroupLocked()
	l.flushLeader = false
	l.commitCond.Broadcast()
	if err != nil {
		return now, err
	}
	return sim.MaxTime(now, done), nil
}

// Commit makes the record at lsn (and everything before it) durable and
// returns the virtual time at which durability was reached for a committer
// whose current virtual time is now.  Concurrent committers form a group: one
// becomes the flush leader and forces the log once for all of them; the rest
// wait for the leader and return without issuing any device writes of their
// own.  That one force is what lets N workers commit with far fewer than N
// log-page writes.
func (l *Log) Commit(now sim.Time, lsn uint64) (sim.Time, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if now > l.groupMaxNow {
		l.groupMaxNow = now
	}
	l.commitPending++
	defer func() { l.commitPending-- }()
	if l.flushLeader {
		// Wake a leader lingering for its group to fill.
		l.commitCond.Broadcast()
	}
	for {
		if l.flushedLSN >= lsn {
			l.groupedTxns++
			return sim.MaxTime(now, l.flushDoneAt), nil
		}
		if !l.flushLeader {
			break
		}
		l.commitCond.Wait()
	}
	// We are the flush leader for this group.
	l.flushLeader = true
	if l.commitBatch > 1 && l.commitDelay > 0 {
		// Linger (wall clock) for more committers, bounded by the window.
		deadline := time.Now().Add(l.commitDelay)
		for l.commitPending < l.commitBatch {
			wait := time.Until(deadline)
			if wait <= 0 {
				break
			}
			timer := time.AfterFunc(wait, l.commitCond.Broadcast)
			l.commitCond.Wait()
			timer.Stop()
		}
	}
	grouped := int64(l.commitPending)
	done, err := l.flushGroupLocked()
	l.flushLeader = false
	l.commitCond.Broadcast()
	if err != nil {
		return now, err
	}
	l.groupedTxns++
	if grouped > 1 {
		l.groupCommits++
	}
	return sim.MaxTime(now, done), nil
}

// flushGroupLocked forces everything appended so far.  Caller holds l.mu and
// has claimed flush leadership; the device writes happen with l.mu released,
// so appends (and committers joining the next group) proceed during the
// force.  Returns with l.mu held.
func (l *Log) flushGroupLocked() (sim.Time, error) {
	flushNow := l.groupMaxNow
	l.groupMaxNow = 0
	if l.flushedLSN == l.nextLSN-1 {
		return sim.MaxTime(flushNow, l.flushDoneAt), nil
	}
	hw := l.nextLSN - 1
	newlyDurable := hw - l.flushedLSN
	sealed := l.sealedWr
	l.sealedWr = nil
	curLPN := l.curLPN
	// Snapshot the partial page: appends may extend l.cur while the device
	// writes run.  Records beyond the snapshot stay buffered for the next
	// force; re-writing the page later simply supersedes this version out of
	// place.
	cur := append([]byte(nil), l.cur...)
	start := flushNow
	l.mu.Unlock()
	vnow := flushNow
	var err error
	for _, sp := range sealed {
		var done sim.Time
		done, err = l.mgr.WritePage(vnow, sp.lpn, sp.data, l.hint)
		if err != nil {
			err = fmt.Errorf("wal: flush sealed page: %w", err)
			break
		}
		vnow = done
	}
	if err == nil {
		var done sim.Time
		done, err = l.mgr.WritePage(vnow, curLPN, cur, l.hint)
		if err != nil {
			err = fmt.Errorf("wal: flush current page: %w", err)
		} else {
			vnow = done
		}
	}
	l.mu.Lock()
	if err != nil {
		// Put the sealed pages back (ahead of any sealed since) so a retry
		// re-writes them.
		l.sealedWr = append(sealed, l.sealedWr...)
		return vnow, err
	}
	if hw > l.flushedLSN {
		l.flushedLSN = hw
	}
	if vnow > l.flushDoneAt {
		l.flushDoneAt = vnow
	}
	l.flushes++
	if l.tracer.Enabled(obs.ClassWALSync) {
		l.tracer.Record(obs.Event{
			Class: obs.ClassWALSync, Die: -1, Block: -1, Page: -1,
			Region: int32(l.hint.Region), Start: start, End: vnow,
			A: int64(newlyDurable), B: int64(l.flushedLSN),
		})
	}
	return vnow, nil
}

// ReadAll reads every durable log record back from the device in LSN order
// (records appended but never flushed are not returned).  It is the recovery
// scan.
func (l *Log) ReadAll(now sim.Time) ([]Record, sim.Time, error) {
	l.mu.Lock()
	pages := append([]core.LPN(nil), l.pages...)
	l.mu.Unlock()

	var out []Record
	buf := make([]byte, l.pageSize)
	for _, lpn := range pages {
		data, done, err := l.mgr.ReadPage(now, lpn, buf)
		if err != nil {
			if errors.Is(err, core.ErrUnmappedPage) {
				continue // never flushed
			}
			return nil, now, err
		}
		now = done
		var decodeErr error
		_ = storage.IterateRecords(data, func(slot uint16, rec []byte) bool {
			r, err := decodeRecord(rec)
			if err != nil {
				decodeErr = err
				return false
			}
			out = append(out, r)
			return true
		})
		if decodeErr != nil {
			return nil, now, decodeErr
		}
	}
	return out, now, nil
}

// CommittedTxns scans the durable log and returns the set of transaction ids
// that have a COMMIT record — the first phase of a redo recovery.
func (l *Log) CommittedTxns(now sim.Time) (map[uint64]bool, sim.Time, error) {
	recs, now, err := l.ReadAll(now)
	if err != nil {
		return nil, now, err
	}
	committed := make(map[uint64]bool)
	for _, r := range recs {
		if r.Type == RecCommit {
			committed[r.TxnID] = true
		}
	}
	return committed, now, nil
}

// Truncate drops every sealed log page whose records all lie strictly below
// upToLSN, trimming them on the device (checkpointing).  The current page and
// pages that were never flushed are never dropped.  It returns the number of
// pages removed.
func (l *Log) Truncate(upToLSN uint64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	dropped := 0
	kept := l.pages[:0]
	for _, lpn := range l.pages {
		maxLSN, sealed := l.pageMaxLSN[lpn]
		if lpn == l.curLPN || !sealed || maxLSN >= upToLSN {
			kept = append(kept, lpn)
			continue
		}
		if err := l.mgr.TrimPage(lpn); err != nil {
			kept = append(kept, lpn)
			continue
		}
		delete(l.pageMaxLSN, lpn)
		l.bytesTrimmed += l.pageBytes[lpn]
		delete(l.pageBytes, lpn)
		l.pagesTrimmed++
		dropped++
	}
	l.pages = kept
	return dropped
}

// BytesAppended returns the total encoded record bytes ever appended.
func (l *Log) BytesAppended() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// BytesTrimmed returns the encoded record bytes dropped by Truncate.
func (l *Log) BytesTrimmed() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytesTrimmed
}

// BytesLive returns the encoded record bytes still held by live log pages
// (appended minus trimmed) — the upper bound on what a crash now would
// replay.
func (l *Log) BytesLive() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes - l.bytesTrimmed
}

// PagesTrimmed returns the number of log pages dropped by Truncate.
func (l *Log) PagesTrimmed() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pagesTrimmed
}
