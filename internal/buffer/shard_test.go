package buffer

import (
	"sync"
	"testing"

	"noftl/internal/core"
	"noftl/internal/sim"
)

func TestAutoShards(t *testing.T) {
	cases := []struct{ frames, want int }{
		{2, 1}, {32, 1}, {63, 1}, {64, 1}, {128, 2}, {256, 4},
		{512, 8}, {1024, 16}, {2048, 16}, {100000, 16},
	}
	for _, c := range cases {
		if got := autoShards(c.frames); got != c.want {
			t.Errorf("autoShards(%d) = %d, want %d", c.frames, got, c.want)
		}
	}
}

func TestPoolShardOverride(t *testing.T) {
	be := newMemBackend(128)
	p := New(be, 32, 128, nil)
	if got := p.Stats().Shards; got != 1 {
		t.Fatalf("auto shards for 32 frames = %d, want 1", got)
	}
	p.Configure(Options{Shards: 8})
	st := p.Stats()
	if st.Shards != 8 {
		t.Fatalf("shards after Configure = %d, want 8", st.Shards)
	}
	if st.Frames != 32 {
		t.Fatalf("frames after reshard = %d, want 32", st.Frames)
	}
	// A shard override larger than frames/2 is clamped.
	p2 := New(be, 8, 128, nil)
	p2.Configure(Options{Shards: 100})
	if got := p2.Stats().Shards; got != 4 {
		t.Fatalf("clamped shards = %d, want 4", got)
	}
	// Resharding after traffic is inert.
	h, _, err := p.NewPage(0, 1, core.Hint{})
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	p.Configure(Options{Shards: 2})
	if got := p.Stats().Shards; got != 8 {
		t.Fatalf("reshard after traffic changed shards to %d", got)
	}
}

// TestPoolShardedEvictionUnderContention drives many goroutines through a
// multi-shard pool far smaller than the page working set, so every shard
// constantly evicts (including dirty write-backs) while other workers fetch,
// modify and flush.  Run under -race this exercises the shard mutex / frame
// latch interplay of the sharded CLOCK.
func TestPoolShardedEvictionUnderContention(t *testing.T) {
	be := newMemBatchBackend(128)
	const pages = 256
	be.seed(pages)
	p := New(be, 64, 128, nil)
	p.Configure(Options{Shards: 8, GroupWriteBack: true})
	if got := p.Stats().Shards; got != 8 {
		t.Fatalf("shards = %d, want 8", got)
	}

	const workers = 8
	const opsPerWorker = 2000
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			r := sim.NewRand(uint64(seed + 1))
			now := sim.Time(0)
			for i := 0; i < opsPerWorker; i++ {
				switch r.Intn(10) {
				case 0: // occasional batched fetch
					lo := core.LPN(r.Intn(pages-8) + 1)
					lpns := []core.LPN{lo, lo + 1, lo + 2, lo + 3}
					hs, done, err := p.FetchMany(now, lpns, core.Hint{})
					if err != nil {
						errCh <- err
						return
					}
					now = done
					for _, h := range hs {
						h.RLock()
						_ = h.Data()[0]
						h.RUnlock()
						h.Release()
					}
				case 1: // background-flusher style group write-back
					if _, done, err := p.FlushSome(now, 8); err != nil {
						errCh <- err
						return
					} else {
						now = done
					}
				default:
					lpn := core.LPN(r.Intn(pages) + 1)
					h, done, err := p.Fetch(now, lpn, core.Hint{})
					if err != nil {
						errCh <- err
						return
					}
					now = done
					h.Lock()
					h.Data()[1]++
					h.MarkDirty()
					h.Unlock()
					h.Release()
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if _, err := p.FlushAll(0); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Evictions == 0 || st.Writebacks == 0 {
		t.Fatalf("contention run did not evict/write back: %+v", st)
	}
	if st.Dirty != 0 {
		t.Fatalf("dirty pages remain after FlushAll: %d", st.Dirty)
	}
	// No pins may leak: every page must be evictable now.
	for i := 1; i <= pages; i++ {
		p.Drop(core.LPN(i))
	}
	if got := p.Stats().Resident; got != 0 {
		t.Fatalf("leaked pins kept %d pages resident after Drop of everything", got)
	}
}
