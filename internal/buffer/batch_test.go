package buffer

import (
	"testing"

	"noftl/internal/core"
	"noftl/internal/sim"
)

// memBatchBackend extends memBackend with the batched interface: batched
// pages all complete one latency after submission (perfect overlap), which
// is what the real scheduler produces for a die-striped batch.
type memBatchBackend struct {
	*memBackend
	batchReads  int // ReadPages dispatches
	batchWrites int // WritePages dispatches
}

func newMemBatchBackend(pageSize int) *memBatchBackend {
	return &memBatchBackend{memBackend: newMemBackend(pageSize)}
}

func (b *memBatchBackend) ReadPages(now sim.Time, lpns []core.LPN, bufs [][]byte) ([]core.PageRead, sim.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.batchReads++
	out := make([]core.PageRead, len(lpns))
	end := now
	for i, lpn := range lpns {
		out[i].LPN = lpn
		out[i].Done = now
		data, ok := b.pages[lpn]
		if !ok {
			out[i].Err = core.ErrUnmappedPage
			continue
		}
		b.reads++
		var buf []byte
		if bufs != nil && i < len(bufs) {
			buf = bufs[i]
		}
		if buf == nil {
			buf = make([]byte, b.pageSize)
		}
		copy(buf, data)
		out[i].Data = buf
		out[i].Done = now.Add(b.readLat)
		if out[i].Done > end {
			end = out[i].Done
		}
	}
	return out, end
}

func (b *memBatchBackend) WritePages(now sim.Time, writes []core.PageWrite) (sim.Time, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.batchWrites++
	for _, w := range writes {
		cp := make([]byte, len(w.Data))
		copy(cp, w.Data)
		b.pages[w.LPN] = cp
		b.writes++
	}
	return now.Add(b.writeLat), nil
}

func (b *memBatchBackend) Mapped(lpn core.LPN) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.pages[lpn]
	return ok
}

// seed stores n pages with LPNs 1..n directly in the backend.
func (b *memBatchBackend) seed(n int) {
	for i := 1; i <= n; i++ {
		data := make([]byte, b.pageSize)
		data[0] = byte(i)
		b.pages[core.LPN(i)] = data
	}
}

func TestPoolReadAheadStagesSequentialPages(t *testing.T) {
	be := newMemBatchBackend(128)
	be.seed(10)
	p := New(be, 16, 128, nil)
	p.Configure(Options{ReadAhead: 4})

	h, done, err := p.Fetch(0, 1, core.Hint{ObjectID: 7})
	if err != nil {
		t.Fatal(err)
	}
	h.RLock()
	if h.Data()[0] != 1 {
		t.Fatal("demand page has wrong data")
	}
	h.RUnlock()
	h.Release()
	// The demand miss costs one read latency even though five pages moved.
	if done != sim.Time(be.readLat) {
		t.Errorf("demand fetch done at %v, want %v", done, sim.Time(be.readLat))
	}

	st := p.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	if st.Prefetches != 4 {
		t.Errorf("prefetches = %d, want 4", st.Prefetches)
	}
	if be.batchReads != 1 {
		t.Errorf("batch dispatches = %d, want 1 (demand + read-ahead in one batch)", be.batchReads)
	}
	if be.reads != 5 {
		t.Errorf("pages read = %d, want 5", be.reads)
	}

	// Pages 2..5 now hit in memory without any further backend read.
	for lpn := core.LPN(2); lpn <= 5; lpn++ {
		h, _, err := p.Fetch(0, lpn, core.Hint{ObjectID: 7})
		if err != nil {
			t.Fatal(err)
		}
		h.RLock()
		if h.Data()[0] != byte(lpn) {
			t.Errorf("prefetched page %d has wrong data", lpn)
		}
		h.RUnlock()
		h.Release()
	}
	st = p.Stats()
	if st.Misses != 1 {
		t.Errorf("sequential scan missed %d times, want 1", st.Misses)
	}
	if st.PrefetchHits != 4 {
		t.Errorf("prefetch hits = %d, want 4", st.PrefetchHits)
	}
	if be.reads != 5 {
		t.Errorf("pages read after scan = %d, want 5 (no extra reads)", be.reads)
	}
}

func TestPoolReadAheadSkipsUnmappedAndResident(t *testing.T) {
	be := newMemBatchBackend(128)
	be.seed(3) // pages 1..3 exist; 4,5 do not
	p := New(be, 16, 128, nil)
	p.Configure(Options{ReadAhead: 4})

	// Make page 2 resident first (single-page miss path: nothing to stage
	// beyond it except 3).
	h, _, err := p.Fetch(0, 2, core.Hint{})
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	st := p.Stats()
	if st.Prefetches != 1 {
		t.Fatalf("prefetches after first fetch = %d, want 1 (page 3 only)", st.Prefetches)
	}

	// Fetching page 1 stages nothing: 2 and 3 are resident, 4+ unmapped.
	h, _, err = p.Fetch(0, 1, core.Hint{})
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	st = p.Stats()
	if st.Prefetches != 1 {
		t.Errorf("prefetches = %d, want 1 (resident and unmapped pages skipped)", st.Prefetches)
	}
}

func TestPoolGroupWriteBack(t *testing.T) {
	be := newMemBatchBackend(128)
	p := New(be, 16, 128, nil)
	p.Configure(Options{GroupWriteBack: true})

	const n = 6
	for i := 1; i <= n; i++ {
		h, _, err := p.NewPage(0, core.LPN(i), core.Hint{ObjectID: 3})
		if err != nil {
			t.Fatal(err)
		}
		h.Lock()
		h.Data()[0] = byte(i)
		h.Unlock()
		h.MarkDirty()
		h.Release()
	}
	done, err := p.FlushAll(0)
	if err != nil {
		t.Fatal(err)
	}
	// One batched dispatch covering all six pages, costing one write
	// latency of virtual time instead of six.
	if be.batchWrites != 1 {
		t.Errorf("batch write dispatches = %d, want 1", be.batchWrites)
	}
	if be.writes != n {
		t.Errorf("pages written = %d, want %d", be.writes, n)
	}
	if done != sim.Time(be.writeLat) {
		t.Errorf("group flush done at %v, want %v (overlapped)", done, sim.Time(be.writeLat))
	}
	st := p.Stats()
	if st.Writebacks != n || st.GroupFlushes != 1 || st.Dirty != 0 {
		t.Errorf("stats after group flush: %+v", st)
	}
	for i := 1; i <= n; i++ {
		if be.pages[core.LPN(i)][0] != byte(i) {
			t.Errorf("page %d content lost in group flush", i)
		}
	}
}

func TestPoolGroupFlushSomeHonoursLimit(t *testing.T) {
	be := newMemBatchBackend(128)
	p := New(be, 16, 128, nil)
	p.Configure(Options{GroupWriteBack: true})
	for i := 1; i <= 5; i++ {
		h, _, err := p.NewPage(0, core.LPN(i), core.Hint{})
		if err != nil {
			t.Fatal(err)
		}
		h.MarkDirty()
		h.Release()
	}
	n, _, err := p.FlushSome(0, 3)
	if err != nil || n != 3 {
		t.Fatalf("FlushSome = %d, %v; want 3", n, err)
	}
	if p.Stats().Dirty != 2 {
		t.Fatalf("dirty after partial group flush = %d, want 2", p.Stats().Dirty)
	}
	n, _, err = p.FlushSome(0, 100)
	if err != nil || n != 2 {
		t.Fatalf("second FlushSome = %d, %v; want 2", n, err)
	}
}

func TestPoolOptionsInertWithoutBatchBackend(t *testing.T) {
	be := newMemBackend(128) // plain backend: no batch interface
	p := New(be, 8, 128, nil)
	p.Configure(Options{ReadAhead: 4, GroupWriteBack: true})

	data := make([]byte, 128)
	if _, err := be.WritePage(0, 1, data, core.Hint{}); err != nil {
		t.Fatal(err)
	}
	if _, err := be.WritePage(0, 2, data, core.Hint{}); err != nil {
		t.Fatal(err)
	}
	h, _, err := p.Fetch(0, 1, core.Hint{})
	if err != nil {
		t.Fatal(err)
	}
	h.MarkDirty()
	h.Release()
	if _, err := p.FlushAll(0); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Prefetches != 0 || st.GroupFlushes != 0 {
		t.Errorf("batch features ran without a batch backend: %+v", st)
	}
}

// TestFetchManyBatchesMissesAndSurvivesExhaustion covers the batched fetch
// path: all misses of one call go to the backend as a single ReadPages
// dispatch, and a call that exceeds the pool's frames fails cleanly — the
// staged frames are unwound (no held latches, no published garbage) so the
// same pages remain fetchable afterwards.
func TestFetchManyBatchesMissesAndSurvivesExhaustion(t *testing.T) {
	be := newMemBatchBackend(128)
	be.seed(32)
	p := New(be, 8, 128, nil)

	// 6 distinct pages, one resident beforehand: one batch dispatch.
	h0, _, err := p.Fetch(0, 3, core.Hint{})
	if err != nil {
		t.Fatal(err)
	}
	h0.Release()
	readsBefore := be.batchReads
	lpns := []core.LPN{1, 2, 3, 4, 5, 6}
	handles, _, err := p.FetchMany(0, lpns, core.Hint{})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range handles {
		h.RLock()
		if h.Data()[0] != byte(lpns[i]) {
			t.Fatalf("page %d has wrong contents %d", lpns[i], h.Data()[0])
		}
		h.RUnlock()
		h.Release()
	}
	if got := be.batchReads - readsBefore; got != 1 {
		t.Fatalf("misses dispatched in %d batches, want 1", got)
	}

	// More distinct pages than frames: the call must fail with ErrPoolFull
	// without leaking latched frames.
	big := make([]core.LPN, 0, 12)
	for i := 1; i <= 12; i++ {
		big = append(big, core.LPN(i))
	}
	if _, _, err := p.FetchMany(0, big, core.Hint{}); err == nil {
		t.Fatal("FetchMany over pool size succeeded")
	}
	// Every page is still individually fetchable (a leaked latch would
	// deadlock here, a leaked pin would exhaust the pool).
	for _, lpn := range big {
		h, _, err := p.Fetch(0, lpn, core.Hint{})
		if err != nil {
			t.Fatalf("fetch %d after failed FetchMany: %v", lpn, err)
		}
		h.RLock()
		if h.Data()[0] != byte(lpn) {
			t.Fatalf("page %d corrupted after failed FetchMany", lpn)
		}
		h.RUnlock()
		h.Release()
	}
}
