package buffer

import (
	"errors"
	"sync"
	"testing"
	"time"

	"noftl/internal/core"
	"noftl/internal/sim"
)

// memBackend is an in-memory Backend with fixed per-operation virtual
// latencies, used to test the pool in isolation from the flash stack.
type memBackend struct {
	mu       sync.Mutex
	pages    map[core.LPN][]byte
	pageSize int
	readLat  time.Duration
	writeLat time.Duration
	reads    int
	writes   int
	failRead bool
}

func newMemBackend(pageSize int) *memBackend {
	return &memBackend{
		pages:    make(map[core.LPN][]byte),
		pageSize: pageSize,
		readLat:  50 * time.Microsecond,
		writeLat: 300 * time.Microsecond,
	}
}

func (b *memBackend) ReadPage(now sim.Time, lpn core.LPN, buf []byte) ([]byte, sim.Time, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failRead {
		return nil, now, errors.New("injected read failure")
	}
	data, ok := b.pages[lpn]
	if !ok {
		return nil, now, core.ErrUnmappedPage
	}
	b.reads++
	copy(buf, data)
	return buf, now.Add(b.readLat), nil
}

func (b *memBackend) WritePage(now sim.Time, lpn core.LPN, data []byte, hint core.Hint) (sim.Time, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	b.pages[lpn] = cp
	b.writes++
	return now.Add(b.writeLat), nil
}

type countingRecorder struct {
	mu     sync.Mutex
	reads  map[uint32]int64
	writes map[uint32]int64
}

func newCountingRecorder() *countingRecorder {
	return &countingRecorder{reads: map[uint32]int64{}, writes: map[uint32]int64{}}
}

func (r *countingRecorder) RecordPhysRead(obj uint32, n int64) {
	r.mu.Lock()
	r.reads[obj] += n
	r.mu.Unlock()
}

func (r *countingRecorder) RecordPhysWrite(obj uint32, n int64) {
	r.mu.Lock()
	r.writes[obj] += n
	r.mu.Unlock()
}

func TestPoolNewPageFetchRoundTrip(t *testing.T) {
	be := newMemBackend(256)
	rec := newCountingRecorder()
	p := New(be, 4, 256, rec)
	if p.PageSize() != 256 {
		t.Fatalf("page size = %d", p.PageSize())
	}

	h, now, err := p.NewPage(0, 10, core.Hint{ObjectID: 1})
	if err != nil {
		t.Fatal(err)
	}
	h.Lock()
	h.Data()[0] = 0xAA
	h.Unlock()
	h.MarkDirty()
	if h.LPN() != 10 {
		t.Fatalf("handle LPN = %d", h.LPN())
	}
	h.Release()

	// The page is resident: fetch is a hit, no backend read.
	h2, _, err := p.Fetch(now, 10, core.Hint{ObjectID: 1})
	if err != nil {
		t.Fatal(err)
	}
	h2.RLock()
	if h2.Data()[0] != 0xAA {
		t.Fatal("data lost on re-fetch")
	}
	h2.RUnlock()
	h2.Release()
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 0 || st.NewPages != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if be.reads != 0 {
		t.Fatal("hit caused a backend read")
	}
	// Flush, then evict everything via new pages; re-fetch must read from
	// the backend and still see the data.
	if _, err := p.FlushAll(now); err != nil {
		t.Fatal(err)
	}
	if be.writes != 1 {
		t.Fatalf("flush wrote %d pages", be.writes)
	}
	for i := 0; i < 8; i++ {
		h, _, err := p.NewPage(now, core.LPN(100+i), core.Hint{ObjectID: 2})
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	h3, _, err := p.Fetch(now, 10, core.Hint{ObjectID: 1})
	if err != nil {
		t.Fatal(err)
	}
	h3.RLock()
	if h3.Data()[0] != 0xAA {
		t.Fatal("data lost after eviction round trip")
	}
	h3.RUnlock()
	h3.Release()
	st = p.Stats()
	if st.Misses != 1 || st.Evictions == 0 {
		t.Fatalf("stats after eviction: %+v", st)
	}
	if rec.reads[1] != 1 {
		t.Fatalf("recorder reads: %+v", rec.reads)
	}
	if rec.writes[1]+rec.writes[2] == 0 {
		t.Fatalf("recorder writes: %+v", rec.writes)
	}
	if st.HitRatio() <= 0 || st.HitRatio() >= 1 {
		t.Fatalf("hit ratio = %v", st.HitRatio())
	}
}

func TestPoolDirtyEvictionWritesBack(t *testing.T) {
	be := newMemBackend(128)
	p := New(be, 2, 128, nil)
	// Dirty two pages, then touch a third: one dirty page must be written
	// back to make room, and the caller's virtual time must advance by at
	// least the write latency.
	for i := 0; i < 2; i++ {
		h, _, err := p.NewPage(0, core.LPN(i+1), core.Hint{})
		if err != nil {
			t.Fatal(err)
		}
		h.Lock()
		h.Data()[0] = byte(i + 1)
		h.Unlock()
		h.MarkDirty()
		h.Release()
	}
	h, done, err := p.NewPage(0, 3, core.Hint{})
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	if be.writes == 0 {
		t.Fatal("dirty eviction did not write back")
	}
	if done < sim.Time(be.writeLat) {
		t.Fatalf("eviction write-back not charged to caller: %v", done)
	}
	// The evicted page's data survives in the backend.
	st := p.Stats()
	if st.Writebacks == 0 || st.Evictions == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPoolAllPinned(t *testing.T) {
	be := newMemBackend(128)
	p := New(be, 2, 128, nil)
	h1, _, err := p.NewPage(0, 1, core.Hint{})
	if err != nil {
		t.Fatal(err)
	}
	h2, _, err := p.NewPage(0, 2, core.Hint{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.NewPage(0, 3, core.Hint{}); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("want ErrPoolFull, got %v", err)
	}
	h1.Release()
	h2.Release()
	if h, _, err := p.NewPage(0, 3, core.Hint{}); err != nil {
		t.Fatalf("after release: %v", err)
	} else {
		h.Release()
	}
}

func TestPoolFetchErrorPropagates(t *testing.T) {
	be := newMemBackend(128)
	p := New(be, 2, 128, nil)
	if _, _, err := p.Fetch(0, 77, core.Hint{}); err == nil {
		t.Fatal("fetch of unknown page succeeded")
	}
	// The failed frame is reusable afterwards.
	h, _, err := p.NewPage(0, 1, core.Hint{})
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
}

func TestPoolFlushPageAndDrop(t *testing.T) {
	be := newMemBackend(128)
	p := New(be, 4, 128, nil)
	h, _, err := p.NewPage(0, 9, core.Hint{})
	if err != nil {
		t.Fatal(err)
	}
	h.Lock()
	h.Data()[1] = 7
	h.Unlock()
	h.MarkDirty()
	h.Release()
	if _, err := p.FlushPage(0, 9); err != nil {
		t.Fatal(err)
	}
	if be.writes != 1 {
		t.Fatalf("writes = %d", be.writes)
	}
	// Flushing a clean page is a no-op; flushing a non-resident page errors.
	if _, err := p.FlushPage(0, 9); err != nil {
		t.Fatal(err)
	}
	if be.writes != 1 {
		t.Fatal("clean flush wrote")
	}
	if _, err := p.FlushPage(0, 999); !errors.Is(err, ErrNotCached) {
		t.Fatalf("want ErrNotCached, got %v", err)
	}
	p.Drop(9)
	if _, err := p.FlushPage(0, 9); !errors.Is(err, ErrNotCached) {
		t.Fatalf("dropped page still resident: %v", err)
	}
	p.Drop(12345) // dropping a non-resident page is a no-op
}

func TestPoolFlushSome(t *testing.T) {
	be := newMemBackend(128)
	p := New(be, 8, 128, nil)
	for i := 0; i < 6; i++ {
		h, _, err := p.NewPage(0, core.LPN(i+1), core.Hint{})
		if err != nil {
			t.Fatal(err)
		}
		h.MarkDirty()
		h.Release()
	}
	n, _, err := p.FlushSome(0, 3)
	if err != nil || n != 3 {
		t.Fatalf("FlushSome = %d, %v", n, err)
	}
	st := p.Stats()
	if st.Dirty != 3 {
		t.Fatalf("dirty after partial flush = %d", st.Dirty)
	}
	n, _, err = p.FlushSome(0, 100)
	if err != nil || n != 3 {
		t.Fatalf("second FlushSome = %d, %v", n, err)
	}
	if p.Stats().Dirty != 0 {
		t.Fatal("dirty pages remain")
	}
}

func TestPoolResetCounters(t *testing.T) {
	be := newMemBackend(128)
	p := New(be, 4, 128, nil)
	h, _, _ := p.NewPage(0, 1, core.Hint{})
	h.Release()
	if _, _, err := p.Fetch(0, 1, core.Hint{}); err != nil {
		t.Fatal(err)
	}
	p.ResetCounters()
	st := p.Stats()
	if st.Hits != 0 || st.Misses != 0 || st.NewPages != 0 {
		t.Fatalf("counters not reset: %+v", st)
	}
	if st.Resident == 0 {
		t.Fatal("reset dropped resident pages")
	}
}

func TestPoolConcurrentAccess(t *testing.T) {
	be := newMemBackend(128)
	p := New(be, 32, 128, nil)
	// Pre-create pages.
	for i := 0; i < 64; i++ {
		h, _, err := p.NewPage(0, core.LPN(i+1), core.Hint{})
		if err != nil {
			t.Fatal(err)
		}
		h.MarkDirty()
		h.Release()
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			r := sim.NewRand(uint64(seed))
			now := sim.Time(0)
			for i := 0; i < 500; i++ {
				lpn := core.LPN(r.Intn(64) + 1)
				h, done, err := p.Fetch(now, lpn, core.Hint{})
				if err != nil {
					errCh <- err
					return
				}
				now = done
				h.Lock()
				h.Data()[2]++
				h.Unlock()
				h.MarkDirty()
				h.Release()
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if _, err := p.FlushAll(0); err != nil {
		t.Fatal(err)
	}
}
