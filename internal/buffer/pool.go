// Package buffer implements the DBMS buffer pool used by the reproduction:
// a fixed set of page frames over the NoFTL space manager with CLOCK
// eviction, pin/unpin, per-frame latches, dirty-page write-back and
// background flushers.
//
// Physical page reads and writes consume virtual time on the flash device;
// the pool threads the caller's virtual-time cursor through every operation
// so that buffer misses and dirty evictions show up in transaction response
// times exactly as they would on real hardware.
package buffer

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"noftl/internal/core"
	"noftl/internal/sim"
)

// Backend is the page store underneath the pool.  *core.Manager satisfies
// it; tests may plug in simpler implementations.
type Backend interface {
	ReadPage(now sim.Time, lpn core.LPN, buf []byte) ([]byte, sim.Time, error)
	WritePage(now sim.Time, lpn core.LPN, data []byte, hint core.Hint) (sim.Time, error)
}

// Recorder receives physical I/O notifications per database object; the DB
// layer uses it to maintain the per-object statistics consumed by the Region
// Advisor.  A nil Recorder disables recording.
type Recorder interface {
	RecordPhysRead(objectID uint32, pages int64)
	RecordPhysWrite(objectID uint32, pages int64)
}

// Errors returned by the pool.
var (
	// ErrPoolFull reports that every frame is pinned and nothing can be
	// evicted.
	ErrPoolFull = errors.New("buffer: all frames pinned")
	// ErrNotCached reports a FlushPage of a page that is not resident.
	ErrNotCached = errors.New("buffer: page not resident")
)

// Frame is one page-sized slot of the pool.
type Frame struct {
	mu    sync.RWMutex // content latch
	lpn   core.LPN
	data  []byte
	hint  core.Hint
	dirty atomic.Bool // set by MarkDirty without the pool mutex
	valid bool
	pins  int
	ref   bool
}

// Handle is a pinned reference to a frame.  Callers must Release it exactly
// once, and must bracket data access with Lock/Unlock (writers) or
// RLock/RUnlock (readers).
type Handle struct {
	pool  *Pool
	frame *Frame
	idx   int
}

// Data returns the frame's page buffer.  The caller must hold the frame
// latch while reading or writing it.
func (h *Handle) Data() []byte { return h.frame.data }

// LPN returns the logical page number of the pinned page.
func (h *Handle) LPN() core.LPN { return h.frame.lpn }

// Lock acquires the frame's write latch.
func (h *Handle) Lock() { h.frame.mu.Lock() }

// Unlock releases the frame's write latch.
func (h *Handle) Unlock() { h.frame.mu.Unlock() }

// RLock acquires the frame's read latch.
func (h *Handle) RLock() { h.frame.mu.RLock() }

// RUnlock releases the frame's read latch.
func (h *Handle) RUnlock() { h.frame.mu.RUnlock() }

// MarkDirty flags the page as modified so it will be written back before
// eviction.  Call it while holding the write latch.
func (h *Handle) MarkDirty() {
	h.frame.dirty.Store(true)
}

// Release unpins the page.
func (h *Handle) Release() {
	h.pool.mu.Lock()
	if h.frame.pins > 0 {
		h.frame.pins--
	}
	h.pool.mu.Unlock()
}

// Stats is a snapshot of pool counters.
type Stats struct {
	Frames     int
	Resident   int
	Dirty      int
	Hits       int64
	Misses     int64
	NewPages   int64
	Evictions  int64
	Writebacks int64
}

// HitRatio returns hits / (hits + misses), or zero when idle.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Pool is the buffer pool.
type Pool struct {
	mu       sync.Mutex
	backend  Backend
	recorder Recorder
	frames   []*Frame
	table    map[core.LPN]int
	hand     int
	pageSize int

	hits       int64
	misses     int64
	newPages   int64
	evictions  int64
	writebacks int64
}

// New creates a pool of frameCount frames of pageSize bytes over the
// backend.
func New(backend Backend, frameCount, pageSize int, recorder Recorder) *Pool {
	if frameCount < 2 {
		frameCount = 2
	}
	p := &Pool{
		backend:  backend,
		recorder: recorder,
		frames:   make([]*Frame, frameCount),
		table:    make(map[core.LPN]int, frameCount),
		pageSize: pageSize,
	}
	for i := range p.frames {
		p.frames[i] = &Frame{data: make([]byte, pageSize)}
	}
	return p
}

// PageSize returns the frame size in bytes.
func (p *Pool) PageSize() int { return p.pageSize }

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Stats{
		Frames:     len(p.frames),
		Hits:       p.hits,
		Misses:     p.misses,
		NewPages:   p.newPages,
		Evictions:  p.evictions,
		Writebacks: p.writebacks,
	}
	for _, f := range p.frames {
		if f.valid {
			st.Resident++
			if f.dirty.Load() {
				st.Dirty++
			}
		}
	}
	return st
}

// ResetCounters zeroes the hit/miss/eviction counters (after warm-up).
func (p *Pool) ResetCounters() {
	p.mu.Lock()
	p.hits, p.misses, p.newPages, p.evictions, p.writebacks = 0, 0, 0, 0, 0
	p.mu.Unlock()
}

// Fetch pins the page, reading it from the backend on a miss.  The returned
// time includes any eviction write-back and the read itself.
func (p *Pool) Fetch(now sim.Time, lpn core.LPN, hint core.Hint) (*Handle, sim.Time, error) {
	p.mu.Lock()
	if idx, ok := p.table[lpn]; ok {
		f := p.frames[idx]
		f.pins++
		f.ref = true
		p.hits++
		p.mu.Unlock()
		return &Handle{pool: p, frame: f, idx: idx}, now, nil
	}
	p.misses++
	idx, now, err := p.allocFrameLocked(now)
	if err != nil {
		p.mu.Unlock()
		return nil, now, err
	}
	f := p.frames[idx]
	f.lpn = lpn
	f.hint = hint
	f.valid = true
	f.dirty.Store(false)
	f.pins = 1
	f.ref = true
	// Hold the frame's content latch across the read so that a concurrent
	// Fetch of the same page (which hits in the table the moment we publish
	// it) blocks on the latch until the data has actually arrived.
	f.mu.Lock()
	p.table[lpn] = idx
	p.mu.Unlock()

	_, done, err := p.backend.ReadPage(now, lpn, f.data)
	f.mu.Unlock()
	if err != nil {
		p.mu.Lock()
		delete(p.table, lpn)
		f.valid = false
		f.pins = 0
		p.mu.Unlock()
		return nil, done, fmt.Errorf("buffer: fetch lpn %d: %w", lpn, err)
	}
	if p.recorder != nil {
		p.recorder.RecordPhysRead(hint.ObjectID, 1)
	}
	return &Handle{pool: p, frame: f, idx: idx}, done, nil
}

// NewPage pins a frame for a brand-new page without reading the backend.
// The frame starts zeroed and dirty.
func (p *Pool) NewPage(now sim.Time, lpn core.LPN, hint core.Hint) (*Handle, sim.Time, error) {
	p.mu.Lock()
	if idx, ok := p.table[lpn]; ok {
		// The page is already resident (e.g. re-created after a trim); reuse
		// the frame and reset its contents.
		f := p.frames[idx]
		f.pins++
		f.ref = true
		f.dirty.Store(true)
		for i := range f.data {
			f.data[i] = 0
		}
		p.newPages++
		p.mu.Unlock()
		return &Handle{pool: p, frame: f, idx: idx}, now, nil
	}
	p.newPages++
	idx, now, err := p.allocFrameLocked(now)
	if err != nil {
		p.mu.Unlock()
		return nil, now, err
	}
	f := p.frames[idx]
	f.lpn = lpn
	f.hint = hint
	f.valid = true
	f.dirty.Store(true)
	f.pins = 1
	f.ref = true
	for i := range f.data {
		f.data[i] = 0
	}
	p.table[lpn] = idx
	p.mu.Unlock()
	return &Handle{pool: p, frame: f, idx: idx}, now, nil
}

// allocFrameLocked finds a victim frame using the CLOCK policy, writing it
// back if dirty.  Caller holds p.mu; the mutex stays held throughout (the
// backend write is bookkeeping plus virtual-time math, not real I/O).
func (p *Pool) allocFrameLocked(now sim.Time) (int, sim.Time, error) {
	// First pass preference: an invalid (never used) frame.
	for i, f := range p.frames {
		if !f.valid && f.pins == 0 {
			return i, now, nil
		}
	}
	// CLOCK sweep, at most two full rounds.
	for sweep := 0; sweep < 2*len(p.frames); sweep++ {
		idx := p.hand
		p.hand = (p.hand + 1) % len(p.frames)
		f := p.frames[idx]
		if f.pins > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		// Victim found.
		if f.dirty.Load() {
			done, err := p.backend.WritePage(now, f.lpn, f.data, f.hint)
			if err != nil {
				return 0, now, fmt.Errorf("buffer: writeback lpn %d: %w", f.lpn, err)
			}
			now = done
			p.writebacks++
			if p.recorder != nil {
				p.recorder.RecordPhysWrite(f.hint.ObjectID, 1)
			}
		}
		delete(p.table, f.lpn)
		f.valid = false
		f.dirty.Store(false)
		p.evictions++
		return idx, now, nil
	}
	return 0, now, ErrPoolFull
}

// FlushPage writes the page back to the backend if it is resident and dirty.
func (p *Pool) FlushPage(now sim.Time, lpn core.LPN) (sim.Time, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	idx, ok := p.table[lpn]
	if !ok {
		return now, fmt.Errorf("%w: lpn %d", ErrNotCached, lpn)
	}
	return p.flushFrameLocked(now, idx)
}

func (p *Pool) flushFrameLocked(now sim.Time, idx int) (sim.Time, error) {
	f := p.frames[idx]
	if !f.valid || !f.dirty.Load() {
		return now, nil
	}
	done, err := p.backend.WritePage(now, f.lpn, f.data, f.hint)
	if err != nil {
		return now, err
	}
	f.dirty.Store(false)
	p.writebacks++
	if p.recorder != nil {
		p.recorder.RecordPhysWrite(f.hint.ObjectID, 1)
	}
	return done, nil
}

// FlushAll writes every dirty, unpinned resident page back to the backend
// (checkpoint).  Pinned pages are skipped — they are being modified by a
// concurrent transaction and will be written back on eviction or at the next
// checkpoint.
func (p *Pool) FlushAll(now sim.Time) (sim.Time, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for idx, f := range p.frames {
		if !f.valid || !f.dirty.Load() || f.pins > 0 {
			continue
		}
		done, err := p.flushFrameLocked(now, idx)
		if err != nil {
			return now, err
		}
		now = done
	}
	return now, nil
}

// FlushSome writes back up to n dirty unpinned pages, oldest-hand first.  It
// is the work unit of the background flusher; returning the count lets the
// flusher adapt its pace.
func (p *Pool) FlushSome(now sim.Time, n int) (int, sim.Time, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	flushed := 0
	for idx, f := range p.frames {
		if flushed >= n {
			break
		}
		if !f.valid || !f.dirty.Load() || f.pins > 0 {
			continue
		}
		done, err := p.flushFrameLocked(now, idx)
		if err != nil {
			return flushed, now, err
		}
		now = done
		flushed++
	}
	return flushed, now, nil
}

// Drop removes a page from the pool without writing it back (used when an
// object is dropped and its pages trimmed).
func (p *Pool) Drop(lpn core.LPN) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if idx, ok := p.table[lpn]; ok {
		f := p.frames[idx]
		if f.pins == 0 {
			delete(p.table, lpn)
			f.valid = false
			f.dirty.Store(false)
		}
	}
}
