// Package buffer implements the DBMS buffer pool used by the reproduction:
// a fixed set of page frames over the NoFTL space manager with CLOCK
// eviction, pin/unpin, per-frame latches, dirty-page write-back and
// background flushers.
//
// Physical page reads and writes consume virtual time on the flash device;
// the pool threads the caller's virtual-time cursor through every operation
// so that buffer misses and dirty evictions show up in transaction response
// times exactly as they would on real hardware.
package buffer

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"noftl/internal/core"
	"noftl/internal/obs"
	"noftl/internal/sim"
)

// Backend is the page store underneath the pool.  *core.Manager satisfies
// it; tests may plug in simpler implementations.
type Backend interface {
	ReadPage(now sim.Time, lpn core.LPN, buf []byte) ([]byte, sim.Time, error)
	WritePage(now sim.Time, lpn core.LPN, data []byte, hint core.Hint) (sim.Time, error)
}

// BatchBackend is the optional batched interface of a backend.  When the
// backend provides it (as *core.Manager does, through the asynchronous I/O
// scheduler), the pool uses it for sequential read-ahead and for group
// write-back, so multi-page I/O stripes over the device's dies and overlaps
// in virtual time instead of serializing page by page.
type BatchBackend interface {
	Backend
	ReadPages(now sim.Time, lpns []core.LPN, bufs [][]byte) ([]core.PageRead, sim.Time)
	WritePages(now sim.Time, writes []core.PageWrite) (sim.Time, error)
	Mapped(lpn core.LPN) bool
}

// Recorder receives physical I/O notifications per database object; the DB
// layer uses it to maintain the per-object statistics consumed by the Region
// Advisor.  A nil Recorder disables recording.
type Recorder interface {
	RecordPhysRead(objectID uint32, pages int64)
	RecordPhysWrite(objectID uint32, pages int64)
}

// Errors returned by the pool.
var (
	// ErrPoolFull reports that every frame is pinned and nothing can be
	// evicted.
	ErrPoolFull = errors.New("buffer: all frames pinned")
	// ErrNotCached reports a FlushPage of a page that is not resident.
	ErrNotCached = errors.New("buffer: page not resident")
)

// Frame is one page-sized slot of the pool.
type Frame struct {
	mu         sync.RWMutex // content latch
	lpn        core.LPN
	data       []byte
	hint       core.Hint
	dirty      atomic.Bool // set by MarkDirty without the pool mutex
	valid      bool
	pins       int
	ref        bool
	prefetched bool // staged by read-ahead, not yet demanded
}

// Handle is a pinned reference to a frame.  Callers must Release it exactly
// once, and must bracket data access with Lock/Unlock (writers) or
// RLock/RUnlock (readers).
type Handle struct {
	pool  *Pool
	frame *Frame
	idx   int
}

// Data returns the frame's page buffer.  The caller must hold the frame
// latch while reading or writing it.
func (h *Handle) Data() []byte { return h.frame.data }

// LPN returns the logical page number of the pinned page.
func (h *Handle) LPN() core.LPN { return h.frame.lpn }

// Lock acquires the frame's write latch.
func (h *Handle) Lock() { h.frame.mu.Lock() }

// Unlock releases the frame's write latch.
func (h *Handle) Unlock() { h.frame.mu.Unlock() }

// RLock acquires the frame's read latch.
func (h *Handle) RLock() { h.frame.mu.RLock() }

// RUnlock releases the frame's read latch.
func (h *Handle) RUnlock() { h.frame.mu.RUnlock() }

// MarkDirty flags the page as modified so it will be written back before
// eviction.  Call it while holding the write latch.
func (h *Handle) MarkDirty() {
	h.frame.dirty.Store(true)
}

// Release unpins the page.
func (h *Handle) Release() {
	h.pool.mu.Lock()
	if h.frame.pins > 0 {
		h.frame.pins--
	}
	h.pool.mu.Unlock()
}

// Stats is a snapshot of pool counters.
type Stats struct {
	Frames     int
	Resident   int
	Dirty      int
	Hits       int64
	Misses     int64
	NewPages   int64
	Evictions  int64
	Writebacks int64
	// Prefetches counts pages staged by sequential read-ahead;
	// PrefetchHits counts later demand hits on those pages.
	Prefetches   int64
	PrefetchHits int64
	// GroupFlushes counts batched write-back dispatches (each covering one
	// or more dirty pages).
	GroupFlushes int64
}

// HitRatio returns hits / (hits + misses), or zero when idle.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Options tune the pool's batched-I/O behaviour.  The zero value disables
// both features (single-page I/O only).
type Options struct {
	// ReadAhead is the number of sequentially-next pages staged through the
	// batch backend on a demand miss.  Zero disables read-ahead.
	ReadAhead int
	// GroupWriteBack makes FlushAll/FlushSome write dirty pages as one
	// die-striped batch instead of one page at a time.
	GroupWriteBack bool
}

// Pool is the buffer pool.
type Pool struct {
	mu       sync.Mutex
	backend  Backend
	batch    BatchBackend // nil when the backend has no batch interface
	recorder Recorder
	tracer   *obs.Tracer // nil = tracing off (the only cost is nil compares)
	frames   []*Frame
	table    map[core.LPN]int
	hand     int
	pageSize int
	opts     Options

	hits         int64
	misses       int64
	newPages     int64
	evictions    int64
	writebacks   int64
	prefetches   int64
	prefetchHits int64
	groupFlushes int64
}

// New creates a pool of frameCount frames of pageSize bytes over the
// backend.
func New(backend Backend, frameCount, pageSize int, recorder Recorder) *Pool {
	if frameCount < 2 {
		frameCount = 2
	}
	p := &Pool{
		backend:  backend,
		recorder: recorder,
		frames:   make([]*Frame, frameCount),
		table:    make(map[core.LPN]int, frameCount),
		pageSize: pageSize,
	}
	if bb, ok := backend.(BatchBackend); ok {
		p.batch = bb
	}
	for i := range p.frames {
		p.frames[i] = &Frame{data: make([]byte, pageSize)}
	}
	return p
}

// AttachObs wires the pool to the trace recorder.  A nil tracer (the
// default) keeps tracing off; hook sites then cost one nil compare.  Attach
// before the pool sees traffic.
func (p *Pool) AttachObs(tr *obs.Tracer) {
	p.mu.Lock()
	p.tracer = tr
	p.mu.Unlock()
}

// Configure sets the pool's batched-I/O options.  Options that need the
// batch backend are silently inert when the backend does not provide it.
func (p *Pool) Configure(opts Options) {
	p.mu.Lock()
	if opts.ReadAhead < 0 {
		opts.ReadAhead = 0
	}
	p.opts = opts
	p.mu.Unlock()
}

// PageSize returns the frame size in bytes.
func (p *Pool) PageSize() int { return p.pageSize }

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Stats{
		Frames:       len(p.frames),
		Hits:         p.hits,
		Misses:       p.misses,
		NewPages:     p.newPages,
		Evictions:    p.evictions,
		Writebacks:   p.writebacks,
		Prefetches:   p.prefetches,
		PrefetchHits: p.prefetchHits,
		GroupFlushes: p.groupFlushes,
	}
	for _, f := range p.frames {
		if f.valid {
			st.Resident++
			if f.dirty.Load() {
				st.Dirty++
			}
		}
	}
	return st
}

// ResetCounters zeroes the hit/miss/eviction counters (after warm-up).
func (p *Pool) ResetCounters() {
	p.mu.Lock()
	p.hits, p.misses, p.newPages, p.evictions, p.writebacks = 0, 0, 0, 0, 0
	p.prefetches, p.prefetchHits, p.groupFlushes = 0, 0, 0
	p.mu.Unlock()
}

// Fetch pins the page, reading it from the backend on a miss.  The returned
// time includes any eviction write-back and the read itself.
//
// When read-ahead is configured and the backend supports batching, a miss
// also stages the next sequential pages of the LPN space: they are read in
// the same scheduler batch as the demanded page (striping over dies costs
// almost no extra virtual time) and parked unpinned in the pool, so an
// upcoming sequential access hits in memory instead of missing.
func (p *Pool) Fetch(now sim.Time, lpn core.LPN, hint core.Hint) (*Handle, sim.Time, error) {
	p.mu.Lock()
	if idx, ok := p.table[lpn]; ok {
		f := p.frames[idx]
		f.pins++
		f.ref = true
		// The demander knows the page's true placement hint; refresh it so a
		// frame staged by read-ahead across an object boundary is written
		// back (and charged) under the right object, not the prefetcher's.
		f.hint = hint
		p.hits++
		if f.prefetched {
			f.prefetched = false
			p.prefetchHits++
		}
		p.mu.Unlock()
		return &Handle{pool: p, frame: f, idx: idx}, now, nil
	}
	p.misses++
	if p.tracer.Enabled(obs.ClassBufMiss) {
		p.tracer.Record(obs.Event{
			Class: obs.ClassBufMiss, Die: -1, Block: -1, Page: -1,
			Region: int32(hint.Region), Start: now, End: now, A: int64(lpn),
		})
	}
	idx, now, err := p.allocFrameLocked(now)
	if err != nil {
		p.mu.Unlock()
		return nil, now, err
	}
	f := p.frames[idx]
	f.lpn = lpn
	f.hint = hint
	f.valid = true
	f.dirty.Store(false)
	f.prefetched = false
	f.pins = 1
	f.ref = true
	// Hold the frame's content latch across the read so that a concurrent
	// Fetch of the same page (which hits in the table the moment we publish
	// it) blocks on the latch until the data has actually arrived.
	f.mu.Lock()
	p.table[lpn] = idx

	// Stage sequential read-ahead frames while still holding p.mu.
	var pfFrames []*Frame
	if p.opts.ReadAhead > 0 && p.batch != nil {
		pfFrames, now = p.stagePrefetchLocked(now, lpn, hint)
	}
	p.mu.Unlock()

	if len(pfFrames) == 0 {
		_, done, err := p.backend.ReadPage(now, lpn, f.data)
		f.mu.Unlock()
		if err != nil {
			p.mu.Lock()
			delete(p.table, lpn)
			f.valid = false
			f.pins = 0
			p.mu.Unlock()
			return nil, done, fmt.Errorf("buffer: fetch lpn %d: %w", lpn, err)
		}
		if p.recorder != nil {
			p.recorder.RecordPhysRead(hint.ObjectID, 1)
		}
		return &Handle{pool: p, frame: f, idx: idx}, done, nil
	}

	// Batched path: demand page first, prefetch pages after it.
	lpns := make([]core.LPN, 0, 1+len(pfFrames))
	bufs := make([][]byte, 0, 1+len(pfFrames))
	lpns = append(lpns, lpn)
	bufs = append(bufs, f.data)
	for _, pf := range pfFrames {
		lpns = append(lpns, pf.lpn)
		bufs = append(bufs, pf.data)
	}
	reads, _ := p.batch.ReadPages(now, lpns, bufs)

	goodPages := int64(0)
	p.mu.Lock()
	for i, pf := range pfFrames {
		pf.mu.Unlock()
		// Drop the staging pin only: a concurrent Fetch may have hit the
		// published frame and pinned it while the batch was in flight.
		if pf.pins > 0 {
			pf.pins--
		}
		if reads[i+1].Err != nil {
			// The page vanished between staging and the read (e.g. a
			// concurrent trim): unpublish the frame unless someone else
			// still holds it pinned.
			if pf.pins == 0 {
				delete(p.table, pf.lpn)
				pf.valid = false
				pf.prefetched = false
			}
			continue
		}
		goodPages++
	}
	p.mu.Unlock()
	demand := reads[0]
	f.mu.Unlock()
	if demand.Err != nil {
		p.mu.Lock()
		delete(p.table, lpn)
		f.valid = false
		f.pins = 0
		p.mu.Unlock()
		return nil, demand.Done, fmt.Errorf("buffer: fetch lpn %d: %w", lpn, demand.Err)
	}
	if p.recorder != nil {
		// Read-ahead pages are charged to the demanding object: sequential
		// LPNs belong to the same extent in practice.
		p.recorder.RecordPhysRead(hint.ObjectID, 1+goodPages)
	}
	// The caller pays for its own page only; the prefetched pages overlap
	// on other dies and their (near-identical) completion is not the
	// caller's concern.
	return &Handle{pool: p, frame: f, idx: idx}, demand.Done, nil
}

// FetchMany pins a set of pages, reading every non-resident page from the
// backend in one die-striped scheduler batch.  The returned handles align
// with lpns (duplicates receive independent pins on the same frame); the
// returned time is the batch makespan plus any eviction write-back the frame
// allocations caused.  On error no handles are retained.
//
// Without a batch backend the pages are fetched one at a time.
func (p *Pool) FetchMany(now sim.Time, lpns []core.LPN, hint core.Hint) ([]*Handle, sim.Time, error) {
	handles := make([]*Handle, len(lpns))
	releaseAll := func() {
		for _, h := range handles {
			if h != nil {
				h.Release()
			}
		}
	}
	if p.batch == nil {
		for i, lpn := range lpns {
			h, done, err := p.Fetch(now, lpn, hint)
			if err != nil {
				releaseAll()
				return nil, done, err
			}
			handles[i] = h
			now = done
		}
		return handles, now, nil
	}

	// Pin residents and allocate+publish frames for misses under one lock
	// acquisition, then read all misses as a single batch.
	type missFrame struct {
		idx   int
		frame *Frame
	}
	var misses []missFrame
	p.mu.Lock()
	for i, lpn := range lpns {
		if idx, ok := p.table[lpn]; ok {
			f := p.frames[idx]
			f.pins++
			f.ref = true
			f.hint = hint
			p.hits++
			if f.prefetched {
				f.prefetched = false
				p.prefetchHits++
			}
			handles[i] = &Handle{pool: p, frame: f, idx: idx}
			continue
		}
		p.misses++
		if p.tracer.Enabled(obs.ClassBufMiss) {
			p.tracer.Record(obs.Event{
				Class: obs.ClassBufMiss, Die: -1, Block: -1, Page: -1,
				Region: int32(hint.Region), Start: now, End: now, A: int64(lpn),
			})
		}
		idx, t, err := p.allocFrameLocked(now)
		if err != nil {
			// Unwind the misses staged so far: their frames are published
			// with the content latch held but no data yet.  Unlatch and
			// unpublish them before dropping every pin, or a later Fetch of
			// those LPNs would block forever on the latch.
			for _, m := range misses {
				m.frame.mu.Unlock()
				delete(p.table, m.frame.lpn)
				m.frame.valid = false
				m.frame.pins = 0
				handles[m.idx] = nil
			}
			p.mu.Unlock()
			releaseAll()
			return nil, t, err
		}
		now = t
		f := p.frames[idx]
		f.lpn = lpn
		f.hint = hint
		f.valid = true
		f.dirty.Store(false)
		f.prefetched = false
		f.pins = 1
		f.ref = true
		// Hold the content latch until the batch read lands, so a concurrent
		// Fetch that hits the published frame blocks until the data is there.
		f.mu.Lock()
		p.table[lpn] = idx
		handles[i] = &Handle{pool: p, frame: f, idx: idx}
		misses = append(misses, missFrame{idx: i, frame: f})
	}
	p.mu.Unlock()

	if len(misses) == 0 {
		return handles, now, nil
	}
	missLPNs := make([]core.LPN, len(misses))
	bufs := make([][]byte, len(misses))
	for j, m := range misses {
		missLPNs[j] = m.frame.lpn
		bufs[j] = m.frame.data
	}
	reads, end := p.batch.ReadPages(now, missLPNs, bufs)
	var firstErr error
	for j, m := range misses {
		m.frame.mu.Unlock()
		if reads[j].Err != nil && firstErr == nil {
			firstErr = fmt.Errorf("buffer: fetch lpn %d: %w", missLPNs[j], reads[j].Err)
		}
	}
	if firstErr != nil {
		releaseAll()
		p.mu.Lock()
		for _, m := range misses {
			f := m.frame
			if f.pins == 0 {
				delete(p.table, f.lpn)
				f.valid = false
			}
		}
		p.mu.Unlock()
		return nil, end, firstErr
	}
	if p.recorder != nil {
		p.recorder.RecordPhysRead(hint.ObjectID, int64(len(misses)))
	}
	return handles, end, nil
}

// WriteThrough writes page images to the backend as one die-striped batch
// without staging them in the pool (bulk-load path: the pages are complete
// and cold, so buffering them would only push hotter pages out).  Resident
// copies of the written pages, if any, are dropped.  Without a batch backend
// the pages are written one at a time.
func (p *Pool) WriteThrough(now sim.Time, writes []core.PageWrite) (sim.Time, error) {
	if len(writes) == 0 {
		return now, nil
	}
	var done sim.Time
	var err error
	if p.batch != nil {
		done, err = p.batch.WritePages(now, writes)
	} else {
		done = now
		for _, w := range writes {
			done, err = p.backend.WritePage(done, w.LPN, w.Data, w.Hint)
			if err != nil {
				break
			}
		}
	}
	if err != nil {
		return now, err
	}
	p.mu.Lock()
	for _, w := range writes {
		if idx, ok := p.table[w.LPN]; ok {
			f := p.frames[idx]
			if f.pins == 0 {
				delete(p.table, w.LPN)
				f.valid = false
				f.dirty.Store(false)
				f.prefetched = false
			}
		}
		p.writebacks++
		if p.recorder != nil {
			p.recorder.RecordPhysWrite(w.Hint.ObjectID, 1)
		}
	}
	if p.batch != nil {
		p.groupFlushes++
	}
	if p.tracer.Enabled(obs.ClassBufWriteBack) {
		p.tracer.Record(obs.Event{
			Class: obs.ClassBufWriteBack, Op: obs.BufWriteBackGroup,
			Die: -1, Block: -1, Page: -1, Region: -1,
			Start: now, End: done, A: int64(len(writes)),
		})
	}
	p.mu.Unlock()
	return done, nil
}

// stagePrefetchLocked allocates and publishes frames for the mapped,
// non-resident pages sequentially following lpn, returning them with their
// content latches held.  Caller holds p.mu; the returned time includes any
// eviction write-back the allocations caused.
func (p *Pool) stagePrefetchLocked(now sim.Time, lpn core.LPN, hint core.Hint) ([]*Frame, sim.Time) {
	var staged []*Frame
	for i := 1; i <= p.opts.ReadAhead; i++ {
		next := lpn + core.LPN(i)
		if _, resident := p.table[next]; resident {
			continue
		}
		if !p.batch.Mapped(next) {
			continue
		}
		idx, t, err := p.allocFrameLocked(now)
		if err != nil {
			break // every frame pinned: the pool is too hot to prefetch into
		}
		now = t
		pf := p.frames[idx]
		pf.lpn = next
		pf.hint = hint
		pf.valid = true
		pf.dirty.Store(false)
		pf.prefetched = true
		// Hold a pin while the read is in flight so a CLOCK sweep (even one
		// triggered by the next staging allocation) cannot evict the frame;
		// the pin is dropped once the batch completes.
		pf.pins = 1
		pf.ref = false // evict-first until a demand access promotes it
		pf.mu.Lock()
		p.table[next] = idx
		staged = append(staged, pf)
		p.prefetches++
	}
	return staged, now
}

// NewPage pins a frame for a brand-new page without reading the backend.
// The frame starts zeroed and dirty.
func (p *Pool) NewPage(now sim.Time, lpn core.LPN, hint core.Hint) (*Handle, sim.Time, error) {
	p.mu.Lock()
	if idx, ok := p.table[lpn]; ok {
		// The page is already resident (e.g. re-created after a trim); reuse
		// the frame and reset its contents.
		f := p.frames[idx]
		f.pins++
		f.ref = true
		f.prefetched = false
		f.dirty.Store(true)
		for i := range f.data {
			f.data[i] = 0
		}
		p.newPages++
		p.mu.Unlock()
		return &Handle{pool: p, frame: f, idx: idx}, now, nil
	}
	p.newPages++
	idx, now, err := p.allocFrameLocked(now)
	if err != nil {
		p.mu.Unlock()
		return nil, now, err
	}
	f := p.frames[idx]
	f.lpn = lpn
	f.hint = hint
	f.valid = true
	f.dirty.Store(true)
	f.prefetched = false
	f.pins = 1
	f.ref = true
	for i := range f.data {
		f.data[i] = 0
	}
	p.table[lpn] = idx
	p.mu.Unlock()
	return &Handle{pool: p, frame: f, idx: idx}, now, nil
}

// allocFrameLocked finds a victim frame using the CLOCK policy, writing it
// back if dirty.  Caller holds p.mu; the mutex stays held throughout (the
// backend write is bookkeeping plus virtual-time math, not real I/O).
func (p *Pool) allocFrameLocked(now sim.Time) (int, sim.Time, error) {
	// First pass preference: an invalid (never used) frame.
	for i, f := range p.frames {
		if !f.valid && f.pins == 0 {
			return i, now, nil
		}
	}
	// CLOCK sweep, at most two full rounds.
	for sweep := 0; sweep < 2*len(p.frames); sweep++ {
		idx := p.hand
		p.hand = (p.hand + 1) % len(p.frames)
		f := p.frames[idx]
		if f.pins > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		// Victim found.
		dirty := f.dirty.Load()
		if dirty {
			start := now
			done, err := p.backend.WritePage(now, f.lpn, f.data, f.hint)
			if err != nil {
				return 0, now, fmt.Errorf("buffer: writeback lpn %d: %w", f.lpn, err)
			}
			now = done
			p.writebacks++
			if p.recorder != nil {
				p.recorder.RecordPhysWrite(f.hint.ObjectID, 1)
			}
			if p.tracer.Enabled(obs.ClassBufWriteBack) {
				p.tracer.Record(obs.Event{
					Class: obs.ClassBufWriteBack, Op: obs.BufWriteBackSingle,
					Die: -1, Block: -1, Page: -1, Region: int32(f.hint.Region),
					Start: start, End: done, A: int64(f.lpn),
				})
			}
		}
		if p.tracer.Enabled(obs.ClassBufEvict) {
			var b int64
			if dirty {
				b = 1
			}
			p.tracer.Record(obs.Event{
				Class: obs.ClassBufEvict, Die: -1, Block: -1, Page: -1,
				Region: int32(f.hint.Region), Start: now, End: now,
				A: int64(f.lpn), B: b,
			})
		}
		delete(p.table, f.lpn)
		f.valid = false
		f.dirty.Store(false)
		f.prefetched = false
		p.evictions++
		return idx, now, nil
	}
	return 0, now, ErrPoolFull
}

// FlushPage writes the page back to the backend if it is resident and dirty.
func (p *Pool) FlushPage(now sim.Time, lpn core.LPN) (sim.Time, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	idx, ok := p.table[lpn]
	if !ok {
		return now, fmt.Errorf("%w: lpn %d", ErrNotCached, lpn)
	}
	return p.flushFrameLocked(now, idx)
}

func (p *Pool) flushFrameLocked(now sim.Time, idx int) (sim.Time, error) {
	f := p.frames[idx]
	if !f.valid || !f.dirty.Load() {
		return now, nil
	}
	done, err := p.backend.WritePage(now, f.lpn, f.data, f.hint)
	if err != nil {
		return now, err
	}
	f.dirty.Store(false)
	p.writebacks++
	if p.recorder != nil {
		p.recorder.RecordPhysWrite(f.hint.ObjectID, 1)
	}
	if p.tracer.Enabled(obs.ClassBufWriteBack) {
		p.tracer.Record(obs.Event{
			Class: obs.ClassBufWriteBack, Op: obs.BufWriteBackSingle,
			Die: -1, Block: -1, Page: -1, Region: int32(f.hint.Region),
			Start: now, End: done, A: int64(f.lpn),
		})
	}
	return done, nil
}

// FlushAll writes every dirty, unpinned resident page back to the backend
// (checkpoint).  Pinned pages are skipped — they are being modified by a
// concurrent transaction and will be written back on eviction or at the next
// checkpoint.  With group write-back enabled the dirty pages go out as one
// die-striped scheduler batch, so the checkpoint costs roughly one write per
// die instead of one write per page in virtual time.
func (p *Pool) FlushAll(now sim.Time) (sim.Time, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.opts.GroupWriteBack && p.batch != nil {
		_, done, err := p.flushGroupLocked(now, len(p.frames))
		return done, err
	}
	for idx, f := range p.frames {
		if !f.valid || !f.dirty.Load() || f.pins > 0 {
			continue
		}
		done, err := p.flushFrameLocked(now, idx)
		if err != nil {
			return now, err
		}
		now = done
	}
	return now, nil
}

// FlushSome writes back up to n dirty unpinned pages, oldest-hand first.  It
// is the work unit of the background flusher; returning the count lets the
// flusher adapt its pace.
func (p *Pool) FlushSome(now sim.Time, n int) (int, sim.Time, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.opts.GroupWriteBack && p.batch != nil {
		return p.flushGroupLocked(now, n)
	}
	flushed := 0
	for idx, f := range p.frames {
		if flushed >= n {
			break
		}
		if !f.valid || !f.dirty.Load() || f.pins > 0 {
			continue
		}
		done, err := p.flushFrameLocked(now, idx)
		if err != nil {
			return flushed, now, err
		}
		now = done
		flushed++
	}
	return flushed, now, nil
}

// flushGroupLocked writes up to max dirty unpinned pages back as a single
// batch through the batch backend.  The backend allocates the batch's slots
// round-robin over the target regions' dies, so the programs stripe and
// overlap in virtual time.  Caller holds p.mu.
func (p *Pool) flushGroupLocked(now sim.Time, max int) (int, sim.Time, error) {
	idxs := make([]int, 0, max)
	writes := make([]core.PageWrite, 0, max)
	for idx, f := range p.frames {
		if len(idxs) >= max {
			break
		}
		if !f.valid || !f.dirty.Load() || f.pins > 0 {
			continue
		}
		idxs = append(idxs, idx)
		writes = append(writes, core.PageWrite{LPN: f.lpn, Data: f.data, Hint: f.hint})
	}
	if len(writes) == 0 {
		return 0, now, nil
	}
	done, err := p.batch.WritePages(now, writes)
	if err != nil {
		// Leave every page dirty: pages the batch did manage to program are
		// remapped in the backend and will simply be written again (wasted
		// work, never lost data).
		return 0, now, err
	}
	for _, idx := range idxs {
		f := p.frames[idx]
		f.dirty.Store(false)
		p.writebacks++
		if p.recorder != nil {
			p.recorder.RecordPhysWrite(f.hint.ObjectID, 1)
		}
	}
	p.groupFlushes++
	if p.tracer.Enabled(obs.ClassBufWriteBack) {
		p.tracer.Record(obs.Event{
			Class: obs.ClassBufWriteBack, Op: obs.BufWriteBackGroup,
			Die: -1, Block: -1, Page: -1, Region: -1,
			Start: now, End: done, A: int64(len(idxs)),
		})
	}
	return len(idxs), done, nil
}

// Drop removes a page from the pool without writing it back (used when an
// object is dropped and its pages trimmed).
func (p *Pool) Drop(lpn core.LPN) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if idx, ok := p.table[lpn]; ok {
		f := p.frames[idx]
		if f.pins == 0 {
			delete(p.table, lpn)
			f.valid = false
			f.dirty.Store(false)
			f.prefetched = false
		}
	}
}
