// Package buffer implements the DBMS buffer pool used by the reproduction:
// a fixed set of page frames over the NoFTL space manager with CLOCK
// eviction, pin/unpin, per-frame latches, dirty-page write-back and
// background flushers.
//
// The frame table is sharded by LPN hash: each shard owns a disjoint set of
// frames, its own hash table and its own CLOCK hand, so concurrent fetchers
// that touch different pages almost never contend on a mutex.  Frame
// contents are protected by per-frame latches exactly as before; the shard
// mutex only covers the mapping table, pin counts and eviction state.
//
// Physical page reads and writes consume virtual time on the flash device;
// the pool threads the caller's virtual-time cursor through every operation
// so that buffer misses and dirty evictions show up in transaction response
// times exactly as they would on real hardware.
package buffer

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"noftl/internal/core"
	"noftl/internal/obs"
	"noftl/internal/sim"
)

// Backend is the page store underneath the pool.  *core.Manager satisfies
// it; tests may plug in simpler implementations.
type Backend interface {
	ReadPage(now sim.Time, lpn core.LPN, buf []byte) ([]byte, sim.Time, error)
	WritePage(now sim.Time, lpn core.LPN, data []byte, hint core.Hint) (sim.Time, error)
}

// BatchBackend is the optional batched interface of a backend.  When the
// backend provides it (as *core.Manager does, through the asynchronous I/O
// scheduler), the pool uses it for sequential read-ahead and for group
// write-back, so multi-page I/O stripes over the device's dies and overlaps
// in virtual time instead of serializing page by page.
type BatchBackend interface {
	Backend
	ReadPages(now sim.Time, lpns []core.LPN, bufs [][]byte) ([]core.PageRead, sim.Time)
	WritePages(now sim.Time, writes []core.PageWrite) (sim.Time, error)
	Mapped(lpn core.LPN) bool
}

// Recorder receives physical I/O notifications per database object; the DB
// layer uses it to maintain the per-object statistics consumed by the Region
// Advisor.  A nil Recorder disables recording.  Implementations must be safe
// for concurrent use.
type Recorder interface {
	RecordPhysRead(objectID uint32, pages int64)
	RecordPhysWrite(objectID uint32, pages int64)
}

// Errors returned by the pool.
var (
	// ErrPoolFull reports that every evictable frame of the page's shard is
	// pinned and nothing can be evicted.
	ErrPoolFull = errors.New("buffer: all frames pinned")
	// ErrNotCached reports a FlushPage of a page that is not resident.
	ErrNotCached = errors.New("buffer: page not resident")
)

// poolShard is one slice of the pool: a disjoint set of frames with its own
// mapping table and CLOCK hand.  A page lives in exactly one shard (chosen by
// LPN hash), so two operations on different shards never share a mutex.
type poolShard struct {
	mu     sync.Mutex
	frames []*Frame
	table  map[core.LPN]int // lpn -> index into frames
	hand   int
}

// Frame is one page-sized slot of the pool.  A frame belongs permanently to
// one shard; the shard mutex guards every field except data (per-frame latch)
// and dirty (atomic).
type Frame struct {
	mu         sync.RWMutex // content latch
	shard      *poolShard
	lpn        core.LPN
	data       []byte
	hint       core.Hint
	dirty      atomic.Bool // set by MarkDirty without the shard mutex
	valid      bool
	pins       int
	ref        bool
	prefetched bool // staged by read-ahead, not yet demanded
}

// Handle is a pinned reference to a frame.  Callers must Release it exactly
// once, and must bracket data access with Lock/Unlock (writers) or
// RLock/RUnlock (readers).
type Handle struct {
	pool  *Pool
	frame *Frame
}

// Data returns the frame's page buffer.  The caller must hold the frame
// latch while reading or writing it.
func (h *Handle) Data() []byte { return h.frame.data }

// LPN returns the logical page number of the pinned page.
func (h *Handle) LPN() core.LPN { return h.frame.lpn }

// Lock acquires the frame's write latch.
func (h *Handle) Lock() { h.frame.mu.Lock() }

// Unlock releases the frame's write latch.
func (h *Handle) Unlock() { h.frame.mu.Unlock() }

// RLock acquires the frame's read latch.
func (h *Handle) RLock() { h.frame.mu.RLock() }

// RUnlock releases the frame's read latch.
func (h *Handle) RUnlock() { h.frame.mu.RUnlock() }

// MarkDirty flags the page as modified so it will be written back before
// eviction.  Call it while holding the write latch.
func (h *Handle) MarkDirty() {
	h.frame.dirty.Store(true)
}

// Release unpins the page.
func (h *Handle) Release() {
	s := h.frame.shard
	s.mu.Lock()
	if h.frame.pins > 0 {
		h.frame.pins--
	}
	s.mu.Unlock()
}

// Stats is a snapshot of pool counters.
type Stats struct {
	Frames     int
	Shards     int
	Resident   int
	Dirty      int
	Hits       int64
	Misses     int64
	NewPages   int64
	Evictions  int64
	Writebacks int64
	// Prefetches counts pages staged by sequential read-ahead;
	// PrefetchHits counts later demand hits on those pages.
	Prefetches   int64
	PrefetchHits int64
	// GroupFlushes counts batched write-back dispatches (each covering one
	// or more dirty pages).
	GroupFlushes int64
}

// HitRatio returns hits / (hits + misses), or zero when idle.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Options tune the pool's batched-I/O behaviour and sharding.  The zero
// value disables read-ahead and group write-back and keeps the automatic
// shard count.
type Options struct {
	// ReadAhead is the number of sequentially-next pages staged through the
	// batch backend on a demand miss.  Zero disables read-ahead.
	ReadAhead int
	// GroupWriteBack makes FlushAll/FlushSome write dirty pages as one
	// die-striped batch instead of one page at a time.
	GroupWriteBack bool
	// Shards overrides the automatic frame-table shard count (clamped so
	// every shard keeps at least two frames).  Zero keeps the automatic
	// choice.  Resharding is only honoured while the pool is empty; set it
	// before the pool sees traffic.
	Shards int
}

// Pool is the buffer pool.  All methods are safe for concurrent use once the
// pool is configured; AttachObs and Configure must happen before the pool
// sees traffic.
type Pool struct {
	backend  Backend
	batch    BatchBackend // nil when the backend has no batch interface
	recorder Recorder
	tracer   *obs.Tracer // nil = tracing off (the only cost is nil compares)
	shards   []*poolShard
	nframes  int
	pageSize int
	opts     Options

	hits         atomic.Int64
	misses       atomic.Int64
	newPages     atomic.Int64
	evictions    atomic.Int64
	writebacks   atomic.Int64
	prefetches   atomic.Int64
	prefetchHits atomic.Int64
	groupFlushes atomic.Int64
}

// autoShards picks the shard count for a pool of frameCount frames: one
// shard per 64 frames, capped at 16, rounded down to a power of two.  Small
// pools keep a single shard, so their eviction behaviour is exactly that of
// a classic CLOCK pool.
func autoShards(frameCount int) int {
	n := frameCount / 64
	if n > 16 {
		n = 16
	}
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// New creates a pool of frameCount frames of pageSize bytes over the
// backend.
func New(backend Backend, frameCount, pageSize int, recorder Recorder) *Pool {
	if frameCount < 2 {
		frameCount = 2
	}
	p := &Pool{
		backend:  backend,
		recorder: recorder,
		nframes:  frameCount,
		pageSize: pageSize,
	}
	if bb, ok := backend.(BatchBackend); ok {
		p.batch = bb
	}
	p.buildShards(autoShards(frameCount))
	return p
}

// buildShards partitions the pool's frames over n shards (contiguous chunks,
// so shard sizes differ by at most one).  Only called while the pool is
// empty.
func (p *Pool) buildShards(n int) {
	if n < 1 {
		n = 1
	}
	if n > p.nframes/2 {
		n = p.nframes / 2
		if n < 1 {
			n = 1
		}
	}
	p.shards = make([]*poolShard, n)
	base := p.nframes / n
	extra := p.nframes % n
	for i := range p.shards {
		size := base
		if i < extra {
			size++
		}
		s := &poolShard{
			frames: make([]*Frame, size),
			table:  make(map[core.LPN]int, size),
		}
		for j := range s.frames {
			s.frames[j] = &Frame{shard: s, data: make([]byte, p.pageSize)}
		}
		p.shards[i] = s
	}
}

// shardOf maps an LPN to its shard.  The hash is a 64-bit mix so sequential
// LPNs (extent neighbours) spread over all shards.
func (p *Pool) shardOf(lpn core.LPN) *poolShard {
	if len(p.shards) == 1 {
		return p.shards[0]
	}
	h := uint64(lpn)
	h ^= h >> 33
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 29
	return p.shards[h%uint64(len(p.shards))]
}

// AttachObs wires the pool to the trace recorder.  A nil tracer (the
// default) keeps tracing off; hook sites then cost one nil compare.  Attach
// before the pool sees traffic.
func (p *Pool) AttachObs(tr *obs.Tracer) {
	p.tracer = tr
}

// Configure sets the pool's batched-I/O options.  Options that need the
// batch backend are silently inert when the backend does not provide it.
// Configure before the pool sees traffic.
func (p *Pool) Configure(opts Options) {
	if opts.ReadAhead < 0 {
		opts.ReadAhead = 0
	}
	p.opts = opts
	if opts.Shards > 0 && opts.Shards != len(p.shards) && p.empty() {
		p.buildShards(opts.Shards)
	}
}

// empty reports whether no page is resident (safe to reshard).
func (p *Pool) empty() bool {
	for _, s := range p.shards {
		s.mu.Lock()
		n := len(s.table)
		s.mu.Unlock()
		if n > 0 {
			return false
		}
	}
	return true
}

// PageSize returns the frame size in bytes.
func (p *Pool) PageSize() int { return p.pageSize }

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	st := Stats{
		Frames:       p.nframes,
		Shards:       len(p.shards),
		Hits:         p.hits.Load(),
		Misses:       p.misses.Load(),
		NewPages:     p.newPages.Load(),
		Evictions:    p.evictions.Load(),
		Writebacks:   p.writebacks.Load(),
		Prefetches:   p.prefetches.Load(),
		PrefetchHits: p.prefetchHits.Load(),
		GroupFlushes: p.groupFlushes.Load(),
	}
	for _, s := range p.shards {
		s.mu.Lock()
		for _, f := range s.frames {
			if f.valid {
				st.Resident++
				if f.dirty.Load() {
					st.Dirty++
				}
			}
		}
		s.mu.Unlock()
	}
	return st
}

// ResetCounters zeroes the hit/miss/eviction counters (after warm-up).
func (p *Pool) ResetCounters() {
	p.hits.Store(0)
	p.misses.Store(0)
	p.newPages.Store(0)
	p.evictions.Store(0)
	p.writebacks.Store(0)
	p.prefetches.Store(0)
	p.prefetchHits.Store(0)
	p.groupFlushes.Store(0)
}

// Fetch pins the page, reading it from the backend on a miss.  The returned
// time includes any eviction write-back and the read itself.
//
// When read-ahead is configured and the backend supports batching, a miss
// also stages the next sequential pages of the LPN space: they are read in
// the same scheduler batch as the demanded page (striping over dies costs
// almost no extra virtual time) and parked unpinned in the pool, so an
// upcoming sequential access hits in memory instead of missing.
func (p *Pool) Fetch(now sim.Time, lpn core.LPN, hint core.Hint) (*Handle, sim.Time, error) {
	s := p.shardOf(lpn)
	s.mu.Lock()
	if idx, ok := s.table[lpn]; ok {
		f := s.frames[idx]
		f.pins++
		f.ref = true
		// The demander knows the page's true placement hint; refresh it so a
		// frame staged by read-ahead across an object boundary is written
		// back (and charged) under the right object, not the prefetcher's.
		f.hint = hint
		p.hits.Add(1)
		if f.prefetched {
			f.prefetched = false
			p.prefetchHits.Add(1)
		}
		s.mu.Unlock()
		return &Handle{pool: p, frame: f}, now, nil
	}
	p.misses.Add(1)
	if p.tracer.Enabled(obs.ClassBufMiss) {
		p.tracer.Record(obs.Event{
			Class: obs.ClassBufMiss, Die: -1, Block: -1, Page: -1,
			Region: int32(hint.Region), Start: now, End: now, A: int64(lpn),
		})
	}
	idx, now, err := p.allocFrameLocked(s, now)
	if err != nil {
		s.mu.Unlock()
		return nil, now, err
	}
	f := s.frames[idx]
	f.lpn = lpn
	f.hint = hint
	f.valid = true
	f.dirty.Store(false)
	f.prefetched = false
	f.pins = 1
	f.ref = true
	// Hold the frame's content latch across the read so that a concurrent
	// Fetch of the same page (which hits in the table the moment we publish
	// it) blocks on the latch until the data has actually arrived.  The
	// latch acquisition cannot block: the frame had zero pins, so no latch
	// holder (or waiter) can exist.
	f.mu.Lock()
	s.table[lpn] = idx
	s.mu.Unlock()

	// Stage sequential read-ahead frames (each in its own shard, one shard
	// lock at a time — the demand shard's lock is already released).
	var pfFrames []*Frame
	if p.opts.ReadAhead > 0 && p.batch != nil {
		pfFrames, now = p.stagePrefetch(now, lpn, hint)
	}

	if len(pfFrames) == 0 {
		_, done, err := p.backend.ReadPage(now, lpn, f.data)
		f.mu.Unlock()
		if err != nil {
			s.mu.Lock()
			delete(s.table, lpn)
			f.valid = false
			f.pins = 0
			s.mu.Unlock()
			return nil, done, fmt.Errorf("buffer: fetch lpn %d: %w", lpn, err)
		}
		if p.recorder != nil {
			p.recorder.RecordPhysRead(hint.ObjectID, 1)
		}
		return &Handle{pool: p, frame: f}, done, nil
	}

	// Batched path: demand page first, prefetch pages after it.
	lpns := make([]core.LPN, 0, 1+len(pfFrames))
	bufs := make([][]byte, 0, 1+len(pfFrames))
	lpns = append(lpns, lpn)
	bufs = append(bufs, f.data)
	for _, pf := range pfFrames {
		lpns = append(lpns, pf.lpn)
		bufs = append(bufs, pf.data)
	}
	reads, _ := p.batch.ReadPages(now, lpns, bufs)

	goodPages := int64(0)
	for i, pf := range pfFrames {
		ps := pf.shard
		ps.mu.Lock()
		pf.mu.Unlock()
		// Drop the staging pin only: a concurrent Fetch may have hit the
		// published frame and pinned it while the batch was in flight.
		if pf.pins > 0 {
			pf.pins--
		}
		if reads[i+1].Err != nil {
			// The page vanished between staging and the read (e.g. a
			// concurrent trim): unpublish the frame unless someone else
			// still holds it pinned.
			if pf.pins == 0 {
				delete(ps.table, pf.lpn)
				pf.valid = false
				pf.prefetched = false
			}
		} else {
			goodPages++
		}
		ps.mu.Unlock()
	}
	demand := reads[0]
	f.mu.Unlock()
	if demand.Err != nil {
		s.mu.Lock()
		delete(s.table, lpn)
		f.valid = false
		f.pins = 0
		s.mu.Unlock()
		return nil, demand.Done, fmt.Errorf("buffer: fetch lpn %d: %w", lpn, demand.Err)
	}
	if p.recorder != nil {
		// Read-ahead pages are charged to the demanding object: sequential
		// LPNs belong to the same extent in practice.
		p.recorder.RecordPhysRead(hint.ObjectID, 1+goodPages)
	}
	// The caller pays for its own page only; the prefetched pages overlap
	// on other dies and their (near-identical) completion is not the
	// caller's concern.
	return &Handle{pool: p, frame: f}, demand.Done, nil
}

// FetchMany pins a set of pages, reading every non-resident page from the
// backend in one die-striped scheduler batch.  The returned handles align
// with lpns (duplicates receive independent pins on the same frame); the
// returned time is the batch makespan plus any eviction write-back the frame
// allocations caused.  On error no handles are retained.
//
// Without a batch backend the pages are fetched one at a time.
func (p *Pool) FetchMany(now sim.Time, lpns []core.LPN, hint core.Hint) ([]*Handle, sim.Time, error) {
	handles := make([]*Handle, len(lpns))
	releaseAll := func() {
		for _, h := range handles {
			if h != nil {
				h.Release()
			}
		}
	}
	if p.batch == nil {
		for i, lpn := range lpns {
			h, done, err := p.Fetch(now, lpn, hint)
			if err != nil {
				releaseAll()
				return nil, done, err
			}
			handles[i] = h
			now = done
		}
		return handles, now, nil
	}

	// Group the requested positions by shard (first-appearance order keeps
	// eviction write-back chaining deterministic), pin residents and
	// allocate+publish frames for misses one shard lock at a time, then read
	// all misses as a single batch.
	shardPos := make(map[*poolShard][]int)
	order := make([]*poolShard, 0, len(p.shards))
	for i, lpn := range lpns {
		s := p.shardOf(lpn)
		if _, seen := shardPos[s]; !seen {
			order = append(order, s)
		}
		shardPos[s] = append(shardPos[s], i)
	}

	type missFrame struct {
		pos   int
		frame *Frame
	}
	var misses []missFrame
	var allocErr error
	for _, s := range order {
		s.mu.Lock()
		for _, i := range shardPos[s] {
			lpn := lpns[i]
			if idx, ok := s.table[lpn]; ok {
				f := s.frames[idx]
				f.pins++
				f.ref = true
				f.hint = hint
				p.hits.Add(1)
				if f.prefetched {
					f.prefetched = false
					p.prefetchHits.Add(1)
				}
				handles[i] = &Handle{pool: p, frame: f}
				continue
			}
			p.misses.Add(1)
			if p.tracer.Enabled(obs.ClassBufMiss) {
				p.tracer.Record(obs.Event{
					Class: obs.ClassBufMiss, Die: -1, Block: -1, Page: -1,
					Region: int32(hint.Region), Start: now, End: now, A: int64(lpn),
				})
			}
			idx, t, err := p.allocFrameLocked(s, now)
			if err != nil {
				allocErr = err
				now = t
				break
			}
			now = t
			f := s.frames[idx]
			f.lpn = lpn
			f.hint = hint
			f.valid = true
			f.dirty.Store(false)
			f.prefetched = false
			f.pins = 1
			f.ref = true
			// Hold the content latch until the batch read lands, so a
			// concurrent Fetch that hits the published frame blocks until
			// the data is there (cannot block here: the frame had no pins).
			f.mu.Lock()
			s.table[lpn] = idx
			handles[i] = &Handle{pool: p, frame: f}
			misses = append(misses, missFrame{pos: i, frame: f})
		}
		s.mu.Unlock()
		if allocErr != nil {
			break
		}
	}
	if allocErr != nil {
		// Unwind every staged miss: their frames are published with the
		// content latch held but no data yet.  Unlatch, drop the staging
		// pin, and unpublish unless a concurrent Fetch pinned the frame in
		// the meantime.
		for _, m := range misses {
			f := m.frame
			ms := f.shard
			ms.mu.Lock()
			f.mu.Unlock()
			if f.pins > 0 {
				f.pins--
			}
			if f.pins == 0 {
				delete(ms.table, f.lpn)
				f.valid = false
			}
			ms.mu.Unlock()
			handles[m.pos] = nil
		}
		releaseAll()
		return nil, now, allocErr
	}

	if len(misses) == 0 {
		return handles, now, nil
	}
	missLPNs := make([]core.LPN, len(misses))
	bufs := make([][]byte, len(misses))
	for j, m := range misses {
		missLPNs[j] = m.frame.lpn
		bufs[j] = m.frame.data
	}
	reads, end := p.batch.ReadPages(now, missLPNs, bufs)
	var firstErr error
	for j, m := range misses {
		m.frame.mu.Unlock()
		if reads[j].Err != nil && firstErr == nil {
			firstErr = fmt.Errorf("buffer: fetch lpn %d: %w", missLPNs[j], reads[j].Err)
		}
	}
	if firstErr != nil {
		releaseAll()
		for _, m := range misses {
			f := m.frame
			ms := f.shard
			ms.mu.Lock()
			if f.pins == 0 {
				delete(ms.table, f.lpn)
				f.valid = false
			}
			ms.mu.Unlock()
		}
		return nil, end, firstErr
	}
	if p.recorder != nil {
		p.recorder.RecordPhysRead(hint.ObjectID, int64(len(misses)))
	}
	return handles, end, nil
}

// WriteThrough writes page images to the backend as one die-striped batch
// without staging them in the pool (bulk-load path: the pages are complete
// and cold, so buffering them would only push hotter pages out).  Resident
// copies of the written pages, if any, are dropped.  Without a batch backend
// the pages are written one at a time.
func (p *Pool) WriteThrough(now sim.Time, writes []core.PageWrite) (sim.Time, error) {
	if len(writes) == 0 {
		return now, nil
	}
	var done sim.Time
	var err error
	if p.batch != nil {
		done, err = p.batch.WritePages(now, writes)
	} else {
		done = now
		for _, w := range writes {
			done, err = p.backend.WritePage(done, w.LPN, w.Data, w.Hint)
			if err != nil {
				break
			}
		}
	}
	if err != nil {
		return now, err
	}
	for _, w := range writes {
		s := p.shardOf(w.LPN)
		s.mu.Lock()
		if idx, ok := s.table[w.LPN]; ok {
			f := s.frames[idx]
			if f.pins == 0 {
				delete(s.table, w.LPN)
				f.valid = false
				f.dirty.Store(false)
				f.prefetched = false
			}
		}
		s.mu.Unlock()
		p.writebacks.Add(1)
		if p.recorder != nil {
			p.recorder.RecordPhysWrite(w.Hint.ObjectID, 1)
		}
	}
	if p.batch != nil {
		p.groupFlushes.Add(1)
	}
	if p.tracer.Enabled(obs.ClassBufWriteBack) {
		p.tracer.Record(obs.Event{
			Class: obs.ClassBufWriteBack, Op: obs.BufWriteBackGroup,
			Die: -1, Block: -1, Page: -1, Region: -1,
			Start: now, End: done, A: int64(len(writes)),
		})
	}
	return done, nil
}

// stagePrefetch allocates and publishes frames for the mapped, non-resident
// pages sequentially following lpn, returning them with their content
// latches held and one staging pin each.  Each page is staged under its own
// shard's lock; the returned time includes any eviction write-back the
// allocations caused.
func (p *Pool) stagePrefetch(now sim.Time, lpn core.LPN, hint core.Hint) ([]*Frame, sim.Time) {
	var staged []*Frame
	for i := 1; i <= p.opts.ReadAhead; i++ {
		next := lpn + core.LPN(i)
		if !p.batch.Mapped(next) {
			continue
		}
		s := p.shardOf(next)
		s.mu.Lock()
		if _, resident := s.table[next]; resident {
			s.mu.Unlock()
			continue
		}
		idx, t, err := p.allocFrameLocked(s, now)
		if err != nil {
			s.mu.Unlock()
			break // every frame pinned: the pool is too hot to prefetch into
		}
		now = t
		pf := s.frames[idx]
		pf.lpn = next
		pf.hint = hint
		pf.valid = true
		pf.dirty.Store(false)
		pf.prefetched = true
		// Hold a pin while the read is in flight so a CLOCK sweep (even one
		// triggered by the next staging allocation) cannot evict the frame;
		// the pin is dropped once the batch completes.
		pf.pins = 1
		pf.ref = false // evict-first until a demand access promotes it
		pf.mu.Lock()
		s.table[next] = idx
		s.mu.Unlock()
		staged = append(staged, pf)
		p.prefetches.Add(1)
	}
	return staged, now
}

// NewPage pins a frame for a brand-new page without reading the backend.
// The frame starts zeroed and dirty.
func (p *Pool) NewPage(now sim.Time, lpn core.LPN, hint core.Hint) (*Handle, sim.Time, error) {
	s := p.shardOf(lpn)
	s.mu.Lock()
	if idx, ok := s.table[lpn]; ok {
		// The page is already resident (e.g. re-created after a trim); reuse
		// the frame and reset its contents.
		f := s.frames[idx]
		f.pins++
		f.ref = true
		f.prefetched = false
		f.dirty.Store(true)
		for i := range f.data {
			f.data[i] = 0
		}
		p.newPages.Add(1)
		s.mu.Unlock()
		return &Handle{pool: p, frame: f}, now, nil
	}
	p.newPages.Add(1)
	idx, now, err := p.allocFrameLocked(s, now)
	if err != nil {
		s.mu.Unlock()
		return nil, now, err
	}
	f := s.frames[idx]
	f.lpn = lpn
	f.hint = hint
	f.valid = true
	f.dirty.Store(true)
	f.prefetched = false
	f.pins = 1
	f.ref = true
	for i := range f.data {
		f.data[i] = 0
	}
	s.table[lpn] = idx
	s.mu.Unlock()
	return &Handle{pool: p, frame: f}, now, nil
}

// allocFrameLocked finds a victim frame in shard s using the CLOCK policy,
// writing it back if dirty.  Caller holds s.mu; the mutex stays held
// throughout (the backend write is bookkeeping plus virtual-time math, not
// real I/O).  A victim has zero pins, so no latch holder can exist and its
// data may be read directly.
func (p *Pool) allocFrameLocked(s *poolShard, now sim.Time) (int, sim.Time, error) {
	// First pass preference: an invalid (never used) frame.
	for i, f := range s.frames {
		if !f.valid && f.pins == 0 {
			return i, now, nil
		}
	}
	// CLOCK sweep, at most two full rounds.
	for sweep := 0; sweep < 2*len(s.frames); sweep++ {
		idx := s.hand
		s.hand = (s.hand + 1) % len(s.frames)
		f := s.frames[idx]
		if f.pins > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		// Victim found.
		dirty := f.dirty.Load()
		if dirty {
			start := now
			done, err := p.backend.WritePage(now, f.lpn, f.data, f.hint)
			if err != nil {
				return 0, now, fmt.Errorf("buffer: writeback lpn %d: %w", f.lpn, err)
			}
			now = done
			p.writebacks.Add(1)
			if p.recorder != nil {
				p.recorder.RecordPhysWrite(f.hint.ObjectID, 1)
			}
			if p.tracer.Enabled(obs.ClassBufWriteBack) {
				p.tracer.Record(obs.Event{
					Class: obs.ClassBufWriteBack, Op: obs.BufWriteBackSingle,
					Die: -1, Block: -1, Page: -1, Region: int32(f.hint.Region),
					Start: start, End: done, A: int64(f.lpn),
				})
			}
		}
		if p.tracer.Enabled(obs.ClassBufEvict) {
			var b int64
			if dirty {
				b = 1
			}
			p.tracer.Record(obs.Event{
				Class: obs.ClassBufEvict, Die: -1, Block: -1, Page: -1,
				Region: int32(f.hint.Region), Start: now, End: now,
				A: int64(f.lpn), B: b,
			})
		}
		delete(s.table, f.lpn)
		f.valid = false
		f.dirty.Store(false)
		f.prefetched = false
		p.evictions.Add(1)
		return idx, now, nil
	}
	return 0, now, ErrPoolFull
}

// FlushPage writes the page back to the backend if it is resident, dirty and
// unpinned.  A pinned page is skipped (it is being modified by a concurrent
// transaction and will be written back on eviction or at the next
// checkpoint), exactly as FlushAll does.
func (p *Pool) FlushPage(now sim.Time, lpn core.LPN) (sim.Time, error) {
	s := p.shardOf(lpn)
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, ok := s.table[lpn]
	if !ok {
		return now, fmt.Errorf("%w: lpn %d", ErrNotCached, lpn)
	}
	return p.flushFrameLocked(s, now, idx)
}

// flushFrameLocked writes one dirty unpinned frame back.  Caller holds s.mu;
// zero pins guarantee no latch holder, so the data may be read directly.
func (p *Pool) flushFrameLocked(s *poolShard, now sim.Time, idx int) (sim.Time, error) {
	f := s.frames[idx]
	if !f.valid || !f.dirty.Load() || f.pins > 0 {
		return now, nil
	}
	done, err := p.backend.WritePage(now, f.lpn, f.data, f.hint)
	if err != nil {
		return now, err
	}
	f.dirty.Store(false)
	p.writebacks.Add(1)
	if p.recorder != nil {
		p.recorder.RecordPhysWrite(f.hint.ObjectID, 1)
	}
	if p.tracer.Enabled(obs.ClassBufWriteBack) {
		p.tracer.Record(obs.Event{
			Class: obs.ClassBufWriteBack, Op: obs.BufWriteBackSingle,
			Die: -1, Block: -1, Page: -1, Region: int32(f.hint.Region),
			Start: now, End: done, A: int64(f.lpn),
		})
	}
	return done, nil
}

// FlushAll writes every dirty, unpinned resident page back to the backend
// (checkpoint).  Pinned pages are skipped — they are being modified by a
// concurrent transaction and will be written back on eviction or at the next
// checkpoint.  With group write-back enabled the dirty pages go out as one
// die-striped scheduler batch, so the checkpoint costs roughly one write per
// die instead of one write per page in virtual time.
func (p *Pool) FlushAll(now sim.Time) (sim.Time, error) {
	if p.opts.GroupWriteBack && p.batch != nil {
		_, done, err := p.flushGroup(now, p.nframes)
		return done, err
	}
	for _, s := range p.shards {
		s.mu.Lock()
		for idx := range s.frames {
			done, err := p.flushFrameLocked(s, now, idx)
			if err != nil {
				s.mu.Unlock()
				return now, err
			}
			now = done
		}
		s.mu.Unlock()
	}
	return now, nil
}

// FlushSome writes back up to n dirty unpinned pages, oldest-hand first.  It
// is the work unit of the background flusher; returning the count lets the
// flusher adapt its pace.
func (p *Pool) FlushSome(now sim.Time, n int) (int, sim.Time, error) {
	if p.opts.GroupWriteBack && p.batch != nil {
		return p.flushGroup(now, n)
	}
	flushed := 0
	for _, s := range p.shards {
		s.mu.Lock()
		for idx, f := range s.frames {
			if flushed >= n {
				break
			}
			if !f.valid || !f.dirty.Load() || f.pins > 0 {
				continue
			}
			done, err := p.flushFrameLocked(s, now, idx)
			if err != nil {
				s.mu.Unlock()
				return flushed, now, err
			}
			now = done
			flushed++
		}
		s.mu.Unlock()
		if flushed >= n {
			break
		}
	}
	return flushed, now, nil
}

// flushGroup writes up to max dirty unpinned pages back as a single batch
// through the batch backend.  Candidates are collected shard by shard; each
// is given a flush pin and a read latch so that neither eviction nor a
// concurrent modification can touch its data while the batch is in flight
// (a frame with zero pins cannot have a latch holder, so the read latch is
// acquired without blocking).  The backend allocates the batch's slots
// round-robin over the target regions' dies, so the programs stripe and
// overlap in virtual time.
func (p *Pool) flushGroup(now sim.Time, max int) (int, sim.Time, error) {
	frames := make([]*Frame, 0, max)
	writes := make([]core.PageWrite, 0, max)
	for _, s := range p.shards {
		if len(frames) >= max {
			break
		}
		s.mu.Lock()
		for _, f := range s.frames {
			if len(frames) >= max {
				break
			}
			if !f.valid || !f.dirty.Load() || f.pins > 0 {
				continue
			}
			f.pins++
			f.mu.RLock()
			// Clear dirty before the write: MarkDirty cannot run while we
			// hold the read latch, and any modification after we release it
			// re-marks the page, so no update is lost.
			f.dirty.Store(false)
			frames = append(frames, f)
			writes = append(writes, core.PageWrite{LPN: f.lpn, Data: f.data, Hint: f.hint})
		}
		s.mu.Unlock()
	}
	if len(writes) == 0 {
		return 0, now, nil
	}
	done, err := p.batch.WritePages(now, writes)
	for i, f := range frames {
		if err != nil {
			// Leave the page dirty: pages the batch did manage to program
			// are remapped in the backend and will simply be written again
			// (wasted work, never lost data).
			f.dirty.Store(true)
		}
		f.mu.RUnlock()
		s := f.shard
		s.mu.Lock()
		if f.pins > 0 {
			f.pins--
		}
		s.mu.Unlock()
		if err == nil {
			p.writebacks.Add(1)
			if p.recorder != nil {
				p.recorder.RecordPhysWrite(writes[i].Hint.ObjectID, 1)
			}
		}
	}
	if err != nil {
		return 0, now, err
	}
	p.groupFlushes.Add(1)
	if p.tracer.Enabled(obs.ClassBufWriteBack) {
		p.tracer.Record(obs.Event{
			Class: obs.ClassBufWriteBack, Op: obs.BufWriteBackGroup,
			Die: -1, Block: -1, Page: -1, Region: -1,
			Start: now, End: done, A: int64(len(frames)),
		})
	}
	return len(frames), done, nil
}

// Drop removes a page from the pool without writing it back (used when an
// object is dropped and its pages trimmed).
func (p *Pool) Drop(lpn core.LPN) {
	s := p.shardOf(lpn)
	s.mu.Lock()
	defer s.mu.Unlock()
	if idx, ok := s.table[lpn]; ok {
		f := s.frames[idx]
		if f.pins == 0 {
			delete(s.table, lpn)
			f.valid = false
			f.dirty.Store(false)
			f.prefetched = false
		}
	}
}
