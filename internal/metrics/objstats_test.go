package metrics

import "testing"

// TestObjectStatsAllSortsByIORate complements the basic ObjectStats test:
// All() must order objects by reads+writes descending.
func TestObjectStatsAllSortsByIORate(t *testing.T) {
	os := NewObjectStats()
	os.RecordRead("cold", 1)
	os.RecordRead("hot", 100)
	os.RecordWrite("warm", 50)
	all := os.All()
	if len(all) != 3 {
		t.Fatalf("got %d objects, want 3", len(all))
	}
	if all[0].Name != "hot" || all[1].Name != "warm" || all[2].Name != "cold" {
		t.Errorf("order: %s, %s, %s; want hot, warm, cold", all[0].Name, all[1].Name, all[2].Name)
	}
}

func TestObjectStatsAllTiesBrokenByName(t *testing.T) {
	os := NewObjectStats()
	os.RecordRead("b", 5)
	os.RecordRead("a", 5)
	all := os.All()
	if all[0].Name != "a" || all[1].Name != "b" {
		t.Errorf("tie order: %s, %s; want a, b", all[0].Name, all[1].Name)
	}
}

func TestObjectStatsResetKeepsSizeAndAppends(t *testing.T) {
	os := NewObjectStats()
	os.Register("IDX", "index", "tsHot")
	os.RecordAppend("IDX", 3)
	os.SetSize("IDX", 40)
	os.Reset()
	c, ok := os.Get("IDX")
	if !ok {
		t.Fatal("registration dropped by Reset")
	}
	if c.Appends != 0 {
		t.Errorf("appends survived Reset: %d", c.Appends)
	}
	if c.SizePages != 40 {
		t.Errorf("size should survive Reset (it is state, not a counter): %d", c.SizePages)
	}
	// All() still returns the object after Reset (registrations persist).
	if len(os.All()) != 1 {
		t.Errorf("All() lost registered objects after Reset")
	}
}
