// Package metrics provides the counters, latency histograms and per-object
// I/O statistics used throughout the reproduction, plus helpers to render
// them as the text tables printed by the benchmark harness.
//
// All collectors are safe for concurrent use; the hot paths use atomics.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing 64-bit counter.
type Counter struct {
	v atomic.Int64
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Store sets the counter to v.  It exists for scrape-time snapshot counters
// that mirror an externally maintained monotonic total; normal hot-path
// counters should use Inc/Add.
func (c *Counter) Store(v int64) { c.v.Store(v) }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is a settable 64-bit value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// SetMax raises the gauge to v if v is larger than the current value (an
// atomic compare-and-swap maximum, for high-water-mark gauges updated from
// concurrent writers).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates durations and reports count, mean and selected
// percentiles.  It uses exponentially sized buckets from 1µs to ~17min which
// is plenty for both 4 KB flash I/Os and multi-second transactions.
type Histogram struct {
	mu      sync.Mutex
	buckets [64]int64
	count   int64
	sum     int64 // nanoseconds
	min     int64
	max     int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: int64(^uint64(0) >> 1)}
}

func bucketFor(ns int64) int {
	// bucket i covers [2^i, 2^(i+1)) microseconds-ish: we bucket by bit
	// length of the nanosecond value for simplicity.
	b := 0
	for v := ns; v > 0; v >>= 1 {
		b++
	}
	if b >= 64 {
		b = 63
	}
	return b
}

// bucketUpper returns the inclusive upper bound (ns) of bucket i.
func bucketUpper(i int) int64 {
	if i >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return (int64(1) << uint(i)) - 1
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.mu.Lock()
	h.buckets[bucketFor(ns)]++
	h.count++
	h.sum += ns
	if ns < h.min {
		h.min = ns
	}
	if ns > h.max {
		h.max = ns
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.sum)
}

// exportBuckets returns a copy of the raw per-bucket counts together with the
// total count and sum (ns).  It is the Prometheus encoder's view of the
// histogram; bucket i's inclusive upper bound is bucketUpper(i).
func (h *Histogram) exportBuckets() (buckets [64]int64, count, sum int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.buckets, h.count, h.sum
}

// Mean returns the mean observed duration (zero if empty).
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Max returns the largest observed duration (zero if empty).
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.max)
}

// Min returns the smallest observed duration (zero if empty).
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Quantile returns an upper-bound estimate of the q-quantile based on the
// bucket boundaries.  The contract at the edges:
//
//   - empty histogram: 0 for every q;
//   - q <= 0: the exact observed minimum;
//   - q >= 1: the exact observed maximum;
//   - otherwise: the upper bound of the bucket holding the ceil(q·count)-th
//     observation, clamped to the observed maximum so the estimate never
//     exceeds a value that was actually observed.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return time.Duration(h.min)
	}
	if q >= 1 {
		return time.Duration(h.max)
	}
	target := int64(q*float64(h.count) + 0.9999999)
	if target < 1 {
		target = 1
	}
	if target > h.count {
		target = h.count
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen >= target {
			est := bucketUpper(i)
			if est > h.max {
				est = h.max
			}
			return time.Duration(est)
		}
	}
	return time.Duration(h.max)
}

// Reset clears all observations.
func (h *Histogram) Reset() {
	h.mu.Lock()
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.count, h.sum, h.max = 0, 0, 0
	h.min = int64(^uint64(0) >> 1)
	h.mu.Unlock()
}

// Snapshot is a point-in-time copy of a histogram's summary statistics.
type Snapshot struct {
	Count int64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Snapshot returns the current summary.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// Set is a named collection of counters and histograms.  Components create
// their metrics through a Set so the harness can dump everything uniformly.
type Set struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewSet returns an empty metric set.
func NewSet() *Set {
	return &Set{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it if needed.
func (s *Set) Counter(name string) *Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (s *Set) Gauge(name string) *Gauge {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.gauges[name]
	if !ok {
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it if needed.
func (s *Set) Histogram(name string) *Histogram {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.histograms[name]
	if !ok {
		h = NewHistogram()
		s.histograms[name] = h
	}
	return h
}

// CounterValues returns a copy of all counter values keyed by name.
func (s *Set) CounterValues() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.counters))
	for k, v := range s.counters {
		out[k] = v.Value()
	}
	return out
}

// Reset zeroes every collector in the set.
func (s *Set) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.counters {
		c.Reset()
	}
	for _, g := range s.gauges {
		g.Set(0)
	}
	for _, h := range s.histograms {
		h.Reset()
	}
}

// String renders the whole set as a sorted key: value listing, mainly for
// debugging and the flashsim inspection tool.
func (s *Set) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.counters)+len(s.gauges)+len(s.histograms))
	for k := range s.counters {
		keys = append(keys, "c:"+k)
	}
	for k := range s.gauges {
		keys = append(keys, "g:"+k)
	}
	for k := range s.histograms {
		keys = append(keys, "h:"+k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		switch k[0] {
		case 'c':
			out += fmt.Sprintf("%-40s %d\n", k[2:], s.counters[k[2:]].Value())
		case 'g':
			out += fmt.Sprintf("%-40s %d\n", k[2:], s.gauges[k[2:]].Value())
		case 'h':
			snap := s.histograms[k[2:]].Snapshot()
			out += fmt.Sprintf("%-40s n=%d mean=%v p95=%v max=%v\n",
				k[2:], snap.Count, snap.Mean, snap.P95, snap.Max)
		}
	}
	return out
}
