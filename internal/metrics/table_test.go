package metrics

import (
	"strings"
	"testing"
)

// TestTableAlignment complements the basic rendering test: every rendered
// row must be padded to the same column widths, driven by the widest cell.
func TestTableAlignment(t *testing.T) {
	tbl := NewTable("Aligned", "Name", "Count")
	tbl.AddRow("a", int64(1))
	tbl.AddRow("much-longer-name", int64(1234567))
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// Header and separator are padded to identical widths.
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("header width %d != separator width %d:\n%s", len(lines[1]), len(lines[2]), out)
	}
	if !strings.Contains(lines[2], strings.Repeat("-", len("much-longer-name"))) {
		t.Errorf("separator not widened to widest cell: %q", lines[2])
	}
	if !strings.Contains(out, "1,234,567") {
		t.Errorf("count cell not formatted:\n%s", out)
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tbl := NewTable("", "A")
	tbl.AddRow("x")
	out := tbl.String()
	if strings.HasPrefix(out, "\n") {
		t.Errorf("empty title produced a leading newline: %q", out)
	}
	if lines := strings.Split(strings.TrimRight(out, "\n"), "\n"); len(lines) != 3 {
		t.Errorf("got %d lines, want 3 (header, separator, row):\n%s", len(lines), out)
	}
}

func TestTableIntCellUsesThousandsSeparators(t *testing.T) {
	tbl := NewTable("", "N")
	tbl.AddRow(1234567) // plain int, not int64
	if out := tbl.String(); !strings.Contains(out, "1,234,567") {
		t.Errorf("int cell not routed through FormatCount:\n%s", out)
	}
}
