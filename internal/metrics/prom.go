package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file is the labeled half of the metrics package: families of
// counters/gauges/histograms keyed by label values (die, region, priority),
// collected in a Registry and rendered as Prometheus text exposition format
// by a pure-Go encoder (no client library dependency).

// Kind is the Prometheus type of a metric family.
type Kind uint8

// Family kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// validLabelName reports whether s matches [a-zA-Z_][a-zA-Z0-9_]* and is not
// reserved (double-underscore prefix).
func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// escapeLabelValue escapes a label value for the text exposition format.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string (backslash and newline only, per format).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// child is one labeled member of a family.
type child struct {
	values  []string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Family is a named set of metrics sharing a label schema.  Children are
// created on first use via the typed wrappers' With methods and live forever
// (the label space here — dies, regions, priorities — is small and bounded).
type Family struct {
	name   string
	help   string
	kind   Kind
	labels []string

	mu       sync.Mutex
	children map[string]*child
}

// Name returns the family's metric name.
func (f *Family) Name() string { return f.name }

// childKey joins label values with an unprintable separator.
func childKey(values []string) string {
	return strings.Join(values, "\x1f")
}

func (f *Family) get(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: family %s wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := childKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{values: append([]string(nil), values...)}
		switch f.kind {
		case KindCounter:
			c.counter = &Counter{}
		case KindGauge:
			c.gauge = &Gauge{}
		case KindHistogram:
			c.hist = NewHistogram()
		}
		f.children[key] = c
	}
	return c
}

// CounterFamily is a family of labeled counters.
type CounterFamily struct{ f *Family }

// With returns the counter for the given label values, creating it if needed.
func (cf CounterFamily) With(values ...string) *Counter { return cf.f.get(values).counter }

// GaugeFamily is a family of labeled gauges.
type GaugeFamily struct{ f *Family }

// With returns the gauge for the given label values, creating it if needed.
func (gf GaugeFamily) With(values ...string) *Gauge { return gf.f.get(values).gauge }

// HistogramFamily is a family of labeled histograms.
type HistogramFamily struct{ f *Family }

// With returns the histogram for the given label values, creating it if
// needed.
func (hf HistogramFamily) With(values ...string) *Histogram { return hf.f.get(values).hist }

// Registry is a collection of metric families rendered together.  Family
// registration is idempotent: asking again for the same (name, kind, labels)
// returns the existing family, so independent subsystems can share families
// without coordination.  A name re-registered with a different kind or label
// schema panics — that is a programming error, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*Family)}
}

func (r *Registry) family(name, help string, kind Kind, labels []string) *Family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelName(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if ok {
		if f.kind != kind || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("metrics: family %s re-registered as %s%v, was %s%v",
				name, kind, labels, f.kind, f.labels))
		}
		return f
	}
	f = &Family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (or finds) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) CounterFamily {
	return CounterFamily{r.family(name, help, KindCounter, labels)}
}

// Gauge registers (or finds) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) GaugeFamily {
	return GaugeFamily{r.family(name, help, KindGauge, labels)}
}

// Histogram registers (or finds) a histogram family.
func (r *Registry) Histogram(name, help string, labels ...string) HistogramFamily {
	return HistogramFamily{r.family(name, help, KindHistogram, labels)}
}

// Families returns the registered family names, sorted.
func (r *Registry) Families() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.families))
	for name := range r.families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// labelPairs renders {k="v",...} for sample lines; extra appends one more
// pair (the histogram le label).  Empty schema and no extra renders nothing.
func labelPairs(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteString(`"`)
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// formatSeconds renders a nanosecond quantity as seconds, the Prometheus base
// unit for time.
func formatSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// WriteText renders every family as Prometheus text exposition format
// (version 0.0.4): families sorted by name, each with HELP and TYPE lines,
// children sorted by label values.  Histograms are rendered in seconds with
// cumulative le buckets (sparse: only buckets that gained observations are
// emitted, plus the mandatory +Inf), _sum and _count.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	families := make([]*Family, len(names))
	for i, name := range names {
		families[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range families {
		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		children := make([]*child, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()
		if len(children) == 0 {
			continue // a family with no children yet has nothing to expose
		}

		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, c := range children {
			switch f.kind {
			case KindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name,
					labelPairs(f.labels, c.values, "", ""), c.counter.Value())
			case KindGauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name,
					labelPairs(f.labels, c.values, "", ""), c.gauge.Value())
			case KindHistogram:
				buckets, count, sum := c.hist.exportBuckets()
				var cum int64
				for i, n := range buckets {
					if n == 0 {
						continue
					}
					cum += n
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
						labelPairs(f.labels, c.values, "le", formatSeconds(bucketUpper(i))), cum)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
					labelPairs(f.labels, c.values, "le", "+Inf"), count)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name,
					labelPairs(f.labels, c.values, "", ""), formatSeconds(sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name,
					labelPairs(f.labels, c.values, "", ""), count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Text renders the registry as a string (WriteText into a buffer).
func (r *Registry) Text() string {
	var b strings.Builder
	_ = r.WriteText(&b)
	return b.String()
}
