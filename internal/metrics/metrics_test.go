package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("counter after reset = %d", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Fatalf("counter = %d, want 16000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram should report zeros")
	}
	h.Observe(100 * time.Microsecond)
	h.Observe(200 * time.Microsecond)
	h.Observe(300 * time.Microsecond)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 200*time.Microsecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != 100*time.Microsecond {
		t.Fatalf("min = %v", h.Min())
	}
	if h.Max() != 300*time.Microsecond {
		t.Fatalf("max = %v", h.Max())
	}
	if p := h.Quantile(0.99); p < 300*time.Microsecond {
		t.Fatalf("p99 = %v below max", p)
	}
	h.Reset()
	if h.Count() != 0 {
		t.Fatalf("count after reset = %d", h.Count())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5 * time.Second)
	if h.Max() != 0 {
		t.Fatalf("negative observation not clamped: %v", h.Max())
	}
}

// Property: quantile estimates never underestimate lower quantiles relative
// to higher ones and never exceed twice the max bucket bound.
func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(samples []uint32) bool {
		h := NewHistogram()
		for _, s := range samples {
			h.Observe(time.Duration(s))
		}
		if len(samples) == 0 {
			return h.Quantile(0.5) == 0
		}
		q50 := h.Quantile(0.50)
		q95 := h.Quantile(0.95)
		q99 := h.Quantile(0.99)
		return q50 <= q95 && q95 <= q99
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSetCreatesAndReuses(t *testing.T) {
	s := NewSet()
	c1 := s.Counter("flash.reads")
	c2 := s.Counter("flash.reads")
	if c1 != c2 {
		t.Fatalf("Counter did not reuse the same collector")
	}
	c1.Add(3)
	if s.CounterValues()["flash.reads"] != 3 {
		t.Fatalf("CounterValues missing value")
	}
	h := s.Histogram("lat")
	h.Observe(time.Millisecond)
	g := s.Gauge("free")
	g.Set(42)
	out := s.String()
	for _, want := range []string{"flash.reads", "lat", "free"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() missing %q:\n%s", want, out)
		}
	}
	s.Reset()
	if s.Counter("flash.reads").Value() != 0 || s.Gauge("free").Value() != 0 || s.Histogram("lat").Count() != 0 {
		t.Fatalf("Reset did not clear collectors")
	}
}

func TestObjectStats(t *testing.T) {
	o := NewObjectStats()
	o.Register("STOCK", "table", "tsStock")
	o.RecordRead("STOCK", 10)
	o.RecordWrite("STOCK", 4)
	o.RecordAppend("HISTORY", 7)
	o.SetSize("STOCK", 100)
	o.AddSize("STOCK", 20)

	c, ok := o.Get("STOCK")
	if !ok {
		t.Fatalf("STOCK missing")
	}
	if c.Reads != 10 || c.Writes != 4 || c.SizePages != 120 || c.Kind != "table" || c.Tablespace != "tsStock" {
		t.Fatalf("unexpected counters: %+v", c)
	}
	if _, ok := o.Get("NOPE"); ok {
		t.Fatalf("unexpected object")
	}

	all := o.All()
	if len(all) != 2 {
		t.Fatalf("All returned %d objects", len(all))
	}
	if all[0].Name != "STOCK" {
		t.Fatalf("All not sorted by I/O: %v", all[0].Name)
	}

	o.Reset()
	c, _ = o.Get("STOCK")
	if c.Reads != 0 || c.Writes != 0 {
		t.Fatalf("Reset did not clear I/O counters")
	}
	if c.Kind != "table" {
		t.Fatalf("Reset dropped registration")
	}
}

func TestFormatCount(t *testing.T) {
	cases := map[int64]string{
		0:         "0",
		5:         "5",
		999:       "999",
		1000:      "1,000",
		19017255:  "19,017,255",
		-1234567:  "-1,234,567",
		100000000: "100,000,000",
	}
	for in, want := range cases {
		if got := FormatCount(in); got != want {
			t.Errorf("FormatCount(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestPercentDelta(t *testing.T) {
	if d := PercentDelta(100, 120); d != 20 {
		t.Fatalf("delta = %v", d)
	}
	if d := PercentDelta(0, 120); d != 0 {
		t.Fatalf("delta with zero base = %v", d)
	}
	if d := PercentDelta(200, 100); d != -50 {
		t.Fatalf("delta = %v", d)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Figure X", "Metric", "Traditional", "Regions")
	tbl.AddRow("TPS", 595.42, 720.43)
	tbl.AddRow("Transactions", int64(359725), int64(433192))
	out := tbl.String()
	for _, want := range []string{"Figure X", "TPS", "595.42", "433,192", "Traditional"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

// TestHistogramQuantileContract pins the documented edge behavior: empty
// histograms report zero for every q, q<=0 is the exact minimum, q>=1 the
// exact maximum, and interior estimates never exceed the observed maximum.
func TestHistogramQuantileContract(t *testing.T) {
	empty := NewHistogram()
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}

	h := NewHistogram()
	h.Observe(130 * time.Microsecond)
	h.Observe(700 * time.Microsecond)
	h.Observe(900 * time.Microsecond)
	if got := h.Quantile(0); got != 130*time.Microsecond {
		t.Fatalf("Quantile(0) = %v, want exact min", got)
	}
	if got := h.Quantile(-0.5); got != 130*time.Microsecond {
		t.Fatalf("Quantile(-0.5) = %v, want exact min", got)
	}
	if got := h.Quantile(1); got != 900*time.Microsecond {
		t.Fatalf("Quantile(1) = %v, want exact max", got)
	}
	if got := h.Quantile(1.5); got != 900*time.Microsecond {
		t.Fatalf("Quantile(1.5) = %v, want exact max", got)
	}
	// The power-of-two bucket for 900µs tops out well above 900µs; the
	// interior estimate must be clamped to the observed maximum.
	if got := h.Quantile(0.99); got > 900*time.Microsecond {
		t.Fatalf("Quantile(0.99) = %v exceeds observed max", got)
	}
	if got := h.Quantile(0.5); got < 130*time.Microsecond || got > 900*time.Microsecond {
		t.Fatalf("Quantile(0.5) = %v outside observed range", got)
	}

	one := NewHistogram()
	one.Observe(42 * time.Microsecond)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := one.Quantile(q); got != 42*time.Microsecond {
			t.Fatalf("single-sample Quantile(%v) = %v, want the sample", q, got)
		}
	}
}

func TestCounterStore(t *testing.T) {
	var c Counter
	c.Add(7)
	c.Store(3)
	if c.Value() != 3 {
		t.Fatalf("Store: %d", c.Value())
	}
}

func TestHistogramSum(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)
	if h.Sum() != 3*time.Millisecond {
		t.Fatalf("Sum = %v", h.Sum())
	}
}
