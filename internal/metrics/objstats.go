package metrics

import (
	"sort"
	"sync"
)

// ObjectStats accumulates per-database-object I/O statistics: logical reads,
// logical writes (page updates) and the current size in pages.  The Region
// Advisor (internal/core) consumes these statistics to derive a multi-region
// placement configuration, which is how the paper's Figure 2 is produced.
type ObjectStats struct {
	mu   sync.Mutex
	objs map[string]*ObjectCounters
}

// ObjectCounters is the per-object record kept by ObjectStats.
type ObjectCounters struct {
	Name       string
	Reads      int64 // page reads issued on behalf of the object
	Writes     int64 // page writes (updates/flushes) issued for the object
	SizePages  int64 // current allocated size in pages
	Appends    int64 // appends (insert-only growth), used to spot append-only objects
	Kind       string
	Tablespace string
}

// NewObjectStats returns an empty collector.
func NewObjectStats() *ObjectStats {
	return &ObjectStats{objs: make(map[string]*ObjectCounters)}
}

func (o *ObjectStats) get(name string) *ObjectCounters {
	c, ok := o.objs[name]
	if !ok {
		c = &ObjectCounters{Name: name}
		o.objs[name] = c
	}
	return c
}

// Register declares an object with its kind ("table", "index", "log",
// "meta") and owning tablespace so reports can group them.
func (o *ObjectStats) Register(name, kind, tablespace string) {
	o.mu.Lock()
	c := o.get(name)
	c.Kind = kind
	c.Tablespace = tablespace
	o.mu.Unlock()
}

// RecordRead charges n page reads to the object.
func (o *ObjectStats) RecordRead(name string, n int64) {
	o.mu.Lock()
	o.get(name).Reads += n
	o.mu.Unlock()
}

// RecordWrite charges n page writes to the object.
func (o *ObjectStats) RecordWrite(name string, n int64) {
	o.mu.Lock()
	o.get(name).Writes += n
	o.mu.Unlock()
}

// RecordAppend charges n append operations to the object.
func (o *ObjectStats) RecordAppend(name string, n int64) {
	o.mu.Lock()
	o.get(name).Appends += n
	o.mu.Unlock()
}

// SetSize records the object's current size in pages.
func (o *ObjectStats) SetSize(name string, pages int64) {
	o.mu.Lock()
	o.get(name).SizePages = pages
	o.mu.Unlock()
}

// AddSize adjusts the object's size in pages by delta.
func (o *ObjectStats) AddSize(name string, delta int64) {
	o.mu.Lock()
	o.get(name).SizePages += delta
	o.mu.Unlock()
}

// Get returns a copy of the counters for name and whether it exists.
func (o *ObjectStats) Get(name string) (ObjectCounters, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	c, ok := o.objs[name]
	if !ok {
		return ObjectCounters{}, false
	}
	return *c, true
}

// All returns copies of every object's counters sorted by descending
// (reads+writes), i.e. by I/O rate.
func (o *ObjectStats) All() []ObjectCounters {
	o.mu.Lock()
	out := make([]ObjectCounters, 0, len(o.objs))
	for _, c := range o.objs {
		out = append(out, *c)
	}
	o.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		ii := out[i].Reads + out[i].Writes
		jj := out[j].Reads + out[j].Writes
		if ii != jj {
			return ii > jj
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Reset clears all per-object counters but keeps registrations (name, kind,
// tablespace) so a measurement run after a warm-up starts from zero.
func (o *ObjectStats) Reset() {
	o.mu.Lock()
	for _, c := range o.objs {
		c.Reads, c.Writes, c.Appends = 0, 0, 0
	}
	o.mu.Unlock()
}
