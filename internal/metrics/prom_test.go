package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryFamiliesAndText(t *testing.T) {
	r := NewRegistry()
	reqs := r.Counter("noftl_requests_total", "Flash requests.", "die", "priority")
	reqs.With("0", "host_read").Add(5)
	reqs.With("1", "gc").Inc()
	depth := r.Gauge("noftl_queue_depth", "Scheduler queue depth.")
	depth.With().Set(7)
	lat := r.Histogram("noftl_latency_seconds", "Latency.", "priority")
	lat.With("host_write").Observe(100 * time.Microsecond)
	lat.With("host_write").Observe(3 * time.Millisecond)

	text := r.Text()
	for _, want := range []string{
		"# HELP noftl_requests_total Flash requests.",
		"# TYPE noftl_requests_total counter",
		`noftl_requests_total{die="0",priority="host_read"} 5`,
		`noftl_requests_total{die="1",priority="gc"} 1`,
		"# TYPE noftl_queue_depth gauge",
		"noftl_queue_depth 7",
		"# TYPE noftl_latency_seconds histogram",
		`noftl_latency_seconds_bucket{priority="host_write",le="+Inf"} 2`,
		`noftl_latency_seconds_count{priority="host_write"} 2`,
		`noftl_latency_seconds_sum{priority="host_write"} 0.0031`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	if got := r.Families(); len(got) != 3 {
		t.Fatalf("Families() = %v", got)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", "die")
	b := r.Counter("x_total", "", "die")
	a.With("3").Inc()
	if b.With("3").Value() != 1 {
		t.Fatal("re-registration should return the same family")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch should panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestRegistryPanicsOnBadNames(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "0abc", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("metric name %q should panic", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("reserved label name should panic")
			}
		}()
		r.Counter("ok_total", "", "__reserved")
	}()
}

func TestRegistryLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", "name").With(`a"b\c` + "\n").Inc()
	text := r.Text()
	want := `esc_total{name="a\"b\\c\n"} 1`
	if !strings.Contains(text, want) {
		t.Fatalf("escaping broken, want %s in:\n%s", want, text)
	}
	res := LintExposition([]byte(text))
	if !res.Valid() {
		t.Fatalf("escaped exposition should lint clean: %v", res.Problems)
	}
	if got := res.LabelValues("name"); len(got) != 1 || got[0] != "a\"b\\c\n" {
		t.Fatalf("lint round-tripped label value %q", got)
	}
}

// TestConcurrentRegistration exercises family and child get-or-create from
// many goroutines; it is meaningful under -race.
func TestConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				cf := r.Counter("conc_total", "shared", "die")
				cf.With(fmt.Sprintf("%d", i%4)).Inc()
				hf := r.Histogram("conc_latency_seconds", "shared", "die")
				hf.With(fmt.Sprintf("%d", i%4)).Observe(time.Duration(i) * time.Microsecond)
				if g%2 == 0 {
					_ = r.Text()
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	cf := r.Counter("conc_total", "shared", "die")
	for i := 0; i < 4; i++ {
		total += cf.With(fmt.Sprintf("%d", i)).Value()
	}
	if total != 8*200 {
		t.Fatalf("lost increments: %d, want %d", total, 8*200)
	}
	if res := LintExposition([]byte(r.Text())); !res.Valid() {
		t.Fatalf("exposition invalid after concurrent use: %v", res.Problems)
	}
}

func TestLintExpositionAcceptsRegistryOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "help with \\ and \n inside", "die").With("0").Add(2)
	r.Gauge("b", "").With().Set(-3)
	h := r.Histogram("c_seconds", "lat", "region")
	h.With("hot").Observe(time.Millisecond)
	h.With("cold").Observe(time.Second)
	res := LintExposition([]byte(r.Text()))
	if !res.Valid() {
		t.Fatalf("registry output should lint clean: %v", res.Problems)
	}
	if res.Families["c_seconds"] != "histogram" || res.Families["a_total"] != "counter" {
		t.Fatalf("families = %v", res.Families)
	}
	if res.Samples == 0 {
		t.Fatal("no samples parsed")
	}
	if got := res.LabelValues("region"); len(got) != 2 {
		t.Fatalf("region values = %v", got)
	}
}

func TestLintExpositionCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{"no trailing newline", "# TYPE a counter\na 1", "end with a newline"},
		{"missing TYPE", "a 1\n", "no preceding TYPE"},
		{"bad type", "# TYPE a widget\n", "unknown metric type"},
		{"dup series", "# TYPE a counter\na 1\na 2\n", "duplicate sample"},
		{"bad value", "# TYPE a counter\na pony\n", "unparseable value"},
		{"bad name", "# TYPE a counter\n0a 1\n", "invalid metric name"},
		{"unquoted label", "# TYPE a counter\na{die=0} 1\n", "quoted"},
		{"bare histogram sample", "# TYPE h histogram\nh 1\n", "must be _bucket"},
		{
			"histogram missing +Inf",
			"# TYPE h histogram\nh_bucket{le=\"0.1\"} 1\nh_sum 0.1\nh_count 1\n",
			`missing le="+Inf"`,
		},
		{
			"histogram not cumulative",
			"# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_bucket{le=\"0.2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"not cumulative",
		},
		{
			"histogram count mismatch",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n",
			"!= _count",
		},
	}
	for _, tc := range cases {
		res := LintExposition([]byte(tc.text))
		found := false
		for _, p := range res.Problems {
			if strings.Contains(p, tc.want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: want a problem containing %q, got %v", tc.name, tc.want, res.Problems)
		}
	}
}

func TestLintAcceptsSpecialValues(t *testing.T) {
	text := "# TYPE g gauge\ng{k=\"v\"} +Inf\ng{k=\"w\"} NaN\ng{k=\"x\"} -Inf\ng{k=\"y\"} 1.5e-3 1700000000\n"
	res := LintExposition([]byte(text))
	if !res.Valid() {
		t.Fatalf("special values should parse: %v", res.Problems)
	}
	if res.Samples != 4 {
		t.Fatalf("samples = %d", res.Samples)
	}
}
