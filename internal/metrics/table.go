package metrics

import (
	"fmt"
	"strings"
)

// Table is a tiny helper for rendering aligned text tables; the benchmark
// harness uses it to print the paper's Figure 2 and Figure 3 layouts.
type Table struct {
	header []string
	rows   [][]string
	title  string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case int64:
			row[i] = FormatCount(v)
		case int:
			row[i] = FormatCount(int64(v))
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// FormatCount renders a count with thousands separators, matching the
// paper's "19,017,255" style.
func FormatCount(v int64) string {
	neg := v < 0
	if neg {
		v = -v
	}
	s := fmt.Sprintf("%d", v)
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// PercentDelta returns the relative change from base to v as a percentage
// (positive means v is larger).
func PercentDelta(base, v float64) float64 {
	if base == 0 {
		return 0
	}
	return (v - base) / base * 100
}
