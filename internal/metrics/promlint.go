package metrics

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// LintResult is the outcome of validating a Prometheus text exposition.
type LintResult struct {
	// Families maps each family name to its declared TYPE ("counter",
	// "gauge", "histogram", "summary", "untyped").
	Families map[string]string
	// Samples is the number of sample lines parsed.
	Samples int
	// Problems lists every format violation found (empty = valid).
	Problems []string

	labelValues map[string][]string
}

// Valid reports whether the exposition parsed without problems.
func (r LintResult) Valid() bool { return len(r.Problems) == 0 }

// LabelValues returns the distinct values seen for a label name across all
// samples, sorted.  Used by the CI scrape check to assert per-die/per-region
// labels are really populated.
func (r LintResult) LabelValues(label string) []string { return r.labelValues[label] }

// LintExposition validates Prometheus text exposition format (version 0.0.4)
// without any external tooling: HELP/TYPE comment syntax, metric and label
// name charsets, label value quoting/escaping, float sample values, sample
// lines appearing under a matching TYPE, histogram completeness (_bucket with
// le including +Inf, _sum, _count, cumulative non-decreasing buckets) and
// duplicate series detection.
func LintExposition(data []byte) LintResult {
	res := LintResult{
		Families:    make(map[string]string),
		labelValues: make(map[string][]string),
	}
	labelSeen := make(map[string]map[string]bool) // label name -> set of values
	seenSeries := make(map[string]bool)           // name+labels -> dup check
	helpSeen := make(map[string]bool)
	type histState struct {
		hasInf        bool
		hasSum        bool
		hasCount      bool
		lastLe        float64
		lastCum       float64
		series        string // label set (minus le) being accumulated
		infCount      float64
		countVal      float64
		countValSet   bool
		monotonicFail bool
	}
	hist := make(map[string]*histState) // family+labelset -> state

	problemf := func(line int, format string, args ...any) {
		res.Problems = append(res.Problems,
			fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	if len(data) > 0 && data[len(data)-1] != '\n' {
		res.Problems = append(res.Problems, "exposition must end with a newline")
	}

	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		ln := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "#")
			if !strings.HasPrefix(rest, " ") {
				problemf(ln, "comment must be '# HELP', '# TYPE' or a plain comment with a space: %q", line)
				continue
			}
			fields := strings.SplitN(strings.TrimPrefix(rest, " "), " ", 3)
			switch fields[0] {
			case "HELP":
				if len(fields) < 2 || !validMetricName(fields[1]) {
					problemf(ln, "malformed HELP line: %q", line)
					continue
				}
				if helpSeen[fields[1]] {
					problemf(ln, "duplicate HELP for %s", fields[1])
				}
				helpSeen[fields[1]] = true
			case "TYPE":
				if len(fields) != 3 || !validMetricName(fields[1]) {
					problemf(ln, "malformed TYPE line: %q", line)
					continue
				}
				switch fields[2] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					problemf(ln, "unknown metric type %q", fields[2])
					continue
				}
				if _, dup := res.Families[fields[1]]; dup {
					problemf(ln, "duplicate TYPE for %s", fields[1])
				}
				res.Families[fields[1]] = fields[2]
			}
			continue
		}

		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			problemf(ln, "%v", err)
			continue
		}
		res.Samples++
		for _, lp := range labels {
			set := labelSeen[lp.name]
			if set == nil {
				set = make(map[string]bool)
				labelSeen[lp.name] = set
			}
			set[lp.value] = true
		}

		// Resolve the family: histogram samples use suffixed names.
		family, isBucket, isSum, isCount := name, false, false, false
		if typ := res.Families[strings.TrimSuffix(name, "_bucket")]; typ == "histogram" && strings.HasSuffix(name, "_bucket") {
			family, isBucket = strings.TrimSuffix(name, "_bucket"), true
		} else if typ := res.Families[strings.TrimSuffix(name, "_sum")]; typ == "histogram" && strings.HasSuffix(name, "_sum") {
			family, isSum = strings.TrimSuffix(name, "_sum"), true
		} else if typ := res.Families[strings.TrimSuffix(name, "_count")]; typ == "histogram" && strings.HasSuffix(name, "_count") {
			family, isCount = strings.TrimSuffix(name, "_count"), true
		}
		typ, typed := res.Families[family]
		if !typed {
			problemf(ln, "sample %s has no preceding TYPE line", name)
		} else if typ == "histogram" && !isBucket && !isSum && !isCount {
			problemf(ln, "histogram %s sample must be _bucket, _sum or _count", family)
		}

		// Duplicate-series detection (le participates in bucket identity).
		sort.Slice(labels, func(a, b int) bool { return labels[a].name < labels[b].name })
		var sk strings.Builder
		sk.WriteString(name)
		var le string
		for _, lp := range labels {
			sk.WriteString("\x1f")
			sk.WriteString(lp.name)
			sk.WriteString("=")
			sk.WriteString(lp.value)
			if lp.name == "le" {
				le = lp.value
			}
		}
		if seenSeries[sk.String()] {
			problemf(ln, "duplicate sample for series %s", sk.String())
		}
		seenSeries[sk.String()] = true

		if typ == "histogram" {
			// Histogram-shape accounting per family+labelset (minus le).
			var hk strings.Builder
			hk.WriteString(family)
			for _, lp := range labels {
				if lp.name == "le" {
					continue
				}
				hk.WriteString("\x1f")
				hk.WriteString(lp.name)
				hk.WriteString("=")
				hk.WriteString(lp.value)
			}
			hs := hist[hk.String()]
			if hs == nil {
				hs = &histState{lastLe: -1, series: hk.String()}
				hist[hk.String()] = hs
			}
			switch {
			case isBucket:
				if le == "" {
					problemf(ln, "histogram bucket without le label: %s", line)
					break
				}
				if le == "+Inf" {
					hs.hasInf = true
					hs.infCount = value
					break
				}
				lef, err := strconv.ParseFloat(le, 64)
				if err != nil {
					problemf(ln, "unparseable le %q", le)
					break
				}
				if lef < hs.lastLe {
					problemf(ln, "histogram %s buckets out of order (le %g after %g)", family, lef, hs.lastLe)
				}
				if value < hs.lastCum {
					hs.monotonicFail = true
					problemf(ln, "histogram %s bucket counts not cumulative at le=%g", family, lef)
				}
				hs.lastLe, hs.lastCum = lef, value
			case isSum:
				hs.hasSum = true
			case isCount:
				hs.hasCount = true
				hs.countVal, hs.countValSet = value, true
			}
		}
	}

	// Post-pass: every histogram labelset must be complete and consistent.
	hkeys := make([]string, 0, len(hist))
	for k := range hist {
		hkeys = append(hkeys, k)
	}
	sort.Strings(hkeys)
	for _, k := range hkeys {
		hs := hist[k]
		pretty := strings.ReplaceAll(k, "\x1f", " ")
		if !hs.hasInf {
			res.Problems = append(res.Problems,
				fmt.Sprintf("histogram %s missing le=\"+Inf\" bucket", pretty))
		}
		if !hs.hasSum {
			res.Problems = append(res.Problems,
				fmt.Sprintf("histogram %s missing _sum", pretty))
		}
		if !hs.hasCount {
			res.Problems = append(res.Problems,
				fmt.Sprintf("histogram %s missing _count", pretty))
		}
		if hs.hasInf && hs.countValSet && hs.infCount != hs.countVal {
			res.Problems = append(res.Problems,
				fmt.Sprintf("histogram %s: +Inf bucket %g != _count %g", pretty, hs.infCount, hs.countVal))
		}
	}

	for name, set := range labelSeen {
		vals := make([]string, 0, len(set))
		for v := range set {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		res.labelValues[name] = vals
	}
	return res
}

type labelPair struct{ name, value string }

// parseSampleLine parses `name{k="v",...} value [timestamp]`.
func parseSampleLine(line string) (string, []labelPair, float64, error) {
	rest := line
	nameEnd := strings.IndexAny(rest, "{ ")
	if nameEnd < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample line %q", line)
	}
	name := rest[:nameEnd]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[nameEnd:]

	var labels []labelPair
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, " ")
			if rest == "" {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.Index(rest, "=")
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed label in %q", line)
			}
			lname := strings.TrimSpace(rest[:eq])
			if !validLabelName(lname) {
				return "", nil, 0, fmt.Errorf("invalid label name %q", lname)
			}
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				return "", nil, 0, fmt.Errorf("label value must be quoted in %q", line)
			}
			rest = rest[1:]
			var val strings.Builder
			closed := false
			for len(rest) > 0 {
				c := rest[0]
				if c == '\\' {
					if len(rest) < 2 {
						return "", nil, 0, fmt.Errorf("dangling escape in %q", line)
					}
					switch rest[1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return "", nil, 0, fmt.Errorf("invalid escape \\%c in %q", rest[1], line)
					}
					rest = rest[2:]
					continue
				}
				if c == '"' {
					rest = rest[1:]
					closed = true
					break
				}
				val.WriteByte(c)
				rest = rest[1:]
			}
			if !closed {
				return "", nil, 0, fmt.Errorf("unterminated label value in %q", line)
			}
			labels = append(labels, labelPair{lname, val.String()})
			if len(rest) > 0 && rest[0] == ',' {
				rest = rest[1:]
			}
		}
	}

	rest = strings.TrimLeft(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("expected value (and optional timestamp) in %q", line)
	}
	v, err := parsePromFloat(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparseable value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("unparseable timestamp %q", fields[1])
		}
	}
	return name, labels, v, nil
}

// parsePromFloat accepts Go float syntax plus the exposition spellings of
// special values (+Inf, -Inf, NaN).
func parsePromFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN", "nan":
		return strconv.ParseFloat("NaN", 64)
	}
	return strconv.ParseFloat(s, 64)
}
