package btree

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"noftl/internal/buffer"
	"noftl/internal/core"
	"noftl/internal/flash"
	"noftl/internal/sim"
	"noftl/internal/storage"
)

func testTree(t *testing.T, frames int, pageSize int) (*Tree, *core.Manager, *buffer.Pool) {
	t.Helper()
	cfg := flash.DefaultConfig()
	cfg.Geometry = flash.Geometry{
		Channels: 2, DiesPerChannel: 2, PlanesPerDie: 1,
		BlocksPerDie: 256, PagesPerBlock: 32, PageSize: pageSize,
	}
	dev, err := flash.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mgr := core.NewManager(dev, core.DefaultOptions())
	pool := buffer.New(mgr, frames, pageSize, nil)
	ts := storage.NewTablespace("tsIdx", core.DefaultRegionID, 16, mgr)
	tree, _, err := New(0, "IDX", 5, ts, pool)
	if err != nil {
		t.Fatal(err)
	}
	return tree, mgr, pool
}

func TestTreeBasicInsertGet(t *testing.T) {
	tree, _, _ := testTree(t, 64, 512)
	if tree.Name() != "IDX" || tree.ObjectID() != 5 {
		t.Fatal("identity wrong")
	}
	now := sim.Time(0)
	for i := 0; i < 100; i++ {
		done, err := tree.Insert(now, Key(uint32(i)), []byte(fmt.Sprintf("v%03d", i)))
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		now = done
	}
	if tree.Entries() != 100 {
		t.Fatalf("entries = %d", tree.Entries())
	}
	for i := 0; i < 100; i++ {
		v, done, found, err := tree.Get(now, Key(uint32(i)))
		if err != nil || !found {
			t.Fatalf("get %d: found=%v err=%v", i, found, err)
		}
		now = done
		if string(v) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("get %d = %q", i, v)
		}
	}
	// Missing key.
	if _, _, found, err := tree.Get(now, Key(12345)); err != nil || found {
		t.Fatalf("missing key: found=%v err=%v", found, err)
	}
	// Upsert replaces.
	if _, err := tree.Insert(now, Key(7), []byte("NEW")); err != nil {
		t.Fatal(err)
	}
	if tree.Entries() != 100 {
		t.Fatalf("upsert changed entry count: %d", tree.Entries())
	}
	v, _, _, _ := tree.Get(now, Key(7))
	if string(v) != "NEW" {
		t.Fatalf("upsert lost: %q", v)
	}
	// Upsert with a different value size.
	if _, err := tree.Insert(now, Key(7), []byte("an even longer replacement value")); err != nil {
		t.Fatal(err)
	}
	v, _, _, _ = tree.Get(now, Key(7))
	if string(v) != "an even longer replacement value" {
		t.Fatalf("resize upsert lost: %q", v)
	}
}

func TestTreeSplitsGrowHeight(t *testing.T) {
	tree, _, _ := testTree(t, 128, 512)
	now := sim.Time(0)
	const n = 2000
	for i := 0; i < n; i++ {
		done, err := tree.Insert(now, Key(uint32(i)), storage.RID{LPN: uint64(i), Slot: uint16(i % 100)}.Encode())
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		now = done
	}
	if tree.Height() < 2 {
		t.Fatalf("tree never split: height=%d pages=%d", tree.Height(), tree.Pages())
	}
	if tree.Pages() < 10 {
		t.Fatalf("too few pages: %d", tree.Pages())
	}
	// Every key still retrievable after splits.
	for i := 0; i < n; i++ {
		v, done, found, err := tree.Get(now, Key(uint32(i)))
		if err != nil || !found {
			t.Fatalf("get %d after splits: %v", i, err)
		}
		now = done
		rid, err := storage.DecodeRID(v)
		if err != nil || rid.LPN != uint64(i) {
			t.Fatalf("value %d corrupted: %+v", i, rid)
		}
	}
}

func TestTreeRandomOrderInsert(t *testing.T) {
	tree, _, _ := testTree(t, 128, 512)
	r := sim.NewRand(99)
	perm := r.Perm(3000)
	now := sim.Time(0)
	for _, k := range perm {
		done, err := tree.Insert(now, Key(uint32(k)), Key(uint32(k)))
		if err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		now = done
	}
	// Full scan returns every key exactly once, in order.
	var keys []uint32
	if _, err := tree.Scan(now, nil, nil, func(k, v []byte) bool {
		keys = append(keys, uint32(k[0])<<24|uint32(k[1])<<16|uint32(k[2])<<8|uint32(k[3]))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3000 {
		t.Fatalf("scan saw %d keys", len(keys))
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("scan not sorted")
	}
	for i, k := range keys {
		if int(k) != i {
			t.Fatalf("missing/duplicate key at %d: %d", i, k)
		}
	}
}

func TestTreeDelete(t *testing.T) {
	tree, _, _ := testTree(t, 64, 512)
	now := sim.Time(0)
	for i := 0; i < 500; i++ {
		done, err := tree.Insert(now, Key(uint32(i)), []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	for i := 0; i < 500; i += 2 {
		done, err := tree.Delete(now, Key(uint32(i)))
		if err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		now = done
	}
	if tree.Entries() != 250 {
		t.Fatalf("entries after delete = %d", tree.Entries())
	}
	for i := 0; i < 500; i++ {
		_, done, found, err := tree.Get(now, Key(uint32(i)))
		if err != nil {
			t.Fatal(err)
		}
		now = done
		if (i%2 == 0) == found {
			t.Fatalf("key %d: found=%v", i, found)
		}
	}
	if _, err := tree.Delete(now, Key(99999)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing: %v", err)
	}
	// Deleted keys can be reinserted.
	if _, err := tree.Insert(now, Key(0), []byte("back")); err != nil {
		t.Fatal(err)
	}
	v, _, found, _ := tree.Get(now, Key(0))
	if !found || string(v) != "back" {
		t.Fatalf("reinsert lost: %q", v)
	}
}

func TestTreeRangeAndPrefixScan(t *testing.T) {
	tree, _, _ := testTree(t, 64, 512)
	now := sim.Time(0)
	// Composite keys (w, d, o): 3 warehouses x 4 districts x 20 orders.
	for w := uint32(1); w <= 3; w++ {
		for d := uint32(1); d <= 4; d++ {
			for o := uint32(1); o <= 20; o++ {
				done, err := tree.Insert(now, Key(w, d, o), Key(o))
				if err != nil {
					t.Fatal(err)
				}
				now = done
			}
		}
	}
	// Range scan [w=2,d=3,o=5 .. w=2,d=3,o=15)
	var got []uint32
	if _, err := tree.Scan(now, Key(2, 3, 5), Key(2, 3, 15), func(k, v []byte) bool {
		got = append(got, uint32(v[3]))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != 5 || got[9] != 14 {
		t.Fatalf("range scan = %v", got)
	}
	// Prefix scan of one district sees exactly its 20 orders.
	count := 0
	if _, err := tree.ScanPrefix(now, Key(2, 3), func(k, v []byte) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 20 {
		t.Fatalf("prefix scan saw %d", count)
	}
	// Early stop.
	count = 0
	if _, err := tree.Scan(now, nil, nil, func(k, v []byte) bool {
		count++
		return count < 5
	}); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("early stop at %d", count)
	}
	// Scan starting beyond the last key is empty.
	count = 0
	if _, err := tree.Scan(now, Key(9, 9, 9), nil, func(k, v []byte) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("scan past end saw %d", count)
	}
}

func TestTreeSurvivesEviction(t *testing.T) {
	// 8 frames only: index pages constantly round-trip through flash.
	tree, mgr, pool := testTree(t, 8, 512)
	now := sim.Time(0)
	const n = 1500
	for i := 0; i < n; i++ {
		done, err := tree.Insert(now, Key(uint32(i)), Key(uint32(i*7)))
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		now = done
	}
	if _, err := pool.FlushAll(now); err != nil {
		t.Fatal(err)
	}
	if mgr.Stats().HostWrites == 0 {
		t.Fatal("index pages never reached flash")
	}
	for i := 0; i < n; i++ {
		v, done, found, err := tree.Get(now, Key(uint32(i)))
		if err != nil || !found {
			t.Fatalf("get %d: %v found=%v", i, err, found)
		}
		now = done
		if !bytes.Equal(v, Key(uint32(i*7))) {
			t.Fatalf("value %d corrupted", i)
		}
	}
}

func TestTreeKeyTooLarge(t *testing.T) {
	tree, _, _ := testTree(t, 16, 512)
	big := make([]byte, 400)
	if _, err := tree.Insert(0, big, []byte("v")); !errors.Is(err, ErrKeyTooLarge) {
		t.Fatalf("want ErrKeyTooLarge, got %v", err)
	}
}

func TestKeyBuilderOrderPreserving(t *testing.T) {
	a := NewKeyBuilder().AddUint32(1).AddString("SMITH").AddUint64(42).Bytes()
	b := NewKeyBuilder().AddUint32(1).AddString("SMITH").AddUint64(43).Bytes()
	c := NewKeyBuilder().AddUint32(1).AddString("SMYTH").AddUint64(1).Bytes()
	d := NewKeyBuilder().AddUint32(2).AddString("AAAA").AddUint64(1).Bytes()
	if !(bytes.Compare(a, b) < 0 && bytes.Compare(b, c) < 0 && bytes.Compare(c, d) < 0) {
		t.Fatal("composite keys not order preserving")
	}
	if len(Key(1, 2, 3)) != 12 {
		t.Fatalf("Key length = %d", len(Key(1, 2, 3)))
	}
}

func TestPrefixEnd(t *testing.T) {
	if got := prefixEnd([]byte{1, 2, 3}); !bytes.Equal(got, []byte{1, 2, 4}) {
		t.Fatalf("prefixEnd = %v", got)
	}
	if got := prefixEnd([]byte{1, 0xFF}); !bytes.Equal(got, []byte{2}) {
		t.Fatalf("prefixEnd with trailing FF = %v", got)
	}
	if got := prefixEnd([]byte{0xFF, 0xFF}); got != nil {
		t.Fatalf("prefixEnd all-FF = %v", got)
	}
}

// Property: the tree behaves like a sorted map under random upserts and
// deletes; a full scan returns exactly the surviving keys in sorted order.
func TestTreeMatchesMapProperty(t *testing.T) {
	f := func(ops []uint16, deletes []uint16) bool {
		cfg := flash.DefaultConfig()
		cfg.Geometry = flash.Geometry{
			Channels: 1, DiesPerChannel: 2, PlanesPerDie: 1,
			BlocksPerDie: 128, PagesPerBlock: 32, PageSize: 512,
		}
		dev, err := flash.NewDevice(cfg)
		if err != nil {
			return false
		}
		mgr := core.NewManager(dev, core.DefaultOptions())
		pool := buffer.New(mgr, 32, 512, nil)
		ts := storage.NewTablespace("ts", core.DefaultRegionID, 16, mgr)
		tree, _, err := New(0, "P", 1, ts, pool)
		if err != nil {
			return false
		}
		model := map[uint32][]byte{}
		now := sim.Time(0)
		for i, op := range ops {
			k := uint32(op) % 512
			v := Key(uint32(i))
			done, err := tree.Insert(now, Key(k), v)
			if err != nil {
				return false
			}
			now = done
			model[k] = v
		}
		for _, d := range deletes {
			k := uint32(d) % 512
			if _, ok := model[k]; !ok {
				continue
			}
			done, err := tree.Delete(now, Key(k))
			if err != nil {
				return false
			}
			now = done
			delete(model, k)
		}
		if tree.Entries() != int64(len(model)) {
			return false
		}
		var prev []byte
		count := 0
		_, err = tree.Scan(now, nil, nil, func(k, v []byte) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				count = -1 << 30
				return false
			}
			prev = append(prev[:0], k...)
			kk := uint32(k[0])<<24 | uint32(k[1])<<16 | uint32(k[2])<<8 | uint32(k[3])
			want, ok := model[kk]
			if !ok || !bytes.Equal(want, v) {
				count = -1 << 30
				return false
			}
			count++
			return true
		})
		if err != nil {
			return false
		}
		return count == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
