// Package btree implements a B+-tree index stored in slotted buffer-pool
// pages, the secondary-index structure used by the TPC-C schema of the
// reproduction.
//
// Keys are arbitrary byte strings compared lexicographically (use KeyBuilder
// to build order-preserving composite keys); values are small byte strings
// (record identifiers).  Leaf nodes are chained left-to-right for range
// scans.  Deletes remove entries without rebalancing (nodes may underflow;
// space is reclaimed when the node is compacted or split), which is a
// standard simplification for workload studies and is documented in
// DESIGN.md.
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"noftl/internal/buffer"
	"noftl/internal/core"
	"noftl/internal/sim"
	"noftl/internal/storage"
)

// Errors returned by the tree.
var (
	// ErrKeyTooLarge reports a key+value pair that cannot fit into a node.
	ErrKeyTooLarge = errors.New("btree: key/value too large for a node")
	// ErrNotFound reports a missing key on Get or Delete.
	ErrNotFound = errors.New("btree: key not found")
)

// Node layout constants (within a storage slotted-page buffer, after the
// common page header).
const (
	nodeHdrOff   = storage.PageHeaderSize
	offFlags     = nodeHdrOff + 0
	offNumKeys   = nodeHdrOff + 2
	offRight     = nodeHdrOff + 4  // leaf: right sibling LPN; internal: rightmost child LPN
	offCellEnd   = nodeHdrOff + 12 // lowest byte used by cell data
	nodeHdrSize  = 16
	offsArrayOff = nodeHdrOff + nodeHdrSize
	flagLeaf     = 1
)

// Tree is a B+-tree.  All operations are safe for concurrent use; a single
// tree-level mutex serializes structural access (page-level latching is used
// underneath for interaction with the flusher).
type Tree struct {
	mu       sync.Mutex
	name     string
	objectID uint32
	ts       *storage.Tablespace
	pool     *buffer.Pool
	root     core.LPN
	height   int
	entries  int64
	pages    int64
	lpns     []core.LPN // every page ever allocated to the tree, in order
}

// allocPage allocates a page from the tablespace and remembers it in the
// tree's page list (used by DROP INDEX to trim the tree's pages on flash).
// Caller holds t.mu (or is constructing the tree).
func (t *Tree) allocPage() core.LPN {
	lpn := t.ts.AllocatePage()
	t.lpns = append(t.lpns, lpn)
	return lpn
}

// PageList returns a copy of every page allocated to the tree.
func (t *Tree) PageList() []core.LPN {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]core.LPN, len(t.lpns))
	copy(out, t.lpns)
	return out
}

// New creates an empty tree for the object in the tablespace.  The root leaf
// page is allocated immediately.
func New(now sim.Time, name string, objectID uint32, ts *storage.Tablespace, pool *buffer.Pool) (*Tree, sim.Time, error) {
	t := &Tree{name: name, objectID: objectID, ts: ts, pool: pool, height: 1}
	lpn := t.allocPage()
	h, done, err := pool.NewPage(now, lpn, t.hint())
	if err != nil {
		return nil, done, err
	}
	h.Lock()
	initNode(h.Data(), objectID, uint64(lpn), true)
	h.Unlock()
	h.MarkDirty()
	h.Release()
	t.root = lpn
	t.pages = 1
	return t, done, nil
}

// Name returns the index name.
func (t *Tree) Name() string { return t.name }

// ObjectID returns the owning object id.
func (t *Tree) ObjectID() uint32 { return t.objectID }

// Entries returns the number of key/value pairs in the tree.
func (t *Tree) Entries() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.entries
}

// Pages returns the number of pages allocated to the tree.
func (t *Tree) Pages() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pages
}

// Height returns the current tree height (1 = a single leaf).
func (t *Tree) Height() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.height
}

func (t *Tree) hint() core.Hint {
	return t.ts.Hint(t.objectID, 0)
}

// ---- node accessors (operate on the raw page buffer) ----

func initNode(buf []byte, objectID uint32, lpn uint64, leaf bool) {
	pt := storage.PageTypeBTreeNode
	if leaf {
		pt = storage.PageTypeBTreeLeaf
	}
	storage.InitPage(buf, pt, objectID, lpn)
	var flags uint16
	if leaf {
		flags = flagLeaf
	}
	binary.LittleEndian.PutUint16(buf[offFlags:], flags)
	binary.LittleEndian.PutUint16(buf[offNumKeys:], 0)
	binary.LittleEndian.PutUint64(buf[offRight:], 0)
	binary.LittleEndian.PutUint16(buf[offCellEnd:], uint16(len(buf)))
}

func nodeIsLeaf(buf []byte) bool {
	return binary.LittleEndian.Uint16(buf[offFlags:])&flagLeaf != 0
}

func nodeNumKeys(buf []byte) int {
	return int(binary.LittleEndian.Uint16(buf[offNumKeys:]))
}

func setNodeNumKeys(buf []byte, n int) {
	binary.LittleEndian.PutUint16(buf[offNumKeys:], uint16(n))
}

func nodeRight(buf []byte) uint64 {
	return binary.LittleEndian.Uint64(buf[offRight:])
}

func setNodeRight(buf []byte, v uint64) {
	binary.LittleEndian.PutUint64(buf[offRight:], v)
}

func cellEnd(buf []byte) int {
	return int(binary.LittleEndian.Uint16(buf[offCellEnd:]))
}

func setCellEnd(buf []byte, v int) {
	binary.LittleEndian.PutUint16(buf[offCellEnd:], uint16(v))
}

func offsPos(i int) int { return offsArrayOff + 2*i }

func cellOffset(buf []byte, i int) int {
	return int(binary.LittleEndian.Uint16(buf[offsPos(i):]))
}

func setCellOffset(buf []byte, i, off int) {
	binary.LittleEndian.PutUint16(buf[offsPos(i):], uint16(off))
}

// cellAt returns the key and value of entry i.
func cellAt(buf []byte, i int) (key, val []byte) {
	off := cellOffset(buf, i)
	klen := int(binary.LittleEndian.Uint16(buf[off:]))
	vlen := int(binary.LittleEndian.Uint16(buf[off+2:]))
	key = buf[off+4 : off+4+klen]
	val = buf[off+4+klen : off+4+klen+vlen]
	return key, val
}

// freeBytes returns the contiguous free space between the offsets array and
// the cell area.
func freeBytes(buf []byte) int {
	return cellEnd(buf) - (offsArrayOff + 2*nodeNumKeys(buf))
}

// liveBytes returns the bytes occupied by live cells plus their offset
// entries.
func liveBytes(buf []byte) int {
	total := 0
	for i := 0; i < nodeNumKeys(buf); i++ {
		off := cellOffset(buf, i)
		klen := int(binary.LittleEndian.Uint16(buf[off:]))
		vlen := int(binary.LittleEndian.Uint16(buf[off+2:]))
		total += 4 + klen + vlen + 2
	}
	return total
}

// search returns the index of the first entry whose key is >= key, and
// whether an exact match exists at that index.
func search(buf []byte, key []byte) (int, bool) {
	lo, hi := 0, nodeNumKeys(buf)
	found := false
	for lo < hi {
		mid := (lo + hi) / 2
		k, _ := cellAt(buf, mid)
		switch bytes.Compare(k, key) {
		case -1:
			lo = mid + 1
		case 0:
			hi = mid
			found = true
		case 1:
			hi = mid
		}
	}
	return lo, found
}

// searchUpper returns the index of the first entry whose key is strictly
// greater than key (upper bound).  Internal nodes route with it: the entry
// (K, C) at that index is the child covering all keys < K.
func searchUpper(buf []byte, key []byte) int {
	lo, hi := 0, nodeNumKeys(buf)
	for lo < hi {
		mid := (lo + hi) / 2
		k, _ := cellAt(buf, mid)
		if bytes.Compare(k, key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// insertCell inserts key/val at position i, assuming it fits.
func insertCell(buf []byte, i int, key, val []byte) {
	n := nodeNumKeys(buf)
	need := 4 + len(key) + len(val)
	newEnd := cellEnd(buf) - need
	binary.LittleEndian.PutUint16(buf[newEnd:], uint16(len(key)))
	binary.LittleEndian.PutUint16(buf[newEnd+2:], uint16(len(val)))
	copy(buf[newEnd+4:], key)
	copy(buf[newEnd+4+len(key):], val)
	setCellEnd(buf, newEnd)
	// Shift the offsets array right of position i.
	copy(buf[offsPos(i+1):offsPos(n+1)], buf[offsPos(i):offsPos(n)])
	setCellOffset(buf, i, newEnd)
	setNodeNumKeys(buf, n+1)
}

// removeCell removes entry i (the cell bytes are leaked until compaction).
func removeCell(buf []byte, i int) {
	n := nodeNumKeys(buf)
	copy(buf[offsPos(i):offsPos(n-1)], buf[offsPos(i+1):offsPos(n)])
	setNodeNumKeys(buf, n-1)
}

// replaceCellValue overwrites the value of entry i when the new value has
// the same length; otherwise it removes and reinserts the cell.
func replaceCellValue(buf []byte, i int, key, val []byte) bool {
	off := cellOffset(buf, i)
	klen := int(binary.LittleEndian.Uint16(buf[off:]))
	vlen := int(binary.LittleEndian.Uint16(buf[off+2:]))
	if vlen == len(val) {
		copy(buf[off+4+klen:], val)
		return true
	}
	removeCell(buf, i)
	if freeBytes(buf) < 4+len(key)+len(val)+2 {
		compactNode(buf)
	}
	if freeBytes(buf) < 4+len(key)+len(val)+2 {
		return false
	}
	pos, _ := search(buf, key)
	insertCell(buf, pos, key, val)
	return true
}

// compactNode rewrites the cell area dropping leaked space.
func compactNode(buf []byte) {
	n := nodeNumKeys(buf)
	type kv struct{ k, v []byte }
	cells := make([]kv, n)
	for i := 0; i < n; i++ {
		k, v := cellAt(buf, i)
		ck := make([]byte, len(k))
		copy(ck, k)
		cv := make([]byte, len(v))
		copy(cv, v)
		cells[i] = kv{ck, cv}
	}
	end := len(buf)
	for i := n - 1; i >= 0; i-- {
		need := 4 + len(cells[i].k) + len(cells[i].v)
		end -= need
		binary.LittleEndian.PutUint16(buf[end:], uint16(len(cells[i].k)))
		binary.LittleEndian.PutUint16(buf[end+2:], uint16(len(cells[i].v)))
		copy(buf[end+4:], cells[i].k)
		copy(buf[end+4+len(cells[i].k):], cells[i].v)
		setCellOffset(buf, i, end)
	}
	setCellEnd(buf, end)
}

// childLPN decodes an internal-node value into a child page number.
func childLPN(val []byte) core.LPN {
	return core.LPN(binary.LittleEndian.Uint64(val))
}

func encodeChild(lpn core.LPN) []byte {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, uint64(lpn))
	return out
}

// ---- tree operations ----

// Get returns the value stored under key.
func (t *Tree) Get(now sim.Time, key []byte) ([]byte, sim.Time, bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	lpn := t.root
	for {
		h, done, err := t.pool.Fetch(now, lpn, t.hint())
		if err != nil {
			return nil, done, false, err
		}
		now = done
		h.RLock()
		buf := h.Data()
		if nodeIsLeaf(buf) {
			i, found := search(buf, key)
			var out []byte
			if found {
				_, v := cellAt(buf, i)
				out = make([]byte, len(v))
				copy(out, v)
			}
			h.RUnlock()
			h.Release()
			return out, now, found, nil
		}
		lpn = t.descend(buf, key)
		h.RUnlock()
		h.Release()
	}
}

// descend picks the child to follow for key in an internal node.  Each
// entry (K, C) routes keys strictly below K to C; the rightmost pointer
// covers everything at or above the last separator.
func (t *Tree) descend(buf []byte, key []byte) core.LPN {
	i := searchUpper(buf, key)
	if i < nodeNumKeys(buf) {
		_, v := cellAt(buf, i)
		return childLPN(v)
	}
	return core.LPN(nodeRight(buf))
}

// Insert stores value under key, replacing any previous value (upsert).
func (t *Tree) Insert(now sim.Time, key, value []byte) (sim.Time, error) {
	if len(key)+len(value)+4 > t.pool.PageSize()/4 {
		return now, fmt.Errorf("%w: %d bytes", ErrKeyTooLarge, len(key)+len(value))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sep, newChild, done, replaced, err := t.insertInto(now, t.root, key, value)
	if err != nil {
		return done, err
	}
	now = done
	if !replaced {
		t.entries++
	}
	if newChild != 0 {
		// Root split: create a new root with two children.
		newRootLPN := t.allocPage()
		h, d, err := t.pool.NewPage(now, newRootLPN, t.hint())
		if err != nil {
			return d, err
		}
		now = d
		h.Lock()
		buf := h.Data()
		initNode(buf, t.objectID, uint64(newRootLPN), false)
		insertCell(buf, 0, sep, encodeChild(t.root))
		setNodeRight(buf, uint64(newChild))
		h.Unlock()
		h.MarkDirty()
		h.Release()
		t.root = newRootLPN
		t.height++
		t.pages++
	}
	return now, nil
}

// insertInto inserts into the subtree rooted at lpn.  When the node splits it
// returns the separator key and the new right sibling's LPN.
func (t *Tree) insertInto(now sim.Time, lpn core.LPN, key, value []byte) (sep []byte, newChild core.LPN, done sim.Time, replaced bool, err error) {
	h, done, err := t.pool.Fetch(now, lpn, t.hint())
	if err != nil {
		return nil, 0, done, false, err
	}
	now = done
	h.Lock()
	buf := h.Data()

	if nodeIsLeaf(buf) {
		i, found := search(buf, key)
		if found {
			if replaceCellValue(buf, i, key, value) {
				h.Unlock()
				h.MarkDirty()
				h.Release()
				return nil, 0, now, true, nil
			}
			// fall through to split handling below by reinserting
		}
		need := 4 + len(key) + len(value) + 2
		if freeBytes(buf) < need && liveBytes(buf)+need <= len(buf)-offsArrayOff {
			compactNode(buf)
		}
		if freeBytes(buf) >= need {
			pos, _ := search(buf, key)
			insertCell(buf, pos, key, value)
			h.Unlock()
			h.MarkDirty()
			h.Release()
			return nil, 0, now, found, nil
		}
		// Split the leaf.
		sep, newChild, now, err = t.splitLeaf(now, h, buf, key, value)
		h.Release()
		return sep, newChild, now, found, err
	}

	child := t.descend(buf, key)
	h.Unlock()
	childSep, childNew, now, replaced, err := t.insertInto(now, child, key, value)
	if err != nil {
		h.Release()
		return nil, 0, now, replaced, err
	}
	if childNew == 0 {
		h.Release()
		return nil, 0, now, replaced, nil
	}
	// Insert the separator for the new child into this node.
	h.Lock()
	buf = h.Data()
	need := 4 + len(childSep) + 8 + 2
	if freeBytes(buf) < need && liveBytes(buf)+need <= len(buf)-offsArrayOff {
		compactNode(buf)
	}
	if freeBytes(buf) >= need {
		pos := searchUpper(buf, childSep)
		// The new entry (childSep, child) routes keys below the separator to
		// the old child; whatever pointer used to cover that range (the
		// entry at pos, or the rightmost pointer) now routes to the new
		// right sibling.
		if pos < nodeNumKeys(buf) {
			replaceCellValue(buf, pos, childSep2(buf, pos), encodeChild(childNew))
			insertCell(buf, pos, childSep, encodeChild(child))
		} else {
			insertCell(buf, pos, childSep, encodeChild(child))
			setNodeRight(buf, uint64(childNew))
		}
		h.Unlock()
		h.MarkDirty()
		h.Release()
		return nil, 0, now, replaced, nil
	}
	// Split this internal node.
	sep, newChild, now, err = t.splitInternal(now, h, buf, childSep, child, childNew)
	h.Release()
	return sep, newChild, now, replaced, err
}

// childSep2 returns the key of entry pos (helper to get a stable slice after
// potential compaction inside replaceCellValue).
func childSep2(buf []byte, pos int) []byte {
	k, _ := cellAt(buf, pos)
	out := make([]byte, len(k))
	copy(out, k)
	return out
}

// splitLeaf splits a full leaf (held locked by h) and inserts key/value into
// the correct half.  It returns the separator (first key of the right node)
// and the right node's LPN.  The caller releases h.
func (t *Tree) splitLeaf(now sim.Time, h *buffer.Handle, buf []byte, key, value []byte) ([]byte, core.LPN, sim.Time, error) {
	n := nodeNumKeys(buf)
	type kv struct{ k, v []byte }
	all := make([]kv, 0, n+1)
	for i := 0; i < n; i++ {
		k, v := cellAt(buf, i)
		ck := append([]byte(nil), k...)
		cv := append([]byte(nil), v...)
		all = append(all, kv{ck, cv})
	}
	pos, _ := search(buf, key)
	all = append(all, kv{})
	copy(all[pos+1:], all[pos:])
	all[pos] = kv{append([]byte(nil), key...), append([]byte(nil), value...)}

	mid := len(all) / 2
	rightLPN := t.allocPage()
	rh, done, err := t.pool.NewPage(now, rightLPN, t.hint())
	if err != nil {
		h.Unlock()
		return nil, 0, done, err
	}
	now = done
	rh.Lock()
	rbuf := rh.Data()
	initNode(rbuf, t.objectID, uint64(rightLPN), true)
	for i, e := range all[mid:] {
		insertCell(rbuf, i, e.k, e.v)
	}
	setNodeRight(rbuf, nodeRight(buf))
	rh.Unlock()
	rh.MarkDirty()
	rh.Release()

	// Rebuild the left node with the lower half.
	lpnSelf := storage.PageLPN(buf)
	objID := storage.PageObjectID(buf)
	initNode(buf, objID, lpnSelf, true)
	for i, e := range all[:mid] {
		insertCell(buf, i, e.k, e.v)
	}
	setNodeRight(buf, uint64(rightLPN))
	h.Unlock()
	h.MarkDirty()

	t.pages++
	sep := append([]byte(nil), all[mid].k...)
	return sep, rightLPN, now, nil
}

// splitInternal splits a full internal node (held locked by h) while adding
// the separator childSep for oldChild/newChild.  It returns the separator to
// push up and the new right node's LPN.  The caller releases h.
func (t *Tree) splitInternal(now sim.Time, h *buffer.Handle, buf []byte, childSep []byte, oldChild, newChild core.LPN) ([]byte, core.LPN, sim.Time, error) {
	n := nodeNumKeys(buf)
	type kv struct {
		k []byte
		c core.LPN
	}
	all := make([]kv, 0, n+1)
	for i := 0; i < n; i++ {
		k, v := cellAt(buf, i)
		all = append(all, kv{append([]byte(nil), k...), childLPN(v)})
	}
	rightmost := core.LPN(nodeRight(buf))

	// Insert the new separator: it routes keys < childSep to oldChild, and
	// the entry (or rightmost pointer) that previously pointed at oldChild
	// must now point at newChild.
	pos := searchUpper(buf, childSep)
	all = append(all, kv{})
	copy(all[pos+1:], all[pos:])
	all[pos] = kv{append([]byte(nil), childSep...), oldChild}
	if pos+1 < len(all) {
		all[pos+1].c = newChild
	} else {
		rightmost = newChild
	}

	mid := len(all) / 2
	pushUp := all[mid]

	rightLPN := t.allocPage()
	rh, done, err := t.pool.NewPage(now, rightLPN, t.hint())
	if err != nil {
		h.Unlock()
		return nil, 0, done, err
	}
	now = done
	rh.Lock()
	rbuf := rh.Data()
	initNode(rbuf, t.objectID, uint64(rightLPN), false)
	for i, e := range all[mid+1:] {
		insertCell(rbuf, i, e.k, encodeChild(e.c))
	}
	setNodeRight(rbuf, uint64(rightmost))
	rh.Unlock()
	rh.MarkDirty()
	rh.Release()

	lpnSelf := storage.PageLPN(buf)
	objID := storage.PageObjectID(buf)
	initNode(buf, objID, lpnSelf, false)
	for i, e := range all[:mid] {
		insertCell(buf, i, e.k, encodeChild(e.c))
	}
	setNodeRight(buf, uint64(pushUp.c))
	h.Unlock()
	h.MarkDirty()

	t.pages++
	return pushUp.k, rightLPN, now, nil
}

// Delete removes key from the tree.
func (t *Tree) Delete(now sim.Time, key []byte) (sim.Time, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	lpn := t.root
	for {
		h, done, err := t.pool.Fetch(now, lpn, t.hint())
		if err != nil {
			return done, err
		}
		now = done
		h.Lock()
		buf := h.Data()
		if nodeIsLeaf(buf) {
			i, found := search(buf, key)
			if !found {
				h.Unlock()
				h.Release()
				return now, fmt.Errorf("%w: delete", ErrNotFound)
			}
			removeCell(buf, i)
			h.Unlock()
			h.MarkDirty()
			h.Release()
			t.entries--
			return now, nil
		}
		next := t.descend(buf, key)
		h.Unlock()
		h.Release()
		lpn = next
	}
}

// Scan iterates over all entries with startKey <= key < endKey in ascending
// order (a nil endKey means "until the end of the index").  fn returning
// false stops the scan.
func (t *Tree) Scan(now sim.Time, startKey, endKey []byte, fn func(key, value []byte) bool) (sim.Time, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Descend to the leaf containing startKey.
	lpn := t.root
	for {
		h, done, err := t.pool.Fetch(now, lpn, t.hint())
		if err != nil {
			return done, err
		}
		now = done
		h.RLock()
		buf := h.Data()
		if nodeIsLeaf(buf) {
			h.RUnlock()
			h.Release()
			break
		}
		next := t.descend(buf, startKey)
		h.RUnlock()
		h.Release()
		lpn = next
	}
	// Walk the leaf chain.
	for lpn != 0 {
		h, done, err := t.pool.Fetch(now, lpn, t.hint())
		if err != nil {
			return done, err
		}
		now = done
		h.RLock()
		buf := h.Data()
		n := nodeNumKeys(buf)
		i, _ := search(buf, startKey)
		stop := false
		for ; i < n; i++ {
			k, v := cellAt(buf, i)
			if endKey != nil && bytes.Compare(k, endKey) >= 0 {
				stop = true
				break
			}
			ck := append([]byte(nil), k...)
			cv := append([]byte(nil), v...)
			if !fn(ck, cv) {
				stop = true
				break
			}
		}
		next := core.LPN(nodeRight(buf))
		h.RUnlock()
		h.Release()
		if stop {
			return now, nil
		}
		lpn = next
		// After the first leaf every key qualifies, so scan from the start.
		startKey = nil
	}
	return now, nil
}

// ScanPrefix iterates over all entries whose key starts with prefix.
func (t *Tree) ScanPrefix(now sim.Time, prefix []byte, fn func(key, value []byte) bool) (sim.Time, error) {
	end := prefixEnd(prefix)
	return t.Scan(now, prefix, end, fn)
}

// prefixEnd returns the smallest key greater than every key with the given
// prefix, or nil if no such key exists (all 0xFF).
func prefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}

// KeyBuilder builds order-preserving composite keys out of integers and
// strings (big-endian integers, strings terminated with a 0 byte).
type KeyBuilder struct {
	buf []byte
}

// NewKeyBuilder returns an empty builder.
func NewKeyBuilder() *KeyBuilder { return &KeyBuilder{} }

// AddUint32 appends a 32-bit component.
func (k *KeyBuilder) AddUint32(v uint32) *KeyBuilder {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	k.buf = append(k.buf, b[:]...)
	return k
}

// AddUint64 appends a 64-bit component.
func (k *KeyBuilder) AddUint64(v uint64) *KeyBuilder {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	k.buf = append(k.buf, b[:]...)
	return k
}

// AddString appends a string component terminated by a zero byte.
func (k *KeyBuilder) AddString(s string) *KeyBuilder {
	k.buf = append(k.buf, s...)
	k.buf = append(k.buf, 0)
	return k
}

// Bytes returns the composite key.
func (k *KeyBuilder) Bytes() []byte { return k.buf }

// Key is a convenience for building a key of uint32 components.
func Key(parts ...uint32) []byte {
	kb := NewKeyBuilder()
	for _, p := range parts {
		kb.AddUint32(p)
	}
	return kb.Bytes()
}
