package ddl

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrSyntax reports a DDL statement the parser cannot understand.
var ErrSyntax = errors.New("ddl: syntax error")

// SyntaxError is the structured form of a parse failure.  It wraps ErrSyntax
// (so errors.Is(err, ErrSyntax) keeps working) and records where in the input
// the parser gave up.
type SyntaxError struct {
	// Pos is the byte offset in the parsed input.
	Pos int
	// Msg describes what the parser expected.
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("ddl: syntax error: %s (near position %d)", e.Msg, e.Pos)
}

// Unwrap makes errors.Is(err, ErrSyntax) true.
func (e *SyntaxError) Unwrap() error { return ErrSyntax }

// ColumnDef is one column of a CREATE TABLE statement.
type ColumnDef struct {
	Name string
	Type string
}

// Statement is implemented by every parsed DDL statement.
type Statement interface{ stmt() }

// CreateRegion mirrors CREATE REGION name (MAX_CHIPS=…, MAX_CHANNELS=…,
// MAX_SIZE=…, GC_POLICY=…, GC_STEP_PAGES=…, HOT_COLD=…).
type CreateRegion struct {
	Name         string
	MaxChips     int
	MaxChannels  int
	MaxSizeBytes int64
	// GCPolicy is the victim-selection policy (GREEDY or COST_BENEFIT);
	// empty means the engine default.
	GCPolicy string
	// GCStepPages bounds one background GC step; zero means the default.
	GCStepPages int
	// HotCold is "ON", "OFF" or empty (engine default).
	HotCold string
}

// AlterRegion mirrors ALTER REGION name SET GC_POLICY=…, GC_STEP_PAGES=…,
// HOT_COLD=… (with or without parentheses around the option list).  Only
// garbage-collection options can be altered online; the die set and size of
// a region are fixed at creation.
type AlterRegion struct {
	Name        string
	GCPolicy    string
	GCStepPages int
	HotCold     string
}

// CreateTablespace mirrors CREATE TABLESPACE name (REGION=…, EXTENT SIZE …).
type CreateTablespace struct {
	Name            string
	Region          string
	ExtentSizeBytes int64
}

// CreateTable mirrors CREATE TABLE name (cols…) TABLESPACE ts.
type CreateTable struct {
	Name       string
	Columns    []ColumnDef
	Tablespace string
}

// CreateIndex mirrors CREATE [UNIQUE] INDEX name ON table (cols…) TABLESPACE ts.
type CreateIndex struct {
	Name       string
	Table      string
	Columns    []string
	Unique     bool
	Tablespace string
}

// DropStatement mirrors DROP REGION/TABLESPACE/TABLE/INDEX name.
type DropStatement struct {
	Kind string // REGION, TABLESPACE, TABLE, INDEX
	Name string
}

func (CreateRegion) stmt()     {}
func (AlterRegion) stmt()      {}
func (CreateTablespace) stmt() {}
func (CreateTable) stmt()      {}
func (CreateIndex) stmt()      {}
func (DropStatement) stmt()    {}

type parser struct {
	toks []token
	pos  int
}

// Parsed pairs a statement with its location in the original input, so
// callers can report which statement of a multi-statement script failed.
type Parsed struct {
	// Stmt is the parsed statement.
	Stmt Statement
	// Pos is the byte offset of the statement's first token in the input.
	Pos int
}

// Parse parses one or more semicolon-separated DDL statements.
func Parse(input string) ([]Statement, error) {
	parsed, err := ParseAll(input)
	if err != nil {
		return nil, err
	}
	out := make([]Statement, len(parsed))
	for i, ps := range parsed {
		out[i] = ps.Stmt
	}
	return out, nil
}

// ParseAll parses one or more semicolon-separated DDL statements, reporting
// each statement's byte offset in the input alongside it.
func ParseAll(input string) ([]Parsed, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Parsed
	for {
		for p.acceptPunct(";") {
		}
		if p.peek().kind == tokEOF {
			break
		}
		start := p.peek().pos
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, Parsed{Stmt: st, Pos: start})
		if !p.acceptPunct(";") && p.peek().kind != tokEOF {
			return nil, p.errorf("expected ';' after statement")
		}
	}
	return out, nil
}

// ParseOne parses exactly one statement.
func ParseOne(input string) (Statement, error) {
	stmts, err := Parse(input)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("%w: expected exactly one statement, got %d", ErrSyntax, len(stmts))
	}
	return stmts[0], nil
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return &SyntaxError{Pos: p.peek().pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s", kw)
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	t := p.peek()
	if t.kind == tokPunct && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errorf("expected %q", s)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent && t.kind != tokString {
		return "", p.errorf("expected identifier")
	}
	p.pos++
	return t.text, nil
}

func (p *parser) expectNumber() (string, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return "", p.errorf("expected number")
	}
	p.pos++
	return t.text, nil
}

// parseSize converts "1280M", "128K", "64" (bytes) into bytes.
func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: bad size %q", ErrSyntax, s)
	}
	return v * mult, nil
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.acceptKeyword("CREATE"):
		switch {
		case p.acceptKeyword("REGION"):
			return p.createRegion()
		case p.acceptKeyword("TABLESPACE"):
			return p.createTablespace()
		case p.acceptKeyword("TABLE"):
			return p.createTable()
		case p.acceptKeyword("UNIQUE"):
			if err := p.expectKeyword("INDEX"); err != nil {
				return nil, err
			}
			return p.createIndex(true)
		case p.acceptKeyword("INDEX"):
			return p.createIndex(false)
		default:
			return nil, p.errorf("expected REGION, TABLESPACE, TABLE or INDEX after CREATE")
		}
	case p.acceptKeyword("ALTER"):
		if err := p.expectKeyword("REGION"); err != nil {
			return nil, err
		}
		return p.alterRegion()
	case p.acceptKeyword("DROP"):
		kindTok := p.next()
		kind := strings.ToUpper(kindTok.text)
		switch kind {
		case "REGION", "TABLESPACE", "TABLE", "INDEX":
		default:
			return nil, p.errorf("cannot DROP %q", kindTok.text)
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return DropStatement{Kind: kind, Name: name}, nil
	default:
		return nil, p.errorf("expected CREATE, ALTER or DROP")
	}
}

func (p *parser) createRegion() (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := CreateRegion{Name: name}
	if p.acceptPunct("(") {
		for {
			key, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("="); err != nil {
				return nil, err
			}
			switch strings.ToUpper(key) {
			case "MAX_CHIPS", "MAX_DIES":
				val, err := p.expectNumber()
				if err != nil {
					return nil, err
				}
				n, err := strconv.Atoi(strings.TrimRight(val, "KMGkmg"))
				if err != nil {
					return nil, p.errorf("bad MAX_CHIPS value %q", val)
				}
				st.MaxChips = n
			case "MAX_CHANNELS":
				val, err := p.expectNumber()
				if err != nil {
					return nil, err
				}
				n, err := strconv.Atoi(strings.TrimRight(val, "KMGkmg"))
				if err != nil {
					return nil, p.errorf("bad MAX_CHANNELS value %q", val)
				}
				st.MaxChannels = n
			case "MAX_SIZE":
				val, err := p.expectNumber()
				if err != nil {
					return nil, err
				}
				sz, err := parseSize(val)
				if err != nil {
					return nil, err
				}
				st.MaxSizeBytes = sz
			case "GC_POLICY", "GC_STEP_PAGES", "HOT_COLD":
				if err := p.gcOption(key, &st.GCPolicy, &st.GCStepPages, &st.HotCold); err != nil {
					return nil, err
				}
			default:
				return nil, p.errorf("unknown region option %q", key)
			}
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// gcOption parses the value of one garbage-collection region option (the
// key and '=' have already been consumed).
func (p *parser) gcOption(key string, policy *string, stepPages *int, hotCold *string) error {
	switch strings.ToUpper(key) {
	case "GC_POLICY":
		val, err := p.expectIdent()
		if err != nil {
			return err
		}
		*policy = strings.ToUpper(val)
	case "GC_STEP_PAGES":
		val, err := p.expectNumber()
		if err != nil {
			return err
		}
		n, err := strconv.Atoi(val)
		if err != nil || n <= 0 {
			return p.errorf("bad GC_STEP_PAGES value %q", val)
		}
		*stepPages = n
	case "HOT_COLD":
		val, err := p.expectIdent()
		if err != nil {
			return err
		}
		v := strings.ToUpper(val)
		if v != "ON" && v != "OFF" {
			return p.errorf("HOT_COLD must be ON or OFF, got %q", val)
		}
		*hotCold = v
	default:
		return p.errorf("unknown GC option %q", key)
	}
	return nil
}

// alterRegion parses ALTER REGION name SET key=value[, …], with the option
// list optionally parenthesised.  "ALTER REGION" has been consumed.
func (p *parser) alterRegion() (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	st := AlterRegion{Name: name}
	paren := p.acceptPunct("(")
	opts := 0
	for {
		key, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		if err := p.gcOption(key, &st.GCPolicy, &st.GCStepPages, &st.HotCold); err != nil {
			return nil, err
		}
		opts++
		if !p.acceptPunct(",") {
			break
		}
	}
	if paren {
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if opts == 0 {
		return nil, p.errorf("ALTER REGION needs at least one option")
	}
	return st, nil
}

func (p *parser) createTablespace() (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := CreateTablespace{Name: name}
	if p.acceptPunct("(") {
		for {
			key, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			switch strings.ToUpper(key) {
			case "REGION":
				if err := p.expectPunct("="); err != nil {
					return nil, err
				}
				reg, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				st.Region = reg
			case "EXTENT":
				// "EXTENT SIZE 128K" (the paper's syntax) or "EXTENT_SIZE=128K".
				if err := p.expectKeyword("SIZE"); err != nil {
					return nil, err
				}
				val, err := p.expectNumber()
				if err != nil {
					return nil, err
				}
				sz, err := parseSize(val)
				if err != nil {
					return nil, err
				}
				st.ExtentSizeBytes = sz
			case "EXTENT_SIZE":
				if err := p.expectPunct("="); err != nil {
					return nil, err
				}
				val, err := p.expectNumber()
				if err != nil {
					return nil, err
				}
				sz, err := parseSize(val)
				if err != nil {
					return nil, err
				}
				st.ExtentSizeBytes = sz
			default:
				return nil, p.errorf("unknown tablespace option %q", key)
			}
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) createTable() (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := CreateTable{Name: name}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		colName, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		colType, err := p.parseColumnType()
		if err != nil {
			return nil, err
		}
		st.Columns = append(st.Columns, ColumnDef{Name: colName, Type: colType})
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("TABLESPACE") {
		ts, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Tablespace = ts
	}
	return st, nil
}

// parseColumnType consumes a type name with an optional parenthesised
// argument list, e.g. NUMBER(3), VARCHAR(24), DECIMAL(12,2), INTEGER.
func (p *parser) parseColumnType() (string, error) {
	name, err := p.expectIdent()
	if err != nil {
		return "", err
	}
	typ := strings.ToUpper(name)
	if p.acceptPunct("(") {
		var args []string
		for {
			n, err := p.expectNumber()
			if err != nil {
				return "", err
			}
			args = append(args, n)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return "", err
		}
		typ = fmt.Sprintf("%s(%s)", typ, strings.Join(args, ","))
	}
	return typ, nil
}

func (p *parser) createIndex(unique bool) (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := CreateIndex{Name: name, Table: table, Unique: unique}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Columns = append(st.Columns, col)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("TABLESPACE") {
		ts, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Tablespace = ts
	}
	return st, nil
}
