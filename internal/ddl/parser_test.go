package ddl

import (
	"errors"
	"testing"
)

func TestParsePaperStatements(t *testing.T) {
	// The exact DDL from §2 of the paper.
	input := `
CREATE REGION rgHotTbl (MAX_CHIPS=8, MAX_CHANNELS=4, MAX_SIZE=1280M);
CREATE TABLESPACE tsHotTbl (REGION=rgHotTbl, EXTENT SIZE 128K );
CREATE TABLE T(t_id NUMBER(3))TABLESPACE tsHotTbl;
`
	stmts, err := Parse(input)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("parsed %d statements", len(stmts))
	}
	cr, ok := stmts[0].(CreateRegion)
	if !ok {
		t.Fatalf("stmt 0 is %T", stmts[0])
	}
	if cr.Name != "rgHotTbl" || cr.MaxChips != 8 || cr.MaxChannels != 4 || cr.MaxSizeBytes != 1280*(1<<20) {
		t.Fatalf("CreateRegion = %+v", cr)
	}
	ct, ok := stmts[1].(CreateTablespace)
	if !ok {
		t.Fatalf("stmt 1 is %T", stmts[1])
	}
	if ct.Name != "tsHotTbl" || ct.Region != "rgHotTbl" || ct.ExtentSizeBytes != 128*(1<<10) {
		t.Fatalf("CreateTablespace = %+v", ct)
	}
	tb, ok := stmts[2].(CreateTable)
	if !ok {
		t.Fatalf("stmt 2 is %T", stmts[2])
	}
	if tb.Name != "T" || tb.Tablespace != "tsHotTbl" || len(tb.Columns) != 1 ||
		tb.Columns[0].Name != "t_id" || tb.Columns[0].Type != "NUMBER(3)" {
		t.Fatalf("CreateTable = %+v", tb)
	}
}

func TestParseCreateTableMultiColumn(t *testing.T) {
	st, err := ParseOne(`CREATE TABLE STOCK (
		s_i_id INTEGER,
		s_w_id INTEGER,
		s_quantity NUMBER(4),
		s_dist_01 CHAR(24),
		s_data VARCHAR(50)
	) TABLESPACE tsStock`)
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(CreateTable)
	if len(ct.Columns) != 5 || ct.Columns[4].Type != "VARCHAR(50)" || ct.Tablespace != "tsStock" {
		t.Fatalf("%+v", ct)
	}
	// Without a tablespace clause.
	st, err = ParseOne("CREATE TABLE X (a INTEGER)")
	if err != nil {
		t.Fatal(err)
	}
	if st.(CreateTable).Tablespace != "" {
		t.Fatal("unexpected tablespace")
	}
	// DECIMAL(12,2) style types.
	st, err = ParseOne("CREATE TABLE Y (amount DECIMAL(12,2))")
	if err != nil {
		t.Fatal(err)
	}
	if st.(CreateTable).Columns[0].Type != "DECIMAL(12,2)" {
		t.Fatalf("%+v", st)
	}
}

func TestParseCreateIndex(t *testing.T) {
	st, err := ParseOne("CREATE UNIQUE INDEX C_IDX ON CUSTOMER (c_w_id, c_d_id, c_id) TABLESPACE tsIdx")
	if err != nil {
		t.Fatal(err)
	}
	ci := st.(CreateIndex)
	if !ci.Unique || ci.Table != "CUSTOMER" || len(ci.Columns) != 3 || ci.Tablespace != "tsIdx" {
		t.Fatalf("%+v", ci)
	}
	st, err = ParseOne("CREATE INDEX C_NAME_IDX ON CUSTOMER (c_last)")
	if err != nil {
		t.Fatal(err)
	}
	if st.(CreateIndex).Unique {
		t.Fatal("unexpected unique")
	}
}

func TestParseDropAndVariants(t *testing.T) {
	stmts, err := Parse(`
		DROP TABLE T;
		DROP REGION rgHotTbl;
		DROP TABLESPACE tsHotTbl;
		DROP INDEX I;
		CREATE REGION simple;
		CREATE TABLESPACE plain;
		CREATE TABLESPACE alt (EXTENT_SIZE=64K);
		CREATE REGION rgDies (MAX_DIES=4);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 8 {
		t.Fatalf("parsed %d", len(stmts))
	}
	if d := stmts[0].(DropStatement); d.Kind != "TABLE" || d.Name != "T" {
		t.Fatalf("%+v", d)
	}
	if d := stmts[1].(DropStatement); d.Kind != "REGION" {
		t.Fatalf("%+v", d)
	}
	if r := stmts[4].(CreateRegion); r.Name != "simple" || r.MaxChips != 0 {
		t.Fatalf("%+v", r)
	}
	if ts := stmts[6].(CreateTablespace); ts.ExtentSizeBytes != 64*1024 {
		t.Fatalf("%+v", ts)
	}
	if r := stmts[7].(CreateRegion); r.MaxChips != 4 {
		t.Fatalf("MAX_DIES alias: %+v", r)
	}
}

func TestParseSizes(t *testing.T) {
	cases := map[string]int64{"64": 64, "128K": 128 << 10, "1280M": 1280 << 20, "2G": 2 << 30, "16k": 16 << 10}
	for in, want := range cases {
		got, err := parseSize(in)
		if err != nil || got != want {
			t.Errorf("parseSize(%q) = %d, %v", in, got, err)
		}
	}
	if _, err := parseSize("abcM"); err == nil {
		t.Error("bad size accepted")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"SELECT * FROM T",
		"CREATE",
		"CREATE VIEW v",
		"CREATE REGION r (BOGUS=1)",
		"CREATE REGION r (MAX_CHIPS 8)",
		"CREATE TABLESPACE t (WHAT=1)",
		"CREATE TABLE T",
		"CREATE TABLE T (a INTEGER",
		"CREATE INDEX i ON (a)",
		"CREATE UNIQUE TABLE T (a INTEGER)",
		"DROP DATABASE x",
		"CREATE TABLE T (a INTEGER) extra",
		"CREATE TABLE T (a VARCHAR('x'))",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("accepted invalid DDL: %q", in)
		} else if !errors.Is(err, ErrSyntax) {
			t.Errorf("%q: error is not ErrSyntax: %v", in, err)
		}
	}
	// Lexer-level errors.
	if _, err := Parse("CREATE TABLE T (a INTEGER) @"); err == nil {
		t.Error("accepted stray character")
	}
	if _, err := Parse("CREATE TABLE T (a 'unterminated)"); err == nil {
		t.Error("accepted unterminated string")
	}
}

func TestParseOneRejectsMultiple(t *testing.T) {
	if _, err := ParseOne("DROP TABLE a; DROP TABLE b"); err == nil {
		t.Fatal("ParseOne accepted two statements")
	}
	if _, err := ParseOne(""); err == nil {
		t.Fatal("ParseOne accepted empty input")
	}
}

func TestParseComments(t *testing.T) {
	stmts, err := Parse(`
		-- create the hot region
		CREATE REGION rg1 (MAX_CHIPS=2); -- trailing comment
	`)
	if err != nil || len(stmts) != 1 {
		t.Fatalf("comments broke parsing: %v (%d)", err, len(stmts))
	}
	// Quoted identifiers.
	st, err := ParseOne(`CREATE TABLE "MiXeD" (a INTEGER) TABLESPACE 'tsX'`)
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(CreateTable)
	if ct.Name != "MiXeD" || ct.Tablespace != "tsX" {
		t.Fatalf("%+v", ct)
	}
}

func TestCreateRegionGCOptions(t *testing.T) {
	st, err := ParseOne(`CREATE REGION rgHot (MAX_CHIPS=4, GC_POLICY=COST_BENEFIT, GC_STEP_PAGES=4, HOT_COLD=OFF);`)
	if err != nil {
		t.Fatal(err)
	}
	cr, ok := st.(CreateRegion)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if cr.MaxChips != 4 || cr.GCPolicy != "COST_BENEFIT" || cr.GCStepPages != 4 || cr.HotCold != "OFF" {
		t.Fatalf("wrong clause: %+v", cr)
	}
	// Case-insensitive keys and values.
	st, err = ParseOne(`create region r2 (max_chips=1, gc_policy=greedy, hot_cold=on);`)
	if err != nil {
		t.Fatal(err)
	}
	cr = st.(CreateRegion)
	if cr.GCPolicy != "GREEDY" || cr.HotCold != "ON" {
		t.Fatalf("wrong clause: %+v", cr)
	}
	// Bad values are rejected at parse time.
	for _, bad := range []string{
		`CREATE REGION r (MAX_CHIPS=1, HOT_COLD=MAYBE);`,
		`CREATE REGION r (MAX_CHIPS=1, GC_STEP_PAGES=0);`,
		`CREATE REGION r (MAX_CHIPS=1, GC_STEP_PAGES=x);`,
	} {
		if _, err := ParseOne(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestAlterRegion(t *testing.T) {
	st, err := ParseOne(`ALTER REGION rgHot SET GC_POLICY=COST_BENEFIT, GC_STEP_PAGES=16;`)
	if err != nil {
		t.Fatal(err)
	}
	ar, ok := st.(AlterRegion)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if ar.Name != "rgHot" || ar.GCPolicy != "COST_BENEFIT" || ar.GCStepPages != 16 || ar.HotCold != "" {
		t.Fatalf("wrong clause: %+v", ar)
	}
	// Parenthesised form.
	st, err = ParseOne(`ALTER REGION rgHot SET (HOT_COLD=OFF);`)
	if err != nil {
		t.Fatal(err)
	}
	if ar = st.(AlterRegion); ar.HotCold != "OFF" {
		t.Fatalf("wrong clause: %+v", ar)
	}
	for _, bad := range []string{
		`ALTER REGION rgHot;`,
		`ALTER REGION rgHot SET;`,
		`ALTER REGION rgHot SET MAX_CHIPS=4;`,
		`ALTER TABLE t SET GC_POLICY=GREEDY;`,
	} {
		if _, err := ParseOne(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}
