// Package ddl parses the SQL data-definition statements the paper uses to
// administer native flash storage through existing logical structures (§2):
//
//	CREATE REGION rgHotTbl (MAX_CHIPS=8, MAX_CHANNELS=4, MAX_SIZE=1280M);
//	CREATE TABLESPACE tsHotTbl (REGION=rgHotTbl, EXTENT SIZE 128K);
//	CREATE TABLE T (t_id NUMBER(3)) TABLESPACE tsHotTbl;
//	CREATE [UNIQUE] INDEX idx ON T (t_id) TABLESPACE tsHotTbl;
//	DROP REGION/TABLESPACE/TABLE/INDEX name;
//
// The parser produces statement values that the database facade executes
// against the catalog and the NoFTL space manager.
package ddl

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokPunct
	tokString
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	input string
	pos   int
	toks  []token
}

// lex tokenizes the input.  Identifiers are case-normalized to upper case
// except when quoted; numbers keep an optional K/M/G suffix attached.
func lex(input string) ([]token, error) {
	l := &lexer{input: input}
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.input) && l.input[l.pos+1] == '-':
			// SQL line comment.
			for l.pos < len(l.input) && l.input[l.pos] != '\n' {
				l.pos++
			}
		case isIdentStart(rune(c)):
			start := l.pos
			for l.pos < len(l.input) && isIdentPart(rune(l.input[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: l.input[start:l.pos], pos: start})
		case c >= '0' && c <= '9':
			start := l.pos
			for l.pos < len(l.input) && (l.input[l.pos] >= '0' && l.input[l.pos] <= '9') {
				l.pos++
			}
			// Optional size suffix (K, M, G) glued to the number.
			if l.pos < len(l.input) {
				switch l.input[l.pos] {
				case 'k', 'K', 'm', 'M', 'g', 'G':
					l.pos++
				}
			}
			l.toks = append(l.toks, token{kind: tokNumber, text: l.input[start:l.pos], pos: start})
		case c == '\'' || c == '"':
			quote := c
			start := l.pos
			l.pos++
			for l.pos < len(l.input) && l.input[l.pos] != quote {
				l.pos++
			}
			if l.pos >= len(l.input) {
				return nil, fmt.Errorf("ddl: unterminated string starting at %d", start)
			}
			l.toks = append(l.toks, token{kind: tokString, text: l.input[start+1 : l.pos], pos: start})
			l.pos++
		case strings.ContainsRune("(),=;.*", rune(c)):
			l.toks = append(l.toks, token{kind: tokPunct, text: string(c), pos: l.pos})
			l.pos++
		default:
			return nil, fmt.Errorf("ddl: unexpected character %q at position %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
