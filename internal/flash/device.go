package flash

import (
	"fmt"
	"sync"
	"time"

	"noftl/internal/metrics"
	"noftl/internal/sim"
)

// Config configures a simulated native flash device.
type Config struct {
	// Geometry is the physical layout of the device.
	Geometry Geometry
	// Timing holds the NAND and channel latencies.
	Timing Timing
	// EraseEndurance is the number of program/erase cycles after which a
	// block is marked bad.  Zero means unlimited endurance.
	EraseEndurance int64
	// StoreData controls whether page payloads are retained in memory.  The
	// database engine needs true; pure I/O-pattern benchmarks may disable it
	// to save memory.
	StoreData bool
	// EnforceProgramOrder enables the NAND constraint that pages within a
	// block must be programmed in ascending order without gaps.
	EnforceProgramOrder bool
}

// DefaultConfig returns a small device suitable for tests and examples:
// 4 channels x 2 dies (8 dies), 128 blocks per die, 64 pages per block,
// 4 KiB pages (256 MiB raw), SLC-like timing.
func DefaultConfig() Config {
	return Config{
		Geometry: Geometry{
			Channels:       4,
			DiesPerChannel: 2,
			PlanesPerDie:   2,
			BlocksPerDie:   128,
			PagesPerBlock:  64,
			PageSize:       4096,
		},
		Timing:              DefaultTiming(),
		EraseEndurance:      0,
		StoreData:           true,
		EnforceProgramOrder: true,
	}
}

// PaperConfig returns a geometry resembling the paper's evaluation platform:
// 64 dies behind 8 channels.  Blocks-per-die is a parameter because the
// reproduction scales the database size; pages per block and page size match
// typical SLC NAND (64 x 4 KiB).
func PaperConfig(blocksPerDie int) Config {
	cfg := DefaultConfig()
	cfg.Geometry = Geometry{
		Channels:       8,
		DiesPerChannel: 8,
		PlanesPerDie:   2,
		BlocksPerDie:   blocksPerDie,
		PagesPerBlock:  64,
		PageSize:       4096,
	}
	return cfg
}

type pageState uint8

const (
	pageErased pageState = iota
	pageProgrammed
)

// blockState is the per-erase-block bookkeeping of the device model.
type blockState struct {
	eraseCount int64
	bad        bool
	nextPage   int // next page to program under the sequential constraint
	states     []pageState
	meta       []PageMeta
	data       [][]byte // lazily allocated when StoreData
}

// dieState groups the blocks of one die under a single lock.
type dieState struct {
	mu     sync.Mutex
	blocks []blockState

	// statistics (guarded by mu)
	reads     int64
	programs  int64
	erases    int64
	copybacks int64
	metaReads int64
}

// Device is a simulated native flash device.  All command methods are safe
// for concurrent use; contention on dies and channels is modelled in virtual
// time, not by blocking callers.
type Device struct {
	cfg      Config
	geo      Geometry
	dies     []*dieState
	dieRes   []*sim.Resource
	chanRes  []*sim.Resource
	set      *metrics.Set
	reads    *metrics.Counter
	programs *metrics.Counter
	erases   *metrics.Counter
	copyback *metrics.Counter
	metaRds  *metrics.Counter
	badBlks  *metrics.Counter

	// fault injection (see fault.go); nil when no plan is armed
	faultMu sync.Mutex
	fault   *faultState
}

// NewDevice creates a device with the given configuration.
func NewDevice(cfg Config) (*Device, error) {
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		cfg: cfg,
		geo: cfg.Geometry,
		set: metrics.NewSet(),
	}
	d.reads = d.set.Counter("flash.read_page")
	d.programs = d.set.Counter("flash.program_page")
	d.erases = d.set.Counter("flash.erase_block")
	d.copyback = d.set.Counter("flash.copyback")
	d.metaRds = d.set.Counter("flash.read_meta")
	d.badBlks = d.set.Counter("flash.bad_blocks")

	nDies := d.geo.Dies()
	d.dies = make([]*dieState, nDies)
	d.dieRes = make([]*sim.Resource, nDies)
	for i := 0; i < nDies; i++ {
		ds := &dieState{blocks: make([]blockState, d.geo.BlocksPerDie)}
		for b := range ds.blocks {
			ds.blocks[b].states = make([]pageState, d.geo.PagesPerBlock)
			ds.blocks[b].meta = make([]PageMeta, d.geo.PagesPerBlock)
		}
		d.dies[i] = ds
		d.dieRes[i] = sim.NewResource(fmt.Sprintf("die-%d", i))
	}
	d.chanRes = make([]*sim.Resource, d.geo.Channels)
	for c := range d.chanRes {
		d.chanRes[c] = sim.NewResource(fmt.Sprintf("chan-%d", c))
	}
	return d, nil
}

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry { return d.geo }

// Timing returns the device latency parameters.
func (d *Device) Timing() Timing { return d.cfg.Timing }

// Metrics returns the device metric set (operation counters).
func (d *Device) Metrics() *metrics.Set { return d.set }

// channel returns the channel resource serving a die.
func (d *Device) channel(die int) *sim.Resource {
	return d.chanRes[d.geo.ChannelOfDie(die)]
}

// ReadPage reads the page at addr.  If buf is non-nil it must be PageSize
// bytes long and receives the page data; otherwise a fresh buffer is
// allocated (nil when the device does not store data).  It returns the page
// metadata and the virtual completion time.
func (d *Device) ReadPage(now sim.Time, addr Addr, buf []byte) ([]byte, PageMeta, sim.Time, error) {
	if !d.geo.ValidAddr(addr) {
		return nil, PageMeta{}, now, fmt.Errorf("%w: %v", ErrOutOfRange, addr)
	}
	if fd := d.faultOp(now, opRead); fd.crash {
		return nil, PageMeta{}, now, ErrCrashed
	}
	ds := d.dies[addr.Die]
	ds.mu.Lock()
	blk := &ds.blocks[addr.Block]
	if blk.bad {
		ds.mu.Unlock()
		return nil, PageMeta{}, now, fmt.Errorf("%w: %v", ErrBadBlock, addr.BlockAddr())
	}
	if blk.states[addr.Page] != pageProgrammed {
		ds.mu.Unlock()
		return nil, PageMeta{}, now, fmt.Errorf("%w: %v", ErrReadErased, addr)
	}
	meta := blk.meta[addr.Page]
	if d.cfg.StoreData && blk.data != nil && blk.data[addr.Page] != nil {
		if buf == nil {
			buf = make([]byte, d.geo.PageSize)
		}
		copy(buf, blk.data[addr.Page])
	} else if !d.cfg.StoreData {
		buf = nil
	}
	ds.reads++
	ds.mu.Unlock()

	_, sensed := d.dieRes[addr.Die].Acquire(now, d.cfg.Timing.ReadPage)
	_, done := d.channel(addr.Die).Acquire(sensed, d.cfg.Timing.Transfer)
	d.reads.Inc()
	return buf, meta, done, nil
}

// ReadMeta reads only the OOB metadata of the page at addr.  The page must
// have been programmed.  It is cheaper than a full ReadPage because only the
// metadata crosses the channel.
func (d *Device) ReadMeta(now sim.Time, addr Addr) (PageMeta, sim.Time, error) {
	if !d.geo.ValidAddr(addr) {
		return PageMeta{}, now, fmt.Errorf("%w: %v", ErrOutOfRange, addr)
	}
	if fd := d.faultOp(now, opRead); fd.crash {
		return PageMeta{}, now, ErrCrashed
	}
	ds := d.dies[addr.Die]
	ds.mu.Lock()
	blk := &ds.blocks[addr.Block]
	if blk.bad {
		ds.mu.Unlock()
		return PageMeta{}, now, fmt.Errorf("%w: %v", ErrBadBlock, addr.BlockAddr())
	}
	if blk.states[addr.Page] != pageProgrammed {
		ds.mu.Unlock()
		return PageMeta{}, now, fmt.Errorf("%w: %v", ErrReadErased, addr)
	}
	meta := blk.meta[addr.Page]
	ds.metaReads++
	ds.mu.Unlock()

	_, sensed := d.dieRes[addr.Die].Acquire(now, d.cfg.Timing.ReadPage)
	_, done := d.channel(addr.Die).Acquire(sensed, d.cfg.Timing.MetaTransfer)
	d.metaRds.Inc()
	return meta, done, nil
}

// ProgramPage writes data and metadata to the erased page at addr.  The
// payload must be exactly PageSize bytes (it may be nil when the device does
// not store data).  Programming a non-erased page or violating the
// sequential-programming constraint fails.
func (d *Device) ProgramPage(now sim.Time, addr Addr, data []byte, meta PageMeta) (sim.Time, error) {
	if !d.geo.ValidAddr(addr) {
		return now, fmt.Errorf("%w: %v", ErrOutOfRange, addr)
	}
	if d.cfg.StoreData && data != nil && len(data) != d.geo.PageSize {
		return now, fmt.Errorf("%w: got %d bytes, want %d", ErrPageSize, len(data), d.geo.PageSize)
	}
	if fd := d.faultOp(now, opProgram); fd.crash {
		if fd.tornProgram {
			d.programTorn(addr, data, meta, fd.tornBytes)
		}
		return now, ErrCrashed
	} else if fd.failProgram {
		return now, fmt.Errorf("%w: %v", ErrProgramFault, addr)
	}
	ds := d.dies[addr.Die]
	ds.mu.Lock()
	blk := &ds.blocks[addr.Block]
	if blk.bad {
		ds.mu.Unlock()
		return now, fmt.Errorf("%w: %v", ErrBadBlock, addr.BlockAddr())
	}
	if blk.states[addr.Page] != pageErased {
		ds.mu.Unlock()
		return now, fmt.Errorf("%w: %v", ErrNotErased, addr)
	}
	if d.cfg.EnforceProgramOrder && addr.Page != blk.nextPage {
		ds.mu.Unlock()
		return now, fmt.Errorf("%w: %v (next programmable page is %d)", ErrProgramOrder, addr, blk.nextPage)
	}
	blk.states[addr.Page] = pageProgrammed
	blk.meta[addr.Page] = meta
	if addr.Page >= blk.nextPage {
		blk.nextPage = addr.Page + 1
	}
	if d.cfg.StoreData && data != nil {
		if blk.data == nil {
			blk.data = make([][]byte, d.geo.PagesPerBlock)
		}
		cp := make([]byte, d.geo.PageSize)
		copy(cp, data)
		blk.data[addr.Page] = cp
	}
	ds.programs++
	ds.mu.Unlock()

	_, transferred := d.channel(addr.Die).Acquire(now, d.cfg.Timing.Transfer)
	_, done := d.dieRes[addr.Die].Acquire(transferred, d.cfg.Timing.ProgramPage)
	d.programs.Inc()
	return done, nil
}

// EraseBlock erases a block, returning all of its pages to the erased state.
// When the block reaches the configured endurance limit it is marked bad and
// subsequent operations on it fail with ErrBadBlock.
func (d *Device) EraseBlock(now sim.Time, b BlockAddr) (sim.Time, error) {
	if !d.geo.ValidBlock(b) {
		return now, fmt.Errorf("%w: %v", ErrOutOfRange, b)
	}
	if fd := d.faultOp(now, opErase); fd.crash {
		return now, ErrCrashed
	} else if fd.failErase {
		ds := d.dies[b.Die]
		ds.mu.Lock()
		if !ds.blocks[b.Block].bad {
			ds.blocks[b.Block].bad = true
			d.badBlks.Inc()
		}
		ds.mu.Unlock()
		return now, fmt.Errorf("%w: %v", ErrEraseFault, b)
	}
	ds := d.dies[b.Die]
	ds.mu.Lock()
	blk := &ds.blocks[b.Block]
	if blk.bad {
		ds.mu.Unlock()
		return now, fmt.Errorf("%w: %v", ErrBadBlock, b)
	}
	for i := range blk.states {
		blk.states[i] = pageErased
		blk.meta[i] = PageMeta{}
	}
	blk.data = nil
	blk.nextPage = 0
	blk.eraseCount++
	if d.cfg.EraseEndurance > 0 && blk.eraseCount >= d.cfg.EraseEndurance {
		blk.bad = true
		d.badBlks.Inc()
	}
	ds.erases++
	ds.mu.Unlock()

	_, done := d.dieRes[b.Die].Acquire(now, d.cfg.Timing.EraseBlock)
	d.erases.Inc()
	return done, nil
}

// Copyback copies a programmed page to an erased page on the same die
// without transferring the data over the channel (the NAND-internal copyback
// command used by garbage collection).  The destination inherits the source
// metadata and the method returns it so the caller can update its mapping.
func (d *Device) Copyback(now sim.Time, src, dst Addr) (PageMeta, sim.Time, error) {
	if !d.geo.ValidAddr(src) || !d.geo.ValidAddr(dst) {
		return PageMeta{}, now, fmt.Errorf("%w: %v -> %v", ErrOutOfRange, src, dst)
	}
	if src.Die != dst.Die {
		return PageMeta{}, now, fmt.Errorf("%w: %v -> %v", ErrCopybackCrossDie, src, dst)
	}
	if fd := d.faultOp(now, opCopyback); fd.crash {
		return PageMeta{}, now, ErrCrashed
	} else if fd.failProgram {
		return PageMeta{}, now, fmt.Errorf("%w: copyback %v -> %v", ErrProgramFault, src, dst)
	}
	ds := d.dies[src.Die]
	ds.mu.Lock()
	sblk := &ds.blocks[src.Block]
	dblk := &ds.blocks[dst.Block]
	if sblk.bad || dblk.bad {
		ds.mu.Unlock()
		return PageMeta{}, now, fmt.Errorf("%w: copyback %v -> %v", ErrBadBlock, src, dst)
	}
	if sblk.states[src.Page] != pageProgrammed {
		ds.mu.Unlock()
		return PageMeta{}, now, fmt.Errorf("%w: copyback source %v", ErrReadErased, src)
	}
	if dblk.states[dst.Page] != pageErased {
		ds.mu.Unlock()
		return PageMeta{}, now, fmt.Errorf("%w: copyback destination %v", ErrNotErased, dst)
	}
	if d.cfg.EnforceProgramOrder && dst.Page != dblk.nextPage {
		ds.mu.Unlock()
		return PageMeta{}, now, fmt.Errorf("%w: copyback destination %v (next is %d)", ErrProgramOrder, dst, dblk.nextPage)
	}
	meta := sblk.meta[src.Page]
	dblk.states[dst.Page] = pageProgrammed
	dblk.meta[dst.Page] = meta
	if dst.Page >= dblk.nextPage {
		dblk.nextPage = dst.Page + 1
	}
	if d.cfg.StoreData && sblk.data != nil && sblk.data[src.Page] != nil {
		if dblk.data == nil {
			dblk.data = make([][]byte, d.geo.PagesPerBlock)
		}
		cp := make([]byte, d.geo.PageSize)
		copy(cp, sblk.data[src.Page])
		dblk.data[dst.Page] = cp
	}
	ds.copybacks++
	ds.mu.Unlock()

	_, done := d.dieRes[src.Die].Acquire(now, d.cfg.Timing.ReadPage+d.cfg.Timing.ProgramPage)
	d.copyback.Inc()
	return meta, done, nil
}

// programTorn applies the durable side effect of a program interrupted by a
// crash: the page is marked programmed with its OOB metadata intact, but only
// a prefix of the payload was written — the final tornBytes bytes stay zero.
// Validation failures are silently ignored (the caller is crashing anyway).
func (d *Device) programTorn(addr Addr, data []byte, meta PageMeta, tornBytes int) {
	if !d.cfg.StoreData || data == nil || len(data) != d.geo.PageSize {
		return
	}
	ds := d.dies[addr.Die]
	ds.mu.Lock()
	defer ds.mu.Unlock()
	blk := &ds.blocks[addr.Block]
	if blk.bad || blk.states[addr.Page] != pageErased {
		return
	}
	if d.cfg.EnforceProgramOrder && addr.Page != blk.nextPage {
		return
	}
	cut := len(data) - tornBytes
	if cut < 0 {
		cut = 0
	}
	blk.states[addr.Page] = pageProgrammed
	blk.meta[addr.Page] = meta
	if addr.Page >= blk.nextPage {
		blk.nextPage = addr.Page + 1
	}
	if blk.data == nil {
		blk.data = make([][]byte, d.geo.PagesPerBlock)
	}
	cp := make([]byte, d.geo.PageSize)
	copy(cp, data[:cut])
	blk.data[addr.Page] = cp
	ds.programs++
	d.programs.Inc()
}

// PageProgrammed reports whether the page at addr has been programmed since
// the last erase of its block.  It does not consume device time (diagnostic /
// test helper).
func (d *Device) PageProgrammed(addr Addr) (bool, error) {
	if !d.geo.ValidAddr(addr) {
		return false, fmt.Errorf("%w: %v", ErrOutOfRange, addr)
	}
	ds := d.dies[addr.Die]
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.blocks[addr.Block].states[addr.Page] == pageProgrammed, nil
}

// NextProgrammablePage returns the index of the next page that may be
// programmed in the block under the sequential-programming constraint, or
// PagesPerBlock when the block is full.
func (d *Device) NextProgrammablePage(b BlockAddr) (int, error) {
	if !d.geo.ValidBlock(b) {
		return 0, fmt.Errorf("%w: %v", ErrOutOfRange, b)
	}
	ds := d.dies[b.Die]
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.blocks[b.Block].nextPage, nil
}

// EraseCount returns the number of erase cycles the block has undergone.
func (d *Device) EraseCount(b BlockAddr) (int64, error) {
	if !d.geo.ValidBlock(b) {
		return 0, fmt.Errorf("%w: %v", ErrOutOfRange, b)
	}
	ds := d.dies[b.Die]
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.blocks[b.Block].eraseCount, nil
}

// IsBad reports whether the block has been marked bad.
func (d *Device) IsBad(b BlockAddr) (bool, error) {
	if !d.geo.ValidBlock(b) {
		return false, fmt.Errorf("%w: %v", ErrOutOfRange, b)
	}
	ds := d.dies[b.Die]
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.blocks[b.Block].bad, nil
}

// DieStats is a per-die snapshot of operation counts and utilization.
type DieStats struct {
	Die        int
	Channel    int
	Reads      int64
	Programs   int64
	Erases     int64
	Copybacks  int64
	MetaReads  int64
	BusyTime   time.Duration
	TotalWear  int64 // sum of erase counts across the die's blocks
	MaxWear    int64 // highest per-block erase count
	BadBlocks  int
	FreeBlocks int // blocks currently fully erased (nextPage == 0 and not bad)
}

// Stats is a device-wide snapshot.
type Stats struct {
	Reads     int64
	Programs  int64
	Erases    int64
	Copybacks int64
	MetaReads int64
	BadBlocks int64
	PerDie    []DieStats
}

// Stats returns a snapshot of operation counters, wear and utilization.
func (d *Device) Stats() Stats {
	s := Stats{
		Reads:     d.reads.Value(),
		Programs:  d.programs.Value(),
		Erases:    d.erases.Value(),
		Copybacks: d.copyback.Value(),
		MetaReads: d.metaRds.Value(),
		BadBlocks: d.badBlks.Value(),
	}
	s.PerDie = make([]DieStats, d.geo.Dies())
	for i, ds := range d.dies {
		ds.mu.Lock()
		st := DieStats{
			Die:       i,
			Channel:   d.geo.ChannelOfDie(i),
			Reads:     ds.reads,
			Programs:  ds.programs,
			Erases:    ds.erases,
			Copybacks: ds.copybacks,
			MetaReads: ds.metaReads,
			BusyTime:  d.dieRes[i].Busy(),
		}
		for b := range ds.blocks {
			blk := &ds.blocks[b]
			st.TotalWear += blk.eraseCount
			if blk.eraseCount > st.MaxWear {
				st.MaxWear = blk.eraseCount
			}
			if blk.bad {
				st.BadBlocks++
			} else if blk.nextPage == 0 {
				st.FreeBlocks++
			}
		}
		ds.mu.Unlock()
		s.PerDie[i] = st
	}
	return s
}

// ResetCounters zeroes the operation counters and resource utilization
// statistics without touching page contents or wear state.  Benchmarks call
// it after warm-up so the measured interval starts from zero.
func (d *Device) ResetCounters() {
	d.reads.Reset()
	d.programs.Reset()
	d.erases.Reset()
	d.copyback.Reset()
	d.metaRds.Reset()
	for _, ds := range d.dies {
		ds.mu.Lock()
		ds.reads, ds.programs, ds.erases, ds.copybacks, ds.metaReads = 0, 0, 0, 0, 0
		ds.mu.Unlock()
	}
	for _, r := range d.dieRes {
		r.Reset()
	}
	for _, r := range d.chanRes {
		r.Reset()
	}
}
