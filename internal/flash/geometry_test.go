package flash

import (
	"testing"
	"testing/quick"
)

func TestGeometryDerivedQuantities(t *testing.T) {
	g := Geometry{Channels: 8, DiesPerChannel: 8, PlanesPerDie: 2, BlocksPerDie: 100, PagesPerBlock: 64, PageSize: 4096}
	if g.Dies() != 64 {
		t.Fatalf("Dies = %d", g.Dies())
	}
	if g.PagesPerDie() != 6400 {
		t.Fatalf("PagesPerDie = %d", g.PagesPerDie())
	}
	if g.TotalPages() != 64*6400 {
		t.Fatalf("TotalPages = %d", g.TotalPages())
	}
	if g.TotalBytes() != int64(64*6400)*4096 {
		t.Fatalf("TotalBytes = %d", g.TotalBytes())
	}
	if g.String() == "" {
		t.Fatal("empty String")
	}
}

func TestGeometryValidate(t *testing.T) {
	good := Geometry{Channels: 2, DiesPerChannel: 2, PlanesPerDie: 1, BlocksPerDie: 4, PagesPerBlock: 8, PageSize: 512}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	bad := []Geometry{
		{},
		{Channels: 1, DiesPerChannel: 1, PlanesPerDie: 1, BlocksPerDie: 3, PagesPerBlock: 4, PageSize: 0},
		{Channels: 1, DiesPerChannel: 1, PlanesPerDie: 2, BlocksPerDie: 3, PagesPerBlock: 4, PageSize: 512},
		{Channels: 0, DiesPerChannel: 1, PlanesPerDie: 1, BlocksPerDie: 3, PagesPerBlock: 4, PageSize: 512},
		{Channels: 1, DiesPerChannel: 0, PlanesPerDie: 1, BlocksPerDie: 3, PagesPerBlock: 4, PageSize: 512},
		{Channels: 1, DiesPerChannel: 1, PlanesPerDie: 1, BlocksPerDie: 0, PagesPerBlock: 4, PageSize: 512},
		{Channels: 1, DiesPerChannel: 1, PlanesPerDie: 1, BlocksPerDie: 3, PagesPerBlock: 0, PageSize: 512},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: invalid geometry accepted: %+v", i, g)
		}
	}
}

func TestChannelOfDieSpreadsRoundRobin(t *testing.T) {
	g := Geometry{Channels: 4, DiesPerChannel: 4, PlanesPerDie: 1, BlocksPerDie: 1, PagesPerBlock: 1, PageSize: 512}
	counts := make(map[int]int)
	for d := 0; d < g.Dies(); d++ {
		ch := g.ChannelOfDie(d)
		if ch < 0 || ch >= g.Channels {
			t.Fatalf("die %d mapped to channel %d", d, ch)
		}
		counts[ch]++
	}
	for ch, n := range counts {
		if n != g.DiesPerChannel {
			t.Fatalf("channel %d has %d dies, want %d", ch, n, g.DiesPerChannel)
		}
	}
}

func TestPlaneOfBlock(t *testing.T) {
	g := Geometry{Channels: 1, DiesPerChannel: 1, PlanesPerDie: 2, BlocksPerDie: 8, PagesPerBlock: 4, PageSize: 512}
	if g.PlaneOfBlock(0) != 0 || g.PlaneOfBlock(1) != 1 || g.PlaneOfBlock(2) != 0 {
		t.Fatal("plane mapping wrong")
	}
	g.PlanesPerDie = 1
	if g.PlaneOfBlock(5) != 0 {
		t.Fatal("single-plane mapping wrong")
	}
}

func TestPageIndexRoundTrip(t *testing.T) {
	g := Geometry{Channels: 2, DiesPerChannel: 3, PlanesPerDie: 1, BlocksPerDie: 7, PagesPerBlock: 5, PageSize: 512}
	f := func(die, block, page uint8) bool {
		a := Addr{
			Die:   int(die) % g.Dies(),
			Block: int(block) % g.BlocksPerDie,
			Page:  int(page) % g.PagesPerBlock,
		}
		idx := g.PageIndex(a)
		if idx < 0 || idx >= g.TotalPages() {
			return false
		}
		return g.AddrOfIndex(idx) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestValidAddr(t *testing.T) {
	g := Geometry{Channels: 1, DiesPerChannel: 2, PlanesPerDie: 1, BlocksPerDie: 3, PagesPerBlock: 4, PageSize: 512}
	valid := []Addr{{0, 0, 0}, {1, 2, 3}}
	invalid := []Addr{{-1, 0, 0}, {2, 0, 0}, {0, 3, 0}, {0, 0, 4}, {0, -1, 0}, {0, 0, -1}}
	for _, a := range valid {
		if !g.ValidAddr(a) {
			t.Errorf("valid addr rejected: %v", a)
		}
	}
	for _, a := range invalid {
		if g.ValidAddr(a) {
			t.Errorf("invalid addr accepted: %v", a)
		}
	}
	if !g.ValidBlock(BlockAddr{1, 2}) || g.ValidBlock(BlockAddr{1, 3}) || g.ValidBlock(BlockAddr{2, 0}) {
		t.Error("ValidBlock wrong")
	}
	if (Addr{1, 2, 3}).BlockAddr() != (BlockAddr{1, 2}) {
		t.Error("BlockAddr wrong")
	}
	if (Addr{1, 2, 3}).String() == "" || (BlockAddr{1, 2}).String() == "" {
		t.Error("empty String")
	}
}

func TestMetaMarshalRoundTrip(t *testing.T) {
	f := func(lpn uint64, obj, region uint32, seq uint64, flags uint16) bool {
		m := PageMeta{LPN: lpn, ObjectID: obj, RegionID: region, Seq: seq, Flags: flags}
		return UnmarshalMeta(m.Marshal()) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
