// Package flash models a native NAND flash device: a loose set of dies
// behind a handful of channels, exposed through the raw command set the
// paper's NoFTL architecture assumes (Read Page, Program Page, Erase Block,
// Copyback, and page metadata handling), with realistic NAND constraints
// (erase-before-program, sequential programming within a block, wear-out) and
// a virtual-time queueing model of per-die and per-channel contention.
//
// The device does not implement any translation layer, garbage collection or
// wear leveling: those are the responsibility of the layer above (the DBMS
// under NoFTL — see internal/core — or the black-box FTL baseline in
// internal/ftl).
package flash

import (
	"fmt"
	"time"
)

// Geometry describes the physical organization of the device.
type Geometry struct {
	// Channels is the number of independent data channels.
	Channels int
	// DiesPerChannel is the number of NAND dies attached to each channel.
	// (Chips are collapsed into dies; a die is the unit of command
	// parallelism.)
	DiesPerChannel int
	// PlanesPerDie is the number of planes per die.  Blocks are numbered
	// die-wide; the plane of a block is Block % PlanesPerDie.
	PlanesPerDie int
	// BlocksPerDie is the number of erase blocks per die (across all planes).
	BlocksPerDie int
	// PagesPerBlock is the number of pages in an erase block.
	PagesPerBlock int
	// PageSize is the data capacity of a flash page in bytes (the DBMS page
	// size; 4 KiB in the paper's evaluation).
	PageSize int
}

// Dies returns the total number of dies in the device.
func (g Geometry) Dies() int { return g.Channels * g.DiesPerChannel }

// PagesPerDie returns the number of pages on one die.
func (g Geometry) PagesPerDie() int { return g.BlocksPerDie * g.PagesPerBlock }

// TotalPages returns the number of physical pages in the device.
func (g Geometry) TotalPages() int64 {
	return int64(g.Dies()) * int64(g.PagesPerDie())
}

// TotalBytes returns the raw capacity of the device in bytes.
func (g Geometry) TotalBytes() int64 {
	return g.TotalPages() * int64(g.PageSize)
}

// ChannelOfDie returns the channel a die is attached to.  Dies are assigned
// round-robin so that consecutive die numbers land on different channels,
// which maximizes channel-level parallelism for striped allocation.
func (g Geometry) ChannelOfDie(die int) int { return die % g.Channels }

// PlaneOfBlock returns the plane a block belongs to.
func (g Geometry) PlaneOfBlock(block int) int {
	if g.PlanesPerDie <= 1 {
		return 0
	}
	return block % g.PlanesPerDie
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	switch {
	case g.Channels <= 0:
		return fmt.Errorf("flash: geometry needs at least one channel, got %d", g.Channels)
	case g.DiesPerChannel <= 0:
		return fmt.Errorf("flash: geometry needs at least one die per channel, got %d", g.DiesPerChannel)
	case g.PlanesPerDie <= 0:
		return fmt.Errorf("flash: geometry needs at least one plane per die, got %d", g.PlanesPerDie)
	case g.BlocksPerDie <= 0:
		return fmt.Errorf("flash: geometry needs at least one block per die, got %d", g.BlocksPerDie)
	case g.PagesPerBlock <= 0:
		return fmt.Errorf("flash: geometry needs at least one page per block, got %d", g.PagesPerBlock)
	case g.PageSize <= 0:
		return fmt.Errorf("flash: page size must be positive, got %d", g.PageSize)
	case g.BlocksPerDie%g.PlanesPerDie != 0:
		return fmt.Errorf("flash: blocks per die (%d) must be a multiple of planes per die (%d)",
			g.BlocksPerDie, g.PlanesPerDie)
	}
	return nil
}

func (g Geometry) String() string {
	return fmt.Sprintf("%d ch x %d dies, %d blocks/die, %d pages/block, %d B pages (%.1f MiB raw)",
		g.Channels, g.DiesPerChannel, g.BlocksPerDie, g.PagesPerBlock, g.PageSize,
		float64(g.TotalBytes())/(1<<20))
}

// Timing holds the latency parameters of the NAND cells and the channel.
type Timing struct {
	// ReadPage is the cell-to-register sense latency of a page read.
	ReadPage time.Duration
	// ProgramPage is the register-to-cell program latency.
	ProgramPage time.Duration
	// EraseBlock is the block erase latency.
	EraseBlock time.Duration
	// Transfer is the time to move one full page over the channel.
	Transfer time.Duration
	// MetaTransfer is the time to move only the page metadata (OOB area)
	// over the channel.
	MetaTransfer time.Duration
}

// DefaultTiming returns SLC-like NAND timings in the range the NoFTL papers
// report for their prototype hardware (page read a few tens of µs, program a
// few hundred µs, erase ~1.5 ms, ~400 MB/s channel).
func DefaultTiming() Timing {
	return Timing{
		ReadPage:     40 * time.Microsecond,
		ProgramPage:  350 * time.Microsecond,
		EraseBlock:   1500 * time.Microsecond,
		Transfer:     10 * time.Microsecond,
		MetaTransfer: 2 * time.Microsecond,
	}
}

// Addr identifies one physical flash page.
type Addr struct {
	Die   int // global die index, 0 .. Geometry.Dies()-1
	Block int // block index within the die
	Page  int // page index within the block
}

// BlockAddr identifies one erase block.
type BlockAddr struct {
	Die   int
	Block int
}

// Block returns the block containing the page.
func (a Addr) BlockAddr() BlockAddr { return BlockAddr{Die: a.Die, Block: a.Block} }

func (a Addr) String() string {
	return fmt.Sprintf("d%d/b%d/p%d", a.Die, a.Block, a.Page)
}

func (b BlockAddr) String() string {
	return fmt.Sprintf("d%d/b%d", b.Die, b.Block)
}

// PageIndex returns a dense index of the page within the device, usable as a
// map key or array offset.
func (g Geometry) PageIndex(a Addr) int64 {
	return (int64(a.Die)*int64(g.BlocksPerDie)+int64(a.Block))*int64(g.PagesPerBlock) + int64(a.Page)
}

// AddrOfIndex is the inverse of PageIndex.
func (g Geometry) AddrOfIndex(idx int64) Addr {
	page := int(idx % int64(g.PagesPerBlock))
	idx /= int64(g.PagesPerBlock)
	block := int(idx % int64(g.BlocksPerDie))
	die := int(idx / int64(g.BlocksPerDie))
	return Addr{Die: die, Block: block, Page: page}
}

// ValidAddr reports whether a lies within the geometry.
func (g Geometry) ValidAddr(a Addr) bool {
	return a.Die >= 0 && a.Die < g.Dies() &&
		a.Block >= 0 && a.Block < g.BlocksPerDie &&
		a.Page >= 0 && a.Page < g.PagesPerBlock
}

// ValidBlock reports whether b lies within the geometry.
func (g Geometry) ValidBlock(b BlockAddr) bool {
	return b.Die >= 0 && b.Die < g.Dies() && b.Block >= 0 && b.Block < g.BlocksPerDie
}
