package flash

import "encoding/binary"

// PageMeta is the out-of-band (OOB) metadata stored alongside every
// programmed page.  Under NoFTL the DBMS uses it to make the physical page
// self-describing: which logical page it holds, which database object the
// page belongs to, and a monotonically increasing write sequence so that the
// newest physical copy of a logical page can be identified during recovery
// scans.
type PageMeta struct {
	// LPN is the logical page number stored in this physical page.
	LPN uint64
	// ObjectID identifies the database object (table, index, log, catalog)
	// the page belongs to; zero means unknown/none.
	ObjectID uint32
	// RegionID is the NoFTL region the page was placed in when written.
	RegionID uint32
	// Seq is the write sequence number (higher = newer copy of the LPN).
	Seq uint64
	// Flags carries layer-specific bits (e.g. log page, metadata page).
	Flags uint16
}

// MetaSize is the size of the serialized OOB metadata in bytes.
const MetaSize = 8 + 4 + 4 + 8 + 2

// Marshal serializes the metadata into a fixed-size OOB byte image.
func (m PageMeta) Marshal() [MetaSize]byte {
	var b [MetaSize]byte
	binary.LittleEndian.PutUint64(b[0:], m.LPN)
	binary.LittleEndian.PutUint32(b[8:], m.ObjectID)
	binary.LittleEndian.PutUint32(b[12:], m.RegionID)
	binary.LittleEndian.PutUint64(b[16:], m.Seq)
	binary.LittleEndian.PutUint16(b[24:], m.Flags)
	return b
}

// UnmarshalMeta reconstructs metadata from its OOB byte image.
func UnmarshalMeta(b [MetaSize]byte) PageMeta {
	return PageMeta{
		LPN:      binary.LittleEndian.Uint64(b[0:]),
		ObjectID: binary.LittleEndian.Uint32(b[8:]),
		RegionID: binary.LittleEndian.Uint32(b[12:]),
		Seq:      binary.LittleEndian.Uint64(b[16:]),
		Flags:    binary.LittleEndian.Uint16(b[24:]),
	}
}

// Flag bits used by the storage layers above.
const (
	// FlagLog marks write-ahead-log pages.
	FlagLog uint16 = 1 << iota
	// FlagCatalog marks catalog/metadata pages.
	FlagCatalog
	// FlagIndex marks index pages.
	FlagIndex
	// FlagHeap marks heap (table) pages.
	FlagHeap
)
