package flash

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"noftl/internal/sim"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Geometry = Geometry{
		Channels:       2,
		DiesPerChannel: 2,
		PlanesPerDie:   1,
		BlocksPerDie:   8,
		PagesPerBlock:  4,
		PageSize:       512,
	}
	return cfg
}

func newTestDevice(t *testing.T, cfg Config) *Device {
	t.Helper()
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	return d
}

func pageData(size int, fill byte) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestNewDeviceRejectsBadGeometry(t *testing.T) {
	cfg := testConfig()
	cfg.Geometry.Channels = 0
	if _, err := NewDevice(cfg); err == nil {
		t.Fatal("invalid geometry accepted")
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	cfg := testConfig()
	d := newTestDevice(t, cfg)
	addr := Addr{Die: 1, Block: 2, Page: 0}
	data := pageData(cfg.Geometry.PageSize, 0xAB)
	meta := PageMeta{LPN: 77, ObjectID: 3, RegionID: 1, Seq: 9, Flags: FlagHeap}

	done, err := d.ProgramPage(0, addr, data, meta)
	if err != nil {
		t.Fatalf("ProgramPage: %v", err)
	}
	if done <= 0 {
		t.Fatalf("program completion time not advanced: %v", done)
	}
	got, gotMeta, rdone, err := d.ReadPage(done, addr, nil)
	if err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read data differs from programmed data")
	}
	if gotMeta != meta {
		t.Fatalf("meta mismatch: %+v vs %+v", gotMeta, meta)
	}
	if rdone <= done {
		t.Fatal("read completion time did not advance")
	}
	// Reading into a caller-provided buffer works too.
	buf := make([]byte, cfg.Geometry.PageSize)
	if _, _, _, err := d.ReadPage(rdone, addr, buf); err != nil {
		t.Fatalf("ReadPage into buffer: %v", err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("buffered read data differs")
	}
	m, _, err := d.ReadMeta(rdone, addr)
	if err != nil || m != meta {
		t.Fatalf("ReadMeta: %v %+v", err, m)
	}
}

func TestProgramConstraints(t *testing.T) {
	cfg := testConfig()
	d := newTestDevice(t, cfg)
	data := pageData(cfg.Geometry.PageSize, 1)

	// Out of range.
	if _, err := d.ProgramPage(0, Addr{Die: 99, Block: 0, Page: 0}, data, PageMeta{}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
	// Wrong payload size.
	if _, err := d.ProgramPage(0, Addr{}, pageData(10, 1), PageMeta{}); !errors.Is(err, ErrPageSize) {
		t.Fatalf("want ErrPageSize, got %v", err)
	}
	// Sequential programming: page 1 before page 0 is rejected.
	if _, err := d.ProgramPage(0, Addr{Die: 0, Block: 0, Page: 1}, data, PageMeta{}); !errors.Is(err, ErrProgramOrder) {
		t.Fatalf("want ErrProgramOrder, got %v", err)
	}
	// Program page 0, then rewriting it is rejected.
	if _, err := d.ProgramPage(0, Addr{Die: 0, Block: 0, Page: 0}, data, PageMeta{}); err != nil {
		t.Fatalf("ProgramPage: %v", err)
	}
	if _, err := d.ProgramPage(0, Addr{Die: 0, Block: 0, Page: 0}, data, PageMeta{}); !errors.Is(err, ErrNotErased) {
		t.Fatalf("want ErrNotErased, got %v", err)
	}
	// Reading an erased page fails.
	if _, _, _, err := d.ReadPage(0, Addr{Die: 0, Block: 0, Page: 3}, nil); !errors.Is(err, ErrReadErased) {
		t.Fatalf("want ErrReadErased, got %v", err)
	}
	if _, _, err := d.ReadMeta(0, Addr{Die: 0, Block: 0, Page: 3}); !errors.Is(err, ErrReadErased) {
		t.Fatalf("want ErrReadErased from ReadMeta, got %v", err)
	}
	// NextProgrammablePage reflects the constraint.
	if n, _ := d.NextProgrammablePage(BlockAddr{0, 0}); n != 1 {
		t.Fatalf("NextProgrammablePage = %d, want 1", n)
	}
}

func TestProgramOrderRelaxed(t *testing.T) {
	cfg := testConfig()
	cfg.EnforceProgramOrder = false
	d := newTestDevice(t, cfg)
	data := pageData(cfg.Geometry.PageSize, 1)
	if _, err := d.ProgramPage(0, Addr{Die: 0, Block: 0, Page: 2}, data, PageMeta{}); err != nil {
		t.Fatalf("out-of-order program rejected with relaxed mode: %v", err)
	}
}

func TestEraseResetsBlock(t *testing.T) {
	cfg := testConfig()
	d := newTestDevice(t, cfg)
	data := pageData(cfg.Geometry.PageSize, 7)
	addr := Addr{Die: 0, Block: 1, Page: 0}
	if _, err := d.ProgramPage(0, addr, data, PageMeta{LPN: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.EraseBlock(0, addr.BlockAddr()); err != nil {
		t.Fatal(err)
	}
	if ok, _ := d.PageProgrammed(addr); ok {
		t.Fatal("page still programmed after erase")
	}
	if n, _ := d.NextProgrammablePage(addr.BlockAddr()); n != 0 {
		t.Fatalf("nextPage after erase = %d", n)
	}
	if c, _ := d.EraseCount(addr.BlockAddr()); c != 1 {
		t.Fatalf("erase count = %d", c)
	}
	// The page can be programmed again after the erase.
	if _, err := d.ProgramPage(0, addr, data, PageMeta{LPN: 6}); err != nil {
		t.Fatalf("program after erase: %v", err)
	}
	if _, err := d.EraseBlock(0, BlockAddr{Die: 0, Block: 99}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
}

func TestEnduranceMarksBlocksBad(t *testing.T) {
	cfg := testConfig()
	cfg.EraseEndurance = 3
	d := newTestDevice(t, cfg)
	b := BlockAddr{Die: 0, Block: 0}
	for i := 0; i < 3; i++ {
		if _, err := d.EraseBlock(0, b); err != nil {
			t.Fatalf("erase %d: %v", i, err)
		}
	}
	if bad, _ := d.IsBad(b); !bad {
		t.Fatal("block not marked bad after reaching endurance")
	}
	if _, err := d.EraseBlock(0, b); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("want ErrBadBlock, got %v", err)
	}
	if _, err := d.ProgramPage(0, Addr{Die: 0, Block: 0, Page: 0}, pageData(cfg.Geometry.PageSize, 1), PageMeta{}); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("want ErrBadBlock on program, got %v", err)
	}
	st := d.Stats()
	if st.BadBlocks != 1 {
		t.Fatalf("BadBlocks = %d", st.BadBlocks)
	}
}

func TestCopyback(t *testing.T) {
	cfg := testConfig()
	d := newTestDevice(t, cfg)
	data := pageData(cfg.Geometry.PageSize, 0x5A)
	src := Addr{Die: 1, Block: 0, Page: 0}
	dst := Addr{Die: 1, Block: 3, Page: 0}
	meta := PageMeta{LPN: 123, Seq: 4}
	if _, err := d.ProgramPage(0, src, data, meta); err != nil {
		t.Fatal(err)
	}
	gotMeta, done, err := d.Copyback(0, src, dst)
	if err != nil {
		t.Fatalf("Copyback: %v", err)
	}
	if gotMeta != meta {
		t.Fatalf("copyback meta mismatch: %+v", gotMeta)
	}
	if done <= 0 {
		t.Fatal("copyback did not consume time")
	}
	got, m, _, err := d.ReadPage(done, dst, nil)
	if err != nil || !bytes.Equal(got, data) || m != meta {
		t.Fatalf("copyback destination wrong: %v", err)
	}
	// Cross-die copyback is rejected.
	if _, _, err := d.Copyback(0, src, Addr{Die: 0, Block: 0, Page: 0}); !errors.Is(err, ErrCopybackCrossDie) {
		t.Fatalf("want ErrCopybackCrossDie, got %v", err)
	}
	// Copyback from an erased page is rejected.
	if _, _, err := d.Copyback(0, Addr{Die: 1, Block: 5, Page: 0}, Addr{Die: 1, Block: 6, Page: 0}); !errors.Is(err, ErrReadErased) {
		t.Fatalf("want ErrReadErased, got %v", err)
	}
	// Copyback onto a programmed page is rejected.
	if _, _, err := d.Copyback(0, src, dst); !errors.Is(err, ErrNotErased) {
		t.Fatalf("want ErrNotErased, got %v", err)
	}
}

func TestVirtualTimeQueueingOnOneDie(t *testing.T) {
	cfg := testConfig()
	d := newTestDevice(t, cfg)
	data := pageData(cfg.Geometry.PageSize, 1)
	// Two programs to the same die issued at the same virtual instant must be
	// serialized on the die.
	done1, err := d.ProgramPage(0, Addr{Die: 0, Block: 0, Page: 0}, data, PageMeta{})
	if err != nil {
		t.Fatal(err)
	}
	done2, err := d.ProgramPage(0, Addr{Die: 0, Block: 0, Page: 1}, data, PageMeta{})
	if err != nil {
		t.Fatal(err)
	}
	if done2 <= done1 {
		t.Fatalf("second program on the same die not serialized: %v vs %v", done2, done1)
	}
	// Programs to dies on different channels overlap almost completely.
	dA, err := d.ProgramPage(0, Addr{Die: 2, Block: 0, Page: 0}, data, PageMeta{})
	if err != nil {
		t.Fatal(err)
	}
	dB, err := d.ProgramPage(0, Addr{Die: 3, Block: 0, Page: 0}, data, PageMeta{})
	if err != nil {
		t.Fatal(err)
	}
	serial := cfg.Timing.Transfer + cfg.Timing.ProgramPage
	if dA > sim.Time(2*serial) || dB > sim.Time(2*serial) {
		t.Fatalf("independent dies appear serialized: %v %v", dA, dB)
	}
}

func TestDeviceStatsAndReset(t *testing.T) {
	cfg := testConfig()
	d := newTestDevice(t, cfg)
	data := pageData(cfg.Geometry.PageSize, 1)
	if _, err := d.ProgramPage(0, Addr{Die: 0, Block: 0, Page: 0}, data, PageMeta{}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := d.ReadPage(0, Addr{Die: 0, Block: 0, Page: 0}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.EraseBlock(0, BlockAddr{Die: 0, Block: 1}); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Programs != 1 || st.Reads != 1 || st.Erases != 1 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if len(st.PerDie) != cfg.Geometry.Dies() {
		t.Fatalf("per-die stats length %d", len(st.PerDie))
	}
	if st.PerDie[0].Programs != 1 || st.PerDie[0].Reads != 1 || st.PerDie[0].Erases != 1 {
		t.Fatalf("die 0 stats wrong: %+v", st.PerDie[0])
	}
	if st.PerDie[0].BusyTime <= 0 {
		t.Fatal("die busy time not accounted")
	}
	if st.PerDie[0].TotalWear != 1 {
		t.Fatalf("wear = %d", st.PerDie[0].TotalWear)
	}
	if st.PerDie[0].FreeBlocks != cfg.Geometry.BlocksPerDie-1 {
		t.Fatalf("free blocks = %d", st.PerDie[0].FreeBlocks)
	}
	d.ResetCounters()
	st = d.Stats()
	if st.Programs != 0 || st.Reads != 0 || st.Erases != 0 || st.PerDie[0].Programs != 0 {
		t.Fatalf("counters not reset: %+v", st)
	}
	// Wear survives a counter reset.
	if st.PerDie[0].TotalWear != 1 {
		t.Fatalf("wear lost on reset: %d", st.PerDie[0].TotalWear)
	}
}

func TestNoStoreDataMode(t *testing.T) {
	cfg := testConfig()
	cfg.StoreData = false
	d := newTestDevice(t, cfg)
	addr := Addr{Die: 0, Block: 0, Page: 0}
	if _, err := d.ProgramPage(0, addr, nil, PageMeta{LPN: 9}); err != nil {
		t.Fatal(err)
	}
	data, meta, _, err := d.ReadPage(0, addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if data != nil {
		t.Fatal("data returned in no-store mode")
	}
	if meta.LPN != 9 {
		t.Fatalf("meta lost: %+v", meta)
	}
}

func TestConcurrentProgramsAreSafe(t *testing.T) {
	cfg := testConfig()
	cfg.Geometry.BlocksPerDie = 64
	d := newTestDevice(t, cfg)
	data := pageData(cfg.Geometry.PageSize, 3)
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Geometry.Dies())
	for die := 0; die < cfg.Geometry.Dies(); die++ {
		wg.Add(1)
		go func(die int) {
			defer wg.Done()
			now := sim.Time(0)
			for b := 0; b < 8; b++ {
				for p := 0; p < cfg.Geometry.PagesPerBlock; p++ {
					done, err := d.ProgramPage(now, Addr{Die: die, Block: b, Page: p}, data, PageMeta{LPN: uint64(p)})
					if err != nil {
						errs <- err
						return
					}
					now = done
				}
			}
		}(die)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := d.Stats()
	want := int64(cfg.Geometry.Dies() * 8 * cfg.Geometry.PagesPerBlock)
	if st.Programs != want {
		t.Fatalf("programs = %d, want %d", st.Programs, want)
	}
}

func TestPaperConfigGeometry(t *testing.T) {
	cfg := PaperConfig(256)
	if err := cfg.Geometry.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Geometry.Dies() != 64 {
		t.Fatalf("paper config has %d dies, want 64", cfg.Geometry.Dies())
	}
	if cfg.Geometry.PageSize != 4096 {
		t.Fatalf("page size = %d", cfg.Geometry.PageSize)
	}
}

func TestDefaultTimingSane(t *testing.T) {
	tm := DefaultTiming()
	if tm.ReadPage <= 0 || tm.ProgramPage <= tm.ReadPage || tm.EraseBlock <= tm.ProgramPage {
		t.Fatalf("implausible NAND timing: %+v", tm)
	}
	if tm.Transfer <= 0 || tm.MetaTransfer <= 0 || tm.MetaTransfer >= tm.Transfer {
		t.Fatalf("implausible transfer timing: %+v", tm)
	}
	if tm.EraseBlock > 20*time.Millisecond {
		t.Fatalf("erase latency out of NAND range: %v", tm.EraseBlock)
	}
}
