package flash

import (
	"errors"
	"fmt"
	"sync"

	"noftl/internal/sim"
)

// ErrCrashed reports an operation issued against a device that has hit (or
// already passed) an armed crash point.  Every command fails with it until
// Revive is called; the failing command itself takes no effect, so a crash is
// atomic at page-program granularity (except for an explicitly torn program,
// see FaultPlan.TornTailBytes).
var ErrCrashed = errors.New("flash: device crashed (fault injection)")

// ErrProgramFault reports an injected transient program failure.  The page
// stays erased; the caller may retry on a different page or block.
var ErrProgramFault = errors.New("flash: injected program failure")

// ErrEraseFault reports an injected erase failure on a worn block.  The block
// is marked bad, exactly like a block that exhausted its configured
// endurance.
var ErrEraseFault = errors.New("flash: injected erase failure (worn block)")

// FaultPlan is a deterministic fault-injection schedule.  All decisions
// derive from Seed and the op sequence, so a plan replayed against the same
// workload fails at exactly the same points.  The zero value injects
// nothing.
type FaultPlan struct {
	// Seed drives the plan's pseudo-random decisions.
	Seed uint64
	// CrashAtTime crashes the device at the first command whose start time
	// is >= the given virtual time (0 = disabled).
	CrashAtTime sim.Time
	// CrashAfterOps crashes the device on the Nth command after arming
	// (0 = disabled).  Counting includes every read, program, erase and
	// copyback, so crash points land inside GC relocations, checkpoint
	// flushes and group-commit forces as the workload dictates.
	CrashAfterOps int64
	// TornTailBytes, when > 0, makes the crash-triggering command — if it is
	// a page program — apply only a prefix of the page payload, leaving the
	// final TornTailBytes bytes unwritten (zero).  This models a program
	// interrupted by power loss; the OOB metadata is still written, so the
	// page looks programmed but fails content validation.
	TornTailBytes int
	// FailProgramEvery injects a transient ErrProgramFault on every Nth
	// program (0 = disabled).  The target page stays erased.
	FailProgramEvery int64
	// FailEraseEvery injects an ErrEraseFault on every Nth erase
	// (0 = disabled).  The block is marked bad, modelling wear-out.
	FailEraseEvery int64
	// FailProgramProb and FailEraseProb inject the same failures
	// probabilistically (per command, seeded by Seed).
	FailProgramProb float64
	FailEraseProb   float64
}

// enabled reports whether the plan can ever inject anything.
func (p FaultPlan) enabled() bool {
	return p.CrashAtTime > 0 || p.CrashAfterOps > 0 ||
		p.FailProgramEvery > 0 || p.FailEraseEvery > 0 ||
		p.FailProgramProb > 0 || p.FailEraseProb > 0
}

// faultState is the armed plan plus its mutable counters.
type faultState struct {
	mu       sync.Mutex
	plan     FaultPlan
	rng      *sim.Rand
	ops      int64
	programs int64
	erases   int64
	crashed  bool
}

// opKind classifies device commands for fault accounting.
type opKind uint8

const (
	opRead opKind = iota
	opProgram
	opErase
	opCopyback
)

// faultDecision tells the calling command what to do.
type faultDecision struct {
	crash       bool // fail with ErrCrashed; op takes no effect
	tornProgram bool // crash, but program a torn prefix first
	tornBytes   int
	failProgram bool // fail with ErrProgramFault; page stays erased
	failErase   bool // fail with ErrEraseFault; block goes bad
}

// Arm installs a fault plan.  Arming replaces any previous plan and resets
// its counters; arming the zero plan disarms injection entirely.
func (d *Device) Arm(plan FaultPlan) {
	d.faultMu.Lock()
	defer d.faultMu.Unlock()
	if !plan.enabled() {
		d.fault = nil
		return
	}
	d.fault = &faultState{plan: plan, rng: sim.NewRand(plan.Seed | 1)}
}

// Crashed reports whether the device has hit an armed crash point and has
// not been revived.
func (d *Device) Crashed() bool {
	d.faultMu.Lock()
	defer d.faultMu.Unlock()
	return d.fault != nil && d.fault.crashed
}

// Revive clears the crashed state and disarms the fault plan, modelling a
// power cycle.  Durable state (programmed pages, wear, bad blocks — including
// any torn page written at the crash point) is untouched; recovery decides
// what of it is still meaningful.
func (d *Device) Revive() {
	d.faultMu.Lock()
	defer d.faultMu.Unlock()
	d.fault = nil
}

// faultOp runs the fault plan for one command.  It returns the decision the
// command must honour before touching any die state.
func (d *Device) faultOp(now sim.Time, kind opKind) faultDecision {
	d.faultMu.Lock()
	defer d.faultMu.Unlock()
	f := d.fault
	if f == nil {
		return faultDecision{}
	}
	if f.crashed {
		return faultDecision{crash: true}
	}
	f.ops++
	p := f.plan
	if (p.CrashAfterOps > 0 && f.ops >= p.CrashAfterOps) ||
		(p.CrashAtTime > 0 && now >= p.CrashAtTime) {
		f.crashed = true
		if kind == opProgram && p.TornTailBytes > 0 {
			return faultDecision{crash: true, tornProgram: true, tornBytes: p.TornTailBytes}
		}
		return faultDecision{crash: true}
	}
	switch kind {
	case opProgram, opCopyback:
		f.programs++
		if (p.FailProgramEvery > 0 && f.programs%p.FailProgramEvery == 0) ||
			(p.FailProgramProb > 0 && f.rng.Float64() < p.FailProgramProb) {
			return faultDecision{failProgram: true}
		}
	case opErase:
		f.erases++
		if (p.FailEraseEvery > 0 && f.erases%p.FailEraseEvery == 0) ||
			(p.FailEraseProb > 0 && f.rng.Float64() < p.FailEraseProb) {
			return faultDecision{failErase: true}
		}
	}
	return faultDecision{}
}

// PageSurvey is one programmed page found by Survey.
type PageSurvey struct {
	Addr Addr
	Meta PageMeta
}

// BlockSurvey is the durable state of one erase block as found by Survey.
type BlockSurvey struct {
	Addr       BlockAddr
	Bad        bool
	EraseCount int64
	NextPage   int
	// Pages lists every programmed page of the block in program order,
	// including superseded versions of rewritten logical pages.
	Pages []PageSurvey
}

// Survey walks the device's durable state: every block's wear and bad-block
// flag plus the OOB metadata of every programmed page.  It is the bulk form
// of the post-crash OOB scan recovery performs to rebuild the logical-to-
// physical mapping, and does not consume virtual time (the cost is charged by
// the recovery path that interprets it).
func (d *Device) Survey() []BlockSurvey {
	out := make([]BlockSurvey, 0, d.geo.Dies()*d.geo.BlocksPerDie)
	for die, ds := range d.dies {
		ds.mu.Lock()
		for b := range ds.blocks {
			blk := &ds.blocks[b]
			bs := BlockSurvey{
				Addr:       BlockAddr{Die: die, Block: b},
				Bad:        blk.bad,
				EraseCount: blk.eraseCount,
				NextPage:   blk.nextPage,
			}
			for p := 0; p < d.geo.PagesPerBlock; p++ {
				if blk.states[p] != pageProgrammed {
					continue
				}
				bs.Pages = append(bs.Pages, PageSurvey{
					Addr: Addr{Die: die, Block: b, Page: p},
					Meta: blk.meta[p],
				})
			}
			out = append(out, bs)
		}
		ds.mu.Unlock()
	}
	return out
}

// CorruptPage XORs n stored data bytes of a programmed page with pattern,
// starting at byte offset off.  It models silent media corruption for
// recovery tests and does not consume virtual time.
func (d *Device) CorruptPage(addr Addr, off, n int, pattern byte) error {
	if !d.geo.ValidAddr(addr) {
		return fmt.Errorf("%w: %v", ErrOutOfRange, addr)
	}
	if off < 0 || n < 0 || off+n > d.geo.PageSize {
		return fmt.Errorf("%w: corrupt range [%d,%d)", ErrOutOfRange, off, off+n)
	}
	ds := d.dies[addr.Die]
	ds.mu.Lock()
	defer ds.mu.Unlock()
	blk := &ds.blocks[addr.Block]
	if blk.states[addr.Page] != pageProgrammed {
		return fmt.Errorf("%w: %v", ErrReadErased, addr)
	}
	if blk.data == nil || blk.data[addr.Page] == nil {
		return fmt.Errorf("%w: device does not store data", ErrPageSize)
	}
	data := blk.data[addr.Page]
	for i := 0; i < n; i++ {
		data[off+i] ^= pattern
	}
	return nil
}
