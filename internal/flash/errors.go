package flash

import "errors"

// Errors returned by the device model.  They correspond to conditions a real
// native-flash controller would report: addressing outside the device,
// violating NAND programming constraints, or operating on worn-out blocks.
var (
	// ErrOutOfRange reports an address outside the device geometry.
	ErrOutOfRange = errors.New("flash: address out of range")
	// ErrNotErased reports a program to a page that has already been
	// programmed since the last erase of its block (in-place overwrite).
	ErrNotErased = errors.New("flash: page is not in erased state")
	// ErrProgramOrder reports a program that violates the sequential
	// page-programming constraint within a block.
	ErrProgramOrder = errors.New("flash: pages within a block must be programmed sequentially")
	// ErrReadErased reports a read of a page that has never been programmed
	// since the last erase.
	ErrReadErased = errors.New("flash: read of erased page")
	// ErrBadBlock reports an operation on a block marked bad (worn out).
	ErrBadBlock = errors.New("flash: block is marked bad")
	// ErrCopybackCrossDie reports a copyback whose source and destination are
	// on different dies; the on-die copyback command cannot cross dies.
	ErrCopybackCrossDie = errors.New("flash: copyback source and destination must be on the same die")
	// ErrPageSize reports a program whose payload does not match the page
	// size of the device.
	ErrPageSize = errors.New("flash: payload size does not match device page size")
)
