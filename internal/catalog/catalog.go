// Package catalog holds the schema of the database: regions, tablespaces,
// tables, indexes and their columns.  It is the bridge between the paper's
// DDL (CREATE REGION / TABLESPACE / TABLE) and the physical layers: every
// object records which tablespace — and therefore which region — it lives
// in.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"noftl/internal/core"
)

// Errors returned by the catalog.
var (
	// ErrExists reports creation of an object whose name is taken.
	ErrExists = errors.New("catalog: object already exists")
	// ErrNotFound reports a lookup of an unknown object.
	ErrNotFound = errors.New("catalog: object not found")
	// ErrInUse reports dropping an object that other objects depend on.
	ErrInUse = errors.New("catalog: object is in use")
)

// Column describes one table column (name and a free-form SQL type).
type Column struct {
	Name string
	Type string
}

// Region is the catalog entry of a NoFTL region.
type Region struct {
	Name         string
	ID           core.RegionID
	MaxChips     int
	MaxChannels  int
	MaxSizeBytes int64
	// GC is the region's garbage-collection policy (victim selection,
	// background step size, hot/cold separation), settable per region via
	// CREATE REGION and ALTER REGION.
	GC core.GCPolicy
}

// Tablespace is the catalog entry of a tablespace.
type Tablespace struct {
	Name        string
	Region      string
	ExtentPages int
}

// Table is the catalog entry of a table.
type Table struct {
	Name       string
	ObjectID   uint32
	Tablespace string
	Columns    []Column
}

// Index is the catalog entry of an index.
type Index struct {
	Name       string
	ObjectID   uint32
	Table      string
	Columns    []string
	Unique     bool
	Tablespace string
}

// Catalog is the in-memory schema registry.  All methods are safe for
// concurrent use.
type Catalog struct {
	mu          sync.RWMutex
	regions     map[string]*Region
	tablespaces map[string]*Tablespace
	tables      map[string]*Table
	indexes     map[string]*Index
	nextObject  uint32
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		regions:     make(map[string]*Region),
		tablespaces: make(map[string]*Tablespace),
		tables:      make(map[string]*Table),
		indexes:     make(map[string]*Index),
		nextObject:  1,
	}
}

// NextObjectID hands out a fresh object id.
func (c *Catalog) NextObjectID() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextObject
	c.nextObject++
	return id
}

// EnsureNextObjectID raises the object-id counter so fresh ids never collide
// with ids preserved across recovery.
func (c *Catalog) EnsureNextObjectID(min uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.nextObject < min {
		c.nextObject = min
	}
}

// AddRegion registers a region.
func (c *Catalog) AddRegion(r Region) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.regions[r.Name]; ok {
		return fmt.Errorf("%w: region %q", ErrExists, r.Name)
	}
	c.regions[r.Name] = &r
	return nil
}

// Region returns a region entry.
func (c *Catalog) Region(name string) (Region, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.regions[name]
	if !ok {
		return Region{}, false
	}
	return *r, true
}

// UpdateRegionGC replaces the stored garbage-collection policy of a region
// (the catalog side of ALTER REGION … SET GC_POLICY=…).
func (c *Catalog) UpdateRegionGC(name string, gc core.GCPolicy) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.regions[name]
	if !ok {
		return fmt.Errorf("%w: region %q", ErrNotFound, name)
	}
	r.GC = gc
	return nil
}

// DropRegion removes a region that no tablespace references.
func (c *Catalog) DropRegion(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.regions[name]; !ok {
		return fmt.Errorf("%w: region %q", ErrNotFound, name)
	}
	for _, ts := range c.tablespaces {
		if ts.Region == name {
			return fmt.Errorf("%w: region %q used by tablespace %q", ErrInUse, name, ts.Name)
		}
	}
	delete(c.regions, name)
	return nil
}

// AddTablespace registers a tablespace.
func (c *Catalog) AddTablespace(ts Tablespace) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tablespaces[ts.Name]; ok {
		return fmt.Errorf("%w: tablespace %q", ErrExists, ts.Name)
	}
	if ts.Region != "" && ts.Region != core.DefaultRegionName {
		if _, ok := c.regions[ts.Region]; !ok {
			return fmt.Errorf("%w: region %q", ErrNotFound, ts.Region)
		}
	}
	c.tablespaces[ts.Name] = &ts
	return nil
}

// Tablespace returns a tablespace entry.
func (c *Catalog) Tablespace(name string) (Tablespace, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ts, ok := c.tablespaces[name]
	if !ok {
		return Tablespace{}, false
	}
	return *ts, true
}

// DropTablespace removes a tablespace that no table or index uses.
func (c *Catalog) DropTablespace(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tablespaces[name]; !ok {
		return fmt.Errorf("%w: tablespace %q", ErrNotFound, name)
	}
	for _, t := range c.tables {
		if t.Tablespace == name {
			return fmt.Errorf("%w: tablespace %q used by table %q", ErrInUse, name, t.Name)
		}
	}
	for _, i := range c.indexes {
		if i.Tablespace == name {
			return fmt.Errorf("%w: tablespace %q used by index %q", ErrInUse, name, i.Name)
		}
	}
	delete(c.tablespaces, name)
	return nil
}

// AddTable registers a table.
func (c *Catalog) AddTable(t Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[t.Name]; ok {
		return fmt.Errorf("%w: table %q", ErrExists, t.Name)
	}
	if t.Tablespace != "" {
		if _, ok := c.tablespaces[t.Tablespace]; !ok {
			return fmt.Errorf("%w: tablespace %q", ErrNotFound, t.Tablespace)
		}
	}
	c.tables[t.Name] = &t
	return nil
}

// Table returns a table entry.
func (c *Catalog) Table(name string) (Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return Table{}, false
	}
	return *t, true
}

// DropTable removes a table and its indexes.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; !ok {
		return fmt.Errorf("%w: table %q", ErrNotFound, name)
	}
	delete(c.tables, name)
	for iname, idx := range c.indexes {
		if idx.Table == name {
			delete(c.indexes, iname)
		}
	}
	return nil
}

// AddIndex registers an index.
func (c *Catalog) AddIndex(i Index) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.indexes[i.Name]; ok {
		return fmt.Errorf("%w: index %q", ErrExists, i.Name)
	}
	if _, ok := c.tables[i.Table]; !ok {
		return fmt.Errorf("%w: table %q", ErrNotFound, i.Table)
	}
	if i.Tablespace != "" {
		if _, ok := c.tablespaces[i.Tablespace]; !ok {
			return fmt.Errorf("%w: tablespace %q", ErrNotFound, i.Tablespace)
		}
	}
	c.indexes[i.Name] = &i
	return nil
}

// DropIndex removes an index.
func (c *Catalog) DropIndex(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.indexes[name]; !ok {
		return fmt.Errorf("%w: index %q", ErrNotFound, name)
	}
	delete(c.indexes, name)
	return nil
}

// Index returns an index entry.
func (c *Catalog) Index(name string) (Index, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	i, ok := c.indexes[name]
	if !ok {
		return Index{}, false
	}
	return *i, true
}

// TableIndexes returns the indexes defined on a table, sorted by name.
func (c *Catalog) TableIndexes(table string) []Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Index
	for _, i := range c.indexes {
		if i.Table == table {
			out = append(out, *i)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// Regions, Tablespaces, Tables and Indexes return all entries of the given
// kind sorted by name.
func (c *Catalog) Regions() []Region {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Region, 0, len(c.regions))
	for _, r := range c.regions {
		out = append(out, *r)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// Tablespaces returns all tablespaces sorted by name.
func (c *Catalog) Tablespaces() []Tablespace {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Tablespace, 0, len(c.tablespaces))
	for _, ts := range c.tablespaces {
		out = append(out, *ts)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// Tables returns all tables sorted by name.
func (c *Catalog) Tables() []Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, *t)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// Indexes returns all indexes sorted by name.
func (c *Catalog) Indexes() []Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Index, 0, len(c.indexes))
	for _, i := range c.indexes {
		out = append(out, *i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}
