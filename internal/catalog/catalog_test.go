package catalog

import (
	"errors"
	"testing"

	"noftl/internal/core"
)

func TestCatalogRegionsAndTablespaces(t *testing.T) {
	c := New()
	if err := c.AddRegion(Region{Name: "rgHot", ID: 1, MaxChips: 8}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRegion(Region{Name: "rgHot"}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate region: %v", err)
	}
	r, ok := c.Region("rgHot")
	if !ok || r.MaxChips != 8 {
		t.Fatalf("region lookup: %+v %v", r, ok)
	}
	if _, ok := c.Region("nope"); ok {
		t.Fatal("unknown region found")
	}
	// Tablespace referencing a missing region fails.
	if err := c.AddTablespace(Tablespace{Name: "ts1", Region: "missing"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing region: %v", err)
	}
	if err := c.AddTablespace(Tablespace{Name: "ts1", Region: "rgHot", ExtentPages: 32}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTablespace(Tablespace{Name: "ts1", Region: "rgHot"}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate tablespace: %v", err)
	}
	// The default region needs no registration.
	if err := c.AddTablespace(Tablespace{Name: "tsDefault", Region: "DEFAULT"}); err != nil {
		t.Fatal(err)
	}
	ts, ok := c.Tablespace("ts1")
	if !ok || ts.Region != "rgHot" || ts.ExtentPages != 32 {
		t.Fatalf("tablespace lookup: %+v", ts)
	}
	// A region used by a tablespace cannot be dropped.
	if err := c.DropRegion("rgHot"); !errors.Is(err, ErrInUse) {
		t.Fatalf("drop in-use region: %v", err)
	}
	if err := c.DropRegion("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("drop missing region: %v", err)
	}
	if len(c.Regions()) != 1 || len(c.Tablespaces()) != 2 {
		t.Fatalf("listings: %d regions %d tablespaces", len(c.Regions()), len(c.Tablespaces()))
	}
}

func TestCatalogTablesAndIndexes(t *testing.T) {
	c := New()
	if err := c.AddTablespace(Tablespace{Name: "ts1"}); err != nil {
		t.Fatal(err)
	}
	// Table referencing a missing tablespace fails.
	if err := c.AddTable(Table{Name: "T", Tablespace: "missing"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing tablespace: %v", err)
	}
	id1 := c.NextObjectID()
	id2 := c.NextObjectID()
	if id1 == id2 {
		t.Fatal("object ids not unique")
	}
	if err := c.AddTable(Table{Name: "T", ObjectID: id1, Tablespace: "ts1",
		Columns: []Column{{Name: "t_id", Type: "NUMBER(3)"}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(Table{Name: "T"}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate table: %v", err)
	}
	tab, ok := c.Table("T")
	if !ok || tab.ObjectID != id1 || len(tab.Columns) != 1 {
		t.Fatalf("table lookup: %+v", tab)
	}
	// Index on a missing table fails.
	if err := c.AddIndex(Index{Name: "I", Table: "missing"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("index missing table: %v", err)
	}
	if err := c.AddIndex(Index{Name: "I_T", ObjectID: id2, Table: "T", Columns: []string{"t_id"}, Unique: true, Tablespace: "ts1"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex(Index{Name: "I_T", Table: "T"}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate index: %v", err)
	}
	if err := c.AddIndex(Index{Name: "I_BAD", Table: "T", Tablespace: "missing"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("index missing tablespace: %v", err)
	}
	idx, ok := c.Index("I_T")
	if !ok || !idx.Unique || idx.Table != "T" {
		t.Fatalf("index lookup: %+v", idx)
	}
	if got := c.TableIndexes("T"); len(got) != 1 || got[0].Name != "I_T" {
		t.Fatalf("table indexes: %+v", got)
	}
	if len(c.Tables()) != 1 || len(c.Indexes()) != 1 {
		t.Fatal("listings wrong")
	}
	// Dropping the table drops its indexes.
	if err := c.DropTable("T"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("T"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double drop: %v", err)
	}
	if _, ok := c.Index("I_T"); ok {
		t.Fatal("index survived table drop")
	}
}

func TestRegionGCPolicyRoundTrip(t *testing.T) {
	c := New()
	gc := core.GCPolicy{Victim: core.VictimCostBenefit, StepPages: 4}
	if err := c.AddRegion(Region{Name: "rgHot", ID: 1, MaxChips: 2, GC: gc}); err != nil {
		t.Fatal(err)
	}
	r, ok := c.Region("rgHot")
	if !ok || r.GC.Victim != core.VictimCostBenefit || r.GC.StepPages != 4 {
		t.Fatalf("policy not stored: %+v", r.GC)
	}
	upd := core.GCPolicy{Victim: core.VictimGreedy, StepPages: 8, DisableHotCold: true}
	if err := c.UpdateRegionGC("rgHot", upd); err != nil {
		t.Fatal(err)
	}
	r, _ = c.Region("rgHot")
	if r.GC.Victim != core.VictimGreedy || !r.GC.DisableHotCold {
		t.Fatalf("policy not updated: %+v", r.GC)
	}
	if err := c.UpdateRegionGC("nope", upd); err == nil {
		t.Fatal("UpdateRegionGC on unknown region should fail")
	}
}
