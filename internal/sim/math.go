package sim

import "math"

// mathPow is an indirection point for powFloat; kept separate so the
// workload-generation code reads without the math import noise.
func mathPow(x, y float64) float64 { return math.Pow(x, y) }
