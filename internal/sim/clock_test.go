package sim

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestResourceAcquireSequential(t *testing.T) {
	r := NewResource("die0")
	start, done := r.Acquire(0, 100*time.Nanosecond)
	if start != 0 || done != 100 {
		t.Fatalf("first op: got start=%d done=%d, want 0/100", start, done)
	}
	// Actor arrives at t=50 but resource is busy until 100.
	start, done = r.Acquire(50, 30*time.Nanosecond)
	if start != 100 || done != 130 {
		t.Fatalf("queued op: got start=%d done=%d, want 100/130", start, done)
	}
	// Actor arrives after the resource is idle.
	start, done = r.Acquire(500, 10*time.Nanosecond)
	if start != 500 || done != 510 {
		t.Fatalf("idle op: got start=%d done=%d, want 500/510", start, done)
	}
	if got := r.Served(); got != 3 {
		t.Fatalf("served = %d, want 3", got)
	}
	if got := r.Busy(); got != 140*time.Nanosecond {
		t.Fatalf("busy = %v, want 140ns", got)
	}
}

func TestResourceReserveHoldShorterThanTotal(t *testing.T) {
	r := NewResource("chan0")
	// Channel held for 10ns, operation completes for the caller at 100ns.
	start, done := r.Reserve(0, 10*time.Nanosecond, 100*time.Nanosecond)
	if start != 0 || done != 100 {
		t.Fatalf("got start=%d done=%d, want 0/100", start, done)
	}
	// Next caller only waits for the 10ns hold, not the full 100ns.
	start, _ = r.Reserve(0, 10*time.Nanosecond, 100*time.Nanosecond)
	if start != 10 {
		t.Fatalf("second start = %d, want 10", start)
	}
}

func TestResourceConcurrentAccounting(t *testing.T) {
	r := NewResource("die")
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Acquire(0, time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Served(); got != workers*perWorker {
		t.Fatalf("served = %d, want %d", got, workers*perWorker)
	}
	if got := r.Busy(); got != workers*perWorker*time.Nanosecond {
		t.Fatalf("busy = %v, want %d ns", got, workers*perWorker)
	}
	if got := r.FreeAt(); got != Time(workers*perWorker) {
		t.Fatalf("freeAt = %d, want %d (serialized service)", got, workers*perWorker)
	}
}

func TestClockObservesMaximum(t *testing.T) {
	c := NewClock()
	cur1 := NewCursor(c)
	cur2 := NewCursor(c)
	cur1.Advance(100 * time.Nanosecond)
	cur2.Advance(40 * time.Nanosecond)
	if got := c.Now(); got != 100 {
		t.Fatalf("clock = %d, want 100", got)
	}
	cur2.AdvanceTo(400)
	if got := c.Now(); got != 400 {
		t.Fatalf("clock = %d, want 400", got)
	}
	// Advancing backwards is a no-op.
	cur2.AdvanceTo(10)
	if cur2.Now() != 400 {
		t.Fatalf("cursor moved backwards to %d", cur2.Now())
	}
}

func TestClockConcurrentObserve(t *testing.T) {
	c := NewClock()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			cur := NewCursor(c)
			for i := 0; i <= perWorker; i++ {
				cur.SetTo(Time(base + i))
			}
		}(w * perWorker)
	}
	wg.Wait()
	if got := c.Now(); got != Time(workers*perWorker) {
		t.Fatalf("clock = %d, want %d (max across all workers)", got, workers*perWorker)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Reset did not zero the clock")
	}
}

func TestCursorSetTo(t *testing.T) {
	cur := NewCursor(nil)
	cur.AdvanceTo(500)
	cur.SetTo(100)
	if cur.Now() != 100 {
		t.Fatalf("SetTo did not move cursor back: %d", cur.Now())
	}
}

func TestTimeConversions(t *testing.T) {
	tm := Time(1_500_000) // 1.5 ms
	if tm.Micros() != 1500 {
		t.Fatalf("Micros = %v", tm.Micros())
	}
	if tm.Millis() != 1.5 {
		t.Fatalf("Millis = %v", tm.Millis())
	}
	if tm.Seconds() != 0.0015 {
		t.Fatalf("Seconds = %v", tm.Seconds())
	}
	if tm.Add(500_000*time.Nanosecond) != Time(2_000_000) {
		t.Fatalf("Add wrong")
	}
	if tm.Sub(Time(500_000)) != time.Millisecond {
		t.Fatalf("Sub wrong")
	}
	if tm.String() == "" {
		t.Fatalf("empty String()")
	}
}

// Property: for any sequence of (arrival, service) pairs the resource start
// times are monotonically non-decreasing and no operation starts before its
// arrival.
func TestResourceFCFSProperty(t *testing.T) {
	f := func(arrivals []uint16, services []uint8) bool {
		r := NewResource("p")
		prevStart := Time(-1)
		n := len(arrivals)
		if len(services) < n {
			n = len(services)
		}
		for i := 0; i < n; i++ {
			arr := Time(arrivals[i])
			svc := Duration(services[i]) + 1
			start, done := r.Acquire(arr, svc)
			if start < arr {
				return false
			}
			if start < prevStart {
				return false
			}
			if done != start.Add(svc) {
				return false
			}
			prevStart = start
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
