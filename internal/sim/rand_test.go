package sim

import (
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("generators with the same seed diverged at step %d", i)
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical outputs of 1000", same)
	}
}

func TestRandIntnBounds(t *testing.T) {
	r := NewRand(7)
	for n := 1; n < 64; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandIntRange(t *testing.T) {
	r := NewRand(11)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.IntRange(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntRange(5,9) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("IntRange(5,9) only produced %d distinct values", len(seen))
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(5)
	for n := 0; n < 20; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRand(9)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: %v", s)
	}
}

func TestZipfBoundsAndSkew(t *testing.T) {
	r := NewRand(123)
	const n = 1000
	z := NewZipf(r, n, 0.99)
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v < 0 || v >= n {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// The hottest 10% of keys should receive well over half the accesses for
	// theta=0.99 (YCSB-style skew).
	hot := 0
	for i := 0; i < n/10; i++ {
		hot += counts[i]
	}
	if float64(hot)/draws < 0.5 {
		t.Fatalf("zipf not skewed enough: hot share %.2f", float64(hot)/draws)
	}
}

// Property: IntRange always returns a value inside the requested bounds.
func TestIntRangeProperty(t *testing.T) {
	r := NewRand(777)
	f := func(lo int16, span uint8) bool {
		l := int(lo)
		h := l + int(span)
		v := r.IntRange(l, h)
		return v >= l && v <= h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
