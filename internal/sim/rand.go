package sim

// Rand is a small, fast, deterministic pseudo-random number generator
// (splitmix64 followed by xorshift mixing) used everywhere the reproduction
// needs randomness.  Using our own generator keeps runs reproducible across
// Go releases and avoids any dependency on global math/rand state.  It is not
// safe for concurrent use; every actor owns its generator.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.  Two generators with the same
// seed produce identical sequences.
func NewRand(seed uint64) *Rand {
	r := &Rand{state: seed}
	// Warm up so that small seeds do not produce correlated first outputs.
	r.Uint64()
	r.Uint64()
	return r
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	// splitmix64
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n).  It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative pseudo-random int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// IntRange returns a pseudo-random int in [lo, hi] inclusive.  It panics if
// hi < lo.
func (r *Rand) IntRange(lo, hi int) int {
	if hi < lo {
		panic("sim: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomly permutes n elements using the provided swap
// function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf draws values in [0, n) following an approximate Zipf distribution with
// exponent theta (0 < theta < 1 gives the YCSB-style "zipfian" skew).  It
// uses the Gray et al. quick approximation, which is accurate enough for
// workload generation.
type Zipf struct {
	r     *Rand
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// NewZipf returns a Zipf generator over [0, n) with the given skew exponent.
func NewZipf(r *Rand, n int, theta float64) *Zipf {
	z := &Zipf{r: r, n: n, theta: theta}
	z.zetan = zetaStatic(n, theta)
	z.zeta2 = zetaStatic(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - powFloat(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// Next draws the next value.
func (z *Zipf) Next() int {
	u := z.r.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+powFloat(0.5, z.theta) {
		return 1
	}
	return int(float64(z.n) * powFloat(z.eta*u-z.eta+1, z.alpha))
}

func zetaStatic(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1.0 / powFloat(float64(i), theta)
	}
	return sum
}

// powFloat is a minimal x**y for positive x implemented with exp/log from the
// math package would be fine; to keep hot paths allocation free we just use
// the stdlib via a tiny indirection.
func powFloat(x, y float64) float64 {
	return mathPow(x, y)
}
