// Package sim provides virtual-time primitives used by the flash device
// model and the transaction driver.
//
// The reproduction never sleeps for real flash latencies.  Instead every
// resource (a die, a channel) carries a virtual "free at" timestamp and every
// actor (a terminal, a background flusher, the garbage collector) carries a
// virtual cursor.  Serving a request on a resource advances both, exactly as
// a FCFS single-server queue would.  All timestamps are expressed in
// nanoseconds of simulated time (type Time).
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of simulated time in nanoseconds.  It converts to and
// from time.Duration one-to-one.
type Duration = time.Duration

// Micros returns the time as fractional microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Millis returns the time as fractional milliseconds.
func (t Time) Millis() float64 { return float64(t) / 1e6 }

// Seconds returns the time as fractional seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Add returns the time advanced by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string {
	return fmt.Sprintf("%.3fms", t.Millis())
}

// MaxTime returns the later of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Resource is a single-server FCFS queue living in virtual time: a NAND die,
// a flash channel, or any other device component that serves one operation at
// a time.  It is safe for concurrent use.
type Resource struct {
	mu     sync.Mutex
	name   string
	freeAt Time
	busy   Duration // cumulative service time
	served int64    // number of operations served
}

// NewResource returns an idle resource with the given diagnostic name.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Name returns the diagnostic name given at construction.
func (r *Resource) Name() string { return r.name }

// Acquire serves an operation of length d for an actor whose current virtual
// time is now.  It returns the operation's start and completion times.  The
// operation starts when both the actor and the resource are available and
// occupies the resource until completion.
func (r *Resource) Acquire(now Time, d Duration) (start, done Time) {
	r.mu.Lock()
	start = MaxTime(now, r.freeAt)
	done = start.Add(d)
	r.freeAt = done
	r.busy += d
	r.served++
	r.mu.Unlock()
	return start, done
}

// Reserve is like Acquire but lets the caller split the occupation into a
// transfer part that occupies the resource and a latent part that does not
// (e.g. a channel is only held for the data transfer while the die works
// independently).  The resource is occupied for hold, the caller's completion
// time is start+total.
func (r *Resource) Reserve(now Time, hold, total Duration) (start, done Time) {
	r.mu.Lock()
	start = MaxTime(now, r.freeAt)
	r.freeAt = start.Add(hold)
	r.busy += hold
	r.served++
	r.mu.Unlock()
	return start, start.Add(total)
}

// FreeAt returns the virtual time at which the resource becomes idle.
func (r *Resource) FreeAt() Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.freeAt
}

// Busy returns the cumulative virtual service time charged to the resource.
func (r *Resource) Busy() Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.busy
}

// Served returns the number of operations served.
func (r *Resource) Served() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.served
}

// Reset returns the resource to the idle state at time zero, clearing
// accumulated statistics.
func (r *Resource) Reset() {
	r.mu.Lock()
	r.freeAt = 0
	r.busy = 0
	r.served = 0
	r.mu.Unlock()
}

// Clock tracks the global high-water mark of simulated time across all
// actors.  Actors advance their private cursors and publish them; the clock
// remembers the maximum, which is the simulated wall-clock duration of the
// run.  Observe is a lock-free CAS-max so the clock never serializes
// concurrent actors (every cursor advance publishes here).
type Clock struct {
	max atomic.Int64
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Observe publishes an actor's cursor; the clock keeps the maximum.
func (c *Clock) Observe(t Time) {
	for {
		cur := c.max.Load()
		if int64(t) <= cur || c.max.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// Now returns the highest observed simulated time.
func (c *Clock) Now() Time { return Time(c.max.Load()) }

// Reset puts the clock back to zero.
func (c *Clock) Reset() { c.max.Store(0) }

// Cursor is the private virtual-time position of a single actor (a TPC-C
// terminal, a flusher, the GC).  It is not safe for concurrent use; each
// actor owns its cursor.
type Cursor struct {
	now   Time
	clock *Clock
}

// NewCursor returns a cursor at time zero publishing to clock (which may be
// nil).
func NewCursor(clock *Clock) *Cursor { return &Cursor{clock: clock} }

// Now returns the actor's current virtual time.
func (c *Cursor) Now() Time { return c.now }

// AdvanceTo moves the cursor forward to t (never backwards) and publishes it.
func (c *Cursor) AdvanceTo(t Time) {
	if t > c.now {
		c.now = t
	}
	if c.clock != nil {
		c.clock.Observe(c.now)
	}
}

// Advance moves the cursor forward by d and publishes it.
func (c *Cursor) Advance(d Duration) {
	c.AdvanceTo(c.now.Add(d))
}

// SetTo forces the cursor to t even if it moves backwards (used when a pooled
// actor is reused for a new logical actor).
func (c *Cursor) SetTo(t Time) {
	c.now = t
	if c.clock != nil {
		c.clock.Observe(c.now)
	}
}
