package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"noftl/internal/sim"
)

// jsonEvent is the on-disk form of an Event: one JSON object per line, with
// the class spelled by name so dumped traces stay greppable and stable across
// class renumbering.  Zero/absent fields are omitted to keep dumps compact.
type jsonEvent struct {
	Seq    uint64 `json:"seq"`
	Class  string `json:"class"`
	Op     uint8  `json:"op,omitempty"`
	Prio   uint8  `json:"prio,omitempty"`
	Die    int32  `json:"die"`
	Block  int32  `json:"block,omitempty"`
	Page   int32  `json:"page,omitempty"`
	Region int32  `json:"region,omitempty"`
	Start  int64  `json:"start"`
	End    int64  `json:"end"`
	Wall   int64  `json:"wall,omitempty"`
	A      int64  `json:"a,omitempty"`
	B      int64  `json:"b,omitempty"`
}

// WriteJSONL writes events to w as JSON Lines, one event per line, in the
// given order.  It is the dump format consumed by `noftl-trace` and LoadJSONL.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline JSONL needs
	for _, e := range events {
		je := jsonEvent{
			Seq: e.Seq, Class: e.Class.String(), Op: e.Op, Prio: e.Prio,
			Die: e.Die, Block: e.Block, Page: e.Page, Region: e.Region,
			Start: int64(e.Start), End: int64(e.End), Wall: e.Wall,
			A: e.A, B: e.B,
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Dump writes the tracer's retained events to w as JSONL and returns how many
// were written.  Nil-safe: a nil tracer dumps nothing.
func (t *Tracer) Dump(w io.Writer) (int, error) {
	events := t.Events()
	if len(events) == 0 {
		return 0, nil
	}
	return len(events), WriteJSONL(w, events)
}

// LoadJSONL reads a JSONL trace back into events.  Blank lines are skipped;
// an unknown class name or malformed line is an error carrying the line
// number.
func LoadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		c, ok := ParseClass(je.Class)
		if !ok {
			return nil, fmt.Errorf("obs: trace line %d: unknown class %q", line, je.Class)
		}
		out = append(out, Event{
			Seq: je.Seq, Class: c, Op: je.Op, Prio: je.Prio,
			Die: je.Die, Block: je.Block, Page: je.Page, Region: je.Region,
			Start: sim.Time(je.Start), End: sim.Time(je.End), Wall: je.Wall,
			A: je.A, B: je.B,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
