// Package obs is the shared event/trace layer of the reproduction: a
// low-overhead recorder of typed events emitted by the I/O scheduler, the
// space manager (GC, wear leveling, host I/O), the buffer pool and the WAL.
//
// The same event stream feeds three consumers:
//
//   - the Prometheus-format metrics plane (internal/metrics labeled families
//     are updated by the same hooks that emit events);
//   - trace persistence (JSONL dump/load, the noftl-trace CLI);
//   - future record-and-replay tooling (the noftl-shell inspector and the
//     chaos harness both consume the dumped stream).
//
// Overhead discipline: every hook site is guarded by Tracer.Enabled, which is
// nil-safe — a disabled tracer is simply a nil pointer, so the disabled path
// is one pointer compare and no allocations (events are fixed-size value
// structs that never escape when the guard is false).  The enabled path takes
// one short mutex-protected ring-buffer store; per-class sampling cuts even
// that for high-frequency classes.
package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"noftl/internal/sim"
)

// Class identifies the kind of event.  Classes gate sampling and filtering;
// the Op field refines the class (e.g. which flash command).
type Class uint8

// Event classes.
const (
	// ClassFlash is one flash command dispatched by the I/O scheduler
	// (submit and completion folded into a single event: Start is the
	// submission time, End the virtual completion time).
	ClassFlash Class = iota
	// ClassHostWrite is one logical host page write through the space
	// manager, including any foreground GC it had to wait for.
	ClassHostWrite
	// ClassHostRead is one logical host page read through the space manager.
	ClassHostRead
	// ClassGCStep is one bounded background GC step or one foreground
	// collection iteration (Op distinguishes them).
	ClassGCStep
	// ClassGCVictim is a victim-block selection (A = valid pages on pick).
	ClassGCVictim
	// ClassGCErase is a successful victim erase (A = erase count after).
	ClassGCErase
	// ClassWear is a static wear-leveling relocation of a cold block.
	ClassWear
	// ClassBufMiss is a buffer-pool demand miss (A = LPN).
	ClassBufMiss
	// ClassBufEvict is a frame eviction (A = LPN, B = 1 when dirty).
	ClassBufEvict
	// ClassBufWriteBack is a dirty-page write-back (A = LPN or page count).
	ClassBufWriteBack
	// ClassWALAppend is a WAL record append (A = LSN, B = record bytes).
	ClassWALAppend
	// ClassWALSync is a WAL flush to flash (A = records made durable).
	ClassWALSync
	// NumClasses is the number of event classes (not itself a class).
	NumClasses
)

// classNames is the canonical spelling of each class, used by the JSONL form
// and the CLI filters.
var classNames = [NumClasses]string{
	"flash", "host_write", "host_read",
	"gc_step", "gc_victim", "gc_erase", "wear",
	"buf_miss", "buf_evict", "buf_writeback",
	"wal_append", "wal_sync",
}

// String returns the canonical class name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "unknown"
}

// ParseClass resolves a class name (as printed by Class.String) back to the
// class; ok is false for an unknown name.
func ParseClass(s string) (Class, bool) {
	for i, n := range classNames {
		if n == s {
			return Class(i), true
		}
	}
	return 0, false
}

// GC step kinds carried in Event.Op for ClassGCStep.
const (
	// GCStepBackground is a bounded step in the watermark band.
	GCStepBackground uint8 = iota
	// GCStepForeground is a blocking low-watermark collection iteration.
	GCStepForeground
)

// Write-back shapes carried in Event.Op for ClassBufWriteBack.
const (
	// BufWriteBackSingle is a one-page write-back (A = LPN).
	BufWriteBackSingle uint8 = iota
	// BufWriteBackGroup is a batched (die-striped) write-back (A = pages).
	BufWriteBackGroup
)

// Event is one trace record.  It is a fixed-size value type: recording an
// event never allocates, and a full ring buffer simply overwrites the oldest
// events.  Fields that do not apply to a class are left at -1 (locations) or
// zero (aux values).
type Event struct {
	// Seq is the global record sequence number (monotonic per tracer).
	Seq uint64
	// Class is the event kind; Op refines it (flash op, GC step kind).
	Class Class
	Op    uint8
	// Prio is the iosched priority class of flash/host events.
	Prio uint8
	// Die, Block and Page locate the event on the device (-1 = not bound to
	// that level).
	Die   int32
	Block int32
	Page  int32
	// Region is the owning region id (-1 when unknown at the hook site).
	Region int32
	// Start and End bound the event in virtual time; instantaneous events
	// carry Start == End.
	Start sim.Time
	End   sim.Time
	// Wall is the wall-clock nanosecond offset from the tracer's creation at
	// which the event was recorded (real-time ordering across actors).
	Wall int64
	// A and B are class-specific auxiliary values (LPN, LSN, page counts,
	// valid counts — see the class docs).
	A int64
	B int64
}

// Latency returns the event's virtual-time span.
func (e Event) Latency() sim.Duration { return e.End.Sub(e.Start) }

// Tracer records events into a fixed-capacity ring buffer.  A nil *Tracer is
// a valid, permanently disabled tracer: every method is nil-safe, and the
// Enabled guard compiles to a pointer compare — the "tracing off" fast path.
type Tracer struct {
	mask    atomic.Uint32             // bit i set = class i enabled
	sample  [NumClasses]atomic.Uint32 // record every Nth event (0/1 = all)
	skip    [NumClasses]atomic.Uint32 // per-class arrival counters for sampling
	started time.Time

	mu       sync.Mutex
	buf      []Event
	next     uint64 // total records ever stored (ring position = next % len)
	recorded atomic.Int64
	dropped  atomic.Int64 // events overwritten after the ring wrapped
}

// DefaultCapacity is the ring size used when a non-positive capacity is
// requested (64k events ≈ 6 MiB).
const DefaultCapacity = 1 << 16

// NewTracer returns a tracer with the given ring capacity (DefaultCapacity
// when cap <= 0).  All classes start enabled with sampling 1 (every event).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	t := &Tracer{
		buf:     make([]Event, 0, capacity),
		started: time.Now(),
	}
	t.mask.Store(1<<NumClasses - 1)
	return t
}

// Enabled reports whether events of the class are currently recorded.  It is
// the hook-site guard and is nil-safe: a nil tracer is always disabled.
func (t *Tracer) Enabled(c Class) bool {
	return t != nil && t.mask.Load()&(1<<c) != 0
}

// SetClasses replaces the enabled class set (empty disables everything).
func (t *Tracer) SetClasses(classes ...Class) {
	if t == nil {
		return
	}
	var m uint32
	for _, c := range classes {
		if c < NumClasses {
			m |= 1 << c
		}
	}
	t.mask.Store(m)
}

// SetSampling records only every Nth event of the class (n <= 1 restores
// every event).  Sampling applies after the Enabled guard, so a heavily
// sampled class still pays only the guard on skipped events.
func (t *Tracer) SetSampling(c Class, n int) {
	if t == nil || c >= NumClasses {
		return
	}
	if n < 1 {
		n = 1
	}
	t.sample[c].Store(uint32(n))
}

// Record stores one event.  The tracer assigns Seq and Wall; everything else
// is the caller's.  Nil-safe (no-op) so hook sites may skip the Enabled guard
// when they already built the event.
func (t *Tracer) Record(e Event) {
	if t == nil || t.mask.Load()&(1<<e.Class) == 0 {
		return
	}
	if n := t.sample[e.Class].Load(); n > 1 {
		if t.skip[e.Class].Add(1)%n != 0 {
			return
		}
	}
	e.Wall = int64(time.Since(t.started))
	t.recorded.Add(1)
	t.mu.Lock()
	e.Seq = t.next
	t.next++
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[e.Seq%uint64(cap(t.buf))] = e
		t.dropped.Add(1)
	}
	t.mu.Unlock()
}

// Len returns the number of events currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Recorded returns the total number of events ever recorded (including those
// since overwritten by the ring).
func (t *Tracer) Recorded() int64 {
	if t == nil {
		return 0
	}
	return t.recorded.Load()
}

// Dropped returns the number of events overwritten after the ring wrapped.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Events returns a copy of the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.buf))
	if len(t.buf) < cap(t.buf) {
		copy(out, t.buf)
		return out
	}
	// The ring has wrapped: oldest record sits at next % cap.
	head := int(t.next % uint64(cap(t.buf)))
	n := copy(out, t.buf[head:])
	copy(out[n:], t.buf[:head])
	return out
}

// Reset drops every retained event and zeroes the counters; class mask and
// sampling survive.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.buf = t.buf[:0]
	t.next = 0
	t.mu.Unlock()
	t.recorded.Store(0)
	t.dropped.Store(0)
}
