package obs

import (
	"bytes"
	"strings"
	"testing"

	"noftl/internal/sim"
)

func TestClassNamesRoundTrip(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		name := c.String()
		if name == "" || name == "unknown" {
			t.Fatalf("class %d has no name", c)
		}
		got, ok := ParseClass(name)
		if !ok || got != c {
			t.Fatalf("ParseClass(%q) = %v, %v; want %v, true", name, got, ok, c)
		}
	}
	if _, ok := ParseClass("nonsense"); ok {
		t.Fatal("ParseClass accepted an unknown name")
	}
	if Class(200).String() != "unknown" {
		t.Fatal("out-of-range class should stringify as unknown")
	}
}

func TestTracerRecordAndEvents(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 5; i++ {
		tr.Record(Event{Class: ClassFlash, Die: int32(i), Start: sim.Time(i), End: sim.Time(i + 1)})
	}
	if tr.Len() != 5 || tr.Recorded() != 5 || tr.Dropped() != 0 {
		t.Fatalf("len=%d recorded=%d dropped=%d; want 5,5,0", tr.Len(), tr.Recorded(), tr.Dropped())
	}
	evs := tr.Events()
	for i, e := range evs {
		if e.Seq != uint64(i) || e.Die != int32(i) {
			t.Fatalf("event %d out of order: %+v", i, e)
		}
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Class: ClassFlash, Die: int32(i)})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Recorded() != 10 || tr.Dropped() != 6 {
		t.Fatalf("recorded=%d dropped=%d; want 10, 6", tr.Recorded(), tr.Dropped())
	}
	evs := tr.Events()
	// Oldest-first: dies 6,7,8,9 with ascending Seq.
	for i, e := range evs {
		if e.Die != int32(6+i) {
			t.Fatalf("wrapped events = %v; want dies 6..9 in order", evs)
		}
		if i > 0 && evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-monotonic Seq after wrap: %v", evs)
		}
	}
}

func TestTracerClassMask(t *testing.T) {
	tr := NewTracer(16)
	tr.SetClasses(ClassGCStep)
	if tr.Enabled(ClassFlash) {
		t.Fatal("ClassFlash should be masked off")
	}
	if !tr.Enabled(ClassGCStep) {
		t.Fatal("ClassGCStep should be enabled")
	}
	tr.Record(Event{Class: ClassFlash})
	tr.Record(Event{Class: ClassGCStep})
	if tr.Len() != 1 || tr.Events()[0].Class != ClassGCStep {
		t.Fatalf("mask not applied on Record: %+v", tr.Events())
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(1024)
	tr.SetSampling(ClassFlash, 10)
	for i := 0; i < 100; i++ {
		tr.Record(Event{Class: ClassFlash})
	}
	if got := tr.Len(); got != 10 {
		t.Fatalf("sampled 1-in-10 over 100 events: got %d, want 10", got)
	}
	tr.SetSampling(ClassFlash, 0) // restores record-everything
	tr.Record(Event{Class: ClassFlash})
	if got := tr.Len(); got != 11 {
		t.Fatalf("after sampling reset: got %d, want 11", got)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled(ClassFlash) {
		t.Fatal("nil tracer should be disabled")
	}
	tr.Record(Event{Class: ClassFlash})
	tr.SetClasses(ClassFlash)
	tr.SetSampling(ClassFlash, 2)
	tr.Reset()
	if tr.Len() != 0 || tr.Recorded() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer should report empty everything")
	}
	if n, err := tr.Dump(&bytes.Buffer{}); n != 0 || err != nil {
		t.Fatalf("nil Dump = %d, %v", n, err)
	}
}

// TestDisabledPathAllocs pins the contract the hook sites rely on: when
// tracing is off (nil tracer), the guard plus a skipped Record allocate
// nothing.
func TestDisabledPathAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		if tr.Enabled(ClassFlash) {
			tr.Record(Event{Class: ClassFlash, Die: 1, Start: 0, End: 1})
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled trace path allocated %.1f per op, want 0", allocs)
	}

	// A masked-off class on a live tracer must not allocate either.
	live := NewTracer(16)
	live.SetClasses() // nothing enabled
	allocs = testing.AllocsPerRun(1000, func() {
		if live.Enabled(ClassFlash) {
			live.Record(Event{Class: ClassFlash})
		}
	})
	if allocs != 0 {
		t.Fatalf("masked trace path allocated %.1f per op, want 0", allocs)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(Event{Class: ClassHostWrite, Die: 3, Block: 7, Page: 11, Region: 1,
		Start: 100, End: 250, A: 42, B: -1})
	tr.Record(Event{Class: ClassGCStep, Op: GCStepForeground, Die: 3, Start: 250, End: 900})

	var buf bytes.Buffer
	n, err := tr.Dump(&buf)
	if err != nil || n != 2 {
		t.Fatalf("Dump = %d, %v", n, err)
	}
	if !strings.Contains(buf.String(), `"class":"host_write"`) {
		t.Fatalf("dump should spell class names: %s", buf.String())
	}

	got, err := LoadJSONL(&buf)
	if err != nil {
		t.Fatalf("LoadJSONL: %v", err)
	}
	want := tr.Events()
	if len(got) != len(want) {
		t.Fatalf("round trip length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d round trip mismatch:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestLoadJSONLRejectsBadInput(t *testing.T) {
	if _, err := LoadJSONL(strings.NewReader(`{"class":"no_such_class"}` + "\n")); err == nil {
		t.Fatal("unknown class should be an error")
	}
	if _, err := LoadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("malformed line should be an error")
	}
}

func TestSummarizeGCInterference(t *testing.T) {
	us := func(n int64) sim.Time { return sim.Time(n * 1000) }
	var events []Event
	// Die 0: a GC step from 100µs to 600µs.
	events = append(events, Event{Class: ClassGCStep, Op: GCStepBackground, Die: 0,
		Start: us(100), End: us(600)})
	// Clean host writes on die 0 before the GC window: 50µs each.
	for i := int64(0); i < 10; i++ {
		events = append(events, Event{Class: ClassHostWrite, Die: 0,
			Start: us(i * 5), End: us(i*5 + 50)})
	}
	// Interfered host writes overlapping the GC window: 400µs each.
	for i := int64(0); i < 5; i++ {
		events = append(events, Event{Class: ClassHostWrite, Die: 0,
			Start: us(150 + i*10), End: us(550 + i*10)})
	}
	// Host writes on die 1 (no GC there): always clean.
	events = append(events, Event{Class: ClassHostWrite, Die: 1, Start: us(200), End: us(260)})
	// Flash commands for utilization.
	events = append(events, Event{Class: ClassFlash, Prio: 1, Die: 0, Start: us(0), End: us(500)})
	events = append(events, Event{Class: ClassFlash, Prio: 2, Die: 1, Start: us(0), End: us(100)})

	s := Summarize(events)
	if s.GC.Interfered.Count != 5 {
		t.Fatalf("interfered count = %d, want 5", s.GC.Interfered.Count)
	}
	if s.GC.Clean.Count != 11 {
		t.Fatalf("clean count = %d, want 11", s.GC.Clean.Count)
	}
	if s.GC.Interfered.Mean <= s.GC.Clean.Mean {
		t.Fatalf("interfered mean %v should exceed clean mean %v",
			s.GC.Interfered.Mean, s.GC.Clean.Mean)
	}
	if s.GC.SlowdownX <= 1 {
		t.Fatalf("slowdown = %.2f, want > 1", s.GC.SlowdownX)
	}
	if len(s.Dies) != 2 || s.Dies[0].Die != 0 || s.Dies[1].Die != 1 {
		t.Fatalf("dies = %+v, want dies 0 and 1", s.Dies)
	}
	if s.Dies[0].GCSteps != 1 || s.Dies[0].GCTime != 500*1000 {
		t.Fatalf("die 0 GC view = %+v", s.Dies[0])
	}
	if s.Dies[0].Utilization <= s.Dies[1].Utilization {
		t.Fatalf("die 0 should be busier than die 1: %+v", s.Dies)
	}
	out := s.String()
	for _, want := range []string{"GC interference", "interfered:", "slowdown:", "per-die utilization"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary report missing %q:\n%s", want, out)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Events != 0 || len(s.Dies) != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	_ = s.String() // must not panic
}

func TestMergeWindows(t *testing.T) {
	ws := []window{{10, 20}, {15, 30}, {40, 50}, {50, 60}, {5, 8}}
	merged, total := mergeWindows(ws)
	if len(merged) != 3 {
		t.Fatalf("merged = %+v, want 3 windows", merged)
	}
	if total != (8-5)+(30-10)+(60-40) {
		t.Fatalf("total = %v", total)
	}
	if !overlaps(merged, 25, 26) || overlaps(merged, 31, 39) || !overlaps(merged, 0, 100) {
		t.Fatalf("overlaps misbehaving on %+v", merged)
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Record(Event{Class: ClassFlash})
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Recorded() != 0 || tr.Dropped() != 0 {
		t.Fatal("Reset should clear counters and buffer")
	}
	tr.Record(Event{Class: ClassFlash})
	if tr.Len() != 1 || tr.Events()[0].Seq != 0 {
		t.Fatal("tracer unusable after Reset")
	}
}
