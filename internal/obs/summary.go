package obs

import (
	"fmt"
	"sort"
	"strings"

	"noftl/internal/metrics"
	"noftl/internal/sim"
)

// LatencyStats summarizes a set of virtual-time latencies.
type LatencyStats struct {
	Count int64
	Mean  sim.Duration
	P50   sim.Duration
	P95   sim.Duration
	P99   sim.Duration
	Max   sim.Duration
}

func latencyStats(h *metrics.Histogram) LatencyStats {
	return LatencyStats{
		Count: h.Count(),
		Mean:  sim.Duration(h.Mean()),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// DieSummary is the per-die view of a trace: how busy the die's flash
// interface was and how much of the span GC occupied it.
type DieSummary struct {
	Die int32
	// FlashCmds is the number of flash commands dispatched to the die.
	FlashCmds int64
	// BusyTime is the merged virtual time the die spent executing flash
	// commands (overlapping command windows are coalesced).
	BusyTime sim.Duration
	// Utilization is BusyTime over the trace span (0..1).
	Utilization float64
	// GCTime is the merged virtual time covered by GC step windows on the die.
	GCTime sim.Duration
	// GCSteps counts GC step events (background + foreground) on the die.
	GCSteps int64
}

// GCInterference is the A6 story extracted from a trace: host writes that
// overlap a GC window on their die versus those that ran clear of GC.
type GCInterference struct {
	// Interfered are host writes whose [Start,End) overlapped a GC step or
	// erase window on the same die.
	Interfered LatencyStats
	// Clean are host writes with no GC overlap.
	Clean LatencyStats
	// SlowdownX is Interfered.Mean / Clean.Mean (0 when either side is empty).
	SlowdownX float64
}

// Summary is the digest of a trace produced by Summarize.
type Summary struct {
	Events int
	// Start and End bound the trace in virtual time.
	Start sim.Time
	End   sim.Time
	// PerClass counts events by class (indexed by Class).
	PerClass [NumClasses]int64
	// PerPrio is the flash-command latency breakdown by scheduler priority.
	PerPrio map[uint8]LatencyStats
	// Dies is the per-die utilization view, ordered by die id.
	Dies []DieSummary
	// HostWrite and HostRead are end-to-end host-latency breakdowns.
	HostWrite LatencyStats
	HostRead  LatencyStats
	// GC is the GC-interference analysis over host writes.
	GC GCInterference
}

// window is a half-open virtual-time interval on a die.
type window struct {
	start, end sim.Time
}

// mergeWindows coalesces overlapping/touching intervals, returning them
// sorted by start, plus the total covered duration.
func mergeWindows(ws []window) ([]window, sim.Duration) {
	if len(ws) == 0 {
		return nil, 0
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].start < ws[j].start })
	merged := ws[:1]
	for _, w := range ws[1:] {
		last := &merged[len(merged)-1]
		if w.start <= last.end {
			if w.end > last.end {
				last.end = w.end
			}
			continue
		}
		merged = append(merged, w)
	}
	var total sim.Duration
	for _, w := range merged {
		total += w.end.Sub(w.start)
	}
	return merged, total
}

// overlaps reports whether [start,end) intersects any merged window.
func overlaps(ws []window, start, end sim.Time) bool {
	// First window ending after start.
	i := sort.Search(len(ws), func(i int) bool { return ws[i].end > start })
	return i < len(ws) && ws[i].start < end
}

// Summarize digests a trace: per-class counts, per-die flash utilization,
// per-priority and host latency breakdowns, and the GC-interference split of
// host writes (the A6 experiment's story, recovered from the event stream).
func Summarize(events []Event) Summary {
	s := Summary{Events: len(events), PerPrio: make(map[uint8]LatencyStats)}
	if len(events) == 0 {
		return s
	}
	s.Start = events[0].Start
	s.End = events[0].End
	prioHists := make(map[uint8]*metrics.Histogram)
	hostWrite := metrics.NewHistogram()
	hostRead := metrics.NewHistogram()
	flashWin := make(map[int32][]window) // die -> flash command windows
	gcWin := make(map[int32][]window)    // die -> GC step/erase windows
	dieCmds := make(map[int32]int64)
	dieGCSteps := make(map[int32]int64)

	for _, e := range events {
		if e.Start < s.Start {
			s.Start = e.Start
		}
		if e.End > s.End {
			s.End = e.End
		}
		if int(e.Class) < len(s.PerClass) {
			s.PerClass[e.Class]++
		}
		switch e.Class {
		case ClassFlash:
			h := prioHists[e.Prio]
			if h == nil {
				h = metrics.NewHistogram()
				prioHists[e.Prio] = h
			}
			h.Observe(e.Latency())
			if e.Die >= 0 {
				dieCmds[e.Die]++
				if e.End > e.Start {
					flashWin[e.Die] = append(flashWin[e.Die], window{e.Start, e.End})
				}
			}
		case ClassHostWrite:
			hostWrite.Observe(e.Latency())
		case ClassHostRead:
			hostRead.Observe(e.Latency())
		case ClassGCStep, ClassGCErase:
			if e.Die >= 0 {
				if e.Class == ClassGCStep {
					dieGCSteps[e.Die]++
				}
				if e.End > e.Start {
					gcWin[e.Die] = append(gcWin[e.Die], window{e.Start, e.End})
				}
			}
		}
	}

	span := s.End.Sub(s.Start)
	mergedGC := make(map[int32][]window, len(gcWin))
	dies := make(map[int32]bool)
	for d := range flashWin {
		dies[d] = true
	}
	for d := range gcWin {
		dies[d] = true
	}
	for d := range dieCmds {
		dies[d] = true
	}
	order := make([]int32, 0, len(dies))
	for d := range dies {
		order = append(order, d)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, d := range order {
		_, busy := mergeWindows(flashWin[d])
		mg, gcTime := mergeWindows(gcWin[d])
		mergedGC[d] = mg
		ds := DieSummary{
			Die:       d,
			FlashCmds: dieCmds[d],
			BusyTime:  busy,
			GCTime:    gcTime,
			GCSteps:   dieGCSteps[d],
		}
		if span > 0 {
			ds.Utilization = float64(busy) / float64(span)
		}
		s.Dies = append(s.Dies, ds)
	}

	// Second pass: split host writes by GC overlap on their die.
	interfered := metrics.NewHistogram()
	clean := metrics.NewHistogram()
	for _, e := range events {
		if e.Class != ClassHostWrite {
			continue
		}
		if e.Die >= 0 && overlaps(mergedGC[e.Die], e.Start, e.End) {
			interfered.Observe(e.Latency())
		} else {
			clean.Observe(e.Latency())
		}
	}

	for p, h := range prioHists {
		s.PerPrio[p] = latencyStats(h)
	}
	s.HostWrite = latencyStats(hostWrite)
	s.HostRead = latencyStats(hostRead)
	s.GC.Interfered = latencyStats(interfered)
	s.GC.Clean = latencyStats(clean)
	if s.GC.Clean.Mean > 0 && s.GC.Interfered.Count > 0 {
		s.GC.SlowdownX = float64(s.GC.Interfered.Mean) / float64(s.GC.Clean.Mean)
	}
	return s
}

// String renders the summary as the human-readable report printed by
// `noftl-trace summarize`.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events over %v virtual time\n", s.Events, s.End.Sub(s.Start))
	fmt.Fprintf(&b, "\nevents by class:\n")
	for c := Class(0); c < NumClasses; c++ {
		if s.PerClass[c] > 0 {
			fmt.Fprintf(&b, "  %-14s %d\n", c.String(), s.PerClass[c])
		}
	}
	if len(s.Dies) > 0 {
		fmt.Fprintf(&b, "\nper-die utilization:\n")
		fmt.Fprintf(&b, "  %-4s %10s %12s %6s %12s %8s\n", "die", "cmds", "busy", "util", "gc_busy", "gc_steps")
		for _, d := range s.Dies {
			fmt.Fprintf(&b, "  %-4d %10d %12v %5.1f%% %12v %8d\n",
				d.Die, d.FlashCmds, d.BusyTime, d.Utilization*100, d.GCTime, d.GCSteps)
		}
	}
	if len(s.PerPrio) > 0 {
		prios := make([]int, 0, len(s.PerPrio))
		for p := range s.PerPrio {
			prios = append(prios, int(p))
		}
		sort.Ints(prios)
		fmt.Fprintf(&b, "\nflash latency by priority:\n")
		for _, p := range prios {
			ls := s.PerPrio[uint8(p)]
			fmt.Fprintf(&b, "  prio %d: n=%d mean=%v p95=%v p99=%v max=%v\n",
				p, ls.Count, ls.Mean, ls.P95, ls.P99, ls.Max)
		}
	}
	if s.HostWrite.Count > 0 {
		fmt.Fprintf(&b, "\nhost writes: n=%d mean=%v p95=%v p99=%v max=%v\n",
			s.HostWrite.Count, s.HostWrite.Mean, s.HostWrite.P95, s.HostWrite.P99, s.HostWrite.Max)
	}
	if s.HostRead.Count > 0 {
		fmt.Fprintf(&b, "host reads:  n=%d mean=%v p95=%v p99=%v max=%v\n",
			s.HostRead.Count, s.HostRead.Mean, s.HostRead.P95, s.HostRead.P99, s.HostRead.Max)
	}
	if s.GC.Interfered.Count > 0 || s.GC.Clean.Count > 0 {
		fmt.Fprintf(&b, "\nGC interference on host writes:\n")
		fmt.Fprintf(&b, "  interfered: n=%d mean=%v p99=%v\n",
			s.GC.Interfered.Count, s.GC.Interfered.Mean, s.GC.Interfered.P99)
		fmt.Fprintf(&b, "  clean:      n=%d mean=%v p99=%v\n",
			s.GC.Clean.Count, s.GC.Clean.Mean, s.GC.Clean.P99)
		if s.GC.SlowdownX > 0 {
			fmt.Fprintf(&b, "  slowdown:   %.2fx mean latency under GC\n", s.GC.SlowdownX)
		}
	}
	return b.String()
}
