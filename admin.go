package noftl

import (
	"io"

	"noftl/internal/core"
)

// Admin is the narrow administrative facade for region, garbage-collection
// and wear operations.  It replaces the former SpaceManager()/Scheduler()
// escape hatches: everything a DBA tool needs, nothing that couples callers
// to internal structures.
type Admin interface {
	// CreateRegion creates a NoFTL region (the programmatic CREATE REGION).
	CreateRegion(spec RegionSpec) error
	// DropRegion drops an empty region and returns its dies to the default
	// region (ErrConflict when tablespaces still reference it).
	DropRegion(name string) error
	// GrowRegion moves n additional dies from the default region into the
	// named region.
	GrowRegion(name string, n int) error
	// SetGCPolicy switches the live garbage-collection policy of a region
	// (the programmatic ALTER REGION … SET).
	SetGCPolicy(region string, gc GCPolicy) error
	// GCPolicy returns the live garbage-collection policy of a region.
	GCPolicy(region string) (GCPolicy, bool)
	// PumpBackgroundGC runs bounded background GC steps on every die that is
	// in its background band, returning the number of steps taken.  Drivers
	// call it in idle periods to pay down GC debt off the critical path.
	PumpBackgroundGC() int
	// VerifyIntegrity cross-checks the space manager's mapping, per-block
	// accounting and region capacities, returning the first inconsistency.
	VerifyIntegrity() error
	// TraceDump writes the currently retained trace events to w as JSONL
	// (the stream the noftl-trace CLI consumes) and returns the number of
	// events written.  It returns 0 without error when tracing is off; the
	// ring buffer keeps recording, so mid-run dumps are snapshots, not
	// drains.
	TraceDump(w io.Writer) (int, error)
	// ArmFaults arms a deterministic fault-injection plan on the flash
	// device from this point on (chaos harnesses arm after schema setup so
	// crash points land in the measured workload).  See WithFaultPlan for
	// arming at open.
	ArmFaults(plan FaultPlan)
}

// Admin returns the administrative facade.
func (db *DB) Admin() Admin { return &admin{db: db} }

type admin struct{ db *DB }

func (a *admin) CreateRegion(spec RegionSpec) error {
	return a.db.CreateRegion(spec)
}

func (a *admin) DropRegion(name string) error {
	if err := a.db.checkOpen(); err != nil {
		return err
	}
	return a.db.dropRegion(name)
}

func (a *admin) GrowRegion(name string, n int) error {
	if err := a.db.checkOpen(); err != nil {
		return err
	}
	if err := a.db.space.GrowRegion(name, n); err != nil {
		return publicErr(err)
	}
	// Die assignment is part of the checkpoint snapshot; keep it durable.
	return a.db.checkpointAfterDDL()
}

func (a *admin) SetGCPolicy(region string, gc GCPolicy) error {
	if err := a.db.checkOpen(); err != nil {
		return err
	}
	if err := a.db.space.SetGCPolicy(region, gc); err != nil {
		return publicErr(err)
	}
	if region != core.DefaultRegionName {
		if err := a.db.cat.UpdateRegionGC(region, gc); err != nil {
			return publicErr(err)
		}
	}
	return a.db.checkpointAfterDDL()
}

func (a *admin) GCPolicy(region string) (GCPolicy, bool) {
	return a.db.space.GCPolicyOf(region)
}

func (a *admin) PumpBackgroundGC() int {
	return a.db.space.PumpBackgroundGC(a.db.clock.Now())
}

func (a *admin) VerifyIntegrity() error {
	return a.db.space.VerifyIntegrity()
}

func (a *admin) TraceDump(w io.Writer) (int, error) {
	return a.db.tracer.Dump(w)
}

func (a *admin) ArmFaults(plan FaultPlan) {
	a.db.dev.Arm(plan)
}
