package noftl

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"noftl/internal/core"
	"noftl/internal/flash"
	"noftl/internal/metrics"
	"noftl/internal/obs"
)

// obsConfig returns a deliberately tiny device so an update-heavy workload
// forces garbage collection within a few thousand writes, with background GC
// disabled so every collection is a foreground (blocking) one — the
// interference the trace summary must surface.
func obsConfig() Config {
	cfg := DefaultConfig()
	cfg.Flash.Geometry = flash.Geometry{
		Channels: 2, DiesPerChannel: 2, PlanesPerDie: 1,
		BlocksPerDie: 16, PagesPerBlock: 16, PageSize: 2048,
	}
	cfg.BufferPoolPages = 32
	cfg.Space = core.DefaultOptions()
	cfg.Space.DisableBackgroundGC = true
	// The WAL carries row images now; without a checkpoint trigger the
	// update churn would fill the tiny default region with live log pages.
	cfg.CheckpointEveryBytes = 256 << 10
	return cfg
}

// obsWorkload creates a region-resident table and churns it: insert rows,
// then update every row across several rounds with a checkpoint per round so
// the overwrites actually reach flash and invalidate pages.
func obsWorkload(t *testing.T, db *DB, rows, rounds int) {
	t.Helper()
	err := db.Exec(`
		CREATE REGION rgHot (MAX_CHIPS=2);
		CREATE TABLESPACE tsHot (REGION=rgHot);
		CREATE TABLE H (v VARCHAR(900)) TABLESPACE tsHot;
	`)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("H")
	row := bytes.Repeat([]byte{'x'}, 900)
	rids := make([]RID, 0, rows)
	err = db.Update(func(tx *Tx) error {
		var err error
		rids, err = tbl.InsertBatch(tx, repeatRows(row, rows))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < rounds; round++ {
		err = db.Update(func(tx *Tx) error {
			for _, rid := range rids {
				if err := tbl.Update(tx, rid, row); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.FlushAll(db.SimulatedTime()); err != nil {
			t.Fatal(err)
		}
	}
}

func repeatRows(row []byte, n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = row
	}
	return out
}

// TestObservabilityEndToEnd is the tentpole's integration test: boot with a
// metrics listener and a trace writer, churn a region until foreground GC
// fires, then (1) scrape /metrics over HTTP and validate the exposition with
// the in-repo linter, and (2) load the JSONL trace dumped on Close and check
// that the summary reproduces the A6 story — host writes that overlap a GC
// window on their die are slower than clean ones.
func TestObservabilityEndToEnd(t *testing.T) {
	var trace bytes.Buffer
	db, err := OpenConfig(obsConfig(),
		WithMetricsListener("127.0.0.1:0"),
		WithTrace(&trace))
	if err != nil {
		t.Fatal(err)
	}
	obsWorkload(t, db, 150, 14)

	space := db.Stats().Space
	if space.GCRuns == 0 || space.GCStalls == 0 {
		t.Fatalf("workload did not force foreground GC: runs=%d stalls=%d (enlarge the churn)",
			space.GCRuns, space.GCStalls)
	}

	// --- metrics plane ---
	addr := db.MetricsAddr()
	if addr == "" {
		t.Fatal("MetricsAddr empty with WithMetricsListener configured")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: status=%d err=%v", resp.StatusCode, err)
	}
	lint := metrics.LintExposition(body)
	if !lint.Valid() {
		t.Fatalf("exposition invalid:\n%s", strings.Join(lint.Problems, "\n"))
	}
	if len(lint.Families) < 10 {
		t.Fatalf("want >= 10 metric families, got %d", len(lint.Families))
	}
	if len(lint.LabelValues("die")) == 0 {
		t.Fatal("no die-labeled series in the exposition")
	}
	regions := lint.LabelValues("region")
	found := false
	for _, r := range regions {
		if r == "rgHot" {
			found = true
		}
	}
	if !found {
		t.Fatalf("region label values %v do not include rgHot", regions)
	}

	// The health probe answers while open.
	hr, err := http.Get("http://" + addr + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status=%v err=%v", hr, err)
	}
	hr.Body.Close()

	// Stats surfaces the tracer and queue-depth state.
	st := db.Stats()
	if st.Trace.Recorded == 0 {
		t.Fatal("Stats().Trace.Recorded = 0 with tracing on")
	}
	if st.Scheduler.QueueDepth < 0 {
		t.Fatal("negative queue depth")
	}

	// --- trace plane ---
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if db.MetricsAddr() == "" {
		t.Fatal("MetricsAddr should keep reporting the bound address after Close")
	}
	events, err := obs.LoadJSONL(bytes.NewReader(trace.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("Close dumped no events")
	}
	sum := obs.Summarize(events)
	if sum.HostWrite.Count == 0 {
		t.Fatal("summary has no host writes")
	}
	if sum.PerClass[obs.ClassGCStep] == 0 || sum.PerClass[obs.ClassGCErase] == 0 {
		t.Fatalf("summary has no GC activity: steps=%d erases=%d",
			sum.PerClass[obs.ClassGCStep], sum.PerClass[obs.ClassGCErase])
	}
	// The A6 story: writes that overlapped a GC window on their die are
	// slower than clean writes.
	if sum.GC.Interfered.Count == 0 {
		t.Fatal("no GC-interfered host writes despite foreground stalls")
	}
	if sum.GC.SlowdownX <= 1 {
		t.Fatalf("GC slowdown %.2fx, want > 1x", sum.GC.SlowdownX)
	}
	report := sum.String()
	for _, want := range []string{"per-die utilization", "GC interference", "slowdown:"} {
		if !strings.Contains(report, want) {
			t.Fatalf("summary report missing %q:\n%s", want, report)
		}
	}
}

// TestMetricsTextWithoutListener checks the passive path: no listener, no
// tracer — MetricsText still renders a valid exposition and the trace facade
// degrades to no-ops instead of erroring.
func TestMetricsTextWithoutListener(t *testing.T) {
	db, err := OpenConfig(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Exec("CREATE TABLE P (v VARCHAR(64))"); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("P")
	err = db.Update(func(tx *Tx) error {
		for i := 0; i < 32; i++ {
			if _, err := tbl.Insert(tx, []byte(fmt.Sprintf("row-%d", i))); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	if db.MetricsAddr() != "" {
		t.Fatal("MetricsAddr non-empty without a listener")
	}
	text := db.MetricsText()
	lint := metrics.LintExposition([]byte(text))
	if !lint.Valid() {
		t.Fatalf("exposition invalid:\n%s", strings.Join(lint.Problems, "\n"))
	}
	if _, ok := lint.Families["noftl_trace_events_recorded_total"]; ok {
		t.Fatal("trace families exported with tracing off")
	}

	n, err := db.Admin().TraceDump(io.Discard)
	if err != nil || n != 0 {
		t.Fatalf("TraceDump without tracer: n=%d err=%v", n, err)
	}
	if st := db.Stats(); st.Trace != (TraceStats{}) {
		t.Fatalf("Trace stats non-zero with tracing off: %+v", st.Trace)
	}
}

// TestTraceBufferWithoutWriter checks WithTraceBuffer alone: tracing is live
// and reachable through Admin().TraceDump mid-run.
func TestTraceBufferWithoutWriter(t *testing.T) {
	db, err := OpenConfig(smallConfig(), WithTraceBuffer(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Exec("CREATE TABLE Q (v VARCHAR(64))"); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("Q")
	err = db.Update(func(tx *Tx) error {
		_, err := tbl.Insert(tx, []byte("hello"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := db.Admin().TraceDump(&buf)
	if err != nil || n == 0 {
		t.Fatalf("TraceDump: n=%d err=%v", n, err)
	}
	events, err := obs.LoadJSONL(&buf)
	if err != nil || len(events) != n {
		t.Fatalf("round trip: %d events, err=%v (dumped %d)", len(events), err, n)
	}
}
