// Command apicheck extracts the exported API surface of package noftl (the
// module root) as one sorted line per exported declaration, and optionally
// enforces the facade rule that no exported function or method returns a
// pointer into an internal/ package.
//
// It works on the AST alone (no type checking), so it can be pointed at any
// checked-out tree:
//
//	go run ./ci/apicheck -dir .                # print the API surface
//	go run ./ci/apicheck -dir . -internal      # fail on internal pointers
//
// ci/apidiff.sh diffs the output of two commits and fails on removals that
// are not listed in ci/API_allowlist.txt, turning accidental breaking
// changes into CI failures while keeping intended ones reviewable.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	dir := flag.String("dir", ".", "directory of the package to inspect (the module root)")
	internal := flag.Bool("internal", false, "fail when an exported func/method returns a pointer into internal/")
	flag.Parse()

	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, *dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apicheck:", err)
		os.Exit(1)
	}
	pkg, ok := pkgs["noftl"]
	if !ok {
		fmt.Fprintf(os.Stderr, "apicheck: package noftl not found in %s\n", *dir)
		os.Exit(1)
	}

	var lines []string
	var violations []string
	for name, file := range pkg.Files {
		imports := importMap(file)
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				recv := ""
				if d.Recv != nil && len(d.Recv.List) == 1 {
					rt := typeString(fset, d.Recv.List[0].Type)
					if !exportedReceiver(rt) {
						continue
					}
					recv = "(" + rt + ") "
				}
				lines = append(lines, "func "+recv+d.Name.Name+signature(fset, d.Type))
				if *internal {
					if bad := internalPtrResult(fset, d.Type, imports); bad != "" {
						violations = append(violations, fmt.Sprintf("%s: func %s%s returns %s (pointer into internal/)",
							filepath.Base(name), recv, d.Name.Name, bad))
					}
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						kind := typeKind(s)
						lines = append(lines, "type "+s.Name.Name+" "+kind)
						// Exported struct fields and interface methods are
						// API too.
						switch t := s.Type.(type) {
						case *ast.StructType:
							for _, f := range t.Fields.List {
								for _, fn := range f.Names {
									if fn.IsExported() {
										lines = append(lines,
											"field "+s.Name.Name+"."+fn.Name+" "+typeString(fset, f.Type))
									}
								}
							}
						case *ast.InterfaceType:
							for _, m := range t.Methods.List {
								for _, mn := range m.Names {
									if mn.IsExported() {
										lines = append(lines,
											"method "+s.Name.Name+"."+mn.Name+signature(fset, m.Type.(*ast.FuncType)))
									}
								}
							}
						}
					case *ast.ValueSpec:
						for _, vn := range s.Names {
							if vn.IsExported() {
								kw := "var"
								if d.Tok == token.CONST {
									kw = "const"
								}
								lines = append(lines, kw+" "+vn.Name)
							}
						}
					}
				}
			}
		}
	}

	if *internal {
		if len(violations) > 0 {
			sort.Strings(violations)
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, v)
			}
			os.Exit(1)
		}
		return
	}
	sort.Strings(lines)
	prev := ""
	for _, l := range lines {
		if l != prev {
			fmt.Println(l)
		}
		prev = l
	}
}

// importMap returns local package name -> import path for a file.
func importMap(file *ast.File) map[string]string {
	out := make(map[string]string)
	for _, imp := range file.Imports {
		path, _ := strconv.Unquote(imp.Path.Value)
		name := filepath.Base(path)
		if imp.Name != nil {
			name = imp.Name.Name
		}
		out[name] = path
	}
	return out
}

// exportedReceiver reports whether a receiver type string names an exported
// type ("*DB" -> DB).
func exportedReceiver(rt string) bool {
	rt = strings.TrimPrefix(rt, "*")
	if i := strings.Index(rt, "["); i >= 0 { // generic receiver
		rt = rt[:i]
	}
	return rt != "" && ast.IsExported(rt)
}

// signature renders the parameter and result lists of a function type.
func signature(fset *token.FileSet, ft *ast.FuncType) string {
	var b strings.Builder
	b.WriteString("(")
	if ft.Params != nil {
		for i, f := range ft.Params.List {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(typeString(fset, f.Type))
			if n := len(f.Names); n > 1 {
				for j := 1; j < n; j++ {
					b.WriteString(", " + typeString(fset, f.Type))
				}
			}
		}
	}
	b.WriteString(")")
	if ft.Results != nil && len(ft.Results.List) > 0 {
		b.WriteString(" (")
		for i, f := range ft.Results.List {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(typeString(fset, f.Type))
		}
		b.WriteString(")")
	}
	return b.String()
}

// typeKind names the declaration form of a type spec.
func typeKind(s *ast.TypeSpec) string {
	prefix := ""
	if s.Assign != token.NoPos {
		prefix = "= "
	}
	switch s.Type.(type) {
	case *ast.StructType:
		return prefix + "struct"
	case *ast.InterfaceType:
		return prefix + "interface"
	default:
		return prefix + "decl"
	}
}

// typeString prints a type expression as source text.
func typeString(fset *token.FileSet, expr ast.Expr) string {
	var b strings.Builder
	_ = printer.Fprint(&b, fset, expr)
	return b.String()
}

// internalPtrResult returns the printed form of the first result type that
// is a pointer (possibly behind slices/arrays) into an internal/ package.
func internalPtrResult(fset *token.FileSet, ft *ast.FuncType, imports map[string]string) string {
	if ft.Results == nil {
		return ""
	}
	for _, f := range ft.Results.List {
		expr := f.Type
		for {
			switch t := expr.(type) {
			case *ast.ArrayType:
				expr = t.Elt
				continue
			case *ast.StarExpr:
				if sel, ok := t.X.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok {
						if path, ok := imports[id.Name]; ok && strings.Contains(path, "internal/") {
							return typeString(fset, f.Type)
						}
					}
				}
			}
			break
		}
	}
	return ""
}
