#!/usr/bin/env bash
# apidiff.sh — fail when the exported API of package noftl loses symbols
# that are not explicitly allowlisted.
#
# Usage: ci/apidiff.sh [base-ref]     (default: HEAD~1)
#
# The exported surface of the working tree and of the base ref are both
# extracted with ci/apicheck (the checker from the *current* tree is used for
# both sides, so the output format always matches).  Symbols present in the
# base but absent from the working tree are breaking changes; the build fails
# unless every removed line appears in ci/API_allowlist.txt.  Additions are
# reported but never fail the build.
set -euo pipefail
cd "$(dirname "$0")/.."

BASE="${1:-HEAD~1}"
ALLOWLIST="ci/API_allowlist.txt"
tmp="$(mktemp -d)"
trap 'git worktree remove --force "$tmp/base" >/dev/null 2>&1 || true; rm -rf "$tmp"' EXIT

go run ./ci/apicheck -dir . > "$tmp/new.txt"
go run ./ci/apicheck -dir . -internal

git worktree add --detach "$tmp/base" "$BASE" >/dev/null
go run ./ci/apicheck -dir "$tmp/base" > "$tmp/old.txt"

comm -23 "$tmp/old.txt" "$tmp/new.txt" > "$tmp/removed.txt" || true
comm -13 "$tmp/old.txt" "$tmp/new.txt" > "$tmp/added.txt" || true

if [ -s "$tmp/added.txt" ]; then
    echo "added API ($(wc -l < "$tmp/added.txt") symbols):"
    sed 's/^/  + /' "$tmp/added.txt"
fi

if [ -s "$tmp/removed.txt" ]; then
    touch "$ALLOWLIST"
    # Strip comments/blanks from the allowlist before matching.
    grep -v '^\s*\(#\|$\)' "$ALLOWLIST" > "$tmp/allow.txt" || true
    unallowed="$(grep -F -x -v -f "$tmp/allow.txt" "$tmp/removed.txt" || true)"
    echo "removed API ($(wc -l < "$tmp/removed.txt") symbols):"
    sed 's/^/  - /' "$tmp/removed.txt"
    if [ -n "$unallowed" ]; then
        echo
        echo "UNINTENDED BREAKING CHANGES (not in $ALLOWLIST):"
        echo "$unallowed" | sed 's/^/  ! /'
        echo
        echo "If the removal is intended, add the exact line(s) above to $ALLOWLIST."
        exit 1
    fi
    echo "all removals are allowlisted in $ALLOWLIST"
else
    echo "no API removals vs $BASE"
fi
