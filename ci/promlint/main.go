// Command promlint is the CI observability gate: it boots a database with a
// metrics listener, drives an update-heavy workload until garbage collection
// fires, scrapes /metrics over real HTTP and validates the exposition with
// the in-repo pure-Go linter (internal/metrics.LintExposition) — no external
// promtool needed.  It fails when the exposition is invalid, has fewer than
// 10 metric families, or lacks die- and region-labeled series.
//
// With -trace-out the run's event trace is additionally dumped as JSONL, so
// the workflow can feed it to `noftl-trace summarize` and check the GC
// interference report.
//
// Usage:
//
//	go run ./ci/promlint [-trace-out trace.jsonl]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"noftl"
	"noftl/internal/core"
	"noftl/internal/flash"
	"noftl/internal/metrics"
)

func main() {
	traceOut := flag.String("trace-out", "", "dump the run's event trace to this file as JSONL")
	minFamilies := flag.Int("min-families", 10, "fail when the exposition has fewer metric families")
	flag.Parse()
	if err := run(*traceOut, *minFamilies); err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
		os.Exit(1)
	}
}

func run(traceOut string, minFamilies int) error {
	// A tiny device with background GC disabled: the churn below forces
	// foreground collections, so the trace carries the GC windows the
	// summarizer reports on.
	cfg := noftl.DefaultConfig()
	cfg.Flash.Geometry = flash.Geometry{
		Channels: 2, DiesPerChannel: 2, PlanesPerDie: 1,
		BlocksPerDie: 16, PagesPerBlock: 16, PageSize: 2048,
	}
	cfg.BufferPoolPages = 32
	cfg.Space = core.DefaultOptions()
	cfg.Space.DisableBackgroundGC = true

	db, err := noftl.OpenConfig(cfg,
		noftl.WithMetricsListener("127.0.0.1:0"),
		noftl.WithTraceBuffer(1<<17))
	if err != nil {
		return err
	}
	defer db.Close()

	if err := workload(db); err != nil {
		return err
	}
	if st := db.Stats().Space; st.GCRuns == 0 {
		return fmt.Errorf("workload did not trigger GC (runs=0); the gate would not cover GC families")
	}

	body, err := scrape("http://" + db.MetricsAddr() + "/metrics")
	if err != nil {
		return err
	}
	lint := metrics.LintExposition(body)
	for _, p := range lint.Problems {
		fmt.Fprintf(os.Stderr, "promlint: %s\n", p)
	}
	if !lint.Valid() {
		return fmt.Errorf("exposition has %d problems", len(lint.Problems))
	}
	if len(lint.Families) < minFamilies {
		return fmt.Errorf("exposition has %d families, want >= %d", len(lint.Families), minFamilies)
	}
	if len(lint.LabelValues("die")) == 0 {
		return fmt.Errorf("no die-labeled series in the exposition")
	}
	if len(lint.LabelValues("region")) == 0 {
		return fmt.Errorf("no region-labeled series in the exposition")
	}

	if traceOut != "" {
		var trace bytes.Buffer
		n, err := db.Admin().TraceDump(&trace)
		if err != nil {
			return err
		}
		if err := os.WriteFile(traceOut, trace.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (%d events, %d bytes)\n", traceOut, n, trace.Len())
	}

	fmt.Printf("OK: %d families, %d samples, die labels %d, region labels %v\n",
		len(lint.Families), lint.Samples, len(lint.LabelValues("die")), lint.LabelValues("region"))
	return nil
}

// workload creates a region-resident table and churns it until the tiny
// device needs garbage collection.
func workload(db *noftl.DB) error {
	err := db.Exec(`
		CREATE REGION rgHot (MAX_CHIPS=2);
		CREATE TABLESPACE tsHot (REGION=rgHot);
		CREATE TABLE H (v VARCHAR(900)) TABLESPACE tsHot;
	`)
	if err != nil {
		return err
	}
	tbl, _ := db.Table("H")
	row := bytes.Repeat([]byte{'x'}, 900)
	rows := make([][]byte, 150)
	for i := range rows {
		rows[i] = row
	}
	var rids []noftl.RID
	err = db.Update(func(tx *noftl.Tx) error {
		var err error
		rids, err = tbl.InsertBatch(tx, rows)
		return err
	})
	if err != nil {
		return err
	}
	for round := 0; round < 14; round++ {
		err = db.Update(func(tx *noftl.Tx) error {
			for _, rid := range rids {
				if err := tbl.Update(tx, rid, row); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		if _, err := db.FlushAll(db.SimulatedTime()); err != nil {
			return err
		}
	}
	return nil
}

func scrape(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: status %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}
