package noftl

import (
	"fmt"
	"strings"
	"time"

	"noftl/internal/buffer"
	"noftl/internal/flash"
	"noftl/internal/metrics"
)

// Stats is a snapshot of the whole stack: transactions, buffer pool, NoFTL
// space manager and flash device.  All counters are cumulative since the
// last ResetStatistics call.
type Stats struct {
	// Simulated is the simulated wall-clock time covered by the counters.
	Simulated time.Duration
	// Transactions
	TxnStarted   int64
	TxnCommitted int64
	TxnAborted   int64
	// Buffer pool
	Buffer buffer.Stats
	// NoFTL space manager (per region + totals)
	Space SpaceStats
	// Flash device
	Device flash.Stats
	// Host I/O latencies aggregated over all regions
	ReadLatency  metrics.Snapshot
	WriteLatency metrics.Snapshot
}

// TPS returns committed transactions per simulated second.
func (s Stats) TPS() float64 {
	secs := s.Simulated.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(s.TxnCommitted) / secs
}

// WriteAmplification returns the device write-amplification factor.
func (s Stats) WriteAmplification() float64 { return s.Space.WriteAmplification() }

// String renders a compact multi-line report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "simulated time: %v\n", s.Simulated)
	fmt.Fprintf(&b, "transactions:   started=%d committed=%d aborted=%d (%.2f TPS)\n",
		s.TxnStarted, s.TxnCommitted, s.TxnAborted, s.TPS())
	fmt.Fprintf(&b, "buffer pool:    hit ratio=%.3f misses=%d writebacks=%d\n",
		s.Buffer.HitRatio(), s.Buffer.Misses, s.Buffer.Writebacks)
	fmt.Fprintf(&b, "host I/O:       reads=%d (mean %v) writes=%d (mean %v)\n",
		s.ReadLatency.Count, s.ReadLatency.Mean, s.WriteLatency.Count, s.WriteLatency.Mean)
	fmt.Fprintf(&b, "flash GC:       copybacks=%d erases=%d WA=%.2f\n",
		s.Space.GCCopybacks, s.Space.GCErases, s.WriteAmplification())
	for _, r := range s.Space.Regions {
		fmt.Fprintf(&b, "  %s\n", r.String())
	}
	return b.String()
}

// Stats returns a snapshot of every layer's counters.
func (db *DB) Stats() Stats {
	space := db.space.Stats()
	read, write := space.LatencySnapshot()
	return Stats{
		Simulated:    time.Duration(db.clock.Now()),
		TxnStarted:   db.txns.Started(),
		TxnCommitted: db.txns.Committed(),
		TxnAborted:   db.txns.Aborted(),
		Buffer:       db.pool.Stats(),
		Space:        space,
		Device:       db.dev.Stats(),
		ReadLatency:  read,
		WriteLatency: write,
	}
}
