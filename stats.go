package noftl

import (
	"fmt"
	"strings"
	"time"

	"noftl/internal/buffer"
	"noftl/internal/flash"
	"noftl/internal/metrics"
)

// Stats is an immutable snapshot of the whole stack: transactions, buffer
// pool, I/O scheduler, NoFTL space manager (with per-region GC counters),
// flash device, WAL and per-object I/O counters.  All counters are
// cumulative since the last ResetStatistics call.  It replaces the former
// live-pointer accessors (SpaceManager(), SchedulerMetrics(), ...).
type Stats struct {
	// Simulated is the simulated wall-clock time covered by the counters.
	Simulated time.Duration
	// Transactions
	TxnStarted   int64
	TxnCommitted int64
	TxnAborted   int64
	// Txn carries the lock manager's contention counters (waits, timeouts,
	// held/waiting locks, per-shard wait skew).
	Txn TxnStats
	// Buffer pool
	Buffer buffer.Stats
	// Scheduler covers the asynchronous I/O scheduler between the space
	// manager and the device.
	Scheduler SchedulerStats
	// NoFTL space manager (per region + totals)
	Space SpaceStats
	// Flash device
	Device flash.Stats
	// WAL covers the write-ahead log (zero value when WAL is disabled).
	WAL WALStats
	// Objects holds the per-object physical I/O counters consumed by the
	// Region Advisor, sorted by I/O rate.
	Objects []ObjectCounters
	// Trace covers the event tracer (zero value when tracing is off).
	Trace TraceStats
	// Host I/O latencies aggregated over all regions
	ReadLatency  metrics.Snapshot
	WriteLatency metrics.Snapshot
}

// ObjectCounters re-exports the per-object I/O statistics record.
type ObjectCounters = metrics.ObjectCounters

// SchedulerStats is a snapshot of the I/O scheduler's counters.
type SchedulerStats struct {
	// Batches counts scheduler submissions (one Submit/Flush dispatch,
	// covering one or more requests).
	Batches int64
	// Requests counts individual flash commands dispatched.
	Requests int64
	// MaxBatch is the largest batch dispatched so far.
	MaxBatch int64
	// MaxQueueDepth is the deepest the async queue has been.
	MaxQueueDepth int64
	// HostReads, HostWrites and GC count requests per priority class.
	HostReads  int64
	HostWrites int64
	GC         int64
	// GCSteps and GCStalls count bounded background GC steps and foreground
	// (blocking) collections.
	GCSteps  int64
	GCStalls int64
	// QueueDepth is the number of flash commands enqueued for asynchronous
	// submission at snapshot time (MaxQueueDepth is the high-water mark).
	QueueDepth int64
}

// TraceStats is a snapshot of the event tracer's counters (all zero when
// tracing is off).
type TraceStats struct {
	// Recorded is the total number of events ever recorded.
	Recorded int64
	// Dropped is the number of events overwritten after the ring wrapped.
	Dropped int64
	// Retained is the number of events currently held in the ring buffer.
	Retained int64
}

// TxnStats is a snapshot of the lock manager's contention counters.
type TxnStats struct {
	// LockWaits counts lock acquisitions that had to block; LockTimeouts
	// counts waits that ended as deadlock victims (ErrLockTimeout).
	LockWaits    int64
	LockTimeouts int64
	// LocksHeld is the number of keys locked at snapshot time; LockWaiting
	// is the number of transactions blocked on a key at snapshot time.
	LocksHeld   int64
	LockWaiting int64
	// ShardWaits is the per-shard breakdown of LockWaits over the lock
	// table's hash shards, exposing contention skew.
	ShardWaits []int64
}

// WALStats is a snapshot of the write-ahead log's counters.
type WALStats struct {
	// Appended is the number of records appended.
	Appended int64
	// Flushes is the number of flushes that wrote pages.
	Flushes int64
	// Pages is the number of log pages allocated.
	Pages int64
	// FlushedLSN is the highest durable log sequence number.
	FlushedLSN uint64
	// GroupCommits is the number of log forces that made more than one
	// committer durable at once; GroupedTxns is the number of committers
	// served by the group-commit path in total.
	GroupCommits int64
	GroupedTxns  int64
	// BytesAppended, BytesTrimmed and BytesLive reconcile the log's byte
	// ledger: Appended = Trimmed + Live always holds, across checkpoints and
	// truncations.  BytesLive bounds what a crash right now would replay.
	BytesAppended int64
	BytesTrimmed  int64
	BytesLive     int64
	// PagesTrimmed counts log pages dropped by checkpoint truncation.
	PagesTrimmed int64
	// Checkpoint covers the checkpoint subsystem.
	Checkpoint CheckpointStats
}

// TPS returns committed transactions per simulated second.
func (s Stats) TPS() float64 {
	secs := s.Simulated.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(s.TxnCommitted) / secs
}

// WriteAmplification returns the device write-amplification factor.
func (s Stats) WriteAmplification() float64 { return s.Space.WriteAmplification() }

// String renders a compact multi-line report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "simulated time: %v\n", s.Simulated)
	fmt.Fprintf(&b, "transactions:   started=%d committed=%d aborted=%d (%.2f TPS)\n",
		s.TxnStarted, s.TxnCommitted, s.TxnAborted, s.TPS())
	fmt.Fprintf(&b, "buffer pool:    hit ratio=%.3f misses=%d writebacks=%d\n",
		s.Buffer.HitRatio(), s.Buffer.Misses, s.Buffer.Writebacks)
	fmt.Fprintf(&b, "host I/O:       reads=%d (mean %v) writes=%d (mean %v)\n",
		s.ReadLatency.Count, s.ReadLatency.Mean, s.WriteLatency.Count, s.WriteLatency.Mean)
	fmt.Fprintf(&b, "scheduler:      submissions=%d requests=%d max batch=%d\n",
		s.Scheduler.Batches, s.Scheduler.Requests, s.Scheduler.MaxBatch)
	fmt.Fprintf(&b, "flash GC:       copybacks=%d erases=%d WA=%.2f\n",
		s.Space.GCCopybacks, s.Space.GCErases, s.WriteAmplification())
	for _, r := range s.Space.Regions {
		fmt.Fprintf(&b, "  %s\n", r.String())
	}
	return b.String()
}

// Stats returns a snapshot of every layer's counters.
func (db *DB) Stats() Stats {
	space := db.space.Stats()
	read, write := space.LatencySnapshot()
	lockStats := db.txns.LockManager().Stats()
	st := Stats{
		Simulated:    time.Duration(db.clock.Now()),
		TxnStarted:   db.txns.Started(),
		TxnCommitted: db.txns.Committed(),
		TxnAborted:   db.txns.Aborted(),
		Txn: TxnStats{
			LockWaits:    lockStats.Waits,
			LockTimeouts: lockStats.Timeouts,
			LocksHeld:    lockStats.Held,
			LockWaiting:  lockStats.Waiting,
			ShardWaits:   lockStats.ShardWaits,
		},
		Buffer:       db.pool.Stats(),
		Scheduler:    db.schedulerStats(),
		Space:        space,
		Device:       db.dev.Stats(),
		Objects:      db.ObjectStats(),
		ReadLatency:  read,
		WriteLatency: write,
	}
	if db.log != nil {
		st.WAL = WALStats{
			Appended:      db.log.Appended(),
			Flushes:       db.log.Flushes(),
			Pages:         int64(db.log.PageCount()),
			FlushedLSN:    db.log.FlushedLSN(),
			GroupCommits:  db.log.GroupCommits(),
			GroupedTxns:   db.log.GroupedTxns(),
			BytesAppended: db.log.BytesAppended(),
			BytesTrimmed:  db.log.BytesTrimmed(),
			BytesLive:     db.log.BytesLive(),
			PagesTrimmed:  db.log.PagesTrimmed(),
			Checkpoint:    db.checkpointStats(),
		}
	}
	if db.tracer != nil {
		st.Trace = TraceStats{
			Recorded: db.tracer.Recorded(),
			Dropped:  db.tracer.Dropped(),
			Retained: int64(db.tracer.Len()),
		}
	}
	return st
}

// schedulerStats snapshots the I/O scheduler's metric set.
func (db *DB) schedulerStats() SchedulerStats {
	sched := db.space.Scheduler()
	set := sched.Metrics()
	c := set.CounterValues()
	return SchedulerStats{
		QueueDepth:    int64(sched.QueueDepth()),
		Batches:       c["iosched.batches"],
		Requests:      c["iosched.requests"],
		MaxBatch:      set.Gauge("iosched.max_batch_size").Value(),
		MaxQueueDepth: set.Gauge("iosched.max_queue_depth").Value(),
		HostReads:     c["iosched.requests.host_read"],
		HostWrites:    c["iosched.requests.host_write"],
		GC:            c["iosched.requests.gc"],
		GCSteps:       c["iosched.gc_steps"],
		GCStalls:      c["iosched.gc_watermark_stalls"],
	}
}
