package noftl

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"noftl/internal/core"
	"noftl/internal/flash"
)

// smallConfig returns a configuration small enough for fast tests but large
// enough to exercise eviction and GC.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Flash.Geometry = flash.Geometry{
		Channels: 4, DiesPerChannel: 2, PlanesPerDie: 1,
		BlocksPerDie: 64, PagesPerBlock: 32, PageSize: 2048,
	}
	cfg.BufferPoolPages = 64
	return cfg
}

func TestOpenCloseAndPaperDDL(t *testing.T) {
	db, err := OpenConfig(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// The exact statements from §2 of the paper.
	err = db.Exec(`
		CREATE REGION rgHotTbl (MAX_CHIPS=4, MAX_CHANNELS=4, MAX_SIZE=1280M);
		CREATE TABLESPACE tsHotTbl (REGION=rgHotTbl, EXTENT SIZE 128K);
		CREATE TABLE T (t_id NUMBER(3)) TABLESPACE tsHotTbl;
	`)
	if err != nil {
		t.Fatal(err)
	}
	// The region exists in both catalog and space manager, with 4 dies.
	if _, ok := db.cat.Region("rgHotTbl"); !ok {
		t.Fatal("region missing from catalog")
	}
	st := db.Stats().Space
	rs, ok := st.RegionByName("rgHotTbl")
	if !ok || len(rs.Dies) != 4 {
		t.Fatalf("region dies = %v", rs.Dies)
	}
	// Table exists and is usable.
	tbl, ok := db.Table("T")
	if !ok {
		t.Fatal("table missing")
	}
	tx := db.Begin()
	rid, err := tbl.Insert(tx, []byte("hello flash"))
	if err != nil {
		t.Fatal(err)
	}
	row, err := tbl.Get(tx, rid)
	if err != nil || string(row) != "hello flash" {
		t.Fatalf("get: %q %v", row, err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Bad DDL surfaces an error.
	if err := db.Exec("CREATE NONSENSE x"); err == nil {
		t.Fatal("bad DDL accepted")
	}
	if err := db.Exec("CREATE TABLE X (a INTEGER) TABLESPACE nope"); err == nil {
		t.Fatal("unknown tablespace accepted")
	}
	if err := db.Exec("CREATE TABLESPACE ts2 (REGION=missing)"); err == nil {
		t.Fatal("unknown region accepted")
	}
	// Closing twice is fine.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTransactionsTablesIndexes(t *testing.T) {
	db, err := OpenConfig(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Exec(`
		CREATE TABLE CUSTOMER (c_id INTEGER, c_name VARCHAR(16), c_balance DECIMAL(12,2));
		CREATE UNIQUE INDEX C_IDX ON CUSTOMER (c_id);
	`); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("CUSTOMER")
	idx, ok := db.Index("C_IDX")
	if !ok || idx.Table() != "CUSTOMER" || !idx.Unique() {
		t.Fatalf("index meta wrong: %+v", idx)
	}

	// Insert 500 customers through transactions, indexed by id.
	const n = 500
	for i := 0; i < n; i++ {
		tx := db.Begin()
		if err := tx.Lock(fmt.Sprintf("CUSTOMER:%d", i), Exclusive); err != nil {
			t.Fatal(err)
		}
		row := []byte(fmt.Sprintf("cust-%05d|%s", i, bytes.Repeat([]byte{'d'}, 80)))
		rid, err := tbl.Insert(tx, row)
		if err != nil {
			t.Fatal(err)
		}
		if err := idx.Insert(tx, Key(uint32(i)), rid); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.RowCount() != n || idx.Entries() != n {
		t.Fatalf("counts: rows=%d entries=%d", tbl.RowCount(), idx.Entries())
	}
	// Point lookups via the index.
	tx := db.Begin()
	for _, id := range []uint32{0, 42, 499} {
		rid, found, err := idx.Lookup(tx, Key(id))
		if err != nil || !found {
			t.Fatalf("lookup %d: %v", id, err)
		}
		row, err := tbl.Get(tx, rid)
		if err != nil || !bytes.HasPrefix(row, []byte(fmt.Sprintf("cust-%05d", id))) {
			t.Fatalf("row %d wrong: %v", id, err)
		}
	}
	// Range scan over the index.
	count := 0
	if err := idx.Scan(tx, Key(100), Key(200), func(k []byte, rid RID) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("range scan saw %d", count)
	}
	// Prefix scan and delete.
	if err := idx.Delete(tx, Key(100)); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := idx.Lookup(tx, Key(100)); found {
		t.Fatal("deleted key still found")
	}
	// Update a row through the table handle.
	rid, _, _ := idx.Lookup(tx, Key(42))
	newRow := []byte(fmt.Sprintf("cust-%05d|%s", 42, bytes.Repeat([]byte{'E'}, 80)))
	if err := tbl.Update(tx, rid, newRow); err != nil {
		t.Fatal(err)
	}
	got, _ := tbl.Get(tx, rid)
	if !bytes.Equal(got, newRow) {
		t.Fatal("update lost")
	}
	// Table scan.
	scanCount := 0
	if err := tbl.Scan(tx, func(rid RID, row []byte) bool {
		scanCount++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if scanCount != n {
		t.Fatalf("table scan saw %d", scanCount)
	}
	// Delete a row.
	if err := tbl.Delete(tx, rid); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Get(tx, rid); err == nil {
		t.Fatal("deleted row still readable")
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.ResponseTime() <= 0 {
		t.Fatal("no response time accounted")
	}

	// Statistics reflect the work done.
	stats := db.Stats()
	if stats.TxnCommitted < n {
		t.Fatalf("committed = %d", stats.TxnCommitted)
	}
	if stats.Buffer.Hits == 0 {
		t.Fatal("no buffer hits recorded")
	}
	if stats.Space.HostWrites == 0 {
		t.Fatal("no flash writes recorded (WAL flushes at commit should write)")
	}
	if stats.Simulated <= 0 || stats.TPS() <= 0 {
		t.Fatalf("simulated time/TPS wrong: %v %v", stats.Simulated, stats.TPS())
	}
	if stats.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestPlacementHintsReachRegions(t *testing.T) {
	cfg := smallConfig()
	db, err := OpenConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Exec(`
		CREATE REGION rgHot (MAX_CHIPS=2);
		CREATE REGION rgCold (MAX_CHIPS=2);
		CREATE TABLESPACE tsHot (REGION=rgHot);
		CREATE TABLESPACE tsCold (REGION=rgCold);
		CREATE TABLE HOT (v VARCHAR(100)) TABLESPACE tsHot;
		CREATE TABLE COLD (v VARCHAR(100)) TABLESPACE tsCold;
	`); err != nil {
		t.Fatal(err)
	}
	hot, _ := db.Table("HOT")
	cold, _ := db.Table("COLD")
	tx := db.Begin()
	payload := bytes.Repeat([]byte{'p'}, 500)
	for i := 0; i < 200; i++ {
		if _, err := hot.Insert(tx, payload); err != nil {
			t.Fatal(err)
		}
		if _, err := cold.Insert(tx, payload); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.FlushAll(db.SimulatedTime()); err != nil {
		t.Fatal(err)
	}
	st := db.Stats().Space
	hotStats, _ := st.RegionByName("rgHot")
	coldStats, _ := st.RegionByName("rgCold")
	if hotStats.HostWrites == 0 || coldStats.HostWrites == 0 {
		t.Fatalf("writes did not reach both regions: hot=%d cold=%d", hotStats.HostWrites, coldStats.HostWrites)
	}
	// Per-object statistics were recorded and the advisor produces a plan.
	objs := db.ObjectStats()
	if len(objs) < 2 {
		t.Fatalf("object stats: %d objects", len(objs))
	}
	foundHot := false
	for _, o := range objs {
		if o.Name == "HOT" && o.Writes > 0 {
			foundHot = true
		}
	}
	if !foundHot {
		t.Fatalf("HOT object has no physical writes recorded: %+v", objs)
	}
	plan := db.Advise(AdvisorOptions{MaxRegions: 3})
	if len(plan.Groups) == 0 || plan.TotalDies != db.Geometry().Dies() {
		t.Fatalf("advisor plan: %+v", plan)
	}
}

func TestTraditionalModeDatabase(t *testing.T) {
	cfg := smallConfig()
	cfg.Space.Mode = core.PlacementTraditional
	db, err := OpenConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Exec(`
		CREATE REGION rgHot (MAX_CHIPS=2);
		CREATE TABLESPACE tsHot (REGION=rgHot);
		CREATE TABLE HOT (v VARCHAR(100)) TABLESPACE tsHot;
	`); err != nil {
		t.Fatal(err)
	}
	hot, _ := db.Table("HOT")
	tx := db.Begin()
	for i := 0; i < 100; i++ {
		if _, err := hot.Insert(tx, bytes.Repeat([]byte{'q'}, 400)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.FlushAll(db.SimulatedTime()); err != nil {
		t.Fatal(err)
	}
	st := db.Stats().Space
	hotStats, _ := st.RegionByName("rgHot")
	if hotStats.HostWrites != 0 {
		t.Fatalf("traditional mode placed %d writes in the hinted region", hotStats.HostWrites)
	}
}

func TestCheckpointAndDropTable(t *testing.T) {
	db, err := OpenConfig(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Exec("CREATE TABLE TMP (v VARCHAR(64))"); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("TMP")
	tx := db.Begin()
	for i := 0; i < 300; i++ {
		if _, err := tbl.Insert(tx, bytes.Repeat([]byte{'t'}, 60)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Checkpoint(db.SimulatedTime()); err != nil {
		t.Fatal(err)
	}
	validBefore := db.Stats().Space.ValidPages
	if validBefore == 0 {
		t.Fatal("checkpoint flushed nothing")
	}
	if err := db.Exec("DROP TABLE TMP"); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Table("TMP"); ok {
		t.Fatal("table still visible after drop")
	}
	if db.Stats().Space.ValidPages >= validBefore {
		t.Fatal("drop did not trim pages")
	}
	if err := db.DropTable("TMP"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double drop: %v", err)
	}
	// Unknown objects are reported.
	if _, err := db.CreateIndex("X", "MISSING", []string{"a"}, false, ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("index on missing table: %v", err)
	}
	if _, err := db.CreateTable("Y", "missingTS", nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("table in missing tablespace: %v", err)
	}
}

func TestResetStatistics(t *testing.T) {
	db, err := OpenConfig(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Exec("CREATE TABLE R (v VARCHAR(64))"); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("R")
	tx := db.Begin()
	for i := 0; i < 50; i++ {
		if _, err := tbl.Insert(tx, bytes.Repeat([]byte{'r'}, 50)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.FlushAll(db.SimulatedTime()); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Space.HostWrites == 0 {
		t.Fatal("no writes before reset")
	}
	db.ResetStatistics()
	st := db.Stats()
	if st.Space.HostWrites != 0 || st.Buffer.Misses != 0 || st.Simulated != 0 {
		t.Fatalf("reset incomplete: %+v", st)
	}
	// Data survives the reset.
	tx2 := db.Begin()
	n := 0
	if err := tbl.Scan(tx2, func(rid RID, row []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("rows after reset = %d", n)
	}
	if _, err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestExecRegionGCPolicyDDL(t *testing.T) {
	db, err := OpenConfig(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	err = db.Exec(`CREATE REGION rgHot (MAX_CHIPS=2, GC_POLICY=COST_BENEFIT, GC_STEP_PAGES=4, HOT_COLD=OFF);`)
	if err != nil {
		t.Fatal(err)
	}
	gc, ok := db.Admin().GCPolicy("rgHot")
	if !ok || gc.Victim != core.VictimCostBenefit || gc.StepPages != 4 || !gc.DisableHotCold {
		t.Fatalf("CREATE REGION GC clause not applied: %+v", gc)
	}
	cr, ok := db.cat.Region("rgHot")
	if !ok || cr.GC.Victim != core.VictimCostBenefit {
		t.Fatalf("catalog missed the GC clause: %+v", cr.GC)
	}
	// Reconfigure online.
	if err := db.Exec(`ALTER REGION rgHot SET GC_POLICY=GREEDY, HOT_COLD=ON;`); err != nil {
		t.Fatal(err)
	}
	gc, _ = db.Admin().GCPolicy("rgHot")
	if gc.Victim != core.VictimGreedy || gc.DisableHotCold || gc.StepPages != 4 {
		t.Fatalf("ALTER REGION not applied (StepPages must survive): %+v", gc)
	}
	cr, _ = db.cat.Region("rgHot")
	if cr.GC.Victim != core.VictimGreedy {
		t.Fatalf("catalog not updated: %+v", cr.GC)
	}
	// The default region can be tuned too (no catalog entry to update).
	if err := db.Exec(`ALTER REGION DEFAULT SET GC_STEP_PAGES=2;`); err != nil {
		t.Fatal(err)
	}
	gc, _ = db.Admin().GCPolicy(core.DefaultRegionName)
	if gc.StepPages != 2 {
		t.Fatalf("default region not altered: %+v", gc)
	}
	// Unknown region and bad policy fail.
	if err := db.Exec(`ALTER REGION nope SET GC_POLICY=GREEDY;`); err == nil {
		t.Fatal("ALTER of unknown region should fail")
	}
	if err := db.Exec(`CREATE REGION r2 (MAX_CHIPS=1, GC_POLICY=LRU);`); err == nil {
		t.Fatal("unknown GC policy should fail")
	}
}
