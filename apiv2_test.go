package noftl

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"noftl/internal/core"
)

// TestInsertBatchSubmissionRatio is the batch-DML acceptance check: 1k rows
// inserted through InsertBatch on the default 8-die configuration must issue
// at least 4x fewer scheduler submissions than 1k row-at-a-time inserts.
func TestInsertBatchSubmissionRatio(t *testing.T) {
	const rows = 1000
	row := bytes.Repeat([]byte{'r'}, 256)

	serial := func() int64 {
		db, err := Open()
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		if err := db.Exec("CREATE TABLE T (v VARCHAR(256))"); err != nil {
			t.Fatal(err)
		}
		tbl, _ := db.Table("T")
		for i := 0; i < rows; i++ {
			tx := db.Begin()
			if _, err := tbl.Insert(tx, row); err != nil {
				t.Fatal(err)
			}
			if _, err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		return db.Stats().Scheduler.Batches
	}()

	batched := func() int64 {
		db, err := Open()
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		if err := db.Exec("CREATE TABLE T (v VARCHAR(256))"); err != nil {
			t.Fatal(err)
		}
		tbl, _ := db.Table("T")
		all := make([][]byte, rows)
		for i := range all {
			all[i] = row
		}
		err = db.Update(func(tx *Tx) error {
			rids, err := tbl.InsertBatch(tx, all)
			if err != nil {
				return err
			}
			if len(rids) != rows {
				return fmt.Errorf("got %d rids", len(rids))
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := tbl.RowCount(); got != rows {
			t.Fatalf("row count = %d, want %d", got, rows)
		}
		return db.Stats().Scheduler.Batches
	}()

	if batched == 0 || serial < 4*batched {
		t.Fatalf("InsertBatch issued %d scheduler submissions vs %d for row-at-a-time: want >= 4x fewer",
			batched, serial)
	}
	t.Logf("scheduler submissions: serial=%d batch=%d (%.0fx fewer)",
		serial, batched, float64(serial)/float64(batched))
}

// TestBatchDMLRoundTrip exercises InsertBatch/GetBatch/LookupBatch
// correctness: every row readable one-at-a-time and in batches, keys
// resolvable in a batch, missing keys reported.
func TestBatchDMLRoundTrip(t *testing.T) {
	db, err := OpenConfig(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Exec(`
		CREATE TABLE T (v VARCHAR(200));
		CREATE UNIQUE INDEX T_IDX ON T (v);
	`); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("T")
	idx, _ := db.Index("T_IDX")

	const rows = 500
	all := make([][]byte, rows)
	for i := range all {
		all[i] = []byte(fmt.Sprintf("row-%04d|%s", i, strings.Repeat("x", 80)))
	}
	var rids []RID
	err = db.Update(func(tx *Tx) error {
		var err error
		rids, err = tbl.InsertBatch(tx, all)
		if err != nil {
			return err
		}
		for i, rid := range rids {
			if err := idx.Insert(tx, Key(uint32(i)), rid); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != rows {
		t.Fatalf("rids = %d", len(rids))
	}

	// Push to flash so GetBatch exercises the cold batched read path too.
	if _, err := db.FlushAll(db.SimulatedTime()); err != nil {
		t.Fatal(err)
	}

	err = db.View(func(tx *Tx) error {
		// Batch get in row order and a shuffled subset.
		got, err := tbl.GetBatch(tx, rids[:64])
		if err != nil {
			return err
		}
		for i, row := range got {
			if !bytes.Equal(row, all[i]) {
				return fmt.Errorf("GetBatch[%d] mismatch", i)
			}
		}
		subset := []RID{rids[499], rids[0], rids[250], rids[250]}
		got, err = tbl.GetBatch(tx, subset)
		if err != nil {
			return err
		}
		if !bytes.Equal(got[0], all[499]) || !bytes.Equal(got[1], all[0]) ||
			!bytes.Equal(got[2], all[250]) || !bytes.Equal(got[3], all[250]) {
			return fmt.Errorf("GetBatch subset mismatch")
		}
		// Batch lookups, with one key that does not exist.
		keys := [][]byte{Key(0), Key(499), Key(12345)}
		brids, found, err := idx.LookupBatch(tx, keys)
		if err != nil {
			return err
		}
		if !found[0] || !found[1] || found[2] {
			return fmt.Errorf("LookupBatch found = %v", found)
		}
		if brids[0] != rids[0] || brids[1] != rids[499] {
			return fmt.Errorf("LookupBatch rids wrong")
		}
		// A missing record fails the whole GetBatch with ErrNotFound.
		if _, err := tbl.GetBatch(tx, []RID{{LPN: rids[0].LPN, Slot: 999}}); !errors.Is(err, ErrNotFound) {
			return fmt.Errorf("GetBatch of bad slot: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestInsertBatchOversizedRecord verifies an oversized record fails the
// batch up front and leaves the heap fully usable.
func TestInsertBatchOversizedRecord(t *testing.T) {
	db, err := OpenConfig(smallConfig()) // 2 KiB pages
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Exec("CREATE TABLE T (v VARCHAR(4000))"); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("T")
	huge := bytes.Repeat([]byte{'h'}, 4000) // larger than a 2 KiB page
	err = db.Update(func(tx *Tx) error {
		rids, berr := tbl.InsertBatch(tx, [][]byte{[]byte("small"), huge})
		if berr == nil {
			return fmt.Errorf("oversized batch accepted")
		}
		if len(rids) != 0 {
			return fmt.Errorf("oversized batch applied %d rows", len(rids))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.RowCount() != 0 {
		t.Fatalf("row count = %d after failed batch", tbl.RowCount())
	}
	// The heap must still work: inserts, batch inserts and scans.
	err = db.Update(func(tx *Tx) error {
		if _, err := tbl.Insert(tx, []byte("one")); err != nil {
			return err
		}
		if _, err := tbl.InsertBatch(tx, [][]byte{[]byte("two"), []byte("three")}); err != nil {
			return err
		}
		n := 0
		for range tbl.Rows(tx) {
			n++
		}
		if n != 3 {
			return fmt.Errorf("scan after failed batch saw %d rows", n)
		}
		return tx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestIterators covers Table.Rows, Index.Range and Index.Prefix including
// early break and the Tx.Err contract.
func TestIterators(t *testing.T) {
	db, err := OpenConfig(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Exec(`
		CREATE TABLE T (v VARCHAR(64));
		CREATE UNIQUE INDEX T_IDX ON T (v);
	`); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("T")
	idx, _ := db.Index("T_IDX")
	const rows = 300
	err = db.Update(func(tx *Tx) error {
		for i := 0; i < rows; i++ {
			rid, err := tbl.Insert(tx, []byte(fmt.Sprintf("it-%04d", i)))
			if err != nil {
				return err
			}
			if err := idx.Insert(tx, Key(uint32(i)), rid); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	err = db.View(func(tx *Tx) error {
		n := 0
		for rid, row := range tbl.Rows(tx) {
			if rid.LPN == 0 || len(row) == 0 {
				return fmt.Errorf("bad row %v", rid)
			}
			n++
		}
		if n != rows {
			return fmt.Errorf("Rows saw %d", n)
		}
		// Early break stops the scan without error.
		n = 0
		for range tbl.Rows(tx) {
			n++
			if n == 10 {
				break
			}
		}
		if n != 10 || tx.Err() != nil {
			return fmt.Errorf("early break: n=%d err=%v", n, tx.Err())
		}
		// Range and Prefix.
		n = 0
		var last uint32
		for key, rid := range idx.Range(tx, Key(100), Key(200)) {
			if len(key) != 4 || rid.LPN == 0 {
				return fmt.Errorf("bad entry")
			}
			last = uint32(key[0])<<24 | uint32(key[1])<<16 | uint32(key[2])<<8 | uint32(key[3])
			n++
		}
		if n != 100 || last != 199 {
			return fmt.Errorf("Range saw %d entries, last %d", n, last)
		}
		n = 0
		for range idx.Prefix(tx, nil) {
			n++
		}
		if n != rows {
			return fmt.Errorf("Prefix saw %d", n)
		}
		return tx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestUpdateViewClosures covers commit-on-nil, abort-on-error and
// abort-on-panic.
func TestUpdateViewClosures(t *testing.T) {
	db, err := OpenConfig(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Exec("CREATE TABLE T (v VARCHAR(64))"); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("T")

	// Commit path.
	if err := db.Update(func(tx *Tx) error {
		_, err := tbl.Insert(tx, []byte("kept"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	committed := db.Stats().TxnCommitted

	// Error path aborts.
	boom := errors.New("boom")
	if err := db.Update(func(tx *Tx) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Update error = %v", err)
	}
	// Panic path aborts, then re-panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic swallowed")
			}
		}()
		_ = db.Update(func(tx *Tx) error { panic("kaboom") })
	}()
	st := db.Stats()
	if st.TxnCommitted != committed {
		t.Fatalf("aborting paths committed: %d -> %d", committed, st.TxnCommitted)
	}
	if st.TxnAborted < 2 {
		t.Fatalf("aborted = %d, want >= 2", st.TxnAborted)
	}
	// View returns fn's error and never commits.
	if err := db.View(func(tx *Tx) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("View error = %v", err)
	}
	if db.Stats().TxnCommitted != committed {
		t.Fatal("View committed")
	}
}

// TestApplyGCClauseErrors exercises every clause error path of the DDL GC
// options, including values the parser itself cannot produce.
func TestApplyGCClauseErrors(t *testing.T) {
	base := core.GCPolicy{StepPages: 8}
	if _, _, clause, err := applyGCClause(base, "LRU", 0, ""); err == nil || clause != "GC_POLICY" {
		t.Fatalf("bad policy: clause=%q err=%v", clause, err)
	}
	if _, _, clause, err := applyGCClause(base, "", -3, ""); err == nil || clause != "GC_STEP_PAGES" {
		t.Fatalf("negative step: clause=%q err=%v", clause, err)
	}
	if _, _, clause, err := applyGCClause(base, "", 0, "MAYBE"); err == nil || clause != "HOT_COLD" {
		t.Fatalf("bad hot/cold: clause=%q err=%v", clause, err)
	}
	gc, set, clause, err := applyGCClause(base, "COST_BENEFIT", 4, "off")
	if err != nil || !set || clause != "" {
		t.Fatalf("valid clause failed: %v", err)
	}
	if gc.Victim != core.VictimCostBenefit || gc.StepPages != 4 || !gc.DisableHotCold {
		t.Fatalf("clause not applied: %+v", gc)
	}
	if _, set, _, err := applyGCClause(base, "", 0, ""); err != nil || set {
		t.Fatalf("empty clause: set=%v err=%v", set, err)
	}
}

// TestExecDDLError verifies Exec reports *DDLError with the offending
// statement, its position and the failing clause, for both execution and
// syntax failures.
func TestExecDDLError(t *testing.T) {
	db, err := OpenConfig(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// The second statement fails: its position and text must be reported.
	script := `CREATE REGION rgOk (MAX_CHIPS=2);
ALTER REGION nope SET GC_POLICY=GREEDY;`
	err = db.Exec(script)
	var de *DDLError
	if !errors.As(err, &de) {
		t.Fatalf("not a DDLError: %v", err)
	}
	if de.Pos != strings.Index(script, "ALTER") {
		t.Fatalf("Pos = %d, want %d", de.Pos, strings.Index(script, "ALTER"))
	}
	if !strings.HasPrefix(de.Stmt, "ALTER REGION nope") {
		t.Fatalf("Stmt = %q", de.Stmt)
	}
	if de.Clause != "REGION" {
		t.Fatalf("Clause = %q", de.Clause)
	}
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("cause not ErrNotFound: %v", err)
	}

	// A bad clause value is attributed to the clause.
	err = db.Exec("ALTER REGION DEFAULT SET GC_POLICY=LRU")
	if !errors.As(err, &de) || de.Clause != "GC_POLICY" {
		t.Fatalf("clause attribution: %v", err)
	}

	// Syntax errors carry the offending position.
	err = db.Exec("CREATE REGION rgOk2 (MAX_CHIPS=2); CREATE NONSENSE x")
	if !errors.As(err, &de) || de.Clause != "syntax" || de.Pos <= 0 {
		t.Fatalf("syntax error: %+v (%v)", de, err)
	}

	// Name conflicts surface as ErrConflict.
	if err := db.Exec("CREATE REGION rgOk (MAX_CHIPS=1)"); !errors.Is(err, ErrConflict) {
		t.Fatalf("duplicate region: %v", err)
	}

	// A failure NOT caused by the REGION clause must not be pinned on it: a
	// duplicate tablespace name in a statement that also has a valid REGION
	// clause reports no clause.
	if err := db.Exec("CREATE TABLESPACE tsDup (REGION=rgOk)"); err != nil {
		t.Fatal(err)
	}
	err = db.Exec("CREATE TABLESPACE tsDup (REGION=rgOk)")
	if !errors.As(err, &de) || de.Clause != "" || !errors.Is(err, ErrConflict) {
		t.Fatalf("duplicate tablespace misattributed: clause=%q err=%v", de.Clause, err)
	}
	// An actually unknown region is attributed to the clause.
	err = db.Exec("CREATE TABLESPACE tsNope (REGION=missing)")
	if !errors.As(err, &de) || de.Clause != "REGION" || !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown region: clause=%q err=%v", de.Clause, err)
	}
}

// TestDropTablespaceAndIndex covers the new DROP paths: catalog removal,
// page reclamation, in-use protection and the SYSTEM special case.
func TestDropTablespaceAndIndex(t *testing.T) {
	db, err := OpenConfig(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Exec(`
		CREATE TABLESPACE tsTmp;
		CREATE TABLE T (v VARCHAR(64)) TABLESPACE tsTmp;
		CREATE UNIQUE INDEX T_IDX ON T (v) TABLESPACE tsTmp;
	`); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("T")
	idx, _ := db.Index("T_IDX")
	err = db.Update(func(tx *Tx) error {
		for i := 0; i < 400; i++ {
			rid, err := tbl.Insert(tx, bytes.Repeat([]byte{'z'}, 60))
			if err != nil {
				return err
			}
			if err := idx.Insert(tx, Key(uint32(i)), rid); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Checkpoint(db.SimulatedTime()); err != nil {
		t.Fatal(err)
	}

	// In-use tablespace cannot be dropped.
	if err := db.Exec("DROP TABLESPACE tsTmp"); !errors.Is(err, ErrConflict) {
		t.Fatalf("drop in-use tablespace: %v", err)
	}
	// SYSTEM can never be dropped.
	if err := db.Exec("DROP TABLESPACE SYSTEM"); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("drop SYSTEM: %v", err)
	}

	// DROP INDEX reclaims the tree's pages.
	validBefore := db.Stats().Space.ValidPages
	if err := db.Exec("DROP INDEX T_IDX"); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Index("T_IDX"); ok {
		t.Fatal("index still visible")
	}
	if got := db.Stats().Space.ValidPages; got >= validBefore {
		t.Fatalf("DROP INDEX reclaimed nothing: %d -> %d", validBefore, got)
	}
	if err := db.DropIndex("T_IDX"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double drop index: %v", err)
	}

	// After dropping the table the tablespace drops cleanly, in catalog and
	// runtime maps.
	if err := db.Exec("DROP TABLE T; DROP TABLESPACE tsTmp"); err != nil {
		t.Fatal(err)
	}
	for _, ts := range db.Schema().Tablespaces {
		if ts.Name == "tsTmp" {
			t.Fatal("tablespace still in catalog")
		}
	}
	if err := db.CreateTablespace("tsTmp", "", 0); err != nil {
		t.Fatalf("recreate dropped tablespace: %v", err)
	}
	if err := db.DropTablespace("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("drop missing tablespace: %v", err)
	}
	// The index was dropped with its table's trim path once already; its
	// pages must not be double-counted — integrity stays clean.
	if err := db.Admin().VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestErrClosed verifies post-Close operations fail with ErrClosed.
func TestErrClosed(t *testing.T) {
	db, err := OpenConfig(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("CREATE TABLE T (v VARCHAR(8))"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("CREATE TABLE U (v VARCHAR(8))"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Exec after close: %v", err)
	}
	if err := db.Update(func(tx *Tx) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Update after close: %v", err)
	}
	if err := db.View(func(tx *Tx) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("View after close: %v", err)
	}
	if _, err := db.CreateTable("X", "", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("CreateTable after close: %v", err)
	}
	if err := db.DropTable("T"); !errors.Is(err, ErrClosed) {
		t.Fatalf("DropTable after close: %v", err)
	}
	if err := db.Admin().DropRegion("nope"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Admin after close: %v", err)
	}
	if _, err := db.FlushAll(db.SimulatedTime()); !errors.Is(err, ErrClosed) {
		t.Fatalf("FlushAll after close: %v", err)
	}
}

// TestNoInternalPointersInAPI enforces the facade rule: no exported method
// on the public types returns a pointer (or slice of pointers) into
// internal/ packages.  The apidiff CI job guards removals; this guards
// reintroduction of escape hatches.
func TestNoInternalPointersInAPI(t *testing.T) {
	check := func(v interface{}) {
		ty := reflect.TypeOf(v)
		for m := 0; m < ty.NumMethod(); m++ {
			meth := ty.Method(m)
			for o := 0; o < meth.Type.NumOut(); o++ {
				out := meth.Type.Out(o)
				for out.Kind() == reflect.Slice || out.Kind() == reflect.Array {
					out = out.Elem()
				}
				if out.Kind() == reflect.Ptr && strings.Contains(out.Elem().PkgPath(), "/internal/") {
					t.Errorf("%s.%s returns %s: pointer into internal/", ty, meth.Name, meth.Type.Out(o))
				}
			}
		}
	}
	check(&DB{})
	check(&Table{})
	check(&Index{})
	check(&Tx{})
	check(&TimeCursor{})
}
