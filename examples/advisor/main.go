// Region Advisor example: reproduces the procedure behind the paper's
// Figure 2.  A TPC-C workload is run under traditional placement to collect
// per-object I/O statistics; the Region Advisor then divides the database
// objects into regions and distributes the flash dies over them based on
// object sizes and I/O rates.  The derived plan is printed next to the
// paper's own configuration.
package main

import (
	"fmt"
	"log"

	"noftl"
	"noftl/internal/experiments"
)

func main() {
	fmt.Println("Collecting per-object I/O statistics with a TPC-C run...")
	f2, err := experiments.RunFigure2(experiments.ScaleTiny)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("Per-object statistics (top 10 by I/O):")
	for i, o := range f2.Objects {
		if i >= 10 {
			break
		}
		fmt.Printf("  %-14s reads=%-8d writes=%-8d size=%d pages\n", o.Name, o.Reads, o.Writes, o.SizePages)
	}

	fmt.Println()
	fmt.Println(f2.Table())
	fmt.Println(experiments.PaperFigure2Table(f2.Plan.TotalDies))

	fmt.Println("The plan can be applied directly: every group becomes a CREATE REGION /")
	fmt.Println("CREATE TABLESPACE pair, for example:")
	for _, spec := range f2.Plan.RegionSpecs() {
		fmt.Printf("  CREATE REGION %s (MAX_CHIPS=%d);\n", spec.Name, spec.MaxChips)
	}
	var _ noftl.RegionSpec // the specs above have this public API type
}
