// Hot/cold separation example: the same update-heavy workload is run twice —
// once with hot and cold tables separated into their own regions and once
// with traditional placement — and the garbage-collection work of both runs
// is compared.  This is the mechanism behind the paper's headline result.
package main

import (
	"fmt"
	"log"

	"noftl"
	"noftl/internal/flash"
)

const (
	coldRows = 6000
	hotRows  = 400
	rounds   = 100
	rowSize  = 480
)

func runWorkload(separate bool) noftl.Stats {
	cfg := noftl.DefaultConfig()
	// Small device on purpose: the working set plus its update churn reaches
	// high utilization, so the garbage collector has real work to do.
	cfg.Flash.Geometry = flash.Geometry{
		Channels: 4, DiesPerChannel: 2, PlanesPerDie: 1,
		BlocksPerDie: 8, PagesPerBlock: 32, PageSize: 4096,
	}
	cfg.BufferPoolPages = 128
	// Benchmark regime: light checkpoints bound the row-image WAL without
	// writing snapshots through it — crash recovery is not this example's
	// story, and full snapshots would not fit the deliberately small device.
	cfg.DisableSnapshotCheckpoints = true
	if !separate {
		cfg.Space.Mode = noftl.PlacementTraditional
	}
	db, err := noftl.OpenConfig(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := db.Exec(`
		CREATE REGION rgHot (MAX_CHIPS=2);
		CREATE TABLESPACE tsHot (REGION=rgHot);
		CREATE TABLESPACE tsCold;
		CREATE TABLE HOT  (v VARCHAR(480)) TABLESPACE tsHot;
		CREATE TABLE COLD (v VARCHAR(480)) TABLESPACE tsCold;
	`); err != nil {
		log.Fatal(err)
	}
	hot, _ := db.Table("HOT")
	cold, _ := db.Table("COLD")
	row := make([]byte, rowSize)

	// Load the cold data once and remember the RIDs of the hot rows.  The
	// load is chunked with a checkpoint per chunk so the log's flash
	// footprint stays bounded while the data fills the device.
	var hotRIDs []noftl.RID
	for loaded := 0; loaded < coldRows; {
		chunk := coldRows - loaded
		if chunk > 1000 {
			chunk = 1000
		}
		tx := db.Begin()
		for i := 0; i < chunk; i++ {
			if _, err := cold.Insert(tx, row); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
		if _, err := db.Checkpoint(db.SimulatedTime()); err != nil {
			log.Fatal(err)
		}
		loaded += chunk
	}
	tx := db.Begin()
	for i := 0; i < hotRows; i++ {
		rid, err := hot.Insert(tx, row)
		if err != nil {
			log.Fatal(err)
		}
		hotRIDs = append(hotRIDs, rid)
	}
	if _, err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	if _, err := db.FlushAll(db.SimulatedTime()); err != nil {
		log.Fatal(err)
	}
	db.ResetStatistics()

	// Update the hot rows over and over; the cold rows stay untouched.  A
	// checkpoint per round pushes the dirty pages to flash and keeps the
	// write-ahead log bounded.
	for r := 0; r < rounds; r++ {
		tx := db.Begin()
		for _, rid := range hotRIDs {
			row[0] = byte(r)
			if err := hot.Update(tx, rid, row); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
		if _, err := db.Checkpoint(db.SimulatedTime()); err != nil {
			log.Fatal(err)
		}
	}
	return db.Stats()
}

func main() {
	mixed := runWorkload(false)
	separated := runWorkload(true)

	fmt.Println("Hot/cold separation and garbage collection")
	fmt.Println("-------------------------------------------")
	fmt.Printf("%-28s %15s %15s\n", "", "traditional", "regions")
	fmt.Printf("%-28s %15d %15d\n", "host page writes", mixed.Space.HostWrites, separated.Space.HostWrites)
	fmt.Printf("%-28s %15d %15d\n", "GC copybacks", mixed.Space.GCCopybacks, separated.Space.GCCopybacks)
	fmt.Printf("%-28s %15d %15d\n", "GC erases", mixed.Space.GCErases, separated.Space.GCErases)
	fmt.Printf("%-28s %15.2f %15.2f\n", "write amplification", mixed.WriteAmplification(), separated.WriteAmplification())
	fmt.Printf("%-28s %15.2f %15.2f\n", "mean write latency (us)",
		float64(mixed.WriteLatency.Mean)/1e3, float64(separated.WriteLatency.Mean)/1e3)
	fmt.Println()
	fmt.Println("Separating the frequently updated table into its own region keeps")
	fmt.Println("cold pages out of the garbage collector's victim blocks: fewer")
	fmt.Println("copybacks, fewer erases, better flash longevity.")
}
