// TPC-C example: runs the paper's Figure 3 experiment at a configurable
// scale — the same TPC-C workload under traditional and under multi-region
// data placement — and prints the comparison table plus the headline deltas.
package main

import (
	"flag"
	"fmt"
	"log"

	"noftl/internal/experiments"
)

func main() {
	scaleName := flag.String("scale", "small", "experiment scale: tiny, small or paper")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "tiny":
		scale = experiments.ScaleTiny
	case "small":
		scale = experiments.ScaleSmall
	case "paper":
		scale = experiments.ScalePaper
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}

	fmt.Printf("Running TPC-C under both placements at %s scale (this is simulated flash –\n", scale)
	fmt.Println("latencies and throughput are in simulated time)...")
	f3, err := experiments.RunFigure3(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(f3.Table())
	fmt.Println(f3.Headline().String())
}
