// Concurrent-access example: N goroutines update the same database through
// db.Update, contending for an exclusive lock on a shared counter and for
// batch inserts into an append-only events table.
//
// It demonstrates the concurrency contract of the public API:
//
//   - *DB is safe for concurrent use; transactions are cheap to start.
//   - Explicit locks (Tx.Lock) serialize read-modify-write cycles.  A lock
//     wait that times out (the deadlock safety net) surfaces as ErrConflict
//     — the caller's move is to abort and retry.
//   - WAL group commit (WithWALGroupCommit) lets simultaneous committers
//     share one log force; the Stats() snapshot shows how many were grouped.
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"noftl"
)

const (
	workers    = 8
	increments = 25
	events     = 50
)

func main() {
	db, err := noftl.Open(
		noftl.WithLockTimeout(100*time.Millisecond),
		noftl.WithWALGroupCommit(8, 200*time.Microsecond),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := db.Exec(`
		CREATE TABLE COUNTER (v VARCHAR(16));
		CREATE TABLE EVENTS  (v VARCHAR(64));
	`); err != nil {
		log.Fatal(err)
	}
	counter, _ := db.Table("COUNTER")
	eventsTbl, _ := db.Table("EVENTS")

	var rid noftl.RID
	if err := db.Update(func(tx *noftl.Tx) error {
		var err error
		rid, err = counter.Insert(tx, []byte("0"))
		return err
	}); err != nil {
		log.Fatal(err)
	}

	var retries atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()

			// Read-modify-write under an explicit exclusive lock.  On
			// ErrConflict (lost lock wait / deadlock victim) the transaction
			// has already been rolled back — just run it again.
			for i := 0; i < increments; i++ {
				for {
					err := db.Update(func(tx *noftl.Tx) error {
						if err := tx.Lock("counter", noftl.Exclusive); err != nil {
							return err
						}
						row, err := counter.Get(tx, rid)
						if err != nil {
							return err
						}
						var n int
						fmt.Sscanf(string(row), "%d", &n)
						return counter.Update(tx, rid, []byte(fmt.Sprintf("%d", n+1)))
					})
					if err == nil {
						break
					}
					if errors.Is(err, noftl.ErrConflict) {
						retries.Add(1)
						continue
					}
					log.Fatalf("worker %d: %v", w, err)
				}
			}

			// Append-only inserts need no explicit locks: the engine's
			// sharded buffer pool and group-committing WAL serialize the
			// physical work.
			batch := make([][]byte, events)
			for i := range batch {
				batch[i] = []byte(fmt.Sprintf("worker %d event %d", w, i))
			}
			if err := db.Update(func(tx *noftl.Tx) error {
				_, err := eventsTbl.InsertBatch(tx, batch)
				return err
			}); err != nil {
				log.Fatalf("worker %d insert batch: %v", w, err)
			}
		}(w)
	}
	wg.Wait()

	var final string
	if err := db.View(func(tx *noftl.Tx) error {
		row, err := counter.Get(tx, rid)
		final = string(row)
		return err
	}); err != nil {
		log.Fatal(err)
	}

	st := db.Stats()
	fmt.Printf("counter after %d x %d locked increments: %s (want %d; %d conflict retries)\n",
		workers, increments, final, workers*increments, retries.Load())
	fmt.Printf("events inserted: %d\n", eventsTbl.RowCount())
	fmt.Printf("lock waits: %d, lock timeouts: %d\n", st.Txn.LockWaits, st.Txn.LockTimeouts)
	fmt.Printf("WAL flushes: %d, group commits: %d, committers grouped: %d\n",
		st.WAL.Flushes, st.WAL.GroupCommits, st.WAL.GroupedTxns)
}
