// Quickstart: open a database on simulated native flash with functional
// options, run the exact DDL from §2 of the paper to create a region, a
// tablespace and a table, then insert and query rows through the batch-first
// API and print where they physically landed.
package main

import (
	"fmt"
	"log"

	"noftl"
)

func main() {
	// Open starts from DefaultConfig() and applies options in order.
	// Read-ahead is opt-in: scans prefetch the next 4 sequential pages in
	// the same die-striped scheduler batch as the demanded page.
	db, err := noftl.Open(
		noftl.WithBufferPoolPages(2048),
		noftl.WithReadAhead(4),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// The paper's example DDL (§2): existing logical storage structures —
	// tablespaces, extents, tables — are simply coupled to a NoFTL region.
	err = db.Exec(`
		CREATE REGION rgHotTbl (MAX_CHIPS=4, MAX_CHANNELS=4, MAX_SIZE=1280M);
		CREATE TABLESPACE tsHotTbl (REGION=rgHotTbl, EXTENT SIZE 128K);
		CREATE TABLE T (t_id NUMBER(3)) TABLESPACE tsHotTbl;
		CREATE UNIQUE INDEX T_IDX ON T (t_id) TABLESPACE tsHotTbl;
	`)
	if err != nil {
		log.Fatal(err)
	}

	tbl, _ := db.Table("T")
	idx, _ := db.Index("T_IDX")

	// Insert 100 rows in one batch: the full pages go to flash as a single
	// die-striped scheduler submission instead of page-at-a-time.
	err = db.Update(func(tx *noftl.Tx) error {
		rows := make([][]byte, 100)
		for i := range rows {
			rows[i] = []byte(fmt.Sprintf("row %03d on native flash", i+1))
		}
		rids, err := tbl.InsertBatch(tx, rows)
		if err != nil {
			return err
		}
		for i, rid := range rids {
			if err := idx.Insert(tx, noftl.Key(uint32(i+1)), rid); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Point lookup through the index, and a range scan with the iterator
	// API, inside a read-only closure.
	err = db.View(func(tx *noftl.Tx) error {
		rid, found, err := idx.Lookup(tx, noftl.Key(42))
		if err != nil || !found {
			return fmt.Errorf("lookup failed: %v", err)
		}
		row, err := tbl.Get(tx, rid)
		if err != nil {
			return err
		}
		fmt.Printf("t_id=42 -> %q\n", row)

		n := 0
		for range idx.Range(tx, noftl.Key(10), noftl.Key(20)) {
			n++
		}
		fmt.Printf("keys in [10,20): %d\n", n)
		return tx.Err()
	})
	if err != nil {
		log.Fatal(err)
	}

	// Flush and show which region the pages ended up in.
	if _, err := db.FlushAll(db.SimulatedTime()); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	stats := db.Stats()
	for _, rs := range stats.Space.Regions {
		fmt.Printf("region %-10s dies=%v  host writes=%d  valid pages=%d\n",
			rs.Name, rs.Dies, rs.HostWrites, rs.ValidPages)
	}
	fmt.Println()
	fmt.Print(stats.String())
}
