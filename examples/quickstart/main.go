// Quickstart: open a database on simulated native flash, run the exact DDL
// from §2 of the paper to create a region, a tablespace and a table, then
// insert and query a few rows and print where they physically landed.
package main

import (
	"fmt"
	"log"

	"noftl"
)

func main() {
	db, err := noftl.Open(noftl.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// The paper's example DDL (§2): existing logical storage structures —
	// tablespaces, extents, tables — are simply coupled to a NoFTL region.
	err = db.Exec(`
		CREATE REGION rgHotTbl (MAX_CHIPS=4, MAX_CHANNELS=4, MAX_SIZE=1280M);
		CREATE TABLESPACE tsHotTbl (REGION=rgHotTbl, EXTENT SIZE 128K);
		CREATE TABLE T (t_id NUMBER(3)) TABLESPACE tsHotTbl;
		CREATE UNIQUE INDEX T_IDX ON T (t_id) TABLESPACE tsHotTbl;
	`)
	if err != nil {
		log.Fatal(err)
	}

	tbl, _ := db.Table("T")
	idx, _ := db.Index("T_IDX")

	// Insert a few rows transactionally; the index maps t_id to the row.
	tx := db.Begin()
	for i := 1; i <= 100; i++ {
		rid, err := tbl.Insert(tx, []byte(fmt.Sprintf("row %03d on native flash", i)))
		if err != nil {
			log.Fatal(err)
		}
		if err := idx.Insert(tx, noftl.Key(uint32(i)), rid); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// Point lookup through the index.
	tx = db.Begin()
	rid, found, err := idx.Lookup(tx, noftl.Key(42))
	if err != nil || !found {
		log.Fatalf("lookup failed: %v", err)
	}
	row, err := tbl.Get(tx, rid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t_id=42 -> %q\n", row)
	if _, err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// Flush and show which region the pages ended up in.
	if _, err := db.FlushAll(db.SimulatedTime()); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, rs := range db.SpaceManager().Stats().Regions {
		fmt.Printf("region %-10s dies=%v  host writes=%d  valid pages=%d\n",
			rs.Name, rs.Dies, rs.HostWrites, rs.ValidPages)
	}
	fmt.Println()
	fmt.Print(db.Stats().String())
}
