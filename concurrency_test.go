package noftl

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentBatchDML drives InsertBatch, GetBatch and the Rows iterator
// from many goroutines against one database.  It is primarily a -race test
// of the concurrency spine (sharded buffer pool, sharded lock table,
// lock-free scheduler dispatch, WAL group commit); the assertions check that
// nothing inserted is lost or corrupted along the way.
func TestConcurrentBatchDML(t *testing.T) {
	db, err := Open(
		WithBufferPoolPages(256),
		WithWALGroupCommit(8, 200*time.Microsecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Exec("CREATE TABLE C (v VARCHAR(64))"); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("C")

	const (
		writers  = 8
		rounds   = 6
		perRound = 40
	)
	var (
		mu       sync.Mutex
		rids     []RID
		rows     [][]byte
		writerWG sync.WaitGroup
		done     atomic.Bool
	)
	row := func(w, r, i int) []byte {
		return []byte(fmt.Sprintf("w%02d-r%02d-i%03d%s", w, r, i, bytes.Repeat([]byte{'x'}, 32)))
	}

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for r := 0; r < rounds; r++ {
				batch := make([][]byte, perRound)
				for i := range batch {
					batch[i] = row(w, r, i)
				}
				var got []RID
				if err := db.Update(func(tx *Tx) error {
					var err error
					got, err = tbl.InsertBatch(tx, batch)
					return err
				}); err != nil {
					t.Errorf("writer %d round %d: %v", w, r, err)
					return
				}
				mu.Lock()
				rids = append(rids, got...)
				rows = append(rows, batch...)
				mu.Unlock()
			}
		}(w)
	}

	// Readers run GetBatch over everything committed so far and iterate the
	// table while the writers are still inserting.  The table is
	// append-only, so every already-published rid must stay readable and
	// every row seen by the iterator must be well-formed.
	var readerWG sync.WaitGroup
	for g := 0; g < 4; g++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for !done.Load() {
				mu.Lock()
				snapshot := append([]RID(nil), rids...)
				mu.Unlock()
				if err := db.View(func(tx *Tx) error {
					if len(snapshot) > 0 {
						got, err := tbl.GetBatch(tx, snapshot)
						if err != nil {
							return err
						}
						for i, r := range got {
							if len(r) == 0 || r[0] != 'w' {
								return fmt.Errorf("rid %v: malformed row %q", snapshot[i], r)
							}
						}
					}
					seen := 0
					for _, r := range tbl.Rows(tx) {
						if len(r) == 0 || r[0] != 'w' {
							return fmt.Errorf("iterator: malformed row %q", r)
						}
						seen++
					}
					if seen < len(snapshot) {
						return fmt.Errorf("iterator saw %d rows, %d already committed", seen, len(snapshot))
					}
					return nil
				}); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}()
	}

	writerWG.Wait()
	done.Store(true)
	readerWG.Wait()
	if t.Failed() {
		return
	}

	const total = writers * rounds * perRound
	if got := tbl.RowCount(); got != total {
		t.Fatalf("RowCount = %d, want %d", got, total)
	}
	if err := db.View(func(tx *Tx) error {
		got, err := tbl.GetBatch(tx, rids)
		if err != nil {
			return err
		}
		for i := range got {
			if !bytes.Equal(got[i], rows[i]) {
				return fmt.Errorf("rid %v: got %q, want %q", rids[i], got[i], rows[i])
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentUpdateLockConflict exercises the documented retry idiom:
// goroutines contending for the same exclusive lock either serialize or lose
// the wait as deadlock victims surfacing as ErrConflict, and retrying always
// converges.
func TestConcurrentUpdateLockConflict(t *testing.T) {
	db, err := Open(WithLockTimeout(50 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Exec("CREATE TABLE K (v VARCHAR(16))"); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("K")
	var rid RID
	if err := db.Update(func(tx *Tx) error {
		var err error
		rid, err = tbl.Insert(tx, []byte("0"))
		return err
	}); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const increments = 20
	var conflicts atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < increments; i++ {
				for {
					err := db.Update(func(tx *Tx) error {
						if err := tx.Lock("K/counter", Exclusive); err != nil {
							return err
						}
						row, err := tbl.Get(tx, rid)
						if err != nil {
							return err
						}
						var n int
						fmt.Sscanf(string(row), "%d", &n)
						return tbl.Update(tx, rid, []byte(fmt.Sprintf("%d", n+1)))
					})
					if err == nil {
						break
					}
					if !errors.Is(err, ErrConflict) {
						t.Errorf("unexpected error: %v", err)
						return
					}
					conflicts.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	if err := db.View(func(tx *Tx) error {
		row, err := tbl.Get(tx, rid)
		if err != nil {
			return err
		}
		var n int
		fmt.Sscanf(string(row), "%d", &n)
		if n != workers*increments {
			return fmt.Errorf("counter = %d, want %d (lost updates; %d conflicts retried)",
				n, workers*increments, conflicts.Load())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
