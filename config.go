// Package noftl is the public API of the reproduction of "Revisiting DBMS
// Space Management for Native Flash" (Hardock et al., EDBT 2016).
//
// It exposes a small storage engine running directly on simulated native
// flash under NoFTL space management with Regions.  Databases are opened
// with functional options over DefaultConfig:
//
//	db, _ := noftl.Open(noftl.WithBufferPoolPages(4096), noftl.WithReadAhead(8))
//	defer db.Close()
//	_ = db.Exec(`CREATE REGION rgHot (MAX_CHIPS=4, MAX_CHANNELS=4);
//	             CREATE TABLESPACE tsHot (REGION=rgHot, EXTENT SIZE 128K);
//	             CREATE TABLE T (t_id NUMBER(3)) TABLESPACE tsHot;`)
//
// Data access is batch-first and transactional: db.Update and db.View run a
// closure inside a transaction; Table.InsertBatch, Table.GetBatch and
// Index.LookupBatch ride the asynchronous I/O scheduler's die-striped batch
// path, so a batch of pages costs roughly one page latency per die instead
// of one per page; Table.Rows, Index.Range and Index.Prefix return Go 1.23
// range-over-func iterators.
//
//	_ = db.Update(func(tx *noftl.Tx) error {
//	    _, err := tbl.InsertBatch(tx, rows) // one scheduler submission
//	    return err
//	})
//	_ = db.View(func(tx *noftl.Tx) error {
//	    for rid, row := range tbl.Rows(tx) {
//	        _ = rid
//	        _ = row
//	    }
//	    return tx.Err()
//	})
//
// Errors are classifiable with errors.Is (ErrNotFound, ErrClosed,
// ErrUnsupported, ErrConflict, ErrRegionFull); DDL failures are *DDLError
// values carrying the offending statement, position and clause.
// Introspection is snapshot-only: Stats() captures every layer's counters
// (buffer pool, I/O scheduler, per-region space/GC, device, WAL,
// per-object), Schema() snapshots the catalog, Geometry() describes the
// device, and Admin() is the narrow facade for region/GC/wear operations.
//
// Every physical page carries the placement hint of its tablespace's
// region, so the DBMS — not a flash translation layer — controls physical
// data placement, garbage collection and wear leveling.  See DESIGN.md for
// the full system inventory and EXPERIMENTS.md for the reproduced results.
package noftl

import (
	"io"
	"time"

	"noftl/internal/core"
	"noftl/internal/flash"
)

// Config configures a Database instance.
type Config struct {
	// Flash configures the simulated native flash device (geometry, NAND
	// timing, endurance).
	Flash flash.Config
	// Space configures the NoFTL space manager: placement mode,
	// over-provisioning, the garbage-collection watermark pair
	// (GCLowWaterBlocks backstop / GCHighWaterBlocks background band), the
	// default per-region GC policy (victim selection, background step size,
	// hot/cold separation — overridable per region via CREATE/ALTER REGION),
	// DisableBackgroundGC, and wear leveling.
	Space core.Options
	// BufferPoolPages is the number of page frames in the buffer pool.
	BufferPoolPages int
	// BufferPoolShards overrides the number of hash shards the buffer pool's
	// frame table is split into.  Zero (the default) sizes the shard count
	// automatically from BufferPoolPages (one shard per 64 frames, capped at
	// 16, at least one); small pools stay single-sharded, so eviction
	// behaves exactly like an unsharded CLOCK.  See WithBufferPoolShards.
	BufferPoolShards int
	// WAL enables write-ahead logging (commit durability and the log I/O
	// stream the placement experiments include).
	WAL bool
	// WALCommitBatch and WALCommitDelay tune the WAL's group commit: a
	// commit that finds a log force in flight always piggybacks on it, and
	// when WALCommitBatch > 1 the force leader additionally lingers up to
	// WALCommitDelay (wall clock) for that many committers to queue before
	// forcing the log once for all of them.  Zero values keep piggybacking
	// only (no linger).  See WithWALGroupCommit.
	WALCommitBatch int
	WALCommitDelay time.Duration
	// LockTimeout is the lock-wait timeout used as a deadlock safety net.
	LockTimeout time.Duration
	// CPUPerOp is the CPU time charged to a transaction for each row or
	// index operation, so response times are not purely I/O.
	CPUPerOp time.Duration
	// ExtentPages is the default tablespace extent size in pages when a DDL
	// statement does not specify EXTENT SIZE.
	ExtentPages int
	// ReadAheadPages is the number of sequentially-next logical pages the
	// buffer pool prefetches through the asynchronous I/O scheduler on a
	// demand miss.  When enabled, the prefetched pages ride in the same
	// die-striped batch as the demanded page, so a sequential scan pays one
	// page latency for several pages.
	//
	// Read-ahead is OFF by default (DefaultConfig leaves this zero): point
	// workloads would pollute the pool with pages they never touch.
	// Scan-heavy workloads opt in per database, typically with 4-8 pages:
	// noftl.Open(noftl.WithReadAhead(8)).
	ReadAheadPages int
	// DisableGroupWriteBack turns off batched write-back: FlushAll and the
	// background flushers then write dirty pages one at a time (the
	// pre-scheduler behaviour) instead of as one die-striped batch.
	DisableGroupWriteBack bool
	// TraceWriter enables event tracing: flash commands, host I/O, GC steps,
	// wear moves, buffer-pool and WAL events are recorded into an in-memory
	// ring buffer and dumped to this writer as JSONL on Close (the stream
	// `noftl-trace` consumes).  Nil (the default) disables tracing entirely —
	// the hook sites then cost one nil compare each.  See also
	// Admin().TraceDump for mid-run snapshots.
	TraceWriter io.Writer
	// TraceBufferEvents is the capacity of the trace ring buffer in events
	// (oldest events are overwritten once it is full).  Zero means the
	// default of 65536 events.  Setting it without TraceWriter also enables
	// tracing; the events are then only reachable through Admin().TraceDump.
	TraceBufferEvents int
	// CheckpointEvery, when positive, takes a checkpoint whenever that much
	// simulated time has passed since the last one (checked after each
	// commit).  A checkpoint appends a full logical snapshot of the database
	// to the WAL and truncates the log below it, bounding how much a crash
	// recovery has to replay.  Zero disables time-triggered checkpoints;
	// DDL statements always checkpoint (schema changes are only durable
	// through the snapshot).  See WithCheckpointEvery.
	CheckpointEvery time.Duration
	// CheckpointEveryBytes, when positive, takes a checkpoint whenever that
	// many WAL bytes have been appended since the last one.  Zero disables
	// byte-triggered checkpoints.
	CheckpointEveryBytes int64
	// DisableSnapshotCheckpoints switches checkpoints to the light form:
	// flush dirty pages and truncate the whole WAL, without appending a
	// logical snapshot.  Light checkpoints keep the WAL footprint bounded at
	// near-zero cost, but give up crash recovery — Reopen refuses a log whose
	// last checkpoint carries no snapshot.  This is the classic reduced-
	// durability benchmark regime; the paper-reproduction experiments run
	// with it so checkpoint I/O does not distort the measured placement
	// effects.  The default (false) takes full snapshot checkpoints.
	DisableSnapshotCheckpoints bool
	// FaultPlan arms deterministic fault injection on the flash device:
	// crash at a virtual time or after an operation count, torn tail-page
	// programs, transient program failures and worn-block erase failures.
	// The zero value injects nothing.  See WithFaultPlan and Reopen.
	FaultPlan FaultPlan
	// MetricsAddr, when non-empty, starts an HTTP listener on the address
	// serving Prometheus text metrics on /metrics, a liveness probe on
	// /healthz and the standard pprof handlers under /debug/pprof/.  Use
	// "127.0.0.1:0" to pick a free port; DB.MetricsAddr() reports the bound
	// address.  Empty (the default) serves nothing.
	MetricsAddr string
}

// DefaultConfig returns a small configuration suitable for tests, examples
// and laptop-scale experiments: an 8-die device with 256 MiB of flash, a
// 2k-page buffer pool, WAL on, region-aware placement.
func DefaultConfig() Config {
	return Config{
		Flash:           flash.DefaultConfig(),
		Space:           core.DefaultOptions(),
		BufferPoolPages: 2048,
		WAL:             true,
		LockTimeout:     2 * time.Second,
		CPUPerOp:        5 * time.Microsecond,
		ExtentPages:     32,
		ReadAheadPages:  0, // read-ahead is opt-in: see the field's doc and WithReadAhead
	}
}

// PaperConfig returns a configuration resembling the paper's evaluation
// platform: 64 dies behind 8 channels.  blocksPerDie scales the device (and
// therefore database) size.
func PaperConfig(blocksPerDie int) Config {
	cfg := DefaultConfig()
	cfg.Flash = flash.PaperConfig(blocksPerDie)
	return cfg
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.BufferPoolPages <= 0 {
		c.BufferPoolPages = 2048
	}
	if c.LockTimeout <= 0 {
		c.LockTimeout = 2 * time.Second
	}
	if c.CPUPerOp < 0 {
		c.CPUPerOp = 0
	}
	if c.ExtentPages <= 0 {
		c.ExtentPages = 32
	}
	if c.ReadAheadPages < 0 {
		c.ReadAheadPages = 0
	}
	return c
}

// Placement re-exports the placement modes for callers configuring the
// space manager.
const (
	// PlacementRegions is region-aware (intelligent) data placement.
	PlacementRegions = core.PlacementRegions
	// PlacementTraditional ignores regions: uniform placement over all dies.
	PlacementTraditional = core.PlacementTraditional
)
