package noftl

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"noftl/internal/buffer"
	"noftl/internal/catalog"
	"noftl/internal/core"
	"noftl/internal/ddl"
	"noftl/internal/flash"
	"noftl/internal/iosched"
	"noftl/internal/metrics"
	"noftl/internal/sim"
	"noftl/internal/storage"
	"noftl/internal/txn"
	"noftl/internal/wal"
)

// Errors returned by the database facade.
var (
	// ErrNotFound reports a lookup of an unknown table, index, tablespace or
	// region.
	ErrNotFound = errors.New("noftl: not found")
	// ErrClosed reports use of a closed database.
	ErrClosed = errors.New("noftl: database closed")
)

// DB is a database instance running on simulated native flash under NoFTL
// space management.
type DB struct {
	cfg      Config
	dev      *flash.Device
	space    *core.Manager
	pool     *buffer.Pool
	cat      *catalog.Catalog
	log      *wal.Log
	txns     *txn.Manager
	clock    *sim.Clock
	objStats *metrics.ObjectStats

	mu          sync.RWMutex
	tablespaces map[string]*storage.Tablespace
	tables      map[string]*Table
	indexes     map[string]*Index
	objectNames map[uint32]string
	closed      bool
}

// Open creates a database over a fresh simulated flash device.
func Open(cfg Config) (*DB, error) {
	cfg = cfg.withDefaults()
	dev, err := flash.NewDevice(cfg.Flash)
	if err != nil {
		return nil, err
	}
	return openOn(cfg, dev)
}

// OpenOnDevice creates a database over an existing device (used by tools
// that want to share a device between components).
func OpenOnDevice(cfg Config, dev *flash.Device) (*DB, error) {
	cfg = cfg.withDefaults()
	return openOn(cfg, dev)
}

func openOn(cfg Config, dev *flash.Device) (*DB, error) {
	db := &DB{
		cfg:         cfg,
		dev:         dev,
		space:       core.NewManager(dev, cfg.Space),
		cat:         catalog.New(),
		clock:       sim.NewClock(),
		objStats:    metrics.NewObjectStats(),
		tablespaces: make(map[string]*storage.Tablespace),
		tables:      make(map[string]*Table),
		indexes:     make(map[string]*Index),
		objectNames: make(map[uint32]string),
	}
	db.pool = buffer.New(db.space, cfg.BufferPoolPages, dev.Geometry().PageSize, db)
	db.pool.Configure(buffer.Options{
		ReadAhead:      cfg.ReadAheadPages,
		GroupWriteBack: !cfg.DisableGroupWriteBack,
	})

	// The default tablespace lives in the default region; the catalog and
	// WAL are placed there unless the DBA says otherwise.
	defTS := storage.NewTablespace("SYSTEM", core.DefaultRegionID, cfg.ExtentPages, db.space)
	db.tablespaces["SYSTEM"] = defTS
	if err := db.cat.AddTablespace(catalog.Tablespace{Name: "SYSTEM", Region: core.DefaultRegionName, ExtentPages: cfg.ExtentPages}); err != nil {
		return nil, err
	}

	if cfg.WAL {
		walObj := db.cat.NextObjectID()
		db.objectNames[walObj] = "WAL"
		db.objStats.Register("WAL", "log", "SYSTEM")
		db.log = wal.New(db.space, defTS.Hint(walObj, flash.FlagLog), dev.Geometry().PageSize)
	}
	db.txns = txn.NewManager(txn.NewLockManager(cfg.LockTimeout), db.log, db.clock)
	return db, nil
}

// Close flushes all dirty pages and marks the database closed.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	db.mu.Unlock()
	// Flush outside db.mu: the flush path reports per-object statistics,
	// which takes a read lock on db.mu.
	if _, err := db.pool.FlushAll(db.clock.Now()); err != nil {
		return err
	}
	if db.log != nil {
		if _, err := db.log.Flush(db.clock.Now()); err != nil {
			return err
		}
	}
	return nil
}

// RecordPhysRead implements buffer.Recorder: physical page reads are charged
// to the owning object's statistics (consumed by the Region Advisor).
func (db *DB) RecordPhysRead(objectID uint32, pages int64) {
	if name, ok := db.objectName(objectID); ok {
		db.objStats.RecordRead(name, pages)
	}
}

// RecordPhysWrite implements buffer.Recorder.
func (db *DB) RecordPhysWrite(objectID uint32, pages int64) {
	if name, ok := db.objectName(objectID); ok {
		db.objStats.RecordWrite(name, pages)
	}
}

func (db *DB) objectName(id uint32) (string, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n, ok := db.objectNames[id]
	return n, ok
}

// Device returns the underlying flash device.
func (db *DB) Device() *flash.Device { return db.dev }

// SpaceManager returns the NoFTL space manager.
func (db *DB) SpaceManager() *core.Manager { return db.space }

// Scheduler returns the asynchronous I/O scheduler between the space manager
// and the flash device.
func (db *DB) Scheduler() *iosched.Scheduler { return db.space.Scheduler() }

// SchedulerMetrics returns the scheduler's metric set: queue depth, batch
// sizes and per-priority request counts and latencies.
func (db *DB) SchedulerMetrics() *metrics.Set { return db.space.Scheduler().Metrics() }

// BufferPool returns the buffer pool.
func (db *DB) BufferPool() *buffer.Pool { return db.pool }

// Catalog returns the schema catalog.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// WAL returns the write-ahead log (nil when disabled).
func (db *DB) WAL() *wal.Log { return db.log }

// Clock returns the global simulated clock.
func (db *DB) Clock() *sim.Clock { return db.clock }

// SimulatedTime returns the highest simulated time observed so far.
func (db *DB) SimulatedTime() sim.Time { return db.clock.Now() }

// ObjectStats returns the per-object I/O statistics collected so far, sorted
// by I/O rate.
func (db *DB) ObjectStats() []metrics.ObjectCounters {
	// Refresh object sizes from the physical structures before reporting.
	db.mu.RLock()
	for _, t := range db.tables {
		db.objStats.SetSize(t.Name(), t.heap.PageCount())
	}
	for _, i := range db.indexes {
		db.objStats.SetSize(i.Name(), i.tree.Pages())
	}
	db.mu.RUnlock()
	if db.log != nil {
		db.objStats.SetSize("WAL", int64(db.log.PageCount()))
	}
	return db.objStats.All()
}

// Advise runs the Region Advisor over the collected per-object statistics
// and returns a multi-region placement plan (the paper's Figure 2
// procedure).
func (db *DB) Advise(opts core.AdvisorOptions) core.PlacementPlan {
	return core.Advise(db.ObjectStats(), db.dev.Geometry().Dies(), opts)
}

// ResetStatistics zeroes every I/O, GC and transaction counter (device,
// space manager, buffer pool, per-object) without touching data.  Benchmarks
// call it at the end of the warm-up phase.
func (db *DB) ResetStatistics() {
	db.space.ResetCounters()
	db.pool.ResetCounters()
	db.objStats.Reset()
	db.clock.Reset()
}

// ---- DDL ----

// Exec parses and executes one or more DDL statements.
func (db *DB) Exec(sql string) error {
	stmts, err := ddl.Parse(sql)
	if err != nil {
		return err
	}
	for _, st := range stmts {
		if err := db.execStatement(st); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) execStatement(st ddl.Statement) error {
	switch s := st.(type) {
	case ddl.CreateRegion:
		spec := core.RegionSpec{
			Name:         s.Name,
			MaxChips:     s.MaxChips,
			MaxChannels:  s.MaxChannels,
			MaxSizeBytes: s.MaxSizeBytes,
		}
		gc, set, err := applyGCClause(db.space.Options().GC, s.GCPolicy, s.GCStepPages, s.HotCold)
		if err != nil {
			return err
		}
		if set {
			spec.GC = &gc
		}
		_, err = db.CreateRegion(spec)
		return err
	case ddl.AlterRegion:
		return db.alterRegionGC(s)
	case ddl.CreateTablespace:
		extentPages := db.cfg.ExtentPages
		if s.ExtentSizeBytes > 0 {
			extentPages = int(s.ExtentSizeBytes) / db.dev.Geometry().PageSize
			if extentPages < 1 {
				extentPages = 1
			}
		}
		return db.CreateTablespace(s.Name, s.Region, extentPages)
	case ddl.CreateTable:
		cols := make([]catalog.Column, len(s.Columns))
		for i, c := range s.Columns {
			cols[i] = catalog.Column{Name: c.Name, Type: c.Type}
		}
		_, err := db.CreateTable(s.Name, s.Tablespace, cols)
		return err
	case ddl.CreateIndex:
		_, err := db.CreateIndex(s.Name, s.Table, s.Columns, s.Unique, s.Tablespace)
		return err
	case ddl.DropStatement:
		return db.execDrop(s)
	default:
		return fmt.Errorf("noftl: unsupported statement %T", st)
	}
}

func (db *DB) execDrop(s ddl.DropStatement) error {
	switch s.Kind {
	case "REGION":
		if err := db.cat.DropRegion(s.Name); err != nil {
			return err
		}
		return db.space.DropRegion(s.Name)
	case "TABLE":
		return db.DropTable(s.Name)
	case "TABLESPACE":
		return fmt.Errorf("noftl: DROP TABLESPACE is not supported (drop its tables first and recreate the database)")
	case "INDEX":
		return fmt.Errorf("noftl: DROP INDEX is not supported")
	default:
		return fmt.Errorf("noftl: cannot drop %q", s.Kind)
	}
}

// applyGCClause folds a DDL GC clause (CREATE/ALTER REGION options) into a
// base policy, reporting whether any option was actually set.
func applyGCClause(base core.GCPolicy, policy string, stepPages int, hotCold string) (core.GCPolicy, bool, error) {
	set := false
	if policy != "" {
		v, err := core.ParseVictimPolicy(policy)
		if err != nil {
			return base, false, err
		}
		base.Victim = v
		set = true
	}
	if stepPages > 0 {
		base.StepPages = stepPages
		set = true
	}
	switch strings.ToUpper(hotCold) {
	case "":
	case "ON":
		base.DisableHotCold = false
		set = true
	case "OFF":
		base.DisableHotCold = true
		set = true
	default:
		return base, false, fmt.Errorf("noftl: HOT_COLD must be ON or OFF, got %q", hotCold)
	}
	return base, set, nil
}

// alterRegionGC executes ALTER REGION … SET: the space manager switches the
// live policy and the catalog records it.
func (db *DB) alterRegionGC(s ddl.AlterRegion) error {
	cur, ok := db.space.GCPolicyOf(s.Name)
	if !ok {
		return fmt.Errorf("%w: region %q", ErrNotFound, s.Name)
	}
	gc, set, err := applyGCClause(cur, s.GCPolicy, s.GCStepPages, s.HotCold)
	if err != nil {
		return err
	}
	if !set {
		return nil
	}
	if err := db.space.SetGCPolicy(s.Name, gc); err != nil {
		return err
	}
	if s.Name == core.DefaultRegionName {
		// The default region has no catalog entry; the live policy is all
		// there is to update.
		return nil
	}
	return db.cat.UpdateRegionGC(s.Name, gc)
}

// CreateRegion creates a NoFTL region (programmatic form of CREATE REGION).
func (db *DB) CreateRegion(spec core.RegionSpec) (*core.Region, error) {
	r, err := db.space.CreateRegion(spec)
	if err != nil {
		return nil, err
	}
	gc := db.space.Options().GC
	if spec.GC != nil {
		gc = *spec.GC
	}
	err = db.cat.AddRegion(catalog.Region{
		Name:         spec.Name,
		ID:           r.ID(),
		MaxChips:     spec.MaxChips,
		MaxChannels:  spec.MaxChannels,
		MaxSizeBytes: spec.MaxSizeBytes,
		GC:           gc,
	})
	if err != nil {
		_ = db.space.DropRegion(spec.Name)
		return nil, err
	}
	return r, nil
}

// CreateTablespace creates a tablespace bound to a region ("" or "DEFAULT"
// means the default region).
func (db *DB) CreateTablespace(name, region string, extentPages int) error {
	regionID := core.DefaultRegionID
	regionName := core.DefaultRegionName
	if region != "" && region != core.DefaultRegionName {
		r, ok := db.space.Region(region)
		if !ok {
			return fmt.Errorf("%w: region %q", ErrNotFound, region)
		}
		regionID = r.ID()
		regionName = region
	}
	if extentPages <= 0 {
		extentPages = db.cfg.ExtentPages
	}
	if err := db.cat.AddTablespace(catalog.Tablespace{Name: name, Region: regionName, ExtentPages: extentPages}); err != nil {
		return err
	}
	db.mu.Lock()
	db.tablespaces[name] = storage.NewTablespace(name, regionID, extentPages, db.space)
	db.mu.Unlock()
	return nil
}

// tablespace returns the runtime tablespace object.
func (db *DB) tablespace(name string) (*storage.Tablespace, error) {
	if name == "" {
		name = "SYSTEM"
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	ts, ok := db.tablespaces[name]
	if !ok {
		return nil, fmt.Errorf("%w: tablespace %q", ErrNotFound, name)
	}
	return ts, nil
}

// CreateTable creates a table in the given tablespace ("" = SYSTEM).
func (db *DB) CreateTable(name, tablespace string, columns []catalog.Column) (*Table, error) {
	ts, err := db.tablespace(tablespace)
	if err != nil {
		return nil, err
	}
	objID := db.cat.NextObjectID()
	if err := db.cat.AddTable(catalog.Table{Name: name, ObjectID: objID, Tablespace: ts.Name(), Columns: columns}); err != nil {
		return nil, err
	}
	heap := storage.NewHeapFile(name, objID, ts, db.pool)
	t := &Table{db: db, heap: heap, name: name, objectID: objID}
	db.mu.Lock()
	db.tables[name] = t
	db.objectNames[objID] = name
	db.mu.Unlock()
	db.objStats.Register(name, "table", ts.Name())
	return t, nil
}

// DropTable removes a table, its indexes, and trims their pages on flash.
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	t, ok := db.tables[name]
	if !ok {
		db.mu.Unlock()
		return fmt.Errorf("%w: table %q", ErrNotFound, name)
	}
	delete(db.tables, name)
	var droppedIndexes []*Index
	for iname, idx := range db.indexes {
		if idx.meta.Table == name {
			droppedIndexes = append(droppedIndexes, idx)
			delete(db.indexes, iname)
		}
	}
	db.mu.Unlock()
	if err := db.cat.DropTable(name); err != nil {
		return err
	}
	// Trim the heap's pages so the space manager can reclaim them.
	for _, lpn := range t.heap.Pages() {
		db.pool.Drop(lpn)
		_ = db.space.TrimPage(lpn) // never-flushed pages are simply unmapped
	}
	_ = droppedIndexes // index pages are trimmed lazily by GC reuse
	return nil
}

// CreateIndex creates a B+-tree index on a table in the given tablespace
// ("" = the table's tablespace).
func (db *DB) CreateIndex(name, table string, columns []string, unique bool, tablespace string) (*Index, error) {
	db.mu.RLock()
	_, ok := db.tables[table]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: table %q", ErrNotFound, table)
	}
	if tablespace == "" {
		tmeta, _ := db.cat.Table(table)
		tablespace = tmeta.Tablespace
	}
	ts, err := db.tablespace(tablespace)
	if err != nil {
		return nil, err
	}
	objID := db.cat.NextObjectID()
	meta := catalog.Index{Name: name, ObjectID: objID, Table: table, Columns: columns, Unique: unique, Tablespace: ts.Name()}
	if err := db.cat.AddIndex(meta); err != nil {
		return nil, err
	}
	tree, _, err := btreeNew(db.clock.Now(), name, objID, ts, db.pool)
	if err != nil {
		return nil, err
	}
	idx := &Index{db: db, tree: tree, meta: meta}
	db.mu.Lock()
	db.indexes[name] = idx
	db.objectNames[objID] = name
	db.mu.Unlock()
	db.objStats.Register(name, "index", ts.Name())
	return idx, nil
}

// Table returns a handle to an existing table.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// Index returns a handle to an existing index.
func (db *DB) Index(name string) (*Index, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	i, ok := db.indexes[name]
	return i, ok
}

// Tables returns the names of all tables.
func (db *DB) Tables() []string {
	var out []string
	for _, t := range db.cat.Tables() {
		out = append(out, t.Name)
	}
	return out
}

// Begin starts a transaction whose virtual clock starts at the global
// simulated time.
func (db *DB) Begin() *Tx {
	return &Tx{db: db, inner: db.txns.Begin(db.clock.Now())}
}

// BeginAt starts a transaction at an explicit virtual time (used by the
// closed-loop benchmark terminals, which carry their own time cursors).
func (db *DB) BeginAt(now sim.Time) *Tx {
	return &Tx{db: db, inner: db.txns.Begin(now)}
}

// FlushAll writes every dirty buffered page to flash (checkpoint) and
// returns the advanced virtual time.
func (db *DB) FlushAll(now sim.Time) (sim.Time, error) {
	return db.pool.FlushAll(now)
}

// Checkpoint flushes all dirty pages, truncates the WAL up to the current
// LSN and returns the advanced time.
func (db *DB) Checkpoint(now sim.Time) (sim.Time, error) {
	done, err := db.pool.FlushAll(now)
	if err != nil {
		return done, err
	}
	if db.log != nil {
		if _, err := db.log.Append(wal.RecCheckpoint, 0, 0, nil); err != nil {
			return done, err
		}
		done, err = db.log.Flush(done)
		if err != nil {
			return done, err
		}
		db.log.Truncate(db.log.FlushedLSN())
	}
	return done, nil
}
