package noftl

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"noftl/internal/buffer"
	"noftl/internal/catalog"
	"noftl/internal/core"
	"noftl/internal/ddl"
	"noftl/internal/flash"
	"noftl/internal/metrics"
	"noftl/internal/obs"
	"noftl/internal/sim"
	"noftl/internal/storage"
	"noftl/internal/txn"
	"noftl/internal/wal"
)

// DB is a database instance running on simulated native flash under NoFTL
// space management.
type DB struct {
	cfg      Config
	dev      *flash.Device
	space    *core.Manager
	pool     *buffer.Pool
	cat      *catalog.Catalog
	log      *wal.Log
	txns     *txn.Manager
	clock    *sim.Clock
	objStats *metrics.ObjectStats
	reg      *metrics.Registry
	tracer   *obs.Tracer // nil when tracing is off
	msrv     *metricsServer

	mu          sync.RWMutex
	tablespaces map[string]*storage.Tablespace
	tables      map[string]*Table
	indexes     map[string]*Index
	objectNames map[uint32]string
	closed      bool

	// Checkpointing.  ckptMu is the quiesce lock: every transaction holds it
	// shared from Begin to Commit/Abort, a checkpoint holds it exclusively,
	// so snapshots see no in-flight transaction.  recovering suppresses
	// checkpoint triggers while recovery rebuilds the database through the
	// normal DDL/heap/btree paths.
	ckptMu      sync.RWMutex
	ckptRunning atomic.Bool
	ckptSeq     uint64 // checkpoint sequence number (RecCheckpoint TxnID)
	ckptCount   int64
	ckptChunks  int64
	ckptLastLSN uint64 // LSN of the last checkpoint's final chunk
	ckptBytes   int64  // snapshot size of the last checkpoint
	ckptTime    sim.Time
	ckptWALMark int64 // BytesAppended at the last checkpoint
	recovering  bool
	recovery    *RecoveryStats // non-nil after Reopen
}

// openOn wires the database layers over an already-created device.  The
// public entry points are Open and OpenConfig (options.go).
func openOn(cfg Config, dev *flash.Device) (*DB, error) {
	return openWith(cfg, dev, core.NewManager(dev, cfg.Space))
}

// openWith wires the layers over an explicit space manager; recovery passes
// one that already adopted the crashed device's physical state.
func openWith(cfg Config, dev *flash.Device, space *core.Manager) (*DB, error) {
	db := &DB{
		cfg:         cfg,
		dev:         dev,
		space:       space,
		cat:         catalog.New(),
		clock:       sim.NewClock(),
		objStats:    metrics.NewObjectStats(),
		tablespaces: make(map[string]*storage.Tablespace),
		tables:      make(map[string]*Table),
		indexes:     make(map[string]*Index),
		objectNames: make(map[uint32]string),
	}
	// The metrics registry is always live (registering families is cheap and
	// the hot paths only touch cached children); the tracer only exists when
	// the configuration asked for tracing.
	db.reg = metrics.NewRegistry()
	if cfg.TraceWriter != nil || cfg.TraceBufferEvents != 0 {
		db.tracer = obs.NewTracer(cfg.TraceBufferEvents)
	}
	db.space.AttachObs(db.tracer, db.reg)
	db.pool = buffer.New(db.space, cfg.BufferPoolPages, dev.Geometry().PageSize, db)
	db.pool.AttachObs(db.tracer)
	db.pool.Configure(buffer.Options{
		ReadAhead:      cfg.ReadAheadPages,
		GroupWriteBack: !cfg.DisableGroupWriteBack,
		Shards:         cfg.BufferPoolShards,
	})

	// The default tablespace lives in the default region; the catalog and
	// WAL are placed there unless the DBA says otherwise.
	defTS := storage.NewTablespace("SYSTEM", core.DefaultRegionID, cfg.ExtentPages, db.space)
	db.tablespaces["SYSTEM"] = defTS
	if err := db.cat.AddTablespace(catalog.Tablespace{Name: "SYSTEM", Region: core.DefaultRegionName, ExtentPages: cfg.ExtentPages}); err != nil {
		return nil, err
	}

	if cfg.WAL {
		walObj := db.cat.NextObjectID()
		db.objectNames[walObj] = "WAL"
		db.objStats.Register("WAL", "log", "SYSTEM")
		db.log = wal.New(db.space, defTS.Hint(walObj, flash.FlagLog), dev.Geometry().PageSize)
		db.log.AttachObs(db.tracer)
		if cfg.WALCommitBatch > 0 || cfg.WALCommitDelay > 0 {
			db.log.SetGroupCommit(cfg.WALCommitBatch, cfg.WALCommitDelay)
		}
	}
	db.txns = txn.NewManager(txn.NewLockManager(cfg.LockTimeout), db.log, db.clock)
	if cfg.MetricsAddr != "" {
		srv, err := serveMetrics(db, cfg.MetricsAddr)
		if err != nil {
			return nil, err
		}
		db.msrv = srv
	}
	return db, nil
}

// Close flushes all dirty pages and marks the database closed.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	db.mu.Unlock()
	// Flush outside db.mu: the flush path reports per-object statistics,
	// which takes a read lock on db.mu.
	if _, err := db.pool.FlushAll(db.clock.Now()); err != nil {
		return err
	}
	if db.log != nil {
		if _, err := db.log.Flush(db.clock.Now()); err != nil {
			return err
		}
	}
	if db.msrv != nil {
		db.msrv.shutdown()
	}
	if db.cfg.TraceWriter != nil {
		if _, err := db.tracer.Dump(db.cfg.TraceWriter); err != nil {
			return err
		}
	}
	return nil
}

// RecordPhysRead implements buffer.Recorder: physical page reads are charged
// to the owning object's statistics (consumed by the Region Advisor).
func (db *DB) RecordPhysRead(objectID uint32, pages int64) {
	if name, ok := db.objectName(objectID); ok {
		db.objStats.RecordRead(name, pages)
	}
}

// RecordPhysWrite implements buffer.Recorder.
func (db *DB) RecordPhysWrite(objectID uint32, pages int64) {
	if name, ok := db.objectName(objectID); ok {
		db.objStats.RecordWrite(name, pages)
	}
}

func (db *DB) objectName(id uint32) (string, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n, ok := db.objectNames[id]
	return n, ok
}

// Geometry returns the flash device's geometry (channels, dies, blocks,
// pages).  It is the read-only replacement for the former Device() escape
// hatch; live counters are in Stats().
func (db *DB) Geometry() DeviceGeometry { return db.dev.Geometry() }

// SimulatedTime returns the highest simulated time observed so far.
func (db *DB) SimulatedTime() sim.Time { return db.clock.Now() }

// checkOpen returns ErrClosed once Close has been called.
func (db *DB) checkOpen() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return ErrClosed
	}
	return nil
}

// Schema is an immutable snapshot of the database schema: every region,
// tablespace, table and index known to the catalog, each sorted by name.
type Schema struct {
	Regions     []RegionInfo
	Tablespaces []TablespaceInfo
	Tables      []TableInfo
	Indexes     []IndexInfo
}

// Catalog entry types re-exported for Schema consumers.
type (
	// RegionInfo is the catalog entry of a NoFTL region.
	RegionInfo = catalog.Region
	// TablespaceInfo is the catalog entry of a tablespace.
	TablespaceInfo = catalog.Tablespace
	// TableInfo is the catalog entry of a table.
	TableInfo = catalog.Table
	// IndexInfo is the catalog entry of an index.
	IndexInfo = catalog.Index
	// Column describes one table column.
	Column = catalog.Column
)

// Schema returns a snapshot of the full schema.  It replaces the former
// Catalog() escape hatch.
func (db *DB) Schema() Schema {
	return Schema{
		Regions:     db.cat.Regions(),
		Tablespaces: db.cat.Tablespaces(),
		Tables:      db.cat.Tables(),
		Indexes:     db.cat.Indexes(),
	}
}

// TimeCursor is a private virtual-time cursor publishing to the database's
// global simulated clock: it starts at time zero and every advance is
// published back, so the global clock tracks the furthest actor.
// Closed-loop drivers give each worker its own cursor.
type TimeCursor struct{ c *sim.Cursor }

// TimeCursor returns a new cursor at time zero that publishes its advances
// to the database's global clock.
func (db *DB) TimeCursor() *TimeCursor {
	return &TimeCursor{c: sim.NewCursor(db.clock)}
}

// Now returns the cursor's current virtual time.
func (tc *TimeCursor) Now() sim.Time { return tc.c.Now() }

// AdvanceTo moves the cursor forward to t (no-op when t is in the past).
func (tc *TimeCursor) AdvanceTo(t sim.Time) { tc.c.AdvanceTo(t) }

// Advance moves the cursor forward by d.
func (tc *TimeCursor) Advance(d sim.Duration) { tc.c.Advance(d) }

// ObjectStats returns the per-object I/O statistics collected so far, sorted
// by I/O rate.
func (db *DB) ObjectStats() []metrics.ObjectCounters {
	// Refresh object sizes from the physical structures before reporting.
	db.mu.RLock()
	for _, t := range db.tables {
		db.objStats.SetSize(t.Name(), t.heap.PageCount())
	}
	for _, i := range db.indexes {
		db.objStats.SetSize(i.Name(), i.tree.Pages())
	}
	db.mu.RUnlock()
	if db.log != nil {
		db.objStats.SetSize("WAL", int64(db.log.PageCount()))
	}
	return db.objStats.All()
}

// Advise runs the Region Advisor over the collected per-object statistics
// and returns a multi-region placement plan (the paper's Figure 2
// procedure).
func (db *DB) Advise(opts core.AdvisorOptions) core.PlacementPlan {
	return core.Advise(db.ObjectStats(), db.dev.Geometry().Dies(), opts)
}

// ResetStatistics zeroes every I/O, GC and transaction counter (device,
// space manager, buffer pool, per-object) without touching data.  Benchmarks
// call it at the end of the warm-up phase.
func (db *DB) ResetStatistics() {
	db.space.ResetCounters()
	db.pool.ResetCounters()
	db.objStats.Reset()
	db.clock.Reset()
}

// ---- DDL ----

// Exec parses and executes one or more DDL statements.  Failures are
// reported as *DDLError carrying the offending statement's text, its byte
// offset in sql, and — when attributable — the failing clause; the
// underlying cause stays reachable through errors.Is/As.
func (db *DB) Exec(sql string) error {
	if err := db.checkOpen(); err != nil {
		return err
	}
	stmts, err := ddl.ParseAll(sql)
	if err != nil {
		return syntaxDDLErr(sql, err)
	}
	for i, st := range stmts {
		end := len(sql)
		if i+1 < len(stmts) {
			end = stmts[i+1].Pos
		}
		text := strings.TrimRight(strings.TrimSpace(sql[st.Pos:end]), ";")
		clause, err := db.execStatement(st.Stmt)
		if err != nil {
			return ddlErr(text, st.Pos, clause, err)
		}
	}
	return nil
}

// execStatement executes one parsed statement, returning the failing clause
// name ("" when not attributable) alongside any error.
func (db *DB) execStatement(st ddl.Statement) (string, error) {
	switch s := st.(type) {
	case ddl.CreateRegion:
		spec := core.RegionSpec{
			Name:         s.Name,
			MaxChips:     s.MaxChips,
			MaxChannels:  s.MaxChannels,
			MaxSizeBytes: s.MaxSizeBytes,
		}
		gc, set, clause, err := applyGCClause(db.space.Options().GC, s.GCPolicy, s.GCStepPages, s.HotCold)
		if err != nil {
			return clause, err
		}
		if set {
			spec.GC = &gc
		}
		return "", db.CreateRegion(spec)
	case ddl.AlterRegion:
		return db.alterRegionGC(s)
	case ddl.CreateTablespace:
		extentPages := db.cfg.ExtentPages
		if s.ExtentSizeBytes > 0 {
			extentPages = int(s.ExtentSizeBytes) / db.dev.Geometry().PageSize
			if extentPages < 1 {
				extentPages = 1
			}
		}
		err := db.CreateTablespace(s.Name, s.Region, extentPages)
		if err != nil && s.Region != "" && errors.Is(err, ErrNotFound) {
			// The only not-found object a CREATE TABLESPACE can trip over is
			// its REGION clause; other failures (e.g. a duplicate name) are
			// not the clause's fault.
			return "REGION", err
		}
		return "", err
	case ddl.CreateTable:
		cols := make([]catalog.Column, len(s.Columns))
		for i, c := range s.Columns {
			cols[i] = catalog.Column{Name: c.Name, Type: c.Type}
		}
		_, err := db.CreateTable(s.Name, s.Tablespace, cols)
		if err != nil && s.Tablespace != "" && errors.Is(err, ErrNotFound) {
			return "TABLESPACE", err
		}
		return "", err
	case ddl.CreateIndex:
		_, err := db.CreateIndex(s.Name, s.Table, s.Columns, s.Unique, s.Tablespace)
		return "", err
	case ddl.DropStatement:
		return s.Kind, db.execDrop(s)
	default:
		return "", fmt.Errorf("%w: statement %T", ErrUnsupported, st)
	}
}

func (db *DB) execDrop(s ddl.DropStatement) error {
	switch s.Kind {
	case "REGION":
		return db.dropRegion(s.Name)
	case "TABLE":
		return db.DropTable(s.Name)
	case "TABLESPACE":
		return db.DropTablespace(s.Name)
	case "INDEX":
		return db.DropIndex(s.Name)
	default:
		return fmt.Errorf("%w: cannot drop %q", ErrUnsupported, s.Kind)
	}
}

// applyGCClause folds a DDL GC clause (CREATE/ALTER REGION options) into a
// base policy, reporting whether any option was actually set and, on error,
// which clause was at fault.
func applyGCClause(base core.GCPolicy, policy string, stepPages int, hotCold string) (core.GCPolicy, bool, string, error) {
	set := false
	if policy != "" {
		v, err := core.ParseVictimPolicy(policy)
		if err != nil {
			return base, false, "GC_POLICY", err
		}
		base.Victim = v
		set = true
	}
	if stepPages != 0 {
		if stepPages < 0 {
			return base, false, "GC_STEP_PAGES", fmt.Errorf("noftl: GC_STEP_PAGES must be positive, got %d", stepPages)
		}
		base.StepPages = stepPages
		set = true
	}
	switch strings.ToUpper(hotCold) {
	case "":
	case "ON":
		base.DisableHotCold = false
		set = true
	case "OFF":
		base.DisableHotCold = true
		set = true
	default:
		return base, false, "HOT_COLD", fmt.Errorf("noftl: HOT_COLD must be ON or OFF, got %q", hotCold)
	}
	return base, set, "", nil
}

// alterRegionGC executes ALTER REGION … SET: the space manager switches the
// live policy and the catalog records it.
func (db *DB) alterRegionGC(s ddl.AlterRegion) (string, error) {
	cur, ok := db.space.GCPolicyOf(s.Name)
	if !ok {
		return "REGION", fmt.Errorf("%w: region %q", ErrNotFound, s.Name)
	}
	gc, set, clause, err := applyGCClause(cur, s.GCPolicy, s.GCStepPages, s.HotCold)
	if err != nil {
		return clause, err
	}
	if !set {
		return "", nil
	}
	if err := db.space.SetGCPolicy(s.Name, gc); err != nil {
		return "", err
	}
	if s.Name == core.DefaultRegionName {
		// The default region has no catalog entry; the live policy is all
		// there is to update.
		return "", db.checkpointAfterDDL()
	}
	if err := db.cat.UpdateRegionGC(s.Name, gc); err != nil {
		return "", err
	}
	return "", db.checkpointAfterDDL()
}

// dropRegion removes a region from both catalog and space manager (the DROP
// REGION path; Admin().DropRegion is the programmatic form).
func (db *DB) dropRegion(name string) error {
	if err := db.cat.DropRegion(name); err != nil {
		return publicErr(err)
	}
	if err := db.space.DropRegion(name); err != nil {
		return publicErr(err)
	}
	return db.checkpointAfterDDL()
}

// CreateRegion creates a NoFTL region (programmatic form of CREATE REGION).
func (db *DB) CreateRegion(spec RegionSpec) error {
	if err := db.checkOpen(); err != nil {
		return err
	}
	r, err := db.space.CreateRegion(spec)
	if err != nil {
		return publicErr(err)
	}
	gc := db.space.Options().GC
	if spec.GC != nil {
		gc = *spec.GC
	}
	err = db.cat.AddRegion(catalog.Region{
		Name:         spec.Name,
		ID:           r.ID(),
		MaxChips:     spec.MaxChips,
		MaxChannels:  spec.MaxChannels,
		MaxSizeBytes: spec.MaxSizeBytes,
		GC:           gc,
	})
	if err != nil {
		_ = db.space.DropRegion(spec.Name)
		return publicErr(err)
	}
	return db.checkpointAfterDDL()
}

// CreateTablespace creates a tablespace bound to a region ("" or "DEFAULT"
// means the default region).
func (db *DB) CreateTablespace(name, region string, extentPages int) error {
	if err := db.checkOpen(); err != nil {
		return err
	}
	regionID := core.DefaultRegionID
	regionName := core.DefaultRegionName
	if region != "" && region != core.DefaultRegionName {
		r, ok := db.space.Region(region)
		if !ok {
			return fmt.Errorf("%w: region %q", ErrNotFound, region)
		}
		regionID = r.ID()
		regionName = region
	}
	if extentPages <= 0 {
		extentPages = db.cfg.ExtentPages
	}
	if err := db.cat.AddTablespace(catalog.Tablespace{Name: name, Region: regionName, ExtentPages: extentPages}); err != nil {
		return publicErr(err)
	}
	db.mu.Lock()
	db.tablespaces[name] = storage.NewTablespace(name, regionID, extentPages, db.space)
	db.mu.Unlock()
	return db.checkpointAfterDDL()
}

// tablespace returns the runtime tablespace object.
func (db *DB) tablespace(name string) (*storage.Tablespace, error) {
	if name == "" {
		name = "SYSTEM"
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	ts, ok := db.tablespaces[name]
	if !ok {
		return nil, fmt.Errorf("%w: tablespace %q", ErrNotFound, name)
	}
	return ts, nil
}

// CreateTable creates a table in the given tablespace ("" = SYSTEM).
func (db *DB) CreateTable(name, tablespace string, columns []Column) (*Table, error) {
	if err := db.checkOpen(); err != nil {
		return nil, err
	}
	ts, err := db.tablespace(tablespace)
	if err != nil {
		return nil, err
	}
	objID := db.cat.NextObjectID()
	if err := db.cat.AddTable(catalog.Table{Name: name, ObjectID: objID, Tablespace: ts.Name(), Columns: columns}); err != nil {
		return nil, publicErr(err)
	}
	heap := storage.NewHeapFile(name, objID, ts, db.pool)
	t := &Table{db: db, heap: heap, name: name, objectID: objID}
	db.mu.Lock()
	db.tables[name] = t
	db.objectNames[objID] = name
	db.mu.Unlock()
	db.objStats.Register(name, "table", ts.Name())
	return t, db.checkpointAfterDDL()
}

// DropTable removes a table, its indexes, and trims their pages on flash so
// the garbage collector can reclaim the space.
func (db *DB) DropTable(name string) error {
	if err := db.checkOpen(); err != nil {
		return err
	}
	db.mu.Lock()
	t, ok := db.tables[name]
	if !ok {
		db.mu.Unlock()
		return fmt.Errorf("%w: table %q", ErrNotFound, name)
	}
	delete(db.tables, name)
	delete(db.objectNames, t.objectID)
	var droppedIndexes []*Index
	for iname, idx := range db.indexes {
		if idx.meta.Table == name {
			droppedIndexes = append(droppedIndexes, idx)
			delete(db.indexes, iname)
			delete(db.objectNames, idx.meta.ObjectID)
		}
	}
	db.mu.Unlock()
	if err := db.cat.DropTable(name); err != nil {
		return publicErr(err)
	}
	// Trim the heap's and the indexes' pages so the space manager can
	// reclaim them (never-flushed pages are simply unmapped).
	db.trimPages(t.heap.Pages())
	for _, idx := range droppedIndexes {
		db.trimPages(idx.tree.PageList())
	}
	return db.checkpointAfterDDL()
}

// trimPages drops the pages from the buffer pool and unmaps them in the
// space manager.
func (db *DB) trimPages(lpns []core.LPN) {
	for _, lpn := range lpns {
		db.pool.Drop(lpn)
		_ = db.space.TrimPage(lpn) // never-flushed pages are simply unmapped
	}
}

// DropIndex removes an index and trims its pages on flash (the DROP INDEX
// path).
func (db *DB) DropIndex(name string) error {
	if err := db.checkOpen(); err != nil {
		return err
	}
	db.mu.Lock()
	idx, ok := db.indexes[name]
	if !ok {
		db.mu.Unlock()
		return fmt.Errorf("%w: index %q", ErrNotFound, name)
	}
	delete(db.indexes, name)
	delete(db.objectNames, idx.meta.ObjectID)
	db.mu.Unlock()
	if err := db.cat.DropIndex(name); err != nil {
		return publicErr(err)
	}
	db.trimPages(idx.tree.PageList())
	return db.checkpointAfterDDL()
}

// DropTablespace removes an empty tablespace (the DROP TABLESPACE path).
// Tablespaces still holding tables or indexes cannot be dropped
// (ErrConflict); the SYSTEM tablespace can never be dropped
// (ErrUnsupported).  The tablespace's trimmed pages were reclaimed when its
// objects were dropped; any partially used extent tail is unmapped space the
// garbage collector already treats as free.
func (db *DB) DropTablespace(name string) error {
	if err := db.checkOpen(); err != nil {
		return err
	}
	if name == "" || name == "SYSTEM" {
		return fmt.Errorf("%w: the SYSTEM tablespace cannot be dropped", ErrUnsupported)
	}
	if err := db.cat.DropTablespace(name); err != nil {
		return publicErr(err)
	}
	db.mu.Lock()
	delete(db.tablespaces, name)
	db.mu.Unlock()
	return db.checkpointAfterDDL()
}

// CreateIndex creates a B+-tree index on a table in the given tablespace
// ("" = the table's tablespace).
func (db *DB) CreateIndex(name, table string, columns []string, unique bool, tablespace string) (*Index, error) {
	if err := db.checkOpen(); err != nil {
		return nil, err
	}
	db.mu.RLock()
	_, ok := db.tables[table]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: table %q", ErrNotFound, table)
	}
	if tablespace == "" {
		tmeta, _ := db.cat.Table(table)
		tablespace = tmeta.Tablespace
	}
	ts, err := db.tablespace(tablespace)
	if err != nil {
		return nil, err
	}
	objID := db.cat.NextObjectID()
	meta := catalog.Index{Name: name, ObjectID: objID, Table: table, Columns: columns, Unique: unique, Tablespace: ts.Name()}
	if err := db.cat.AddIndex(meta); err != nil {
		return nil, publicErr(err)
	}
	tree, _, err := btreeNew(db.clock.Now(), name, objID, ts, db.pool)
	if err != nil {
		return nil, err
	}
	idx := &Index{db: db, tree: tree, meta: meta}
	db.mu.Lock()
	db.indexes[name] = idx
	db.objectNames[objID] = name
	db.mu.Unlock()
	db.objStats.Register(name, "index", ts.Name())
	return idx, db.checkpointAfterDDL()
}

// Table returns a handle to an existing table.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// Index returns a handle to an existing index.
func (db *DB) Index(name string) (*Index, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	i, ok := db.indexes[name]
	return i, ok
}

// Tables returns the names of all tables.
func (db *DB) Tables() []string {
	var out []string
	for _, t := range db.cat.Tables() {
		out = append(out, t.Name)
	}
	return out
}

// Begin starts a transaction whose virtual clock starts at the global
// simulated time.
func (db *DB) Begin() *Tx {
	return db.BeginAt(db.clock.Now())
}

// BeginAt starts a transaction at an explicit virtual time (used by the
// closed-loop benchmark terminals, which carry their own time cursors).
// Every transaction holds the checkpoint quiesce lock shared until it
// commits or aborts, so checkpoints capture transaction-consistent
// snapshots.
func (db *DB) BeginAt(now sim.Time) *Tx {
	db.ckptMu.RLock()
	return &Tx{db: db, inner: db.txns.Begin(now), quiesced: true}
}

// Update runs fn inside a read-write transaction.  The transaction is
// committed when fn returns nil (and no iteration error is pending on the
// transaction, see Tx.Err) and aborted otherwise; a panic inside fn aborts
// before re-panicking.
func (db *DB) Update(fn func(*Tx) error) error {
	if err := db.checkOpen(); err != nil {
		return err
	}
	tx := db.Begin()
	committing := false
	// One abort site covers fn errors, pending iterator errors and panics.
	defer func() {
		if !committing {
			tx.Abort()
		}
	}()
	if err := fn(tx); err != nil {
		return err
	}
	if err := tx.Err(); err != nil {
		return err
	}
	committing = true
	_, err := tx.Commit()
	return err
}

// View runs fn inside a read-only transaction.  The transaction is always
// released at the end without forcing the log; fn's error (or a pending
// iteration error) is returned.  View does not enforce read-only access —
// it is a convention: use Update when fn modifies data.
func (db *DB) View(fn func(*Tx) error) error {
	if err := db.checkOpen(); err != nil {
		return err
	}
	tx := db.Begin()
	defer tx.Abort()
	if err := fn(tx); err != nil {
		return err
	}
	return tx.Err()
}

// FlushAll writes every dirty buffered page to flash (checkpoint) and
// returns the advanced virtual time.
func (db *DB) FlushAll(now sim.Time) (sim.Time, error) {
	if err := db.checkOpen(); err != nil {
		return now, err
	}
	return db.pool.FlushAll(now)
}

// Checkpoint quiesces transactions, flushes all dirty pages, appends a full
// logical snapshot of the database to the WAL, truncates the log below the
// snapshot, and returns the advanced time.  Crash recovery restores the last
// complete snapshot and replays only the records written after it, so
// checkpoint frequency bounds recovery work (see WithCheckpointEvery).
func (db *DB) Checkpoint(now sim.Time) (sim.Time, error) {
	if err := db.checkOpen(); err != nil {
		return now, err
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	return db.checkpointLocked(now)
}
