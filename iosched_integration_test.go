package noftl_test

import (
	"testing"

	"noftl"
)

// integrationConfig is a small database for the scheduler integration
// tests: 8 dies, WAL off so that flush timing is purely data-page I/O.
func integrationConfig() noftl.Config {
	cfg := noftl.DefaultConfig()
	cfg.WAL = false
	cfg.BufferPoolPages = 128
	return cfg
}

// loadRows creates table T and inserts n rows of 400 bytes, spanning many
// heap pages, then returns the table.
func loadRows(t *testing.T, db *noftl.DB, n int) *noftl.Table {
	t.Helper()
	if err := db.Exec("CREATE TABLE T (v VARCHAR(400))"); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("T")
	row := make([]byte, 400)
	tx := db.Begin()
	for i := 0; i < n; i++ {
		row[0] = byte(i)
		if _, err := tbl.Insert(tx, row); err != nil {
			t.Fatal(err)
		}
		if i%500 == 499 {
			if _, err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			tx = db.Begin()
		}
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestDBSequentialScanReadAhead drives a full table scan through db.go with
// read-ahead enabled and verifies that the buffer pool prefetched pages in
// scheduler batches, that most scan accesses hit prefetched frames, and that
// the scan still returns every row.
func TestDBSequentialScanReadAhead(t *testing.T) {
	cfg := integrationConfig()
	cfg.ReadAheadPages = 8
	db, err := noftl.OpenConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const rows = 1500
	tbl := loadRows(t, db, rows)
	pages := tbl.PageCount()
	if pages <= int64(cfg.BufferPoolPages) {
		t.Fatalf("test needs more heap pages (%d) than pool frames (%d)", pages, cfg.BufferPoolPages)
	}
	// Push everything to flash so the scan re-reads from the device.
	if _, err := db.FlushAll(db.SimulatedTime()); err != nil {
		t.Fatal(err)
	}
	db.ResetStatistics()

	tx := db.Begin()
	count := 0
	if err := tbl.Scan(tx, func(_ noftl.RID, _ []byte) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if count != rows {
		t.Fatalf("scan returned %d rows, want %d", count, rows)
	}

	st := db.Stats()
	if st.Buffer.Prefetches == 0 {
		t.Error("scan issued no prefetches")
	}
	if st.Buffer.PrefetchHits < pages/4 {
		t.Errorf("prefetch hits = %d, want at least %d (a quarter of %d pages)",
			st.Buffer.PrefetchHits, pages/4, pages)
	}
	if st.Buffer.Misses >= pages/2 {
		t.Errorf("scan missed %d times over %d pages: read-ahead ineffective", st.Buffer.Misses, pages)
	}
	if st.Scheduler.HostReads == 0 {
		t.Error("scheduler saw no host-read requests")
	}
	if st.Scheduler.Batches == 0 {
		t.Error("scheduler dispatched no batches")
	}
}

// TestDBGroupWriteBackFasterThanSerial checkpoints the same workload with
// and without group write-back and verifies the batched flush completes in
// less virtual time.
func TestDBGroupWriteBackFasterThanSerial(t *testing.T) {
	flushTime := func(disable bool) (noftl.Stats, int64) {
		cfg := integrationConfig()
		cfg.BufferPoolPages = 512 // hold the whole working set: no evictions
		cfg.DisableGroupWriteBack = disable
		db, err := noftl.OpenConfig(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		loadRows(t, db, 700)
		start := db.SimulatedTime()
		done, err := db.FlushAll(start)
		if err != nil {
			t.Fatal(err)
		}
		return db.Stats(), int64(done.Sub(start))
	}

	serialStats, serialDur := flushTime(true)
	groupStats, groupDur := flushTime(false)

	if serialStats.Buffer.Writebacks != groupStats.Buffer.Writebacks {
		t.Fatalf("workloads diverged: %d vs %d writebacks",
			serialStats.Buffer.Writebacks, groupStats.Buffer.Writebacks)
	}
	if groupStats.Buffer.GroupFlushes == 0 {
		t.Error("group write-back did not run")
	}
	if serialStats.Buffer.GroupFlushes != 0 {
		t.Error("serial configuration used group write-back")
	}
	if groupDur >= serialDur/2 {
		t.Errorf("group flush took %dns vs serial %dns: expected at least 2x faster (die striping)",
			groupDur, serialDur)
	}
}
