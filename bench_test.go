// Benchmarks regenerating the paper's evaluation artifacts.
//
// One benchmark exists per table/figure of the paper (Figure 2, Figure 3 and
// the abstract's headline metrics) plus one per ablation experiment listed in
// DESIGN.md (A1–A4) and a set of micro-benchmarks for the core public API.
//
// The Figure benches run the small scale so that `go test -bench=.` finishes
// in seconds; `cmd/noftl-bench -scale paper` runs the full 64-die
// configuration and prints the same tables.
package noftl_test

import (
	"fmt"
	"testing"

	"noftl"
	"noftl/internal/core"
	"noftl/internal/experiments"
	"noftl/internal/flash"
	"noftl/internal/tpcc"
)

// benchDB opens a small database for the micro-benchmarks.
func benchDB(b *testing.B) *noftl.DB {
	b.Helper()
	cfg := noftl.DefaultConfig()
	cfg.Flash.Geometry = flash.Geometry{
		Channels: 4, DiesPerChannel: 2, PlanesPerDie: 1,
		BlocksPerDie: 256, PagesPerBlock: 64, PageSize: 4096,
	}
	cfg.BufferPoolPages = 1024
	db, err := noftl.OpenConfig(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = db.Close() })
	return db
}

// BenchmarkFigure2RegionAdvisor reproduces Figure 2: a TPC-C statistics run
// followed by the Region Advisor deriving the multi-region placement.
func BenchmarkFigure2RegionAdvisor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f2, err := experiments.RunFigure2(experiments.ScaleTiny)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", f2.Table())
		}
		b.ReportMetric(float64(len(f2.Plan.Groups)), "regions")
		b.ReportMetric(float64(f2.Plan.TotalDies), "dies")
	}
}

// BenchmarkFigure3Traditional runs the TPC-C experiment under traditional
// data placement (the left column of Figure 3).
func BenchmarkFigure3Traditional(b *testing.B) {
	benchmarkFigure3Run(b, tpcc.PlacementTraditional)
}

// BenchmarkFigure3Regions runs the TPC-C experiment under the multi-region
// placement (the right column of Figure 3).
func BenchmarkFigure3Regions(b *testing.B) {
	benchmarkFigure3Run(b, tpcc.PlacementRegions)
}

func benchmarkFigure3Run(b *testing.B, placement tpcc.PlacementKind) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTPCC(experiments.ScaleSmall, placement)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TPS, "tps")
		b.ReportMetric(float64(res.GCCopybacks), "copybacks")
		b.ReportMetric(float64(res.GCErases), "erases")
		b.ReportMetric(res.WriteAmp, "write-amp")
		b.ReportMetric(float64(res.ReadLatency.Mean.Microseconds()), "read-us")
		b.ReportMetric(float64(res.WriteLatency.Mean.Microseconds()), "write-us")
	}
}

// BenchmarkFigure3Comparison runs both placements back to back and reports
// the headline deltas of the abstract (experiment E3).
func BenchmarkFigure3Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f3, err := experiments.RunFigure3(experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s\n%s", f3.Table(), f3.Headline().String())
		}
		h := f3.Headline()
		b.ReportMetric(h.TPSDeltaPct, "tps-delta-%")
		b.ReportMetric(h.CopybacksDeltaPct, "copyback-delta-%")
		b.ReportMetric(h.ErasesDeltaPct, "erase-delta-%")
	}
}

// BenchmarkAblationParallelism backs the §2 claim that striping over dies
// buys I/O parallelism (experiment A1).
func BenchmarkAblationParallelism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationParallelism(2048, 8, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup, "speedup-x")
	}
}

// BenchmarkAblationBatchedIO backs the iosched subsystem: the same striped
// page set read and overwritten through the scheduler in batches versus one
// page at a time (experiment A5).  The speedups are in virtual (simulated)
// time.
func BenchmarkAblationBatchedIO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationBatchedIO(2048, 8, 64)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.String())
		}
		b.ReportMetric(res.ReadSpeedup, "read-speedup-x")
		b.ReportMetric(res.WriteSpeedup, "write-speedup-x")
	}
}

// BenchmarkAblationHotCold backs the hot/cold separation claim (A2).
func BenchmarkAblationHotCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationHotCold(2000, 256, 25)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MixedWA, "mixed-WA")
		b.ReportMetric(res.SeparatedWA, "separated-WA")
	}
}

// BenchmarkAblationFTLvsNoFTL backs the §1 motivation: the black-box FTL
// stack versus NoFTL (A3).
func BenchmarkAblationFTLvsNoFTL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationFTLvsNoFTL(1500, 8000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FTLTime.Seconds()/res.NoFTLTime.Seconds(), "ftl-vs-noftl-x")
		b.ReportMetric(res.FTLWA, "ftl-WA")
		b.ReportMetric(res.NoFTLWA, "noftl-WA")
	}
}

// BenchmarkAblationRegionSweep backs the parallelism-vs-GC trade-off claim
// (A4).
func BenchmarkAblationRegionSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunAblationRegionSweep(experiments.ScaleTiny)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.SweepTable(points))
		}
		for _, p := range points {
			b.ReportMetric(p.TPS, fmt.Sprintf("tps-%dregions", p.Regions))
		}
	}
}

// ---- micro-benchmarks of the public API ----

// BenchmarkTableInsert measures heap inserts through the public API
// (including WAL logging and index-free path).
func BenchmarkTableInsert(b *testing.B) {
	db := benchDB(b)
	if err := db.Exec("CREATE TABLE BENCH (v VARCHAR(100))"); err != nil {
		b.Fatal(err)
	}
	tbl, _ := db.Table("BENCH")
	row := make([]byte, 100)
	tx := db.Begin()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Insert(tx, row); err != nil {
			b.Fatal(err)
		}
		if i%1000 == 999 {
			if _, err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
			tx = db.Begin()
		}
	}
	b.StopTimer()
	if _, err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkIndexInsertLookup measures B+-tree insert plus point lookup.
func BenchmarkIndexInsertLookup(b *testing.B) {
	db := benchDB(b)
	if err := db.Exec("CREATE TABLE T (k INTEGER); CREATE UNIQUE INDEX T_IDX ON T (k)"); err != nil {
		b.Fatal(err)
	}
	tbl, _ := db.Table("T")
	idx, _ := db.Index("T_IDX")
	tx := db.Begin()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rid, err := tbl.Insert(tx, noftl.Key(uint32(i)))
		if err != nil {
			b.Fatal(err)
		}
		if err := idx.Insert(tx, noftl.Key(uint32(i)), rid); err != nil {
			b.Fatal(err)
		}
		if _, found, err := idx.Lookup(tx, noftl.Key(uint32(i/2))); err != nil || !found {
			b.Fatalf("lookup failed: %v", err)
		}
		if i%1000 == 999 {
			if _, err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
			tx = db.Begin()
		}
	}
	b.StopTimer()
	if _, err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFlashWritePath measures the raw NoFTL write path (space manager +
// flash model) without the database layers on top.
func BenchmarkFlashWritePath(b *testing.B) {
	dev, err := flash.NewDevice(flash.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	mgr := core.NewManager(dev, core.DefaultOptions())
	payload := make([]byte, dev.Geometry().PageSize)
	lpns := mgr.AllocateLPNs(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lpn := lpns + noftl.LPN(i%4096)
		if _, err := mgr.WritePage(0, lpn, payload, noftl.Hint{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTPCCTransactionBatch measures the end-to-end cost of a batch of
// 500 TPC-C transactions (standard mix) on a freshly loaded tiny database;
// database setup and loading are excluded from the timing.  The reported
// simulated-tps metric is the throughput in simulated time.
func BenchmarkTPCCTransactionBatch(b *testing.B) {
	const batch = 500
	var lastTPS float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		setup := experiments.TPCCSetup(experiments.ScaleTiny)
		setup.TPCC.Placement = tpcc.PlacementRegions
		db, err := noftl.OpenConfig(setup.DB)
		if err != nil {
			b.Fatal(err)
		}
		sch, err := tpcc.Setup(db, setup.TPCC)
		if err != nil {
			b.Fatal(err)
		}
		if err := tpcc.Load(db, sch, setup.TPCC); err != nil {
			b.Fatal(err)
		}
		cfg := setup.TPCC
		cfg.Transactions = batch
		cfg.WarmupTransactions = 0
		cfg.Duration = 0
		b.StartTimer()
		res, err := tpcc.Run(db, sch, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		lastTPS = res.TPS
		_ = db.Close()
		b.StartTimer()
	}
	b.ReportMetric(lastTPS, "simulated-tps")
	b.ReportMetric(batch, "txns/op")
}
